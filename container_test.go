package rqm_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"rqm"
)

// routingField builds the shared input for container-routing tests.
func routingField(t testing.TB) *rqm.Field {
	t.Helper()
	f, err := rqm.GenerateField("cesm/TS", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDecompressRoutesAllContainerFormats is the dispatch table of the
// unified container surface: rqm.Decompress must reconstruct new-envelope
// containers from every built-in codec and the two legacy native formats,
// with no codec hint from the caller.
func TestDecompressRoutesAllContainerFormats(t *testing.T) {
	f := routingField(t)
	lo, hi := f.ValueRange()
	eb := 1e-3 * (hi - lo)

	cases := []struct {
		name      string
		make      func(t *testing.T) []byte
		wantCodec rqm.CodecID
		legacy    bool
	}{
		{
			name: "envelope prediction",
			make: func(t *testing.T) []byte {
				eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(eb))
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Compress(f)
				if err != nil {
					t.Fatal(err)
				}
				return res.Bytes
			},
			wantCodec: rqm.CodecPrediction,
		},
		{
			name: "envelope transform",
			make: func(t *testing.T) []byte {
				eng, err := rqm.NewEngine(rqm.WithCodecName(rqm.CodecTransformName),
					rqm.WithMode(rqm.ABS), rqm.WithErrorBound(eb))
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Compress(f)
				if err != nil {
					t.Fatal(err)
				}
				return res.Bytes
			},
			wantCodec: rqm.CodecTransform,
		},
		{
			name: "legacy RQMC prediction",
			make: func(t *testing.T) []byte {
				res, err := rqm.Compress(f, rqm.CompressOptions{
					Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: eb,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res.Bytes
			},
			wantCodec: rqm.CodecPrediction,
			legacy:    true,
		},
		{
			name: "legacy RQZF transform",
			make: func(t *testing.T) []byte {
				res, err := rqm.TransformCompress(f, rqm.TransformOptions{ErrorBound: eb})
				if err != nil {
					t.Fatal(err)
				}
				return res.Bytes
			},
			wantCodec: rqm.CodecTransform,
			legacy:    true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob := tc.make(t)

			info, err := rqm.Inspect(blob)
			if err != nil {
				t.Fatal(err)
			}
			if info.CodecID != tc.wantCodec {
				t.Fatalf("routed to codec %d, want %d", info.CodecID, tc.wantCodec)
			}
			if info.Legacy != tc.legacy {
				t.Fatalf("legacy = %v, want %v", info.Legacy, tc.legacy)
			}
			if info.FieldName != f.Name {
				t.Fatalf("field name %q, want %q", info.FieldName, f.Name)
			}

			back, err := rqm.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := rqm.VerifyErrorBound(f, back, rqm.ABS, eb); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDecompressRejectsBadContainers checks that malformed inputs fail with
// the typed container errors, not bare strings.
func TestDecompressRejectsBadContainers(t *testing.T) {
	f := routingField(t)
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Compress(f)
	if err != nil {
		t.Fatal(err)
	}
	sealed := res.Bytes

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte{}, sealed...))
	}

	cases := []struct {
		name    string
		blob    []byte
		wantErr error
	}{
		{"empty", nil, rqm.ErrTruncated},
		{"single byte", []byte{0x45}, rqm.ErrTruncated},
		{"short magic", []byte{0x45, 0x43}, rqm.ErrTruncated},
		{"unknown magic", []byte{0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0}, rqm.ErrBadMagic},
		{"header cut mid-dims", corrupt(func(b []byte) []byte { return b[:10] }), rqm.ErrTruncated},
		{"payload shorter than declared", corrupt(func(b []byte) []byte { return b[:len(b)-5] }), rqm.ErrTruncated},
		{"future version", corrupt(func(b []byte) []byte { b[4] = 99; return b }), rqm.ErrUnsupportedVersion},
		{"unregistered codec id", corrupt(func(b []byte) []byte { b[5] = 233; return b }), rqm.ErrUnknownCodec},
		{"zero dimension", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 0)
			return b
		}), rqm.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := rqm.Decompress(tc.blob)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}
