// Benchmarks regenerating every table and figure of the paper's evaluation
// (one testing.B benchmark per artifact; see DESIGN.md §15), plus the
// ablation benches for the design choices called out in DESIGN.md §15 and
// end-to-end pipeline benchmarks of the public API.
//
// The experiment benches run at the Quick (tiny) scale so `go test -bench=.`
// finishes in minutes; `cmd/experiments` runs the same artifacts at full
// scale.
package rqm_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"rqm"
	"rqm/internal/experiments"
	"rqm/internal/partition"
)

func benchExperiment(b *testing.B, run func(experiments.Config, io.Writer) error) {
	b.Helper()
	cfg := experiments.Quick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates the dataset inventory (paper Table I).
func BenchmarkTableI(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.TableI(c, w)
		return err
	})
}

// BenchmarkTableII regenerates the model-accuracy table (paper Table II).
func BenchmarkTableII(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.TableII(c, w)
		return err
	})
}

// BenchmarkFigure3 regenerates the encoder-efficiency separation (Fig. 3).
func BenchmarkFigure3(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure3(c, w)
		return err
	})
}

// BenchmarkFigure4 regenerates the sampling-rate study (Fig. 4).
func BenchmarkFigure4(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure4(c, w)
		return err
	})
}

// BenchmarkFigure5 regenerates bit-rate estimation accuracy (Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure5(c, w)
		return err
	})
}

// BenchmarkFigure6 regenerates PSNR estimation accuracy (Fig. 6).
func BenchmarkFigure6(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure6(c, w)
		return err
	})
}

// BenchmarkFigure7 regenerates SSIM estimation accuracy (Fig. 7).
func BenchmarkFigure7(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure7(c, w)
		return err
	})
}

// BenchmarkFigure8 regenerates FFT quality-degradation estimation (Fig. 8).
func BenchmarkFigure8(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure8(c, w)
		return err
	})
}

// BenchmarkFigure9 regenerates the modeling-vs-TAE cost comparison (Fig. 9).
func BenchmarkFigure9(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure9(c, w)
		return err
	})
}

// BenchmarkFigure10 regenerates the predictor rate-distortion study (Fig. 10).
func BenchmarkFigure10(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure10(c, w)
		return err
	})
}

// BenchmarkFigure11 regenerates the memory-limit control study (Fig. 11).
func BenchmarkFigure11(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure11(c, w)
		return err
	})
}

// BenchmarkFigure12 regenerates in-situ per-timestep optimization (Fig. 12).
func BenchmarkFigure12(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure12(c, w)
		return err
	})
}

// BenchmarkFigure13 regenerates the snapshot ratio-quality comparison (Fig. 13).
func BenchmarkFigure13(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure13(c, w)
		return err
	})
}

// BenchmarkFigure14 regenerates the parallel dump-time comparison (Fig. 14).
func BenchmarkFigure14(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.Figure14(c, w)
		return err
	})
}

// Ablation benches (DESIGN.md §15).

// BenchmarkAblationCorrectionLayer measures Eq. 9 on/off accuracy.
func BenchmarkAblationCorrectionLayer(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.AblationCorrectionLayer(c, w)
		return err
	})
}

// BenchmarkAblationErrorDistribution measures Eq. 11 vs Eq. 10 accuracy.
func BenchmarkAblationErrorDistribution(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.AblationErrorDistribution(c, w)
		return err
	})
}

// BenchmarkAblationSampleRate measures accuracy vs sampling rate.
func BenchmarkAblationSampleRate(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.AblationSampleRate(c, w)
		return err
	})
}

// BenchmarkAblationAnchors measures low-rate anchors vs pure Eq. 2.
func BenchmarkAblationAnchors(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.AblationAnchors(c, w)
		return err
	})
}

// BenchmarkAblationLossless measures the RLE model vs measured backends.
func BenchmarkAblationLossless(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.AblationLossless(c, w)
		return err
	})
}

// BenchmarkExtensionCodecSelection runs the transform-codec (ZFP-class)
// model extension and cross-codec selection.
func BenchmarkExtensionCodecSelection(b *testing.B) {
	benchExperiment(b, func(c experiments.Config, w io.Writer) error {
		_, err := experiments.ExtensionCodecSelection(c, w)
		return err
	})
}

// End-to-end pipeline benches on the public API.

func benchField(b *testing.B) *rqm.Field {
	b.Helper()
	f, err := rqm.GenerateField("nyx/temperature", 1, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkCompressPipeline measures full compression throughput.
func BenchmarkCompressPipeline(b *testing.B) {
	f := benchField(b)
	lo, hi := f.ValueRange()
	opts := rqm.CompressOptions{
		Predictor: rqm.Lorenzo, Mode: rqm.ABS,
		ErrorBound: (hi - lo) * 1e-3, Lossless: rqm.LosslessRLE,
	}
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rqm.Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressPipeline measures full decompression throughput.
func BenchmarkDecompressPipeline(b *testing.B) {
	f := benchField(b)
	lo, hi := f.ValueRange()
	res, err := rqm.Compress(f, rqm.CompressOptions{
		Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: (hi - lo) * 1e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rqm.Decompress(res.Bytes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileBuild measures the model's one-time sampling cost — the
// quantity that makes it ~18x cheaper than trial-and-error (Fig. 9).
func BenchmarkProfileBuild(b *testing.B) {
	f := benchField(b)
	b.SetBytes(f.OriginalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rqm.NewProfile(f, rqm.Lorenzo, rqm.ModelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimate measures one O(sample) model evaluation.
func BenchmarkEstimate(b *testing.B) {
	f := benchField(b)
	p, err := rqm.NewProfile(f, rqm.Lorenzo, rqm.ModelOptions{})
	if err != nil {
		b.Fatal(err)
	}
	eb := p.Range * 1e-4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EstimateAt(eb)
	}
}

// Codec-abstraction overhead benches: the same workload through the legacy
// direct entry point, through one registry-dispatched codec call, and
// through Engine.CompressBatch at increasing worker counts. Comparing
// ns/op (and MB/s) of the first three documents that the Codec interface,
// registry lookup, and envelope sealing add no measurable hot-path overhead;
// the batch series documents worker-pool scaling.

func benchBatchFields(b *testing.B, n int) []*rqm.Field {
	b.Helper()
	fields := make([]*rqm.Field, n)
	for i := range fields {
		f, err := rqm.GenerateField("nyx/temperature", uint64(i+1), rqm.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		fields[i] = f
	}
	return fields
}

func batchBytes(fields []*rqm.Field) int64 {
	var total int64
	for _, f := range fields {
		total += f.OriginalBytes()
	}
	return total
}

const benchBatchSize = 16

// BenchmarkDirectCompressBatch is the baseline: the legacy direct function
// on every field, sequentially, no interface, registry, or envelope.
func BenchmarkDirectCompressBatch(b *testing.B) {
	fields := benchBatchFields(b, benchBatchSize)
	lo, hi := fields[0].ValueRange()
	opts := rqm.CompressOptions{
		Predictor: rqm.Lorenzo, Mode: rqm.ABS,
		ErrorBound: (hi - lo) * 1e-3, Lossless: rqm.LosslessRLE,
	}
	b.SetBytes(batchBytes(fields))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fields {
			if _, err := rqm.Compress(f, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecDispatchBatch is the same workload through the registry:
// codec looked up by name, every call dispatched via the Codec interface and
// sealed in the envelope, still sequential.
func BenchmarkCodecDispatchBatch(b *testing.B) {
	fields := benchBatchFields(b, benchBatchSize)
	lo, hi := fields[0].ValueRange()
	opts := rqm.CodecOptions{
		Predictor: rqm.Lorenzo, Mode: rqm.ABS,
		ErrorBound: (hi - lo) * 1e-3, Lossless: rqm.LosslessRLE,
	}
	b.SetBytes(batchBytes(fields))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := rqm.CodecByName(rqm.CodecPredictionName)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fields {
			if _, err := rqm.CompressWith(c, f, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchEngineBatch(b *testing.B, workers int) {
	fields := benchBatchFields(b, benchBatchSize)
	lo, hi := fields[0].ValueRange()
	eng, err := rqm.NewEngine(
		rqm.WithPredictor(rqm.Lorenzo),
		rqm.WithMode(rqm.ABS),
		rqm.WithErrorBound((hi-lo)*1e-3),
		rqm.WithLossless(rqm.LosslessRLE),
		rqm.WithConcurrency(workers),
	)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.SetBytes(batchBytes(fields))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CompressBatch(ctx, fields); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatch1/4/8 run the registry-dispatched worker-pool path.
// At 1 worker the comparison against BenchmarkCodecDispatchBatch isolates
// the pool overhead; 4 and 8 document scaling.
func BenchmarkEngineBatch1(b *testing.B) { benchEngineBatch(b, 1) }
func BenchmarkEngineBatch4(b *testing.B) { benchEngineBatch(b, 4) }
func BenchmarkEngineBatch8(b *testing.B) { benchEngineBatch(b, 8) }

// ---------------------------------------------------------------------------
// Streaming pipeline benchmarks: MB/s through the chunked writer/reader at
// varying worker counts. SetBytes reports throughput, so the workers=N rows
// read directly as the pipeline's scaling curve on a multi-core machine.

// benchStreamField synthesizes one medium field reused by the stream benches.
func benchStreamField(b *testing.B) *rqm.Field {
	b.Helper()
	f, err := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchStreamWriter(b *testing.B, workers int, opts ...rqm.StreamOption) {
	f := benchStreamField(b)
	lo, hi := f.ValueRange()
	base := []rqm.StreamOption{
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithChunkSize(1 << 16),
		rqm.WithStreamWorkers(workers),
		rqm.WithStreamCompression(rqm.CodecOptions{
			Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: (hi - lo) * 1e-3,
		}),
	}
	b.SetBytes(int64(f.Len() * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := rqm.NewWriter(io.Discard, append(base, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteValues(f.Data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamWriter is the acceptance throughput curve: MB/s must scale
// with the worker count on a multi-core runner.
func BenchmarkStreamWriter(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchStreamWriter(b, workers)
		})
	}
}

// BenchmarkStreamWriterAdaptive prices the per-chunk model pass: the same
// pipeline with the ratio-quality model solving every chunk's bound.
func BenchmarkStreamWriterAdaptive(b *testing.B) {
	benchStreamWriter(b, 4,
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
		rqm.WithStreamModel(rqm.ModelOptions{SampleRate: 0.01}))
}

// BenchmarkStreamWriterAdaptiveSpace prices the spatial partition path on a
// spatially non-uniform field: the quadtree buffers the stream, plans
// variance-guided regions, and the model solves each region's bound.
func BenchmarkStreamWriterAdaptiveSpace(b *testing.B) {
	f, err := rqm.GenerateField("mixed", 42, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	opts := []rqm.StreamOption{
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithStreamWorkers(4),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
		rqm.WithStreamModel(rqm.ModelOptions{SampleRate: 0.01}),
		rqm.WithPartitioner(rqm.VarianceQuadtree{}),
	}
	b.SetBytes(int64(f.Len() * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := rqm.NewWriter(io.Discard, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteValues(f.Data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionPlan isolates the quadtree planning cost — summed-area
// table build, recursive splitting, per-leaf model solves — from the
// compression it steers; it must stay far below the compression itself.
func BenchmarkPartitionPlan(b *testing.B) {
	f, err := rqm.GenerateField("mixed", 42, rqm.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	c, err := rqm.CodecByName(rqm.CodecPredictionName)
	if err != nil {
		b.Fatal(err)
	}
	env := partition.Env{
		Codec:       c,
		Copts:       rqm.CodecOptions{Predictor: rqm.Lorenzo},
		Mopts:       rqm.ModelOptions{SampleRate: 0.01},
		Policy:      &rqm.AdaptiveBound{TargetPSNR: 60},
		Prec:        f.Prec,
		Dims:        f.Dims,
		ChunkValues: 1 << 18,
	}
	q := rqm.VarianceQuadtree{}
	b.SetBytes(int64(f.Len() * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := q.Partition(f.Data, env)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Regions) < 2 {
			b.Fatalf("planned %d regions on the mixed field", len(plan.Regions))
		}
	}
}

// BenchmarkStreamReader measures the concurrent decode path.
func BenchmarkStreamReader(b *testing.B) {
	f := benchStreamField(b)
	lo, hi := f.ValueRange()
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(f.Prec, f.Dims...),
		rqm.WithChunkSize(1<<16),
		rqm.WithStreamCompression(rqm.CodecOptions{
			Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: (hi - lo) * 1e-3,
		}))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(f.Len() * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := rqm.NewReader(bytes.NewReader(data), rqm.WithStreamReaderWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, err := r.NextChunk(); err != nil {
						if err == io.EOF {
							break
						}
						b.Fatal(err)
					}
				}
			}
		})
	}
}
