package rqm_test

import (
	"bytes"
	"testing"

	"rqm"
)

// fuzzSeedContainers builds one valid container of each format family plus
// systematically truncated chunked containers — the seed corpus the parser
// fuzzer mutates from. `go test` runs the seeds on every CI pass; `go test
// -fuzz=FuzzDecompress` explores beyond them.
func fuzzSeedContainers(f *testing.F) [][]byte {
	f.Helper()
	field, err := rqm.GenerateField("cesm/TS", 5, rqm.ScaleTiny)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte

	eng, err := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
	if err != nil {
		f.Fatal(err)
	}
	res, err := eng.Compress(field)
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, res.Bytes)

	legacy, err := rqm.Compress(field, rqm.CompressOptions{Mode: rqm.REL, ErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, legacy.Bytes)

	// Version 2 native containers: the interleaved and tANS entropy stages
	// add chunk-body sections (stream-length framing, ANS table + states)
	// the fuzzer must exercise.
	for _, name := range []string{rqm.CodecPredictionILVName, rqm.CodecPredictionTANSName} {
		c, err := rqm.CodecByName(name)
		if err != nil {
			f.Fatal(err)
		}
		res, err := rqm.CompressWith(c, field, rqm.CodecOptions{Mode: rqm.REL, ErrorBound: 1e-3})
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, res.Bytes)
		// And half-truncated, to land cuts inside the new sections.
		seeds = append(seeds, res.Bytes[:len(res.Bytes)/2])
	}

	lo, hi := field.ValueRange()
	var buf bytes.Buffer
	w, err := rqm.NewWriter(&buf,
		rqm.WithStreamShape(field.Prec, field.Dims...),
		rqm.WithStreamValueRange(lo, hi),
		rqm.WithChunkSize(2048))
	if err != nil {
		f.Fatal(err)
	}
	if err := w.WriteValues(field.Data); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	chunked := buf.Bytes()
	seeds = append(seeds, chunked)

	// Truncated chunked containers: every structurally interesting cut.
	idx, err := rqm.ReadStreamIndex(bytes.NewReader(chunked))
	if err != nil {
		f.Fatal(err)
	}
	first := idx.Entries[0]
	last := idx.Entries[len(idx.Entries)-1]
	trailer := last.Offset + int64(last.RecordBytes)
	for _, cut := range []int64{
		0, 1, 4, 5, // inside the magic/version
		first.Offset,             // header only
		first.Offset + 3,         // mid chunk header
		first.Offset + 30,        // mid payload
		trailer,                  // chunks but no trailer
		trailer + 7,              // mid index
		int64(len(chunked)) - 12, // missing footer
		int64(len(chunked)) - 1,  // missing last footer byte
	} {
		if cut >= 0 && cut <= int64(len(chunked)) {
			seeds = append(seeds, chunked[:cut])
		}
	}

	// Spatially partitioned containers: the quadtree planner emits chunks of
	// differing sizes with per-region bounds, a geometry uniform-slab seeds
	// never produce. Seed the whole container plus cuts landing mid-stream so
	// mutation explores truncation and corruption over variable chunk sizes.
	mixed, err := rqm.GenerateField("mixed", 13, rqm.ScaleTiny)
	if err != nil {
		f.Fatal(err)
	}
	var qbuf bytes.Buffer
	qw, err := rqm.NewWriter(&qbuf,
		rqm.WithStreamShape(mixed.Prec, mixed.Dims...),
		rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
		rqm.WithPartitioner(rqm.VarianceQuadtree{SplitFactor: 1.1, MinRegionValues: 1024}))
	if err != nil {
		f.Fatal(err)
	}
	if err := qw.WriteValues(mixed.Data); err != nil {
		f.Fatal(err)
	}
	if err := qw.Close(); err != nil {
		f.Fatal(err)
	}
	quad := qbuf.Bytes()
	qidx, err := rqm.ReadStreamIndex(bytes.NewReader(quad))
	if err != nil {
		f.Fatal(err)
	}
	if len(qidx.Entries) < 2 {
		f.Fatalf("quadtree seed planned %d chunks, want variable geometry", len(qidx.Entries))
	}
	seeds = append(seeds, quad)
	for _, e := range qidx.Entries {
		for _, cut := range []int64{e.Offset, e.Offset + int64(e.RecordBytes)/2} {
			if cut >= 0 && cut <= int64(len(quad)) {
				seeds = append(seeds, quad[:cut])
			}
		}
	}
	// Bit-rot seeds mirroring what the store's scrubber quarantines: single
	// byte flips in a chunk head, mid-payload (CRC-covered), and inside the
	// trailer index. The decoder must fail typed on all of them, never hang
	// or panic — the same contract the corruption matrix pins on disk.
	for _, off := range []int64{qidx.Entries[0].Offset + 2,
		qidx.Entries[0].Offset + 30,
		int64(len(quad)) - 20} {
		if off > 0 && off < int64(len(quad)) {
			rot := append([]byte(nil), quad...)
			rot[off] ^= 0xFF
			seeds = append(seeds, rot)
		}
	}
	return seeds
}

// FuzzDecompress asserts the container parsers never panic: every input —
// valid, truncated, or mutated — must come back as a field or an error.
func FuzzDecompress(f *testing.F) {
	for _, seed := range fuzzSeedContainers(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decompress and Inspect must return, not panic; errors are expected.
		_, _ = rqm.Decompress(data)
		_, _ = rqm.Inspect(data)
		if r, err := rqm.NewReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 1<<16; i++ {
				if _, err := r.NextChunk(); err != nil {
					break
				}
			}
			_ = r.Close()
		}
	})
}
