// Benchmarks for the entropy stage: symbol-level decode throughput of the
// serial, interleaved, and tANS coders over the same quantization-code
// stream, plus end-to-end container decode per entropy codec. The CI
// regression gate (BENCH_BASELINE.json) tracks these; the interleaved
// symbol decode is the ">2x over serial" acceptance number.
package rqm_test

import (
	"testing"

	"rqm"
	"rqm/internal/ans"
	"rqm/internal/bitio"
	"rqm/internal/huffman"
	"rqm/internal/stats"
)

// benchSymbols builds a quantization-code-like stream: concentrated around
// the central code with geometric tails, the histogram shape every field in
// the paper's suite produces under a sane error bound.
func benchSymbols(n int) ([]uint32, map[uint32]int64) {
	rng := stats.NewXorShift64(99)
	syms := make([]uint32, n)
	freqs := map[uint32]int64{}
	const center = 32768
	for i := range syms {
		v := center
		for rng.Uint64()%2 == 0 && v < center+40 {
			v++
		}
		if rng.Uint64()%2 == 0 {
			v = center - (v - center)
		}
		syms[i] = uint32(v)
		freqs[syms[i]]++
	}
	return syms, freqs
}

const benchSymbolCount = 1 << 20

// BenchmarkDecodeSerialHuffman is the pre-existing serial path, kept as the
// comparison anchor for the interleaved decoder.
func BenchmarkDecodeSerialHuffman(b *testing.B) {
	syms, freqs := benchSymbols(benchSymbolCount)
	cb, err := huffman.Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	bw := bitio.NewWriter(0)
	if err := cb.Encode(bw, syms); err != nil {
		b.Fatal(err)
	}
	payload := bw.Bytes()
	out := make([]uint32, len(syms))
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cb.Decode(bitio.NewReader(payload), out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeInterleaved measures the K-stream decoder on the same
// symbols and codebook as the serial benchmark (bytes/op = symbols/op, so
// MB/s here is millions of symbols per second).
func BenchmarkDecodeInterleaved(b *testing.B) {
	syms, freqs := benchSymbols(benchSymbolCount)
	cb, err := huffman.Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	k := huffman.DefaultStreams
	ws := make([]*bitio.Writer, k)
	for i := range ws {
		ws[i] = bitio.NewWriter(0)
	}
	streams, err := cb.EncodeInterleaved(syms, k, nil, ws)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint32, len(syms))
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cb.DecodeInterleaved(streams, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeTANS measures the two-state tANS decoder on the same
// symbol stream.
func BenchmarkDecodeTANS(b *testing.B) {
	syms, freqs := benchSymbols(benchSymbolCount)
	tab, err := ans.Build(freqs)
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Release()
	stream, states, bits, err := tab.Encode(nil, syms, nil)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint32, len(syms))
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Decode(stream, states, bits, out); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCodecContainer(b *testing.B, codecName string) ([]byte, int64) {
	b.Helper()
	f := benchField(b)
	lo, hi := f.ValueRange()
	c, err := rqm.CodecByName(codecName)
	if err != nil {
		b.Fatal(err)
	}
	res, err := rqm.CompressWith(c, f, rqm.CodecOptions{Mode: rqm.ABS, ErrorBound: (hi - lo) * 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	return res.Bytes, f.OriginalBytes()
}

func benchDecodeContainer(b *testing.B, codecName string) {
	b.Helper()
	blob, origBytes := benchCodecContainer(b, codecName)
	b.SetBytes(origBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rqm.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeInterleavedContainer is end-to-end container decode
// (entropy stage + predictor reconstruction) for the prediction-ilv codec.
func BenchmarkDecodeInterleavedContainer(b *testing.B) {
	benchDecodeContainer(b, rqm.CodecPredictionILVName)
}

// BenchmarkDecodeTANSContainer is end-to-end container decode for the
// prediction-tans codec.
func BenchmarkDecodeTANSContainer(b *testing.B) {
	benchDecodeContainer(b, rqm.CodecPredictionTANSName)
}
