// Package rqm is a Go implementation of ratio-quality modeling for
// prediction-based error-bounded lossy compression, reproducing "Improving
// Prediction-Based Lossy Compression Dramatically via Ratio-Quality
// Modeling" (Jin et al., ICDE 2022).
//
// The package bundles three layers:
//
//   - A complete SZ3-style lossy compressor (Lorenzo / multilevel
//     interpolation / block regression predictors, linear-scaling
//     quantization, canonical Huffman coding, and optional lossless
//     backends) with guaranteed pointwise error bounds.
//   - The paper's analytical ratio-quality model: after one cheap sampling
//     pass, it estimates compression ratio and post-hoc quality (PSNR,
//     SSIM, FFT spectra) for any error bound, and solves the inverse
//     problems (error bound for a target bit-rate, ratio, or PSNR).
//   - The three use-cases built on the model: predictor selection, memory
//     compression with a target footprint, and in-situ per-partition
//     error-bound optimization.
//
// Every compressor backend sits behind one Codec interface and one
// registry; compressed data travels in one self-describing container
// envelope, so Decompress routes any payload — including legacy
// pre-envelope containers — to the right backend by inspection. The Engine
// is the configured entry point, with worker-pool batch paths for
// multi-field datasets.
//
// Quick start:
//
//	field, _ := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
//	eng, _ := rqm.NewEngine(rqm.WithMode(rqm.REL), rqm.WithErrorBound(1e-3))
//	profile, _ := eng.Profile(field)
//	est := profile.EstimateAt(1e-3 * profile.Range) // no compression run
//	fmt.Println(est.Ratio, est.PSNR)
//
//	res, _ := eng.Compress(field)
//	back, _ := rqm.Decompress(res.Bytes) // routed by the container envelope
//
// See DESIGN.md for the architecture, including the codec registry and the
// container envelope byte layout.
package rqm

import (
	"rqm/internal/cluster"
	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/transform"
	"rqm/internal/tuner"
)

// Data model.
type (
	// Field is an N-dimensional scalar field (1–4D, row-major float64 with
	// original-precision metadata).
	Field = grid.Field
	// Precision records the original storage width (Float32 or Float64).
	Precision = grid.Precision
	// Scale selects synthesized dataset sizes.
	Scale = datagen.Scale
	// Dataset groups the fields of one synthesized benchmark dataset.
	Dataset = datagen.Dataset
)

// Precision and scale constants.
const (
	Float32 = grid.Float32
	Float64 = grid.Float64

	ScaleTiny   = datagen.Tiny
	ScaleSmall  = datagen.Small
	ScaleMedium = datagen.Medium
)

// Compressor configuration.
type (
	// PredictorKind selects the prediction scheme.
	PredictorKind = predictor.Kind
	// CompressOptions configures a compression run.
	CompressOptions = compressor.Options
	// CompressResult is the compressed container plus statistics.
	CompressResult = compressor.Result
	// CompressStats describes one compression run.
	CompressStats = compressor.Stats
	// ErrorMode interprets the error bound (ABS, REL, PWREL).
	ErrorMode = compressor.ErrorMode
	// LosslessKind selects the optional stage after Huffman coding.
	LosslessKind = compressor.LosslessKind
)

// Predictor kinds.
const (
	Lorenzo            = predictor.Lorenzo
	Lorenzo2           = predictor.Lorenzo2
	Interpolation      = predictor.Interpolation
	InterpolationCubic = predictor.InterpolationCubic
	Regression         = predictor.Regression
)

// Error-bound modes.
const (
	ABS   = compressor.ABS
	REL   = compressor.REL
	PWREL = compressor.PWREL
)

// Lossless backends.
const (
	LosslessNone  = compressor.LosslessNone
	LosslessRLE   = compressor.LosslessRLE
	LosslessLZ77  = compressor.LosslessLZ77
	LosslessFlate = compressor.LosslessFlate
)

// Ratio-quality model.
type (
	// ModelOptions tunes the analytical model (zero value = paper defaults).
	ModelOptions = core.Options
	// Profile is the one-time sampling product for a (field, predictor)
	// pair; all estimates derive from it.
	Profile = core.Profile
	// Estimate is the model's output at one error bound.
	Estimate = core.Estimate
)

// Use-cases.
type (
	// PredictorChoice is one candidate's modeled performance.
	PredictorChoice = tuner.Choice
	// MemoryPlan is the outcome of budgeted compression.
	MemoryPlan = tuner.MemoryPlan
	// PartitionAllocation is a per-partition error-bound assignment.
	PartitionAllocation = tuner.PartitionAllocation
	// RatePoint is one point of a rate-distortion sweep.
	RatePoint = tuner.RatePoint
	// ClusterConfig models the parallel dump machine.
	ClusterConfig = cluster.Config
	// DumpReport breaks a snapshot dump into optimization/compression/I-O.
	DumpReport = cluster.DumpReport
)

// NewField allocates a zero-filled field.
func NewField(name string, prec Precision, dims ...int) (*Field, error) {
	return grid.New(name, prec, dims...)
}

// FieldFromData wraps an existing buffer as a field.
func FieldFromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	return grid.FromData(name, prec, data, dims...)
}

// DatasetNames lists the available SDRBench stand-ins (Table I).
func DatasetNames() []string { return datagen.Names() }

// GenerateDataset synthesizes a named dataset stand-in.
func GenerateDataset(name string, seed uint64, sc Scale) (*Dataset, error) {
	return datagen.Generate(name, seed, sc)
}

// GenerateField synthesizes a single field ("dataset/field" or "dataset").
func GenerateField(path string, seed uint64, sc Scale) (*Field, error) {
	return datagen.GenerateField(path, seed, sc)
}

// Compress runs the full prediction-based pipeline, producing the codec's
// native (pre-envelope) container.
//
// Deprecated: use NewEngine/Engine.Compress or CompressWith, which work for
// every registered codec and seal the output in the self-describing
// envelope. Decompress reads both formats.
func Compress(f *Field, opts CompressOptions) (*CompressResult, error) {
	return compressor.Compress(f, opts)
}

// Decompress reconstructs a field from any compressed container, routing to
// the producing codec by inspection: envelope containers dispatch on their
// codec ID through the registry, chunked stream containers (NewWriter
// output) decode chunk by chunk, and the legacy native prediction ("RQMC")
// and transform ("RQZF") containers remain decodable. Parse failures wrap
// the typed errors ErrTruncated, ErrBadMagic, ErrUnsupportedVersion,
// ErrUnknownCodec, ErrCorrupt, and ErrChecksum.
func Decompress(data []byte) (*Field, error) {
	return codec.Decompress(data)
}

// VerifyErrorBound checks that recon satisfies the bound against orig.
func VerifyErrorBound(orig, recon *Field, mode ErrorMode, eb float64) error {
	return compressor.VerifyErrorBound(orig, recon, mode, eb)
}

// ParseErrorMode resolves an error-mode name ("abs", "rel", "pwrel").
func ParseErrorMode(s string) (ErrorMode, error) {
	return compressor.ParseErrorMode(s)
}

// ParseLosslessKind resolves a lossless-backend name
// ("none", "rle", "lz77", "flate").
func ParseLosslessKind(s string) (LosslessKind, error) {
	return compressor.ParseLosslessKind(s)
}

// ParsePredictorKind resolves a prediction-scheme name ("lorenzo",
// "lorenzo2", "interpolation", "interpolation-cubic", "regression").
func ParsePredictorKind(s string) (PredictorKind, error) {
	return predictor.ParseKind(s)
}

// PredictorKinds lists all implemented prediction schemes.
func PredictorKinds() []PredictorKind { return predictor.Kinds() }

// NewProfile samples a field with a predictor and returns the model profile.
func NewProfile(f *Field, kind PredictorKind, opts ModelOptions) (*Profile, error) {
	return core.NewProfile(f, kind, opts)
}

// EstimateSpectrumRatio predicts per-shell power-spectrum distortion from a
// compression-error variance (the FFT post-hoc analysis model).
func EstimateSpectrumRatio(origSpectrum []float64, n int, errVar float64) []float64 {
	return core.EstimateSpectrumRatio(origSpectrum, n, errVar)
}

// SelectPredictor profiles the candidates and ranks them by the model
// (use-case A). The best choice is first.
func SelectPredictor(f *Field, kinds []PredictorKind, absEB float64, opts ModelOptions) ([]PredictorChoice, error) {
	return tuner.SelectPredictor(f, kinds, absEB, opts)
}

// CompressToBudget compresses into a byte budget with model-planned bounds
// (use-case B) using the prediction codec.
//
// Deprecated: use Engine.CompressToBudget, which works for every registered
// codec.
func CompressToBudget(f *Field, p *Profile, kind PredictorKind, budgetBytes int64,
	headroom float64, strict bool, copts CompressOptions) (*MemoryPlan, error) {
	c, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		return nil, err
	}
	return tuner.CompressToBudget(f, p, c, budgetBytes, headroom, strict, codec.Options{
		Predictor: kind, Lossless: copts.Lossless, Radius: copts.Radius,
	})
}

// OptimizePartitionsForPSNR assigns per-partition error bounds meeting an
// aggregate PSNR target with minimal bits (use-case C).
func OptimizePartitionsForPSNR(profiles []*Profile, targetPSNR float64) ([]PartitionAllocation, error) {
	return tuner.OptimizePartitionsForPSNR(profiles, targetPSNR)
}

// OptimizePartitionsForBitRate assigns per-partition error bounds meeting an
// aggregate bit-rate budget with maximal quality (use-case C, dual form).
func OptimizePartitionsForBitRate(profiles []*Profile, targetBits float64) ([]PartitionAllocation, error) {
	return tuner.OptimizePartitionsForBitRate(profiles, targetBits)
}

// RateDistortion sweeps the model across relative error bounds.
func RateDistortion(p *Profile, relLo, relHi float64, points int) []RatePoint {
	return tuner.RateDistortion(p, relLo, relHi, points)
}

// PSNR measures peak signal-to-noise ratio between two fields (dB).
func PSNR(a, b *Field) (float64, error) { return quality.PSNR(a, b) }

// GlobalSSIM measures the whole-field structural similarity index.
func GlobalSSIM(a, b *Field) (float64, error) { return quality.GlobalSSIM(a, b) }

// WindowedSSIM measures mean SSIM over non-overlapping windows.
func WindowedSSIM(a, b *Field, edge int) (float64, error) { return quality.WindowedSSIM(a, b, edge) }

// MSE measures the mean squared error between two fields.
func MSE(a, b *Field) (float64, error) { return quality.MSE(a, b) }

// DefaultCluster returns the simulated 128-rank machine used by the
// data-management experiments.
func DefaultCluster() ClusterConfig { return cluster.DefaultBebop() }

// Transform-based codec extension (the paper's future-work direction).
type (
	// TransformOptions configures the ZFP-style transform codec.
	TransformOptions = transform.Options
	// TransformResult is the transform codec's output.
	TransformResult = transform.Result
)

// TransformCompress encodes a field with the transform-based codec
// (value-domain quantization + integer block Haar + class entropy coding);
// the absolute error bound is guaranteed. Produces the codec's native
// (pre-envelope) container.
//
// Deprecated: use NewEngine(WithCodecName(CodecTransformName)) or
// CompressWith with the registered transform codec; Decompress reads both
// formats.
func TransformCompress(f *Field, opts TransformOptions) (*TransformResult, error) {
	return transform.Compress(f, opts)
}

// TransformDecompress reconstructs a transform-codec container.
//
// Deprecated: Decompress routes transform containers (enveloped and legacy)
// automatically.
func TransformDecompress(data []byte) (*Field, error) {
	return transform.Decompress(data)
}

// TransformProfile extends the ratio-quality model to the transform codec:
// the returned profile supports the same EstimateAt / inverse-solve API.
//
// Deprecated: use the registered transform codec's Profile method (or
// Engine.Profile with the transform codec), which takes the same
// ModelOptions.
func TransformProfile(f *Field, sampleRate float64, seed uint64, opts ModelOptions) (*Profile, error) {
	c, err := codec.ByID(codec.IDTransform)
	if err != nil {
		return nil, err
	}
	opts.SampleRate = sampleRate
	opts.Seed = seed
	return c.Profile(f, codec.Options{}, opts)
}
