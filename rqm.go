// Package rqm is a Go implementation of ratio-quality modeling for
// prediction-based error-bounded lossy compression, reproducing "Improving
// Prediction-Based Lossy Compression Dramatically via Ratio-Quality
// Modeling" (Jin et al., ICDE 2022).
//
// The package bundles three layers:
//
//   - A complete SZ3-style lossy compressor (Lorenzo / multilevel
//     interpolation / block regression predictors, linear-scaling
//     quantization, canonical Huffman coding, and optional lossless
//     backends) with guaranteed pointwise error bounds.
//   - The paper's analytical ratio-quality model: after one cheap sampling
//     pass, it estimates compression ratio and post-hoc quality (PSNR,
//     SSIM, FFT spectra) for any error bound, and solves the inverse
//     problems (error bound for a target bit-rate, ratio, or PSNR).
//   - The three use-cases built on the model: predictor selection, memory
//     compression with a target footprint, and in-situ per-partition
//     error-bound optimization.
//
// Quick start:
//
//	field, _ := rqm.GenerateField("nyx/temperature", 42, rqm.ScaleSmall)
//	profile, _ := rqm.NewProfile(field, rqm.Lorenzo, rqm.ModelOptions{})
//	est := profile.EstimateAt(1e-3 * profile.Range) // no compression run
//	fmt.Println(est.Ratio, est.PSNR)
//
//	res, _ := rqm.Compress(field, rqm.CompressOptions{
//		Predictor: rqm.Lorenzo, Mode: rqm.ABS, ErrorBound: 1e-3 * profile.Range,
//	})
//	back, _ := rqm.Decompress(res.Bytes)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package rqm

import (
	"rqm/internal/cluster"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/transform"
	"rqm/internal/tuner"
)

// Data model.
type (
	// Field is an N-dimensional scalar field (1–4D, row-major float64 with
	// original-precision metadata).
	Field = grid.Field
	// Precision records the original storage width (Float32 or Float64).
	Precision = grid.Precision
	// Scale selects synthesized dataset sizes.
	Scale = datagen.Scale
	// Dataset groups the fields of one synthesized benchmark dataset.
	Dataset = datagen.Dataset
)

// Precision and scale constants.
const (
	Float32 = grid.Float32
	Float64 = grid.Float64

	ScaleTiny   = datagen.Tiny
	ScaleSmall  = datagen.Small
	ScaleMedium = datagen.Medium
)

// Compressor configuration.
type (
	// PredictorKind selects the prediction scheme.
	PredictorKind = predictor.Kind
	// CompressOptions configures a compression run.
	CompressOptions = compressor.Options
	// CompressResult is the compressed container plus statistics.
	CompressResult = compressor.Result
	// CompressStats describes one compression run.
	CompressStats = compressor.Stats
	// ErrorMode interprets the error bound (ABS, REL, PWREL).
	ErrorMode = compressor.ErrorMode
	// LosslessKind selects the optional stage after Huffman coding.
	LosslessKind = compressor.LosslessKind
)

// Predictor kinds.
const (
	Lorenzo            = predictor.Lorenzo
	Lorenzo2           = predictor.Lorenzo2
	Interpolation      = predictor.Interpolation
	InterpolationCubic = predictor.InterpolationCubic
	Regression         = predictor.Regression
)

// Error-bound modes.
const (
	ABS   = compressor.ABS
	REL   = compressor.REL
	PWREL = compressor.PWREL
)

// Lossless backends.
const (
	LosslessNone  = compressor.LosslessNone
	LosslessRLE   = compressor.LosslessRLE
	LosslessLZ77  = compressor.LosslessLZ77
	LosslessFlate = compressor.LosslessFlate
)

// Ratio-quality model.
type (
	// ModelOptions tunes the analytical model (zero value = paper defaults).
	ModelOptions = core.Options
	// Profile is the one-time sampling product for a (field, predictor)
	// pair; all estimates derive from it.
	Profile = core.Profile
	// Estimate is the model's output at one error bound.
	Estimate = core.Estimate
)

// Use-cases.
type (
	// PredictorChoice is one candidate's modeled performance.
	PredictorChoice = tuner.Choice
	// MemoryPlan is the outcome of budgeted compression.
	MemoryPlan = tuner.MemoryPlan
	// PartitionAllocation is a per-partition error-bound assignment.
	PartitionAllocation = tuner.PartitionAllocation
	// RatePoint is one point of a rate-distortion sweep.
	RatePoint = tuner.RatePoint
	// ClusterConfig models the parallel dump machine.
	ClusterConfig = cluster.Config
	// DumpReport breaks a snapshot dump into optimization/compression/I-O.
	DumpReport = cluster.DumpReport
)

// NewField allocates a zero-filled field.
func NewField(name string, prec Precision, dims ...int) (*Field, error) {
	return grid.New(name, prec, dims...)
}

// FieldFromData wraps an existing buffer as a field.
func FieldFromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	return grid.FromData(name, prec, data, dims...)
}

// DatasetNames lists the available SDRBench stand-ins (Table I).
func DatasetNames() []string { return datagen.Names() }

// GenerateDataset synthesizes a named dataset stand-in.
func GenerateDataset(name string, seed uint64, sc Scale) (*Dataset, error) {
	return datagen.Generate(name, seed, sc)
}

// GenerateField synthesizes a single field ("dataset/field" or "dataset").
func GenerateField(path string, seed uint64, sc Scale) (*Field, error) {
	return datagen.GenerateField(path, seed, sc)
}

// Compress runs the full prediction-based pipeline.
func Compress(f *Field, opts CompressOptions) (*CompressResult, error) {
	return compressor.Compress(f, opts)
}

// Decompress reconstructs a field from a compressed container.
func Decompress(data []byte) (*Field, error) {
	return compressor.Decompress(data)
}

// VerifyErrorBound checks that recon satisfies the bound against orig.
func VerifyErrorBound(orig, recon *Field, mode ErrorMode, eb float64) error {
	return compressor.VerifyErrorBound(orig, recon, mode, eb)
}

// NewProfile samples a field with a predictor and returns the model profile.
func NewProfile(f *Field, kind PredictorKind, opts ModelOptions) (*Profile, error) {
	return core.NewProfile(f, kind, opts)
}

// EstimateSpectrumRatio predicts per-shell power-spectrum distortion from a
// compression-error variance (the FFT post-hoc analysis model).
func EstimateSpectrumRatio(origSpectrum []float64, n int, errVar float64) []float64 {
	return core.EstimateSpectrumRatio(origSpectrum, n, errVar)
}

// SelectPredictor profiles the candidates and ranks them by the model
// (use-case A). The best choice is first.
func SelectPredictor(f *Field, kinds []PredictorKind, absEB float64, opts ModelOptions) ([]PredictorChoice, error) {
	return tuner.SelectPredictor(f, kinds, absEB, opts)
}

// CompressToBudget compresses into a byte budget with model-planned bounds
// (use-case B).
func CompressToBudget(f *Field, p *Profile, kind PredictorKind, budgetBytes int64,
	headroom float64, strict bool, copts CompressOptions) (*MemoryPlan, error) {
	return tuner.CompressToBudget(f, p, kind, budgetBytes, headroom, strict, copts)
}

// OptimizePartitionsForPSNR assigns per-partition error bounds meeting an
// aggregate PSNR target with minimal bits (use-case C).
func OptimizePartitionsForPSNR(profiles []*Profile, targetPSNR float64) ([]PartitionAllocation, error) {
	return tuner.OptimizePartitionsForPSNR(profiles, targetPSNR)
}

// OptimizePartitionsForBitRate assigns per-partition error bounds meeting an
// aggregate bit-rate budget with maximal quality (use-case C, dual form).
func OptimizePartitionsForBitRate(profiles []*Profile, targetBits float64) ([]PartitionAllocation, error) {
	return tuner.OptimizePartitionsForBitRate(profiles, targetBits)
}

// RateDistortion sweeps the model across relative error bounds.
func RateDistortion(p *Profile, relLo, relHi float64, points int) []RatePoint {
	return tuner.RateDistortion(p, relLo, relHi, points)
}

// PSNR measures peak signal-to-noise ratio between two fields (dB).
func PSNR(a, b *Field) (float64, error) { return quality.PSNR(a, b) }

// GlobalSSIM measures the whole-field structural similarity index.
func GlobalSSIM(a, b *Field) (float64, error) { return quality.GlobalSSIM(a, b) }

// WindowedSSIM measures mean SSIM over non-overlapping windows.
func WindowedSSIM(a, b *Field, edge int) (float64, error) { return quality.WindowedSSIM(a, b, edge) }

// MSE measures the mean squared error between two fields.
func MSE(a, b *Field) (float64, error) { return quality.MSE(a, b) }

// DefaultCluster returns the simulated 128-rank machine used by the
// data-management experiments.
func DefaultCluster() ClusterConfig { return cluster.DefaultBebop() }

// Transform-based codec extension (the paper's future-work direction).
type (
	// TransformOptions configures the ZFP-style transform codec.
	TransformOptions = transform.Options
	// TransformResult is the transform codec's output.
	TransformResult = transform.Result
)

// TransformCompress encodes a field with the transform-based codec
// (value-domain quantization + integer block Haar + class entropy coding);
// the absolute error bound is guaranteed.
func TransformCompress(f *Field, opts TransformOptions) (*TransformResult, error) {
	return transform.Compress(f, opts)
}

// TransformDecompress reconstructs a transform-codec container.
func TransformDecompress(data []byte) (*Field, error) {
	return transform.Decompress(data)
}

// TransformProfile extends the ratio-quality model to the transform codec:
// the returned profile supports the same EstimateAt / inverse-solve API.
func TransformProfile(f *Field, sampleRate float64, seed uint64, opts ModelOptions) (*Profile, error) {
	return transform.NewProfile(f, sampleRate, seed, opts)
}
