package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/stats"
	"rqm/internal/tuner"
)

// Figure9Result compares the optimization cost of the model against the
// trial-and-error approach (paper Fig. 9: 18.7× average speedup on RTM).
type Figure9Result struct {
	// ModelTime: one-time sampling plus estimates for all (eb, predictor)
	// combinations.
	ModelTime time.Duration
	// TAETime: one full compression per combination, with stage breakdown.
	TAETime        time.Duration
	TAEPredictTime time.Duration
	TAEEncodeTime  time.Duration
	TAELossless    time.Duration
	// Speedup is TAETime / ModelTime.
	Speedup float64
	// Combinations is the number of (eb, predictor) pairs evaluated.
	Combinations int
}

// Figure9 measures both optimization paths on RTM-like snapshots with 7
// candidate error bounds and 2 predictor candidates, as in the paper.
func Figure9(cfg Config, w io.Writer) (*Figure9Result, error) {
	ds, err := datagen.Generate("rtm", cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	fields := ds.Fields
	if len(fields) > 3 {
		fields = fields[:3] // the paper averages across 3 RTM datasets
	}
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation}
	rels := []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	out := &Figure9Result{Combinations: len(kinds) * len(rels) * len(fields)}

	// Model path: one profile per (field, predictor), then O(sample)
	// estimates per bound.
	tModel := time.Now()
	for _, f := range fields {
		for _, k := range kinds {
			prof, err := core.NewProfile(f, k, cfg.modelOptions())
			if err != nil {
				return nil, err
			}
			for _, eb := range ebsFor(f, rels) {
				_ = prof.EstimateAt(eb)
			}
		}
	}
	out.ModelTime = time.Since(tModel)

	// Trial-and-error path: full compression per combination.
	tTAE := time.Now()
	for _, f := range fields {
		for _, k := range kinds {
			for _, eb := range ebsFor(f, rels) {
				res, err := compressAt(f, k, eb, compressor.LosslessFlate)
				if err != nil {
					return nil, err
				}
				out.TAEPredictTime += res.Stats.PredictTime
				out.TAEEncodeTime += res.Stats.EncodeTime
				out.TAELossless += res.Stats.LosslessTime
			}
		}
	}
	out.TAETime = time.Since(tTAE)
	if out.ModelTime > 0 {
		out.Speedup = float64(out.TAETime) / float64(out.ModelTime)
	}
	tw := newTable(w)
	row(tw, "approach", "total", "predict", "encode", "lossless")
	row(tw, "model", out.ModelTime.Round(time.Microsecond), "-", "-", "-")
	row(tw, "trial-and-error", out.TAETime.Round(time.Microsecond),
		out.TAEPredictTime.Round(time.Microsecond), out.TAEEncodeTime.Round(time.Microsecond),
		out.TAELossless.Round(time.Microsecond))
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "speedup: %.1fx over %d combinations\n", out.Speedup, out.Combinations)
	return out, nil
}

// Figure10Series is one predictor's modeled and measured rate-distortion.
type Figure10Series struct {
	Kind     predictor.Kind
	Modeled  []tuner.RatePoint
	Measured []tuner.RatePoint
}

// Figure10Result carries all series plus the detected switch point.
type Figure10Result struct {
	Series []Figure10Series
	// SwitchBits is the bit-rate below which interpolation overtakes
	// Lorenzo in the model (paper: ≈1.89 on RTM); NaN if no crossover.
	SwitchBits float64
}

// Figure10 reproduces the predictor-selection rate-distortion study on an
// RTM-like snapshot (paper Fig. 10).
func Figure10(cfg Config, w io.Writer) (*Figure10Result, error) {
	f, err := cfg.field("rtm/snapshot_3")
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{SwitchBits: math.NaN()}
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.InterpolationCubic}
	profiles := map[predictor.Kind]*core.Profile{}
	tw := newTable(w)
	row(tw, "predictor", "relEB", "modelBits", "modelPSNR", "measBits", "measPSNR")
	rels := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	for _, k := range kinds {
		prof, err := core.NewProfile(f, k, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		profiles[k] = prof
		s := Figure10Series{Kind: k}
		s.Modeled = tuner.RateDistortion(prof, 1e-6, 1e-1, 16)
		for i, eb := range ebsFor(f, rels) {
			res, err := compressAt(f, k, eb, compressor.LosslessFlate)
			if err != nil {
				return nil, err
			}
			dec, err := compressor.Decompress(res.Bytes)
			if err != nil {
				return nil, err
			}
			psnr, err := psnrOf(f, dec)
			if err != nil {
				return nil, err
			}
			mp := tuner.RatePoint{AbsErrorBound: eb, BitRate: res.Stats.BitRate, PSNR: psnr}
			s.Measured = append(s.Measured, mp)
			est := prof.EstimateAt(eb)
			row(tw, k.String(), fmt.Sprintf("%.0e", rels[i]),
				fmt.Sprintf("%.3f", est.TotalBitRate), fmt.Sprintf("%.2f", est.PSNR),
				fmt.Sprintf("%.3f", mp.BitRate), fmt.Sprintf("%.2f", mp.PSNR))
		}
		out.Series = append(out.Series, s)
	}
	if bits, ok := tuner.SwitchPoint(profiles[predictor.Lorenzo], profiles[predictor.Interpolation], 0.5, 16, 32); ok {
		out.SwitchBits = bits
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "modeled predictor switch point: %.2f bits/value\n", out.SwitchBits)
	return out, nil
}

// Figure11Group is one random memory-budget trial.
type Figure11Group struct {
	Snapshot    string
	BudgetBytes int64
	UsedBytes   int64
	// UsedFrac = UsedBytes/BudgetBytes; the paper's Fig. 11 shows these
	// clustering near the 80% target with rare overflows.
	UsedFrac   float64
	Overflowed bool
}

// Figure11 reproduces the memory-limit control study (paper Fig. 11): 15
// random (snapshot, budget) pairs compressed to budget with 20% headroom.
func Figure11(cfg Config, w io.Writer) ([]Figure11Group, error) {
	ds, err := datagen.Generate("rtm", cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	rng := stats.NewXorShift64(cfg.Seed + 7)
	predCodec, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		return nil, err
	}
	var out []Figure11Group
	tw := newTable(w)
	row(tw, "group", "snapshot", "budget", "used", "used/budget", "overflow")
	for g := 0; g < 15; g++ {
		f := ds.Fields[rng.Intn(len(ds.Fields))]
		prof, err := core.NewProfile(f, predictor.Interpolation, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		// Random target ratio between 8x and 64x.
		ratio := 8 * math.Pow(2, 3*rng.Float64())
		budget := int64(float64(f.OriginalBytes()) / ratio)
		plan, err := tuner.CompressToBudget(f, prof, predCodec, budget, 0.2, false,
			codec.Options{Predictor: predictor.Interpolation, Lossless: compressor.LosslessFlate})
		if err != nil {
			return nil, err
		}
		grp := Figure11Group{
			Snapshot:    f.Name,
			BudgetBytes: budget,
			UsedBytes:   plan.Result.Stats.CompressedBytes,
			UsedFrac:    float64(plan.Result.Stats.CompressedBytes) / float64(budget),
			Overflowed:  plan.Overflowed,
		}
		out = append(out, grp)
		row(tw, g+1, grp.Snapshot, grp.BudgetBytes, grp.UsedBytes,
			fmt.Sprintf("%.3f", grp.UsedFrac), grp.Overflowed)
	}
	return out, tw.Flush()
}

// Figure12Result reports per-timestep error-bound optimization.
type Figure12Result struct {
	// PerStepEB are the optimized absolute bounds per snapshot.
	PerStepEB []float64
	// OptBits / UniformBits: aggregate bits per value under the optimized
	// and uniform allocations at equal aggregate quality.
	OptBits, UniformBits float64
	// ExtraRatioPct is the paper's headline: extra compression ratio at the
	// same post-hoc quality (+13% in the paper).
	ExtraRatioPct float64
}

// Figure12 reproduces the in-situ fine-grained optimization study (paper
// Fig. 12): per-timestep error bounds for the RTM stack.
func Figure12(cfg Config, w io.Writer) (*Figure12Result, error) {
	ds, err := datagen.Generate("rtm", cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	var profiles []*core.Profile
	for _, f := range ds.Fields {
		p, err := core.NewProfile(f, predictor.Interpolation, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	const targetPSNR = 60.0
	allocs, err := tuner.OptimizePartitionsForPSNR(profiles, targetPSNR)
	if err != nil {
		return nil, err
	}
	out := &Figure12Result{}
	_, out.OptBits = tuner.AggregateOf(profiles, allocs)

	// Uniform baseline: a single shared bound hitting the same aggregate
	// quality (bisection over the shared bound).
	globalRange := 0.0
	for _, p := range profiles {
		if p.Range > globalRange {
			globalRange = p.Range
		}
	}
	targetVar := globalRange * globalRange / math.Pow(10, targetPSNR/10)
	lo, hi := globalRange*1e-12, globalRange
	for i := 0; i < 60; i++ {
		mid := math.Sqrt(lo * hi)
		var v, n float64
		for _, p := range profiles {
			v += float64(p.N) * p.EstimateAt(mid).ErrVar
			n += float64(p.N)
		}
		if v/n <= targetVar {
			lo = mid
		} else {
			hi = mid
		}
	}
	var ub, n float64
	for _, p := range profiles {
		ub += float64(p.N) * p.EstimateAt(lo).TotalBitRate
		n += float64(p.N)
	}
	out.UniformBits = ub / n
	if out.OptBits > 0 {
		out.ExtraRatioPct = (out.UniformBits/out.OptBits - 1) * 100
	}
	tw := newTable(w)
	row(tw, "timestep", "optimized eb", "bits/value", "uniform eb")
	for i, a := range allocs {
		out.PerStepEB = append(out.PerStepEB, a.ErrorBound)
		row(tw, i+1, fmt.Sprintf("%.4g", a.ErrorBound),
			fmt.Sprintf("%.3f", a.Estimate.TotalBitRate), fmt.Sprintf("%.4g", lo))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "aggregate bits/value: optimized %.3f vs uniform %.3f (extra ratio %+.1f%%)\n",
		out.OptBits, out.UniformBits, out.ExtraRatioPct)
	return out, nil
}

// psnrOf measures the decompressed quality.
func psnrOf(a, b *grid.Field) (float64, error) { return quality.PSNR(a, b) }
