package experiments

import (
	"fmt"
	"io"
	"math"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

// AblationResult compares a design choice ON vs OFF by an error-rate metric
// (lower is better).
type AblationResult struct {
	Name    string
	WithOn  float64
	WithOff float64
}

// AblationCorrectionLayer quantifies Eq. 9's contribution: Huffman bit-rate
// error rate with and without the bin-transfer correction at high error
// bounds (DESIGN.md §15).
func AblationCorrectionLayer(cfg Config, w io.Writer) (*AblationResult, error) {
	f, err := cfg.field("cesm/TS")
	if err != nil {
		return nil, err
	}
	on, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	offOpts := cfg.modelOptions()
	offOpts.DisableCorrection = true
	off, err := core.NewProfile(f, predictor.Lorenzo, offOpts)
	if err != nil {
		return nil, err
	}
	// High-bound sweep where reconstruction feedback matters.
	rels := []float64{5e-3, 1e-2, 2e-2, 5e-2, 1e-1}
	var meas, estOn, estOff []float64
	for _, eb := range ebsFor(f, rels) {
		res, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
		if err != nil {
			return nil, err
		}
		meas = append(meas, res.Stats.BitRateHuffman)
		estOn = append(estOn, on.EstimateAt(eb).HuffmanBitRate)
		estOff = append(estOff, off.EstimateAt(eb).HuffmanBitRate)
	}
	out := &AblationResult{
		Name:    "correction-layer",
		WithOn:  quality.AccuracyOfEstimate(meas, estOn),
		WithOff: quality.AccuracyOfEstimate(meas, estOff),
	}
	fmt.Fprintf(w, "correction layer: error rate %s (on) vs %s (off)\n", pct(out.WithOn), pct(out.WithOff))
	return out, nil
}

// AblationErrorDistribution quantifies Eq. 11 vs Eq. 10: PSNR estimation
// error with the refined vs uniform error distribution at high bounds.
func AblationErrorDistribution(cfg Config, w io.Writer) (*AblationResult, error) {
	f, err := cfg.field("nyx/dark_matter_density")
	if err != nil {
		return nil, err
	}
	prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	rels := []float64{1e-2, 3e-2, 1e-1}
	var meas, refined, uniform []float64
	for _, eb := range ebsFor(f, rels) {
		res, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
		if err != nil {
			return nil, err
		}
		dec, err := compressor.Decompress(res.Bytes)
		if err != nil {
			return nil, err
		}
		psnr, err := quality.PSNR(f, dec)
		if err != nil {
			return nil, err
		}
		est := prof.EstimateAt(eb)
		meas = append(meas, psnr)
		refined = append(refined, est.PSNR)
		uniform = append(uniform, est.PSNRUniform)
	}
	out := &AblationResult{
		Name:    "error-distribution",
		WithOn:  quality.AccuracyOfEstimate(meas, refined),
		WithOff: quality.AccuracyOfEstimate(meas, uniform),
	}
	fmt.Fprintf(w, "error distribution: PSNR error rate %s (refined) vs %s (uniform)\n",
		pct(out.WithOn), pct(out.WithOff))
	return out, nil
}

// AblationSampleRate quantifies the sampling-rate trade-off: bit-rate
// estimation error at 0.1%, 1%, and 10% sampling.
func AblationSampleRate(cfg Config, w io.Writer) (map[float64]float64, error) {
	f, err := cfg.field("miranda/vx")
	if err != nil {
		return nil, err
	}
	ebs := ebsFor(f, relSweep)
	var meas []float64
	for _, eb := range ebs {
		res, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
		if err != nil {
			return nil, err
		}
		meas = append(meas, res.Stats.BitRateHuffman)
	}
	out := map[float64]float64{}
	for _, rate := range []float64{0.001, 0.01, 0.1} {
		opts := cfg.modelOptions()
		opts.SampleRate = rate
		prof, err := core.NewProfile(f, predictor.Lorenzo, opts)
		if err != nil {
			return nil, err
		}
		var est []float64
		for _, eb := range ebs {
			est = append(est, prof.EstimateAt(eb).HuffmanBitRate)
		}
		out[rate] = quality.AccuracyOfEstimate(meas, est)
		fmt.Fprintf(w, "sample rate %.3f: bit-rate error rate %s (profile %v)\n",
			rate, pct(out[rate]), prof.BuildTime.Round(1000))
	}
	return out, nil
}

// AblationAnchors quantifies the low-bit-rate anchor handling: inverse-solve
// consistency with and against the pure Eq. 2 extrapolation.
func AblationAnchors(cfg Config, w io.Writer) (*AblationResult, error) {
	f, err := cfg.field("scale/PRES")
	if err != nil {
		return nil, err
	}
	prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	base := prof.BaseErrorBound()
	baseB := prof.EstimateAt(base).HuffmanBitRate
	var withAnchors, pureEq2 []float64
	var targets []float64
	for _, target := range []float64{1.1, 1.5, 2, 3, 5} {
		targets = append(targets, target)
		eb, err := prof.ErrorBoundForBitRate(target)
		if err != nil {
			return nil, err
		}
		withAnchors = append(withAnchors, prof.EstimateAt(eb).HuffmanBitRate)
		eb2 := math.Exp2(baseB-target) * base
		pureEq2 = append(pureEq2, prof.EstimateAt(eb2).HuffmanBitRate)
	}
	out := &AblationResult{
		Name:    "low-rate-anchors",
		WithOn:  quality.AccuracyOfEstimate(targets, withAnchors),
		WithOff: quality.AccuracyOfEstimate(targets, pureEq2),
	}
	fmt.Fprintf(w, "inverse solve: achieved-vs-target error %s (anchored) vs %s (pure Eq. 2)\n",
		pct(out.WithOn), pct(out.WithOff))
	return out, nil
}

// AblationLossless compares the RLE-only lossless model against measured
// LZ77 and flate gains across bounds.
func AblationLossless(cfg Config, w io.Writer) (map[string]float64, error) {
	f, err := cfg.field("nyx/temperature")
	if err != nil {
		return nil, err
	}
	prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	rels := []float64{1e-3, 1e-2, 5e-2, 1e-1}
	backends := map[string]compressor.LosslessKind{"rle": compressor.LosslessRLE, "lz77": compressor.LosslessLZ77, "flate": compressor.LosslessFlate}
	out := map[string]float64{}
	for name, kind := range backends {
		var meas, est []float64
		for _, eb := range ebsFor(f, rels) {
			rNone, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
			if err != nil {
				return nil, err
			}
			rLL, err := compressAt(f, predictor.Lorenzo, eb, kind)
			if err != nil {
				return nil, err
			}
			gain := float64(rNone.Stats.PayloadBytesFinal) / float64(rLL.Stats.PayloadBytesFinal)
			if gain < 1 {
				gain = 1
			}
			meas = append(meas, gain)
			est = append(est, prof.EstimateAt(eb).RLEGain)
		}
		out[name] = quality.AccuracyOfEstimate(meas, est)
		fmt.Fprintf(w, "lossless model vs %s: gain error rate %s\n", name, pct(out[name]))
	}
	return out, nil
}
