package experiments

import (
	"fmt"
	"io"
	"math"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/stats"
)

// Figure3Point is one error bound's encoder breakdown.
type Figure3Point struct {
	RelEB        float64
	HuffmanRatio float64 // compression ratio from Huffman alone
	RLERatio     float64 // Huffman + built-in RLE
	LZ77Ratio    float64 // Huffman + LZ77 ("Zstandard" stand-in)
	FlateRatio   float64 // Huffman + DEFLATE ("Gzip" stand-in)
}

// Figure3 reproduces the encoder-efficiency separation plot (paper Fig. 3):
// the optional lossless stage contributes only after Huffman approaches its
// 1-bit-per-symbol limit at high error bounds.
func Figure3(cfg Config, w io.Writer) ([]Figure3Point, error) {
	f, err := cfg.field("nyx/temperature")
	if err != nil {
		return nil, err
	}
	rels := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	var out []Figure3Point
	tw := newTable(w)
	row(tw, "relEB", "Huffman", "+RLE", "+LZ77", "+Flate")
	for i, eb := range ebsFor(f, rels) {
		p := Figure3Point{RelEB: rels[i]}
		for _, s := range []struct {
			kind compressor.LosslessKind
			dst  *float64
		}{
			{compressor.LosslessNone, &p.HuffmanRatio},
			{compressor.LosslessRLE, &p.RLERatio},
			{compressor.LosslessLZ77, &p.LZ77Ratio},
			{compressor.LosslessFlate, &p.FlateRatio},
		} {
			res, err := compressAt(f, predictor.Lorenzo, eb, s.kind)
			if err != nil {
				return nil, err
			}
			*s.dst = res.Stats.Ratio
		}
		out = append(out, p)
		row(tw, fmt.Sprintf("%.0e", p.RelEB),
			fmt.Sprintf("%.2f", p.HuffmanRatio), fmt.Sprintf("%.2f", p.RLERatio),
			fmt.Sprintf("%.2f", p.LZ77Ratio), fmt.Sprintf("%.2f", p.FlateRatio))
	}
	return out, tw.Flush()
}

// Figure4Point is the sampling accuracy at one rate for one predictor.
type Figure4Point struct {
	Rate    float64
	Kind    predictor.Kind
	ErrRate float64 // |std_sampled − std_full| / std_full
}

// Figure4 reproduces the sampling-rate study (paper Fig. 4): the error
// between sampled and full prediction-error statistics falls with the rate
// and behaves similarly across the three predictors.
func Figure4(cfg Config, w io.Writer) ([]Figure4Point, error) {
	// Sampling statistics need enough points for the lowest rate (0.1% of a
	// tiny field is a handful of samples), so this experiment always uses
	// at least the Small field — it only samples, never compresses.
	if cfg.Scale < datagen.Small {
		cfg.Scale = datagen.Small
	}
	f, err := cfg.field("cesm/TS")
	if err != nil {
		return nil, err
	}
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.Regression}
	rates := []float64{0.001, 0.005, 0.01, 0.05, 0.1}
	var out []Figure4Point
	tw := newTable(w)
	row(tw, "rate", "predictor", "errRate")
	for _, kind := range kinds {
		pred, err := predictor.New(kind)
		if err != nil {
			return nil, err
		}
		full := pred.SampleErrors(f, 1.0, cfg.Seed)
		_, vFull := stats.MeanVar(full)
		sFull := math.Sqrt(vFull)
		for _, rate := range rates {
			// Average over a few seeds to show the trend, like the paper's
			// error bars.
			var errSum float64
			const reps = 5
			for rep := 0; rep < reps; rep++ {
				sampled := pred.SampleErrors(f, rate, cfg.Seed+uint64(rep)*977)
				_, vS := stats.MeanVar(sampled)
				if sFull > 0 {
					errSum += math.Abs(math.Sqrt(vS)-sFull) / sFull
				}
			}
			p := Figure4Point{Rate: rate, Kind: kind, ErrRate: errSum / reps}
			out = append(out, p)
			row(tw, fmt.Sprintf("%.3f", rate), kind.String(), pct(p.ErrRate))
		}
	}
	return out, tw.Flush()
}

// Figure5Point compares estimated and measured bit-rates at one bound.
type Figure5Point struct {
	RelEB         float64
	MeasuredHuff  float64
	EstimatedHuff float64
	MeasuredAll   float64 // with lossless stage
	EstimatedAll  float64
}

// Figure5Result carries the sweep and its Eq. 20 error rates, both over all
// rows and over the model's validated regime (measured bit-rate between 2
// and the sampling-resolution ceiling log2(#samples); the paper notes the
// model "matches the measurements very well above bit-rate of about 2").
type Figure5Result struct {
	Points       []Figure5Point
	HuffErr      float64
	AllErr       float64
	HuffErrValid float64
	AllErrValid  float64
}

// Figure5 reproduces the bit-rate estimation accuracy plot (paper Fig. 5):
// estimated vs measured bit-rate for the Huffman stage alone and for the
// full encoder chain.
func Figure5(cfg Config, w io.Writer) (*Figure5Result, error) {
	f, err := cfg.field("cesm/TS")
	if err != nil {
		return nil, err
	}
	prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	rels := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1}
	res := &Figure5Result{}
	tw := newTable(w)
	row(tw, "relEB", "measHuff", "estHuff", "measAll", "estAll")
	var hm, he, am, ae []float64
	for i, eb := range ebsFor(f, rels) {
		rH, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
		if err != nil {
			return nil, err
		}
		rA, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessFlate)
		if err != nil {
			return nil, err
		}
		est := prof.EstimateAt(eb)
		p := Figure5Point{
			RelEB:         rels[i],
			MeasuredHuff:  rH.Stats.BitRateHuffman,
			EstimatedHuff: est.HuffmanBitRate,
			MeasuredAll:   rA.Stats.BitRate,
			EstimatedAll:  est.TotalBitRate,
		}
		res.Points = append(res.Points, p)
		hm, he = append(hm, p.MeasuredHuff), append(he, p.EstimatedHuff)
		am, ae = append(am, p.MeasuredAll), append(ae, p.EstimatedAll)
		row(tw, fmt.Sprintf("%.0e", p.RelEB),
			fmt.Sprintf("%.3f", p.MeasuredHuff), fmt.Sprintf("%.3f", p.EstimatedHuff),
			fmt.Sprintf("%.3f", p.MeasuredAll), fmt.Sprintf("%.3f", p.EstimatedAll))
	}
	res.HuffErr = quality.AccuracyOfEstimate(hm, he)
	res.AllErr = quality.AccuracyOfEstimate(am, ae)
	// Validated regime: 2 bits up to what the sample size can resolve.
	ceiling := 0.9 * math.Log2(float64(len(prof.Errors)))
	var hmV, heV, amV, aeV []float64
	for i := range hm {
		if hm[i] >= 2 && hm[i] <= ceiling {
			hmV, heV = append(hmV, hm[i]), append(heV, he[i])
			amV, aeV = append(amV, am[i]), append(aeV, ae[i])
		}
	}
	res.HuffErrValid = quality.AccuracyOfEstimate(hmV, heV)
	res.AllErrValid = quality.AccuracyOfEstimate(amV, aeV)
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Huffman error rate: %s (all rows) / %s (validated regime 2..%.1f bits)\n",
		pct(res.HuffErr), pct(res.HuffErrValid), ceiling)
	fmt.Fprintf(w, "overall error rate: %s (all rows) / %s (validated regime)\n",
		pct(res.AllErr), pct(res.AllErrValid))
	return res, nil
}
