package experiments

import (
	"fmt"
	"io"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/transform"
)

// ExtensionCodecPoint is one (codec, bound) outcome for the codec-selection
// extension.
type ExtensionCodecPoint struct {
	Codec    string
	RelEB    float64
	EstBits  float64
	MeasBits float64
	MeasPSNR float64
}

// ExtensionCodecResult compares the prediction-based compressor with the
// transform-based codec (the ZFP-class extension named in the paper's
// future work), both measured and through the extended model.
type ExtensionCodecResult struct {
	Points []ExtensionCodecPoint
	// ModelPicksMatch counts bounds where the model's cheaper codec agrees
	// with the measured one.
	ModelPicksMatch int
	// Bounds is the number of bounds compared.
	Bounds int
}

// ExtensionCodecSelection extends use-case A across codec families: profile
// both the Lorenzo pipeline and the transform codec on a field, estimate
// their bit-rates per bound, and verify the model picks the codec the
// measurements favor.
func ExtensionCodecSelection(cfg Config, w io.Writer) (*ExtensionCodecResult, error) {
	f, err := cfg.field("qmcpack/einspline")
	if err != nil {
		return nil, err
	}
	lorProf, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	trProf, err := transform.NewProfile(f, cfg.SampleRate, cfg.Seed, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	out := &ExtensionCodecResult{}
	tw := newTable(w)
	row(tw, "codec", "relEB", "est bits", "meas bits", "meas PSNR")
	rels := []float64{1e-4, 1e-3, 1e-2}
	lo, hi := f.ValueRange()
	rng := hi - lo
	for _, rel := range rels {
		eb := rel * rng
		// Prediction pipeline (Huffman payload bits as the common basis).
		szRes, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
		if err != nil {
			return nil, err
		}
		szDec, err := compressor.Decompress(szRes.Bytes)
		if err != nil {
			return nil, err
		}
		szPSNR, err := quality.PSNR(f, szDec)
		if err != nil {
			return nil, err
		}
		szPt := ExtensionCodecPoint{
			Codec: "prediction", RelEB: rel,
			EstBits:  lorProf.EstimateAt(eb).HuffmanBitRate,
			MeasBits: szRes.Stats.BitRateHuffman,
			MeasPSNR: szPSNR,
		}
		// Transform codec.
		trRes, err := transform.Compress(f, transform.Options{ErrorBound: eb})
		if err != nil {
			return nil, err
		}
		trDec, err := transform.Decompress(trRes.Bytes)
		if err != nil {
			return nil, err
		}
		trPSNR, err := quality.PSNR(f, trDec)
		if err != nil {
			return nil, err
		}
		trPt := ExtensionCodecPoint{
			Codec: "transform", RelEB: rel,
			EstBits:  trProf.EstimateAt(eb).HuffmanBitRate,
			MeasBits: float64(trRes.Stats.PayloadBits) / float64(f.Len()),
			MeasPSNR: trPSNR,
		}
		out.Points = append(out.Points, szPt, trPt)
		out.Bounds++
		if (szPt.EstBits < trPt.EstBits) == (szPt.MeasBits < trPt.MeasBits) {
			out.ModelPicksMatch++
		}
		for _, p := range []ExtensionCodecPoint{szPt, trPt} {
			row(tw, p.Codec, fmt.Sprintf("%.0e", p.RelEB),
				fmt.Sprintf("%.3f", p.EstBits), fmt.Sprintf("%.3f", p.MeasBits),
				fmt.Sprintf("%.2f", p.MeasPSNR))
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "model's codec pick agrees with measurement at %d/%d bounds\n",
		out.ModelPicksMatch, out.Bounds)
	return out, nil
}
