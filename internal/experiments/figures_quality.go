package experiments

import (
	"fmt"
	"io"
	"math"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/fft"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

// Figure6Point compares PSNR estimates under the two error distributions.
type Figure6Point struct {
	Kind         predictor.Kind
	RelEB        float64
	Measured     float64
	EstUniform   float64 // Eq. 10 only
	EstRefined   float64 // Eq. 11
	ZeroShareEst float64
}

// Figure6 reproduces the PSNR estimation plot (paper Fig. 6) on the
// Nyx-like dark-matter density field with both the linear-interpolation and
// Lorenzo predictors: at high error bounds the refined distribution (Eq. 11)
// tracks the measurement where the uniform assumption (Eq. 10) breaks.
func Figure6(cfg Config, w io.Writer) ([]Figure6Point, error) {
	f, err := cfg.field("nyx/dark_matter_density")
	if err != nil {
		return nil, err
	}
	rels := []float64{1e-4, 1e-3, 1e-2, 5e-2, 1e-1}
	var out []Figure6Point
	tw := newTable(w)
	row(tw, "predictor", "relEB", "measPSNR", "estUniform", "estRefined")
	for _, kind := range []predictor.Kind{predictor.Interpolation, predictor.Lorenzo} {
		prof, err := core.NewProfile(f, kind, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		for i, eb := range ebsFor(f, rels) {
			res, err := compressAt(f, kind, eb, compressor.LosslessNone)
			if err != nil {
				return nil, err
			}
			dec, err := compressor.Decompress(res.Bytes)
			if err != nil {
				return nil, err
			}
			psnr, err := quality.PSNR(f, dec)
			if err != nil {
				return nil, err
			}
			est := prof.EstimateAt(eb)
			p := Figure6Point{
				Kind: kind, RelEB: rels[i], Measured: psnr,
				EstUniform: est.PSNRUniform, EstRefined: est.PSNR,
				ZeroShareEst: est.ZeroShare,
			}
			out = append(out, p)
			row(tw, kind.String(), fmt.Sprintf("%.0e", p.RelEB),
				fmt.Sprintf("%.2f", p.Measured), fmt.Sprintf("%.2f", p.EstUniform),
				fmt.Sprintf("%.2f", p.EstRefined))
		}
	}
	return out, tw.Flush()
}

// Figure7Point compares SSIM estimates (in 1−SSIM space, as plotted).
type Figure7Point struct {
	Field       string
	RelEB       float64
	Measured    float64 // 1 − measured global SSIM
	EstUniform  float64
	EstRefined  float64
	MeasuredWin float64 // 1 − windowed SSIM, for reference
}

// Figure7 reproduces the SSIM estimation plot (paper Fig. 7) on the
// CESM-like and RTM-like fields.
func Figure7(cfg Config, w io.Writer) ([]Figure7Point, error) {
	var out []Figure7Point
	tw := newTable(w)
	row(tw, "field", "relEB", "1-SSIM(meas)", "1-SSIM(estU)", "1-SSIM(estR)", "1-SSIM(win)")
	for _, name := range []string{"cesm/TS", "rtm/snapshot_2"} {
		f, err := cfg.field(name)
		if err != nil {
			return nil, err
		}
		prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		rels := []float64{1e-4, 1e-3, 1e-2, 1e-1}
		for i, eb := range ebsFor(f, rels) {
			res, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
			if err != nil {
				return nil, err
			}
			dec, err := compressor.Decompress(res.Bytes)
			if err != nil {
				return nil, err
			}
			g, err := quality.GlobalSSIM(f, dec)
			if err != nil {
				return nil, err
			}
			win, err := quality.WindowedSSIM(f, dec, 8)
			if err != nil {
				return nil, err
			}
			est := prof.EstimateAt(eb)
			p := Figure7Point{
				Field: name, RelEB: rels[i],
				Measured: 1 - g, EstUniform: 1 - est.SSIMUniform, EstRefined: 1 - est.SSIM,
				MeasuredWin: 1 - win,
			}
			out = append(out, p)
			row(tw, name, fmt.Sprintf("%.0e", p.RelEB),
				fmt.Sprintf("%.3e", p.Measured), fmt.Sprintf("%.3e", p.EstUniform),
				fmt.Sprintf("%.3e", p.EstRefined), fmt.Sprintf("%.3e", p.MeasuredWin))
		}
	}
	return out, tw.Flush()
}

// Figure8Result compares measured and estimated power-spectrum degradation.
type Figure8Result struct {
	// Shells are the wavenumber shells (1..kmax; DC omitted).
	Shells []int
	// MeasuredRatio is P_dec(k)/P_orig(k) from actual decompression.
	MeasuredRatio []float64
	// EstUniform and EstRefined propagate the two error-distribution
	// variances through the spectrum model.
	EstUniform []float64
	EstRefined []float64
	// RMSUniform and RMSRefined summarize model error vs measurement.
	RMSUniform, RMSRefined float64
}

// Figure8 reproduces the FFT analysis-quality plot (paper Fig. 8) on the
// Nyx-like temperature field at a high error bound: the refined error
// distribution estimates the spectrum distortion better than uniform.
func Figure8(cfg Config, w io.Writer) (*Figure8Result, error) {
	f, err := cfg.field("nyx/temperature")
	if err != nil {
		return nil, err
	}
	prof, err := core.NewProfile(f, predictor.Lorenzo, cfg.modelOptions())
	if err != nil {
		return nil, err
	}
	// High bound, like the paper's ABS 500 on Nyx temperature.
	eb := prof.Range * 5e-2
	res, err := compressAt(f, predictor.Lorenzo, eb, compressor.LosslessNone)
	if err != nil {
		return nil, err
	}
	dec, err := compressor.Decompress(res.Bytes)
	if err != nil {
		return nil, err
	}
	orig, err := fft.PowerSpectrum(f.Data, f.Dims)
	if err != nil {
		return nil, err
	}
	decSpec, err := fft.PowerSpectrum(dec.Data, dec.Dims)
	if err != nil {
		return nil, err
	}
	measured := fft.SpectrumRatio(orig, decSpec)
	est := prof.EstimateAt(eb)
	estU := core.EstimateSpectrumRatio(orig, f.Len(), est.ErrVarUniform)
	estR := core.EstimateSpectrumRatio(orig, f.Len(), est.ErrVar)

	out := &Figure8Result{}
	tw := newTable(w)
	row(tw, "k", "measured", "estUniform", "estRefined")
	for k := 1; k < len(measured); k++ {
		out.Shells = append(out.Shells, k)
		out.MeasuredRatio = append(out.MeasuredRatio, measured[k])
		out.EstUniform = append(out.EstUniform, estU[k])
		out.EstRefined = append(out.EstRefined, estR[k])
		du := estU[k] - measured[k]
		dr := estR[k] - measured[k]
		out.RMSUniform += du * du
		out.RMSRefined += dr * dr
		row(tw, k, fmt.Sprintf("%.4f", measured[k]), fmt.Sprintf("%.4f", estU[k]), fmt.Sprintf("%.4f", estR[k]))
	}
	n := float64(len(out.Shells))
	if n > 0 {
		out.RMSUniform = math.Sqrt(out.RMSUniform / n)
		out.RMSRefined = math.Sqrt(out.RMSRefined / n)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "RMS deviation: uniform %.4f, refined %.4f\n", out.RMSUniform, out.RMSRefined)
	return out, nil
}
