package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	rows, err := TableI(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 datasets", len(rows))
	}
	if !strings.Contains(buf.String(), "cesm") {
		t.Fatal("table output missing cesm")
	}
}

func TestTableIIAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full accuracy table")
	}
	var buf bytes.Buffer
	res, err := TableII(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 17 {
		t.Fatalf("rows = %d, want 17 fields", len(res.Rows))
	}
	// The paper reports ~5-7% average error rates; tiny synthetic fields
	// are harder, so assert a loose ceiling that still catches regressions.
	if res.AvgHuff > 0.35 {
		t.Errorf("average Huffman error rate %.1f%% too high", res.AvgHuff*100)
	}
	if res.AvgPSNR > 0.25 {
		t.Errorf("average PSNR error rate %.1f%% too high", res.AvgPSNR*100)
	}
	if res.AvgSample > 0.05 {
		t.Errorf("average sampling error %.2f%% too high", res.AvgSample*100)
	}
}

func TestFigure3Separation(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure3(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// At the loosest bound the lossless stage must add ratio beyond
	// Huffman alone; at the tightest it should add little.
	last := pts[len(pts)-1]
	if last.FlateRatio <= last.HuffmanRatio {
		t.Errorf("high-eb lossless did not help: flate %.2f vs huffman %.2f", last.FlateRatio, last.HuffmanRatio)
	}
	first := pts[0]
	if first.FlateRatio > first.HuffmanRatio*1.5 {
		t.Errorf("low-eb lossless contribution unexpectedly large: %.2f vs %.2f", first.FlateRatio, first.HuffmanRatio)
	}
}

func TestFigure4ErrorFallsWithRate(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure4(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// For each predictor, the coarsest rate must have a larger error than
	// the finest.
	byKind := map[string][]Figure4Point{}
	for _, p := range pts {
		byKind[p.Kind.String()] = append(byKind[p.Kind.String()], p)
	}
	for kind, series := range byKind {
		if series[0].ErrRate < series[len(series)-1].ErrRate {
			t.Errorf("%s: sampling error did not shrink with rate: %v -> %v",
				kind, series[0].ErrRate, series[len(series)-1].ErrRate)
		}
	}
}

func TestFigure5(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure5(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if res.HuffErrValid > 0.15 {
		t.Errorf("validated-regime Huffman error rate %.1f%%", res.HuffErrValid*100)
	}
	if res.HuffErr > 0.40 {
		t.Errorf("all-rows Huffman error rate %.1f%%", res.HuffErr*100)
	}
}

func TestFigure6RefinedBeatsUniformAtHighEB(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure6(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// At the highest bound with substantial central-bin mass, the refined
	// estimate must be at least as close to the measurement as uniform.
	for _, p := range pts {
		if p.ZeroShareEst < 0.8 {
			continue
		}
		du := math.Abs(p.EstUniform - p.Measured)
		dr := math.Abs(p.EstRefined - p.Measured)
		if dr > du+1.0 {
			t.Errorf("%s rel=%g: refined worse than uniform (%.2f vs %.2f dB off)",
				p.Kind, p.RelEB, dr, du)
		}
	}
}

func TestFigure7(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure7(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Measured < 0 || p.Measured > 1 {
			t.Errorf("1-SSIM out of range: %v", p.Measured)
		}
	}
}

func TestFigure8RefinedNoWorse(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure8(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shells) == 0 {
		t.Fatal("no shells")
	}
	if res.RMSRefined > res.RMSUniform*1.05 {
		t.Errorf("refined spectrum model (%.4f) worse than uniform (%.4f)", res.RMSRefined, res.RMSUniform)
	}
}

func TestFigure9ModelFaster(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure9(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1 {
		t.Errorf("model not faster than TAE: speedup %.2f", res.Speedup)
	}
}

func TestFigure10(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure10(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Modeled) == 0 || len(s.Measured) == 0 {
			t.Fatalf("%s: empty series", s.Kind)
		}
	}
}

func TestFigure11WithinBudget(t *testing.T) {
	var buf bytes.Buffer
	groups, err := Figure11(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 15 {
		t.Fatalf("groups = %d", len(groups))
	}
	over := 0
	for _, g := range groups {
		if g.Overflowed {
			over++
		}
	}
	// The paper observes rare overflows (~5%); tolerate up to 3/15 here.
	if over > 3 {
		t.Errorf("%d/15 groups overflowed the assigned space", over)
	}
}

func TestFigure12OptimizedNoWorse(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure12(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerStepEB) == 0 {
		t.Fatal("no per-step bounds")
	}
	if res.OptBits > res.UniformBits*1.02 {
		t.Errorf("optimized bits %.3f worse than uniform %.3f", res.OptBits, res.UniformBits)
	}
}

func TestFigure13ModelMeetsTargetWithFewerBits(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure13(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinPSNRModel < res.TargetPSNR-1.5 {
		t.Errorf("model run fell below target: min %.2f dB vs %.0f", res.MinPSNRModel, res.TargetPSNR)
	}
	if res.MeanBitsModel > res.MeanBitsTraditional*1.05 {
		t.Errorf("model bits %.3f not better than traditional %.3f",
			res.MeanBitsModel, res.MeanBitsTraditional)
	}
}

func TestFigure14ModelFastest(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure14(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 3 {
		t.Fatalf("strategies = %d", len(res.Strategies))
	}
	if res.SpeedupVsTAE < 1 {
		t.Errorf("model not faster than in-situ TAE: %.2fx", res.SpeedupVsTAE)
	}
}

func TestAblations(t *testing.T) {
	cfg := Quick()
	var buf bytes.Buffer
	if res, err := AblationCorrectionLayer(cfg, &buf); err != nil {
		t.Fatal(err)
	} else if res.WithOn > res.WithOff*1.5+0.05 {
		t.Errorf("correction layer hurts accuracy: %.3f vs %.3f", res.WithOn, res.WithOff)
	}
	if res, err := AblationErrorDistribution(cfg, &buf); err != nil {
		t.Fatal(err)
	} else if res.WithOn > res.WithOff*1.5+0.05 {
		t.Errorf("refined distribution hurts accuracy: %.3f vs %.3f", res.WithOn, res.WithOff)
	}
	if rates, err := AblationSampleRate(cfg, &buf); err != nil {
		t.Fatal(err)
	} else if len(rates) != 3 {
		t.Errorf("sample-rate ablation returned %d entries", len(rates))
	}
	if _, err := AblationAnchors(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationLossless(cfg, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionCodecSelection(t *testing.T) {
	var buf bytes.Buffer
	res, err := ExtensionCodecSelection(Quick(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounds == 0 || len(res.Points) != 2*res.Bounds {
		t.Fatalf("points = %d for %d bounds", len(res.Points), res.Bounds)
	}
	// The extended model should agree with the measured ranking on the
	// majority of bounds.
	if res.ModelPicksMatch*2 < res.Bounds {
		t.Errorf("model picks matched only %d/%d", res.ModelPicksMatch, res.Bounds)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full registry")
	}
	if err := RunAll(Quick(), io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestNamesStable(t *testing.T) {
	n1, n2 := Names(), Names()
	if len(n1) != len(Registry()) {
		t.Fatal("Names incomplete")
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Names not stable")
		}
	}
}
