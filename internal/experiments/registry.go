package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one named experiment, printing its artifact to w.
type Runner func(cfg Config, w io.Writer) error

// Registry maps experiment ids (DESIGN.md §15) to runners.
func Registry() map[string]Runner {
	wrap := func(f func(Config, io.Writer) error) Runner { return f }
	return map[string]Runner{
		"tab1":           wrap(func(c Config, w io.Writer) error { _, err := TableI(c, w); return err }),
		"tab2":           wrap(func(c Config, w io.Writer) error { _, err := TableII(c, w); return err }),
		"fig3":           wrap(func(c Config, w io.Writer) error { _, err := Figure3(c, w); return err }),
		"fig4":           wrap(func(c Config, w io.Writer) error { _, err := Figure4(c, w); return err }),
		"fig5":           wrap(func(c Config, w io.Writer) error { _, err := Figure5(c, w); return err }),
		"fig6":           wrap(func(c Config, w io.Writer) error { _, err := Figure6(c, w); return err }),
		"fig7":           wrap(func(c Config, w io.Writer) error { _, err := Figure7(c, w); return err }),
		"fig8":           wrap(func(c Config, w io.Writer) error { _, err := Figure8(c, w); return err }),
		"fig9":           wrap(func(c Config, w io.Writer) error { _, err := Figure9(c, w); return err }),
		"fig10":          wrap(func(c Config, w io.Writer) error { _, err := Figure10(c, w); return err }),
		"fig11":          wrap(func(c Config, w io.Writer) error { _, err := Figure11(c, w); return err }),
		"fig12":          wrap(func(c Config, w io.Writer) error { _, err := Figure12(c, w); return err }),
		"fig13":          wrap(func(c Config, w io.Writer) error { _, err := Figure13(c, w); return err }),
		"fig14":          wrap(func(c Config, w io.Writer) error { _, err := Figure14(c, w); return err }),
		"abl-correction": wrap(func(c Config, w io.Writer) error { _, err := AblationCorrectionLayer(c, w); return err }),
		"abl-errdist":    wrap(func(c Config, w io.Writer) error { _, err := AblationErrorDistribution(c, w); return err }),
		"abl-samplerate": wrap(func(c Config, w io.Writer) error { _, err := AblationSampleRate(c, w); return err }),
		"abl-anchors":    wrap(func(c Config, w io.Writer) error { _, err := AblationAnchors(c, w); return err }),
		"abl-lossless":   wrap(func(c Config, w io.Writer) error { _, err := AblationLossless(c, w); return err }),
		"ext-codec":      wrap(func(c Config, w io.Writer) error { _, err := ExtensionCodecSelection(c, w); return err }),
	}
}

// Names lists experiment ids in stable order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in order, with headers.
func RunAll(cfg Config, w io.Writer) error {
	reg := Registry()
	for _, name := range Names() {
		fmt.Fprintf(w, "\n=== %s ===\n", name)
		if err := reg[name](cfg, w); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}
