package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"rqm/internal/cluster"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

// Figure13Point is one snapshot's outcome under one strategy.
type Figure13Point struct {
	Snapshot string
	BitRate  float64
	PSNR     float64
}

// Figure13Result compares the offline (traditional) strategy with the
// model-driven in-situ strategy at a PSNR floor.
type Figure13Result struct {
	TargetPSNR  float64
	Traditional []Figure13Point
	Model       []Figure13Point
	// MeanBitsTraditional vs MeanBitsModel show the bit-rate saving while
	// every snapshot still meets the floor.
	MeanBitsTraditional, MeanBitsModel float64
	// MinPSNRModel verifies the floor holds for the model-driven run.
	MinPSNRModel float64
}

// candidateRels generates the offline candidate set, mirroring the paper's
// {ABS 1e-4 .. 1e-8} fixed absolute bounds on RTM: the candidates are
// *absolute* bounds derived from the global range across all snapshots, so
// the traditional approach suffers the Liebig's-barrel effect the paper
// describes (one worst-case bound applied to every snapshot).
var candidateRels = []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}

// absCandidates converts the relative candidates to absolute bounds using
// the widest snapshot range (largest first).
func absCandidates(fields []*grid.Field) []float64 {
	globalRange := 0.0
	for _, f := range fields {
		lo, hi := f.ValueRange()
		if r := hi - lo; r > globalRange {
			globalRange = r
		}
	}
	out := make([]float64, len(candidateRels))
	for i, r := range candidateRels {
		out[i] = r * globalRange
	}
	return out
}

// Figure13 reproduces the per-snapshot ratio-quality comparison (paper
// Fig. 13, target PSNR 56 dB): the traditional approach picks one
// worst-case bound for all snapshots (Liebig's barrel); the model picks a
// per-snapshot bound that hugs the target.
func Figure13(cfg Config, w io.Writer) (*Figure13Result, error) {
	const target = 56.0
	ds, err := datagen.Generate("rtm", cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	out := &Figure13Result{TargetPSNR: target, MinPSNRModel: math.Inf(1)}

	// Traditional: offline trial-and-error over the shared absolute
	// candidate set on every snapshot; choose the single bound under which
	// all snapshots meet the target (the Liebig's barrel).
	cands := absCandidates(ds.Fields)
	chosen := 0.0
	for _, eb := range cands { // largest (cheapest) first
		allOK := true
		for _, f := range ds.Fields {
			psnr, _, err := measuredPSNRAt(f, eb)
			if err != nil {
				return nil, err
			}
			if psnr < target {
				allOK = false
				break
			}
		}
		if allOK {
			chosen = eb
			break
		}
	}
	if chosen == 0 {
		chosen = cands[len(cands)-1]
	}
	for _, f := range ds.Fields {
		psnr, stats, err := measuredPSNRAt(f, chosen)
		if err != nil {
			return nil, err
		}
		out.Traditional = append(out.Traditional, Figure13Point{Snapshot: f.Name, BitRate: stats.BitRate, PSNR: psnr})
		out.MeanBitsTraditional += stats.BitRate
	}
	out.MeanBitsTraditional /= float64(len(ds.Fields))

	// Model-driven: per-snapshot bound from ErrorBoundForPSNR.
	for _, f := range ds.Fields {
		prof, err := core.NewProfile(f, predictor.Interpolation, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		// Keep a 3 dB guard band to absorb model error (the analog of the
		// paper's 20% headroom in the memory use-case): high-bound
		// interpolation inherits reconstruction error from coarse levels,
		// which pushes the true error distribution toward the bin edges and
		// past the Eq. 10/11 variance.
		eb, err := prof.ErrorBoundForPSNR(target + 3)
		if err != nil {
			return nil, err
		}
		res, err := compressAt(f, predictor.Interpolation, eb, compressor.LosslessFlate)
		if err != nil {
			return nil, err
		}
		dec, err := compressor.Decompress(res.Bytes)
		if err != nil {
			return nil, err
		}
		psnr, err := quality.PSNR(f, dec)
		if err != nil {
			return nil, err
		}
		out.Model = append(out.Model, Figure13Point{Snapshot: f.Name, BitRate: res.Stats.BitRate, PSNR: psnr})
		out.MeanBitsModel += res.Stats.BitRate
		if psnr < out.MinPSNRModel {
			out.MinPSNRModel = psnr
		}
	}
	out.MeanBitsModel /= float64(len(ds.Fields))

	tw := newTable(w)
	row(tw, "snapshot", "trad bits", "trad PSNR", "model bits", "model PSNR")
	for i := range out.Traditional {
		row(tw, out.Traditional[i].Snapshot,
			fmt.Sprintf("%.3f", out.Traditional[i].BitRate), fmt.Sprintf("%.2f", out.Traditional[i].PSNR),
			fmt.Sprintf("%.3f", out.Model[i].BitRate), fmt.Sprintf("%.2f", out.Model[i].PSNR))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "mean bits/value: traditional %.3f vs model %.3f (target %.0f dB, model min PSNR %.2f)\n",
		out.MeanBitsTraditional, out.MeanBitsModel, target, out.MinPSNRModel)
	return out, nil
}

func measuredPSNRAt(f *grid.Field, absEB float64) (float64, *compressor.Stats, error) {
	res, err := compressAt(f, predictor.Interpolation, absEB, compressor.LosslessFlate)
	if err != nil {
		return 0, nil, err
	}
	dec, err := compressor.Decompress(res.Bytes)
	if err != nil {
		return 0, nil, err
	}
	psnr, err := quality.PSNR(f, dec)
	if err != nil {
		return 0, nil, err
	}
	return psnr, &res.Stats, nil
}

// Figure14Strategy aggregates one approach's dump sequence.
type Figure14Strategy struct {
	Name    string
	Reports []cluster.DumpReport
	Summary cluster.Summary
}

// Figure14Result compares the three dumping strategies on the simulated
// 128-rank cluster.
type Figure14Result struct {
	Baseline     time.Duration // no-compression dump time per snapshot
	Strategies   []Figure14Strategy
	SpeedupVsTr  float64 // total time, model vs traditional
	SpeedupVsTAE float64
	// MaxSpeedupVsTr / MaxSpeedupVsTAE are the largest per-snapshot ratios
	// (the paper's "up to 3.4× / 2.2×" numbers are per-snapshot maxima).
	MaxSpeedupVsTr  float64
	MaxSpeedupVsTAE float64
}

// Figure14 reproduces the parallel data-dumping comparison (paper Fig. 14):
// "Tr" (traditional offline bound, no online optimization), "TAE" (in-situ
// trial-and-error per snapshot), and the model-driven approach. The run is
// weak-scaled: each of the 128 ranks holds one generated snapshot share, so
// per-rank CPU costs are the measured single-core times and the shared file
// system sees ranks× the compressed bytes — the regime where the paper's
// 682 GB dataset lives (its uncompressed dump is I/O-bound at 29.4 s).
func Figure14(cfg Config, w io.Writer) (*Figure14Result, error) {
	const target = 56.0
	machine := cluster.DefaultBebop()
	ranks := int64(machine.Ranks)
	ds, err := datagen.Generate("rtm", cfg.Seed, cfg.Scale)
	if err != nil {
		return nil, err
	}
	out := &Figure14Result{}
	out.Baseline = machine.IOTime(ranks * ds.TotalBytes() / int64(len(ds.Fields)))

	// Traditional: offline-chosen single absolute bound (optimization cost
	// excluded, as in the paper), applied to every snapshot.
	cands := absCandidates(ds.Fields)
	tradEB := cands[len(cands)-1] // conservative offline pick
	for _, eb := range cands {
		allOK := true
		for _, f := range ds.Fields {
			psnr, _, err := measuredPSNRAt(f, eb)
			if err != nil {
				return nil, err
			}
			if psnr < target {
				allOK = false
				break
			}
		}
		if allOK {
			tradEB = eb
			break
		}
	}
	var trad Figure14Strategy
	trad.Name = "Tr"
	for _, f := range ds.Fields {
		start := time.Now()
		res, err := compressAt(f, predictor.Interpolation, tradEB, compressor.LosslessFlate)
		if err != nil {
			return nil, err
		}
		compCPU := time.Since(start)
		trad.Reports = append(trad.Reports,
			machine.Dump(f.Name, 0, compCPU*time.Duration(ranks),
				ranks*res.Stats.CompressedBytes, int(ranks)*f.Len(), 0))
	}
	trad.Summary = cluster.Summarize(trad.Reports)

	// In-situ TAE: each snapshot tries all candidates online (optimization
	// cost = the trial compressions), then compresses with the pick.
	var tae Figure14Strategy
	tae.Name = "TAE"
	for _, f := range ds.Fields {
		optStart := time.Now()
		best := cands[len(cands)-1]
		for _, eb := range cands {
			psnr, _, err := measuredPSNRAt(f, eb)
			if err != nil {
				return nil, err
			}
			if psnr >= target {
				best = eb
				break
			}
		}
		optCPU := time.Since(optStart)
		start := time.Now()
		res, err := compressAt(f, predictor.Interpolation, best, compressor.LosslessFlate)
		if err != nil {
			return nil, err
		}
		compCPU := time.Since(start)
		tae.Reports = append(tae.Reports,
			machine.Dump(f.Name, optCPU*time.Duration(ranks), compCPU*time.Duration(ranks),
				ranks*res.Stats.CompressedBytes, int(ranks)*f.Len(), 0))
	}
	tae.Summary = cluster.Summarize(tae.Reports)

	// Model-driven: profile + inverse solve per snapshot (optimization),
	// then one compression.
	var mod Figure14Strategy
	mod.Name = "Model"
	for _, f := range ds.Fields {
		optStart := time.Now()
		prof, err := core.NewProfile(f, predictor.Interpolation, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		eb, err := prof.ErrorBoundForPSNR(target + 3)
		if err != nil {
			return nil, err
		}
		optCPU := time.Since(optStart)
		start := time.Now()
		res, err := compressAt(f, predictor.Interpolation, eb, compressor.LosslessFlate)
		if err != nil {
			return nil, err
		}
		compCPU := time.Since(start)
		mod.Reports = append(mod.Reports,
			machine.Dump(f.Name, optCPU*time.Duration(ranks), compCPU*time.Duration(ranks),
				ranks*res.Stats.CompressedBytes, int(ranks)*f.Len(), 0))
	}
	mod.Summary = cluster.Summarize(mod.Reports)

	out.Strategies = []Figure14Strategy{trad, tae, mod}
	if mod.Summary.Total > 0 {
		out.SpeedupVsTr = float64(trad.Summary.Total) / float64(mod.Summary.Total)
		out.SpeedupVsTAE = float64(tae.Summary.Total) / float64(mod.Summary.Total)
	}
	for i := range mod.Reports {
		mt := mod.Reports[i].Total()
		if mt <= 0 {
			continue
		}
		if s := float64(trad.Reports[i].Total()) / float64(mt); s > out.MaxSpeedupVsTr {
			out.MaxSpeedupVsTr = s
		}
		if s := float64(tae.Reports[i].Total()) / float64(mt); s > out.MaxSpeedupVsTAE {
			out.MaxSpeedupVsTAE = s
		}
	}

	tw := newTable(w)
	row(tw, "strategy", "snapshot", "op(s)", "comp(s)", "io(s)", "total(s)")
	for _, s := range out.Strategies {
		for _, r := range s.Reports {
			row(tw, s.Name, r.Snapshot,
				fmt.Sprintf("%.4f", r.OptimizationTime.Seconds()),
				fmt.Sprintf("%.4f", r.CompressTime.Seconds()),
				fmt.Sprintf("%.4f", r.IOTime.Seconds()),
				fmt.Sprintf("%.4f", r.Total().Seconds()))
		}
		row(tw, s.Name, "TOTAL", "-", "-", "-", fmt.Sprintf("%.4f", s.Summary.Total.Seconds()))
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "baseline (no compression) per-snapshot I/O: %.3fs\n", out.Baseline.Seconds())
	fmt.Fprintf(w, "model speedup (totals): %.2fx vs traditional, %.2fx vs in-situ TAE\n",
		out.SpeedupVsTr, out.SpeedupVsTAE)
	fmt.Fprintf(w, "model speedup (per-snapshot max): %.2fx vs traditional, %.2fx vs in-situ TAE\n",
		out.MaxSpeedupVsTr, out.MaxSpeedupVsTAE)
	return out, nil
}
