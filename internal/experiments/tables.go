package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/stats"
)

// TableIRow describes one dataset stand-in.
type TableIRow struct {
	Name        string
	Dim         int
	Bytes       int64
	Description string
	Format      string
}

// TableI regenerates the dataset inventory (paper Table I) at the
// configured scale.
func TableI(cfg Config, w io.Writer) ([]TableIRow, error) {
	var rows []TableIRow
	tw := newTable(w)
	row(tw, "Name", "Dim", "Size", "Description", "Format")
	for _, name := range datagen.Names() {
		ds, err := datagen.Generate(name, cfg.Seed, cfg.Scale)
		if err != nil {
			return nil, err
		}
		r := TableIRow{
			Name:        name,
			Dim:         ds.Fields[0].Rank(),
			Bytes:       ds.TotalBytes(),
			Description: ds.Description,
			Format:      ds.Format,
		}
		rows = append(rows, r)
		row(tw, r.Name, fmt.Sprintf("%dD", r.Dim), fmtBytes(r.Bytes), r.Description, r.Format)
	}
	return rows, tw.Flush()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// TableIIRow holds per-field model accuracy (all values are error rates as
// fractions; the paper prints percentages).
type TableIIRow struct {
	Dataset   string
	Field     string
	SampleErr float64
	HuffErr   float64
	// LosslessErr compares the modeled RLE stage against the measured
	// lossless backend's extra gain.
	LosslessErr float64
	HuffLLErr   float64
	PSNRErr     float64
	SSIMErr     float64 // NaN when not applicable (1D/4D fields)
}

// TableIIResult is the full accuracy table plus averages.
type TableIIResult struct {
	Rows []TableIIRow
	// Averages over applicable rows, as error-rate fractions.
	AvgSample, AvgHuff, AvgLossless, AvgHuffLL, AvgPSNR, AvgSSIM float64
}

// TableII reproduces the paper's main accuracy table: for each of the 17
// fields, the sampling error and the Eq. 20 error rates of the Huffman,
// lossless, overall-ratio, PSNR, and SSIM estimates across the error-bound
// sweep.
func TableII(cfg Config, w io.Writer) (*TableIIResult, error) {
	res := &TableIIResult{}
	tw := newTable(w)
	row(tw, "Dataset", "Field", "SampleErr", "HuffErr", "LosslessErr", "Huff+LLErr", "PSNRErr", "SSIMErr")
	for _, fc := range tableIIFields {
		f, err := cfg.field(fc.Field)
		if err != nil {
			return nil, err
		}
		r := TableIIRow{Dataset: fc.Dataset, Field: shortField(fc.Field), SSIMErr: math.NaN()}

		// Sampling accuracy: std of sampled prediction errors vs the full
		// scan, relative to the value range (Fig. 4 / "Sample Err").
		pred, err := predictor.New(fc.Kind)
		if err != nil {
			return nil, err
		}
		fullErrs := pred.SampleErrors(f, 1.0, cfg.Seed)
		_, fullVar := stats.MeanVar(fullErrs)
		prof, err := core.NewProfile(f, fc.Kind, cfg.modelOptions())
		if err != nil {
			return nil, err
		}
		lo, hi := f.ValueRange()
		rng := hi - lo
		if rng > 0 {
			r.SampleErr = math.Abs(prof.ErrStd()-math.Sqrt(fullVar)) / rng
		}

		var huffM, huffE []float64
		var llM, llE []float64
		var totM, totE []float64
		var psnrM, psnrE []float64
		var ssimM, ssimE []float64
		for _, eb := range ebsFor(f, relSweep) {
			resHuff, err := compressAt(f, fc.Kind, eb, compressor.LosslessNone)
			if err != nil {
				return nil, err
			}
			resLL, err := compressAt(f, fc.Kind, eb, compressor.LosslessFlate)
			if err != nil {
				return nil, err
			}
			est := prof.EstimateAt(eb)

			huffM = append(huffM, resHuff.Stats.BitRateHuffman)
			huffE = append(huffE, est.HuffmanBitRate)

			// Lossless stage gain: measured = huffman payload bytes over
			// final payload bytes; modeled = Eq. 4 RLE gain.
			measGain := float64(resHuff.Stats.PayloadBytesFinal) / float64(resLL.Stats.PayloadBytesFinal)
			if measGain < 1 {
				measGain = 1
			}
			llM = append(llM, measGain)
			llE = append(llE, est.RLEGain)

			totM = append(totM, resLL.Stats.BitRate)
			totE = append(totE, est.TotalBitRate)
		}
		for _, eb := range ebsFor(f, relSweepQuality) {
			res, err := compressAt(f, fc.Kind, eb, compressor.LosslessNone)
			if err != nil {
				return nil, err
			}
			est := prof.EstimateAt(eb)
			dec, err := compressor.Decompress(res.Bytes)
			if err != nil {
				return nil, err
			}
			psnr, err := quality.PSNR(f, dec)
			if err != nil {
				return nil, err
			}
			if !math.IsInf(psnr, 0) {
				psnrM = append(psnrM, psnr)
				psnrE = append(psnrE, est.PSNR)
			}
			if fc.HasSSIM {
				ssim, err := quality.GlobalSSIM(f, dec)
				if err != nil {
					return nil, err
				}
				// Eq. 20 compares the metric values themselves (Fig. 7 uses
				// the 1−SSIM view only for plotting).
				ssimM = append(ssimM, ssim)
				ssimE = append(ssimE, est.SSIM)
			}
		}
		r.HuffErr = quality.AccuracyOfEstimate(huffM, huffE)
		r.LosslessErr = quality.AccuracyOfEstimate(llM, llE)
		r.HuffLLErr = quality.AccuracyOfEstimate(totM, totE)
		r.PSNRErr = quality.AccuracyOfEstimate(psnrM, psnrE)
		if fc.HasSSIM {
			r.SSIMErr = quality.AccuracyOfEstimate(ssimM, ssimE)
		}
		res.Rows = append(res.Rows, r)
		row(tw, r.Dataset, r.Field, pct(r.SampleErr), pct(r.HuffErr), pct(r.LosslessErr),
			pct(r.HuffLLErr), pct(r.PSNRErr), pctOrDash(r.SSIMErr))
	}
	// Averages.
	var nS int
	for _, r := range res.Rows {
		res.AvgSample += r.SampleErr
		res.AvgHuff += r.HuffErr
		res.AvgLossless += r.LosslessErr
		res.AvgHuffLL += r.HuffLLErr
		res.AvgPSNR += r.PSNRErr
		if !math.IsNaN(r.SSIMErr) {
			res.AvgSSIM += r.SSIMErr
			nS++
		}
	}
	n := float64(len(res.Rows))
	res.AvgSample /= n
	res.AvgHuff /= n
	res.AvgLossless /= n
	res.AvgHuffLL /= n
	res.AvgPSNR /= n
	if nS > 0 {
		res.AvgSSIM /= float64(nS)
	}
	row(tw, "Average", "-", pct(res.AvgSample), pct(res.AvgHuff), pct(res.AvgLossless),
		pct(res.AvgHuffLL), pct(res.AvgPSNR), pct(res.AvgSSIM))
	return res, tw.Flush()
}

func shortField(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

func pctOrDash(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return pct(v)
}
