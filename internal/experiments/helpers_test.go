package experiments

import (
	"testing"

	"rqm/internal/datagen"
	"rqm/internal/grid"
)

func TestAbsCandidatesUseGlobalRange(t *testing.T) {
	a := grid.MustNew("a", grid.Float32, 8)
	b := grid.MustNew("b", grid.Float32, 8)
	for i := range a.Data {
		a.Data[i] = float64(i) // range 7
	}
	for i := range b.Data {
		b.Data[i] = float64(i) * 10 // range 70
	}
	cands := absCandidates([]*grid.Field{a, b})
	if len(cands) != len(candidateRels) {
		t.Fatalf("candidates = %d", len(cands))
	}
	for i, rel := range candidateRels {
		want := rel * 70
		if cands[i] != want {
			t.Fatalf("candidate %d = %v, want %v (global range)", i, cands[i], want)
		}
	}
	// Largest first, strictly decreasing.
	for i := 1; i < len(cands); i++ {
		if cands[i] >= cands[i-1] {
			t.Fatal("candidates not decreasing")
		}
	}
}

func TestEbsForScalesByRange(t *testing.T) {
	f := grid.MustNew("x", grid.Float64, 4)
	copy(f.Data, []float64{0, 1, 2, 10})
	ebs := ebsFor(f, []float64{1e-2, 1e-1})
	if ebs[0] != 0.1 || ebs[1] != 1.0 {
		t.Fatalf("ebsFor = %v", ebs)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := Default()
	if d.Scale != datagen.Small || d.SampleRate != 0.01 {
		t.Fatalf("Default() = %+v", d)
	}
	q := Quick()
	if q.Scale != datagen.Tiny || q.SampleRate <= d.SampleRate {
		t.Fatalf("Quick() = %+v", q)
	}
}

func TestTableIIFieldListMatchesPaper(t *testing.T) {
	if len(tableIIFields) != 17 {
		t.Fatalf("Table II evaluates %d fields, want 17", len(tableIIFields))
	}
	// 1D and 4D fields report no SSIM, like the paper's dashes.
	for _, fc := range tableIIFields {
		f, err := datagen.GenerateField(fc.Field, 1, datagen.Tiny)
		if err != nil {
			t.Fatalf("%s: %v", fc.Field, err)
		}
		if (f.Rank() == 1 || f.Rank() == 4) && fc.HasSSIM {
			t.Errorf("%s: rank %d should not report SSIM", fc.Field, f.Rank())
		}
	}
}
