// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthesized dataset stand-ins. Each experiment is a
// function that runs the workload, prints a paper-style text table to a
// writer, and returns a structured result the benchmarks assert on. See
// DESIGN.md §15 for the experiment index and dataset substitution notes.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale selects dataset sizes (datagen.Tiny for tests/benches,
	// datagen.Small for the full runs).
	Scale datagen.Scale
	// Seed drives all data generation and sampling.
	Seed uint64
	// SampleRate is the model's sampling rate (paper default 0.01; tiny
	// fields need more samples for stable statistics).
	SampleRate float64
}

// Default returns the standard experiment configuration.
func Default() Config {
	return Config{Scale: datagen.Small, Seed: 42, SampleRate: 0.01}
}

// Quick returns a fast configuration for tests and benchmarks.
func Quick() Config {
	return Config{Scale: datagen.Tiny, Seed: 42, SampleRate: 0.2}
}

// modelOptions builds the core options for this config.
func (c Config) modelOptions() core.Options {
	return core.Options{SampleRate: c.SampleRate, Seed: c.Seed, UseLossless: true}
}

// field generates one dataset field stand-in.
func (c Config) field(path string) (*grid.Field, error) {
	return datagen.GenerateField(path, c.Seed, c.Scale)
}

// relSweep is the canonical value-range-relative error-bound sweep for the
// ratio-accuracy experiments (the paper's Table II regime); relSweepQuality
// shifts one decade looser for the quality metrics, where SSIM only departs
// measurably from 1 at high bounds (the paper's Fig. 6/7 regime).
var (
	relSweep        = []float64{1e-5, 1e-4, 1e-3, 1e-2}
	relSweepQuality = []float64{1e-4, 1e-3, 1e-2, 5e-2}
)

// ebsFor converts the relative sweep into absolute bounds for a field.
func ebsFor(f *grid.Field, rels []float64) []float64 {
	lo, hi := f.ValueRange()
	rng := hi - lo
	out := make([]float64, len(rels))
	for i, r := range rels {
		out[i] = r * rng
	}
	return out
}

// compressAt runs the pipeline at one bound and returns the result.
func compressAt(f *grid.Field, kind predictor.Kind, eb float64, lossless compressor.LosslessKind) (*compressor.Result, error) {
	return compressor.Compress(f, compressor.Options{
		Predictor: kind, Mode: compressor.ABS, ErrorBound: eb, Lossless: lossless,
	})
}

// newTable starts an aligned text table.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// row writes one tab-separated row.
func row(tw *tabwriter.Writer, cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
}

// tableIIFields lists the 17 evaluated fields in Table-II order.
var tableIIFields = []struct {
	Dataset string
	Field   string
	Kind    predictor.Kind
	HasSSIM bool // 1D streams report "-" for SSIM, as in the paper
}{
	{"rtm", "rtm/snapshot_1", predictor.Interpolation, true},
	{"rtm", "rtm/snapshot_2", predictor.Interpolation, true},
	{"rtm", "rtm/snapshot_3", predictor.Interpolation, true},
	{"cesm", "cesm/TS", predictor.Lorenzo, true},
	{"cesm", "cesm/TROP_Z", predictor.Lorenzo, true},
	{"hurricane", "hurricane/U", predictor.Lorenzo, true},
	{"hurricane", "hurricane/TC", predictor.Lorenzo, true},
	{"nyx", "nyx/dark_matter_density", predictor.Lorenzo, true},
	{"nyx", "nyx/temperature", predictor.Lorenzo, true},
	{"nyx", "nyx/velocity_z", predictor.Lorenzo, true},
	{"hacc", "hacc/xx", predictor.Lorenzo2, false},
	{"hacc", "hacc/vx", predictor.Lorenzo2, false},
	{"brown", "brown/pressure", predictor.Lorenzo2, false},
	{"miranda", "miranda/vx", predictor.Interpolation, true},
	{"qmcpack", "qmcpack/einspline", predictor.Interpolation, true},
	{"scale", "scale/PRES", predictor.Lorenzo, true},
	{"exafel", "exafel/raw", predictor.Lorenzo, false},
}
