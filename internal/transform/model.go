package transform

import (
	"errors"
	"math"

	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

// TransformKind labels transform-codec profiles in reports. It reuses the
// predictor.Kind space above the prediction schemes; core applies no
// correction layer to it (correct: there is no reconstruction feedback in
// value-domain quantization).
const TransformKind = predictor.Kind(100)

// NewProfile extends the ratio-quality model to the transform codec: it
// samples whole 4^rank blocks, applies the real-valued analog of the block
// transform to the *original* values, and hands the coefficient magnitudes
// to the core model. A coefficient of value c quantizes to ≈ round(c / 2e)
// at bound e — the same relationship prediction errors have — so the entire
// Eq. 1/4 ratio machinery and the Eq. 10 quality model apply unchanged.
func NewProfile(f *grid.Field, rate float64, seed uint64, opts core.Options) (*core.Profile, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("transform: empty field")
	}
	rank := f.Rank()
	if rank < 1 || rank > 4 {
		return nil, errors.New("transform: unsupported rank")
	}
	if rate <= 0 || rate > 1 {
		rate = 0.01
	}
	blocks := blockList(f.Dims)
	picked := stats.SampleIndices(len(blocks), rate, seed)
	blockLen := 1 << (2 * rank)
	buf := make([]float64, blockLen)
	ibuf := make([]int64, blockLen)
	samples := make([]float64, 0, len(picked)*blockLen)
	// The integer transform on codes ≈ the same transform on values divided
	// by the step; emulate it at a fine fixed-point resolution so rounding
	// inside the lifting is negligible relative to any realistic bound.
	lo, hi := f.ValueRange()
	scale := 1.0
	if span := hi - lo; span > 0 {
		scale = float64(1<<40) / span
	}
	for _, bi := range picked {
		gatherValues(f, blocks[bi], buf)
		for i, v := range buf {
			ibuf[i] = int64(math.Round(v * scale))
		}
		fwdBlock(ibuf, rank)
		for _, c := range ibuf {
			samples = append(samples, float64(c)/scale)
		}
	}
	_, dataVar := stats.MeanVar(f.Data)
	return core.NewProfileFromSamples(TransformKind, samples, f.Dims,
		f.Len(), f.Prec.Bits(), hi-lo, dataVar, opts)
}

// gatherValues copies a block of original values with zero padding.
func gatherValues(f *grid.Field, b box, buf []float64) {
	rank := f.Rank()
	st := f.Strides()
	local := make([]int, rank)
	for idx := range buf {
		rem := idx
		inside := true
		flat := 0
		for ax := rank - 1; ax >= 0; ax-- {
			local[ax] = rem % BlockEdge
			rem /= BlockEdge
		}
		for ax := 0; ax < rank; ax++ {
			c := b.origin[ax] + local[ax]
			if c >= f.Dims[ax] {
				inside = false
				break
			}
			flat += c * st[ax]
		}
		if inside {
			buf[idx] = f.Data[flat]
		} else {
			buf[idx] = 0
		}
	}
}
