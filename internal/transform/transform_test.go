package transform

import (
	"math"
	"testing"
	"testing/quick"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
	"rqm/internal/stats"
)

func TestHaar4RoundTrip(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		p := []int64{int64(a), int64(b), int64(c), int64(d)}
		want := append([]int64(nil), p...)
		haar4Fwd(p, 1)
		haar4Inv(p, 1)
		for i := range p {
			if p[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHaar4Decorrelates(t *testing.T) {
	// A constant line transforms to (c, 0, 0, 0).
	p := []int64{7, 7, 7, 7}
	haar4Fwd(p, 1)
	if p[0] != 7 || p[1] != 0 || p[2] != 0 || p[3] != 0 {
		t.Fatalf("constant line -> %v", p)
	}
	// A linear ramp concentrates energy in the low coefficients.
	p = []int64{0, 10, 20, 30}
	haar4Fwd(p, 1)
	if abs64(p[0]) < abs64(p[3]) {
		t.Fatalf("ramp energy not concentrated: %v", p)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestBlockTransformRoundTrip(t *testing.T) {
	rng := stats.NewXorShift64(3)
	for rank := 1; rank <= 4; rank++ {
		n := 1 << (2 * rank)
		buf := make([]int64, n)
		want := make([]int64, n)
		for i := range buf {
			buf[i] = int64(rng.Intn(20001) - 10000)
			want[i] = buf[i]
		}
		fwdBlock(buf, rank)
		invBlock(buf, rank)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("rank %d: block transform not invertible at %d", rank, i)
			}
		}
	}
}

func TestCompressDecompressErrorBound(t *testing.T) {
	for _, name := range []string{"cesm/TS", "miranda/vx", "hurricane/U"} {
		f, err := datagen.GenerateField(name, 42, datagen.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := f.ValueRange()
		for _, rel := range []float64{1e-4, 1e-2} {
			eb := rel * (hi - lo)
			res, err := Compress(f, Options{ErrorBound: eb})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			dec, err := Decompress(res.Bytes)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := compressor.VerifyErrorBound(f, dec, compressor.ABS, eb); err != nil {
				t.Fatalf("%s eb=%g: %v", name, eb, err)
			}
			if res.Stats.Ratio <= 1 {
				t.Errorf("%s eb=%g: ratio %.2f", name, eb, res.Stats.Ratio)
			}
		}
	}
}

func TestCompress4D(t *testing.T) {
	f, err := datagen.GenerateField("exafel/raw", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-2
	res, err := Compress(f, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.VerifyErrorBound(f, dec, compressor.ABS, eb); err != nil {
		t.Fatal(err)
	}
}

func TestCompressValidation(t *testing.T) {
	f := grid.MustNew("x", grid.Float32, 8)
	if _, err := Compress(nil, Options{ErrorBound: 1}); err == nil {
		t.Fatal("nil field accepted")
	}
	if _, err := Compress(f, Options{ErrorBound: 0}); err == nil {
		t.Fatal("zero bound accepted")
	}
	f.Data[0] = 1e300
	if _, err := Compress(f, Options{ErrorBound: 1e-280}); err == nil {
		t.Fatal("code overflow accepted")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	if _, err := Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	f := grid.MustNew("x", grid.Float32, 16)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	res, err := Compress(f, Options{ErrorBound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(res.Bytes[:8]); err == nil {
		t.Fatal("truncated accepted")
	}
	bad := append([]byte(nil), res.Bytes...)
	bad[0] ^= 0xFF
	if _, err := Decompress(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPartialEdgeBlocks(t *testing.T) {
	// 7x5: edge blocks are padded; the padding must not leak into output.
	f := grid.MustNew("p", grid.Float64, 7, 5)
	rng := stats.NewXorShift64(9)
	for i := range f.Data {
		f.Data[i] = 100 * rng.NormFloat64()
	}
	res, err := Compress(f, Options{ErrorBound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.VerifyErrorBound(f, dec, compressor.ABS, 0.01); err != nil {
		t.Fatal(err)
	}
}

func TestQuickErrorBoundProperty(t *testing.T) {
	f := func(seed uint64, ebExp uint8) bool {
		rng := stats.NewXorShift64(seed)
		dims := []int{5 + rng.Intn(12), 5 + rng.Intn(12)}
		fld := grid.MustNew("q", grid.Float32, dims...)
		for i := range fld.Data {
			fld.Data[i] = 50 * rng.NormFloat64()
		}
		eb := math.Pow(10, -float64(ebExp%4)) // 1..1e-3
		res, err := Compress(fld, Options{ErrorBound: eb})
		if err != nil {
			return false
		}
		dec, err := Decompress(res.Bytes)
		if err != nil {
			return false
		}
		return compressor.VerifyErrorBound(fld, dec, compressor.ABS, eb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestModelTracksTransformBitRate(t *testing.T) {
	f, err := datagen.GenerateField("scale/PRES", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfile(f, 0.3, 7, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Kind != TransformKind {
		t.Fatalf("profile kind = %v", prof.Kind)
	}
	lo, hi := f.ValueRange()
	var meas, est []float64
	for _, rel := range []float64{1e-4, 1e-3, 1e-2} {
		eb := rel * (hi - lo)
		res, err := Compress(f, Options{ErrorBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		// The measured payload uses class+extra-bits coding; compare the
		// model's Huffman bit-rate against the payload bits per value.
		meas = append(meas, float64(res.Stats.PayloadBits)/float64(f.Len()))
		est = append(est, prof.EstimateAt(eb).HuffmanBitRate)
	}
	if errRate := quality.AccuracyOfEstimate(meas, est); errRate > 0.25 {
		t.Errorf("transform model bit-rate error %.1f%% (meas %v, est %v)", errRate*100, meas, est)
	}
}

func TestModelPSNRForTransform(t *testing.T) {
	f, err := datagen.GenerateField("miranda/vx", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfile(f, 0.3, 7, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	res, err := Compress(f, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := quality.PSNR(f, dec)
	if err != nil {
		t.Fatal(err)
	}
	// Value-domain quantization gives a near-uniform error: the Eq. 10
	// estimate should land within a few dB.
	if math.Abs(psnr-prof.EstimateAt(eb).PSNRUniform) > 4 {
		t.Errorf("PSNR measured %.2f vs modeled %.2f", psnr, prof.EstimateAt(eb).PSNRUniform)
	}
}

func TestTransformVsPredictionTradeoffExists(t *testing.T) {
	// Sanity for the codec-selection extension: both codecs produce valid,
	// bounded output and the comparison is meaningful (ratios within a
	// couple orders of magnitude of each other).
	f, err := datagen.GenerateField("cesm/TS", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	tr, err := Compress(f, Options{ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	sz, err := compressor.Compress(f, compressor.Options{
		Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: eb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Ratio < sz.Stats.Ratio/100 || tr.Stats.Ratio > sz.Stats.Ratio*100 {
		t.Errorf("implausible ratio gap: transform %.2f vs prediction %.2f",
			tr.Stats.Ratio, sz.Stats.Ratio)
	}
}

func BenchmarkTransformCompress(b *testing.B) {
	f, err := datagen.GenerateField("nyx/temperature", 1, datagen.Small)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.ValueRange()
	opts := Options{ErrorBound: (hi - lo) * 1e-3}
	b.SetBytes(f.OriginalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}
