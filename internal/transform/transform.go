// Package transform implements a ZFP-style transform-based error-bounded
// codec — the extension the paper's future work names ("we plan to extend
// our model to other lossy compressors such as the transform-based lossy
// compressor ZFP"). The design keeps ZFP's architecture (independent 4^d
// blocks, a reversible block transform, magnitude-class entropy coding)
// while guaranteeing the pointwise bound exactly:
//
//  1. values are linearly quantized to integer codes of step 2·eb (error
//     ≤ eb by construction, exactly as the SZ quantizer guarantees it),
//  2. each 4^d block of codes passes through a separable integer Haar
//     (S-)transform, which is lossless and decorrelates smooth blocks,
//  3. coefficients are coded as (magnitude class, sign, extra bits) with a
//     canonical Huffman code over the classes.
//
// Because stage 1 fixes the error and stages 2–3 are lossless, the codec is
// error-bounded for any input. The ratio-quality model extends to it by
// sampling block coefficients instead of prediction errors (see model.go).
package transform

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"

	"rqm/internal/bitio"
	"rqm/internal/grid"
	"rqm/internal/huffman"
)

// BlockEdge is the transform block edge (ZFP uses 4).
const BlockEdge = 4

// Options configures a transform-codec run.
type Options struct {
	// ErrorBound is the absolute pointwise bound; must be positive.
	ErrorBound float64
}

// Stats describes one run.
type Stats struct {
	// N is the number of values.
	N int
	// OriginalBytes is the field size at original precision.
	OriginalBytes int64
	// CompressedBytes is the container size.
	CompressedBytes int64
	// BitRate is compressed bits per value.
	BitRate float64
	// Ratio is OriginalBytes*8 / (CompressedBytes*8).
	Ratio float64
	// PayloadBits is the coefficient bitstream size.
	PayloadBits uint64
	// ClassEntropyBits is the Huffman share of PayloadBits (diagnostic).
	ClassEntropyBits uint64
}

// Result is a compressed container plus statistics.
type Result struct {
	Bytes []byte
	Stats Stats
}

// ContainerMagic is the little-endian magic of the native transform-codec
// container ("RQZF"); the codec router uses it to recognize legacy payloads.
const ContainerMagic uint32 = 0x52515A46

const containerMagic = ContainerMagic

// haar4Fwd applies the two-level integer S-transform to a 4-long line in
// place: (v0..v3) → (ss, sd, d0, d1). Exactly invertible by haar4Inv.
func haar4Fwd(p []int64, s int) {
	a, b, c, d := p[0], p[s], p[2*s], p[3*s]
	d0 := a - b
	s0 := b + d0>>1 // == floor((a+b)/2)
	d1 := c - d
	s1 := d + d1>>1
	sd := s0 - s1
	ss := s1 + sd>>1
	p[0], p[s], p[2*s], p[3*s] = ss, sd, d0, d1
}

// haar4Inv inverts haar4Fwd.
func haar4Inv(p []int64, s int) {
	ss, sd, d0, d1 := p[0], p[s], p[2*s], p[3*s]
	s1 := ss - sd>>1
	s0 := s1 + sd
	b := s0 - d0>>1
	a := b + d0
	d := s1 - d1>>1
	c := d + d1
	p[0], p[s], p[2*s], p[3*s] = a, b, c, d
}

// fwdBlock / invBlock run the separable transform over a 4^rank block held
// in row-major order. Integer lifting steps along different axes do not
// commute (rounding), so the inverse undoes the axes in reverse order.
func fwdBlock(buf []int64, rank int) {
	for axis := rank - 1; axis >= 0; axis-- { // innermost (stride 1) first
		axisPass(buf, rank, axis, haar4Fwd)
	}
}

func invBlock(buf []int64, rank int) {
	for axis := 0; axis < rank; axis++ { // outermost first: reverse of fwd
		axisPass(buf, rank, axis, haar4Inv)
	}
}

// axisPass applies `line` to every 4-long line along the given axis of the
// 4^rank block (axis 0 is outermost, stride 4^(rank-1)).
func axisPass(buf []int64, rank, axis int, line func([]int64, int)) {
	size := 1 << (2 * rank)
	stride := 1
	for a := rank - 1; a > axis; a-- {
		stride *= 4
	}
	for base := 0; base < size; base++ {
		if (base/stride)%4 != 0 {
			continue // not the first cell of its line
		}
		line(buf[base:], stride)
	}
}

// classOf returns the magnitude class of a coefficient: 0 for zero,
// otherwise bits.Len64(|v|) (so v fits in class-1 extra bits after the
// implicit leading one).
func classOf(v int64) uint32 {
	if v == 0 {
		return 0
	}
	u := uint64(v)
	if v < 0 {
		u = uint64(-v)
	}
	return uint32(bits.Len64(u))
}

// Compress encodes f under an absolute error bound.
func Compress(f *grid.Field, opts Options) (*Result, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("transform: empty field")
	}
	if !(opts.ErrorBound > 0) {
		return nil, fmt.Errorf("transform: error bound must be positive, got %v", opts.ErrorBound)
	}
	rank := f.Rank()
	if rank < 1 || rank > 4 {
		return nil, fmt.Errorf("transform: unsupported rank %d", rank)
	}
	step := 2 * opts.ErrorBound
	// Quantize the whole field; reject values whose codes overflow the
	// int64 budget the transform needs (the transform can grow magnitudes
	// by ~2 bits per level; keep codes under 2^55).
	codes := make([]int64, f.Len())
	for i, v := range f.Data {
		c := math.Round(v / step)
		if math.Abs(c) > 1<<55 || math.IsNaN(c) {
			return nil, fmt.Errorf("transform: value %g too large for bound %g", v, opts.ErrorBound)
		}
		codes[i] = int64(c)
	}

	blocks := blockList(f.Dims)
	buf := make([]int64, 1<<(2*rank))
	coeffs := make([]int64, 0, len(codes))
	for _, b := range blocks {
		gather(codes, f.Dims, b, buf)
		fwdBlock(buf, rank)
		coeffs = append(coeffs, buf[:1<<(2*rank)]...)
	}

	// Entropy code: Huffman over classes, raw extra bits.
	classes := make([]uint32, len(coeffs))
	for i, c := range coeffs {
		classes[i] = classOf(c)
	}
	cb, err := huffman.Build(huffman.FreqsOf(classes))
	if err != nil {
		return nil, err
	}
	codebook := cb.Serialize()
	bw := bitio.NewWriter(len(coeffs) / 2)
	var classBits uint64
	for i, c := range coeffs {
		if err := cb.Encode(bw, classes[i:i+1]); err != nil {
			return nil, err
		}
		if cl := classes[i]; cl > 0 {
			u := uint64(c)
			neg := uint64(0)
			if c < 0 {
				u = uint64(-c)
				neg = 1
			}
			bw.WriteBits(neg, 1)
			if cl > 1 {
				// Implicit leading one: emit the low cl-1 bits.
				bw.WriteBits(u&((1<<(cl-1))-1), uint(cl-1))
			}
		}
	}
	classBits = bw.Bits()
	payload := bw.Bytes()

	var out bytes.Buffer
	w := func(v interface{}) { _ = binary.Write(&out, binary.LittleEndian, v) }
	w(uint32(containerMagic))
	w(opts.ErrorBound)
	w(uint8(f.Prec))
	w(uint8(rank))
	for _, d := range f.Dims {
		w(uint64(d))
	}
	name := []byte(f.Name)
	if len(name) > 65535 {
		name = name[:65535]
	}
	w(uint16(len(name)))
	out.Write(name)
	w(uint32(len(codebook)))
	out.Write(codebook)
	w(uint32(len(payload)))
	out.Write(payload)

	st := Stats{
		N:                f.Len(),
		OriginalBytes:    f.OriginalBytes(),
		CompressedBytes:  int64(out.Len()),
		BitRate:          float64(out.Len()) * 8 / float64(f.Len()),
		Ratio:            float64(f.OriginalBytes()) / float64(out.Len()),
		PayloadBits:      classBits,
		ClassEntropyBits: classBits,
	}
	return &Result{Bytes: out.Bytes(), Stats: st}, nil
}

// Decompress reconstructs a field compressed by Compress.
func Decompress(data []byte) (*grid.Field, error) {
	r := bytes.NewReader(data)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	if err := rd(&magic); err != nil || magic != containerMagic {
		return nil, errors.New("transform: bad magic")
	}
	var eb float64
	var prec, rank uint8
	if err := rd(&eb); err != nil {
		return nil, err
	}
	if err := rd(&prec); err != nil {
		return nil, err
	}
	if err := rd(&rank); err != nil {
		return nil, err
	}
	if rank < 1 || rank > 4 {
		return nil, fmt.Errorf("transform: bad rank %d", rank)
	}
	dims := make([]int, rank)
	for i := range dims {
		var d uint64
		if err := rd(&d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<32 {
			return nil, fmt.Errorf("transform: bad dimension %d", d)
		}
		dims[i] = int(d)
	}
	var nameLen uint16
	if err := rd(&nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	var cbLen uint32
	if err := rd(&cbLen); err != nil {
		return nil, err
	}
	cbBytes := make([]byte, cbLen)
	if _, err := io.ReadFull(r, cbBytes); err != nil {
		return nil, err
	}
	cb, _, err := huffman.Parse(cbBytes)
	if err != nil {
		return nil, err
	}
	var payLen uint32
	if err := rd(&payLen); err != nil {
		return nil, err
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}

	f, err := grid.New(string(name), grid.Precision(prec), dims...)
	if err != nil {
		return nil, err
	}
	blocks := blockList(dims)
	blockLen := 1 << (2 * rank)
	br := bitio.NewReader(payload)
	buf := make([]int64, blockLen)
	cls := make([]uint32, 1)
	codes := make([]int64, f.Len())
	step := 2 * eb
	for _, b := range blocks {
		for i := 0; i < blockLen; i++ {
			if err := cb.Decode(br, cls); err != nil {
				return nil, err
			}
			cl := cls[0]
			if cl == 0 {
				buf[i] = 0
				continue
			}
			if cl > 60 {
				return nil, fmt.Errorf("transform: invalid class %d", cl)
			}
			neg, err := br.ReadBits(1)
			if err != nil {
				return nil, err
			}
			var low uint64
			if cl > 1 {
				low, err = br.ReadBits(uint(cl - 1))
				if err != nil {
					return nil, err
				}
			}
			v := int64(1)<<(cl-1) | int64(low)
			if neg == 1 {
				v = -v
			}
			buf[i] = v
		}
		invBlock(buf, int(rank))
		scatter(codes, dims, b, buf)
	}
	for i, c := range codes {
		f.Data[i] = float64(c) * step
	}
	return f, nil
}

// box is one 4^rank block with clipping info.
type box struct {
	origin []int
}

// blockList enumerates block origins on the BlockEdge grid.
func blockList(dims []int) []box {
	rank := len(dims)
	counts := make([]int, rank)
	total := 1
	for i, d := range dims {
		counts[i] = (d + BlockEdge - 1) / BlockEdge
		total *= counts[i]
	}
	out := make([]box, 0, total)
	coord := make([]int, rank)
	for {
		b := box{origin: make([]int, rank)}
		for i := range coord {
			b.origin[i] = coord[i] * BlockEdge
		}
		out = append(out, b)
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < counts[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// gather copies a block into buf (row-major 4^rank), zero-padding outside
// the field.
func gather(codes []int64, dims []int, b box, buf []int64) {
	rank := len(dims)
	st := make([]int, rank)
	acc := 1
	for i := rank - 1; i >= 0; i-- {
		st[i] = acc
		acc *= dims[i]
	}
	local := make([]int, rank)
	for idx := range buf {
		rem := idx
		inside := true
		flat := 0
		for ax := rank - 1; ax >= 0; ax-- {
			local[ax] = rem % BlockEdge
			rem /= BlockEdge
		}
		for ax := 0; ax < rank; ax++ {
			c := b.origin[ax] + local[ax]
			if c >= dims[ax] {
				inside = false
				break
			}
			flat += c * st[ax]
		}
		if inside {
			buf[idx] = codes[flat]
		} else {
			buf[idx] = 0
		}
	}
}

// scatter writes a block of codes back, skipping padded cells.
func scatter(codes []int64, dims []int, b box, buf []int64) {
	rank := len(dims)
	st := make([]int, rank)
	acc := 1
	for i := rank - 1; i >= 0; i-- {
		st[i] = acc
		acc *= dims[i]
	}
	local := make([]int, rank)
	for idx := range buf {
		rem := idx
		inside := true
		flat := 0
		for ax := rank - 1; ax >= 0; ax-- {
			local[ax] = rem % BlockEdge
			rem /= BlockEdge
		}
		for ax := 0; ax < rank; ax++ {
			c := b.origin[ax] + local[ax]
			if c >= dims[ax] {
				inside = false
				break
			}
			flat += c * st[ax]
		}
		if inside {
			codes[flat] = buf[idx]
		}
	}
}
