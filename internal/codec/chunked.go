package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"rqm/internal/grid"
)

// Chunked (envelope version 2) container: the streaming sibling of the
// single-payload envelope. One stream header is followed by length-prefixed
// chunk records — each carrying its own codec ID, absolute error bound, and
// payload CRC — and a trailer index that makes every chunk addressable
// without decoding its neighbors. The layout (all integers little-endian):
//
//	stream header
//	  0      4    magic "RQCE" (uint32 LE, shared with v1)
//	  4      1    envelope version = 2
//	  5      1    default codec ID
//	  6      1    precision (32|64)
//	  7      1    rank r (0..4; 0 = shape unknown, stream is 1-D)
//	  8      8*r  dims (uint64 LE each)
//	  ...    2+n  field name (uint16 LE length + bytes)
//	  ...    4    nominal chunk size in values (uint32 LE)
//
//	chunk record (repeated)
//	  +0     1    record tag = 1
//	  +1     1    codec ID
//	  +2     8    absolute error bound used for this chunk (float64 LE)
//	  +10    4    value count (uint32 LE)
//	  +14    4    payload length (uint32 LE)
//	  +18    4    CRC-32 (IEEE) of the payload
//	  +22    len  native codec payload (a 1-D chunk field)
//
//	trailer
//	  +0     1    record tag = 2
//	  +1     4    chunk count (uint32 LE)
//	  +5     24*c index entries {record offset u64, values u32,
//	              record length u32, abs bound f64}
//	  ...    8    total values (uint64 LE)
//	  ...    4    CRC-32 (IEEE) of the trailer from its tag byte
//
//	footer
//	  +0     8    trailer offset (uint64 LE, from container start)
//	  +8     4    footer magic "RQCX"
//
// Sequential readers never seek: records are self-delimiting and the
// trailer tag terminates the chunk sequence. Random-access readers seek to
// the 12-byte footer, follow the trailer offset, and jump straight to any
// chunk via its index entry.

// ChunkedVersion is the envelope version byte of the chunked stream format.
const ChunkedVersion = 2

// FooterMagic terminates a chunked container ("RQCX" little-endian).
const FooterMagic uint32 = 0x58435152

// FooterSize is the byte length of the fixed footer.
const FooterSize = 12

// TagChunk and TagTrailer are the record tag bytes of the chunked format.
const (
	TagChunk   = 1
	TagTrailer = 2
)

const (

	// maxChunkValues / maxChunkPayload bound the per-chunk sizes a reader
	// accepts, so corrupt length fields cannot drive huge allocations.
	maxChunkValues  = 1 << 31
	maxChunkPayload = 1 << 31

	chunkHeadSize  = 22 // tag .. CRC, without the payload
	indexEntrySize = 24
)

// ErrChecksum marks a chunk or trailer whose CRC does not match its bytes.
var ErrChecksum = errors.New("codec: checksum mismatch")

// StreamHeader describes a chunked container stream.
type StreamHeader struct {
	// CodecID is the stream's default codec (individual chunks may differ).
	CodecID ID
	// Prec is the original storage precision for ratio accounting.
	Prec grid.Precision
	// Dims is the logical field shape; nil when unknown (pure stream).
	Dims []int
	// Name is the stored field name.
	Name string
	// ChunkValues is the nominal chunk size in values.
	ChunkValues int
}

// Chunk is one decoded chunk record (payload still compressed).
type Chunk struct {
	// CodecID names the backend that produced the payload.
	CodecID ID
	// AbsBound is the absolute error bound the chunk was compressed with
	// (0 when the producing mode had no single absolute bound, e.g. PWREL).
	AbsBound float64
	// Values is the number of samples the payload decodes to.
	Values int
	// Payload is the codec's native compressed payload (a 1-D field).
	Payload []byte
}

// IndexEntry locates one chunk record inside a chunked container.
type IndexEntry struct {
	// Offset is the byte offset of the record tag from the container start.
	Offset int64
	// Values is the chunk's decoded sample count.
	Values int
	// RecordBytes is the full record length including tag and payload.
	RecordBytes int
	// AbsBound is the chunk's absolute error bound.
	AbsBound float64
}

// StreamIndex is the random-access directory of a chunked container.
type StreamIndex struct {
	// Header is the stream header.
	Header StreamHeader
	// Entries lists every chunk in stream order.
	Entries []IndexEntry
	// TotalValues is the decoded sample count of the whole stream.
	TotalValues int64
}

// IsChunked reports whether data begins with a chunked (v2) stream header.
func IsChunked(data []byte) bool {
	return len(data) >= 5 &&
		binary.LittleEndian.Uint32(data) == EnvelopeMagic &&
		data[4] == ChunkedVersion
}

// WriteStreamHeader serializes h, returning the byte count written.
func WriteStreamHeader(w io.Writer, h *StreamHeader) (int64, error) {
	if len(h.Dims) > 4 {
		return 0, fmt.Errorf("%w: rank %d outside 0..4", ErrCorrupt, len(h.Dims))
	}
	for _, d := range h.Dims {
		if d <= 0 {
			return 0, fmt.Errorf("%w: dimension %d", ErrCorrupt, d)
		}
	}
	if h.ChunkValues < 1 || h.ChunkValues > maxChunkValues {
		return 0, fmt.Errorf("%w: chunk size %d values", ErrCorrupt, h.ChunkValues)
	}
	name := []byte(h.Name)
	if len(name) > maxEnvelopeName {
		name = name[:maxEnvelopeName]
	}
	var buf bytes.Buffer
	le := func(v interface{}) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	le(EnvelopeMagic)
	le(uint8(ChunkedVersion))
	le(uint8(h.CodecID))
	le(uint8(h.Prec))
	le(uint8(len(h.Dims)))
	for _, d := range h.Dims {
		le(uint64(d))
	}
	le(uint16(len(name)))
	buf.Write(name)
	le(uint32(h.ChunkValues))
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadStreamHeader parses a stream header, returning it and the byte count
// consumed. Parse failures wrap the typed container errors.
func ReadStreamHeader(r io.Reader) (*StreamHeader, int64, error) {
	cr := &countReader{r: r}
	var magic uint32
	var version, id, prec, rank uint8
	if err := readStream(cr, &magic, &version, &id, &prec, &rank); err != nil {
		return nil, cr.n, err
	}
	if magic != EnvelopeMagic {
		return nil, cr.n, fmt.Errorf("%w: 0x%08x", ErrBadMagic, magic)
	}
	if version != ChunkedVersion {
		return nil, cr.n, fmt.Errorf("%w: version %d, chunked streams are version %d",
			ErrUnsupportedVersion, version, ChunkedVersion)
	}
	if p := grid.Precision(prec); p != grid.Float32 && p != grid.Float64 {
		return nil, cr.n, fmt.Errorf("%w: precision %d", ErrCorrupt, prec)
	}
	if rank > 4 {
		return nil, cr.n, fmt.Errorf("%w: rank %d outside 0..4", ErrCorrupt, rank)
	}
	var dims []int
	for i := 0; i < int(rank); i++ {
		var d uint64
		if err := readStream(cr, &d); err != nil {
			return nil, cr.n, err
		}
		if d == 0 || d >= 1<<32 {
			return nil, cr.n, fmt.Errorf("%w: dimension %d", ErrCorrupt, d)
		}
		dims = append(dims, int(d))
	}
	var nameLen uint16
	if err := readStream(cr, &nameLen); err != nil {
		return nil, cr.n, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, cr.n, fmt.Errorf("%w: header ends mid-name", ErrTruncated)
	}
	var chunkValues uint32
	if err := readStream(cr, &chunkValues); err != nil {
		return nil, cr.n, err
	}
	if chunkValues == 0 {
		return nil, cr.n, fmt.Errorf("%w: zero chunk size", ErrCorrupt)
	}
	return &StreamHeader{
		CodecID:     ID(id),
		Prec:        grid.Precision(prec),
		Dims:        dims,
		Name:        string(name),
		ChunkValues: int(chunkValues),
	}, cr.n, nil
}

// WriteChunk serializes one chunk record, returning the byte count written.
func WriteChunk(w io.Writer, c *Chunk) (int64, error) {
	if c.Values < 1 || c.Values > maxChunkValues {
		return 0, fmt.Errorf("%w: chunk of %d values", ErrCorrupt, c.Values)
	}
	if len(c.Payload) == 0 || len(c.Payload) > maxChunkPayload {
		return 0, fmt.Errorf("%w: chunk payload of %d bytes", ErrCorrupt, len(c.Payload))
	}
	head := make([]byte, chunkHeadSize)
	head[0] = TagChunk
	head[1] = uint8(c.CodecID)
	binary.LittleEndian.PutUint64(head[2:], uint64(math.Float64bits(c.AbsBound)))
	binary.LittleEndian.PutUint32(head[10:], uint32(c.Values))
	binary.LittleEndian.PutUint32(head[14:], uint32(len(c.Payload)))
	binary.LittleEndian.PutUint32(head[18:], crc32.ChecksumIEEE(c.Payload))
	if n, err := w.Write(head); err != nil {
		return int64(n), err
	}
	n, err := w.Write(c.Payload)
	return int64(chunkHeadSize + n), err
}

// ReadChunkBody parses a chunk record after its tag byte, verifying the
// payload CRC. Streaming readers call it once they have consumed a TagChunk
// byte.
func ReadChunkBody(r io.Reader) (*Chunk, error) {
	c, wantCRC, err := ReadChunkBodyUnverified(r)
	if err != nil {
		return nil, err
	}
	if err := VerifyChunk(c, wantCRC); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadChunkBodyUnverified parses a chunk record after its tag byte WITHOUT
// checksumming the payload, returning the declared CRC for the caller to
// verify with VerifyChunk. The concurrent stream reader uses this split to
// keep its serial feeder goroutine I/O-only: the CRC pass (and the decode)
// runs on the worker pool instead of serializing every chunk.
func ReadChunkBodyUnverified(r io.Reader) (*Chunk, uint32, error) {
	head := make([]byte, chunkHeadSize-1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, 0, fmt.Errorf("%w: chunk record ends mid-header", ErrTruncated)
	}
	c := &Chunk{
		CodecID:  ID(head[0]),
		AbsBound: math.Float64frombits(binary.LittleEndian.Uint64(head[1:])),
		Values:   int(binary.LittleEndian.Uint32(head[9:])),
	}
	payloadLen := binary.LittleEndian.Uint32(head[13:])
	wantCRC := binary.LittleEndian.Uint32(head[17:])
	if c.Values < 1 {
		return nil, 0, fmt.Errorf("%w: chunk declares %d values", ErrCorrupt, c.Values)
	}
	if payloadLen == 0 || payloadLen > maxChunkPayload {
		return nil, 0, fmt.Errorf("%w: chunk declares %d payload bytes", ErrCorrupt, payloadLen)
	}
	// Grow the payload with the bytes actually read rather than trusting the
	// declared length: a corrupt length field must not drive a huge
	// allocation from a tiny input.
	var pb bytes.Buffer
	if payloadLen < 1<<20 {
		pb.Grow(int(payloadLen))
	}
	if _, err := io.CopyN(&pb, r, int64(payloadLen)); err != nil {
		return nil, 0, fmt.Errorf("%w: chunk record ends mid-payload", ErrTruncated)
	}
	c.Payload = pb.Bytes()
	return c, wantCRC, nil
}

// VerifyChunk checks a chunk payload against the CRC its record declared.
func VerifyChunk(c *Chunk, wantCRC uint32) error {
	if got := crc32.ChecksumIEEE(c.Payload); got != wantCRC {
		return fmt.Errorf("%w: chunk payload CRC 0x%08x, want 0x%08x", ErrChecksum, got, wantCRC)
	}
	return nil
}

// WriteTrailer serializes the trailer record and footer. trailerOffset is
// the byte offset the trailer tag lands at (i.e. the bytes written so far).
func WriteTrailer(w io.Writer, entries []IndexEntry, totalValues, trailerOffset int64) (int64, error) {
	var buf bytes.Buffer
	le := func(v interface{}) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	buf.WriteByte(TagTrailer)
	le(uint32(len(entries)))
	for _, e := range entries {
		le(uint64(e.Offset))
		le(uint32(e.Values))
		le(uint32(e.RecordBytes))
		le(math.Float64bits(e.AbsBound))
	}
	le(uint64(totalValues))
	le(crc32.ChecksumIEEE(buf.Bytes()))
	le(uint64(trailerOffset))
	le(FooterMagic)
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadTrailerBody parses a trailer after its tag byte (CRC included, footer
// excluded).
func ReadTrailerBody(r io.Reader) ([]IndexEntry, int64, error) {
	crc := crc32.NewIEEE()
	crc.Write([]byte{TagTrailer})
	tr := io.TeeReader(r, crc)
	var count uint32
	if err := readStream(tr, &count); err != nil {
		return nil, 0, err
	}
	// Cap the preallocation: a corrupt count must not drive a huge
	// allocation from a tiny input. Honest containers beyond the cap still
	// parse — the slice just grows with the bytes actually read.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	entries := make([]IndexEntry, 0, prealloc)
	for i := uint32(0); i < count; i++ {
		raw := make([]byte, indexEntrySize)
		if _, err := io.ReadFull(tr, raw); err != nil {
			return nil, 0, fmt.Errorf("%w: trailer ends mid-index", ErrTruncated)
		}
		entries = append(entries, IndexEntry{
			Offset:      int64(binary.LittleEndian.Uint64(raw)),
			Values:      int(binary.LittleEndian.Uint32(raw[8:])),
			RecordBytes: int(binary.LittleEndian.Uint32(raw[12:])),
			AbsBound:    math.Float64frombits(binary.LittleEndian.Uint64(raw[16:])),
		})
	}
	var totalValues uint64
	if err := readStream(tr, &totalValues); err != nil {
		return nil, 0, err
	}
	want := crc.Sum32()
	var gotCRC uint32
	if err := readStream(r, &gotCRC); err != nil {
		return nil, 0, err
	}
	if gotCRC != want {
		return nil, 0, fmt.Errorf("%w: trailer CRC 0x%08x, want 0x%08x", ErrChecksum, gotCRC, want)
	}
	return entries, int64(totalValues), nil
}

// ReadFooter parses the 12-byte footer after the trailer CRC.
func ReadFooter(r io.Reader) (trailerOffset int64, err error) {
	var off uint64
	var magic uint32
	if err := readStream(r, &off, &magic); err != nil {
		return 0, err
	}
	if magic != FooterMagic {
		return 0, fmt.Errorf("%w: footer magic 0x%08x", ErrCorrupt, magic)
	}
	return int64(off), nil
}

// openChunked walks a chunked container's structure — header, record
// headers, trailer, footer — without decoding or checksumming payloads, and
// returns its Info. The returned payload is the whole container (chunked
// streams have no single payload; DecompressChunked consumes them).
func openChunked(data []byte) (*Info, []byte, error) {
	br := bytes.NewReader(data)
	h, _, err := ReadStreamHeader(br)
	if err != nil {
		return nil, nil, err
	}
	info := &Info{
		CodecID:     h.CodecID,
		Version:     ChunkedVersion,
		Chunked:     true,
		FieldName:   h.Name,
		Prec:        h.Prec,
		Dims:        h.Dims,
		ChunkValues: h.ChunkValues,
	}
	if c, err := ByID(h.CodecID); err == nil {
		info.CodecName = c.Name()
	}
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: container ends without a trailer", ErrTruncated)
		}
		if tag == TagTrailer {
			break
		}
		if tag != TagChunk {
			return nil, nil, fmt.Errorf("%w: record tag %d", ErrCorrupt, tag)
		}
		head := make([]byte, chunkHeadSize-1)
		if _, err := io.ReadFull(br, head); err != nil {
			return nil, nil, fmt.Errorf("%w: chunk record ends mid-header", ErrTruncated)
		}
		values := int(binary.LittleEndian.Uint32(head[9:]))
		payloadLen := int64(binary.LittleEndian.Uint32(head[13:]))
		if values < 1 || payloadLen < 1 {
			return nil, nil, fmt.Errorf("%w: chunk declares %d values, %d payload bytes",
				ErrCorrupt, values, payloadLen)
		}
		if payloadLen > int64(br.Len()) {
			return nil, nil, fmt.Errorf("%w: chunk payload declares %d bytes, %d remain",
				ErrTruncated, payloadLen, br.Len())
		}
		if _, err := br.Seek(payloadLen, io.SeekCurrent); err != nil {
			return nil, nil, fmt.Errorf("%w: chunk payload", ErrTruncated)
		}
		info.Chunks++
		info.TotalValues += int64(values)
		info.PayloadBytes += int(payloadLen)
	}
	entries, totalValues, err := ReadTrailerBody(br)
	if err != nil {
		return nil, nil, err
	}
	if _, err := ReadFooter(br); err != nil {
		return nil, nil, err
	}
	if br.Len() != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after footer", ErrCorrupt, br.Len())
	}
	if len(entries) != info.Chunks || totalValues != info.TotalValues {
		return nil, nil, fmt.Errorf("%w: trailer indexes %d chunks / %d values, stream has %d / %d",
			ErrCorrupt, len(entries), totalValues, info.Chunks, info.TotalValues)
	}
	return info, data, nil
}

// DecompressChunked reconstructs a field from a chunked container,
// sequentially routing every chunk to its backend through the registry.
// (internal/stream provides the concurrent pipeline over the same framing.)
func DecompressChunked(data []byte) (*grid.Field, error) {
	return DecompressChunkedWith(data, nil)
}

// DecompressChunkedWith is DecompressChunked with a fallback backend:
// chunks whose codec ID matches fallback decode through it even when it is
// not registered (the Engine's own-codec guarantee, extended to streams).
func DecompressChunkedWith(data []byte, fallback Codec) (*grid.Field, error) {
	br := bytes.NewReader(data)
	h, _, err := ReadStreamHeader(br)
	if err != nil {
		return nil, err
	}
	var vals []float64
	if t := h.TotalFromDims(); t > 0 {
		vals = make([]float64, 0, t)
	}
	chunks := 0
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: container ends without a trailer", ErrTruncated)
		}
		if tag == TagTrailer {
			break
		}
		if tag != TagChunk {
			return nil, fmt.Errorf("%w: record tag %d", ErrCorrupt, tag)
		}
		c, err := ReadChunkBody(br)
		if err != nil {
			return nil, err
		}
		chunkVals, err := decodeChunk(c, fallback)
		if err != nil {
			return nil, err
		}
		vals = append(vals, chunkVals...)
		chunks++
	}
	entries, totalValues, err := ReadTrailerBody(br)
	if err != nil {
		return nil, err
	}
	if _, err := ReadFooter(br); err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after footer", ErrCorrupt, br.Len())
	}
	if len(entries) != chunks || totalValues != int64(len(vals)) {
		return nil, fmt.Errorf("%w: trailer indexes %d chunks / %d values, stream has %d / %d",
			ErrCorrupt, len(entries), totalValues, chunks, len(vals))
	}
	return AssembleField(h, vals)
}

// DecodeChunk decompresses one chunk record's payload through the registry
// and returns its samples.
func DecodeChunk(c *Chunk) ([]float64, error) {
	return decodeChunk(c, nil)
}

// decodeChunk resolves the chunk's backend — the fallback when its ID
// matches, the registry otherwise — and decompresses the payload.
func decodeChunk(c *Chunk, fallback Codec) ([]float64, error) {
	backend := fallback
	if backend == nil || backend.ID() != c.CodecID {
		var err error
		if backend, err = ByID(c.CodecID); err != nil {
			return nil, err
		}
	}
	f, err := backend.Decompress(c.Payload)
	if err != nil {
		return nil, err
	}
	if f.Len() != c.Values {
		return nil, fmt.Errorf("%w: chunk decodes to %d values, record declares %d",
			ErrCorrupt, f.Len(), c.Values)
	}
	return f.Data, nil
}

// AssembleField shapes decoded stream samples into a field: the header's
// dims when their product matches the sample count, 1-D otherwise.
func AssembleField(h *StreamHeader, vals []float64) (*grid.Field, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("%w: stream holds no values", ErrCorrupt)
	}
	prec := h.Prec
	if prec != grid.Float32 && prec != grid.Float64 {
		prec = grid.Float64
	}
	if h.TotalFromDims() == int64(len(vals)) {
		return grid.FromData(h.Name, prec, vals, h.Dims...)
	}
	return grid.FromData(h.Name, prec, vals, len(vals))
}

// TotalFromDims returns the sample count the header's shape implies, or 0
// when the shape is unknown.
func (h *StreamHeader) TotalFromDims() int64 { return ShapeValues(h.Dims) }

// ShapeValues is the sample count a shape implies (0 = no/unknown shape).
func ShapeValues(dims []int) int64 {
	if len(dims) == 0 {
		return 0
	}
	total := int64(1)
	for _, d := range dims {
		total *= int64(d)
	}
	return total
}

// LoadIndex reads the trailer index of a chunked container through its
// footer: seek to the end, follow the trailer offset, parse the index. This
// is the random-access entry point — with the index, ReadChunkAt decodes
// any chunk without touching the rest of the stream.
func LoadIndex(rs io.ReadSeeker) (*StreamIndex, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	h, _, err := ReadStreamHeader(rs)
	if err != nil {
		return nil, err
	}
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if end < FooterSize {
		return nil, fmt.Errorf("%w: %d bytes, need a %d-byte footer", ErrTruncated, end, FooterSize)
	}
	if _, err := rs.Seek(end-FooterSize, io.SeekStart); err != nil {
		return nil, err
	}
	trailerOffset, err := ReadFooter(rs)
	if err != nil {
		return nil, err
	}
	if trailerOffset < 0 || trailerOffset >= end-FooterSize {
		return nil, fmt.Errorf("%w: trailer offset %d outside container", ErrCorrupt, trailerOffset)
	}
	if _, err := rs.Seek(trailerOffset, io.SeekStart); err != nil {
		return nil, err
	}
	tag := make([]byte, 1)
	if _, err := io.ReadFull(rs, tag); err != nil {
		return nil, fmt.Errorf("%w: trailer tag", ErrTruncated)
	}
	if tag[0] != TagTrailer {
		return nil, fmt.Errorf("%w: trailer offset points at tag %d", ErrCorrupt, tag[0])
	}
	entries, totalValues, err := ReadTrailerBody(rs)
	if err != nil {
		return nil, err
	}
	return &StreamIndex{Header: *h, Entries: entries, TotalValues: totalValues}, nil
}

// ReadChunkAt seeks to one indexed chunk record and parses it (payload CRC
// verified). Pair with DecodeChunk for random-access decompression.
func ReadChunkAt(rs io.ReadSeeker, e IndexEntry) (*Chunk, error) {
	if _, err := rs.Seek(e.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	tag := make([]byte, 1)
	if _, err := io.ReadFull(rs, tag); err != nil {
		return nil, fmt.Errorf("%w: chunk tag", ErrTruncated)
	}
	if tag[0] != TagChunk {
		return nil, fmt.Errorf("%w: index entry points at tag %d", ErrCorrupt, tag[0])
	}
	return ReadChunkBody(rs)
}

// countReader counts consumed bytes for offset accounting.
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// readStream reads fixed-size values, mapping short reads to ErrTruncated.
func readStream(r io.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("%w: stream ends mid-field", ErrTruncated)
		}
	}
	return nil
}
