package codec

import (
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
)

// PredictionName is the registered name of the prediction-based codec.
const PredictionName = "prediction"

// predictionCodec adapts the SZ3-style prediction pipeline to the Codec
// interface. Its native payload is the "RQMC" container.
type predictionCodec struct{}

func (predictionCodec) Name() string { return PredictionName }
func (predictionCodec) ID() ID       { return IDPrediction }

func (predictionCodec) Compress(f *grid.Field, opts Options) ([]byte, error) {
	res, err := compressor.Compress(f, compressor.Options{
		Predictor:  opts.Predictor,
		Mode:       opts.Mode,
		ErrorBound: opts.ErrorBound,
		Lossless:   opts.Lossless,
		Radius:     opts.Radius,
	})
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

func (predictionCodec) Decompress(payload []byte) (*grid.Field, error) {
	return compressor.Decompress(payload)
}

func (predictionCodec) Profile(f *grid.Field, copts Options, mopts core.Options) (*core.Profile, error) {
	if mopts.Radius == 0 {
		mopts.Radius = copts.Radius // keep the model on the compression radius
	}
	return core.NewProfile(f, copts.Predictor, mopts)
}
