package codec

import (
	"fmt"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/transform"
)

// TransformName is the registered name of the transform-based codec.
const TransformName = "transform"

// transformCodec adapts the ZFP-style transform pipeline to the Codec
// interface. Its native payload is the "RQZF" container. The codec itself
// only understands absolute bounds, so the adapter resolves REL against the
// value range and rejects PWREL.
type transformCodec struct{}

func (transformCodec) Name() string { return TransformName }
func (transformCodec) ID() ID       { return IDTransform }

func (transformCodec) Compress(f *grid.Field, opts Options) ([]byte, error) {
	abs, err := transformAbsBound(f, opts)
	if err != nil {
		return nil, err
	}
	res, err := transform.Compress(f, transform.Options{ErrorBound: abs})
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

func (transformCodec) Decompress(payload []byte) (*grid.Field, error) {
	return transform.Decompress(payload)
}

func (transformCodec) Profile(f *grid.Field, copts Options, mopts core.Options) (*core.Profile, error) {
	return transform.NewProfile(f, mopts.SampleRate, mopts.Seed, mopts)
}

// transformAbsBound maps the user's (mode, bound) onto the absolute bound
// the transform codec needs.
func transformAbsBound(f *grid.Field, opts Options) (float64, error) {
	switch opts.Mode {
	case compressor.ABS:
		return opts.ErrorBound, nil
	case compressor.REL:
		lo, hi := f.ValueRange()
		abs := opts.ErrorBound * (hi - lo)
		if abs == 0 {
			abs = opts.ErrorBound // constant field: any positive bound works
		}
		return abs, nil
	}
	return 0, fmt.Errorf("codec: transform codec supports abs|rel error modes, got %s", opts.Mode)
}
