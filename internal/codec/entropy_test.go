package codec

import (
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/stats"
)

// skewedField is nearly constant with sparse spikes: its quantization-code
// histogram is dominated by code 0, the regime where Huffman is pinned at
// 1 bit/symbol but ANS codes fractional bits.
func skewedField(t *testing.T) *grid.Field {
	t.Helper()
	f := grid.MustNew("skewed", grid.Float64, 64, 64, 16)
	rng := stats.NewXorShift64(7)
	for i := range f.Data {
		if rng.Uint64()%100 == 0 {
			f.Data[i] = 50 * rng.NormFloat64()
		} else {
			f.Data[i] = 1
		}
	}
	return f
}

// TestTANSProfileModelsFractionalBits: the prediction-tans codec must profile
// with the ANS entropy model, predicting below 1 bit/value on a skewed field
// where the Huffman-model prediction is clamped to >= 1 — and the prediction
// must track the realized tANS payload, not the Huffman one.
func TestTANSProfileModelsFractionalBits(t *testing.T) {
	f := skewedField(t)
	copts := Options{Mode: compressor.ABS, ErrorBound: 1e-3}
	mopts := core.Options{SampleRate: 1} // exact histogram: isolates the model

	huffCodec, err := ByName(PredictionName)
	if err != nil {
		t.Fatal(err)
	}
	tansCodec, err := ByName(PredictionTANSName)
	if err != nil {
		t.Fatal(err)
	}
	huffProf, err := huffCodec.Profile(f, copts, mopts)
	if err != nil {
		t.Fatal(err)
	}
	tansProf, err := tansCodec.Profile(f, copts, mopts)
	if err != nil {
		t.Fatal(err)
	}
	he := huffProf.EstimateAt(copts.ErrorBound)
	te := tansProf.EstimateAt(copts.ErrorBound)
	if he.HuffmanBitRate < 1 {
		t.Fatalf("Huffman model predicts %.3f bits/value; the 1-bit floor should bind", he.HuffmanBitRate)
	}
	if te.HuffmanBitRate >= he.HuffmanBitRate {
		t.Fatalf("ANS model %.3f not below Huffman model %.3f on a skewed field",
			te.HuffmanBitRate, he.HuffmanBitRate)
	}

	// Realized entropy-stage bits must order the same way, and the ANS
	// estimate must land closer to the realized tANS rate than the Huffman
	// estimate does (the whole point of the model extension).
	n := float64(f.Len())
	realized := func(e compressor.EntropyKind) float64 {
		res, err := compressor.Compress(f, compressor.Options{
			Mode: copts.Mode, ErrorBound: copts.ErrorBound, Entropy: e,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Entropy != e {
			t.Fatalf("entropy fell back to %s", res.Stats.Entropy)
		}
		return float64(res.Stats.HuffmanBits) / n
	}
	huffBits := realized(compressor.EntropyHuffman)
	tansBits := realized(compressor.EntropyTANS)
	if tansBits >= huffBits {
		t.Fatalf("tANS stage %.3f bits/value not below Huffman %.3f on a skewed field", tansBits, huffBits)
	}
	errANS := abs(te.HuffmanBitRate - tansBits)
	errHuff := abs(he.HuffmanBitRate - tansBits)
	if errANS > errHuff {
		t.Fatalf("ANS model misses realized tANS rate %.3f by %.3f bits, Huffman model by %.3f — extension buys nothing",
			tansBits, errANS, errHuff)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
