package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rqm/internal/compressor"
	"rqm/internal/grid"
	"rqm/internal/transform"
)

// Typed container errors. Callers match them with errors.Is; every parse
// failure wraps exactly one of these.
var (
	// ErrTruncated marks a container shorter than its header or payload
	// declares.
	ErrTruncated = errors.New("codec: truncated container")
	// ErrBadMagic marks data that is not any known container format.
	ErrBadMagic = errors.New("codec: bad container magic")
	// ErrUnsupportedVersion marks an envelope version this build cannot read.
	ErrUnsupportedVersion = errors.New("codec: unsupported envelope version")
	// ErrUnknownCodec marks an envelope whose codec ID has no registration.
	ErrUnknownCodec = errors.New("codec: unknown codec")
	// ErrCorrupt marks a structurally invalid header (bad rank, dimension,
	// or length field).
	ErrCorrupt = errors.New("codec: corrupt container header")
)

// EnvelopeMagic is the little-endian magic of the unified envelope ("RQCE",
// ratio-quality codec envelope).
const EnvelopeMagic uint32 = 0x52514345

// EnvelopeVersion is the current envelope layout version.
const EnvelopeVersion = 1

// maxEnvelopeName bounds the stored field name.
const maxEnvelopeName = 65535

// Info describes a container without decoding its payload.
type Info struct {
	// CodecID identifies the backend the payload belongs to.
	CodecID ID
	// CodecName is the registered name ("" when the ID is unregistered).
	CodecName string
	// Version is the envelope version (0 for legacy native containers).
	Version uint8
	// Legacy reports a pre-envelope native container (RQMC / RQZF).
	Legacy bool
	// Chunked reports a v2 chunked stream container.
	Chunked bool
	// Chunks counts the chunk records (chunked containers only).
	Chunks int
	// ChunkValues is the nominal chunk size in values (chunked only).
	ChunkValues int
	// TotalValues is the stream's decoded sample count (chunked only).
	TotalValues int64
	// FieldName is the stored field name.
	FieldName string
	// Prec is the original storage precision.
	Prec grid.Precision
	// Dims is the field shape.
	Dims []int
	// PayloadBytes is the native payload size inside the envelope (for
	// legacy containers the whole container, for chunked containers the sum
	// of the chunk payloads).
	PayloadBytes int
}

// Seal wraps a codec's native payload in the self-describing envelope:
//
//	offset  size      field
//	0       4         magic "RQCE" (uint32 LE)
//	4       1         envelope version
//	5       1         codec ID
//	6       1         precision
//	7       1         rank r (1..4)
//	8       8*r       dims (uint64 LE each)
//	...     2+len     field name (uint16 LE length + bytes)
//	...     8         payload length (uint64 LE)
//	...     len       native codec payload
func Seal(id ID, f *grid.Field, payload []byte) ([]byte, error) {
	if f == nil || f.Rank() < 1 || f.Rank() > 4 {
		return nil, fmt.Errorf("%w: field rank outside 1..4", ErrCorrupt)
	}
	name := []byte(f.Name)
	if len(name) > maxEnvelopeName {
		name = name[:maxEnvelopeName]
	}
	var buf bytes.Buffer
	buf.Grow(len(payload) + 64 + len(name))
	w := func(v interface{}) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(EnvelopeMagic)
	w(uint8(EnvelopeVersion))
	w(uint8(id))
	w(uint8(f.Prec))
	w(uint8(f.Rank()))
	for _, d := range f.Dims {
		w(uint64(d))
	}
	w(uint16(len(name)))
	buf.Write(name)
	w(uint64(len(payload)))
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Open inspects a container, returning its routing info and the native
// payload. It accepts the unified envelope (v1), the chunked stream (v2,
// for which the "payload" is the whole container — see DecompressChunked),
// and the two legacy native formats (prediction "RQMC", transform "RQZF"),
// which stay decodable.
func Open(data []byte) (*Info, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("%w: %d bytes, need at least a 4-byte magic", ErrTruncated, len(data))
	}
	switch binary.LittleEndian.Uint32(data) {
	case EnvelopeMagic:
		return openEnvelope(data)
	case compressor.ContainerMagic:
		info, err := legacyPredictionInfo(data)
		if err != nil {
			return nil, nil, err
		}
		return info, data, nil
	case transform.ContainerMagic:
		info, err := legacyTransformInfo(data)
		if err != nil {
			return nil, nil, err
		}
		return info, data, nil
	}
	return nil, nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, binary.LittleEndian.Uint32(data))
}

// Decompress routes any container — enveloped, chunked, or legacy — to its
// backend by inspection and reconstructs the field.
func Decompress(data []byte) (*grid.Field, error) {
	// Chunked containers route on their 5-byte prefix: DecompressChunked
	// validates the full structure itself, so a prior Open walk would parse
	// everything twice.
	if IsChunked(data) {
		return DecompressChunked(data)
	}
	info, payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	c, err := ByID(info.CodecID)
	if err != nil {
		return nil, err
	}
	return c.Decompress(payload)
}

// Inspect returns container routing info without decoding the payload.
func Inspect(data []byte) (*Info, error) {
	info, _, err := Open(data)
	return info, err
}

func openEnvelope(data []byte) (*Info, []byte, error) {
	r := bytes.NewReader(data[4:])
	var version, id, prec, rank uint8
	if err := readLE(r, &version, &id, &prec, &rank); err != nil {
		return nil, nil, err
	}
	if version == ChunkedVersion {
		return openChunked(data)
	}
	if version != EnvelopeVersion {
		return nil, nil, fmt.Errorf("%w: version %d, this build reads %d and %d",
			ErrUnsupportedVersion, version, EnvelopeVersion, ChunkedVersion)
	}
	dims, err := readDims(r, rank)
	if err != nil {
		return nil, nil, err
	}
	name, err := readName(r)
	if err != nil {
		return nil, nil, err
	}
	var payloadLen uint64
	if err := readLE(r, &payloadLen); err != nil {
		return nil, nil, err
	}
	if payloadLen > uint64(r.Len()) {
		return nil, nil, fmt.Errorf("%w: payload declares %d bytes, %d remain",
			ErrTruncated, payloadLen, r.Len())
	}
	if uint64(r.Len()) > payloadLen {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after payload",
			ErrCorrupt, uint64(r.Len())-payloadLen)
	}
	payload := data[len(data)-int(payloadLen):]
	info := &Info{
		CodecID:      ID(id),
		Version:      version,
		FieldName:    name,
		Prec:         grid.Precision(prec),
		Dims:         dims,
		PayloadBytes: int(payloadLen),
	}
	if c, err := ByID(info.CodecID); err == nil {
		info.CodecName = c.Name()
	}
	return info, payload, nil
}

// legacyPredictionInfo parses the header prefix of a native "RQMC" container
// (magic, version, predictor, mode, lossless, radius, two float64 bounds,
// precision, rank, dims, name).
func legacyPredictionInfo(data []byte) (*Info, error) {
	r := bytes.NewReader(data[4:])
	var version, predKind, mode, lossless, prec, rank uint8
	var radius int32
	var userEB, absEB float64
	if err := readLE(r, &version, &predKind, &mode, &lossless, &radius, &userEB, &absEB, &prec, &rank); err != nil {
		return nil, err
	}
	dims, err := readDims(r, rank)
	if err != nil {
		return nil, err
	}
	name, err := readName(r)
	if err != nil {
		return nil, err
	}
	return &Info{
		CodecID:      IDPrediction,
		CodecName:    PredictionName,
		Legacy:       true,
		FieldName:    name,
		Prec:         grid.Precision(prec),
		Dims:         dims,
		PayloadBytes: len(data),
	}, nil
}

// legacyTransformInfo parses the header prefix of a native "RQZF" container
// (magic, error bound, precision, rank, dims, name).
func legacyTransformInfo(data []byte) (*Info, error) {
	r := bytes.NewReader(data[4:])
	var eb float64
	var prec, rank uint8
	if err := readLE(r, &eb, &prec, &rank); err != nil {
		return nil, err
	}
	dims, err := readDims(r, rank)
	if err != nil {
		return nil, err
	}
	name, err := readName(r)
	if err != nil {
		return nil, err
	}
	return &Info{
		CodecID:      IDTransform,
		CodecName:    TransformName,
		Legacy:       true,
		FieldName:    name,
		Prec:         grid.Precision(prec),
		Dims:         dims,
		PayloadBytes: len(data),
	}, nil
}

// readDims validates the rank and reads that many uint64 dimensions.
func readDims(r *bytes.Reader, rank uint8) ([]int, error) {
	if rank < 1 || rank > 4 {
		return nil, fmt.Errorf("%w: rank %d outside 1..4", ErrCorrupt, rank)
	}
	dims := make([]int, rank)
	for i := range dims {
		var d uint64
		if err := readLE(r, &d); err != nil {
			return nil, err
		}
		if d == 0 || d >= 1<<32 {
			return nil, fmt.Errorf("%w: dimension %d", ErrCorrupt, d)
		}
		dims[i] = int(d)
	}
	return dims, nil
}

// readLE reads fixed-size values, mapping short reads to ErrTruncated.
func readLE(r *bytes.Reader, vs ...interface{}) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("%w: header ends mid-field", ErrTruncated)
		}
	}
	return nil
}

// readName reads a uint16-prefixed name, mapping short reads to ErrTruncated.
func readName(r *bytes.Reader) (string, error) {
	var n uint16
	if err := readLE(r, &n); err != nil {
		return "", err
	}
	if int(n) > r.Len() {
		return "", fmt.Errorf("%w: name declares %d bytes, %d remain", ErrTruncated, n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: header ends mid-name", ErrTruncated)
	}
	return string(b), nil
}
