package codec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/predictor"
)

// ID identifies a codec inside the container envelope. IDs are stable wire
// values: never reuse or renumber a published ID.
type ID uint8

const (
	// IDPrediction is the SZ3-style prediction-based codec.
	IDPrediction ID = 1
	// IDTransform is the ZFP-style transform-based codec.
	IDTransform ID = 2
	// IDPredictionILV is the prediction pipeline with the interleaved
	// multi-stream Huffman entropy stage.
	IDPredictionILV ID = 3
	// IDPredictionTANS is the prediction pipeline with the tANS entropy
	// stage.
	IDPredictionTANS ID = 4
	// FirstExternalID is the lowest ID open to third-party registrations;
	// everything below is reserved for built-ins so future releases can add
	// backends without colliding with archived containers.
	FirstExternalID ID = 64
)

// Options is the codec-agnostic compression configuration. Fields a codec
// does not understand are ignored (e.g. Predictor for the transform codec);
// fields a codec cannot honor produce an error (e.g. PWREL mode for the
// transform codec).
type Options struct {
	// Mode interprets ErrorBound (ABS, REL, PWREL).
	Mode compressor.ErrorMode
	// ErrorBound is the user bound in Mode semantics; must be positive.
	ErrorBound float64
	// Predictor selects the prediction scheme (prediction codec only).
	Predictor predictor.Kind
	// Lossless selects the optional stage after entropy coding
	// (prediction codec only).
	Lossless compressor.LosslessKind
	// Radius overrides the quantizer radius (prediction codec only;
	// 0 = default).
	Radius int32
}

// Stats is the codec-agnostic description of one compression run. Sizes are
// measured on the sealed envelope container, so they are comparable across
// codecs and include all framing overhead.
type Stats struct {
	// Codec names the backend that produced the container.
	Codec string
	// N is the number of values.
	N int
	// OriginalBytes is the field size at its original precision.
	OriginalBytes int64
	// CompressedBytes is the sealed container size.
	CompressedBytes int64
	// BitRate is compressed bits per value.
	BitRate float64
	// Ratio is OriginalBytes over CompressedBytes.
	Ratio float64
	// EncodeTime is the wall time of the encode.
	EncodeTime time.Duration
}

// Result is one sealed compression output.
type Result struct {
	// Bytes is the self-describing envelope container (decodable by
	// Decompress regardless of which codec produced it).
	Bytes []byte
	// Stats describes the run.
	Stats Stats
}

// Codec is one error-bounded compression backend. Compress and Decompress
// deal in the codec's native payload; the package-level Compress/Decompress
// functions seal payloads into (and route them out of) the shared envelope.
type Codec interface {
	// Name is the stable human-readable identifier used for CLI selection.
	Name() string
	// ID is the stable wire identifier used in the container envelope.
	ID() ID
	// Compress encodes f into the codec's native payload. Implementations
	// must not retain or alias f.Data after returning: callers (the stream
	// writer's chunk pipeline in particular) recycle the field's buffer as
	// soon as Compress returns.
	Compress(f *grid.Field, opts Options) (payload []byte, err error)
	// Decompress reconstructs a field from a native payload.
	Decompress(payload []byte) (*grid.Field, error)
	// Profile builds a ratio-quality profile for f: the one-time sampling
	// product all model estimates and inverse solves derive from. copts
	// supplies codec configuration (e.g. the predictor to profile), mopts
	// tunes the model itself (sampling rate, seed, ...).
	Profile(f *grid.Field, copts Options, mopts core.Options) (*core.Profile, error)
}

var (
	regMu     sync.RWMutex
	regByID   = map[ID]Codec{}
	regByName = map[string]Codec{}
)

// Register adds a codec to the process-wide registry. It fails when the name
// or ID is already taken, so wire IDs stay unambiguous, and rejects IDs
// below FirstExternalID, which are reserved for built-ins.
func Register(c Codec) error {
	if c != nil && c.ID() < FirstExternalID {
		return fmt.Errorf("codec: id %d is reserved for built-ins (use %d or above)",
			c.ID(), FirstExternalID)
	}
	return register(c)
}

// register is the floor-free path the built-ins use.
func register(c Codec) error {
	if c == nil {
		return errors.New("codec: nil codec")
	}
	if c.Name() == "" {
		return errors.New("codec: empty codec name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := regByID[c.ID()]; ok {
		return fmt.Errorf("codec: id %d already registered to %q", c.ID(), prev.Name())
	}
	if _, ok := regByName[c.Name()]; ok {
		return fmt.Errorf("codec: name %q already registered", c.Name())
	}
	regByID[c.ID()] = c
	regByName[c.Name()] = c
	return nil
}

// ByID looks up a registered codec by wire ID.
func ByID(id ID) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
	}
	return c, nil
}

// ByName looks up a registered codec by name.
func ByName(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := regByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: name %q", ErrUnknownCodec, name)
	}
	return c, nil
}

// All returns the registered codecs sorted by ID.
func All() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(regByID))
	for _, c := range regByID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Names returns the registered codec names sorted by ID.
func Names() []string {
	cs := All()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name()
	}
	return out
}

// Compress runs c on f and seals the payload into the envelope container.
func Compress(c Codec, f *grid.Field, opts Options) (*Result, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("codec: empty field")
	}
	start := time.Now()
	payload, err := c.Compress(f, opts)
	if err != nil {
		return nil, err
	}
	sealed, err := Seal(c.ID(), f, payload)
	if err != nil {
		return nil, err
	}
	st := Stats{
		Codec:           c.Name(),
		N:               f.Len(),
		OriginalBytes:   f.OriginalBytes(),
		CompressedBytes: int64(len(sealed)),
		BitRate:         float64(len(sealed)) * 8 / float64(f.Len()),
		Ratio:           float64(f.OriginalBytes()) / float64(len(sealed)),
		EncodeTime:      time.Since(start),
	}
	return &Result{Bytes: sealed, Stats: st}, nil
}

func init() {
	for _, c := range []Codec{predictionCodec{}, transformCodec{}, predictionILVCodec{}, predictionTANSCodec{}} {
		if err := register(c); err != nil {
			panic(err)
		}
	}
}
