package codec

import (
	"errors"
	"strings"
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/datagen"
	"rqm/internal/grid"
)

func testField(t testing.TB) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField("cesm/TS", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegistryHasBuiltins(t *testing.T) {
	all := All()
	if len(all) < 2 {
		t.Fatalf("registered codecs = %d, want at least the 2 built-ins", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID() <= all[i-1].ID() {
			t.Fatal("All() not sorted by ID")
		}
	}
	for _, want := range []struct {
		id   ID
		name string
	}{{IDPrediction, PredictionName}, {IDTransform, TransformName}} {
		byID, err := ByID(want.id)
		if err != nil {
			t.Fatal(err)
		}
		byName, err := ByName(want.name)
		if err != nil {
			t.Fatal(err)
		}
		if byID != byName {
			t.Fatalf("ByID(%d) and ByName(%q) disagree", want.id, want.name)
		}
	}
}

func TestRegistryRejectsDuplicatesAndUnknown(t *testing.T) {
	// Public Register enforces the reserved-ID floor for built-in space...
	if err := Register(predictionCodec{}); err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved built-in ID accepted: %v", err)
	}
	// ...and the floor-free internal path still rejects duplicates.
	if err := register(predictionCodec{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(nil); err == nil {
		t.Fatal("nil codec accepted")
	}
	if _, err := ByID(ID(200)); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("ByID unknown: %v", err)
	}
	if _, err := ByName("no-such-codec"); !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("ByName unknown: %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	f := testField(t)
	payload := []byte{1, 2, 3, 4, 5}
	sealed, err := Seal(IDPrediction, f, payload)
	if err != nil {
		t.Fatal(err)
	}
	info, got, err := Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if info.CodecID != IDPrediction || info.CodecName != PredictionName || info.Legacy {
		t.Fatalf("info = %+v", info)
	}
	if info.FieldName != f.Name || len(info.Dims) != f.Rank() || info.Prec != f.Prec {
		t.Fatalf("metadata mismatch: %+v vs field %q %v", info, f.Name, f.Dims)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %v", got)
	}
}

func TestCompressSealsAndStats(t *testing.T) {
	f := testField(t)
	for _, c := range All() {
		res, err := Compress(c, f, Options{Mode: compressor.REL, ErrorBound: 1e-3})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.Stats.Codec != c.Name() || res.Stats.N != f.Len() {
			t.Fatalf("%s stats: %+v", c.Name(), res.Stats)
		}
		if int64(len(res.Bytes)) != res.Stats.CompressedBytes {
			t.Fatalf("%s: CompressedBytes %d != container %d", c.Name(), res.Stats.CompressedBytes, len(res.Bytes))
		}
		back, err := Decompress(res.Bytes)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		lo, hi := f.ValueRange()
		if err := compressor.VerifyErrorBound(f, back, compressor.ABS, 1e-3*(hi-lo)); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestTransformCodecRejectsPWREL(t *testing.T) {
	f := testField(t)
	c, err := ByID(IDTransform)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compress(c, f, Options{Mode: compressor.PWREL, ErrorBound: 1e-3}); err == nil {
		t.Fatal("transform codec accepted PWREL")
	}
}

func TestProfileThroughInterface(t *testing.T) {
	f := testField(t)
	mopts := core.Options{SampleRate: 0.2, Seed: 7}
	for _, c := range All() {
		p, err := c.Profile(f, Options{}, mopts)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		eb := p.Range * 1e-3
		est := p.EstimateAt(eb)
		if est.Ratio <= 1 || est.PSNR <= 0 {
			t.Fatalf("%s estimate: ratio=%v psnr=%v", c.Name(), est.Ratio, est.PSNR)
		}
	}
}

func TestOpenEnvelopeErrors(t *testing.T) {
	f := testField(t)
	sealed, err := Seal(IDTransform, f, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("trailing garbage", func(t *testing.T) {
		_, _, err := Open(append(append([]byte{}, sealed...), 0xAA))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unregistered id", func(t *testing.T) {
		bad, err := Seal(ID(250), f, []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		info, _, err := Open(bad)
		if err != nil {
			t.Fatal(err) // Open succeeds; routing fails
		}
		if info.CodecName != "" {
			t.Fatalf("unregistered ID resolved name %q", info.CodecName)
		}
		if _, err := Decompress(bad); !errors.Is(err, ErrUnknownCodec) {
			t.Fatalf("Decompress: %v", err)
		}
	})
}
