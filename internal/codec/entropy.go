package codec

import (
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
)

// The entropy-variant codecs run the same SZ3-style prediction pipeline as
// PredictionName but swap the entropy stage. The stage choice is codec
// identity rather than an Options field: the wire ID pins how a chunk body
// must be decoded, so containers written by either variant route correctly
// through the registry with no envelope or chunk-format change.

// PredictionILVName is the registered name of the prediction codec with the
// interleaved multi-stream Huffman entropy stage (same coded size as
// PredictionName, parallel bit-extraction on decode).
const PredictionILVName = "prediction-ilv"

// PredictionTANSName is the registered name of the prediction codec with the
// tANS entropy stage (fractional bits/symbol on skewed histograms).
const PredictionTANSName = "prediction-tans"

type predictionILVCodec struct{}

func (predictionILVCodec) Name() string { return PredictionILVName }
func (predictionILVCodec) ID() ID       { return IDPredictionILV }

func (predictionILVCodec) Compress(f *grid.Field, opts Options) ([]byte, error) {
	res, err := compressor.Compress(f, compressor.Options{
		Predictor:  opts.Predictor,
		Mode:       opts.Mode,
		ErrorBound: opts.ErrorBound,
		Lossless:   opts.Lossless,
		Radius:     opts.Radius,
		Entropy:    compressor.EntropyInterleaved,
	})
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

func (predictionILVCodec) Decompress(payload []byte) (*grid.Field, error) {
	return compressor.Decompress(payload)
}

func (predictionILVCodec) Profile(f *grid.Field, copts Options, mopts core.Options) (*core.Profile, error) {
	// Interleaving changes decode throughput, not coded size: the streams
	// share one codebook and split the same codeword sequence, so the Eq. 1
	// Huffman model applies unchanged.
	if mopts.Radius == 0 {
		mopts.Radius = copts.Radius
	}
	return core.NewProfile(f, copts.Predictor, mopts)
}

type predictionTANSCodec struct{}

func (predictionTANSCodec) Name() string { return PredictionTANSName }
func (predictionTANSCodec) ID() ID       { return IDPredictionTANS }

func (predictionTANSCodec) Compress(f *grid.Field, opts Options) ([]byte, error) {
	res, err := compressor.Compress(f, compressor.Options{
		Predictor:  opts.Predictor,
		Mode:       opts.Mode,
		ErrorBound: opts.ErrorBound,
		Lossless:   opts.Lossless,
		Radius:     opts.Radius,
		Entropy:    compressor.EntropyTANS,
	})
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

func (predictionTANSCodec) Decompress(payload []byte) (*grid.Field, error) {
	return compressor.Decompress(payload)
}

func (predictionTANSCodec) Profile(f *grid.Field, copts Options, mopts core.Options) (*core.Profile, error) {
	if mopts.Radius == 0 {
		mopts.Radius = copts.Radius
	}
	mopts.Entropy = core.EntropyModelANS
	return core.NewProfile(f, copts.Predictor, mopts)
}
