// Package codec defines the compressor-agnostic abstraction the
// ratio-quality model is built around: a Codec interface every
// error-bounded backend implements, a process-wide registry the built-in
// backends register into, and a single self-describing container envelope
// so any payload routes to the right backend by inspection (see
// container.go). The tuner use-cases and the public rqm.Engine operate on
// this interface only, so new codecs plug in behind one surface.
//
// # Built-in codecs
//
// Wire IDs below FirstExternalID are reserved for built-ins and are stable
// forever — never reuse or renumber a published ID:
//
//	1  prediction       SZ3-style pipeline, serial Huffman entropy stage
//	2  transform        ZFP-style transform codec
//	3  prediction-ilv   prediction pipeline, interleaved multi-stream Huffman
//	4  prediction-tans  prediction pipeline, tANS entropy stage
//
// The entropy variants are separate codec identities rather than an
// Options field: the wire ID alone pins how a chunk body must be decoded,
// so archives mix codecs freely and readers need no side channel
// (DESIGN.md §11).
//
// # Container invariants
//
// Envelope and chunked-container parsing guarantees, pinned by
// container_test.go and the fuzzers:
//
//   - Every parse failure wraps exactly one typed error (ErrTruncated,
//     ErrBadMagic, ErrUnsupportedVersion, ErrUnknownCodec, ErrCorrupt,
//     ErrChecksum); no input makes a parser panic or read out of bounds.
//   - Routing dispatches on the leading magic: RQCE envelopes carry a
//     codec ID byte; legacy RQMC/RQZF native containers route to codecs
//     1/2 whole, since native containers are self-contained. A native
//     container produced by the entropy-variant codecs still begins with
//     RQMC and self-describes its entropy stage, so legacy-path decodes
//     of ID 3/4 payloads work unchanged.
//   - Chunk bodies in the chunked stream container are per-chunk
//     independent: each record names its codec ID, is CRC-checked before
//     decode, and decodes with no state from neighboring chunks.
package codec
