package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"rqm/internal/grid"
)

// buildChunkedContainer assembles a small chunked container from real codec
// payloads, returning the container and the values it encodes.
func buildChunkedContainer(t testing.TB, chunkValues int, chunks [][]float64) ([]byte, []IndexEntry) {
	t.Helper()
	c, err := ByID(IDPrediction)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hdr := &StreamHeader{CodecID: IDPrediction, Prec: grid.Float64, Name: "t", ChunkValues: chunkValues}
	if _, err := WriteStreamHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	var entries []IndexEntry
	var total int64
	for _, vals := range chunks {
		f, err := grid.FromData("", grid.Float64, vals, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		payload, err := c.Compress(f, Options{ErrorBound: 1e-3}) // ABS
		if err != nil {
			t.Fatal(err)
		}
		off := int64(buf.Len())
		n, err := WriteChunk(&buf, &Chunk{CodecID: IDPrediction, AbsBound: 1e-3, Values: len(vals), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, IndexEntry{Offset: off, Values: len(vals), RecordBytes: int(n), AbsBound: 1e-3})
		total += int64(len(vals))
	}
	if _, err := WriteTrailer(&buf, entries, total, int64(buf.Len())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), entries
}

func chunkedTestValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%37) * 0.5
	}
	return vals
}

func TestStreamHeaderRoundTrip(t *testing.T) {
	cases := []StreamHeader{
		{CodecID: IDPrediction, Prec: grid.Float64, Dims: []int{8, 9, 10}, Name: "nyx/temperature", ChunkValues: 4096},
		{CodecID: IDTransform, Prec: grid.Float32, Name: "", ChunkValues: 1},
		{CodecID: 77, Prec: grid.Float64, Dims: []int{5}, Name: "x", ChunkValues: 1 << 20},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		n, err := WriteStreamHeader(&buf, &want)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
		}
		got, rn, err := ReadStreamHeader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if rn != n {
			t.Fatalf("consumed %d bytes, wrote %d", rn, n)
		}
		if got.CodecID != want.CodecID || got.Prec != want.Prec || got.Name != want.Name ||
			got.ChunkValues != want.ChunkValues || len(got.Dims) != len(want.Dims) {
			t.Fatalf("got %+v, want %+v", got, want)
		}
		for i := range want.Dims {
			if got.Dims[i] != want.Dims[i] {
				t.Fatalf("dims %v, want %v", got.Dims, want.Dims)
			}
		}
	}
}

// TestChunkedContainerRoundTrip is the table-driven framing test: empty
// streams, single chunks, chunk-boundary-exact sizes, and partial tails all
// survive DecompressChunked.
func TestChunkedContainerRoundTrip(t *testing.T) {
	cases := []struct {
		name        string
		chunkValues int
		sizes       []int
	}{
		{"one chunk", 64, []int{40}},
		{"boundary exact", 64, []int{64, 64}},
		{"partial tail", 64, []int{64, 64, 17}},
		{"single value chunks", 1, []int{1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var chunks [][]float64
			var want []float64
			for _, n := range tc.sizes {
				vals := chunkedTestValues(n)
				chunks = append(chunks, vals)
				want = append(want, vals...)
			}
			data, _ := buildChunkedContainer(t, tc.chunkValues, chunks)

			f, err := DecompressChunked(data)
			if err != nil {
				t.Fatal(err)
			}
			if f.Len() != len(want) {
				t.Fatalf("decoded %d values, want %d", f.Len(), len(want))
			}
			for i := range want {
				if diff := f.Data[i] - want[i]; diff > 1e-3 || diff < -1e-3 {
					t.Fatalf("value %d: %g vs %g breaks the bound", i, f.Data[i], want[i])
				}
			}

			info, err := Inspect(data)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Chunked || info.Chunks != len(tc.sizes) || info.TotalValues != int64(len(want)) {
				t.Fatalf("info %+v, want %d chunks / %d values", info, len(tc.sizes), len(want))
			}
		})
	}
}

// TestChunkedContainerEmpty checks the zero-chunk container parses and
// reports its emptiness as a typed error on decode.
func TestChunkedContainerEmpty(t *testing.T) {
	data, _ := buildChunkedContainer(t, 64, nil)
	info, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Chunked || info.Chunks != 0 || info.TotalValues != 0 {
		t.Fatalf("info %+v, want empty chunked", info)
	}
	if _, err := DecompressChunked(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decoding an empty stream: %v, want ErrCorrupt", err)
	}
}

// TestChunkedContainerCorruption drives the typed-error contract: corrupted
// CRCs, truncated trailers, and truncated chunks fail with the right error
// and never panic.
func TestChunkedContainerCorruption(t *testing.T) {
	data, entries := buildChunkedContainer(t, 64, [][]float64{
		chunkedTestValues(64), chunkedTestValues(64), chunkedTestValues(30),
	})
	trailerStart := entries[len(entries)-1].Offset + int64(entries[len(entries)-1].RecordBytes)
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), data...))
	}
	cases := []struct {
		name    string
		blob    []byte
		wantErr error
	}{
		{"zero length", nil, ErrTruncated},
		{"single byte", data[:1], ErrTruncated},
		{"header only", mut(func(b []byte) []byte { return b[:entries[0].Offset] }), ErrTruncated},
		{"cut mid-chunk-header", mut(func(b []byte) []byte { return b[:entries[0].Offset+10] }), ErrTruncated},
		{"cut mid-payload", mut(func(b []byte) []byte { return b[:entries[1].Offset-7] }), ErrTruncated},
		{"truncated trailer", mut(func(b []byte) []byte { return b[:trailerStart+9] }), ErrTruncated},
		{"missing footer", mut(func(b []byte) []byte { return b[:len(b)-FooterSize] }), ErrTruncated},
		{"corrupted payload CRC", mut(func(b []byte) []byte {
			b[entries[1].Offset+int64(chunkHeadSize)+3] ^= 0xFF // flip a payload byte
			return b
		}), ErrChecksum},
		{"corrupted trailer CRC", mut(func(b []byte) []byte {
			b[trailerStart+5+4] ^= 0xFF // flip an index-entry byte under the trailer CRC
			return b
		}), ErrChecksum},
		{"bad record tag", mut(func(b []byte) []byte {
			b[entries[1].Offset] = 99
			return b
		}), ErrCorrupt},
		{"trailing garbage", mut(func(b []byte) []byte { return append(b, 0xAA) }), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecompressChunked(tc.blob); !errors.Is(err, tc.wantErr) {
				t.Fatalf("DecompressChunked: %v, want %v", err, tc.wantErr)
			}
			// Inspect must agree on structural failures (it skips payload
			// CRCs by design, so corruption under an intact structure may
			// legitimately pass inspection).
			if tc.wantErr != ErrChecksum {
				if _, err := Inspect(tc.blob); !errors.Is(err, tc.wantErr) {
					t.Fatalf("Inspect: %v, want %v", err, tc.wantErr)
				}
			}
		})
	}
}

// TestCorruptLengthsDoNotAllocate pins the hostile-input contract: a tiny
// container whose length fields declare gigabytes must fail with a typed
// error, not attempt the allocation (a corrupt trailer count previously
// drove a fatal OOM from a ~30-byte input).
func TestCorruptLengthsDoNotAllocate(t *testing.T) {
	data, entries := buildChunkedContainer(t, 64, [][]float64{chunkedTestValues(64)})
	trailerStart := entries[0].Offset + int64(entries[0].RecordBytes)

	huge := append([]byte(nil), data[:trailerStart+1]...) // up to the trailer tag
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF)           // count = 4294967295
	if _, err := DecompressChunked(huge); !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge trailer count: %v, want ErrTruncated", err)
	}
	if _, err := Inspect(huge); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Inspect huge trailer count: %v, want ErrTruncated", err)
	}

	// A chunk header declaring a ~2 GB payload on a short container.
	bigChunk := append([]byte(nil), data[:entries[0].Offset]...)
	rec := make([]byte, chunkHeadSize)
	rec[0] = TagChunk
	rec[1] = byte(IDPrediction)
	binary.LittleEndian.PutUint32(rec[10:], 64)
	binary.LittleEndian.PutUint32(rec[14:], maxChunkPayload-1)
	bigChunk = append(bigChunk, rec...)
	if _, err := DecompressChunked(bigChunk); !errors.Is(err, ErrTruncated) {
		t.Fatalf("huge payload length: %v, want ErrTruncated", err)
	}
}

// TestLoadIndexRandomAccess walks the trailer index and decodes chunks out
// of order through ReadChunkAt.
func TestLoadIndexRandomAccess(t *testing.T) {
	sizes := []int{64, 64, 25}
	var chunks [][]float64
	for _, n := range sizes {
		chunks = append(chunks, chunkedTestValues(n))
	}
	data, wantEntries := buildChunkedContainer(t, 64, chunks)

	idx, err := LoadIndex(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if idx.TotalValues != 64+64+25 || len(idx.Entries) != len(wantEntries) {
		t.Fatalf("index %+v, want %d entries / 153 values", idx, len(wantEntries))
	}
	for i, e := range idx.Entries {
		if e != wantEntries[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, e, wantEntries[i])
		}
	}
	// Decode the last chunk only — no other record is touched.
	c, err := ReadChunkAt(bytes.NewReader(data), idx.Entries[2])
	if err != nil {
		t.Fatal(err)
	}
	vals, err := DecodeChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 25 {
		t.Fatalf("random-access chunk decoded %d values, want 25", len(vals))
	}
	for i, v := range vals {
		if diff := v - chunks[2][i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("value %d: %g vs %g breaks the bound", i, v, chunks[2][i])
		}
	}
}

// TestLoadIndexRejectsTruncatedFooter checks the random-access path reports
// typed errors on footer damage.
func TestLoadIndexRejectsTruncatedFooter(t *testing.T) {
	data, _ := buildChunkedContainer(t, 64, [][]float64{chunkedTestValues(64)})
	if _, err := LoadIndex(bytes.NewReader(data[:len(data)-5])); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated footer: %v, want typed container error", err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := LoadIndex(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad footer magic: %v, want ErrCorrupt", err)
	}
}

// TestOpenRejectsFutureVersion pins versions above 2 to
// ErrUnsupportedVersion now that 2 is taken by the chunked format.
func TestOpenRejectsFutureVersion(t *testing.T) {
	data, _ := buildChunkedContainer(t, 64, [][]float64{chunkedTestValues(10)})
	bad := append([]byte(nil), data...)
	bad[4] = 3
	if _, err := Inspect(bad); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version 3: %v, want ErrUnsupportedVersion", err)
	}
}
