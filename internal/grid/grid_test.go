package grid

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", Float32); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := New("x", Float32, 2, 3, 4, 5, 6); err == nil {
		t.Fatal("rank 5 accepted")
	}
	if _, err := New("x", Float32, 4, 0); err == nil {
		t.Fatal("zero dim accepted")
	}
	f, err := New("x", Float64, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 60 || f.Rank() != 3 {
		t.Fatalf("Len/Rank = %d/%d", f.Len(), f.Rank())
	}
}

func TestStridesAndIndex(t *testing.T) {
	f := MustNew("x", Float32, 2, 3, 4)
	st := f.Strides()
	if st[0] != 12 || st[1] != 4 || st[2] != 1 {
		t.Fatalf("Strides = %v", st)
	}
	if got := f.Index(1, 2, 3); got != 23 {
		t.Fatalf("Index = %d", got)
	}
	f.Set(7.5, 1, 2, 3)
	if f.At(1, 2, 3) != 7.5 || f.Data[23] != 7.5 {
		t.Fatal("At/Set mismatch")
	}
}

func TestFromData(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	f, err := FromData("x", Float32, data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", f.At(1, 2))
	}
	if _, err := FromData("x", Float32, data, 7); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustNew("x", Float64, 4)
	f.Data[0] = 1
	c := f.Clone()
	c.Data[0] = 2
	c.Dims[0] = 99
	if f.Data[0] != 1 || f.Dims[0] != 4 {
		t.Fatal("Clone shares storage")
	}
}

func TestValueRange(t *testing.T) {
	f := MustNew("x", Float32, 5)
	copy(f.Data, []float64{3, -2, 8, 0, 1})
	lo, hi := f.ValueRange()
	if lo != -2 || hi != 8 {
		t.Fatalf("ValueRange = %v, %v", lo, hi)
	}
}

func TestOriginalBytes(t *testing.T) {
	f := MustNew("x", Float32, 10)
	if f.OriginalBytes() != 40 {
		t.Fatalf("OriginalBytes = %d", f.OriginalBytes())
	}
	f.Prec = Float64
	if f.OriginalBytes() != 80 {
		t.Fatalf("OriginalBytes = %d", f.OriginalBytes())
	}
}

func TestBlocksCoverExactly(t *testing.T) {
	f := MustNew("x", Float32, 7, 5)
	blocks := f.Blocks(3)
	// ceil(7/3)*ceil(5/3) = 3*2 = 6 blocks.
	if len(blocks) != 6 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	seen := make([]int, f.Len())
	for _, b := range blocks {
		f.ForEachInBlock(b, func(flat int, _ []int) { seen[flat]++ })
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestBlocksClipAtEdge(t *testing.T) {
	f := MustNew("x", Float32, 7)
	blocks := f.Blocks(4)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[1].Origin[0] != 4 || blocks[1].Size[0] != 3 {
		t.Fatalf("clipped block = %+v", blocks[1])
	}
}

func TestForEachInBlockScanOrder(t *testing.T) {
	f := MustNew("x", Float32, 4, 4)
	b := Block{Origin: []int{1, 1}, Size: []int{2, 3}}
	var flats []int
	f.ForEachInBlock(b, func(flat int, coord []int) {
		flats = append(flats, flat)
	})
	want := []int{5, 6, 7, 9, 10, 11}
	if len(flats) != len(want) {
		t.Fatalf("visited %v", flats)
	}
	for i := range want {
		if flats[i] != want[i] {
			t.Fatalf("visited %v, want %v", flats, want)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for _, prec := range []Precision{Float32, Float64} {
		f := MustNew("field", prec, 3, 5)
		for i := range f.Data {
			f.Data[i] = float64(i) * 0.25
		}
		var buf bytes.Buffer
		n, err := f.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != buf.Len() {
			t.Fatalf("WriteTo returned %d, buffer has %d", n, buf.Len())
		}
		g, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.Rank() != 2 || g.Dims[0] != 3 || g.Dims[1] != 5 || g.Prec != prec {
			t.Fatalf("metadata mismatch: %+v", g)
		}
		for i := range f.Data {
			if g.Data[i] != f.Data[i] {
				t.Fatalf("data[%d] = %v want %v (prec %d)", i, g.Data[i], f.Data[i], prec)
			}
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short read accepted")
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 16))
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Property: Index is a bijection between coordinates and [0, Len) for
// arbitrary small shapes.
func TestQuickIndexBijection(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d0, d1, d2 := int(a)%5+1, int(b)%5+1, int(c)%5+1
		fld := MustNew("x", Float32, d0, d1, d2)
		seen := make(map[int]bool)
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				for k := 0; k < d2; k++ {
					idx := fld.Index(i, j, k)
					if idx < 0 || idx >= fld.Len() || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
		}
		return len(seen) == fld.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
