// Package grid holds N-dimensional scalar fields (1D–4D) in row-major
// float64 buffers, together with the metadata the compressor and the
// ratio-quality model need: logical shape, stride math, block iteration, and
// the original storage precision used for ratio accounting (a field loaded
// from float32 data counts 32 bits per value when computing compression
// ratios, exactly as the paper does).
package grid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Precision records how the original data was stored on disk. Compression
// ratio is original bits per value divided by compressed bits per value.
type Precision int

const (
	// Float32 marks single-precision origin (32 bits/value).
	Float32 Precision = 32
	// Float64 marks double-precision origin (64 bits/value).
	Float64 Precision = 64
)

// Bits returns the bit width per value for the precision.
func (p Precision) Bits() int { return int(p) }

// Field is an N-dimensional scalar field. Data is row-major: the last
// dimension varies fastest.
type Field struct {
	// Name identifies the field (e.g. "nyx/temperature").
	Name string
	// Dims holds the logical extents, outermost first. len(Dims) in [1,4].
	Dims []int
	// Data is the row-major sample buffer, length = product(Dims).
	Data []float64
	// Prec is the original storage precision for ratio accounting.
	Prec Precision
}

// shapeLen validates a shape (rank 1..4, positive dims, overflow-guarded
// product) and returns its sample count — the single source of the shape
// rules shared by New and FromData.
func shapeLen(dims []int) (int, error) {
	if len(dims) < 1 || len(dims) > 4 {
		return 0, fmt.Errorf("grid: unsupported rank %d (want 1..4)", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("grid: non-positive dimension %d", d)
		}
		if n > math.MaxInt/d {
			return 0, errors.New("grid: dimension product overflows")
		}
		n *= d
	}
	return n, nil
}

// New allocates a zero-filled field with the given shape.
func New(name string, prec Precision, dims ...int) (*Field, error) {
	n, err := shapeLen(dims)
	if err != nil {
		return nil, err
	}
	return &Field{
		Name: name,
		Dims: append([]int(nil), dims...),
		Data: make([]float64, n),
		Prec: prec,
	}, nil
}

// MustNew is New that panics on error; for tests and generators with
// compile-time-constant shapes.
func MustNew(name string, prec Precision, dims ...int) *Field {
	f, err := New(name, prec, dims...)
	if err != nil {
		panic(err)
	}
	return f
}

// FromData wraps an existing buffer (no copy, no throwaway allocation);
// len(data) must match the shape product.
func FromData(name string, prec Precision, data []float64, dims ...int) (*Field, error) {
	n, err := shapeLen(dims)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("grid: data length %d does not match shape %v (%d)", len(data), dims, n)
	}
	return &Field{
		Name: name,
		Dims: append([]int(nil), dims...),
		Data: data,
		Prec: prec,
	}, nil
}

// Len returns the total number of samples.
func (f *Field) Len() int { return len(f.Data) }

// Rank returns the number of dimensions.
func (f *Field) Rank() int { return len(f.Dims) }

// Strides returns row-major strides matching Dims (outermost first).
func (f *Field) Strides() []int {
	s := make([]int, len(f.Dims))
	acc := 1
	for i := len(f.Dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= f.Dims[i]
	}
	return s
}

// Index converts per-dimension coordinates to a flat offset. No bounds
// checks beyond slice access; callers keep coordinates in range.
func (f *Field) Index(coord ...int) int {
	idx := 0
	st := f.Strides()
	for i, c := range coord {
		idx += c * st[i]
	}
	return idx
}

// At reads the sample at the given coordinates.
func (f *Field) At(coord ...int) float64 { return f.Data[f.Index(coord...)] }

// Set writes the sample at the given coordinates.
func (f *Field) Set(v float64, coord ...int) { f.Data[f.Index(coord...)] = v }

// Clone deep-copies the field.
func (f *Field) Clone() *Field {
	c := &Field{
		Name: f.Name,
		Dims: append([]int(nil), f.Dims...),
		Data: append([]float64(nil), f.Data...),
		Prec: f.Prec,
	}
	return c
}

// OriginalBytes returns the size of the field in its original precision.
func (f *Field) OriginalBytes() int64 {
	return int64(f.Len()) * int64(f.Prec.Bits()/8)
}

// ValueRange scans for (min, max).
func (f *Field) ValueRange() (lo, hi float64) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Block describes an axis-aligned sub-box of a field: Origin coordinates and
// Size per dimension (clipped at field edges by BlockIter).
type Block struct {
	Origin []int
	Size   []int
}

// Blocks partitions the field into blocks of edge `edge` (clipped at the
// boundary) and returns them in scan order. Used by the regression predictor
// (edge 6 in SZ) and by block sampling.
func (f *Field) Blocks(edge int) []Block {
	if edge <= 0 {
		edge = 1
	}
	rank := f.Rank()
	counts := make([]int, rank)
	total := 1
	for i, d := range f.Dims {
		counts[i] = (d + edge - 1) / edge
		total *= counts[i]
	}
	out := make([]Block, 0, total)
	coord := make([]int, rank)
	for {
		b := Block{Origin: make([]int, rank), Size: make([]int, rank)}
		for i := range coord {
			b.Origin[i] = coord[i] * edge
			sz := edge
			if b.Origin[i]+sz > f.Dims[i] {
				sz = f.Dims[i] - b.Origin[i]
			}
			b.Size[i] = sz
		}
		out = append(out, b)
		// Increment odometer.
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < counts[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// ForEachInBlock invokes fn for every flat index inside block b, in scan
// order, passing the per-dimension coordinates (valid until return).
func (f *Field) ForEachInBlock(b Block, fn func(flat int, coord []int)) {
	rank := f.Rank()
	coord := make([]int, rank)
	copy(coord, b.Origin)
	st := f.Strides()
	for {
		flat := 0
		for i := range coord {
			flat += coord[i] * st[i]
		}
		fn(flat, coord)
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < b.Origin[i]+b.Size[i] {
				break
			}
			coord[i] = b.Origin[i]
		}
		if i < 0 {
			return
		}
	}
}

// binary layout magic for the on-disk raw field format (cmd/datagen output).
const fieldMagic = 0x52514d46 // "RQMF"

// WriteTo serializes the field: magic, precision, rank, dims, then samples in
// the original precision (float32 values are stored as float32). Returns the
// byte count written.
func (f *Field) WriteTo(w io.Writer) (int64, error) {
	n, err := WriteHeader(w, f.Prec, f.Dims)
	if err != nil {
		return n, err
	}
	if f.Prec == Float32 {
		buf := make([]float32, len(f.Data))
		for i, v := range f.Data {
			buf[i] = float32(v)
		}
		if err := binary.Write(w, binary.LittleEndian, buf); err != nil {
			return n, err
		}
		n += int64(4 * len(buf))
		return n, nil
	}
	if err := binary.Write(w, binary.LittleEndian, f.Data); err != nil {
		return n, err
	}
	n += int64(8 * len(f.Data))
	return n, nil
}

// ReadHeader parses a WriteTo header — magic, precision, shape — and leaves
// r positioned at the first sample, so callers can stream the sample
// section instead of materializing the field (the raw samples follow as
// little-endian values in the returned precision).
func ReadHeader(r io.Reader) (Precision, []int, error) {
	var magic, meta uint64
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return 0, nil, err
	}
	if magic != fieldMagic {
		return 0, nil, fmt.Errorf("grid: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &meta); err != nil {
		return 0, nil, err
	}
	prec := Precision(meta >> 8)
	rank := int(meta & 0xFF)
	if prec != Float32 && prec != Float64 {
		return 0, nil, fmt.Errorf("grid: bad precision %d", prec)
	}
	if rank < 1 || rank > 4 {
		return 0, nil, fmt.Errorf("grid: bad rank %d", rank)
	}
	dims := make([]int, rank)
	for i := range dims {
		var d uint64
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return 0, nil, err
		}
		if d == 0 || d > 1<<32 {
			return 0, nil, fmt.Errorf("grid: bad dimension %d", d)
		}
		dims[i] = int(d)
	}
	return prec, dims, nil
}

// WriteHeader writes the WriteTo header for a shape without its samples —
// the streaming mirror of ReadHeader. Returns the byte count written.
func WriteHeader(w io.Writer, prec Precision, dims []int) (int64, error) {
	if len(dims) < 1 || len(dims) > 4 {
		return 0, fmt.Errorf("grid: unsupported rank %d (want 1..4)", len(dims))
	}
	hdr := make([]uint64, 0, 2+len(dims))
	hdr = append(hdr, fieldMagic, uint64(prec)<<8|uint64(len(dims)))
	for _, d := range dims {
		hdr = append(hdr, uint64(d))
	}
	var n int64
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return n, err
		}
		n += 8
	}
	return n, nil
}

// ReadFrom deserializes a field written by WriteTo.
func ReadFrom(r io.Reader) (*Field, error) {
	prec, dims, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	f, err := New("", prec, dims...)
	if err != nil {
		return nil, err
	}
	if prec == Float32 {
		buf := make([]float32, f.Len())
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		for i, v := range buf {
			f.Data[i] = float64(v)
		}
		return f, nil
	}
	if err := binary.Read(r, binary.LittleEndian, f.Data); err != nil {
		return nil, err
	}
	return f, nil
}
