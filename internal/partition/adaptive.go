package partition

import (
	"errors"
	"fmt"
	"math"

	"rqm/internal/codec"
	"rqm/internal/core"
	"rqm/internal/grid"
)

// AdaptiveBound is the per-region error-bound policy: a region is profiled
// with the ratio-quality model (one cheap sampling pass, no compression
// run), the model's inverse solver picks the bound that meets the target on
// that region, and the region is compressed in ABS mode at the solved bound.
// Smooth regions therefore get loose bounds and complex regions tight ones,
// while every region tracks the same global ratio or quality target — the
// paper's in-situ error-bound optimization running inside the pipeline.
//
// The stream writer applies the policy to whatever regions its partitioner
// plans: fixed slabs under FixedSlab (the historical per-chunk adaptive
// mode), variance-guided leaves under VarianceQuadtree.
//
// Exactly one of TargetRatio and TargetPSNR must be set.
type AdaptiveBound struct {
	// TargetRatio aims each region at this compression ratio (> 1).
	TargetRatio float64
	// TargetPSNR aims each region at this reconstruction quality in dB (> 0).
	TargetPSNR float64
	// MinBound clamps the solved absolute bound from below (0 = no floor).
	MinBound float64
	// MaxBound clamps the solved absolute bound from above (0 = no cap).
	MaxBound float64
}

// Validate checks the policy is well-formed.
func (a AdaptiveBound) Validate() error {
	hasRatio := a.TargetRatio != 0
	hasPSNR := a.TargetPSNR != 0
	if hasRatio == hasPSNR {
		return errors.New("stream: AdaptiveBound needs exactly one of TargetRatio and TargetPSNR")
	}
	if hasRatio && a.TargetRatio <= 1 {
		return fmt.Errorf("stream: AdaptiveBound.TargetRatio must exceed 1, got %v", a.TargetRatio)
	}
	if hasPSNR && a.TargetPSNR <= 0 {
		return fmt.Errorf("stream: AdaptiveBound.TargetPSNR must be positive, got %v", a.TargetPSNR)
	}
	if a.MinBound < 0 || a.MaxBound < 0 {
		return errors.New("stream: AdaptiveBound clamps must be non-negative")
	}
	if a.MinBound > 0 && a.MaxBound > 0 && a.MinBound > a.MaxBound {
		return fmt.Errorf("stream: AdaptiveBound.MinBound %v exceeds MaxBound %v", a.MinBound, a.MaxBound)
	}
	return nil
}

// minAdaptiveSamples floors the per-region profile size: at the paper's 1%
// default a small region would profile from a handful of samples and the
// solved bound would be noise, so the rate is raised until the region
// contributes at least this many.
const minAdaptiveSamples = 256

// BoundFor solves the policy for one region. Degenerate regions the model
// cannot profile (constant data, too few samples) fall back to a tight
// bound relative to the region's value range, so a pathological region never
// fails the stream.
func (a AdaptiveBound) BoundFor(c codec.Codec, f *grid.Field, copts codec.Options, mopts core.Options) float64 {
	if mopts.SampleRate <= 0 || mopts.SampleRate > 1 {
		mopts.SampleRate = 0.01
	}
	if float64(f.Len())*mopts.SampleRate < minAdaptiveSamples {
		mopts.SampleRate = math.Min(1, minAdaptiveSamples/float64(f.Len()))
	}
	var eb float64
	p, err := c.Profile(f, copts, mopts)
	if err == nil {
		if a.TargetRatio > 0 {
			eb, err = p.ErrorBoundForRatio(a.TargetRatio)
		} else {
			eb, err = p.ErrorBoundForPSNR(a.TargetPSNR)
		}
	}
	if err != nil || !(eb > 0) {
		lo, hi := f.ValueRange()
		eb = (hi - lo) * 1e-6
		if eb <= 0 {
			eb = a.MinBound
		}
		if eb <= 0 {
			eb = 1e-12
		}
	}
	if a.MinBound > 0 && eb < a.MinBound {
		eb = a.MinBound
	}
	if a.MaxBound > 0 && eb > a.MaxBound {
		eb = a.MaxBound
	}
	return eb
}
