package partition

import (
	"errors"
	"math"
	"testing"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
)

func testEnv(t *testing.T, dims []int, chunk int, policy *AdaptiveBound) Env {
	t.Helper()
	c, err := codec.ByID(codec.IDPrediction)
	if err != nil {
		t.Fatal(err)
	}
	return Env{
		Codec:       c,
		Copts:       codec.Options{Mode: compressor.ABS, ErrorBound: 1e-3},
		Policy:      policy,
		Prec:        grid.Float64,
		Dims:        dims,
		ChunkValues: chunk,
	}
}

func TestFixedSlabPlans(t *testing.T) {
	env := testEnv(t, nil, 1024, nil)
	window := make([]float64, 777)
	plan, err := FixedSlab{}.Partition(window, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) != 1 || plan.Regions[0] != (Region{Off: 0, Len: 777}) {
		t.Fatalf("plan = %+v, want one region covering the window", plan)
	}
	if plan.Splits != 0 {
		t.Fatalf("fixed slab took %d splits", plan.Splits)
	}
	if err := plan.Validate(len(window)); err != nil {
		t.Fatal(err)
	}
	if got := (FixedSlab{}).WindowValues(env); got != 1024 {
		t.Fatalf("default window = %d, want the nominal chunk size", got)
	}
	if got := (FixedSlab{Values: 64}).WindowValues(env); got != 64 {
		t.Fatalf("override window = %d, want 64", got)
	}
	empty, err := FixedSlab{}.Partition(nil, env)
	if err != nil || len(empty.Regions) != 0 {
		t.Fatalf("empty window plan = %+v, %v", empty, err)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		n    int
		ok   bool
	}{
		{"exact", Plan{Regions: []Region{{0, 3, 0, 0}, {3, 2, 0, 0}}}, 5, true},
		{"gap", Plan{Regions: []Region{{0, 2, 0, 0}, {3, 2, 0, 0}}}, 5, false},
		{"overlap", Plan{Regions: []Region{{0, 3, 0, 0}, {2, 3, 0, 0}}}, 5, false},
		{"short", Plan{Regions: []Region{{0, 3, 0, 0}}}, 5, false},
		{"empty-region", Plan{Regions: []Region{{0, 0, 0, 0}, {0, 5, 0, 0}}}, 5, false},
		{"empty-plan-empty-window", Plan{}, 0, true},
		{"empty-plan-nonempty-window", Plan{}, 5, false},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(tc.n); (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", FixedSlabName, VarianceQuadtreeName} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
		if !Known(name) {
			t.Fatalf("Known(%q) = false", name)
		}
	}
	if _, err := ByName("no-such-partitioner"); err == nil {
		t.Fatal("unknown name not rejected")
	}
	if Known("no-such-partitioner") {
		t.Fatal("Known accepted an unknown name")
	}
}

func TestQuadtreeNeedsPolicy(t *testing.T) {
	env := testEnv(t, nil, 1024, nil)
	if _, err := (VarianceQuadtree{}).Partition(make([]float64, 100), env); !errors.Is(err, ErrNeedPolicy) {
		t.Fatalf("err = %v, want ErrNeedPolicy", err)
	}
}

func TestQuadtreeConstantField(t *testing.T) {
	policy := &AdaptiveBound{TargetPSNR: 60}
	env := testEnv(t, nil, 1<<16, policy)
	window := make([]float64, 20000)
	for i := range window {
		window[i] = 3.25
	}
	plan, err := VarianceQuadtree{}.Partition(window, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(len(window)); err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) != 1 || plan.Splits != 0 {
		t.Fatalf("constant field planned %d regions / %d splits, want 1 / 0",
			len(plan.Regions), plan.Splits)
	}
	if !(plan.Regions[0].Bound > 0) {
		t.Fatalf("constant region bound = %v, want positive fallback", plan.Regions[0].Bound)
	}
}

func TestQuadtreeForcedSplits(t *testing.T) {
	policy := &AdaptiveBound{TargetPSNR: 60}
	env := testEnv(t, nil, 1000, policy) // MaxRegionValues defaults to ChunkValues
	window := make([]float64, 8192)
	for i := range window {
		window[i] = 1.0
	}
	plan, err := VarianceQuadtree{MinRegionValues: 256}.Partition(window, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(len(window)); err != nil {
		t.Fatal(err)
	}
	for _, r := range plan.Regions {
		if r.Len > 1000 {
			t.Fatalf("region of %d values exceeds the %d cap", r.Len, 1000)
		}
	}
	if plan.Splits == 0 {
		t.Fatal("cap-forced splits not counted")
	}
}

// TestQuadtreeMixedField is the core behavioral contract: on a composite
// field whose outer halves are smooth and turbulent, the planner must (a)
// tile exactly, (b) split the field rather than emit one slab, and (c) give
// the smooth half looser bounds than the turbulent half under a shared PSNR
// target.
func TestQuadtreeMixedField(t *testing.T) {
	dims := []int{32, 48, 48}
	f := datagen.MixedField("mixed", grid.Float64, dims, 7)
	policy := &AdaptiveBound{TargetPSNR: 65}
	env := testEnv(t, dims, 1<<18, policy)
	plan, err := VarianceQuadtree{}.Partition(f.Data, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(len(f.Data)); err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) < 2 || plan.Splits == 0 {
		t.Fatalf("mixed field planned %d regions / %d splits, want a real split",
			len(plan.Regions), plan.Splits)
	}
	half := len(f.Data) / 2
	var smoothSum, roughSum float64
	var smoothN, roughN int
	for _, r := range plan.Regions {
		if !(r.Bound > 0) {
			t.Fatalf("region %+v has no solved bound", r)
		}
		mid := r.Off + r.Len/2
		if mid < half {
			smoothSum += r.Bound * float64(r.Len)
			smoothN += r.Len
		} else {
			roughSum += r.Bound * float64(r.Len)
			roughN += r.Len
		}
	}
	if smoothN == 0 || roughN == 0 {
		t.Fatalf("regions did not cover both halves (smooth %d, rough %d)", smoothN, roughN)
	}
	smoothAvg := smoothSum / float64(smoothN)
	roughAvg := roughSum / float64(roughN)
	if !(smoothAvg > roughAvg) {
		t.Fatalf("smooth-half mean bound %v not looser than turbulent-half %v", smoothAvg, roughAvg)
	}
}

// TestQuadtreeDeterministic pins the reproducibility contract recompaction
// relies on: the same window and env must replan identically.
func TestQuadtreeDeterministic(t *testing.T) {
	dims := []int{16, 32, 32}
	f := datagen.MixedField("mixed", grid.Float64, dims, 11)
	env := testEnv(t, dims, 1<<18, &AdaptiveBound{TargetRatio: 10})
	a, err := VarianceQuadtree{}.Partition(f.Data, env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VarianceQuadtree{}.Partition(f.Data, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Regions) != len(b.Regions) || a.Splits != b.Splits {
		t.Fatalf("plans differ: %d/%d regions, %d/%d splits",
			len(a.Regions), len(b.Regions), a.Splits, b.Splits)
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			t.Fatalf("region %d differs: %+v vs %+v", i, a.Regions[i], b.Regions[i])
		}
	}
}

func TestPlanDims(t *testing.T) {
	cases := []struct {
		dims []int
		n    int
		want []int
	}{
		{nil, 100, []int{100}},
		{[]int{10, 10}, 100, []int{10, 10}},
		{[]int{10, 10}, 99, []int{99}}, // mismatched shape plans as 1-D
		{[]int{4, 5, 5}, 100, []int{4, 5, 5}},
		{[]int{2, 3, 4, 5}, 120, []int{2, 3, 20}}, // rank 4 folds into rank 3
		{[]int{1, 10, 10}, 100, []int{10, 10}},    // leading singleton dropped
		{[]int{1, 1, 8}, 8, []int{8}},
		{[]int{1}, 1, []int{1}},
	}
	for _, tc := range cases {
		got := planDims(tc.dims, tc.n)
		if len(got) != len(tc.want) {
			t.Errorf("planDims(%v, %d) = %v, want %v", tc.dims, tc.n, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("planDims(%v, %d) = %v, want %v", tc.dims, tc.n, got, tc.want)
				break
			}
		}
	}
}

func TestQuadtreeValidateConfig(t *testing.T) {
	env := testEnv(t, nil, 1024, &AdaptiveBound{TargetPSNR: 60})
	if err := (VarianceQuadtree{SplitFactor: 0.5}).Validate(env); err == nil {
		t.Error("SplitFactor < 1 not rejected")
	}
	if err := (VarianceQuadtree{MinRegionValues: -1}).Validate(env); err == nil {
		t.Error("negative MinRegionValues not rejected")
	}
	if err := (VarianceQuadtree{}).Validate(env); err != nil {
		t.Errorf("zero value rejected: %v", err)
	}
	if math.IsNaN(DefaultSplitFactor) || DefaultSplitFactor < 1 {
		t.Error("bad DefaultSplitFactor")
	}
}
