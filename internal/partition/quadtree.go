package partition

import (
	"fmt"
	"math"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

// VarianceQuadtreeName is VarianceQuadtree's manifest identifier.
const VarianceQuadtreeName = "variance-quadtree"

// VarianceQuadtree plans regions by recursive, variance-guided bisection of
// the field: it builds summed-area tables (stats.Integral) over the buffered
// window, then walks the field quadtree/octree-style — bisecting an axis
// range where the two halves' variances disagree, descending into single
// hyperplanes to keep splitting along inner axes — and emits each leaf as
// one region with an error bound solved per leaf by the stream's
// AdaptiveBound policy. Every split decision is O(1) thanks to the tables,
// so planning costs one O(N) table build plus O(leaves) model solves.
//
// Splits always land on axis-aligned prefix boxes (fixed outer coordinates,
// a range on one axis, full extents after it), which are exactly the boxes
// that stay contiguous in row-major order — so each leaf maps to one
// contiguous chunk of the container and the RQCE v2 format needs no change.
//
// The zero value is ready to use with the defaults below; it requires an
// AdaptiveBound policy in the stream (Env.Policy) to solve leaf bounds.
type VarianceQuadtree struct {
	// MinRegionValues floors the leaf size (default 4096): below it the
	// per-region model solve is noise and chunk framing overhead dominates.
	MinRegionValues int
	// MaxRegionValues caps the leaf size (default: the writer's chunk
	// size), bounding reader-side memory exactly like fixed chunking does.
	MaxRegionValues int
	// SplitFactor is the non-uniformity threshold: a range is bisected when
	// one half's standard deviation exceeds the other's by this factor
	// (default 2).
	SplitFactor float64
}

// DefaultMinRegionValues is the default leaf-size floor.
const DefaultMinRegionValues = 4096

// DefaultSplitFactor is the default non-uniformity threshold on the ratio
// of the two halves' standard deviations.
const DefaultSplitFactor = 2.0

// Name implements Partitioner.
func (VarianceQuadtree) Name() string { return VarianceQuadtreeName }

// WindowValues implements Partitioner: the whole stream, since spatial
// splitting needs the full field geometry.
func (VarianceQuadtree) WindowValues(Env) int { return 0 }

// Validate reports configuration errors at writer-construction time.
func (q VarianceQuadtree) Validate(env Env) error {
	if env.Policy == nil {
		return ErrNeedPolicy
	}
	if q.MinRegionValues < 0 || q.MaxRegionValues < 0 {
		return fmt.Errorf("partition: negative region size limits (%d, %d)",
			q.MinRegionValues, q.MaxRegionValues)
	}
	if q.SplitFactor < 0 || (q.SplitFactor > 0 && q.SplitFactor < 1) {
		return fmt.Errorf("partition: SplitFactor %v must be at least 1", q.SplitFactor)
	}
	return nil
}

// planDims maps the declared stream shape onto a rank-1..3 planning shape:
// unknown or mismatched shapes plan as 1-D, higher ranks fold their trailing
// axes into the third (a rank-4 field splits like a 3-D stack of its
// innermost planes), and leading size-1 axes are dropped so they cannot
// block splitting.
func planDims(dims []int, n int) []int {
	total := 1
	for _, d := range dims {
		total *= d
	}
	if len(dims) == 0 || total != n {
		return []int{n}
	}
	out := make([]int, 0, 3)
	for i, d := range dims {
		if len(out) == 0 && d == 1 && i < len(dims)-1 {
			continue // leading singleton axis
		}
		if len(out) < 3 {
			out = append(out, d)
		} else {
			out[2] *= d
		}
	}
	return out
}

// qplan carries one Partition call's recursion state.
type qplan struct {
	window    []float64
	dims      []int
	strideVal []int // values per index step along each axis
	it        *stats.Integral
	minLeaf   int
	maxLeaf   int
	factor2   float64 // SplitFactor², compared against variance ratios
	varFloor  float64 // variances at or below this count as "flat"
	regions   []Region
	splits    int
}

// Partition implements Partitioner.
func (q VarianceQuadtree) Partition(window []float64, env Env) (Plan, error) {
	if err := q.Validate(env); err != nil {
		return Plan{}, err
	}
	if len(window) == 0 {
		return Plan{}, nil
	}
	dims := planDims(env.Dims, len(window))
	it, err := stats.NewIntegral(window, dims...)
	if err != nil {
		return Plan{}, err
	}
	p := &qplan{
		window:    window,
		dims:      dims,
		strideVal: make([]int, len(dims)),
		it:        it,
		minLeaf:   q.MinRegionValues,
		maxLeaf:   q.MaxRegionValues,
		factor2:   q.SplitFactor * q.SplitFactor,
	}
	if p.minLeaf == 0 {
		p.minLeaf = DefaultMinRegionValues
	}
	if p.maxLeaf == 0 {
		p.maxLeaf = env.ChunkValues
	}
	if p.maxLeaf < 1 {
		p.maxLeaf = 1
	}
	if p.minLeaf > p.maxLeaf/2 {
		p.minLeaf = p.maxLeaf / 2
	}
	if p.minLeaf < 1 {
		p.minLeaf = 1
	}
	if q.SplitFactor == 0 {
		p.factor2 = DefaultSplitFactor * DefaultSplitFactor
	}
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		p.strideVal[i] = s
		s *= dims[i]
	}
	// Variances within ~9 digits of the global variance's float noise are
	// indistinguishable from flat: the sum-of-squares identity behind the
	// tables cancels catastrophically on near-constant data.
	_, globalVar, err := it.MeanVar(make([]int, len(dims)), append([]int(nil), dims...))
	if err != nil {
		return Plan{}, err
	}
	p.varFloor = globalVar*1e-9 + math.SmallestNonzeroFloat64

	p.part(nil, 0, 0, dims[0])

	// Solve the policy per leaf; each leaf is profiled as its own 1-D field.
	// A PSNR target needs one adjustment: the model normalizes PSNR by the
	// profiled field's own range, but the stream's PSNR is judged against
	// the whole window's range. Solving each leaf at the raw target would
	// over-tighten quiet (small-range) leaves — the error budget that a
	// leaf of range r may spend while the window still meets T dB globally
	// corresponds to a leaf-local target of T + 20·log₁₀(r / window range).
	policy := *env.Policy
	var windowRange float64
	if policy.TargetPSNR > 0 {
		mn, mx := stats.MinMax(window)
		windowRange = mx - mn
	}
	for i := range p.regions {
		r := &p.regions[i]
		leaf := window[r.Off : r.Off+r.Len]
		pol := policy
		if windowRange > 0 {
			mn, mx := stats.MinMax(leaf)
			if lr := mx - mn; lr > 0 {
				pol.TargetPSNR = policy.TargetPSNR + 20*math.Log10(lr/windowRange)
				if pol.TargetPSNR < 1 {
					pol.TargetPSNR = 1
				}
			}
		}
		f, err := grid.FromData("", env.Prec, leaf, r.Len)
		if err != nil {
			return Plan{}, err
		}
		r.Bound = pol.BoundFor(env.Codec, f, env.Copts, env.Mopts)
	}
	plan := Plan{Regions: p.regions, Splits: p.splits}
	if err := plan.Validate(len(window)); err != nil {
		return Plan{}, err
	}
	return plan, nil
}

// part recursively plans the range [a, b) on axis, with the outer axes fixed
// at prefix. Ranges bisect at the midpoint when forced (over MaxRegionValues)
// or when the halves' variances are non-uniform; a single index on a non-final
// axis descends one axis deeper, which keeps every region a contiguous
// prefix box.
func (p *qplan) part(prefix []int, axis, a, b int) {
	if b-a == 1 && axis+1 < len(p.dims) {
		child := make([]int, len(prefix)+1)
		copy(child, prefix)
		child[len(prefix)] = a
		p.part(child, axis+1, 0, p.dims[axis+1])
		return
	}
	n := (b - a) * p.strideVal[axis]
	mustSplit := n > p.maxLeaf && b-a >= 2
	if !mustSplit {
		mid := (a + b) / 2
		fits := b-a >= 2 && (mid-a)*p.strideVal[axis] >= p.minLeaf && (b-mid)*p.strideVal[axis] >= p.minLeaf
		if !fits || p.uniform(prefix, axis, a, mid, b) {
			p.emit(prefix, axis, a, b)
			return
		}
	}
	mid := (a + b) / 2
	p.splits++
	p.part(prefix, axis, a, mid)
	p.part(prefix, axis, mid, b)
}

// uniform reports whether the halves [a, mid) and [mid, b) have comparable
// statistics. Two measures feed the decision, both O(1) per half via the
// summed-area tables: the plain variance of the half (catches amplitude
// contrast, e.g. a quiet region next to an active one) and its local detail
// — the mean variance inside a handful of small probe cubes — which catches
// smooth-versus-turbulent contrast that global variance misses entirely (a
// normalized smooth ramp and white noise can share one variance while their
// compressibility differs by orders of magnitude). The range splits when
// either measure's ratio across the halves exceeds SplitFactor².
func (p *qplan) uniform(prefix []int, axis, a, mid, b int) bool {
	loL, hiL := p.box(prefix, axis, a, mid)
	loR, hiR := p.box(prefix, axis, mid, b)
	if !comparable(p.boxVariance(loL, hiL), p.boxVariance(loR, hiR), p.factor2, p.varFloor) {
		return false
	}
	return comparable(p.detail(loL, hiL), p.detail(loR, hiR), p.factor2, p.varFloor)
}

// comparable reports whether two non-negative measures are within factor2 of
// each other, with values at or below floor treated as flat.
func comparable(x, y, factor2, floor float64) bool {
	lo, hi := math.Min(x, y), math.Max(x, y)
	if hi <= floor {
		return true
	}
	return hi <= factor2*math.Max(lo, floor)
}

// box materializes the prefix box (prefix fixed, [a, b) on axis, full
// extents after) as table coordinates.
func (p *qplan) box(prefix []int, axis, a, b int) (lo, hi []int) {
	rank := len(p.dims)
	lo = make([]int, rank)
	hi = make([]int, rank)
	for i, c := range prefix {
		lo[i], hi[i] = c, c+1
	}
	lo[axis], hi[axis] = a, b
	for i := axis + 1; i < rank; i++ {
		lo[i], hi[i] = 0, p.dims[i]
	}
	return lo, hi
}

// boxVariance queries the summed-area tables for one box.
func (p *qplan) boxVariance(lo, hi []int) float64 {
	_, v, err := p.it.MeanVar(lo, hi)
	if err != nil {
		// Unreachable for in-range recursion; treat as flat so planning
		// never fails on a box-shape bug.
		return 0
	}
	return v
}

// detailEdge and detailProbes shape the local-detail probe: cubes of up to
// detailEdge elements per axis sampled at up to detailProbes positions per
// axis (start / middle / end of the box).
const (
	detailEdge   = 8
	detailProbes = 3
)

// detail estimates the box's high-frequency energy as the mean variance over
// a deterministic grid of small probe cubes inside it.
func (p *qplan) detail(lo, hi []int) float64 {
	rank := len(p.dims)
	var starts [3][]int
	edge := make([]int, rank)
	for i := 0; i < rank; i++ {
		ext := hi[i] - lo[i]
		e := detailEdge
		if e > ext {
			e = ext
		}
		edge[i] = e
		span := ext - e
		switch {
		case span <= 0:
			starts[i] = []int{lo[i]}
		case detailProbes == 3 && span >= 2:
			starts[i] = []int{lo[i], lo[i] + span/2, lo[i] + span}
		default:
			starts[i] = []int{lo[i], lo[i] + span}
		}
	}
	cubeLo := make([]int, rank)
	cubeHi := make([]int, rank)
	var sum float64
	var n int
	var walk func(axis int)
	walk = func(axis int) {
		if axis == rank {
			sum += p.boxVariance(cubeLo, cubeHi)
			n++
			return
		}
		for _, s := range starts[axis] {
			cubeLo[axis], cubeHi[axis] = s, s+edge[axis]
			walk(axis + 1)
		}
	}
	walk(0)
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// emit records the leaf covering prefix + [a, b) on axis as one region.
func (p *qplan) emit(prefix []int, axis, a, b int) {
	off := 0
	for i, c := range prefix {
		off += c * p.strideVal[i]
	}
	off += a * p.strideVal[axis]
	p.regions = append(p.regions, Region{Off: off, Len: (b - a) * p.strideVal[axis]})
}
