// Package partition is the pluggable chunk-planning layer of the stream
// pipeline: a Partitioner maps an incoming value window to an ordered
// sequence of regions, each carrying its own element range and, optionally,
// a solved absolute error bound and codec ID. The stream writer compresses
// each region as one chunk of the RQCE v2 container — whose per-chunk
// bound/codec-ID records already encode exactly this, so no partitioner can
// ever require a container format change.
//
// Two implementations ship with the package. FixedSlab is the historical
// planner extracted from the stream writer's accumulate-and-ship loop:
// fixed-size linear slabs, byte-identical to the pre-partition-layer writer.
// VarianceQuadtree is the spatially adaptive planner from the ROADMAP's
// "variance-guided region splitting" item: it builds summed-area tables over
// the window (stats.Integral), recursively bisects where variance is
// non-uniform — quadtree/octree-style along the field's axes, O(1) per split
// decision — and solves the ratio-quality model per leaf so smooth regions
// get aggressive bounds while turbulent regions stay tight (Jin et al.,
// ICDE 2022, §V-C applied per region instead of per fixed slab).
//
// Invariants every Partitioner must uphold (and downstream layers may rely
// on): a Plan's regions tile the window exactly — in order, gapless, no
// overlap — and every region is non-empty. Nothing may assume regions share
// one element count: chunk geometry is variable from here down.
package partition

import (
	"errors"
	"fmt"

	"rqm/internal/codec"
	"rqm/internal/core"
	"rqm/internal/grid"
)

// ErrNeedPolicy marks a partitioner that solves per-region bounds being run
// without an AdaptiveBound policy to solve against.
var ErrNeedPolicy = errors.New(
	"partition: per-region bound solving needs an AdaptiveBound policy: install one with WithAdaptive")

// Region is one planned chunk: a contiguous element range of the window.
type Region struct {
	// Off is the region's first element, relative to the window.
	Off int
	// Len is the element count; always positive.
	Len int
	// Bound, when positive, is the solved absolute error bound the region
	// must be compressed at (ABS mode). Zero leaves the writer's configured
	// options — including its own per-chunk adaptive policy — in charge.
	Bound float64
	// CodecID, when non-zero, selects the codec for this region's chunk.
	// Zero uses the stream codec.
	CodecID codec.ID
}

// Plan is the partitioning of one window.
type Plan struct {
	// Regions tile the window in order: gapless, non-overlapping, non-empty.
	Regions []Region
	// Splits counts the split decisions taken while planning (0 for fixed
	// slabs); exported by the serving layer as a partitioning-effort metric.
	Splits int
}

// Validate checks the tiling invariant against the window length n.
func (p Plan) Validate(n int) error {
	off := 0
	for i, r := range p.Regions {
		if r.Off != off || r.Len < 1 {
			return fmt.Errorf("partition: region %d [%d,+%d) breaks the tiling at offset %d",
				i, r.Off, r.Len, off)
		}
		off += r.Len
	}
	if off != n {
		return fmt.Errorf("partition: plan covers %d of %d values", off, n)
	}
	return nil
}

// Env is the stream context a partitioner plans against: the codec and model
// configuration for per-region solving, the declared field geometry, and the
// writer's nominal chunk size.
type Env struct {
	// Codec is the stream's backend codec.
	Codec codec.Codec
	// Copts is the stream's codec configuration.
	Copts codec.Options
	// Mopts tunes the ratio-quality model used for per-region solving.
	Mopts core.Options
	// Policy is the stream's adaptive bound policy (nil when none is set).
	Policy *AdaptiveBound
	// Prec is the stream precision.
	Prec grid.Precision
	// Dims is the declared field shape (nil = unknown, treated as 1-D).
	Dims []int
	// ChunkValues is the writer's nominal chunk size in values.
	ChunkValues int
}

// Partitioner plans the chunk sequence for a stream. Implementations must be
// deterministic: the same window and Env must yield the same Plan, so that
// recompaction can reproduce an archive's geometry from its manifest.
type Partitioner interface {
	// Name is the stable identifier recorded in store manifests.
	Name() string
	// WindowValues is how many values the writer buffers per Partition
	// call. Zero means the whole stream: the writer buffers everything and
	// plans once at Close — the mode spatial partitioners need, at the cost
	// of O(stream) memory instead of O(workers × chunk).
	WindowValues(env Env) int
	// Partition plans the regions for one buffered window.
	Partition(window []float64, env Env) (Plan, error)
}

// FixedSlab is the historical chunk planner: fixed-size linear slabs in
// stream order, one region per window. It is the writer's default and is
// byte-identical to the pre-partition-layer pipeline on every path.
type FixedSlab struct {
	// Values overrides the slab size (0 = the writer's chunk size).
	Values int
}

// FixedSlabName is FixedSlab's manifest identifier.
const FixedSlabName = "fixed"

// Name implements Partitioner.
func (FixedSlab) Name() string { return FixedSlabName }

// WindowValues implements Partitioner: one slab per window.
func (s FixedSlab) WindowValues(env Env) int {
	if s.Values > 0 {
		return s.Values
	}
	return env.ChunkValues
}

// Partition implements Partitioner: the window is the region.
func (s FixedSlab) Partition(window []float64, env Env) (Plan, error) {
	if len(window) == 0 {
		return Plan{}, nil
	}
	return Plan{Regions: []Region{{Off: 0, Len: len(window)}}}, nil
}

// ByName resolves a manifest-recorded partitioner name to a zero-configured
// instance. The store uses it to reproduce an archive's partitioner during
// recompaction.
func ByName(name string) (Partitioner, error) {
	switch name {
	case FixedSlabName, "":
		return FixedSlab{}, nil
	case VarianceQuadtreeName:
		return VarianceQuadtree{}, nil
	}
	return nil, fmt.Errorf("partition: unknown partitioner %q", name)
}

// Known reports whether name identifies a registered partitioner ("" counts
// as FixedSlab). Manifest validation uses it to reject corrupt records.
func Known(name string) bool {
	_, err := ByName(name)
	return err == nil
}
