package h5

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/predictor"
)

// TestParallelChunkingIdenticalOutput verifies the file bytes are invariant
// under the worker count (determinism is part of the format contract).
func TestParallelChunkingIdenticalOutput(t *testing.T) {
	f, err := datagen.GenerateField("hurricane/U", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	write := func(workers int) []byte {
		path := filepath.Join(t.TempDir(), "p.rqh5")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteDataset("U", f, DatasetOptions{
			ChunkDims: []int{4, 30, 30},
			Filter:    FilterLossy,
			Workers:   workers,
			Compressor: compressor.Options{
				Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: (hi - lo) * 1e-3,
			},
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := write(1)
	for _, workers := range []int{2, 4, 16} {
		if got := write(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d produced different bytes (%d vs %d)", workers, len(got), len(serial))
		}
	}
}

// TestParallelChunkingErrorPropagates verifies a failing chunk surfaces an
// error instead of deadlocking or writing a corrupt file.
func TestParallelChunkingErrorPropagates(t *testing.T) {
	f, err := datagen.GenerateField("hurricane/U", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "e.rqh5")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, err = w.WriteDataset("U", f, DatasetOptions{
		ChunkDims: []int{4, 30, 30},
		Filter:    FilterLossy,
		Workers:   8,
		Compressor: compressor.Options{
			Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: 0, // invalid
		},
	})
	if err == nil {
		t.Fatal("invalid chunk compression accepted")
	}
}

// TestParallelRoundTrip checks a multi-worker write still reads back within
// the bound.
func TestParallelRoundTrip(t *testing.T) {
	f, err := datagen.GenerateField("scale/PRES", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	path := filepath.Join(t.TempDir(), "r.rqh5")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteDataset("PRES", f, DatasetOptions{
		ChunkDims: []int{4, 40, 40},
		Filter:    FilterLossy,
		Workers:   4,
		Compressor: compressor.Options{
			Predictor: predictor.Interpolation, Mode: compressor.ABS, ErrorBound: eb,
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := rf.ReadDataset("PRES")
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.VerifyErrorBound(f, got, compressor.ABS, eb); err != nil {
		t.Fatal(err)
	}
}
