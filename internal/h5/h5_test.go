package h5

import (
	"math"
	"path/filepath"
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.rqh5")
}

func TestRawRoundTrip(t *testing.T) {
	for _, prec := range []grid.Precision{grid.Float32, grid.Float64} {
		f := grid.MustNew("raw", prec, 10, 12)
		for i := range f.Data {
			f.Data[i] = float64(i) * 0.125
		}
		path := tmpPath(t)
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.WriteDataset("d", f, DatasetOptions{Filter: FilterNone}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rf, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer rf.Close()
		got, err := rf.ReadDataset("d")
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			if got.Data[i] != f.Data[i] {
				t.Fatalf("prec %v: data[%d] = %v want %v", prec, i, got.Data[i], f.Data[i])
			}
		}
	}
}

func TestChunkedLossyRoundTrip(t *testing.T) {
	f, err := datagen.GenerateField("hurricane/U", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := w.WriteDataset("U", f, DatasetOptions{
		ChunkDims: []int{5, 13, 13},
		Filter:    FilterLossy,
		Compressor: compressor.Options{
			Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: eb,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stored <= 0 || stored >= f.OriginalBytes() {
		t.Fatalf("stored %d bytes of %d original", stored, f.OriginalBytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := rf.ReadDataset("U")
	if err != nil {
		t.Fatal(err)
	}
	if err := compressor.VerifyErrorBound(f, got, compressor.ABS, eb); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleDatasets(t *testing.T) {
	a := grid.MustNew("a", grid.Float32, 16)
	b := grid.MustNew("b", grid.Float64, 4, 4)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	for i := range b.Data {
		b.Data[i] = -float64(i)
	}
	path := tmpPath(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteDataset("a", a, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteDataset("b", b, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	names := rf.Datasets()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("datasets = %v", names)
	}
	gb, err := rf.ReadDataset("b")
	if err != nil {
		t.Fatal(err)
	}
	if gb.Data[15] != -15 {
		t.Fatalf("b[15] = %v", gb.Data[15])
	}
	ga, err := rf.ReadDataset("a")
	if err != nil {
		t.Fatal(err)
	}
	if ga.Data[15] != 15 {
		t.Fatalf("a[15] = %v", ga.Data[15])
	}
}

func TestReadMissingDataset(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	f := grid.MustNew("x", grid.Float32, 4)
	if _, err := w.WriteDataset("x", f, DatasetOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if _, err := rf.ReadDataset("nope"); err == nil {
		t.Fatal("missing dataset accepted")
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f := grid.MustNew("x", grid.Float32, 4)
	if _, err := w.WriteDataset("x", f, DatasetOptions{}); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path)
	w.Close()
	if _, err := Open(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestChunkingPartialEdges(t *testing.T) {
	// 7x5 with 3x3 chunks → edge chunks are partial; reassembly must be
	// exact for the raw filter.
	f := grid.MustNew("p", grid.Float64, 7, 5)
	for i := range f.Data {
		f.Data[i] = math.Sqrt(float64(i))
	}
	path := tmpPath(t)
	w, _ := Create(path)
	if _, err := w.WriteDataset("p", f, DatasetOptions{ChunkDims: []int{3, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := rf.ReadDataset("p")
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatalf("data[%d] = %v want %v", i, got.Data[i], f.Data[i])
		}
	}
}
