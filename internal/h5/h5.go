// Package h5 is a compact stand-in for HDF5's chunked dataset storage with
// dynamically-loaded compression filters (the way H5Z-SZ integrates SZ into
// HDF5). A file holds named datasets; each dataset is split into chunks;
// each chunk independently passes through a filter (none, or the rqm lossy
// compressor), so partial reads only decompress the chunks they touch.
//
// Layout (little-endian):
//
//	superblock: magic "RQH5" | version u8 | datasetCount u32
//	per dataset: header (see writeDatasetHeader) followed by chunk blobs
package h5

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"rqm/internal/compressor"
	"rqm/internal/grid"
)

// FilterKind identifies the chunk filter.
type FilterKind uint8

const (
	// FilterNone stores chunks raw (float64 samples).
	FilterNone FilterKind = iota
	// FilterLossy passes chunks through the prediction-based compressor.
	FilterLossy
)

const (
	fileMagic   = 0x52514835 // "RQH5"
	fileVersion = 1
)

// DatasetOptions controls how a dataset is stored.
type DatasetOptions struct {
	// ChunkDims is the chunk shape (clipped at dataset edges). Zero or
	// mismatched rank means "one chunk for the whole dataset".
	ChunkDims []int
	// Filter selects the chunk filter.
	Filter FilterKind
	// Compressor configures FilterLossy.
	Compressor compressor.Options
	// Workers sets the number of goroutines filtering chunks concurrently
	// (<=1 means serial). Output bytes are identical regardless of Workers.
	Workers int
}

// Writer creates container files.
type Writer struct {
	f     *os.File
	w     *bufio.Writer
	count uint32
	done  bool
}

// Create opens a new container file for writing.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriter(f)}
	// Reserve superblock; count patched on Close.
	if err := binary.Write(w.w, binary.LittleEndian, uint32(fileMagic)); err != nil {
		return nil, err
	}
	if err := w.w.WriteByte(fileVersion); err != nil {
		return nil, err
	}
	if err := binary.Write(w.w, binary.LittleEndian, uint32(0)); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteDataset appends a dataset. Returns the compressed byte count of the
// stored chunks (for I/O accounting).
func (w *Writer) WriteDataset(name string, fld *grid.Field, opts DatasetOptions) (int64, error) {
	if w.done {
		return 0, errors.New("h5: writer closed")
	}
	chunkDims := opts.ChunkDims
	if len(chunkDims) != fld.Rank() {
		chunkDims = fld.Dims
	}
	edge := chunkDims[0] // block splitting uses a single edge per axis below
	_ = edge
	chunks := blocksFor(fld.Dims, chunkDims)
	payloads, err := filterChunks(fld, chunks, opts)
	if err != nil {
		return 0, err
	}
	var stored int64
	for _, p := range payloads {
		stored += int64(len(p))
	}

	// Dataset header.
	le := binary.LittleEndian
	wr := func(v interface{}) error { return binary.Write(w.w, le, v) }
	nameB := []byte(name)
	if err := wr(uint16(len(nameB))); err != nil {
		return 0, err
	}
	if _, err := w.w.Write(nameB); err != nil {
		return 0, err
	}
	if err := wr(uint8(fld.Prec)); err != nil {
		return 0, err
	}
	if err := wr(uint8(fld.Rank())); err != nil {
		return 0, err
	}
	for _, d := range fld.Dims {
		if err := wr(uint64(d)); err != nil {
			return 0, err
		}
	}
	for _, d := range chunkDims {
		if err := wr(uint64(d)); err != nil {
			return 0, err
		}
	}
	if err := wr(uint8(opts.Filter)); err != nil {
		return 0, err
	}
	if err := wr(uint32(len(payloads))); err != nil {
		return 0, err
	}
	for _, p := range payloads {
		if err := wr(uint64(len(p))); err != nil {
			return 0, err
		}
	}
	for _, p := range payloads {
		if _, err := w.w.Write(p); err != nil {
			return 0, err
		}
	}
	w.count++
	return stored, nil
}

// Close flushes data and patches the dataset count into the superblock.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], w.count)
	if _, err := w.f.WriteAt(cnt[:], 5); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// datasetMeta indexes one dataset inside an opened file.
type datasetMeta struct {
	name       string
	prec       grid.Precision
	dims       []int
	chunkDims  []int
	filter     FilterKind
	chunkSizes []int64
	dataOffset int64 // file offset of the first chunk blob
}

// File is an opened container.
type File struct {
	f    *os.File
	sets map[string]*datasetMeta
	list []string
}

// Open reads the directory of an existing container.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	le := binary.LittleEndian
	var magic uint32
	if err := binary.Read(br, le, &magic); err != nil || magic != fileMagic {
		f.Close()
		return nil, errors.New("h5: bad magic")
	}
	version, err := br.ReadByte()
	if err != nil || version != fileVersion {
		f.Close()
		return nil, fmt.Errorf("h5: unsupported version")
	}
	var count uint32
	if err := binary.Read(br, le, &count); err != nil {
		f.Close()
		return nil, err
	}
	out := &File{f: f, sets: make(map[string]*datasetMeta)}
	offset := int64(9)
	for i := uint32(0); i < count; i++ {
		m, next, err := readDatasetMeta(br, offset)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("h5: dataset %d: %w", i, err)
		}
		out.sets[m.name] = m
		out.list = append(out.list, m.name)
		// Skip the chunk payloads in the buffered reader.
		var toSkip int64
		for _, s := range m.chunkSizes {
			toSkip += s
		}
		if _, err := br.Discard(int(toSkip)); err != nil {
			f.Close()
			return nil, err
		}
		offset = next + toSkip
	}
	return out, nil
}

func readDatasetMeta(br *bufio.Reader, offset int64) (*datasetMeta, int64, error) {
	le := binary.LittleEndian
	var nameLen uint16
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, 0, err
	}
	offset += 2
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, 0, err
	}
	offset += int64(nameLen)
	var prec, rank, filter uint8
	if err := binary.Read(br, le, &prec); err != nil {
		return nil, 0, err
	}
	if err := binary.Read(br, le, &rank); err != nil {
		return nil, 0, err
	}
	offset += 2
	if rank < 1 || rank > 4 {
		return nil, 0, fmt.Errorf("bad rank %d", rank)
	}
	dims := make([]int, rank)
	for i := range dims {
		var d uint64
		if err := binary.Read(br, le, &d); err != nil {
			return nil, 0, err
		}
		dims[i] = int(d)
		offset += 8
	}
	chunkDims := make([]int, rank)
	for i := range chunkDims {
		var d uint64
		if err := binary.Read(br, le, &d); err != nil {
			return nil, 0, err
		}
		chunkDims[i] = int(d)
		offset += 8
	}
	if err := binary.Read(br, le, &filter); err != nil {
		return nil, 0, err
	}
	offset++
	var chunkCount uint32
	if err := binary.Read(br, le, &chunkCount); err != nil {
		return nil, 0, err
	}
	offset += 4
	want := len(blocksFor(dims, chunkDims))
	if int(chunkCount) != want {
		return nil, 0, fmt.Errorf("chunk count %d does not match layout (%d)", chunkCount, want)
	}
	sizes := make([]int64, chunkCount)
	for i := range sizes {
		var s uint64
		if err := binary.Read(br, le, &s); err != nil {
			return nil, 0, err
		}
		sizes[i] = int64(s)
		offset += 8
	}
	return &datasetMeta{
		name:       string(name),
		prec:       grid.Precision(prec),
		dims:       dims,
		chunkDims:  chunkDims,
		filter:     FilterKind(filter),
		chunkSizes: sizes,
		dataOffset: offset,
	}, offset, nil
}

// Datasets lists dataset names in file order.
func (f *File) Datasets() []string { return append([]string(nil), f.list...) }

// ReadDataset reassembles a dataset from its chunks.
func (f *File) ReadDataset(name string) (*grid.Field, error) {
	m, ok := f.sets[name]
	if !ok {
		return nil, fmt.Errorf("h5: no dataset %q", name)
	}
	out, err := grid.New(name, m.prec, m.dims...)
	if err != nil {
		return nil, err
	}
	chunks := blocksFor(m.dims, m.chunkDims)
	off := m.dataOffset
	for i, c := range chunks {
		blob := make([]byte, m.chunkSizes[i])
		if _, err := f.f.ReadAt(blob, off); err != nil {
			return nil, err
		}
		off += m.chunkSizes[i]
		var sub *grid.Field
		switch m.filter {
		case FilterNone:
			sub, err = rawDecode(blob, m.prec, c.size)
		case FilterLossy:
			sub, err = compressor.Decompress(blob)
		default:
			err = fmt.Errorf("h5: unknown filter %d", m.filter)
		}
		if err != nil {
			return nil, fmt.Errorf("h5: chunk %d: %w", i, err)
		}
		implant(out, sub, c)
	}
	return out, nil
}

// Close releases the file handle.
func (f *File) Close() error { return f.f.Close() }

// box is an axis-aligned chunk region.
type box struct {
	origin []int
	size   []int
}

func blocksFor(dims, chunkDims []int) []box {
	rank := len(dims)
	counts := make([]int, rank)
	total := 1
	for i := range dims {
		cd := chunkDims[i]
		if cd <= 0 {
			cd = dims[i]
		}
		counts[i] = (dims[i] + cd - 1) / cd
		total *= counts[i]
	}
	out := make([]box, 0, total)
	coord := make([]int, rank)
	for {
		b := box{origin: make([]int, rank), size: make([]int, rank)}
		for i := range coord {
			cd := chunkDims[i]
			if cd <= 0 {
				cd = dims[i]
			}
			b.origin[i] = coord[i] * cd
			sz := cd
			if b.origin[i]+sz > dims[i] {
				sz = dims[i] - b.origin[i]
			}
			b.size[i] = sz
		}
		out = append(out, b)
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < counts[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// extract copies a chunk region into its own field.
func extract(f *grid.Field, b box) *grid.Field {
	sub := grid.MustNew(f.Name, f.Prec, b.size...)
	st := f.Strides()
	rank := f.Rank()
	coord := make([]int, rank)
	idx := 0
	for {
		flat := 0
		for i := range coord {
			flat += (b.origin[i] + coord[i]) * st[i]
		}
		sub.Data[idx] = f.Data[flat]
		idx++
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < b.size[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			return sub
		}
	}
}

// implant writes a chunk field back into the destination region.
func implant(dst, sub *grid.Field, b box) {
	st := dst.Strides()
	rank := dst.Rank()
	coord := make([]int, rank)
	idx := 0
	for {
		flat := 0
		for i := range coord {
			flat += (b.origin[i] + coord[i]) * st[i]
		}
		dst.Data[flat] = sub.Data[idx]
		idx++
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < b.size[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// rawEncode stores a chunk without compression at its original precision.
func rawEncode(f *grid.Field) []byte {
	if f.Prec == grid.Float32 {
		out := make([]byte, 4*len(f.Data))
		for i, v := range f.Data {
			binary.LittleEndian.PutUint32(out[i*4:], floatBits32(v))
		}
		return out
	}
	out := make([]byte, 8*len(f.Data))
	for i, v := range f.Data {
		binary.LittleEndian.PutUint64(out[i*8:], floatBits64(v))
	}
	return out
}

func rawDecode(blob []byte, prec grid.Precision, dims []int) (*grid.Field, error) {
	f, err := grid.New("", prec, dims...)
	if err != nil {
		return nil, err
	}
	if prec == grid.Float32 {
		if len(blob) != 4*f.Len() {
			return nil, errors.New("h5: raw chunk size mismatch")
		}
		for i := range f.Data {
			f.Data[i] = float64(floatFrom32(binary.LittleEndian.Uint32(blob[i*4:])))
		}
		return f, nil
	}
	if len(blob) != 8*f.Len() {
		return nil, errors.New("h5: raw chunk size mismatch")
	}
	for i := range f.Data {
		f.Data[i] = floatFrom64(binary.LittleEndian.Uint64(blob[i*8:]))
	}
	return f, nil
}
