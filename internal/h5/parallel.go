package h5

import (
	"fmt"
	"sync"

	"rqm/internal/compressor"
	"rqm/internal/grid"
)

// filterChunks runs the chunk filter over all chunks, optionally with a
// worker pool. Chunk order in the result matches the chunk layout, so the
// file bytes do not depend on Workers.
func filterChunks(fld *grid.Field, chunks []box, opts DatasetOptions) ([][]byte, error) {
	filterOne := func(c box) ([]byte, error) {
		sub := extract(fld, c)
		switch opts.Filter {
		case FilterNone:
			return rawEncode(sub), nil
		case FilterLossy:
			res, err := compressor.Compress(sub, opts.Compressor)
			if err != nil {
				return nil, fmt.Errorf("h5: chunk filter: %w", err)
			}
			return res.Bytes, nil
		}
		return nil, fmt.Errorf("h5: unknown filter %d", opts.Filter)
	}

	payloads := make([][]byte, len(chunks))
	if opts.Workers <= 1 || len(chunks) == 1 {
		for i, c := range chunks {
			blob, err := filterOne(c)
			if err != nil {
				return nil, err
			}
			payloads[i] = blob
		}
		return payloads, nil
	}

	workers := opts.Workers
	if workers > len(chunks) {
		workers = len(chunks)
	}
	type job struct{ idx int }
	// Buffered so the producer never blocks even if workers exit early on
	// error.
	jobs := make(chan job, len(chunks))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				blob, err := filterOne(chunks[j.idx])
				if err != nil {
					errs[w] = err
					return
				}
				payloads[j.idx] = blob
			}
		}(w)
	}
	for i := range chunks {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// A worker that failed may have left later chunks unprocessed; detect
	// holes defensively.
	for i, p := range payloads {
		if p == nil {
			return nil, fmt.Errorf("h5: chunk %d was not filtered", i)
		}
	}
	return payloads, nil
}
