package h5

import "math"

// floatBits32 narrows to float32 bits (raw storage at original precision).
func floatBits32(v float64) uint32 { return math.Float32bits(float32(v)) }

// floatFrom32 widens float32 bits.
func floatFrom32(b uint32) float32 { return math.Float32frombits(b) }

// floatBits64 returns float64 bits.
func floatBits64(v float64) uint64 { return math.Float64bits(v) }

// floatFrom64 reconstructs a float64.
func floatFrom64(b uint64) float64 { return math.Float64frombits(b) }
