package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rqm/internal/bitio"
)

func roundTrip(t *testing.T, syms []uint32) *Codebook {
	t.Helper()
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(len(syms))
	if err := cb.Encode(w, syms); err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(w.Bytes())
	out := make([]uint32, len(syms))
	if err := cb.Decode(r, out); err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if out[i] != syms[i] {
			t.Fatalf("symbol %d = %d, want %d", i, out[i], syms[i])
		}
	}
	return cb
}

func TestRoundTripSimple(t *testing.T) {
	roundTrip(t, []uint32{1, 1, 1, 2, 2, 3, 7, 7, 7, 7, 7, 7})
}

func TestRoundTripSingleSymbol(t *testing.T) {
	cb := roundTrip(t, []uint32{42, 42, 42, 42})
	if l, ok := cb.CodeLength(42); !ok || l != 1 {
		t.Fatalf("single-symbol code length = %d ok=%v", l, ok)
	}
}

func TestRoundTripTwoSymbols(t *testing.T) {
	roundTrip(t, []uint32{0, 1, 0, 0, 0, 1})
}

func TestRoundTripSkewed(t *testing.T) {
	// Zipf-ish: zero dominates, like SZ quantization codes.
	var syms []uint32
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		r := rng.Float64()
		switch {
		case r < 0.85:
			syms = append(syms, 32768)
		case r < 0.95:
			syms = append(syms, 32769)
		case r < 0.99:
			syms = append(syms, 32767)
		default:
			syms = append(syms, uint32(32700+rng.Intn(140)))
		}
	}
	cb := roundTrip(t, syms)
	// The dominant symbol must get the shortest code.
	lDom, _ := cb.CodeLength(32768)
	lRare, ok := cb.CodeLength(32701)
	if ok && lRare < lDom {
		t.Fatalf("rare symbol shorter than dominant: %d < %d", lRare, lDom)
	}
}

func TestBuildEmptyRejected(t *testing.T) {
	if _, err := Build(map[uint32]int64{}); err == nil {
		t.Fatal("empty frequency map accepted")
	}
	if _, err := Build(map[uint32]int64{5: 0}); err == nil {
		t.Fatal("all-zero frequency map accepted")
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	cb, _ := Build(map[uint32]int64{1: 5, 2: 5})
	w := bitio.NewWriter(0)
	if err := cb.Encode(w, []uint32{3}); err == nil {
		t.Fatal("unknown symbol encoded")
	}
}

func TestMeanBitsNearEntropy(t *testing.T) {
	freqs := map[uint32]int64{0: 900, 1: 50, 2: 50}
	cb, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	mb := cb.MeanBits(freqs)
	// Entropy = -(0.9 log 0.9 + 2*0.05 log 0.05) ≈ 0.569; Huffman is within
	// 1 bit of entropy and at least 1 bit per symbol here.
	if mb < 0.569 || mb > 1.569 {
		t.Fatalf("MeanBits = %v", mb)
	}
}

func TestCodebookSerializeParse(t *testing.T) {
	syms := []uint32{5, 5, 5, 1000, 1000, 70000, 3, 3, 3, 3}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	blob := cb.Serialize()
	cb2, n, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("Parse consumed %d of %d bytes", n, len(blob))
	}
	// Encoding with cb and decoding with cb2 must agree.
	w := bitio.NewWriter(0)
	if err := cb.Encode(w, syms); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(syms))
	if err := cb2.Decode(bitio.NewReader(w.Bytes()), out); err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if out[i] != syms[i] {
			t.Fatalf("parsed codebook decode mismatch at %d", i)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := Parse(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := Parse([]byte{200}); err == nil {
		t.Fatal("truncated varint accepted")
	}
	if _, _, err := Parse([]byte{2, 1}); err == nil {
		t.Fatal("truncated entries accepted")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	syms := []uint32{1, 2, 3, 1, 2, 3, 1, 1, 1}
	cb, _ := Build(FreqsOf(syms))
	w := bitio.NewWriter(0)
	if err := cb.Encode(w, syms); err != nil {
		t.Fatal(err)
	}
	bytes := w.Bytes()
	out := make([]uint32, len(syms)+64) // demand more symbols than encoded
	if err := cb.Decode(bitio.NewReader(bytes), out); err == nil {
		t.Fatal("decoding past end succeeded")
	}
}

func TestLengthLimitedDegenerate(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be clamped.
	freqs := map[uint32]int64{}
	a, b := int64(1), int64(1)
	for i := uint32(0); i < 60; i++ {
		freqs[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			break
		}
	}
	cb, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cb.symbols {
		l, _ := cb.CodeLength(s)
		if l > MaxCodeLen {
			t.Fatalf("symbol %d has length %d > %d", s, l, MaxCodeLen)
		}
	}
	// And the codebook must still round-trip data.
	var syms []uint32
	for s := range freqs {
		syms = append(syms, s, s)
	}
	w := bitio.NewWriter(0)
	if err := cb.Encode(w, syms); err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(syms))
	if err := cb.Decode(bitio.NewReader(w.Bytes()), out); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary random symbol streams round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, lnRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(lnRaw)%500 + 1
		alpha := rng.Intn(30) + 1
		syms := make([]uint32, n)
		for i := range syms {
			// Geometric-ish distribution over a small alphabet.
			v := uint32(0)
			for v < uint32(alpha-1) && rng.Float64() < 0.5 {
				v++
			}
			syms[i] = v * 7
		}
		cb, err := Build(FreqsOf(syms))
		if err != nil {
			return false
		}
		w := bitio.NewWriter(0)
		if err := cb.Encode(w, syms); err != nil {
			return false
		}
		out := make([]uint32, n)
		if err := cb.Decode(bitio.NewReader(w.Bytes()), out); err != nil {
			return false
		}
		for i := range syms {
			if out[i] != syms[i] {
				return false
			}
		}
		// Serialized codebook must reconstruct and agree.
		cb2, _, err := Parse(cb.Serialize())
		if err != nil {
			return false
		}
		out2 := make([]uint32, n)
		if err := cb2.Decode(bitio.NewReader(w.Bytes()), out2); err != nil {
			return false
		}
		for i := range syms {
			if out2[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean code length is within 1 bit of the source entropy
// (Huffman optimality bound), provided entropy >= 1 bit.
func TestQuickNearEntropyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freqs := map[uint32]int64{}
		n := rng.Intn(40) + 2
		var total int64
		for i := 0; i < n; i++ {
			c := int64(rng.Intn(1000) + 1)
			freqs[uint32(i)] = c
			total += c
		}
		cb, err := Build(freqs)
		if err != nil {
			return false
		}
		var entropy float64
		for _, c := range freqs {
			p := float64(c) / float64(total)
			entropy -= p * math.Log2(p)
		}
		mb := cb.MeanBits(freqs)
		return mb >= entropy-1e-9 && mb <= entropy+1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		if rng.Float64() < 0.8 {
			syms[i] = 100
		} else {
			syms[i] = uint32(90 + rng.Intn(20))
		}
	}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		b.Fatal(err)
	}
	out := make([]uint32, len(syms))
	b.SetBytes(int64(len(syms) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := bitio.NewWriter(len(syms) / 2)
		if err := cb.Encode(w, syms); err != nil {
			b.Fatal(err)
		}
		if err := cb.Decode(bitio.NewReader(w.Bytes()), out); err != nil {
			b.Fatal(err)
		}
	}
}
