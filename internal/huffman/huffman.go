package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"rqm/internal/bitio"
)

// MaxCodeLen bounds code lengths; frequencies are flattened until the bound
// holds, which keeps every code within a single bitio read.
const MaxCodeLen = 32

// decodeTableBits bounds the one-shot decode acceleration table: codes up to
// this many bits long resolve with a single table lookup instead of the
// bit-by-bit canonical walk. Quantization codes concentrate around zero, so
// in practice almost every symbol decodes through the table.
const decodeTableBits = 11

// Codebook holds canonical codes for a symbol set.
type Codebook struct {
	// symbols sorted by (length asc, symbol asc) — canonical order.
	symbols []uint32
	lengths []uint8
	codes   []uint32
	// index maps symbol -> position in the canonical arrays.
	index map[uint32]int
	// decoding tables per length: firstCode[l], firstIndex[l], count[l].
	firstCode  [MaxCodeLen + 2]uint32
	firstIndex [MaxCodeLen + 2]int
	countLen   [MaxCodeLen + 2]int
	maxLen     uint8
	// dtab is the one-shot decode table over tabBits-wide prefixes: entry
	// length<<16 | canonical index, 0 = no code of length <= tabBits here.
	// Canonical order puts short codes first and Kraft bounds their count by
	// 1<<tabBits, so the index always fits in 16 bits.
	dtab    []uint32
	tabBits uint
	// maxSym is the largest symbol value (the dense-LUT sizing bound).
	maxSym uint32
}

// hNode is one Huffman tree node in the flat arena treeLengths builds:
// leaves first, internal nodes appended as merges happen. Children are arena
// indices (-1 for leaves), so tree construction makes exactly two
// allocations instead of one per symbol.
type hNode struct {
	freq        int64
	sym         uint32
	left, right int32
}

// Build constructs a canonical codebook from symbol frequencies. Zero-count
// symbols are ignored; at least one positive count is required.
func Build(freqs map[uint32]int64) (*Codebook, error) {
	type sf struct {
		sym  uint32
		freq int64
	}
	items := make([]sf, 0, len(freqs))
	for s, f := range freqs {
		if f > 0 {
			items = append(items, sf{s, f})
		}
	}
	if len(items) == 0 {
		return nil, errors.New("huffman: no symbols with positive frequency")
	}
	slices.SortFunc(items, func(a, b sf) int {
		if a.sym < b.sym {
			return -1
		}
		return 1
	})
	if len(items) == 1 {
		return fromLengths([]uint32{items[0].sym}, []uint8{1})
	}
	work := make([]int64, len(items))
	for i, it := range items {
		work[i] = it.freq
	}
	for {
		lengths := treeLengths(work)
		maxL := uint8(0)
		for _, l := range lengths {
			if l > maxL {
				maxL = l
			}
		}
		if maxL <= MaxCodeLen {
			syms := make([]uint32, len(items))
			for i, it := range items {
				syms[i] = it.sym
			}
			return fromLengths(syms, lengths)
		}
		// Flatten the distribution and retry; converges because lengths
		// shrink toward the balanced-tree depth ceil(log2(n)) <= 32 for any
		// alphabet addressed by uint32 counts of this size.
		for i := range work {
			work[i] = (work[i] + 1) / 2
		}
	}
}

// treeLengths builds a Huffman tree over (freq, sym) and returns code
// lengths per item (indexed like the input). The index heap replicates
// container/heap's sift order exactly (down picks the right child only on a
// strict win), so the tree — and therefore every emitted container — is
// bit-identical to the pointer-heap implementation it replaced.
func treeLengths(freqs []int64) []uint8 {
	n := len(freqs)
	nodes := make([]hNode, n, 2*n-1)
	for i, f := range freqs {
		nodes[i] = hNode{freq: f, sym: uint32(i), left: -1, right: -1}
	}
	h := make([]int32, n, 2*n-1)
	for i := range h {
		h[i] = int32(i)
	}
	less := func(a, b int32) bool {
		if nodes[a].freq != nodes[b].freq {
			return nodes[a].freq < nodes[b].freq
		}
		return nodes[a].sym < nodes[b].sym // deterministic tie-break
	}
	down := func(i0 int) {
		i := i0
		for {
			j1 := 2*i + 1
			if j1 >= len(h) {
				break
			}
			j := j1
			if j2 := j1 + 1; j2 < len(h) && less(h[j2], h[j1]) {
				j = j2
			}
			if !less(h[j], h[i]) {
				break
			}
			h[i], h[j] = h[j], h[i]
			i = j
		}
	}
	up := func(j int) {
		for j > 0 {
			i := (j - 1) / 2
			if !less(h[j], h[i]) {
				break
			}
			h[i], h[j] = h[j], h[i]
			j = i
		}
	}
	pop := func() int32 {
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		x := h[last]
		h = h[:last]
		down(0)
		return x
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(h) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, hNode{freq: nodes[a].freq + nodes[b].freq, sym: nodes[a].sym, left: a, right: b})
		h = append(h, int32(len(nodes)-1))
		up(len(h) - 1)
	}
	root := h[0]
	lengths := make([]uint8, n)
	// Iterative depth assignment over (index, depth) packed into one int64.
	stack := make([]int64, 0, 64)
	stack = append(stack, int64(root)<<8)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd, depth := &nodes[e>>8], uint8(e&0xff)
		if nd.left < 0 {
			if depth == 0 {
				depth = 1 // single-leaf tree
			}
			lengths[nd.sym] = depth
			continue
		}
		stack = append(stack, int64(nd.left)<<8|int64(depth+1), int64(nd.right)<<8|int64(depth+1))
	}
	return lengths
}

// fromLengths assembles the canonical codebook from (symbol, length) pairs.
func fromLengths(syms []uint32, lengths []uint8) (*Codebook, error) {
	n := len(syms)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	slices.SortFunc(ord, func(ia, ib int) int {
		if lengths[ia] != lengths[ib] {
			return int(lengths[ia]) - int(lengths[ib])
		}
		if syms[ia] < syms[ib] {
			return -1
		}
		return 1
	})
	cb := &Codebook{
		symbols: make([]uint32, n),
		lengths: make([]uint8, n),
		codes:   make([]uint32, n),
		index:   make(map[uint32]int, n),
	}
	for i, o := range ord {
		cb.symbols[i] = syms[o]
		cb.lengths[i] = lengths[o]
	}
	var code uint32
	var prevLen uint8
	for i := 0; i < n; i++ {
		l := cb.lengths[i]
		if l == 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		if i == 0 {
			code = 0
		} else {
			code = (code + 1) << (l - prevLen)
		}
		cb.codes[i] = code
		prevLen = l
		if _, dup := cb.index[cb.symbols[i]]; dup {
			return nil, fmt.Errorf("huffman: duplicate symbol %d", cb.symbols[i])
		}
		cb.index[cb.symbols[i]] = i
		// Kraft check: code must fit in l bits.
		if l < 32 && code >= 1<<l {
			return nil, errors.New("huffman: code lengths violate Kraft inequality")
		}
	}
	cb.maxLen = cb.lengths[n-1]
	// Decoding tables.
	for l := uint8(1); l <= cb.maxLen; l++ {
		cb.firstIndex[l] = -1
	}
	for i := 0; i < n; i++ {
		l := cb.lengths[i]
		if cb.firstIndex[l] == -1 {
			cb.firstIndex[l] = i
			cb.firstCode[l] = cb.codes[i]
		}
		cb.countLen[l]++
		if cb.symbols[i] > cb.maxSym {
			cb.maxSym = cb.symbols[i]
		}
	}
	cb.buildDecodeTable()
	return cb, nil
}

// buildDecodeTable fills the one-shot prefix table. Symbols are in canonical
// order (length ascending), so the fill stops at the first code longer than
// tabBits; prefixes not covered keep entry 0 and fall back to the canonical
// walk.
func (cb *Codebook) buildDecodeTable() {
	tb := uint(cb.maxLen)
	if tb > decodeTableBits {
		tb = decodeTableBits
	}
	cb.tabBits = tb
	cb.dtab = make([]uint32, 1<<tb)
	for i, l := range cb.lengths {
		if uint(l) > tb {
			break
		}
		span := uint(1) << (tb - uint(l))
		base := cb.codes[i] << (tb - uint(l))
		e := uint32(l)<<16 | uint32(i)
		for j := uint(0); j < span; j++ {
			cb.dtab[base+uint32(j)] = e
		}
	}
}

// NumSymbols returns the alphabet size.
func (cb *Codebook) NumSymbols() int { return len(cb.symbols) }

// CodeLength returns the code length for sym, or ok=false if absent.
func (cb *Codebook) CodeLength(sym uint32) (uint8, bool) {
	i, ok := cb.index[sym]
	if !ok {
		return 0, false
	}
	return cb.lengths[i], true
}

// MeanBits computes the average code length under the given frequencies.
func (cb *Codebook) MeanBits(freqs map[uint32]int64) float64 {
	var bits, total int64
	for s, f := range freqs {
		if f <= 0 {
			continue
		}
		l, ok := cb.CodeLength(s)
		if !ok {
			continue
		}
		bits += int64(l) * f
		total += f
	}
	if total == 0 {
		return 0
	}
	return float64(bits) / float64(total)
}

// Encode appends the codes for syms to w. Unknown symbols are an error.
func (cb *Codebook) Encode(w *bitio.Writer, syms []uint32) error {
	for _, s := range syms {
		i, ok := cb.index[s]
		if !ok {
			return fmt.Errorf("huffman: symbol %d not in codebook", s)
		}
		w.WriteBits(uint64(cb.codes[i]), uint(cb.lengths[i]))
	}
	return nil
}

// Decode reads len(out) symbols from r using canonical decoding. Codes up to
// decodeTableBits long resolve with one table lookup; longer codes (and the
// padded stream tail, where a table match could otherwise extend into
// zero-padding) fall back to the bit-by-bit canonical walk, which reports
// truncation exactly as before.
func (cb *Codebook) Decode(r *bitio.Reader, out []uint32) error {
	tb := cb.tabBits
	for i := range out {
		if v, avail := r.PeekBits(tb); avail > 0 {
			if e := cb.dtab[v]; e != 0 {
				if l := uint(e >> 16); l <= avail {
					_ = r.Skip(l)
					out[i] = cb.symbols[e&0xffff]
					continue
				}
			}
		}
		var code uint32
		var l uint8
		for {
			b, err := r.ReadBits(1)
			if err != nil {
				return fmt.Errorf("huffman: truncated stream at symbol %d: %w", i, err)
			}
			code = code<<1 | uint32(b)
			l++
			if l > cb.maxLen {
				return fmt.Errorf("huffman: invalid code at symbol %d", i)
			}
			if cb.countLen[l] == 0 {
				continue
			}
			offset := int64(code) - int64(cb.firstCode[l])
			if offset >= 0 && offset < int64(cb.countLen[l]) {
				out[i] = cb.symbols[cb.firstIndex[l]+int(offset)]
				break
			}
		}
	}
	return nil
}

// MaxSymbol returns the largest symbol value in the codebook; a dense encode
// LUT must have at least MaxSymbol()+1 entries.
func (cb *Codebook) MaxSymbol() uint32 { return cb.maxSym }

// FillLUT writes each codebook symbol's packed code (code<<8 | length) into
// lut[sym]. len(lut) must exceed MaxSymbol(). Entries for symbols outside
// the codebook are left untouched, so a pooled scratch slice need not be
// cleared between uses — but see the EncodeLUT contract.
func (cb *Codebook) FillLUT(lut []uint64) {
	for i, s := range cb.symbols {
		lut[s] = uint64(cb.codes[i])<<8 | uint64(cb.lengths[i])
	}
}

// EncodeLUT is Encode through a dense scratch LUT previously filled with
// FillLUT, replacing the per-symbol map lookup with an array index. The
// caller must guarantee every symbol of syms is in the codebook (stale LUT
// entries are not detected); the compressor hot path satisfies this by
// building the codebook from the same symbol stream it encodes.
func (cb *Codebook) EncodeLUT(w *bitio.Writer, syms []uint32, lut []uint64) error {
	for _, s := range syms {
		if int64(s) >= int64(len(lut)) {
			return fmt.Errorf("huffman: symbol %d outside LUT of %d entries", s, len(lut))
		}
		e := lut[s]
		w.WriteBits(e>>8, uint(e&0xff))
	}
	return nil
}

// Serialize emits the codebook: uvarint(count), then per canonical entry a
// uvarint symbol delta (+1 from previous, first is absolute) and a length
// byte. Symbols are re-sorted by value for tight deltas.
func (cb *Codebook) Serialize() []byte {
	n := len(cb.symbols)
	type entry struct {
		sym uint32
		l   uint8
	}
	entries := make([]entry, n)
	for i := range cb.symbols {
		entries[i] = entry{cb.symbols[i], cb.lengths[i]}
	}
	slices.SortFunc(entries, func(a, b entry) int {
		if a.sym < b.sym {
			return -1
		}
		return 1
	})
	buf := make([]byte, 0, n*2+10)
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], uint64(n))
	buf = append(buf, tmp[:k]...)
	prev := int64(-1)
	for _, e := range entries {
		delta := int64(e.sym) - prev
		k := binary.PutUvarint(tmp[:], uint64(delta))
		buf = append(buf, tmp[:k]...)
		buf = append(buf, e.l)
		prev = int64(e.sym)
	}
	return buf
}

// Parse reconstructs a codebook serialized by Serialize, returning the
// number of bytes consumed.
func Parse(data []byte) (*Codebook, int, error) {
	n64, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, 0, errors.New("huffman: bad codebook count")
	}
	if n64 == 0 || n64 > 1<<28 {
		return nil, 0, fmt.Errorf("huffman: unreasonable codebook size %d", n64)
	}
	pos := k
	n := int(n64)
	syms := make([]uint32, n)
	lengths := make([]uint8, n)
	prev := int64(-1)
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, 0, errors.New("huffman: truncated codebook symbol")
		}
		pos += k
		if pos >= len(data) {
			return nil, 0, errors.New("huffman: truncated codebook length")
		}
		sym := prev + int64(d)
		if sym < 0 || sym > int64(^uint32(0)) {
			return nil, 0, errors.New("huffman: symbol out of range")
		}
		syms[i] = uint32(sym)
		lengths[i] = data[pos]
		pos++
		prev = sym
	}
	cb, err := fromLengths(syms, lengths)
	if err != nil {
		return nil, 0, err
	}
	return cb, pos, nil
}

// FreqsOf tallies symbol frequencies of a slice.
func FreqsOf(syms []uint32) map[uint32]int64 {
	m := make(map[uint32]int64)
	for _, s := range syms {
		m[s]++
	}
	return m
}
