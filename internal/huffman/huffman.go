// Package huffman implements a canonical Huffman coder over uint32 symbols,
// as used on SZ quantization codes. The codebook serializes compactly
// (delta-varint symbols + length bytes) and decoding is canonical
// (per-length first-code tables), so the encoder and decoder agree on
// nothing but the serialized lengths.
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"rqm/internal/bitio"
)

// MaxCodeLen bounds code lengths; frequencies are flattened until the bound
// holds, which keeps every code within a single bitio read.
const MaxCodeLen = 32

// Codebook holds canonical codes for a symbol set.
type Codebook struct {
	// symbols sorted by (length asc, symbol asc) — canonical order.
	symbols []uint32
	lengths []uint8
	codes   []uint32
	// index maps symbol -> position in the canonical arrays.
	index map[uint32]int
	// decoding tables per length: firstCode[l], firstIndex[l], count[l].
	firstCode  [MaxCodeLen + 2]uint32
	firstIndex [MaxCodeLen + 2]int
	countLen   [MaxCodeLen + 2]int
	maxLen     uint8
}

type hNode struct {
	freq        int64
	sym         uint32
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical codebook from symbol frequencies. Zero-count
// symbols are ignored; at least one positive count is required.
func Build(freqs map[uint32]int64) (*Codebook, error) {
	type sf struct {
		sym  uint32
		freq int64
	}
	items := make([]sf, 0, len(freqs))
	for s, f := range freqs {
		if f > 0 {
			items = append(items, sf{s, f})
		}
	}
	if len(items) == 0 {
		return nil, errors.New("huffman: no symbols with positive frequency")
	}
	sort.Slice(items, func(i, j int) bool { return items[i].sym < items[j].sym })
	if len(items) == 1 {
		return fromLengths([]uint32{items[0].sym}, []uint8{1})
	}
	work := make([]int64, len(items))
	for i, it := range items {
		work[i] = it.freq
	}
	for {
		lengths := treeLengths(work)
		maxL := uint8(0)
		for _, l := range lengths {
			if l > maxL {
				maxL = l
			}
		}
		if maxL <= MaxCodeLen {
			syms := make([]uint32, len(items))
			for i, it := range items {
				syms[i] = it.sym
			}
			return fromLengths(syms, lengths)
		}
		// Flatten the distribution and retry; converges because lengths
		// shrink toward the balanced-tree depth ceil(log2(n)) <= 32 for any
		// alphabet addressed by uint32 counts of this size.
		for i := range work {
			work[i] = (work[i] + 1) / 2
		}
	}
}

// treeLengths builds a Huffman tree over (freq, sym) and returns code
// lengths per item (indexed like the input).
func treeLengths(freqs []int64) []uint8 {
	n := len(freqs)
	nodes := make(hHeap, 0, n)
	leaves := make([]*hNode, n)
	for i, f := range freqs {
		nd := &hNode{freq: f, sym: uint32(i)}
		leaves[i] = nd
		nodes = append(nodes, nd)
	}
	heap.Init(&nodes)
	for nodes.Len() > 1 {
		a := heap.Pop(&nodes).(*hNode)
		b := heap.Pop(&nodes).(*hNode)
		heap.Push(&nodes, &hNode{freq: a.freq + b.freq, sym: a.sym, left: a, right: b})
	}
	root := nodes[0]
	lengths := make([]uint8, n)
	// Iterative depth assignment.
	type stackEntry struct {
		n     *hNode
		depth uint8
	}
	stack := []stackEntry{{root, 0}}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.n.left == nil && e.n.right == nil {
			d := e.depth
			if d == 0 {
				d = 1 // single-leaf tree
			}
			lengths[e.n.sym] = d
			continue
		}
		stack = append(stack, stackEntry{e.n.left, e.depth + 1}, stackEntry{e.n.right, e.depth + 1})
	}
	return lengths
}

// fromLengths assembles the canonical codebook from (symbol, length) pairs.
func fromLengths(syms []uint32, lengths []uint8) (*Codebook, error) {
	n := len(syms)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if lengths[ia] != lengths[ib] {
			return lengths[ia] < lengths[ib]
		}
		return syms[ia] < syms[ib]
	})
	cb := &Codebook{
		symbols: make([]uint32, n),
		lengths: make([]uint8, n),
		codes:   make([]uint32, n),
		index:   make(map[uint32]int, n),
	}
	for i, o := range ord {
		cb.symbols[i] = syms[o]
		cb.lengths[i] = lengths[o]
	}
	var code uint32
	var prevLen uint8
	for i := 0; i < n; i++ {
		l := cb.lengths[i]
		if l == 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d", l)
		}
		if i == 0 {
			code = 0
		} else {
			code = (code + 1) << (l - prevLen)
		}
		cb.codes[i] = code
		prevLen = l
		if _, dup := cb.index[cb.symbols[i]]; dup {
			return nil, fmt.Errorf("huffman: duplicate symbol %d", cb.symbols[i])
		}
		cb.index[cb.symbols[i]] = i
		// Kraft check: code must fit in l bits.
		if l < 32 && code >= 1<<l {
			return nil, errors.New("huffman: code lengths violate Kraft inequality")
		}
	}
	cb.maxLen = cb.lengths[n-1]
	// Decoding tables.
	for l := uint8(1); l <= cb.maxLen; l++ {
		cb.firstIndex[l] = -1
	}
	for i := 0; i < n; i++ {
		l := cb.lengths[i]
		if cb.firstIndex[l] == -1 {
			cb.firstIndex[l] = i
			cb.firstCode[l] = cb.codes[i]
		}
		cb.countLen[l]++
	}
	return cb, nil
}

// NumSymbols returns the alphabet size.
func (cb *Codebook) NumSymbols() int { return len(cb.symbols) }

// CodeLength returns the code length for sym, or ok=false if absent.
func (cb *Codebook) CodeLength(sym uint32) (uint8, bool) {
	i, ok := cb.index[sym]
	if !ok {
		return 0, false
	}
	return cb.lengths[i], true
}

// MeanBits computes the average code length under the given frequencies.
func (cb *Codebook) MeanBits(freqs map[uint32]int64) float64 {
	var bits, total int64
	for s, f := range freqs {
		if f <= 0 {
			continue
		}
		l, ok := cb.CodeLength(s)
		if !ok {
			continue
		}
		bits += int64(l) * f
		total += f
	}
	if total == 0 {
		return 0
	}
	return float64(bits) / float64(total)
}

// Encode appends the codes for syms to w. Unknown symbols are an error.
func (cb *Codebook) Encode(w *bitio.Writer, syms []uint32) error {
	for _, s := range syms {
		i, ok := cb.index[s]
		if !ok {
			return fmt.Errorf("huffman: symbol %d not in codebook", s)
		}
		w.WriteBits(uint64(cb.codes[i]), uint(cb.lengths[i]))
	}
	return nil
}

// Decode reads len(out) symbols from r using canonical decoding.
func (cb *Codebook) Decode(r *bitio.Reader, out []uint32) error {
	for i := range out {
		var code uint32
		var l uint8
		for {
			b, err := r.ReadBits(1)
			if err != nil {
				return fmt.Errorf("huffman: truncated stream at symbol %d: %w", i, err)
			}
			code = code<<1 | uint32(b)
			l++
			if l > cb.maxLen {
				return fmt.Errorf("huffman: invalid code at symbol %d", i)
			}
			if cb.countLen[l] == 0 {
				continue
			}
			offset := int64(code) - int64(cb.firstCode[l])
			if offset >= 0 && offset < int64(cb.countLen[l]) {
				out[i] = cb.symbols[cb.firstIndex[l]+int(offset)]
				break
			}
		}
	}
	return nil
}

// Serialize emits the codebook: uvarint(count), then per canonical entry a
// uvarint symbol delta (+1 from previous, first is absolute) and a length
// byte. Symbols are re-sorted by value for tight deltas.
func (cb *Codebook) Serialize() []byte {
	n := len(cb.symbols)
	type entry struct {
		sym uint32
		l   uint8
	}
	entries := make([]entry, n)
	for i := range cb.symbols {
		entries[i] = entry{cb.symbols[i], cb.lengths[i]}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].sym < entries[b].sym })
	buf := make([]byte, 0, n*2+10)
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], uint64(n))
	buf = append(buf, tmp[:k]...)
	prev := int64(-1)
	for _, e := range entries {
		delta := int64(e.sym) - prev
		k := binary.PutUvarint(tmp[:], uint64(delta))
		buf = append(buf, tmp[:k]...)
		buf = append(buf, e.l)
		prev = int64(e.sym)
	}
	return buf
}

// Parse reconstructs a codebook serialized by Serialize, returning the
// number of bytes consumed.
func Parse(data []byte) (*Codebook, int, error) {
	n64, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, 0, errors.New("huffman: bad codebook count")
	}
	if n64 == 0 || n64 > 1<<28 {
		return nil, 0, fmt.Errorf("huffman: unreasonable codebook size %d", n64)
	}
	pos := k
	n := int(n64)
	syms := make([]uint32, n)
	lengths := make([]uint8, n)
	prev := int64(-1)
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, 0, errors.New("huffman: truncated codebook symbol")
		}
		pos += k
		if pos >= len(data) {
			return nil, 0, errors.New("huffman: truncated codebook length")
		}
		sym := prev + int64(d)
		if sym < 0 || sym > int64(^uint32(0)) {
			return nil, 0, errors.New("huffman: symbol out of range")
		}
		syms[i] = uint32(sym)
		lengths[i] = data[pos]
		pos++
		prev = sym
	}
	cb, err := fromLengths(syms, lengths)
	if err != nil {
		return nil, 0, err
	}
	return cb, pos, nil
}

// FreqsOf tallies symbol frequencies of a slice.
func FreqsOf(syms []uint32) map[uint32]int64 {
	m := make(map[uint32]int64)
	for _, s := range syms {
		m[s]++
	}
	return m
}
