// Package huffman implements a canonical Huffman coder over uint32 symbols,
// as used on SZ quantization codes, in two stream shapes: the classic
// serial single-stream coder and an interleaved multi-stream variant that
// trades nothing in ratio for a large decode-throughput win.
//
// # Canonical form
//
// The codebook serializes compactly (delta-varint symbols + length bytes)
// and decoding is canonical (per-length first-code tables), so the encoder
// and decoder agree on nothing but the serialized lengths. Codes are
// written MSB-first through bitio, which makes canonical prefixes sort
// lexicographically in the stream; codes are at most MaxCodeLen (32) bits.
// Decoders are table-driven: a one-shot prefix table `decodeTableBits`
// wide resolves codes up to 11 bits in a single lookup, longer codes fall
// back to the per-length canonical walk.
//
// # Stream-interleave order
//
// EncodeInterleaved splits the symbol sequence round-robin across k
// streams sharing ONE codebook: symbol i goes to stream i%k, in input
// order within each stream. DecodeInterleaved reproduces exactly that
// order — out[i] is the next undecoded symbol of stream i%k — so the
// interleave is fully determined by (n, k) and carries no index side
// channel. Stream s holds InterleavedLen(n, k, s) symbols.
//
// # Padding rules
//
// Every stream — serial or interleaved — is independently zero-padded to a
// whole byte (bitio.Writer.Bytes). Interleaved streams are framed
// externally (the compressor stores k uint32 byte lengths); inside a
// stream the decoder may only accept a table match in the padded tail when
// the matched code length fits in the real bits that remain, per the
// bitio.PeekBits contract. Truncated or corrupt streams surface typed
// errors (wrapping bitio.ErrUnexpectedEOF, or "invalid code" past
// MaxCodeLen); decoders never panic and never read out of bounds.
package huffman
