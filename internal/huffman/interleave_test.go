package huffman

import (
	"errors"
	"math/rand"
	"testing"

	"rqm/internal/bitio"
)

func encodeStreams(t *testing.T, cb *Codebook, syms []uint32, k int) [][]byte {
	t.Helper()
	ws := make([]*bitio.Writer, k)
	for i := range ws {
		ws[i] = bitio.NewWriter(0)
	}
	streams, err := cb.EncodeInterleaved(syms, k, nil, ws)
	if err != nil {
		t.Fatalf("EncodeInterleaved: %v", err)
	}
	return streams
}

func TestInterleavedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		for _, n := range []int{1, 2, 3, k - 1, k, k + 1, 257, 10000} {
			if n < 1 {
				continue
			}
			syms := make([]uint32, n)
			for i := range syms {
				// Geometric-ish distribution like quantization codes.
				v := uint32(0)
				for v < 40 && rng.Intn(3) != 0 {
					v++
				}
				syms[i] = 32768 + v - 20
			}
			cb, err := Build(FreqsOf(syms))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			streams := encodeStreams(t, cb, syms, k)
			if len(streams) != k {
				t.Fatalf("k=%d: got %d streams", k, len(streams))
			}
			out := make([]uint32, n)
			if err := cb.DecodeInterleaved(streams, out); err != nil {
				t.Fatalf("k=%d n=%d: DecodeInterleaved: %v", k, n, err)
			}
			for i := range out {
				if out[i] != syms[i] {
					t.Fatalf("k=%d n=%d: symbol %d decoded %d, want %d", k, n, i, out[i], syms[i])
				}
			}
		}
	}
}

func TestInterleavedMatchesSerialPerStream(t *testing.T) {
	// Stream s of an interleaved encode must be the plain serial encode of
	// the symbols at indices ≡ s (mod k): interleaving is pure round-robin.
	syms := []uint32{5, 1, 1, 2, 5, 1, 0, 0, 1, 2, 3}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	streams := encodeStreams(t, cb, syms, k)
	for s := 0; s < k; s++ {
		var sub []uint32
		for i := s; i < len(syms); i += k {
			sub = append(sub, syms[i])
		}
		if got, want := len(sub), InterleavedLen(len(syms), k, s); got != want {
			t.Fatalf("stream %d: InterleavedLen says %d, actual %d", s, want, got)
		}
		w := bitio.NewWriter(0)
		if err := cb.Encode(w, sub); err != nil {
			t.Fatal(err)
		}
		want := w.Bytes()
		if string(streams[s]) != string(want) {
			t.Fatalf("stream %d bytes differ from serial encode of its symbols", s)
		}
	}
}

func TestInterleavedSingleSymbolAlphabet(t *testing.T) {
	syms := make([]uint32, 100)
	for i := range syms {
		syms[i] = 9
	}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	streams := encodeStreams(t, cb, syms, 4)
	out := make([]uint32, len(syms))
	if err := cb.DecodeInterleaved(streams, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != 9 {
			t.Fatalf("symbol %d: got %d", i, out[i])
		}
	}
}

func TestInterleavedLongCodes(t *testing.T) {
	// Exponential frequencies force codes past the decode-table width so the
	// slow canonical walk runs inside the interleaved decoder.
	freqs := map[uint32]int64{}
	f := int64(1)
	for s := uint32(0); s < 20; s++ {
		freqs[s] = f
		f *= 2
	}
	cb, err := Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.maxLen <= uint8(cb.tabBits) {
		t.Fatalf("want codes longer than table width %d, max len %d", cb.tabBits, cb.maxLen)
	}
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(20))
	}
	streams := encodeStreams(t, cb, syms, 4)
	out := make([]uint32, len(syms))
	if err := cb.DecodeInterleaved(streams, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, out[i], syms[i])
		}
	}
}

func TestInterleavedTruncatedStream(t *testing.T) {
	syms := make([]uint32, 1000)
	rng := rand.New(rand.NewSource(11))
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	streams := encodeStreams(t, cb, syms, 4)
	streams[2] = streams[2][:len(streams[2])/4] // truncate one stream
	out := make([]uint32, len(syms))
	err = cb.DecodeInterleaved(streams, out)
	if err == nil {
		t.Fatal("want error on truncated stream, got nil")
	}
	if !errors.Is(err, bitio.ErrUnexpectedEOF) {
		// An early-terminating garbage decode is also acceptable, but the
		// common truncation shape must surface the typed EOF.
		t.Logf("truncation surfaced as: %v", err)
	}
}

func TestInterleavedBadStreamCount(t *testing.T) {
	syms := []uint32{1, 2, 3}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.EncodeInterleaved(syms, 0, nil, nil); !errors.Is(err, ErrBadStreamCount) {
		t.Fatalf("k=0: got %v", err)
	}
	if _, err := cb.EncodeInterleaved(syms, MaxStreams+1, nil, nil); !errors.Is(err, ErrBadStreamCount) {
		t.Fatalf("k=17: got %v", err)
	}
	if err := cb.DecodeInterleaved(make([][]byte, MaxStreams+1), make([]uint32, 1)); !errors.Is(err, ErrBadStreamCount) {
		t.Fatalf("decode k=17: got %v", err)
	}
}

func TestInterleavedLUTMatchesMapEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(rng.Intn(100))
	}
	cb, err := Build(FreqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	lut := make([]uint64, cb.MaxSymbol()+1)
	cb.FillLUT(lut)
	ws := make([]*bitio.Writer, 4)
	for i := range ws {
		ws[i] = bitio.NewWriter(0)
	}
	viaLUT, err := cb.EncodeInterleaved(syms, 4, lut, ws)
	if err != nil {
		t.Fatal(err)
	}
	viaMap := encodeStreams(t, cb, syms, 4)
	for s := range viaMap {
		if string(viaLUT[s]) != string(viaMap[s]) {
			t.Fatalf("stream %d: LUT and map encodes differ", s)
		}
	}
}
