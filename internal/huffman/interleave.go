package huffman

import (
	"errors"
	"fmt"

	"rqm/internal/bitio"
)

// Interleaved multi-stream coding: the symbol sequence is split round-robin
// across K independent bitstreams (symbol i goes to stream i%K), all encoded
// with ONE shared canonical codebook. Decoding keeps K independent bit-reader
// states live in a single loop, so the CPU overlaps the serial
// bit-extraction dependency chains of all K streams — the standard trick
// behind FSE/Huff0-style coders. Ratio cost is only the per-stream byte
// padding (≤ K-1 bytes per chunk); decode throughput gain is the point.

// DefaultStreams is the stream count the compressor uses for interleaved
// entropy coding. Four streams saturate the ILP win on current cores while
// keeping the per-chunk padding overhead negligible.
const DefaultStreams = 4

// MaxStreams bounds the stream count accepted by EncodeInterleaved and
// DecodeInterleaved; the decoder keeps all states on the stack.
const MaxStreams = 16

// ErrBadStreamCount marks an interleave stream count outside 1..MaxStreams.
var ErrBadStreamCount = errors.New("huffman: stream count outside 1..16")

// InterleavedLen returns the number of symbols stream s carries when n
// symbols are split round-robin across k streams: the count of indices
// i in [0, n) with i%k == s.
func InterleavedLen(n, k, s int) int {
	if s >= n {
		return 0
	}
	return (n - s + k - 1) / k
}

// EncodeInterleaved encodes syms round-robin into k streams sharing this
// codebook, appending through the provided writers (ws[i] must be Reset by
// the caller; len(ws) >= k). lut is an optional dense encode LUT previously
// filled with FillLUT (nil = map lookups). Returns one byte slice per
// stream, each zero-padded to a whole byte; the slices alias the writers'
// internal buffers.
func (cb *Codebook) EncodeInterleaved(syms []uint32, k int, lut []uint64, ws []*bitio.Writer) ([][]byte, error) {
	if k < 1 || k > MaxStreams {
		return nil, fmt.Errorf("%w: %d", ErrBadStreamCount, k)
	}
	if len(ws) < k {
		return nil, fmt.Errorf("huffman: %d writers for %d streams", len(ws), k)
	}
	if lut != nil {
		for i, s := range syms {
			if int64(s) >= int64(len(lut)) {
				return nil, fmt.Errorf("huffman: symbol %d outside LUT of %d entries", s, len(lut))
			}
			e := lut[s]
			ws[i%k].WriteBits(e>>8, uint(e&0xff))
		}
	} else {
		for i, s := range syms {
			j, ok := cb.index[s]
			if !ok {
				return nil, fmt.Errorf("huffman: symbol %d not in codebook", s)
			}
			ws[i%k].WriteBits(uint64(cb.codes[j]), uint(cb.lengths[j]))
		}
	}
	out := make([][]byte, k)
	for s := 0; s < k; s++ {
		out[s] = ws[s].Bytes()
	}
	return out, nil
}

// ilvState is one stream's inline bit-reader state: a 64-bit MSB-aligned
// accumulator refilled bytewise from the stream buffer. Keeping the state
// flat (no methods on hot fields, no interface) lets the decode loop below
// run K independent dependency chains without per-symbol call overhead.
type ilvState struct {
	buf []byte
	pos int
	acc uint64
	n   uint
}

// refill tops the accumulator up to >= 56 valid bits or the end of buf.
func (st *ilvState) refill() {
	for st.n <= 56 && st.pos < len(st.buf) {
		st.acc = st.acc<<8 | uint64(st.buf[st.pos])
		st.pos++
		st.n += 8
	}
}

// DecodeInterleaved reads len(out) symbols from k round-robin streams
// encoded with EncodeInterleaved against this codebook. out[i] comes from
// streams[i%k]. Codes up to the table width resolve with one lookup; longer
// codes fall back to the canonical walk. Truncated or corrupt streams
// return a typed error — the decoder never reads past a stream's buffer and
// never panics.
//
// The DefaultStreams case runs a specialized loop that keeps all four
// reader states in registers, refills 32 bits at a time, and decodes two
// rounds (eight symbols) per iteration, so the four bit-extraction
// dependency chains overlap; it hands off to the generic loop for stream
// tails and table-overflow codes.
func (cb *Codebook) DecodeInterleaved(streams [][]byte, out []uint32) error {
	k := len(streams)
	if k < 1 || k > MaxStreams {
		return fmt.Errorf("%w: %d", ErrBadStreamCount, k)
	}
	var sts [MaxStreams]ilvState
	for s := 0; s < k; s++ {
		sts[s].buf = streams[s]
	}
	n := len(out)
	if k != 4 {
		return cb.decodeIlvRange(&sts, out, 0, n, k)
	}
	i := 0
	for i < n {
		i = cb.decodeIlv4(&sts, out, i)
		if i >= n {
			return nil
		}
		// The fast loop stopped on a long code or a buffer tail: clear one
		// full round generically (guaranteed progress), then retry it.
		stop := i + 4
		if stop > n {
			stop = n
		}
		if err := cb.decodeIlvRange(&sts, out, i, stop, 4); err != nil {
			return err
		}
		i = stop
	}
	return nil
}

// decodeIlv4 is the four-stream fast loop. Starting at symbol index start
// (a multiple of 4, so it begins on stream 0), it decodes only while every
// stream can word-refill and every code resolves in the one-shot table,
// returning the index of the first undecoded symbol (again a multiple of
// 4). It never consumes bits past that index.
func (cb *Codebook) decodeIlv4(sts *[MaxStreams]ilvState, out []uint32, start int) int {
	tb := cb.tabBits
	dtab := cb.dtab
	symbols := cb.symbols
	mask := uint32(1)<<tb - 1
	b0, b1, b2, b3 := sts[0].buf, sts[1].buf, sts[2].buf, sts[3].buf
	a0, a1, a2, a3 := sts[0].acc, sts[1].acc, sts[2].acc, sts[3].acc
	n0, n1, n2, n3 := sts[0].n, sts[1].n, sts[2].n, sts[3].n
	p0, p1, p2, p3 := sts[0].pos, sts[1].pos, sts[2].pos, sts[3].pos
	i, N := start, len(out)
	for i+8 <= N {
		// Refill each accumulator to >= 32 bits with one big-endian word
		// load; near a buffer end, fall back to the generic bytewise loop.
		if n0 < 32 {
			if p0+4 > len(b0) {
				break
			}
			a0 = a0<<32 | uint64(uint32(b0[p0])<<24|uint32(b0[p0+1])<<16|uint32(b0[p0+2])<<8|uint32(b0[p0+3]))
			p0 += 4
			n0 += 32
		}
		if n1 < 32 {
			if p1+4 > len(b1) {
				break
			}
			a1 = a1<<32 | uint64(uint32(b1[p1])<<24|uint32(b1[p1+1])<<16|uint32(b1[p1+2])<<8|uint32(b1[p1+3]))
			p1 += 4
			n1 += 32
		}
		if n2 < 32 {
			if p2+4 > len(b2) {
				break
			}
			a2 = a2<<32 | uint64(uint32(b2[p2])<<24|uint32(b2[p2+1])<<16|uint32(b2[p2+2])<<8|uint32(b2[p2+3]))
			p2 += 4
			n2 += 32
		}
		if n3 < 32 {
			if p3+4 > len(b3) {
				break
			}
			a3 = a3<<32 | uint64(uint32(b3[p3])<<24|uint32(b3[p3+1])<<16|uint32(b3[p3+2])<<8|uint32(b3[p3+3]))
			p3 += 4
			n3 += 32
		}
		// Round A: peek all four streams, then commit only if every code
		// resolved (a zero entry means a code longer than the table — rare;
		// the generic loop's canonical walk takes over with no bits lost).
		e0 := dtab[uint32(a0>>(n0-tb))&mask]
		e1 := dtab[uint32(a1>>(n1-tb))&mask]
		e2 := dtab[uint32(a2>>(n2-tb))&mask]
		e3 := dtab[uint32(a3>>(n3-tb))&mask]
		if e0 == 0 || e1 == 0 || e2 == 0 || e3 == 0 {
			break
		}
		n0 -= uint(e0 >> 16)
		n1 -= uint(e1 >> 16)
		n2 -= uint(e2 >> 16)
		n3 -= uint(e3 >> 16)
		out[i] = symbols[e0&0xffff]
		out[i+1] = symbols[e1&0xffff]
		out[i+2] = symbols[e2&0xffff]
		out[i+3] = symbols[e3&0xffff]
		i += 4
		// Round B: after consuming <= tb bits each accumulator still holds
		// >= 32-tb >= tb bits (tb <= 11), so a second decode needs no refill
		// check.
		e0 = dtab[uint32(a0>>(n0-tb))&mask]
		e1 = dtab[uint32(a1>>(n1-tb))&mask]
		e2 = dtab[uint32(a2>>(n2-tb))&mask]
		e3 = dtab[uint32(a3>>(n3-tb))&mask]
		if e0 == 0 || e1 == 0 || e2 == 0 || e3 == 0 {
			break
		}
		n0 -= uint(e0 >> 16)
		n1 -= uint(e1 >> 16)
		n2 -= uint(e2 >> 16)
		n3 -= uint(e3 >> 16)
		out[i] = symbols[e0&0xffff]
		out[i+1] = symbols[e1&0xffff]
		out[i+2] = symbols[e2&0xffff]
		out[i+3] = symbols[e3&0xffff]
		i += 4
	}
	sts[0] = ilvState{buf: b0, pos: p0, acc: a0, n: n0}
	sts[1] = ilvState{buf: b1, pos: p1, acc: a1, n: n1}
	sts[2] = ilvState{buf: b2, pos: p2, acc: a2, n: n2}
	sts[3] = ilvState{buf: b3, pos: p3, acc: a3, n: n3}
	return i
}

// decodeIlvRange is the any-k, any-code-length loop over out[start:stop];
// the fast path defers to it for stream tails, long codes, and stream
// counts other than 4.
func (cb *Codebook) decodeIlvRange(sts *[MaxStreams]ilvState, out []uint32, start, stop, k int) error {
	tb := cb.tabBits
	dtab := cb.dtab
	symbols := cb.symbols
	for i := start; i < stop; i++ {
		st := &sts[i%k]
		if st.n < 32 {
			st.refill()
		}
		if st.n >= tb {
			if e := dtab[uint32(st.acc>>(st.n-tb))&((1<<tb)-1)]; e != 0 {
				st.n -= uint(e >> 16)
				out[i] = symbols[e&0xffff]
				continue
			}
		} else if st.n > 0 {
			// Tail: peek with zero padding; a table hit is valid only when
			// the matched code fits in the real bits that remain.
			if e := dtab[uint32(st.acc<<(tb-st.n))&((1<<tb)-1)]; e != 0 {
				if l := uint(e >> 16); l <= st.n {
					st.n -= l
					out[i] = symbols[e&0xffff]
					continue
				}
			}
		}
		// Slow path: codes longer than the table (or a short tail).
		sym, err := cb.decodeSlow(st, i)
		if err != nil {
			return err
		}
		out[i] = sym
	}
	return nil
}

// decodeSlow is the bit-by-bit canonical walk over one stream state, used
// for codes longer than the decode table and for the padded stream tail.
func (cb *Codebook) decodeSlow(st *ilvState, i int) (uint32, error) {
	var code uint32
	var l uint8
	for {
		if st.n == 0 {
			st.refill()
			if st.n == 0 {
				return 0, fmt.Errorf("huffman: truncated stream at symbol %d: %w", i, bitio.ErrUnexpectedEOF)
			}
		}
		st.n--
		code = code<<1 | uint32(st.acc>>st.n&1)
		l++
		if l > cb.maxLen {
			return 0, fmt.Errorf("huffman: invalid code at symbol %d", i)
		}
		if cb.countLen[l] == 0 {
			continue
		}
		offset := int64(code) - int64(cb.firstCode[l])
		if offset >= 0 && offset < int64(cb.countLen[l]) {
			return cb.symbols[cb.firstIndex[l]+int(offset)], nil
		}
	}
}
