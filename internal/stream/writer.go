package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/grid"
	"rqm/internal/partition"
)

// Stats summarizes one finished stream write.
type Stats struct {
	// Chunks is the number of chunk records emitted.
	Chunks int
	// Values is the total sample count.
	Values int64
	// BytesIn is the input size at the stream's precision.
	BytesIn int64
	// BytesOut is the container size including header, trailer, and footer.
	BytesOut int64
	// Ratio is BytesIn over BytesOut.
	Ratio float64
	// MinBound and MaxBound are the smallest and largest per-chunk absolute
	// bounds used (equal unless an AdaptiveBound policy varied them).
	MinBound, MaxBound float64
	// Splits is the number of split decisions the partitioner took while
	// planning chunks (0 under fixed slabs).
	Splits int
	// EncodeTime is the wall time from NewWriter to Close.
	EncodeTime time.Duration
}

// Writer compresses a value stream into a chunked container through a
// bounded worker pipeline: Write/WriteValues accumulate a planning window,
// the partitioner maps each window to one or more regions, regions fan out
// to the worker pool as chunks, and a sequencer writes the compressed
// records back in input order. Under the default fixed-slab partitioner a
// window is one chunk, at most workers+2 chunks are in flight, and memory
// stays O(workers × chunk size) however long the stream runs; whole-stream
// partitioners (WindowValues 0, e.g. the variance quadtree) buffer the
// stream and plan once at Close, trading that bound for O(stream) memory.
//
// A Writer is single-producer: Write, WriteValues, and Close must come from
// one goroutine (the compression fan-out happens internally). Close flushes
// the final partial window and appends the trailer index; the container is
// unreadable until Close returns nil.
type Writer struct {
	cfg          *config
	env          partition.Env
	windowValues int // partitioner window (0 = whole stream, planned at Close)
	dst          *countWriter
	start        time.Time

	buf     []float64 // accumulating window (incremental mode)
	all     []float64 // accumulating stream (whole-stream mode)
	rem     []byte    // partial value carried between Write calls
	splits  int       // split decisions across all plans (producer-owned)
	bufPool sync.Pool // recycled chunk buffers ([]float64 with window capacity)

	order chan chan result // per-chunk result slots, in input order
	jobs  chan job

	workerWG sync.WaitGroup
	seqDone  chan struct{}

	mu       sync.Mutex
	firstErr error

	// sequencer-owned until seqDone closes
	entries     []codec.IndexEntry
	totalValues int64
	minBound    float64
	maxBound    float64

	closed bool
	stats  Stats
}

type job struct {
	vals    []float64
	bound   float64  // partitioner-solved ABS bound (0 = writer options)
	codecID codec.ID // partitioner-selected codec (0 = stream codec)
	recycle bool     // vals is a whole pool buffer, return it after use
	res     chan result
}

type result struct {
	chunk *codec.Chunk
	err   error
}

// NewWriter starts a streaming compressor over w. The stream header is
// written immediately; the caller must Close to finalize the container.
func NewWriter(w io.Writer, opts ...Option) (*Writer, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	env := cfg.env()
	windowValues := cfg.partitioner.WindowValues(env)
	if windowValues < 0 {
		return nil, fmt.Errorf("stream: partitioner %q window %d is negative",
			cfg.partitioner.Name(), windowValues)
	}
	sw := &Writer{
		cfg:          cfg,
		env:          env,
		windowValues: windowValues,
		dst:          &countWriter{w: w},
		start:        time.Now(),
		order:        make(chan chan result, cfg.workers+2),
		jobs:         make(chan job, cfg.workers),
		seqDone:      make(chan struct{}),
	}
	if windowValues > 0 {
		sw.buf = make([]float64, 0, windowValues)
	}
	sw.bufPool.New = func() interface{} {
		b := make([]float64, 0, windowValues)
		return &b
	}
	// The header's chunk size stays nominal: the partitioner may emit
	// smaller or unequal chunks (each record carries its own count), but the
	// configured size is what readers can size buffers against.
	nominal := cfg.chunkValues
	if windowValues > 0 {
		nominal = windowValues
	}
	hdr := &codec.StreamHeader{
		CodecID:     cfg.codec.ID(),
		Prec:        cfg.prec,
		Dims:        cfg.dims,
		Name:        cfg.name,
		ChunkValues: nominal,
	}
	if _, err := codec.WriteStreamHeader(sw.dst, hdr); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.workers; i++ {
		sw.workerWG.Add(1)
		go sw.worker()
	}
	go sw.sequencer()
	return sw, nil
}

// WriteValues appends samples to the stream, dispatching full planning
// windows to the compression pool. It blocks while the pipeline is
// saturated. Under a whole-stream partitioner nothing is dispatched until
// Close, which plans and compresses the buffered stream in one pass.
func (w *Writer) WriteValues(vals []float64) error {
	if w.closed {
		return ErrClosed
	}
	if w.windowValues == 0 {
		if err := w.err(); err != nil {
			return err
		}
		w.all = append(w.all, vals...)
		return nil
	}
	for len(vals) > 0 {
		if err := w.err(); err != nil {
			return err
		}
		n := w.windowValues - len(w.buf)
		if n > len(vals) {
			n = len(vals)
		}
		w.buf = append(w.buf, vals[:n]...)
		vals = vals[n:]
		if len(w.buf) == w.windowValues {
			w.planWindow()
		}
	}
	return w.err()
}

// Write appends raw little-endian samples in the stream's precision
// (float32 or float64 per WithShape), making the Writer an io.Writer a raw
// sample file can be piped into. Partial values are carried across calls.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrClosed
	}
	total := len(p)
	width := w.cfg.prec.Bits() / 8
	if len(w.rem) > 0 {
		need := width - len(w.rem)
		if need > len(p) {
			w.rem = append(w.rem, p...)
			return total, nil
		}
		w.rem = append(w.rem, p[:need]...)
		p = p[need:]
		if err := w.WriteValues([]float64{w.decodeValue(w.rem)}); err != nil {
			return total - len(p), err
		}
		w.rem = w.rem[:0]
	}
	if full := len(p) / width; full > 0 {
		vals := make([]float64, full)
		for i := range vals {
			vals[i] = w.decodeValue(p[i*width : (i+1)*width])
		}
		if err := w.WriteValues(vals); err != nil {
			return total - len(p), err
		}
		p = p[full*width:]
	}
	if len(p) > 0 {
		w.rem = append(w.rem, p...)
	}
	return total, nil
}

// decodeValue converts one raw sample at the stream precision.
func (w *Writer) decodeValue(b []byte) float64 {
	if w.cfg.prec == grid.Float32 {
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// WriteField streams a whole field's samples.
func (w *Writer) WriteField(f *grid.Field) error {
	if f == nil {
		return fmt.Errorf("stream: nil field")
	}
	return w.WriteValues(f.Data)
}

// planWindow runs the partitioner over the accumulated window and dispatches
// its regions. The common case — one region covering the whole window, which
// is all FixedSlab ever plans — ships the accumulation buffer itself and
// recycles it through bufPool, exactly the historical fast path. Multi-region
// plans dispatch sub-slices of the window without recycling (the regions
// alias one buffer, so it goes to the collector once all chunks are done).
func (w *Writer) planWindow() {
	plan, err := w.cfg.partitioner.Partition(w.buf, w.env)
	if err == nil {
		err = plan.Validate(len(w.buf))
	}
	if err != nil {
		w.fail(err)
		return
	}
	w.splits += plan.Splits
	if len(plan.Regions) == 1 {
		r := plan.Regions[0]
		vals := w.buf
		w.buf = (*w.bufPool.Get().(*[]float64))[:0]
		w.dispatch(vals, r.Bound, r.CodecID, true)
		return
	}
	window := w.buf
	w.buf = (*w.bufPool.Get().(*[]float64))[:0]
	for _, r := range plan.Regions {
		w.dispatch(window[r.Off:r.Off+r.Len], r.Bound, r.CodecID, false)
	}
}

// planStream partitions the fully buffered stream (whole-stream mode) and
// dispatches every region. Regions alias the stream buffer, so none recycle;
// the order channel still bounds how many compressed chunks are in flight.
func (w *Writer) planStream() {
	plan, err := w.cfg.partitioner.Partition(w.all, w.env)
	if err == nil {
		err = plan.Validate(len(w.all))
	}
	if err != nil {
		w.fail(err)
		return
	}
	w.splits += plan.Splits
	for _, r := range plan.Regions {
		if w.err() != nil {
			return
		}
		w.dispatch(w.all[r.Off:r.Off+r.Len], r.Bound, r.CodecID, false)
	}
}

// dispatch hands one region to the pool. The order channel's capacity is the
// pipeline's chunk-in-flight budget, so this blocks (and back-pressures the
// producer) when the pool is saturated. Whole-buffer regions are recycled:
// the producer draws the next accumulation buffer from bufPool and workers
// return finished buffers to it, so a steady-state stream reuses the same
// workers+2 buffers however long it runs.
func (w *Writer) dispatch(vals []float64, bound float64, id codec.ID, recycle bool) {
	res := make(chan result, 1)
	w.order <- res
	w.jobs <- job{vals: vals, bound: bound, codecID: id, recycle: recycle, res: res}
}

// worker compresses chunks until the job channel closes.
func (w *Writer) worker() {
	defer w.workerWG.Done()
	for j := range w.jobs {
		if w.err() != nil {
			j.res <- result{err: w.err()}
			continue
		}
		c, err := w.compressChunk(j)
		if j.recycle {
			// The compressor copies the chunk into its own work buffer and
			// the payload never aliases vals, so the buffer can be recycled
			// now. Sub-window regions skip this: they alias a shared window.
			vals := j.vals[:0]
			w.bufPool.Put(&vals)
		}
		j.res <- result{chunk: c, err: err}
	}
}

// compressChunk encodes one region as a 1-D field. A partitioner-solved
// bound wins; otherwise the writer's own adaptive policy (if any) solves one
// per chunk — the historical fixed-slab adaptive mode — and plain options
// apply last.
func (w *Writer) compressChunk(j job) (*codec.Chunk, error) {
	f, err := grid.FromData("", w.cfg.prec, j.vals, len(j.vals))
	if err != nil {
		return nil, err
	}
	c := w.cfg.codec
	if j.codecID != 0 && j.codecID != c.ID() {
		if c, err = codec.ByID(j.codecID); err != nil {
			return nil, err
		}
	}
	copts := w.cfg.copts
	switch {
	case j.bound > 0:
		copts.Mode = compressor.ABS
		copts.ErrorBound = j.bound
	case w.cfg.adaptive != nil:
		copts.Mode = compressor.ABS
		copts.ErrorBound = w.cfg.adaptive.BoundFor(c, f, copts, w.cfg.mopts)
	}
	payload, err := c.Compress(f, copts)
	if err != nil {
		return nil, err
	}
	return &codec.Chunk{
		CodecID:  c.ID(),
		AbsBound: resolveAbsBound(copts),
		Values:   len(j.vals),
		Payload:  payload,
	}, nil
}

// resolveAbsBound maps the chunk's (mode, bound) to the absolute bound
// recorded in the chunk header. REL never reaches the chunk level — the
// config resolves it once against the stream-global value range — so an ABS
// bound here is exactly the bound the codec enforced on this chunk, constant
// chunks included; PWREL has no single absolute bound and records 0.
func resolveAbsBound(copts codec.Options) float64 {
	if copts.Mode == compressor.ABS {
		return copts.ErrorBound
	}
	return 0
}

// sequencer drains per-chunk results in input order and writes the records.
func (w *Writer) sequencer() {
	defer close(w.seqDone)
	for rc := range w.order {
		res := <-rc
		if res.err != nil {
			w.fail(res.err)
			continue
		}
		if w.err() != nil {
			continue // drain without writing after a failure
		}
		off := w.dst.n
		n, err := codec.WriteChunk(w.dst, res.chunk)
		if err != nil {
			w.fail(err)
			continue
		}
		w.entries = append(w.entries, codec.IndexEntry{
			Offset:      off,
			Values:      res.chunk.Values,
			RecordBytes: int(n),
			AbsBound:    res.chunk.AbsBound,
		})
		w.totalValues += int64(res.chunk.Values)
		if len(w.entries) == 1 || res.chunk.AbsBound < w.minBound {
			w.minBound = res.chunk.AbsBound
		}
		if res.chunk.AbsBound > w.maxBound {
			w.maxBound = res.chunk.AbsBound
		}
	}
}

// Close flushes the final partial chunk, drains the pipeline, and writes
// the trailer index and footer. The container is valid only if Close
// returns nil.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if len(w.rem) > 0 {
		w.fail(fmt.Errorf("stream: %d trailing bytes do not form a value", len(w.rem)))
	}
	if len(w.buf) > 0 && w.err() == nil {
		w.planWindow()
	}
	if w.windowValues == 0 && len(w.all) > 0 && w.err() == nil {
		w.planStream()
	}
	close(w.jobs)
	w.workerWG.Wait()
	close(w.order)
	<-w.seqDone
	if err := w.err(); err != nil {
		return err
	}
	if want := codec.ShapeValues(w.cfg.dims); want > 0 && w.totalValues != want {
		err := fmt.Errorf("stream: wrote %d values, shape %v declares %d",
			w.totalValues, w.cfg.dims, want)
		w.fail(err)
		return err
	}
	if _, err := codec.WriteTrailer(w.dst, w.entries, w.totalValues, w.dst.n); err != nil {
		w.fail(err)
		return err
	}
	w.stats = Stats{
		Chunks:     len(w.entries),
		Values:     w.totalValues,
		BytesIn:    w.totalValues * int64(w.cfg.prec.Bits()/8),
		BytesOut:   w.dst.n,
		MinBound:   w.minBound,
		MaxBound:   w.maxBound,
		Splits:     w.splits,
		EncodeTime: time.Since(w.start),
	}
	if w.stats.BytesOut > 0 {
		w.stats.Ratio = float64(w.stats.BytesIn) / float64(w.stats.BytesOut)
	}
	return nil
}

// Stats reports the finished stream's totals; valid after Close returns nil.
func (w *Writer) Stats() Stats { return w.stats }

// err returns the sticky first pipeline error.
func (w *Writer) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.firstErr
}

// fail records the first pipeline error.
func (w *Writer) fail(err error) {
	w.mu.Lock()
	if w.firstErr == nil {
		w.firstErr = err
	}
	w.mu.Unlock()
}

// countWriter tracks the container offset for index entries.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
