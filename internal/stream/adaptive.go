package stream

import "rqm/internal/partition"

// AdaptiveBound is the per-region error-bound policy, now owned by the
// partition layer (it solves bounds for whatever regions the partitioner
// plans — fixed slabs by default). The alias keeps the historical stream API
// intact: stream.AdaptiveBound and partition.AdaptiveBound are one type.
type AdaptiveBound = partition.AdaptiveBound
