package stream

import (
	"bytes"
	"math"
	"testing"

	"rqm/internal/codec"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/partition"
	"rqm/internal/quality"
)

// mixedTiny is the Tiny-scale composite dataset: a smooth spectral half and a
// turbulent noisy half along the outer axis, the workload the quadtree
// partitioner exists for.
func mixedTiny(t *testing.T) *grid.Field {
	t.Helper()
	ds, err := datagen.Generate("mixed", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Fields[0]
}

func compressField(t *testing.T, f *grid.Field, opts ...Option) ([]byte, Stats) {
	t.Helper()
	var buf bytes.Buffer
	base := []Option{
		WithShape(grid.Float64, f.Dims...),
		WithName(f.Name),
	}
	w, err := NewWriter(&buf, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), w.Stats()
}

// TestQuadtreeStreamRoundTrip checks the whole-stream partitioning path end
// to end: regions become independent container chunks, every chunk's
// recorded bound is honored by the reconstruction, and the incremental byte
// reader agrees with the whole-buffer decode.
func TestQuadtreeStreamRoundTrip(t *testing.T) {
	f := mixedTiny(t)
	// The low SplitFactor makes the planner recurse deeper where contrast is
	// mild, so the container ends up with chunks of differing sizes — the
	// geometry the rest of the assertions exercise.
	raw, st := compressField(t, f,
		WithAdaptive(AdaptiveBound{TargetPSNR: 60}),
		WithPartitioner(partition.VarianceQuadtree{SplitFactor: 1.1, MinRegionValues: 1024}))

	if st.Chunks < 2 || st.Splits == 0 {
		t.Fatalf("quadtree wrote %d chunks with %d splits, want a real split", st.Chunks, st.Splits)
	}
	if st.Values != int64(len(f.Data)) {
		t.Fatalf("stats report %d values, want %d", st.Values, len(f.Data))
	}

	dec, err := codec.DecompressChunked(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Data) != len(f.Data) {
		t.Fatalf("decoded %d values, want %d", len(dec.Data), len(f.Data))
	}

	// Chunk sizes must vary (that is the point of spatial splitting) and each
	// chunk's reconstruction must satisfy its own recorded bound.
	idx, err := codec.LoadIndex(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != st.Chunks {
		t.Fatalf("index has %d entries, stats say %d chunks", len(idx.Entries), st.Chunks)
	}
	sizes := map[int]bool{}
	off := 0
	for ci, e := range idx.Entries {
		sizes[e.Values] = true
		if !(e.AbsBound > 0) {
			t.Fatalf("chunk %d has no recorded bound", ci)
		}
		for i := off; i < off+e.Values; i++ {
			if d := math.Abs(dec.Data[i] - f.Data[i]); d > e.AbsBound*(1+1e-12) {
				t.Fatalf("chunk %d value %d: |%g - %g| = %g breaks the recorded bound %g",
					ci, i, dec.Data[i], f.Data[i], d, e.AbsBound)
			}
		}
		off += e.Values
	}
	if len(sizes) < 2 {
		t.Fatalf("all %d chunks share one size; expected non-uniform chunk geometry", len(idx.Entries))
	}

	// The streaming reader must agree bit for bit with the whole-buffer path.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		chunk, cerr := r.NextChunk()
		if cerr != nil {
			break
		}
		got = append(got, chunk...)
	}
	if len(got) != len(dec.Data) {
		t.Fatalf("reader produced %d values, want %d", len(got), len(dec.Data))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(dec.Data[i]) {
			t.Fatalf("value %d: reader %x, whole-buffer %x",
				i, math.Float64bits(got[i]), math.Float64bits(dec.Data[i]))
		}
	}
}

// TestQuadtreeMultiWriteDeterministic checks that feeding the whole-stream
// partitioner through many small WriteValues calls produces the same
// container as one big call — recompaction replans from a single buffer and
// must reproduce what a chunked ingest wrote.
func TestQuadtreeMultiWriteDeterministic(t *testing.T) {
	f := mixedTiny(t)
	opts := []Option{
		WithAdaptive(AdaptiveBound{TargetRatio: 10}),
		WithPartitioner(partition.VarianceQuadtree{}),
	}
	whole, _ := compressField(t, f, opts...)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, append([]Option{
		WithShape(grid.Float64, f.Dims...),
		WithName(f.Name),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	const step = 1711 // deliberately not a divisor of the field size
	for off := 0; off < len(f.Data); off += step {
		end := off + step
		if end > len(f.Data) {
			end = len(f.Data)
		}
		if err := w.WriteValues(f.Data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, buf.Bytes()) {
		t.Fatal("piecewise writes produced a different container than one write")
	}
}

// TestAdaptiveSpaceRatioWin pins the acceptance margin from ISSUE 8: on the
// mixed field at an equal PSNR target, variance-guided spatial partitioning
// must beat fixed slabs on ratio by a concrete margin while both actually
// deliver the target quality. Measured headroom at Tiny scale is ~1.08x
// (larger at Small), so 1.04x leaves room for platform noise without letting
// the win regress to nothing.
func TestAdaptiveSpaceRatioWin(t *testing.T) {
	f := mixedTiny(t)
	const target = 65.0
	pol := AdaptiveBound{TargetPSNR: target}

	fixedRaw, fixedStats := compressField(t, f, WithAdaptive(pol))
	quadRaw, quadStats := compressField(t, f,
		WithAdaptive(pol),
		WithPartitioner(partition.VarianceQuadtree{}))

	fixedDec, err := codec.DecompressChunked(fixedRaw)
	if err != nil {
		t.Fatal(err)
	}
	quadDec, err := codec.DecompressChunked(quadRaw)
	if err != nil {
		t.Fatal(err)
	}
	fixedPSNR, err := quality.PSNR(f, fixedDec)
	if err != nil {
		t.Fatal(err)
	}
	quadPSNR, err := quality.PSNR(f, quadDec)
	if err != nil {
		t.Fatal(err)
	}
	// Both paths must deliver the target (small solver slack allowed).
	const slack = 1.0
	if fixedPSNR < target-slack {
		t.Fatalf("fixed slabs delivered %.2f dB, want >= %.2f", fixedPSNR, target-slack)
	}
	if quadPSNR < target-slack {
		t.Fatalf("quadtree delivered %.2f dB, want >= %.2f", quadPSNR, target-slack)
	}
	const margin = 1.04
	if quadStats.Ratio < margin*fixedStats.Ratio {
		t.Fatalf("adaptive-space ratio %.3f vs fixed %.3f: win %.3fx below the %.2fx margin",
			quadStats.Ratio, fixedStats.Ratio, quadStats.Ratio/fixedStats.Ratio, margin)
	}
	t.Logf("equal-PSNR win: fixed %.2f@%.1fdB, quadtree %.2f@%.1fdB (%.2fx)",
		fixedStats.Ratio, fixedPSNR, quadStats.Ratio, quadPSNR,
		quadStats.Ratio/fixedStats.Ratio)
}
