package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
)

// waveValues synthesizes a mildly compressible test signal.
func waveValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		x := float64(i)
		vals[i] = math.Sin(x/50) + 0.25*math.Sin(x/7) + 0.01*float64(i%13)
	}
	return vals
}

// roundTrip writes vals through a Writer and reads them back both ways.
func roundTrip(t *testing.T, vals []float64, wopts []Option, ropts []ReaderOption) ([]float64, Stats) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, wopts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), ropts...)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		chunk, err := r.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
	}
	// The sequential whole-buffer decode must agree bit for bit.
	whole, err := codec.DecompressChunked(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Data) != len(got) {
		t.Fatalf("pipeline decoded %d values, whole-buffer %d", len(got), len(whole.Data))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(whole.Data[i]) {
			t.Fatalf("value %d: pipeline %x, whole-buffer %x",
				i, math.Float64bits(got[i]), math.Float64bits(whole.Data[i]))
		}
	}
	return got, w.Stats()
}

// TestWriterReaderRoundTrip drives the pipeline across chunk geometries and
// worker counts; run under -race this is the pipeline's concurrency test.
func TestWriterReaderRoundTrip(t *testing.T) {
	cases := []struct {
		name       string
		n          int
		chunk      int
		workers    int
		wantChunks int
	}{
		{"one chunk", 100, 256, 1, 1},
		{"boundary exact", 512, 256, 2, 2},
		{"partial tail", 1000, 256, 4, 4},
		{"many small chunks", 3000, 64, 4, 47},
		{"single worker", 1000, 128, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals := waveValues(tc.n)
			got, st := roundTrip(t, vals,
				[]Option{
					WithChunkValues(tc.chunk),
					WithWorkers(tc.workers),
					WithCompression(codec.Options{Mode: compressor.ABS, ErrorBound: 1e-3}),
				},
				[]ReaderOption{WithReaderWorkers(tc.workers)})
			if len(got) != tc.n {
				t.Fatalf("decoded %d values, want %d", len(got), tc.n)
			}
			if st.Chunks != tc.wantChunks {
				t.Fatalf("wrote %d chunks, want %d", st.Chunks, tc.wantChunks)
			}
			if st.Values != int64(tc.n) {
				t.Fatalf("stats report %d values, want %d", st.Values, tc.n)
			}
			for i := range vals {
				if d := got[i] - vals[i]; d > 1e-3 || d < -1e-3 {
					t.Fatalf("value %d: |%g - %g| breaks the 1e-3 bound", i, got[i], vals[i])
				}
			}
		})
	}
}

// TestEmptyStream checks a zero-value stream produces a valid container
// that reads back as empty.
func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithChunkValues(64), WithValueRange(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Chunks != 0 || st.Values != 0 {
		t.Fatalf("stats %+v, want empty", st)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextChunk(); err != io.EOF {
		t.Fatalf("NextChunk on empty stream: %v, want io.EOF", err)
	}
	r2, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadAll(); !errors.Is(err, ErrEmptyStream) {
		t.Fatalf("ReadAll on empty stream: %v, want ErrEmptyStream", err)
	}
}

// TestByteInterfaces pipes raw sample bytes through Writer.Write and back
// out Reader.Read, in both precisions, with deliberately misaligned writes.
func TestByteInterfaces(t *testing.T) {
	for _, prec := range []grid.Precision{grid.Float32, grid.Float64} {
		vals := waveValues(500)
		width := prec.Bits() / 8
		raw := make([]byte, 0, len(vals)*width)
		f, err := grid.FromData("bytes", prec, append([]float64(nil), vals...), len(vals))
		if err != nil {
			t.Fatal(err)
		}
		var enc bytes.Buffer
		if _, err := f.WriteTo(&enc); err != nil {
			t.Fatal(err)
		}
		raw = enc.Bytes()[8*2+8:] // skip the .rqmf header: magic, meta, one dim

		var buf bytes.Buffer
		w, err := NewWriter(&buf,
			WithShape(prec, len(vals)),
			WithChunkValues(128),
			WithCompression(codec.Options{Mode: compressor.ABS, ErrorBound: 1e-3}))
		if err != nil {
			t.Fatal(err)
		}
		// Feed in awkward slices to exercise the partial-value carry.
		for off := 0; off < len(raw); {
			n := 13
			if off+n > len(raw) {
				n = len(raw) - off
			}
			if _, err := w.Write(raw[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(raw) {
			t.Fatalf("prec %d: read %d bytes, want %d", prec, len(out), len(raw))
		}
		// Decode and check the bound value-wise.
		back, err := codec.DecompressChunked(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			ref := f.Data[i] // float32 storage already rounds the original
			if d := back.Data[i] - ref; d > 1e-3 || d < -1e-3 {
				t.Fatalf("prec %d value %d: |%g - %g| breaks the bound", prec, i, back.Data[i], ref)
			}
		}
	}
}

// TestShapeCountMismatch checks Close enforces the WithShape contract: a
// declared shape with a different written value count must fail rather
// than emit a container whose header lies about its contents.
func TestShapeCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithShape(grid.Float64, 32, 32), WithChunkValues(100), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(waveValues(1000)); err != nil { // shape wants 1024
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted 1000 values against a 32x32 shape")
	}
}

// TestTrailingPartialValue checks Close rejects a stream whose byte count
// does not form whole values.
func TestTrailingPartialValue(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithShape(grid.Float64), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 11)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted a trailing partial value")
	}
}

// TestShapeRecovery checks the header shape reassembles the original field.
func TestShapeRecovery(t *testing.T) {
	dims := []int{6, 7, 8}
	vals := waveValues(6 * 7 * 8)
	var buf bytes.Buffer
	w, err := NewWriter(&buf,
		WithShape(grid.Float64, dims...), WithName("cube"), WithChunkValues(100),
		WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "cube" || f.Rank() != 3 || f.Dims[0] != 6 || f.Dims[1] != 7 || f.Dims[2] != 8 {
		t.Fatalf("reassembled %q %v, want cube [6 7 8]", f.Name, f.Dims)
	}
}

// TestAdaptiveBoundPolicies checks both targets steer per-chunk bounds and
// that chunk bounds actually vary across heterogeneous data.
func TestAdaptiveBoundPolicies(t *testing.T) {
	// Heterogeneous stream: quiet half then loud half.
	n := 4096
	vals := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		vals[i] = 0.001 * math.Sin(float64(i)/30)
		vals[n+i] = 100*math.Sin(float64(i)/3) + float64(i%17)
	}
	mopts := core.Options{SampleRate: 0.2, Seed: 9}

	t.Run("ratio target", func(t *testing.T) {
		got, st := roundTrip(t, vals,
			[]Option{
				WithChunkValues(n), WithWorkers(2),
				WithAdaptive(AdaptiveBound{TargetRatio: 8}),
				WithModel(mopts),
			}, nil)
		if len(got) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(got), len(vals))
		}
		if st.MinBound == st.MaxBound {
			t.Fatalf("adaptive bounds did not vary: [%g, %g]", st.MinBound, st.MaxBound)
		}
		if st.Ratio < 4 {
			t.Fatalf("ratio %.2f nowhere near the target 8", st.Ratio)
		}
	})

	t.Run("psnr target", func(t *testing.T) {
		_, st := roundTrip(t, vals,
			[]Option{
				WithChunkValues(n), WithWorkers(2),
				WithAdaptive(AdaptiveBound{TargetPSNR: 80}),
				WithModel(mopts),
			}, nil)
		if st.MinBound == st.MaxBound {
			t.Fatalf("adaptive bounds did not vary: [%g, %g]", st.MinBound, st.MaxBound)
		}
	})

	t.Run("constant chunks fall back", func(t *testing.T) {
		flat := make([]float64, 300)
		got, _ := roundTrip(t, flat,
			[]Option{
				WithChunkValues(100),
				WithAdaptive(AdaptiveBound{TargetRatio: 10}),
			}, nil)
		for i, v := range got {
			if math.Abs(v) > 1e-6 {
				t.Fatalf("constant stream value %d decoded to %g", i, v)
			}
		}
	})
}

// TestAdaptiveBoundValidation checks malformed policies are rejected at
// construction.
func TestAdaptiveBoundValidation(t *testing.T) {
	bad := []AdaptiveBound{
		{},
		{TargetRatio: 2, TargetPSNR: 60},
		{TargetRatio: 0.5},
		{TargetPSNR: -3},
		{TargetRatio: 2, MinBound: 5, MaxBound: 1},
		{TargetRatio: 2, MinBound: -1},
	}
	for i, a := range bad {
		if _, err := NewWriter(io.Discard, WithAdaptive(a)); err == nil {
			t.Fatalf("case %d: NewWriter accepted invalid policy %+v", i, a)
		}
	}
}

// TestWriterErrorPropagation checks a failing sink poisons the pipeline
// without deadlocking and surfaces the error from Close.
func TestWriterErrorPropagation(t *testing.T) {
	w, err := NewWriter(&failAfter{limit: 50}, WithChunkValues(32), WithWorkers(2), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	werr := w.WriteValues(waveValues(10000))
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Fatal("pipeline swallowed the sink error")
	}
}

// failAfter errors every write past a byte budget.
type failAfter struct{ n, limit int }

func (f *failAfter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > f.limit {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

// TestReaderEarlyClose abandons a stream mid-read; the feeder and workers
// must exit without deadlock (the -race build also checks their shutdown).
func TestReaderEarlyClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithChunkValues(64), WithWorkers(2), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(waveValues(2000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), WithReaderWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextChunk(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentStreams runs several writer/reader pipelines at once; with
// -race this shakes out shared-state races across Writer instances.
func TestConcurrentStreams(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			vals := waveValues(1500 + 111*seed)
			var buf bytes.Buffer
			w, err := NewWriter(&buf, WithChunkValues(128), WithWorkers(2), WithValueRange(-2, 2))
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.WriteValues(vals); err != nil {
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
				return
			}
			r, err := NewReader(bytes.NewReader(buf.Bytes()), WithReaderWorkers(2))
			if err != nil {
				t.Error(err)
				return
			}
			f, err := r.ReadAll()
			if err != nil {
				t.Error(err)
				return
			}
			if f.Len() != len(vals) {
				t.Errorf("stream %d: decoded %d values, want %d", seed, f.Len(), len(vals))
			}
		}(i)
	}
	wg.Wait()
}

// TestReaderRejectsCorruptChunk checks mid-stream corruption surfaces as a
// typed error from the pipeline reader, in order.
func TestReaderRejectsCorruptChunk(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithChunkValues(64), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(waveValues(640)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := codec.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	e := idx.Entries[5]
	data[e.Offset+30] ^= 0xFF // flip a payload byte in chunk 5

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	good := 0
	for {
		_, err := r.NextChunk()
		if err != nil {
			sawErr = err
			break
		}
		good++
	}
	if !errors.Is(sawErr, codec.ErrChecksum) {
		t.Fatalf("corrupt chunk surfaced as %v, want ErrChecksum", sawErr)
	}
	if good != 5 {
		t.Fatalf("decoded %d chunks before the corrupt one, want 5", good)
	}
}

// trackingReader flags Reads that happen after the owner reclaims the
// source — the exclusive-ownership contract Reader.Close guarantees.
type trackingReader struct {
	r         io.Reader
	reclaimed atomic.Bool
	violated  atomic.Bool
}

func (tr *trackingReader) Read(p []byte) (int, error) {
	if tr.reclaimed.Load() {
		tr.violated.Store(true)
	}
	return tr.r.Read(p)
}

// TestCloseReclaimsSource pins Reader.Close's ownership guarantee: after
// Close returns — including the implicit Close on a mid-stream error — the
// feeder goroutine must never touch the source again, because the serving
// layer immediately drains the request body it wrapped. CRC failures are
// the interesting case: they are detected on the worker pool, so the feeder
// is still parsing ahead when the consumer sees the error.
func TestCloseReclaimsSource(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithChunkValues(64), WithValueRange(-2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(waveValues(640)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := codec.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[idx.Entries[2].Offset+30] ^= 0xFF

	tr := &trackingReader{r: bytes.NewReader(data)}
	r, err := NewReader(tr, WithReaderWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.NextChunk(); err != nil {
			break // ErrChecksum from chunk 2; NextChunk closes implicitly
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	tr.reclaimed.Store(true)
	if tr.violated.Load() {
		t.Fatal("feeder read from the source after Close returned")
	}
}

// TestRELWithoutRangeFails pins the explicit-error contract: a REL-mode
// writer with no declared stream-global range must fail at construction
// instead of silently resolving the bound against each chunk's local range.
func TestRELWithoutRangeFails(t *testing.T) {
	if _, err := NewWriter(io.Discard, WithChunkValues(64)); !errors.Is(err, ErrNeedValueRange) {
		t.Fatalf("default REL writer without a range: %v, want ErrNeedValueRange", err)
	}
	// An adaptive policy replaces mode and bound per chunk, so it needs none.
	if _, err := NewWriter(io.Discard, WithAdaptive(AdaptiveBound{TargetPSNR: 60})); err != nil {
		t.Fatalf("adaptive writer rejected without a range: %v", err)
	}
	// And ABS mode never needed one.
	if _, err := NewWriter(io.Discard,
		WithCompression(codec.Options{Mode: compressor.ABS, ErrorBound: 1e-3})); err != nil {
		t.Fatalf("ABS writer rejected without a range: %v", err)
	}
}

// TestConstantChunkRecordsEnforcedBound covers the chunk-header bound of a
// constant chunk inside a REL stream: the header must record the enforced
// stream-global absolute bound (eb x global range), not the raw relative
// bound — for a chunk of constant 1e6 values those differ by nine orders of
// magnitude.
func TestConstantChunkRecordsEnforcedBound(t *testing.T) {
	const chunk = 256
	vals := make([]float64, 2*chunk)
	for i := 0; i < chunk; i++ {
		vals[i] = 1e6                  // constant chunk, local range 0
		vals[chunk+i] = float64(4 * i) // varying chunk, local range 1020
	}
	const relEB = 1e-3
	lo, hi := 0.0, 1e6 // stream-global range
	var buf bytes.Buffer
	w, err := NewWriter(&buf,
		WithChunkValues(chunk),
		WithValueRange(lo, hi),
		WithCompression(codec.Options{Mode: compressor.REL, ErrorBound: relEB}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := codec.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 2 {
		t.Fatalf("wrote %d chunks, want 2", len(idx.Entries))
	}
	want := relEB * (hi - lo)
	for i, e := range idx.Entries {
		if e.AbsBound != want {
			t.Fatalf("chunk %d header bound %g, want the enforced %g", i, e.AbsBound, want)
		}
	}
	if st := w.Stats(); st.MinBound != want || st.MaxBound != want {
		t.Fatalf("stats bounds [%g, %g], want [%g, %g]", st.MinBound, st.MaxBound, want, want)
	}
	// The reconstruction must actually satisfy the recorded bound.
	f, err := codec.DecompressChunked(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if d := math.Abs(f.Data[i] - vals[i]); d > want*(1+1e-12) {
			t.Fatalf("value %d: |%g - %g| breaks the recorded bound %g", i, f.Data[i], vals[i], want)
		}
	}
}

// TestZeroLengthStreamRoundTrip round-trips a stream holding zero values
// through both the value and the byte interfaces: the container must stay
// structurally valid (indexable, zero entries) and read back as empty.
func TestZeroLengthStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithChunkValues(64), WithValueRange(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(nil); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write(nil); n != 0 || err != nil {
		t.Fatalf("Write(nil) = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := codec.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != 0 || idx.TotalValues != 0 {
		t.Fatalf("index %d entries / %d values, want empty", len(idx.Entries), idx.TotalValues)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The byte interface drains cleanly: io.Copy sees immediate EOF.
	n, err := io.Copy(io.Discard, r)
	if n != 0 || err != nil {
		t.Fatalf("io.Copy on empty stream = %d bytes, %v", n, err)
	}
	if r.Values() != 0 {
		t.Fatalf("reader consumed %d values from an empty stream", r.Values())
	}
}
