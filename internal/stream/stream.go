// Package stream is the chunked, concurrent compression pipeline: a Writer
// that splits a value stream into chunks, compresses them on a bounded
// worker pool, and emits a chunked (v2) container in order, and a Reader
// that decompresses such containers with the same overlap. Memory stays
// O(workers × chunk size) on both sides regardless of stream length, and
// throughput scales with cores because chunks compress independently.
//
// The adaptive layer is the paper's headline use case wired into the hot
// path: with an AdaptiveBound policy, the Writer runs the ratio-quality
// model's cheap sampling estimate on every chunk before compressing it and
// solves for the per-chunk error bound that meets a global compression-ratio
// or PSNR target (Jin et al., ICDE 2022, §V-C).
package stream

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/partition"
)

// DefaultChunkValues is the default chunk size (values per chunk): 256 Ki
// values, i.e. 2 MiB of float64 input per in-flight chunk.
const DefaultChunkValues = 1 << 18

// ErrEmptyStream marks a structurally valid container holding zero values.
var ErrEmptyStream = errors.New("stream: empty stream")

// ErrClosed marks use of a Writer after Close.
var ErrClosed = errors.New("stream: writer is closed")

// ErrNeedValueRange marks a REL-mode Writer built without a stream-global
// value range. A relative bound is defined against the *whole field's* range;
// resolving it against each chunk's local range would silently give every
// chunk a different absolute guarantee than whole-buffer REL compression.
// Callers that know the field resolve it up front (Engine.NewFieldStreamWriter);
// raw byte-stream writers declare the range with WithValueRange.
var ErrNeedValueRange = errors.New(
	"stream: REL error bound needs a stream-global value range: declare it with WithValueRange or use ABS mode")

// config carries the resolved Writer configuration.
type config struct {
	codec       codec.Codec
	copts       codec.Options
	mopts       core.Options
	adaptive    *AdaptiveBound
	partitioner partition.Partitioner
	chunkValues int
	workers     int
	name        string
	prec        grid.Precision
	dims        []int

	rangeSet         bool
	rangeLo, rangeHi float64
}

// env assembles the partition-layer context from the resolved configuration.
func (cfg *config) env() partition.Env {
	return partition.Env{
		Codec:       cfg.codec,
		Copts:       cfg.copts,
		Mopts:       cfg.mopts,
		Policy:      cfg.adaptive,
		Prec:        cfg.prec,
		Dims:        cfg.dims,
		ChunkValues: cfg.chunkValues,
	}
}

// Option configures a Writer.
type Option func(*config) error

// WithCodec selects the backend codec for every chunk.
func WithCodec(c codec.Codec) Option {
	return func(cfg *config) error {
		if c == nil {
			return errors.New("stream: WithCodec(nil)")
		}
		cfg.codec = c
		return nil
	}
}

// WithCodecName selects the backend codec by registered name.
func WithCodecName(name string) Option {
	return func(cfg *config) error {
		c, err := codec.ByName(name)
		if err != nil {
			return err
		}
		cfg.codec = c
		return nil
	}
}

// WithCompression sets the codec options applied to every chunk (mode,
// bound, predictor, lossless stage, radius). Under an AdaptiveBound policy
// the mode and bound are overridden per chunk; the rest still applies.
func WithCompression(o codec.Options) Option {
	return func(cfg *config) error {
		if o.ErrorBound < 0 {
			return fmt.Errorf("stream: negative error bound %v", o.ErrorBound)
		}
		cfg.copts = o
		return nil
	}
}

// WithModel tunes the ratio-quality model the adaptive layer runs per chunk.
func WithModel(o core.Options) Option {
	return func(cfg *config) error {
		cfg.mopts = o
		return nil
	}
}

// WithAdaptive installs a per-chunk error-bound policy: before compressing
// each chunk, the writer profiles it with the ratio-quality model and solves
// for the bound meeting the policy's target.
func WithAdaptive(a AdaptiveBound) Option {
	return func(cfg *config) error {
		if err := a.Validate(); err != nil {
			return err
		}
		cfg.adaptive = &a
		return nil
	}
}

// WithPartitioner installs the chunk-planning strategy. The default,
// partition.FixedSlab, reproduces the historical fixed-size slabs byte for
// byte; partition.VarianceQuadtree buffers the stream and splits it where
// variance is non-uniform, solving the AdaptiveBound policy per region
// (it requires one via WithAdaptive). Partitioners that buffer the whole
// stream (WindowValues 0) trade the pipeline's O(workers × chunk) memory
// bound for O(stream).
func WithPartitioner(p partition.Partitioner) Option {
	return func(cfg *config) error {
		if p == nil {
			return errors.New("stream: WithPartitioner(nil)")
		}
		cfg.partitioner = p
		return nil
	}
}

// WithChunkValues sets the chunk size in values (default DefaultChunkValues).
func WithChunkValues(n int) Option {
	return func(cfg *config) error {
		if n < 1 {
			return fmt.Errorf("stream: chunk size must be at least 1 value, got %d", n)
		}
		cfg.chunkValues = n
		return nil
	}
}

// WithWorkers sets the number of concurrent chunk compressors (default
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(cfg *config) error {
		if n < 1 {
			return fmt.Errorf("stream: workers must be at least 1, got %d", n)
		}
		cfg.workers = n
		return nil
	}
}

// WithShape records the logical field shape and precision in the stream
// header, so readers reassemble the original N-dimensional field. Without
// it the stream decodes as 1-D float64. A declared shape is a contract:
// Close fails if the written value count does not match it.
func WithShape(prec grid.Precision, dims ...int) Option {
	return func(cfg *config) error {
		if prec != grid.Float32 && prec != grid.Float64 {
			return fmt.Errorf("stream: unsupported precision %d", prec)
		}
		if len(dims) > 4 {
			return fmt.Errorf("stream: rank %d outside 0..4", len(dims))
		}
		for _, d := range dims {
			if d <= 0 {
				return fmt.Errorf("stream: non-positive dimension %d", d)
			}
		}
		cfg.prec = prec
		cfg.dims = append([]int(nil), dims...)
		return nil
	}
}

// WithName records the field name in the stream header.
func WithName(name string) Option {
	return func(cfg *config) error {
		cfg.name = name
		return nil
	}
}

// WithValueRange declares the stream-global value range [lo, hi] that a REL
// error bound resolves against — once, for the whole stream — so streamed and
// whole-buffer REL compression of the same field enforce the same absolute
// bound. Required for REL mode (see ErrNeedValueRange); ignored by ABS and
// PWREL, which need no range.
func WithValueRange(lo, hi float64) Option {
	return func(cfg *config) error {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return fmt.Errorf("stream: value range [%v, %v] is not finite", lo, hi)
		}
		if hi < lo {
			return fmt.Errorf("stream: inverted value range [%v, %v]", lo, hi)
		}
		cfg.rangeSet = true
		cfg.rangeLo, cfg.rangeHi = lo, hi
		return nil
	}
}

// newConfig resolves options against defaults.
func newConfig(opts []Option) (*config, error) {
	cfg := &config{
		chunkValues: DefaultChunkValues,
		prec:        grid.Float64,
	}
	var err error
	if cfg.codec, err = codec.ByID(codec.IDPrediction); err != nil {
		return nil, err
	}
	cfg.copts = codec.Options{Mode: compressor.REL, ErrorBound: 1e-3} // the Engine default
	for _, opt := range opts {
		if err := opt(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.workers == 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	// Resolve a REL bound once against the stream-global range. Chunk-local
	// resolution would change the bound's meaning per chunk (and degenerate
	// to the raw relative bound on constant chunks). An AdaptiveBound policy
	// replaces mode and bound per chunk, so it needs no range.
	if cfg.copts.Mode == compressor.REL && cfg.adaptive == nil {
		if !cfg.rangeSet {
			return nil, ErrNeedValueRange
		}
		abs := cfg.copts.ErrorBound * (cfg.rangeHi - cfg.rangeLo)
		if abs <= 0 {
			// Declared-constant range: match whole-buffer REL semantics,
			// where any positive bound works on a constant field.
			abs = cfg.copts.ErrorBound
		}
		cfg.copts.Mode = compressor.ABS
		cfg.copts.ErrorBound = abs
	}
	if cfg.partitioner == nil {
		cfg.partitioner = partition.FixedSlab{}
	}
	// Partitioners that can detect misconfiguration (e.g. a quadtree with no
	// bound policy to solve per region) surface it here rather than at Close.
	if v, ok := cfg.partitioner.(interface{ Validate(partition.Env) error }); ok {
		if err := v.Validate(cfg.env()); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}
