package stream

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"rqm/internal/codec"
	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/partition"
)

// The pinned hashes below were captured from the writer BEFORE the partition
// layer existed (PR 7 state). The default FixedSlab partitioner must keep
// every historical path byte-identical: compression is deterministic (fixed
// sampling seed, in-order sequencer), so any drift in these hashes means the
// refactor changed the container, not just the code structure.
const (
	goldenFixedABS         = "0ec31f1395caadb057793e8f7e6ef96dabf0062c37ef7ed8074562b71cc39708"
	goldenAdaptivePSNR     = "1eb5130c1447fe99f9805bddb8ea4e4ae603f479abdbe18c46c59e588db6f216"
	goldenAdaptiveRatioILV = "c32a220459cec9c64c44d80e1f90bceb772a9f84f55f8f9d529c035be602d086"
	goldenRELPartial       = "7a1dc001cf2e3eb330f5d74cc7f1409914fe25b004183c0468357669fdbd6c08"
)

func goldenField() []float64 {
	return datagen.SpectralField("pin", grid.Float64, []int{64, 64, 16}, -1.6, -1, 1, 42).Data
}

func writeContainer(t *testing.T, vals []float64, opts ...Option) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFixedSlabByteIdentical(t *testing.T) {
	vals := goldenField()
	cases := []struct {
		name string
		want string
		opts []Option
	}{
		{"fixed-abs", goldenFixedABS, []Option{
			WithChunkValues(16 * 1024),
			WithShape(grid.Float64, 64, 64, 16),
			WithName("pin"),
			WithCompression(codec.Options{Mode: compressor.ABS, ErrorBound: 1e-3}),
		}},
		{"adaptive-psnr", goldenAdaptivePSNR, []Option{
			WithChunkValues(16 * 1024),
			WithShape(grid.Float64, 64, 64, 16),
			WithName("pin"),
			WithAdaptive(AdaptiveBound{TargetPSNR: 70}),
		}},
		{"adaptive-ratio-ilv", goldenAdaptiveRatioILV, []Option{
			WithChunkValues(16 * 1024),
			WithShape(grid.Float64, 64, 64, 16),
			WithName("pin"),
			WithCodecName(codec.PredictionILVName),
			WithAdaptive(AdaptiveBound{TargetRatio: 8}),
		}},
		{"rel-partial-chunk", goldenRELPartial, []Option{
			WithChunkValues(10000),
			WithValueRange(-1, 1),
			WithCompression(codec.Options{Mode: compressor.REL, ErrorBound: 1e-4}),
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := writeContainer(t, vals, tc.opts...)
			sum := sha256.Sum256(got)
			if hex.EncodeToString(sum[:]) != tc.want {
				t.Errorf("container hash = %x, want %s (FixedSlab output drifted from the pre-partition-layer writer)",
					sum, tc.want)
			}
			// An explicit FixedSlab must plan exactly what the default does.
			explicit := writeContainer(t, vals, append(tc.opts, WithPartitioner(partition.FixedSlab{}))...)
			if !bytes.Equal(got, explicit) {
				t.Error("explicit FixedSlab differs from the default path")
			}
		})
	}
}
