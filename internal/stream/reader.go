package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"rqm/internal/codec"
	"rqm/internal/grid"
)

// ReaderOption configures a Reader.
type ReaderOption func(*Reader) error

// WithReaderWorkers sets the number of concurrent chunk decompressors
// (default GOMAXPROCS).
func WithReaderWorkers(n int) ReaderOption {
	return func(r *Reader) error {
		if n < 1 {
			return fmt.Errorf("stream: reader workers must be at least 1, got %d", n)
		}
		r.workers = n
		return nil
	}
}

// Reader decompresses a chunked container with the Writer's pipeline run in
// reverse: a feeder parses records sequentially and fans the payloads out
// to a decode pool, and consumption hands chunks back in stream order.
// Payload CRCs are verified as records are parsed, and the trailer's chunk
// and value totals are checked against the stream before EOF is reported.
//
// A Reader is single-consumer: NextChunk, Read, and ReadAll must come from
// one goroutine.
type Reader struct {
	hdr     codec.StreamHeader
	workers int

	pending  chan chan decResult // per-chunk result slots, in stream order
	done     chan struct{}
	feedDone chan struct{}
	once     sync.Once

	cur     []float64 // decoded chunk being drained by Read
	curByte []byte    // serialized remainder for Read
	readErr error     // sticky

	values int64
}

type decResult struct {
	vals []float64
	err  error
}

type decJob struct {
	chunk *codec.Chunk
	crc   uint32
	res   chan decResult
}

// NewReader parses the stream header of src and starts the decode pipeline.
// Header parse failures surface immediately with the typed container errors.
func NewReader(src io.Reader, opts ...ReaderOption) (*Reader, error) {
	hdr, _, err := codec.ReadStreamHeader(src)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		hdr:      *hdr,
		done:     make(chan struct{}),
		feedDone: make(chan struct{}),
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	if r.workers == 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	r.pending = make(chan chan decResult, r.workers+2)
	go r.feed(src)
	return r, nil
}

// Header returns the stream header (codec, shape, name, chunk size).
func (r *Reader) Header() codec.StreamHeader { return r.hdr }

// feed parses records sequentially, dispatching chunk payloads to the
// decode pool and validating the trailer at the end of the stream. The
// feeder is deliberately I/O-only: payload checksumming and decoding both
// happen on the workers, so the serial section of the pipeline is just
// reading bytes and parsing 21-byte record heads.
func (r *Reader) feed(src io.Reader) {
	defer close(r.feedDone)
	defer close(r.pending)
	jobs := make(chan decJob, r.workers)
	var wg sync.WaitGroup
	for i := 0; i < r.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := codec.VerifyChunk(j.chunk, j.crc); err != nil {
					j.res <- decResult{err: err}
					continue
				}
				vals, err := codec.DecodeChunk(j.chunk)
				j.res <- decResult{vals: vals, err: err}
			}
		}()
	}
	defer wg.Wait()
	defer close(jobs)

	chunks := 0
	var total int64
	tag := make([]byte, 1)
	for {
		if _, err := io.ReadFull(src, tag); err != nil {
			r.emitErr(fmt.Errorf("%w: container ends without a trailer", codec.ErrTruncated))
			return
		}
		switch tag[0] {
		case codec.TagChunk:
			c, crc, err := codec.ReadChunkBodyUnverified(src)
			if err != nil {
				r.emitErr(err)
				return
			}
			res := make(chan decResult, 1)
			select {
			case r.pending <- res:
			case <-r.done:
				return
			}
			select {
			case jobs <- decJob{chunk: c, crc: crc, res: res}:
			case <-r.done:
				return
			}
			chunks++
			total += int64(c.Values)
		case codec.TagTrailer:
			entries, totalValues, err := codec.ReadTrailerBody(src)
			if err != nil {
				r.emitErr(err)
				return
			}
			if _, err := codec.ReadFooter(src); err != nil {
				r.emitErr(err)
				return
			}
			if len(entries) != chunks || totalValues != total {
				r.emitErr(fmt.Errorf("%w: trailer indexes %d chunks / %d values, stream has %d / %d",
					codec.ErrCorrupt, len(entries), totalValues, chunks, total))
			}
			return
		default:
			r.emitErr(fmt.Errorf("%w: record tag %d", codec.ErrCorrupt, tag[0]))
			return
		}
	}
}

// emitErr delivers a feeder error as the next in-order result.
func (r *Reader) emitErr(err error) {
	res := make(chan decResult, 1)
	res <- decResult{err: err}
	select {
	case r.pending <- res:
	case <-r.done:
	}
}

// NextChunk returns the next chunk's decoded samples in stream order, or
// io.EOF after the last chunk of a valid stream. The returned slice is
// owned by the caller.
func (r *Reader) NextChunk() ([]float64, error) {
	if r.readErr != nil {
		return nil, r.readErr
	}
	rc, ok := <-r.pending
	if !ok {
		r.readErr = io.EOF
		return nil, io.EOF
	}
	res := <-rc
	if res.err != nil {
		r.readErr = res.err
		r.Close()
		return nil, res.err
	}
	r.values += int64(len(res.vals))
	return res.vals, nil
}

// Read serializes the decompressed stream as raw little-endian samples in
// the stream's precision — the mirror of Writer.Write, so a stream can be
// piped back into a raw sample file with io.Copy.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.curByte) == 0 {
		vals, err := r.NextChunk()
		if err != nil {
			return 0, err
		}
		r.curByte = r.encodeValues(vals)
	}
	n := copy(p, r.curByte)
	r.curByte = r.curByte[n:]
	return n, nil
}

// encodeValues serializes one chunk at the stream precision.
func (r *Reader) encodeValues(vals []float64) []byte {
	if r.hdr.Prec == grid.Float32 {
		out := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(float32(v)))
		}
		return out
	}
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// ReadAll drains the stream and reassembles the field: the header's shape
// when it matches the value count, 1-D otherwise. An empty (zero-chunk)
// stream returns ErrEmptyStream.
func (r *Reader) ReadAll() (*grid.Field, error) {
	var vals []float64
	if t := r.hdr.TotalFromDims(); t > 0 {
		vals = make([]float64, 0, t)
	}
	for {
		chunk, err := r.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		vals = append(vals, chunk...)
	}
	if len(vals) == 0 {
		return nil, ErrEmptyStream
	}
	return codec.AssembleField(&r.hdr, vals)
}

// Values reports how many samples have been consumed so far.
func (r *Reader) Values() int64 { return r.values }

// Close abandons the pipeline early; reading past EOF or an error closes
// the Reader implicitly. Close blocks until the feeder goroutine has
// stopped touching the source reader, so once it returns the caller owns
// the source exclusively again (the serving layer relies on this to drain
// request bodies safely).
func (r *Reader) Close() error {
	r.once.Do(func() { close(r.done) })
	<-r.feedDone
	return nil
}
