package quality

import (
	"math"
	"testing"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

func mkField(t *testing.T, vals []float64, dims ...int) *grid.Field {
	t.Helper()
	f, err := grid.FromData("f", grid.Float64, vals, dims...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMSEAndPSNR(t *testing.T) {
	a := mkField(t, []float64{0, 1, 2, 3}, 4)
	b := mkField(t, []float64{0.1, 1.1, 1.9, 3}, 4)
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.01 + 0.01 + 0.01 + 0) / 4
	if math.Abs(mse-want) > 1e-12 {
		t.Fatalf("MSE = %v, want %v", mse, want)
	}
	psnr, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantPSNR := 20*math.Log10(3) - 10*math.Log10(want)
	if math.Abs(psnr-wantPSNR) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", psnr, wantPSNR)
	}
}

func TestPSNRIdenticalInf(t *testing.T) {
	a := mkField(t, []float64{1, 2, 3}, 3)
	psnr, err := PSNR(a, a.Clone())
	if err != nil || !math.IsInf(psnr, 1) {
		t.Fatalf("PSNR identical = %v, %v", psnr, err)
	}
}

func TestMSESizeMismatch(t *testing.T) {
	a := mkField(t, []float64{1, 2, 3}, 3)
	b := mkField(t, []float64{1, 2}, 2)
	if _, err := MSE(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestGlobalSSIMIdentical(t *testing.T) {
	a := mkField(t, []float64{1, 5, 2, 8, 3, 9}, 6)
	s, err := GlobalSSIM(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("SSIM identical = %v", s)
	}
}

func TestGlobalSSIMDecreasesWithNoise(t *testing.T) {
	n := 4096
	a := grid.MustNew("a", grid.Float64, n)
	rng := stats.NewXorShift64(1)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.01)
	}
	prev := 1.0
	for _, sigma := range []float64{0.01, 0.05, 0.2} {
		b := a.Clone()
		r2 := stats.NewXorShift64(2)
		for i := range b.Data {
			b.Data[i] += sigma * r2.NormFloat64()
		}
		s, err := GlobalSSIM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Fatalf("SSIM did not decrease with noise %v: %v >= %v", sigma, s, prev)
		}
		prev = s
	}
	_ = rng
}

func TestWindowedSSIMBounds(t *testing.T) {
	a := grid.MustNew("a", grid.Float64, 32, 32)
	rng := stats.NewXorShift64(3)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] += 0.05 * rng.NormFloat64()
	}
	s, err := WindowedSSIM(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 1 {
		t.Fatalf("windowed SSIM = %v", s)
	}
	sIdent, _ := WindowedSSIM(a, a.Clone(), 8)
	if math.Abs(sIdent-1) > 1e-12 {
		t.Fatalf("windowed SSIM identical = %v", sIdent)
	}
}

func TestSpectrumDistortionCleanVsNoisy(t *testing.T) {
	a := grid.MustNew("a", grid.Float64, 32, 32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			a.Data[i*32+j] = math.Sin(2*math.Pi*3*float64(j)/32) + 0.5*math.Cos(2*math.Pi*5*float64(i)/32)
		}
	}
	_, rmsSame, err := SpectrumDistortion(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rmsSame > 1e-12 {
		t.Fatalf("identical spectrum distortion = %v", rmsSame)
	}
	b := a.Clone()
	rng := stats.NewXorShift64(4)
	for i := range b.Data {
		b.Data[i] += 0.3 * rng.NormFloat64()
	}
	_, rmsNoisy, err := SpectrumDistortion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rmsNoisy <= rmsSame {
		t.Fatal("noise did not increase spectrum distortion")
	}
}

func TestAccuracyOfEstimate(t *testing.T) {
	// Perfect estimates → error rate 0.
	if e := AccuracyOfEstimate([]float64{1, 2, 3}, []float64{1, 2, 3}); e > 1e-12 {
		t.Fatalf("perfect estimate error = %v", e)
	}
	// A constant multiplicative bias has zero STD of ratios → error 0 (the
	// paper's metric measures consistency, not bias).
	if e := AccuracyOfEstimate([]float64{2, 4, 6}, []float64{1, 2, 3}); e > 1e-12 {
		t.Fatalf("constant-bias error = %v", e)
	}
	// Scattered ratios → positive error below 1.
	e := AccuracyOfEstimate([]float64{1, 2, 3, 4}, []float64{1.2, 1.7, 3.4, 3.7})
	if e <= 0 || e >= 1 {
		t.Fatalf("scattered error = %v", e)
	}
	// Zero estimates are skipped.
	if e := AccuracyOfEstimate([]float64{1, 2}, []float64{0, 2}); e != 0 {
		t.Fatalf("zero-handling error = %v", e)
	}
}
