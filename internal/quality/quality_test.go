package quality

import (
	"math"
	"testing"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

func mkField(t *testing.T, vals []float64, dims ...int) *grid.Field {
	t.Helper()
	f, err := grid.FromData("f", grid.Float64, vals, dims...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMSEAndPSNR(t *testing.T) {
	a := mkField(t, []float64{0, 1, 2, 3}, 4)
	b := mkField(t, []float64{0.1, 1.1, 1.9, 3}, 4)
	mse, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.01 + 0.01 + 0.01 + 0) / 4
	if math.Abs(mse-want) > 1e-12 {
		t.Fatalf("MSE = %v, want %v", mse, want)
	}
	psnr, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantPSNR := 20*math.Log10(3) - 10*math.Log10(want)
	if math.Abs(psnr-wantPSNR) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", psnr, wantPSNR)
	}
}

func TestPSNRIdenticalInf(t *testing.T) {
	a := mkField(t, []float64{1, 2, 3}, 3)
	psnr, err := PSNR(a, a.Clone())
	if err != nil || !math.IsInf(psnr, 1) {
		t.Fatalf("PSNR identical = %v, %v", psnr, err)
	}
}

// TestPSNRConstantReference pins the constant-reference fallback: a zero
// value range must not collapse every distortion to 0 dB. The peak falls
// back to the field magnitude (then 1.0 for all-zero references), so a tiny
// error scores far above a huge one.
func TestPSNRConstantReference(t *testing.T) {
	const level = 1e6
	ref := mkField(t, []float64{level, level, level, level}, 4)

	// Offsets of 0.25 are exactly representable next to 1e6, so the MSE
	// below is exact.
	tiny := mkField(t, []float64{level + 0.25, level, level - 0.25, level}, 4)
	huge := mkField(t, []float64{0, 2 * level, 0, 2 * level}, 4)

	psnrTiny, err := PSNR(ref, tiny)
	if err != nil {
		t.Fatal(err)
	}
	psnrHuge, err := PSNR(ref, huge)
	if err != nil {
		t.Fatal(err)
	}
	// Peak = max(|lo|, |hi|) = 1e6; MSE(tiny) = 0.03125, MSE(huge) = 1e12.
	wantTiny := 20*math.Log10(level) - 10*math.Log10(0.03125)
	if math.Abs(psnrTiny-wantTiny) > 1e-9 {
		t.Fatalf("constant-ref tiny-error PSNR = %v, want %v", psnrTiny, wantTiny)
	}
	wantHuge := 20*math.Log10(level) - 10*math.Log10(1e12)
	if math.Abs(psnrHuge-wantHuge) > 1e-9 {
		t.Fatalf("constant-ref huge-error PSNR = %v, want %v", psnrHuge, wantHuge)
	}
	if psnrTiny <= psnrHuge {
		t.Fatalf("tiny error %v dB not above huge error %v dB", psnrTiny, psnrHuge)
	}

	// All-zero reference: peak falls back to 1.0.
	zero := mkField(t, []float64{0, 0, 0}, 3)
	off := mkField(t, []float64{1e-3, 0, -1e-3}, 3)
	psnrZero, err := PSNR(zero, off)
	if err != nil {
		t.Fatal(err)
	}
	wantZero := -10 * math.Log10(2e-6/3)
	if math.Abs(psnrZero-wantZero) > 1e-9 {
		t.Fatalf("zero-ref PSNR = %v, want %v", psnrZero, wantZero)
	}

	// Identical constant fields still score +Inf.
	if psnr, err := PSNR(ref, ref.Clone()); err != nil || !math.IsInf(psnr, 1) {
		t.Fatalf("identical constant PSNR = %v, %v", psnr, err)
	}
}

func TestMSESizeMismatch(t *testing.T) {
	a := mkField(t, []float64{1, 2, 3}, 3)
	b := mkField(t, []float64{1, 2}, 2)
	if _, err := MSE(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestGlobalSSIMIdentical(t *testing.T) {
	a := mkField(t, []float64{1, 5, 2, 8, 3, 9}, 6)
	s, err := GlobalSSIM(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("SSIM identical = %v", s)
	}
}

func TestGlobalSSIMDecreasesWithNoise(t *testing.T) {
	n := 4096
	a := grid.MustNew("a", grid.Float64, n)
	rng := stats.NewXorShift64(1)
	for i := range a.Data {
		a.Data[i] = math.Sin(float64(i) * 0.01)
	}
	prev := 1.0
	for _, sigma := range []float64{0.01, 0.05, 0.2} {
		b := a.Clone()
		r2 := stats.NewXorShift64(2)
		for i := range b.Data {
			b.Data[i] += sigma * r2.NormFloat64()
		}
		s, err := GlobalSSIM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Fatalf("SSIM did not decrease with noise %v: %v >= %v", sigma, s, prev)
		}
		prev = s
	}
	_ = rng
}

func TestWindowedSSIMBounds(t *testing.T) {
	a := grid.MustNew("a", grid.Float64, 32, 32)
	rng := stats.NewXorShift64(3)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] += 0.05 * rng.NormFloat64()
	}
	s, err := WindowedSSIM(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 1 {
		t.Fatalf("windowed SSIM = %v", s)
	}
	sIdent, _ := WindowedSSIM(a, a.Clone(), 8)
	if math.Abs(sIdent-1) > 1e-12 {
		t.Fatalf("windowed SSIM identical = %v", sIdent)
	}
}

func TestSpectrumDistortionCleanVsNoisy(t *testing.T) {
	a := grid.MustNew("a", grid.Float64, 32, 32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			a.Data[i*32+j] = math.Sin(2*math.Pi*3*float64(j)/32) + 0.5*math.Cos(2*math.Pi*5*float64(i)/32)
		}
	}
	_, rmsSame, err := SpectrumDistortion(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rmsSame > 1e-12 {
		t.Fatalf("identical spectrum distortion = %v", rmsSame)
	}
	b := a.Clone()
	rng := stats.NewXorShift64(4)
	for i := range b.Data {
		b.Data[i] += 0.3 * rng.NormFloat64()
	}
	_, rmsNoisy, err := SpectrumDistortion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rmsNoisy <= rmsSame {
		t.Fatal("noise did not increase spectrum distortion")
	}
}

func TestAccuracyOfEstimate(t *testing.T) {
	// Perfect estimates → error rate 0.
	if e := AccuracyOfEstimate([]float64{1, 2, 3}, []float64{1, 2, 3}); e > 1e-12 {
		t.Fatalf("perfect estimate error = %v", e)
	}
	// A constant multiplicative bias has zero STD of ratios → error 0 (the
	// paper's metric measures consistency, not bias).
	if e := AccuracyOfEstimate([]float64{2, 4, 6}, []float64{1, 2, 3}); e > 1e-12 {
		t.Fatalf("constant-bias error = %v", e)
	}
	// Scattered ratios → positive error below 1.
	e := AccuracyOfEstimate([]float64{1, 2, 3, 4}, []float64{1.2, 1.7, 3.4, 3.7})
	if e <= 0 || e >= 1 {
		t.Fatalf("scattered error = %v", e)
	}
	// Zero estimates are skipped.
	if e := AccuracyOfEstimate([]float64{1, 2}, []float64{0, 2}); e != 0 {
		t.Fatalf("zero-handling error = %v", e)
	}
}
