// Package quality computes the measured (ground-truth) side of the paper's
// post-hoc analysis metrics: MSE/PSNR, SSIM (global and windowed), and
// FFT-based power-spectrum distortion. The ratio-quality model's estimates
// are validated against these.
package quality

import (
	"errors"
	"math"

	"rqm/internal/fft"
	"rqm/internal/grid"
	"rqm/internal/stats"
)

// MSE returns the mean squared error between two equally-sized fields.
func MSE(a, b *grid.Field) (float64, error) {
	if a.Len() != b.Len() {
		return 0, errors.New("quality: field sizes differ")
	}
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return s / float64(a.Len()), nil
}

// PSNR returns the peak signal-to-noise ratio in dB, using the value range
// of the reference field a as the peak (the convention used by SZ and the
// paper). Identical fields return +Inf. A constant reference has zero range,
// so the peak falls back to max(|lo|, |hi|) — the field's magnitude — and to
// 1.0 when the reference is all zeros, keeping the score sensitive to the
// distortion instead of collapsing every comparison to 0 dB.
func PSNR(a, b *grid.Field) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	lo, hi := a.ValueRange()
	peak := hi - lo
	if peak == 0 {
		peak = math.Max(math.Abs(lo), math.Abs(hi))
		if peak == 0 {
			peak = 1
		}
	}
	return 20*math.Log10(peak) - 10*math.Log10(mse), nil
}

// ssimConstants returns the standard C1=(K1·L)², C2=(K2·L)² stabilizers for
// dynamic range L.
func ssimConstants(l float64) (c1, c2 float64) {
	return (0.01 * l) * (0.01 * l), (0.03 * l) * (0.03 * l)
}

// GlobalSSIM computes the structural similarity index over the whole field
// (single window). This is the quantity the paper's Eq. 15–19 derivation
// models.
func GlobalSSIM(a, b *grid.Field) (float64, error) {
	if a.Len() != b.Len() {
		return 0, errors.New("quality: field sizes differ")
	}
	lo, hi := a.ValueRange()
	c1, c2 := ssimConstants(hi - lo)
	return ssimOn(a.Data, b.Data, c1, c2), nil
}

func ssimOn(x, y []float64, c1, c2 float64) float64 {
	mx, vx := stats.MeanVar(x)
	my, vy := stats.MeanVar(y)
	var cov float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
	}
	cov /= float64(len(x))
	num := (2*mx*my + c1) * (2*cov + c2)
	den := (mx*mx + my*my + c1) * (vx + vy + c2)
	if den == 0 {
		return 1
	}
	return num / den
}

// WindowedSSIM computes mean SSIM over non-overlapping windows of the given
// edge (8 is the common choice). Windows are axis-aligned blocks; partial
// edge blocks are included. Constants use the global range of a.
func WindowedSSIM(a, b *grid.Field, edge int) (float64, error) {
	if a.Len() != b.Len() {
		return 0, errors.New("quality: field sizes differ")
	}
	if edge <= 0 {
		edge = 8
	}
	lo, hi := a.ValueRange()
	c1, c2 := ssimConstants(hi - lo)
	blocks := a.Blocks(edge)
	var sum float64
	var bx, by []float64
	for _, blk := range blocks {
		bx = bx[:0]
		by = by[:0]
		a.ForEachInBlock(blk, func(flat int, _ []int) {
			bx = append(bx, a.Data[flat])
			by = append(by, b.Data[flat])
		})
		sum += ssimOn(bx, by, c1, c2)
	}
	return sum / float64(len(blocks)), nil
}

// SpectrumDistortion summarizes how far the decompressed power spectrum
// deviates from the original: it returns the per-shell ratios P_b/P_a and
// the root-mean-square of (ratio − 1) over shells 1..kmax (DC excluded).
func SpectrumDistortion(a, b *grid.Field) (ratios []float64, rms float64, err error) {
	pa, err := fft.PowerSpectrum(a.Data, a.Dims)
	if err != nil {
		return nil, 0, err
	}
	pb, err := fft.PowerSpectrum(b.Data, b.Dims)
	if err != nil {
		return nil, 0, err
	}
	ratios = fft.SpectrumRatio(pa, pb)
	if len(ratios) <= 1 {
		return ratios, 0, nil
	}
	var s float64
	for _, r := range ratios[1:] {
		d := r - 1
		s += d * d
	}
	rms = math.Sqrt(s / float64(len(ratios)-1))
	return ratios, rms, nil
}

// AccuracyOfEstimate implements the paper's Eq. 20 error metric between
// measured values R and estimated values R': E = 1 − (1 + STD(R/R' − 1))⁻¹,
// returned as the *error rate* (the paper reports both; accuracy = 1 − E).
// Pairs where the estimate is zero are skipped.
func AccuracyOfEstimate(measured, estimated []float64) float64 {
	var ratios []float64
	n := len(measured)
	if len(estimated) < n {
		n = len(estimated)
	}
	for i := 0; i < n; i++ {
		if estimated[i] == 0 {
			continue
		}
		ratios = append(ratios, measured[i]/estimated[i]-1)
	}
	if len(ratios) == 0 {
		return 0
	}
	mean, v := stats.MeanVar(ratios)
	_ = mean
	std := math.Sqrt(v)
	return 1 - 1/(1+std)
}
