package residual

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rqm/internal/grid"
)

// FuzzContainer feeds arbitrary bytes through the full read path — index
// scan plus every block decode — and requires typed errors, never a panic.
// Seeds cover valid containers for each backend plus the damage classes the
// scrubber must classify: truncations and bit flips at every layer.
func FuzzContainer(f *testing.F) {
	for _, name := range []string{"huffman", "ans", "lz77"} {
		c, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		orig := make([]float64, 300)
		recon := make([]float64, 300)
		for i := range orig {
			orig[i] = math.Sin(float64(i) / 13)
			recon[i] = orig[i] + 1e-4*math.Cos(float64(i))
		}
		var buf bytes.Buffer
		if _, err := Encode(&buf, c, grid.Float64, orig, recon, []int{128, 128, 44}); err != nil {
			f.Fatal(err)
		}
		good := buf.Bytes()
		f.Add(append([]byte(nil), good...))
		for _, cut := range []int{3, HeaderSize - 1, HeaderSize + 7, len(good) / 2, len(good) - 1} {
			f.Add(append([]byte(nil), good[:cut]...))
		}
		for _, pos := range []int{0, 4, 5, 6, 8, 20, 48, HeaderSize, HeaderSize + 4, HeaderSize + 9, len(good) - 1} {
			b := append([]byte(nil), good...)
			b[pos] ^= 0x40
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("RQRS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := LoadIndex(bytes.NewReader(data))
		if err != nil {
			requireTyped(t, err)
			return
		}
		for _, e := range idx.Blocks {
			if _, err := ReadBlock(bytes.NewReader(data), idx.Header, e); err != nil {
				requireTyped(t, err)
			}
		}
	})
}

func requireTyped(t *testing.T, err error) {
	t.Helper()
	for _, want := range []error{ErrBadMagic, ErrUnsupportedVersion, ErrUnknownBackend, ErrCorrupt, ErrTruncated} {
		if errors.Is(err, want) {
			return
		}
	}
	t.Fatalf("untyped error: %v", err)
}
