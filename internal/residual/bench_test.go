package residual

import (
	"bytes"
	"io"
	"math"
	"testing"

	"rqm/internal/grid"
)

// BenchmarkResidualEncode measures residual synthesis end to end — XOR,
// byte-plane transpose, entropy coding, framing — on a smooth 256Ki-value
// field at the default backend, reported as input bytes/sec.
func BenchmarkResidualEncode(b *testing.B) {
	n := 1 << 18
	orig := make([]float64, n)
	recon := make([]float64, n)
	for i := range orig {
		x := float64(i)
		orig[i] = math.Sin(x/101) + 0.2*math.Cos(x/17)
		recon[i] = orig[i] + 1e-5*math.Sin(x/3)
	}
	blocks := make([]int, 0, n/4096)
	for covered := 0; covered < n; covered += 4096 {
		blocks = append(blocks, 4096)
	}
	c, err := ByName(DefaultBackend)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(io.Discard, c, grid.Float64, orig, recon, blocks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResidualDecode measures the exact-read hot loop: block read,
// CRC, entropy decode, untranspose, XOR apply.
func BenchmarkResidualDecode(b *testing.B) {
	n := 1 << 18
	orig := make([]float64, n)
	recon := make([]float64, n)
	for i := range orig {
		x := float64(i)
		orig[i] = math.Sin(x/101) + 0.2*math.Cos(x/17)
		recon[i] = orig[i] + 1e-5*math.Sin(x/3)
	}
	blocks := make([]int, 0, n/4096)
	for covered := 0; covered < n; covered += 4096 {
		blocks = append(blocks, 4096)
	}
	c, err := ByName(DefaultBackend)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, c, grid.Float64, orig, recon, blocks); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	idx, err := LoadIndex(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(vals, recon)
		r := bytes.NewReader(data)
		start := 0
		for _, e := range idx.Blocks {
			raw, err := ReadBlock(r, idx.Header, e)
			if err != nil {
				b.Fatal(err)
			}
			if err := Apply(vals[start:start+e.Values], raw, grid.Float64); err != nil {
				b.Fatal(err)
			}
			start += e.Values
		}
	}
}
