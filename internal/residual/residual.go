// Package residual implements the lossless residual layer over a lossy
// container: the bitwise difference between the original field and its
// decoded reconstruction, entropy-coded into a self-describing framed file
// stored beside the base container.
//
// The residual is the XOR of the storage-width bit patterns (float32 →
// uint32, float64 → uint64), not a floating-point subtraction: XOR is
// exactly invertible bit for bit, while orig − recon need not round-trip
// under FP arithmetic. When the predictor is good the reconstruction shares
// the sign, exponent, and high mantissa bits of the original, so the XOR is
// mostly zeros in the high bytes — byte-plane transposition groups those
// near-constant planes together, and a generic entropy backend (Huffman,
// tANS, or LZ77 — see Codec) compresses them far below the raw width.
//
// File layout (all integers little-endian):
//
//	offset size
//	0      4   magic "RQRS"
//	4      1   version (1)
//	5      1   backend ID
//	6      1   element width in bytes (4 or 8)
//	7      1   reserved (0)
//	8      8   element count
//	16     32  SHA-256 of the exact original payload bytes
//	48     4   block count
//	52     …   block records
//
// Each block record is a 13-byte header — u32 values, u8 flags, u32 encoded
// bytes, u32 CRC-32 (IEEE) of the payload — followed by the payload. Flag
// bit 0 set means the payload is the raw (untransposed) residual bytes: the
// writer falls back to raw storage when coding expands a block. Otherwise
// the payload is one sub-record per byte plane — [u8 flags][u32 bytes][data]
// — each plane entropy-coded with its own model (or stored raw when it is
// incompressible noise): plane separation is the entire win, because a
// single model over concatenated planes blurs the near-zero high planes
// into the noisy low ones. Blocks align one-to-one with the base
// container's chunk index, so a slice read decodes exactly the blocks
// covering its chunks.
package residual

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"rqm/internal/grid"
)

// Format constants.
const (
	// Magic opens every residual file ("RQRS" little-endian).
	Magic = uint32(0x53525152)
	// Version is the current format version.
	Version = 1
	// HeaderSize is the fixed file header length in bytes.
	HeaderSize = 52
	// blockHeaderSize is the fixed per-block header length in bytes.
	blockHeaderSize = 13
	// FlagRaw marks a block (or a plane sub-record) stored as raw bytes
	// because coding would have expanded it.
	FlagRaw = 1 << 0
	// planeHeaderSize is the per-plane sub-record header length in bytes.
	planeHeaderSize = 5
	// maxBlockBytes bounds a single block payload LoadIndex will accept;
	// far above any real block (chunks are tens of KiB), it stops a corrupt
	// length field from driving a multi-GiB allocation.
	maxBlockBytes = 1 << 30
)

// Typed errors; match with errors.Is.
var (
	// ErrBadMagic marks a file that does not open with the residual magic.
	ErrBadMagic = errors.New("residual: bad magic")
	// ErrUnsupportedVersion marks a file with an unknown format version.
	ErrUnsupportedVersion = errors.New("residual: unsupported version")
	// ErrUnknownBackend marks a backend name or ID outside the registry.
	ErrUnknownBackend = errors.New("residual: unknown backend")
	// ErrCorrupt marks structural damage: inconsistent headers, a CRC trip,
	// or a payload that fails to decode.
	ErrCorrupt = errors.New("residual: corrupt container")
	// ErrTruncated marks a file that ends before its declared content.
	ErrTruncated = errors.New("residual: truncated container")
)

// Header is the residual file's fixed header.
type Header struct {
	// BackendID names the entropy backend every block was coded with.
	BackendID uint8
	// Width is the element storage width in bytes (4 or 8).
	Width int
	// ElemCount is the total element count across all blocks.
	ElemCount int64
	// OriginalHash is the SHA-256 of the exact original payload bytes
	// (little-endian floats at Width, no grid header) — the digest an exact
	// read is verified against before serving.
	OriginalHash [32]byte
	// BlockCount is the number of block records.
	BlockCount int
}

// BlockEntry locates one block record inside the file.
type BlockEntry struct {
	// Offset is the record's byte offset from the file start.
	Offset int64
	// Values is the block's element count.
	Values int
	// Flags is the block's flag byte (FlagRaw).
	Flags uint8
	// EncBytes is the payload length.
	EncBytes int
	// CRC is the CRC-32 (IEEE) of the payload.
	CRC uint32
}

// Index is a parsed residual file skeleton: the header plus every block's
// location, built by one header scan without touching payloads.
type Index struct {
	Header Header
	Blocks []BlockEntry
}

// widthOf maps a grid precision to its storage width in bytes.
func widthOf(prec grid.Precision) (int, error) {
	switch prec.Bits() {
	case 32:
		return 4, nil
	case 64:
		return 8, nil
	}
	return 0, fmt.Errorf("residual: unsupported precision %v", prec)
}

// Compute returns the XOR residual of orig against recon, little-endian at
// the storage width, in plain element order. Applying it to recon with Apply
// reproduces orig's storage bit patterns exactly.
func Compute(orig, recon []float64, prec grid.Precision) ([]byte, error) {
	if len(orig) != len(recon) {
		return nil, fmt.Errorf("residual: %d original values vs %d reconstructed", len(orig), len(recon))
	}
	w, err := widthOf(prec)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(orig)*w)
	if w == 4 {
		for i := range orig {
			x := math.Float32bits(float32(orig[i])) ^ math.Float32bits(float32(recon[i]))
			binary.LittleEndian.PutUint32(out[4*i:], x)
		}
		return out, nil
	}
	for i := range orig {
		x := math.Float64bits(orig[i]) ^ math.Float64bits(recon[i])
		binary.LittleEndian.PutUint64(out[8*i:], x)
	}
	return out, nil
}

// Apply XORs the residual into recon in place, recovering the original
// values at storage precision. res must be len(recon)*width bytes.
func Apply(recon []float64, res []byte, prec grid.Precision) error {
	w, err := widthOf(prec)
	if err != nil {
		return err
	}
	if len(res) != len(recon)*w {
		return fmt.Errorf("%w: %d residual bytes for %d values at width %d", ErrCorrupt, len(res), len(recon), w)
	}
	if w == 4 {
		for i := range recon {
			x := math.Float32bits(float32(recon[i])) ^ binary.LittleEndian.Uint32(res[4*i:])
			recon[i] = float64(math.Float32frombits(x))
		}
		return nil
	}
	for i := range recon {
		x := math.Float64bits(recon[i]) ^ binary.LittleEndian.Uint64(res[8*i:])
		recon[i] = math.Float64frombits(x)
	}
	return nil
}

// OriginalHash is the SHA-256 of vals serialized little-endian at the
// storage width — the payload digest stamped into the file header and the
// manifest, recomputed on every exact read before serving.
func OriginalHash(vals []float64, prec grid.Precision) ([32]byte, error) {
	var zero [32]byte
	w, err := widthOf(prec)
	if err != nil {
		return zero, err
	}
	h := sha256.New()
	var buf [8]byte
	if w == 4 {
		for _, v := range vals {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(float32(v)))
			h.Write(buf[:4])
		}
	} else {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	h.Sum(zero[:0])
	return zero, nil
}

// transpose regroups raw (n elements × width bytes) into byte planes:
// plane p holds byte p of every element. The near-zero high planes of a
// well-predicted residual become long constant runs.
func transpose(raw []byte, width int) []byte {
	n := len(raw) / width
	out := make([]byte, len(raw))
	for p := 0; p < width; p++ {
		plane := out[p*n : (p+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = raw[i*width+p]
		}
	}
	return out
}

// untranspose inverts transpose.
func untranspose(planes []byte, width int) []byte {
	n := len(planes) / width
	out := make([]byte, len(planes))
	for p := 0; p < width; p++ {
		plane := planes[p*n : (p+1)*n]
		for i := 0; i < n; i++ {
			out[i*width+p] = plane[i]
		}
	}
	return out
}

// Encode writes a complete residual file: orig XOR recon, blocked by the
// base container's chunk geometry (blocks[i] values in block i), each block
// byte-plane-transposed and compressed with c (falling back to raw storage
// when coding expands). Returns the byte count written.
func Encode(w io.Writer, c Codec, prec grid.Precision, orig, recon []float64, blocks []int) (int64, error) {
	width, err := widthOf(prec)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, v := range blocks {
		if v <= 0 {
			return 0, fmt.Errorf("residual: block %d has %d values", i, v)
		}
		total += v
	}
	if total != len(orig) {
		return 0, fmt.Errorf("residual: blocks cover %d values, field holds %d", total, len(orig))
	}
	origHash, err := OriginalHash(orig, prec)
	if err != nil {
		return 0, err
	}

	hdr := make([]byte, HeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	hdr[5] = c.ID()
	hdr[6] = byte(width)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(total))
	copy(hdr[16:48], origHash[:])
	binary.LittleEndian.PutUint32(hdr[48:], uint32(len(blocks)))
	written := int64(0)
	nw, err := w.Write(hdr)
	written += int64(nw)
	if err != nil {
		return written, err
	}

	start := 0
	var bh [blockHeaderSize]byte
	for _, v := range blocks {
		raw, err := Compute(orig[start:start+v], recon[start:start+v], prec)
		if err != nil {
			return written, err
		}
		start += v
		payload, err := encodeBlock(c, raw, width)
		if err != nil {
			return written, err
		}
		flags := uint8(0)
		if len(payload) >= len(raw) {
			payload, flags = raw, FlagRaw
		}
		binary.LittleEndian.PutUint32(bh[0:], uint32(v))
		bh[4] = flags
		binary.LittleEndian.PutUint32(bh[5:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(bh[9:], crc32.ChecksumIEEE(payload))
		nw, err = w.Write(bh[:])
		written += int64(nw)
		if err != nil {
			return written, err
		}
		nw, err = w.Write(payload)
		written += int64(nw)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// LoadIndex reads the file header and scans every block header (seeking
// past payloads), validating structure as it goes: magic, version, a
// registered backend, a sane width, and block counts that sum to the
// declared element count. Payload bytes are not read or verified here.
func LoadIndex(r io.ReadSeeker) (*Index, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("residual: %w", err)
	}
	end, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("residual: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("residual: %w", err)
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedVersion, hdr[4])
	}
	if _, err := ByID(hdr[5]); err != nil {
		return nil, err
	}
	if hdr[6] != 4 && hdr[6] != 8 {
		return nil, fmt.Errorf("%w: element width %d", ErrCorrupt, hdr[6])
	}
	if hdr[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved byte", ErrCorrupt)
	}
	elems := binary.LittleEndian.Uint64(hdr[8:])
	if elems == 0 || elems > uint64(math.MaxInt64) {
		return nil, fmt.Errorf("%w: element count %d", ErrCorrupt, elems)
	}
	nblocks := binary.LittleEndian.Uint32(hdr[48:])
	if nblocks == 0 || uint64(nblocks) > elems {
		return nil, fmt.Errorf("%w: %d blocks for %d elements", ErrCorrupt, nblocks, elems)
	}
	idx := &Index{Header: Header{
		BackendID:  hdr[5],
		Width:      int(hdr[6]),
		ElemCount:  int64(elems),
		BlockCount: int(nblocks),
	}}
	copy(idx.Header.OriginalHash[:], hdr[16:48])

	off := int64(HeaderSize)
	var covered int64
	var bh [blockHeaderSize]byte
	for i := 0; i < int(nblocks); i++ {
		if _, err := io.ReadFull(r, bh[:]); err != nil {
			return nil, fmt.Errorf("%w: block %d header: %v", ErrTruncated, i, err)
		}
		e := BlockEntry{
			Offset:   off,
			Values:   int(binary.LittleEndian.Uint32(bh[0:])),
			Flags:    bh[4],
			EncBytes: int(binary.LittleEndian.Uint32(bh[5:])),
			CRC:      binary.LittleEndian.Uint32(bh[9:]),
		}
		if e.Values <= 0 || e.EncBytes <= 0 || e.EncBytes > maxBlockBytes {
			return nil, fmt.Errorf("%w: block %d: %d values, %d bytes", ErrCorrupt, i, e.Values, e.EncBytes)
		}
		if e.Flags&^uint8(FlagRaw) != 0 {
			return nil, fmt.Errorf("%w: block %d: unknown flags %#x", ErrCorrupt, i, e.Flags)
		}
		if e.Flags&FlagRaw != 0 && e.EncBytes != e.Values*idx.Header.Width {
			return nil, fmt.Errorf("%w: block %d: raw payload of %d bytes for %d values", ErrCorrupt, i, e.EncBytes, e.Values)
		}
		next := off + blockHeaderSize + int64(e.EncBytes)
		if next > end {
			return nil, fmt.Errorf("%w: block %d runs past the file end", ErrTruncated, i)
		}
		if _, err := r.Seek(next, io.SeekStart); err != nil {
			return nil, fmt.Errorf("residual: %w", err)
		}
		covered += int64(e.Values)
		off = next
		idx.Blocks = append(idx.Blocks, e)
	}
	if covered != idx.Header.ElemCount {
		return nil, fmt.Errorf("%w: blocks cover %d values, header declares %d", ErrCorrupt, covered, idx.Header.ElemCount)
	}
	if off != end {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last block", ErrCorrupt, end-off)
	}
	return idx, nil
}

// VerifyBlock reads one block's payload and verifies its CRC without
// decoding — the shallow-scrub pass over a residual file.
func VerifyBlock(r io.ReadSeeker, e BlockEntry) error {
	if _, err := r.Seek(e.Offset+blockHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("residual: %w", err)
	}
	payload := make([]byte, e.EncBytes)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("%w: block payload: %v", ErrTruncated, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != e.CRC {
		return fmt.Errorf("%w: block CRC %08x, expected %08x", ErrCorrupt, crc, e.CRC)
	}
	return nil
}

// ReadBlock reads, CRC-verifies, and decodes one block, returning the raw
// residual bytes (e.Values × width, plain element order) ready for Apply.
func ReadBlock(r io.ReadSeeker, hdr Header, e BlockEntry) ([]byte, error) {
	c, err := ByID(hdr.BackendID)
	if err != nil {
		return nil, err
	}
	if _, err := r.Seek(e.Offset+blockHeaderSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("residual: %w", err)
	}
	payload := make([]byte, e.EncBytes)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: block payload: %v", ErrTruncated, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != e.CRC {
		return nil, fmt.Errorf("%w: block CRC %08x, expected %08x", ErrCorrupt, crc, e.CRC)
	}
	if e.Flags&FlagRaw != 0 {
		return payload, nil
	}
	planes, err := decodeBlock(c, payload, e.Values, hdr.Width)
	if err != nil {
		return nil, err
	}
	return untranspose(planes, hdr.Width), nil
}

// encodeBlock codes each byte plane of the transposed residual
// independently, storing a plane raw when its own coding expands it.
func encodeBlock(c Codec, raw []byte, width int) ([]byte, error) {
	planes := transpose(raw, width)
	n := len(raw) / width
	out := make([]byte, 0, len(raw)/4+width*planeHeaderSize)
	for p := 0; p < width; p++ {
		plane := planes[p*n : (p+1)*n]
		enc, err := c.Compress(plane)
		if err != nil {
			return nil, err
		}
		flags := uint8(0)
		if len(enc) >= len(plane) {
			enc, flags = plane, FlagRaw
		}
		out = append(out, flags)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(enc)))
		out = append(out, enc...)
	}
	return out, nil
}

// decodeBlock reverses encodeBlock, returning the transposed plane bytes.
func decodeBlock(c Codec, payload []byte, values, width int) ([]byte, error) {
	planes := make([]byte, 0, values*width)
	pos := 0
	for p := 0; p < width; p++ {
		if len(payload)-pos < planeHeaderSize {
			return nil, fmt.Errorf("%w: plane %d header", ErrTruncated, p)
		}
		flags := payload[pos]
		encLen := int(binary.LittleEndian.Uint32(payload[pos+1:]))
		pos += planeHeaderSize
		if flags&^uint8(FlagRaw) != 0 {
			return nil, fmt.Errorf("%w: plane %d: unknown flags %#x", ErrCorrupt, p, flags)
		}
		if encLen < 0 || len(payload)-pos < encLen {
			return nil, fmt.Errorf("%w: plane %d payload of %d bytes", ErrTruncated, p, encLen)
		}
		enc := payload[pos : pos+encLen]
		pos += encLen
		if flags&FlagRaw != 0 {
			if encLen != values {
				return nil, fmt.Errorf("%w: raw plane %d holds %d bytes for %d values", ErrCorrupt, p, encLen, values)
			}
			planes = append(planes, enc...)
			continue
		}
		plane, err := c.Decompress(enc, values)
		if err != nil {
			return nil, err
		}
		if len(plane) != values {
			return nil, fmt.Errorf("%w: plane %d decoded to %d bytes, want %d", ErrCorrupt, p, len(plane), values)
		}
		planes = append(planes, plane...)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes after plane %d", ErrCorrupt, len(payload)-pos, width-1)
	}
	return planes, nil
}
