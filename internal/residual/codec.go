package residual

import (
	"encoding/binary"
	"fmt"

	"rqm/internal/ans"
	"rqm/internal/bitio"
	"rqm/internal/huffman"
	"rqm/internal/lz77"
)

// Codec is one entropy backend for residual block payloads. Compress is free
// to expand (the container falls back to storing the block raw); Decompress
// must reproduce exactly rawLen bytes or fail typed. Backends are stateless
// and safe for concurrent use.
type Codec interface {
	// Name is the backend's registry name (recorded in manifests).
	Name() string
	// ID is the backend's wire ID (recorded in the container header).
	ID() uint8
	// Compress encodes raw into a self-contained payload.
	Compress(raw []byte) ([]byte, error)
	// Decompress reverses Compress given the original length.
	Decompress(enc []byte, rawLen int) ([]byte, error)
}

// Wire IDs. Frozen: containers carry them, so renumbering is a format break.
const (
	idHuffman = 1
	idANS     = 2
	idLZ77    = 3
)

// DefaultBackend is the backend used when the caller does not pick one.
// tANS over byte planes wins on the near-constant high planes a good
// predictor leaves behind, at table costs amortized per block.
const DefaultBackend = "ans"

var (
	byName = map[string]Codec{}
	byID   = map[uint8]Codec{}
)

func register(c Codec) {
	byName[c.Name()] = c
	byID[c.ID()] = c
}

func init() {
	register(huffCodec{})
	register(ansCodec{})
	register(lzCodec{})
}

// ByName resolves a backend by registry name.
func ByName(name string) (Codec, error) {
	if c, ok := byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownBackend, name)
}

// ByID resolves a backend by wire ID.
func ByID(id uint8) (Codec, error) {
	if c, ok := byID[id]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownBackend, id)
}

// Known reports whether name is a registered backend.
func Known(name string) bool { _, ok := byName[name]; return ok }

// symbolsOf widens bytes to the uint32 symbol alphabet the entropy stages
// share with the quantization pipeline.
func symbolsOf(raw []byte) []uint32 {
	syms := make([]uint32, len(raw))
	for i, b := range raw {
		syms[i] = uint32(b)
	}
	return syms
}

// huffCodec frames a canonical Huffman stream as
// [codebook][u64 LE bit count][bitstream].
type huffCodec struct{}

func (huffCodec) Name() string { return "huffman" }
func (huffCodec) ID() uint8    { return idHuffman }

func (huffCodec) Compress(raw []byte) ([]byte, error) {
	syms := symbolsOf(raw)
	cb, err := huffman.Build(huffman.FreqsOf(syms))
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(raw) / 2)
	if err := cb.Encode(w, syms); err != nil {
		return nil, err
	}
	table := cb.Serialize()
	out := make([]byte, 0, len(table)+8+len(w.Bytes()))
	out = append(out, table...)
	out = binary.LittleEndian.AppendUint64(out, w.Bits())
	return append(out, w.Bytes()...), nil
}

func (huffCodec) Decompress(enc []byte, rawLen int) ([]byte, error) {
	cb, consumed, err := huffman.Parse(enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(enc) < consumed+8 {
		return nil, fmt.Errorf("%w: huffman payload shorter than its bit count", ErrTruncated)
	}
	bits := binary.LittleEndian.Uint64(enc[consumed:])
	stream := enc[consumed+8:]
	if bits > uint64(len(stream))*8 {
		return nil, fmt.Errorf("%w: %d bits declared, %d bytes present", ErrTruncated, bits, len(stream))
	}
	out := make([]uint32, rawLen)
	if err := cb.Decode(bitio.NewReader(stream), out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	raw := make([]byte, rawLen)
	for i, s := range out {
		if s > 0xff {
			return nil, fmt.Errorf("%w: symbol %d outside byte range", ErrCorrupt, s)
		}
		raw[i] = byte(s)
	}
	return raw, nil
}

// ansCodec frames a 2-lane tANS stream as
// [table][u64 LE bit count][2 × u32 LE final state][bitstream].
type ansCodec struct{}

func (ansCodec) Name() string { return "ans" }
func (ansCodec) ID() uint8    { return idANS }

func (ansCodec) Compress(raw []byte) ([]byte, error) {
	syms := symbolsOf(raw)
	t, err := ans.Build(huffman.FreqsOf(syms))
	if err != nil {
		return nil, err
	}
	defer t.Release()
	var lut [256]uint32
	t.FillLUT(lut[:])
	stream, states, bits, err := t.Encode(nil, syms, lut[:])
	if err != nil {
		return nil, err
	}
	table := t.Serialize()
	out := make([]byte, 0, len(table)+16+len(stream))
	out = append(out, table...)
	out = binary.LittleEndian.AppendUint64(out, bits)
	for _, s := range states {
		out = binary.LittleEndian.AppendUint32(out, s)
	}
	return append(out, stream...), nil
}

func (ansCodec) Decompress(enc []byte, rawLen int) ([]byte, error) {
	t, consumed, err := ans.Parse(enc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer t.Release()
	need := consumed + 8 + 4*ans.NumStates
	if len(enc) < need {
		return nil, fmt.Errorf("%w: ans payload shorter than its state block", ErrTruncated)
	}
	bits := binary.LittleEndian.Uint64(enc[consumed:])
	var states [ans.NumStates]uint32
	for i := range states {
		states[i] = binary.LittleEndian.Uint32(enc[consumed+8+4*i:])
	}
	out := make([]uint32, rawLen)
	if err := t.Decode(enc[need:], states, bits, out); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	raw := make([]byte, rawLen)
	for i, s := range out {
		if s > 0xff {
			return nil, fmt.Errorf("%w: symbol %d outside byte range", ErrCorrupt, s)
		}
		raw[i] = byte(s)
	}
	return raw, nil
}

// lzCodec stores the lz77 token stream directly; it is self-delimiting given
// the original length.
type lzCodec struct{}

func (lzCodec) Name() string { return "lz77" }
func (lzCodec) ID() uint8    { return idLZ77 }

func (lzCodec) Compress(raw []byte) ([]byte, error) { return lz77.Encode(raw), nil }

func (lzCodec) Decompress(enc []byte, rawLen int) ([]byte, error) {
	raw, err := lz77.Decode(enc, rawLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return raw, nil
}
