package residual

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rqm/internal/grid"
)

// smoothField synthesizes a predictable field plus its lossy reconstruction:
// recon deviates from orig by a bounded perturbation, the way a bounded
// quantizer does, so the XOR residual has quiet high bytes.
func smoothField(n int, bound float64) (orig, recon []float64) {
	orig = make([]float64, n)
	recon = make([]float64, n)
	for i := range orig {
		x := float64(i)
		orig[i] = math.Sin(x/41) + 0.3*math.Cos(x/7)
		recon[i] = orig[i] + bound*math.Sin(x/3)
	}
	return
}

func TestComputeApplyRoundTrip(t *testing.T) {
	for _, prec := range []grid.Precision{grid.Float32, grid.Float64} {
		orig, recon := smoothField(1000, 1e-3)
		res, err := Compute(orig, recon, prec)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]float64(nil), recon...)
		if err := Apply(got, res, prec); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			want := orig[i]
			if prec == grid.Float32 {
				want = float64(float32(orig[i]))
			}
			if got[i] != want {
				t.Fatalf("prec %v: value %d: got %v, want %v", prec, i, got[i], want)
			}
		}
	}
}

func TestEncodeDecodeAllBackends(t *testing.T) {
	for _, name := range []string{"huffman", "ans", "lz77"} {
		for _, prec := range []grid.Precision{grid.Float32, grid.Float64} {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			orig, recon := smoothField(2000, 1e-4)
			blocks := []int{512, 512, 512, 464}
			var buf bytes.Buffer
			n, err := Encode(&buf, c, prec, orig, recon, blocks)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, prec, err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("%s/%v: Encode reported %d bytes, wrote %d", name, prec, n, buf.Len())
			}

			r := bytes.NewReader(buf.Bytes())
			idx, err := LoadIndex(r)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, prec, err)
			}
			if idx.Header.ElemCount != 2000 || len(idx.Blocks) != 4 {
				t.Fatalf("%s/%v: index %d elems in %d blocks", name, prec, idx.Header.ElemCount, len(idx.Blocks))
			}
			wantHash, err := OriginalHash(orig, prec)
			if err != nil {
				t.Fatal(err)
			}
			if idx.Header.OriginalHash != wantHash {
				t.Fatalf("%s/%v: header original hash differs", name, prec)
			}

			got := append([]float64(nil), recon...)
			start := 0
			for i, e := range idx.Blocks {
				raw, err := ReadBlock(r, idx.Header, e)
				if err != nil {
					t.Fatalf("%s/%v: block %d: %v", name, prec, i, err)
				}
				if err := Apply(got[start:start+e.Values], raw, prec); err != nil {
					t.Fatal(err)
				}
				start += e.Values
			}
			gotHash, err := OriginalHash(got, prec)
			if err != nil {
				t.Fatal(err)
			}
			if gotHash != wantHash {
				t.Fatalf("%s/%v: reconstructed payload hash differs from original", name, prec)
			}
		}
	}
}

// TestCompressionWin pins the point of the layer: on a smooth well-predicted
// field the coded residual lands well under the raw payload size.
func TestCompressionWin(t *testing.T) {
	orig, recon := smoothField(1<<15, 1e-7)
	c, err := ByName(DefaultBackend)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Encode(&buf, c, grid.Float64, orig, recon, []int{1 << 15}); err != nil {
		t.Fatal(err)
	}
	raw := len(orig) * 8
	if buf.Len() >= raw*60/100 {
		t.Fatalf("residual %d bytes, want < 60%% of raw %d", buf.Len(), raw)
	}
}

// TestRawFallback forces incompressible residuals and checks the writer
// stores them raw instead of expanded.
func TestRawFallback(t *testing.T) {
	n := 512
	orig := make([]float64, n)
	recon := make([]float64, n)
	// Fully random finite bit patterns (one exponent bit cleared so no
	// NaN/Inf appears): the XOR residual is noise in every byte plane.
	var seed uint64
	next := func() uint64 { // splitmix64: no lane correlation, unlike an LCG
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range orig {
		orig[i] = math.Float64frombits(next() &^ (1 << 62))
		recon[i] = math.Float64frombits(next() &^ (1 << 62))
	}
	c, _ := ByName("lz77")
	var buf bytes.Buffer
	if _, err := Encode(&buf, c, grid.Float64, orig, recon, []int{n}); err != nil {
		t.Fatal(err)
	}
	idx, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Blocks[0].Flags&FlagRaw == 0 {
		t.Fatal("incompressible block was not stored raw")
	}
	raw, err := ReadBlock(bytes.NewReader(buf.Bytes()), idx.Header, idx.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), recon...)
	if err := Apply(got, raw, grid.Float64); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("raw block round trip: value %d differs", i)
		}
	}
}

func TestTypedErrors(t *testing.T) {
	orig, recon := smoothField(256, 1e-4)
	c, _ := ByName("ans")
	var buf bytes.Buffer
	if _, err := Encode(&buf, c, grid.Float64, orig, recon, []int{128, 128}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mut func(b []byte)) error {
		b := append([]byte(nil), good...)
		mut(b)
		idx, err := LoadIndex(bytes.NewReader(b))
		if err != nil {
			return err
		}
		for _, e := range idx.Blocks {
			if _, err := ReadBlock(bytes.NewReader(b), idx.Header, e); err != nil {
				return err
			}
		}
		return nil
	}

	if err := corrupt(func(b []byte) { b[0] ^= 0xff }); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic flip: %v, want ErrBadMagic", err)
	}
	if err := corrupt(func(b []byte) { b[4] = 9 }); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("version bump: %v, want ErrUnsupportedVersion", err)
	}
	if err := corrupt(func(b []byte) { b[5] = 0x7f }); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("backend id: %v, want ErrUnknownBackend", err)
	}
	if err := corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }); err == nil ||
		(!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated)) {
		t.Fatalf("payload flip: %v, want typed corruption", err)
	}
	// Truncation at every boundary class.
	for _, cut := range []int{HeaderSize - 1, HeaderSize + 5, len(good) - 1} {
		b := good[:cut]
		idx, err := LoadIndex(bytes.NewReader(b))
		if err == nil {
			for _, e := range idx.Blocks {
				if _, err = ReadBlock(bytes.NewReader(b), idx.Header, e); err != nil {
					break
				}
			}
		}
		if err == nil || (!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt)) {
			t.Fatalf("truncation at %d: %v, want typed error", cut, err)
		}
	}
}

func TestBackendRegistry(t *testing.T) {
	if !Known("ans") || !Known("huffman") || !Known("lz77") || Known("zstd") {
		t.Fatal("registry membership wrong")
	}
	if _, err := ByName("zstd"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("ByName(zstd): %v, want ErrUnknownBackend", err)
	}
	if _, err := ByID(0); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("ByID(0): %v, want ErrUnknownBackend", err)
	}
	for _, name := range []string{"huffman", "ans", "lz77"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ByID(c.ID())
		if err != nil || back.Name() != name {
			t.Fatalf("ID round trip for %s: %v", name, err)
		}
	}
}
