// Package bitio provides MSB-first bit-granular writers and readers over
// byte buffers. It is the substrate for the Huffman coders: codes are
// written most-significant-bit first so that canonical Huffman prefixes
// sort lexicographically in the bit stream.
//
// # Bitstream invariants
//
// Every consumer of these streams — the serial Huffman decoder, the
// interleaved decoder's inline reader states, and the container fuzzers —
// relies on the following contracts:
//
//   - Bit order. WriteBits emits the low `width` bits of v starting with
//     the most significant; a stream written as WriteBits(a, la),
//     WriteBits(b, lb) reads back with the bits of a strictly before the
//     bits of b. width must be in [0, 57]: wider fields are split by the
//     caller (the 57-bit bound keeps the accumulator shift-safe).
//
//   - Padding. Writer.Bytes flushes any partial final byte zero-padded on
//     the right (toward the LSB). Padding is only ever zeros and only ever
//     shorter than one byte, so a decoder that knows the symbol count can
//     always distinguish real data from padding; decoders that match codes
//     in the tail must verify the match fits in the real bits that remain
//     (see PeekBits). Writer.Bits reports written bits excluding padding.
//
//   - PeekBits contract. PeekBits(width) returns the next bits zero-padded
//     on the right when fewer than `width` remain, together with `avail`,
//     the count of real (unpadded) bits in the result. A table-driven
//     decoder must reject a code of length L when L > avail — a match that
//     extends into padding is not a match. Skip tolerates consuming into
//     the zero padding only within the final byte; skipping further is a
//     contract violation and errors.
//
//   - Truncation. All reads past the end of real data return errors
//     wrapping ErrUnexpectedEOF; no read panics and no read goes out of
//     bounds, whatever the input bytes.
package bitio
