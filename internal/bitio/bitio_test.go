package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.Bits(), uint64(len(pattern)); got != want {
		t.Fatalf("Bits() = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	w := NewWriter(16)
	vals := []struct {
		v     uint64
		width uint
	}{
		{0x1, 1}, {0x3, 2}, {0x7F, 7}, {0xABC, 12}, {0xDEADBEEF, 32},
		{0x1FFFFFFFFFFFFF, 53}, {0, 5}, {0x15, 5},
	}
	for _, v := range vals {
		w.WriteBits(v.v, v.width)
	}
	r := NewReader(w.Bytes())
	for i, v := range vals {
		got, err := r.ReadBits(v.width)
		if err != nil {
			t.Fatalf("ReadBits %d: %v", i, err)
		}
		if got != v.v&((1<<v.width)-1) {
			t.Fatalf("value %d = %#x, want %#x", i, got, v.v)
		}
	}
}

func TestWriteUint64RoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x0123456789ABCDEF, 1 << 63}
	for _, v := range vals {
		w.WriteUint64(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUint64()
		if err != nil {
			t.Fatalf("ReadUint64 %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("uint64 %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatalf("ReadBits(3): %v", err)
	}
	// 5 bits of padding remain in the final byte; then EOF.
	if _, err := r.ReadBits(6); err != ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestPeekSkip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011001, 7)
	w.WriteBits(0b11110000, 8)
	r := NewReader(w.Bytes())
	v, ok := r.Peek(7)
	if !ok || v != 0b1011001 {
		t.Fatalf("Peek(7) = %#b ok=%v", v, ok)
	}
	if err := r.Skip(7); err != nil {
		t.Fatalf("Skip: %v", err)
	}
	got, err := r.ReadBits(8)
	if err != nil || got != 0b11110000 {
		t.Fatalf("ReadBits(8) = %#b err=%v", got, err)
	}
}

func TestPeekAtEndZeroPads(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes())
	// One byte in the buffer: bits 101 followed by 5 zero-pad bits. A peek of
	// 12 must left-align those 8 real bits and pad with zeros.
	v, ok := r.Peek(12)
	if !ok {
		t.Fatal("Peek at start reported no data")
	}
	if v != 0b101000000000 {
		t.Fatalf("Peek(12) = %012b, want 101000000000", v)
	}
}

func TestPeekBitsReportsAvail(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes())
	// One byte in the buffer (3 real bits + 5 pad): mid-stream, avail ==
	// width; past the last byte, avail is what remains, zero-padded right.
	v, avail := r.PeekBits(6)
	if avail != 6 || v != 0b101000 {
		t.Fatalf("PeekBits(6) = %06b avail=%d, want 101000 avail=6", v, avail)
	}
	if err := r.Skip(6); err != nil {
		t.Fatal(err)
	}
	v, avail = r.PeekBits(6)
	if avail != 2 || v != 0 {
		t.Fatalf("PeekBits(6) near end = %06b avail=%d, want 0 avail=2", v, avail)
	}
	if err := r.Skip(2); err != nil {
		t.Fatal(err)
	}
	if _, avail = r.PeekBits(6); avail != 0 {
		t.Fatalf("PeekBits past end reports avail=%d, want 0", avail)
	}
}

func TestResetReuse(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	_ = w.Bytes()
	w.Reset()
	if w.Bits() != 0 {
		t.Fatalf("Bits after Reset = %d", w.Bits())
	}
	w.WriteBits(0xA, 4)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0xA0 {
		t.Fatalf("after reset got % x", b)
	}
}

func TestBitsReadAccounting(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xABCD, 16)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(11); err != nil {
		t.Fatal(err)
	}
	if r.BitsRead() != 16 {
		t.Fatalf("BitsRead = %d, want 16", r.BitsRead())
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%64 + 1
		widths := make([]uint, count)
		vals := make([]uint64, count)
		w := NewWriter(0)
		for i := 0; i < count; i++ {
			widths[i] = uint(rng.Intn(57) + 1)
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < count; i++ {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 13)
	}
}
