package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of stream")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits pending, left-aligned within the low `n` bits
	n    uint   // number of pending bits in cur (0..63)
	bits uint64 // total bits written
}

// NewWriter returns a Writer with capacity pre-allocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits writes the low `width` bits of v, most significant bit first.
// width must be in [0, 57]; wider values must be split by the caller.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 57 {
		panic(fmt.Sprintf("bitio: WriteBits width %d > 57", width))
	}
	v &= (1 << width) - 1
	w.cur = w.cur<<width | v
	w.n += width
	w.bits += uint64(width)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.cur>>w.n))
	}
}

// WriteBit writes a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteUint64 writes a full 64-bit value MSB-first.
func (w *Writer) WriteUint64(v uint64) {
	w.WriteBits(v>>32, 32)
	w.WriteBits(v&0xFFFFFFFF, 32)
}

// Bits reports the total number of bits written so far.
func (w *Writer) Bits() uint64 { return w.bits }

// Bytes flushes any partial byte (zero-padded on the right) and returns the
// underlying buffer. The Writer remains usable; further writes continue after
// the padding, so call Bytes only when the stream is complete.
func (w *Writer) Bytes() []byte {
	if w.n > 0 {
		pad := 8 - w.n
		w.cur <<= pad
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.n = 0
	}
	return w.buf
}

// Reset truncates the writer to empty, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.n = 0
	w.bits = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // bit accumulator, left-filled from buf
	n    uint   // valid bits in cur
	read uint64 // total bits consumed
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// fill tops up the accumulator so that at least `need` bits are available,
// or returns false if the stream is exhausted first.
func (r *Reader) fill(need uint) bool {
	for r.n < need {
		if r.pos >= len(r.buf) {
			return false
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	return true
}

// ReadBits reads `width` bits MSB-first. width must be in [0, 57].
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width == 0 {
		return 0, nil
	}
	if width > 57 {
		panic(fmt.Sprintf("bitio: ReadBits width %d > 57", width))
	}
	if !r.fill(width) {
		return 0, ErrUnexpectedEOF
	}
	r.n -= width
	v := r.cur >> r.n & ((1 << width) - 1)
	r.read += uint64(width)
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadUint64 reads a full 64-bit value MSB-first.
func (r *Reader) ReadUint64() (uint64, error) {
	hi, err := r.ReadBits(32)
	if err != nil {
		return 0, err
	}
	lo, err := r.ReadBits(32)
	if err != nil {
		return 0, err
	}
	return hi<<32 | lo, nil
}

// Peek returns up to `width` upcoming bits without consuming them. If fewer
// bits remain, the result is left-aligned as if the stream were zero-padded;
// ok reports whether at least one real bit remains.
func (r *Reader) Peek(width uint) (v uint64, ok bool) {
	if width == 0 || width > 57 {
		panic(fmt.Sprintf("bitio: Peek width %d out of range", width))
	}
	r.fill(width) // best effort
	if r.n >= width {
		return r.cur >> (r.n - width) & ((1 << width) - 1), true
	}
	if r.n == 0 {
		return 0, false
	}
	// Zero-pad the tail.
	return r.cur << (width - r.n) & ((1 << width) - 1), true
}

// PeekBits returns the next `width` bits without consuming them, zero-padded
// on the right when fewer remain, and reports how many real bits are
// available (avail < width only at the end of the stream). Unlike Peek, the
// caller can tell exactly how many of the returned bits are real, which lets
// table-driven decoders reject matches that would extend into the padding.
func (r *Reader) PeekBits(width uint) (v uint64, avail uint) {
	if width == 0 || width > 57 {
		panic(fmt.Sprintf("bitio: PeekBits width %d out of range", width))
	}
	r.fill(width) // best effort
	if r.n >= width {
		return r.cur >> (r.n - width) & ((1 << width) - 1), width
	}
	if r.n == 0 {
		return 0, 0
	}
	return r.cur << (width - r.n) & ((1 << width) - 1), r.n
}

// Skip consumes `width` bits previously examined with Peek. It is the
// caller's responsibility not to skip past the padded end of stream.
func (r *Reader) Skip(width uint) error {
	if !r.fill(width) {
		// Allow skipping into zero padding at most within the final byte.
		if r.n == 0 {
			return ErrUnexpectedEOF
		}
		r.read += uint64(r.n)
		r.n = 0
		return nil
	}
	r.n -= width
	r.read += uint64(width)
	return nil
}

// BitsRead reports the number of bits consumed so far (excluding padding
// skipped at end of stream).
func (r *Reader) BitsRead() uint64 { return r.read }
