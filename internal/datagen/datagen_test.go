package datagen

import (
	"math"
	"testing"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

func TestSpectralFieldRangeAndSmoothness(t *testing.T) {
	f := SpectralField("x", grid.Float32, []int{32, 32}, 3.0, -5, 5, 1)
	lo, hi := f.ValueRange()
	if math.Abs(lo+5) > 1e-9 || math.Abs(hi-5) > 1e-9 {
		t.Fatalf("range = [%v, %v], want [-5, 5]", lo, hi)
	}
	// Smoothness: mean |neighbor difference| must be far below the range for
	// slope 3 (a smooth field).
	var sum float64
	var n int
	for i := 0; i < 32; i++ {
		for j := 1; j < 32; j++ {
			sum += math.Abs(f.At(i, j) - f.At(i, j-1))
			n++
		}
	}
	if avg := sum / float64(n); avg > 1.0 {
		t.Fatalf("slope-3 field too rough: mean step %v over range 10", avg)
	}
}

func TestSpectralFieldSlopeOrdersRoughness(t *testing.T) {
	rough := SpectralField("r", grid.Float32, []int{64, 64}, 0.5, -1, 1, 2)
	smooth := SpectralField("s", grid.Float32, []int{64, 64}, 3.5, -1, 1, 2)
	step := func(f *grid.Field) float64 {
		var s float64
		var n int
		for i := 0; i < 64; i++ {
			for j := 1; j < 64; j++ {
				s += math.Abs(f.At(i, j) - f.At(i, j-1))
				n++
			}
		}
		return s / float64(n)
	}
	if step(smooth) >= step(rough) {
		t.Fatalf("smooth field rougher than rough field: %v vs %v", step(smooth), step(rough))
	}
}

func TestSpectralFieldDeterministic(t *testing.T) {
	a := SpectralField("a", grid.Float32, []int{16, 16}, 2, 0, 1, 7)
	b := SpectralField("a", grid.Float32, []int{16, 16}, 2, 0, 1, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different fields")
		}
	}
	c := SpectralField("a", grid.Float32, []int{16, 16}, 2, 0, 1, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestLogNormalHeavyTail(t *testing.T) {
	f := LogNormalField("d", grid.Float32, []int{24, 24, 24}, 2.2, 3.0, 3)
	m := stats.Summary(f.Data)
	if m.Min() <= 0 {
		t.Fatalf("lognormal min = %v, want > 0", m.Min())
	}
	med := stats.Quantile(f.Data, 0.5)
	if m.Max()/med < 10 {
		t.Fatalf("dynamic range max/median = %v, want heavy tail", m.Max()/med)
	}
}

func TestBrownian1DIncrementsGaussian(t *testing.T) {
	f := Brownian1D("b", 50000, 0.5, 11)
	var m stats.Moments
	for i := 1; i < f.Len(); i++ {
		m.Add(f.Data[i] - f.Data[i-1])
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Fatalf("increment mean = %v", m.Mean())
	}
	if math.Abs(m.StdDev()-0.5) > 0.02 {
		t.Fatalf("increment std = %v, want 0.5", m.StdDev())
	}
}

func TestParticlePositionsInBox(t *testing.T) {
	f := ParticlePositions1D("p", 20000, 128, 16, 5)
	lo, hi := f.ValueRange()
	if lo < 0 || hi > 128 {
		t.Fatalf("positions outside box: [%v, %v]", lo, hi)
	}
}

func TestParticleVelocitiesMixture(t *testing.T) {
	f := ParticleVelocities1D("v", 100000, 6)
	m := stats.Summary(f.Data)
	// Mixture std: sqrt(0.8*200^2 + 0.2*1200^2) ≈ 565.
	if m.StdDev() < 400 || m.StdDev() > 750 {
		t.Fatalf("velocity std = %v", m.StdDev())
	}
	if math.Abs(m.Mean()) > 20 {
		t.Fatalf("velocity mean = %v", m.Mean())
	}
}

func TestOrbital3DSmooth(t *testing.T) {
	f := Orbital3D("o", []int{12, 12, 20}, 4, 9)
	m := stats.Summary(f.Data)
	if m.Range() == 0 {
		t.Fatal("orbital field is constant")
	}
}

func TestPhotonPanelsPeaks(t *testing.T) {
	f := PhotonPanels4D("x", []int{2, 2, 24, 24}, 4)
	m := stats.Summary(f.Data)
	// Background pedestal ~30-40; peaks push max into the hundreds.
	if m.Max() < 150 {
		t.Fatalf("no bright peaks: max = %v", m.Max())
	}
	med := stats.Quantile(f.Data, 0.5)
	if med < 10 || med > 60 {
		t.Fatalf("pedestal median = %v", med)
	}
}

func TestWaveSnapshotsPropagate(t *testing.T) {
	snaps := WaveSnapshots("w", []int{16, 20, 20}, 60, 20, 13)
	if len(snaps) < 2 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for i, s := range snaps {
		m := stats.Summary(s.Data)
		if m.Range() == 0 {
			t.Fatalf("snapshot %d is all zeros", i)
		}
		if math.IsNaN(m.Mean()) || math.IsInf(m.Max(), 0) {
			t.Fatalf("snapshot %d unstable: mean=%v max=%v", i, m.Mean(), m.Max())
		}
	}
	// Energy must spread: later snapshots have wider support.
	support := func(f *grid.Field) int {
		_, hi := f.ValueRange()
		thresh := hi * 1e-6
		n := 0
		for _, v := range f.Data {
			if math.Abs(v) > thresh {
				n++
			}
		}
		return n
	}
	if support(snaps[len(snaps)-1]) <= support(snaps[0]) {
		t.Fatal("wavefield did not spread over time")
	}
}

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range Names() {
		ds, err := Generate(name, 42, Tiny)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Fields) == 0 {
			t.Fatalf("%s: no fields", name)
		}
		if ds.TotalBytes() <= 0 {
			t.Fatalf("%s: TotalBytes = %d", name, ds.TotalBytes())
		}
		for _, f := range ds.Fields {
			if f.Len() == 0 {
				t.Fatalf("%s/%s: empty", name, f.Name)
			}
			for _, v := range f.Data[:min(1000, f.Len())] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: non-finite value", name, f.Name)
				}
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 1, Tiny); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGenerateField(t *testing.T) {
	f, err := GenerateField("cesm/TS", 1, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "cesm/TS" {
		t.Fatalf("field name = %q", f.Name)
	}
	first, err := GenerateField("cesm", 1, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if first.Name != "cesm/TS" {
		t.Fatalf("bare name gave %q", first.Name)
	}
	if _, err := GenerateField("cesm/NOPE", 1, Tiny); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
