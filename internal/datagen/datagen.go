// Package datagen synthesizes stand-ins for the ten SDRBench datasets the
// paper evaluates (Table I). Real CESM/Nyx/HACC/... archives are multi-GB and
// not redistributable here, so each generator reproduces the statistical
// character that drives the ratio-quality model: dimensionality, smoothness
// (spectral slope), dynamic range, and noise floor. The RTM stand-in is a
// genuine finite-difference acoustic wave-equation solver, because RTM
// snapshots *are* wavefields. See DESIGN.md §15 for the substitution notes.
package datagen

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"rqm/internal/fft"
	"rqm/internal/grid"
	"rqm/internal/stats"
)

// Scale selects the synthesized dataset size. Tests use Tiny; experiments use
// Small or Medium. Paper-scale (GBs) is deliberately not offered.
type Scale int

const (
	// Tiny is for unit tests (≈10k–100k values).
	Tiny Scale = iota
	// Small is the default experiment size (≈0.2–2M values).
	Small
	// Medium is for benchmark runs that want more stable statistics.
	Medium
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// SpectralField synthesizes a Gaussian random field with isotropic power
// spectrum P(k) ∝ k^(-slope) via inverse-FFT of white noise shaped in
// k-space. Larger slopes give smoother fields (easier prediction); slope 0
// is white noise. The field is normalized to zero mean, unit variance, then
// affinely mapped to [lo, hi].
func SpectralField(name string, prec grid.Precision, dims []int, slope float64, lo, hi float64, seed uint64) *grid.Field {
	n := 1
	for _, d := range dims {
		n *= d
	}
	rng := stats.NewXorShift64(seed)
	spec := make([]complex128, n)
	coord := make([]int, len(dims))
	for idx := 0; idx < n; idx++ {
		rem := idx
		for ax := len(dims) - 1; ax >= 0; ax-- {
			coord[ax] = rem % dims[ax]
			rem /= dims[ax]
		}
		var k2 float64
		for ax, c := range coord {
			k := c
			if k > dims[ax]/2 {
				k -= dims[ax]
			}
			kf := float64(k) / float64(dims[ax])
			k2 += kf * kf
		}
		if k2 == 0 {
			spec[idx] = 0 // no DC: keep zero mean
			continue
		}
		amp := math.Pow(k2, -slope/4) // |F| ∝ (k^2)^(-slope/4) = k^(-slope/2)
		phase := 2 * math.Pi * rng.Float64()
		mag := amp * math.Sqrt(-2*math.Log(math.Max(rng.Float64(), 1e-12)))
		spec[idx] = complex(mag, 0) * cmplx.Exp(complex(0, phase))
	}
	// Inverse transform axis by axis: reuse ForwardND on the conjugate
	// (inverse DFT = conj(forward(conj(x)))/N).
	for i := range spec {
		spec[i] = cmplx.Conj(spec[i])
	}
	out, err := fft.ForwardND(spec, dims)
	if err != nil {
		panic(err) // dims are internally consistent
	}
	field := grid.MustNew(name, prec, dims...)
	for i := range out {
		field.Data[i] = real(cmplx.Conj(out[i])) / float64(n)
	}
	normalizeTo(field.Data, lo, hi)
	return field
}

// normalizeTo maps data affinely so its min/max match [lo, hi]. Degenerate
// (constant) inputs map to lo.
func normalizeTo(data []float64, lo, hi float64) {
	mn, mx := stats.MinMax(data)
	span := mx - mn
	if span == 0 {
		for i := range data {
			data[i] = lo
		}
		return
	}
	scale := (hi - lo) / span
	for i := range data {
		data[i] = lo + (data[i]-mn)*scale
	}
}

// LogNormalField exponentiates a spectral field to produce the heavy-tailed,
// high-dynamic-range distribution typical of cosmological density (Nyx dark
// matter density spans many orders of magnitude).
func LogNormalField(name string, prec grid.Precision, dims []int, slope, sigma float64, seed uint64) *grid.Field {
	f := SpectralField(name, prec, dims, slope, -1, 1, seed)
	for i, v := range f.Data {
		f.Data[i] = math.Exp(sigma * v)
	}
	return f
}

// MixedField composes a smooth and a turbulent regime in one field: the
// first half along the outer axis is a steep-spectrum (smooth) random field,
// the second half a shallow-spectrum one with added white noise. It is the
// canonical workload for spatially adaptive error bounds — a single global
// bound must satisfy the turbulent half and therefore over-spends on the
// smooth half, while a per-region solve does not. Rank must be at least 1
// and the outer dimension at least 2.
func MixedField(name string, prec grid.Precision, dims []int, seed uint64) *grid.Field {
	smooth := SpectralField(name, prec, dims, 4.0, -1, 1, seed)
	rough := SpectralField(name, prec, dims, 0.6, -1, 1, seed+1)
	rng := stats.NewXorShift64(seed + 2)
	n := smooth.Len()
	inner := n / dims[0]
	half := (dims[0] / 2) * inner
	for i := half; i < n; i++ {
		smooth.Data[i] = rough.Data[i] + 0.5*rng.NormFloat64()
	}
	normalizeTo(smooth.Data, -1, 1)
	return smooth
}

// Brownian1D generates a Brownian random walk, matching the paper's "Brown"
// synthetic pressure dataset (1D Brownian data).
func Brownian1D(name string, n int, step float64, seed uint64) *grid.Field {
	f := grid.MustNew(name, grid.Float64, n)
	rng := stats.NewXorShift64(seed)
	x := 0.0
	for i := 0; i < n; i++ {
		x += step * rng.NormFloat64()
		f.Data[i] = x
	}
	return f
}

// ParticlePositions1D emulates a HACC-style particle coordinate stream:
// particles clustered around halo centers inside a periodic box, stored in
// arbitrary (id) order, which is what makes HACC coordinates hard to predict
// spatially but gives 1D streams a diffuse, noise-like error distribution.
func ParticlePositions1D(name string, n int, box float64, nHalos int, seed uint64) *grid.Field {
	f := grid.MustNew(name, grid.Float32, n)
	rng := stats.NewXorShift64(seed)
	centers := make([]float64, nHalos)
	for i := range centers {
		centers[i] = box * rng.Float64()
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 {
			c := centers[rng.Intn(nHalos)]
			v := c + 0.01*box*rng.NormFloat64()
			// Wrap into the box.
			v = math.Mod(v, box)
			if v < 0 {
				v += box
			}
			f.Data[i] = v
		} else {
			f.Data[i] = box * rng.Float64()
		}
	}
	return f
}

// ParticleVelocities1D emulates HACC velocity components: a Gaussian mixture
// of a cold bulk flow plus hot cluster members.
func ParticleVelocities1D(name string, n int, seed uint64) *grid.Field {
	f := grid.MustNew(name, grid.Float32, n)
	rng := stats.NewXorShift64(seed)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.8 {
			f.Data[i] = 200 * rng.NormFloat64()
		} else {
			f.Data[i] = 1200 * rng.NormFloat64()
		}
	}
	return f
}

// Orbital3D emulates QMCPACK einspline orbital data: smooth oscillatory
// wavefunctions — sums of Gaussian envelopes times plane waves.
func Orbital3D(name string, dims []int, nCenters int, seed uint64) *grid.Field {
	f := grid.MustNew(name, grid.Float32, dims...)
	rng := stats.NewXorShift64(seed)
	type center struct {
		x, y, z float64
		s       float64
		kx, ky  float64
		kz      float64
		amp     float64
	}
	cs := make([]center, nCenters)
	for i := range cs {
		cs[i] = center{
			x: rng.Float64(), y: rng.Float64(), z: rng.Float64(),
			s:   0.05 + 0.15*rng.Float64(),
			kx:  4 * math.Pi * (rng.Float64() - 0.5) * 4,
			ky:  4 * math.Pi * (rng.Float64() - 0.5) * 4,
			kz:  4 * math.Pi * (rng.Float64() - 0.5) * 4,
			amp: 0.5 + rng.Float64(),
		}
	}
	d0, d1, d2 := dims[0], dims[1], dims[2]
	idx := 0
	for i := 0; i < d0; i++ {
		x := float64(i) / float64(d0)
		for j := 0; j < d1; j++ {
			y := float64(j) / float64(d1)
			for k := 0; k < d2; k++ {
				z := float64(k) / float64(d2)
				var v float64
				for _, c := range cs {
					dx, dy, dz := x-c.x, y-c.y, z-c.z
					r2 := dx*dx + dy*dy + dz*dz
					v += c.amp * math.Exp(-r2/(2*c.s*c.s)) * math.Cos(c.kx*dx+c.ky*dy+c.kz*dz)
				}
				f.Data[idx] = v
				idx++
			}
		}
	}
	return f
}

// PhotonPanels4D emulates EXAFEL detector panels: a 4D stack
// (events × panels × height × width) of noisy backgrounds with Bragg-like
// Gaussian peaks. High noise floor keeps compressibility low, as with real
// instrument data.
func PhotonPanels4D(name string, dims []int, seed uint64) *grid.Field {
	f := grid.MustNew(name, grid.Float32, dims...)
	rng := stats.NewXorShift64(seed)
	ev, pn, h, w := dims[0], dims[1], dims[2], dims[3]
	for e := 0; e < ev; e++ {
		for p := 0; p < pn; p++ {
			base := (e*pn + p) * h * w
			// Background pedestal with per-pixel Poisson-ish noise.
			pedestal := 30 + 10*rng.Float64()
			for i := 0; i < h*w; i++ {
				f.Data[base+i] = pedestal + 5*rng.NormFloat64()
			}
			// A handful of bright peaks.
			nPeaks := 2 + rng.Intn(5)
			for q := 0; q < nPeaks; q++ {
				cy, cx := rng.Intn(h), rng.Intn(w)
				amp := 200 + 800*rng.Float64()
				sig := 1 + 2*rng.Float64()
				for dy := -6; dy <= 6; dy++ {
					for dx := -6; dx <= 6; dx++ {
						y, x := cy+dy, cx+dx
						if y < 0 || y >= h || x < 0 || x >= w {
							continue
						}
						r2 := float64(dy*dy + dx*dx)
						f.Data[base+y*w+x] += amp * math.Exp(-r2/(2*sig*sig))
					}
				}
			}
		}
	}
	return f
}

// WaveSnapshots runs a 3D acoustic wave equation (leapfrog FDTD with a
// Ricker-wavelet point source and a damping sponge boundary) and returns the
// pressure field every `every` steps after the source has rung in. This is a
// faithful small-scale stand-in for RTM forward-modeling snapshots.
func WaveSnapshots(name string, dims []int, steps, every int, seed uint64) []*grid.Field {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	n := d0 * d1 * d2
	prev := make([]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	rng := stats.NewXorShift64(seed)
	// Heterogeneous velocity model: layered with smooth lateral variation.
	c2 := make([]float64, n)
	for i := 0; i < d0; i++ {
		layerV := 0.30 + 0.25*float64(i)/float64(d0) + 0.05*math.Sin(7*float64(i)/float64(d0))
		for j := 0; j < d1; j++ {
			for k := 0; k < d2; k++ {
				v := layerV * (1 + 0.05*math.Sin(3*float64(j)/float64(d1)+2*float64(k)/float64(d2)))
				c2[(i*d1+j)*d2+k] = v * v
			}
		}
	}
	// Source position: near the "surface", jittered per seed.
	sx := 2 + rng.Intn(3)
	sy := d1/2 + rng.Intn(5) - 2
	sz := d2/2 + rng.Intn(5) - 2
	src := (sx*d1+sy)*d2 + sz
	const fpeak = 0.06 // cycles per step
	ricker := func(t int) float64 {
		arg := math.Pi * fpeak * (float64(t) - 1.5/fpeak)
		a := arg * arg
		return (1 - 2*a) * math.Exp(-a)
	}
	sponge := 6
	damp := func(i, d int) float64 {
		e := i
		if d-1-i < e {
			e = d - 1 - i
		}
		if e >= sponge {
			return 1
		}
		x := float64(sponge-e) / float64(sponge)
		return 1 - 0.08*x*x
	}
	var out []*grid.Field
	snap := 0
	for t := 0; t < steps; t++ {
		for i := 1; i < d0-1; i++ {
			for j := 1; j < d1-1; j++ {
				row := (i*d1 + j) * d2
				up := ((i-1)*d1 + j) * d2
				dn := ((i+1)*d1 + j) * d2
				lf := (i*d1 + j - 1) * d2
				rt := (i*d1 + j + 1) * d2
				for k := 1; k < d2-1; k++ {
					lap := cur[up+k] + cur[dn+k] + cur[lf+k] + cur[rt+k] +
						cur[row+k-1] + cur[row+k+1] - 6*cur[row+k]
					next[row+k] = 2*cur[row+k] - prev[row+k] + c2[row+k]*lap
				}
			}
		}
		next[src] += ricker(t)
		// Sponge damping near boundaries.
		for i := 0; i < d0; i++ {
			di := damp(i, d0)
			for j := 0; j < d1; j++ {
				dj := di * damp(j, d1)
				row := (i*d1 + j) * d2
				for k := 0; k < d2; k++ {
					f := dj * damp(k, d2)
					if f != 1 {
						next[row+k] *= f
						cur[row+k] *= f
					}
				}
			}
		}
		prev, cur, next = cur, next, prev
		if every > 0 && t+1 >= every && (t+1)%every == 0 {
			fld := grid.MustNew(fmt.Sprintf("%s/t%03d", name, t+1), grid.Float32, d0, d1, d2)
			copy(fld.Data, cur)
			out = append(out, fld)
			snap++
		}
	}
	return out
}

// Dataset groups the fields generated for one Table-I stand-in.
type Dataset struct {
	// Name is the paper's dataset name (lower-cased).
	Name string
	// Description matches Table I.
	Description string
	// Format names the original container format (informational).
	Format string
	// Fields holds the generated field stand-ins.
	Fields []*grid.Field
}

// TotalBytes sums the original-precision byte sizes of all fields.
func (d *Dataset) TotalBytes() int64 {
	var n int64
	for _, f := range d.Fields {
		n += f.OriginalBytes()
	}
	return n
}

type spec struct {
	desc, format string
	gen          func(sc Scale, seed uint64) []*grid.Field
}

func dimsFor(sc Scale, tiny, small, medium []int) []int {
	switch sc {
	case Tiny:
		return tiny
	case Medium:
		return medium
	default:
		return small
	}
}

func lenFor(sc Scale, tiny, small, medium int) int {
	switch sc {
	case Tiny:
		return tiny
	case Medium:
		return medium
	default:
		return small
	}
}

var catalog = map[string]spec{
	"cesm": {"Climate simulation", "NetCDF", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{45, 90}, []int{450, 900}, []int{900, 1800})
		return []*grid.Field{
			SpectralField("cesm/TS", grid.Float32, dims, 3.0, 190, 310, seed),
			SpectralField("cesm/TROP_Z", grid.Float32, dims, 3.4, 5e3, 1.8e4, seed+1),
		}
	}},
	"exafel": {"Instrument imaging", "HDF5", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{2, 4, 16, 32}, []int{4, 16, 64, 128}, []int{8, 32, 96, 194})
		return []*grid.Field{PhotonPanels4D("exafel/raw", dims, seed)}
	}},
	"hurricane": {"Weather simulation", "Binary", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{10, 25, 25}, []int{50, 125, 125}, []int{100, 250, 250})
		return []*grid.Field{
			SpectralField("hurricane/U", grid.Float32, dims, 2.6, -80, 85, seed),
			SpectralField("hurricane/TC", grid.Float32, dims, 3.0, -80, 30, seed+1),
		}
	}},
	"hacc": {"Cosmology simulation", "GIO", func(sc Scale, seed uint64) []*grid.Field {
		n := lenFor(sc, 20000, 1<<20, 1<<22)
		return []*grid.Field{
			ParticlePositions1D("hacc/xx", n, 256, 64, seed),
			ParticleVelocities1D("hacc/vx", n, seed+1),
		}
	}},
	"nyx": {"Cosmology simulation", "HDF5", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{24, 24, 24}, []int{96, 96, 96}, []int{160, 160, 160})
		return []*grid.Field{
			LogNormalField("nyx/dark_matter_density", grid.Float32, dims, 2.2, 3.0, seed),
			SpectralField("nyx/temperature", grid.Float32, dims, 2.8, 1e3, 1e6, seed+1),
			SpectralField("nyx/velocity_z", grid.Float32, dims, 2.5, -3e7, 3e7, seed+2),
		}
	}},
	"scale": {"Climate simulation", "NetCDF", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{8, 30, 30}, []int{48, 120, 120}, []int{98, 240, 240})
		return []*grid.Field{SpectralField("scale/PRES", grid.Float32, dims, 3.2, 2e3, 1.05e5, seed)}
	}},
	"qmcpack": {"Atoms' structure", "HDF5", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{17, 17, 28}, []int{69, 69, 115}, []int{69, 69, 115})
		nc := lenFor(sc, 6, 24, 24)
		return []*grid.Field{Orbital3D("qmcpack/einspline", dims, nc, seed)}
	}},
	"miranda": {"Turbulence simulation", "Binary", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{16, 24, 24}, []int{64, 96, 96}, []int{128, 192, 192})
		return []*grid.Field{SpectralField("miranda/vx", grid.Float32, dims, 1.9, -1, 1, seed)}
	}},
	"brown": {"Synthetic Brown data", "Binary", func(sc Scale, seed uint64) []*grid.Field {
		n := lenFor(sc, 20000, 1<<20, 1<<22)
		return []*grid.Field{Brownian1D("brown/pressure", n, 0.01, seed)}
	}},
	"rtm": {"Reverse time migration", "HDF5", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{20, 24, 24}, []int{60, 112, 112}, []int{96, 176, 176})
		steps := lenFor(sc, 96, 320, 448)
		every := lenFor(sc, 16, 40, 56)
		snaps := WaveSnapshots("rtm", dims, steps, every, seed)
		for i, s := range snaps {
			s.Name = fmt.Sprintf("rtm/snapshot_%d", i+1)
		}
		return snaps
	}},
	// "mixed" is not part of the paper's Table I (and so not in Names()):
	// it is the adaptive-space partitioning workload — one field whose
	// halves want very different error bounds.
	"mixed": {"Smooth + turbulent composite", "Binary", func(sc Scale, seed uint64) []*grid.Field {
		dims := dimsFor(sc, []int{32, 48, 48}, []int{96, 128, 128}, []int{160, 192, 192})
		return []*grid.Field{MixedField("mixed/q", grid.Float64, dims, seed)}
	}},
}

// Names lists the available dataset stand-ins in Table-I order.
func Names() []string {
	out := []string{"cesm", "exafel", "hurricane", "hacc", "nyx", "scale", "qmcpack", "miranda", "brown", "rtm"}
	return out
}

// Generate builds the named dataset stand-in. Seed selects the realization;
// the same (name, seed, scale) always produces identical data.
func Generate(name string, seed uint64, sc Scale) (*Dataset, error) {
	s, ok := catalog[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("datagen: unknown dataset %q (known: %v)", name, known)
	}
	return &Dataset{
		Name:        name,
		Description: s.desc,
		Format:      s.format,
		Fields:      s.gen(sc, seed),
	}, nil
}

// GenerateField is a convenience that returns a single named field from a
// dataset stand-in ("dataset/field" resolves within the generated set; a bare
// dataset name returns the first field).
func GenerateField(path string, seed uint64, sc Scale) (*grid.Field, error) {
	dsName := path
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			dsName = path[:i]
			break
		}
	}
	ds, err := Generate(dsName, seed, sc)
	if err != nil {
		return nil, err
	}
	if dsName == path {
		return ds.Fields[0], nil
	}
	for _, f := range ds.Fields {
		if f.Name == path {
			return f, nil
		}
	}
	return nil, fmt.Errorf("datagen: dataset %q has no field %q", dsName, path)
}
