package datagen

import (
	"testing"
)

// TestRTMSnapshotCountsStable pins the snapshot counts per scale: the
// experiment harness (Table II uses snapshots 1–3; Figs. 12–14 iterate the
// stack) depends on them.
func TestRTMSnapshotCountsStable(t *testing.T) {
	want := map[Scale]int{Tiny: 6, Small: 8}
	for sc, n := range want {
		ds, err := Generate("rtm", 42, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Fields) != n {
			t.Fatalf("scale %v: %d snapshots, want %d", sc, len(ds.Fields), n)
		}
	}
}

// TestDatasetFieldNamesStable pins the field naming convention the
// experiment tables reference.
func TestDatasetFieldNamesStable(t *testing.T) {
	cases := map[string][]string{
		"cesm":      {"cesm/TS", "cesm/TROP_Z"},
		"hacc":      {"hacc/xx", "hacc/vx"},
		"nyx":       {"nyx/dark_matter_density", "nyx/temperature", "nyx/velocity_z"},
		"hurricane": {"hurricane/U", "hurricane/TC"},
	}
	for name, wantFields := range cases {
		ds, err := Generate(name, 1, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Fields) != len(wantFields) {
			t.Fatalf("%s: %d fields, want %d", name, len(ds.Fields), len(wantFields))
		}
		for i, want := range wantFields {
			if ds.Fields[i].Name != want {
				t.Fatalf("%s field %d = %q, want %q", name, i, ds.Fields[i].Name, want)
			}
		}
	}
}

// TestScalesOrdered verifies each scale strictly grows the dataset.
func TestScalesOrdered(t *testing.T) {
	for _, name := range []string{"cesm", "nyx", "brown"} {
		tiny, err := Generate(name, 1, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		small, err := Generate(name, 1, Small)
		if err != nil {
			t.Fatal(err)
		}
		if small.TotalBytes() <= tiny.TotalBytes() {
			t.Fatalf("%s: small (%d) not larger than tiny (%d)", name, small.TotalBytes(), tiny.TotalBytes())
		}
	}
}
