// Package cluster is an analytic performance model of parallel data dumping
// on an HPC system — the stand-in for the paper's 8-node/128-core Bebop
// experiments with parallel HDF5 over MPI-IO. Compression and optimization
// are embarrassingly parallel across ranks (each rank holds a slice of the
// snapshot); writes contend for shared file-system bandwidth. The model is
// calibrated with throughputs measured from the real Go compressor, so the
// relative shape of Fig. 14 (optimization ≫ for in-situ trial-and-error,
// I/O ∝ compressed bytes, stability of the model-driven dumps) is preserved
// even though absolute seconds differ from Bebop's.
package cluster

import (
	"errors"
	"fmt"
	"time"
)

// Config describes the simulated machine.
type Config struct {
	// Ranks is the number of MPI ranks (cores).
	Ranks int
	// FSBandwidth is the aggregate parallel file-system bandwidth in
	// bytes/second.
	FSBandwidth float64
	// PerRankBandwidth caps a single rank's write speed (bytes/second).
	PerRankBandwidth float64
}

// DefaultBebop approximates the paper's testbed regime: 128 ranks against a
// shared file system slow enough that uncompressed dumps are I/O-bound
// (the paper's baseline dump takes 29.4 s/snapshot — far above any compute
// phase), with a per-rank write cap. Absolute bandwidths are free
// parameters of the simulation; the ratios between strategies are what the
// Fig. 14 reproduction preserves.
func DefaultBebop() Config {
	return Config{Ranks: 128, FSBandwidth: 4e8, PerRankBandwidth: 8e6}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ranks <= 0 {
		return errors.New("cluster: ranks must be positive")
	}
	if c.FSBandwidth <= 0 || c.PerRankBandwidth <= 0 {
		return errors.New("cluster: bandwidths must be positive")
	}
	return nil
}

// effectiveBandwidth is the aggregate write speed with both limits applied.
func (c Config) effectiveBandwidth() float64 {
	agg := float64(c.Ranks) * c.PerRankBandwidth
	if agg > c.FSBandwidth {
		return c.FSBandwidth
	}
	return agg
}

// IOTime is the wall-clock time to write `bytes` through the shared FS.
func (c Config) IOTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes) / c.effectiveBandwidth()
	return time.Duration(sec * float64(time.Second))
}

// ComputeTime converts total single-core CPU seconds of perfectly parallel
// work into wall time across the ranks.
func (c Config) ComputeTime(totalCPU time.Duration) time.Duration {
	return time.Duration(float64(totalCPU) / float64(c.Ranks))
}

// DumpReport breaks one snapshot dump into the paper's three components
// (Fig. 14): optimization, compression, and I/O.
type DumpReport struct {
	// Snapshot identifies the dump.
	Snapshot string
	// OptimizationTime is the wall time of configuration search (zero for
	// the traditional offline approach, large for in-situ trial-and-error).
	OptimizationTime time.Duration
	// CompressTime is the wall time of parallel compression.
	CompressTime time.Duration
	// IOTime is the wall time of the parallel write.
	IOTime time.Duration
	// BytesWritten is the compressed snapshot size.
	BytesWritten int64
	// BitRate is compressed bits per value.
	BitRate float64
	// PSNR is the (modeled or measured) snapshot quality in dB.
	PSNR float64
}

// Total is the end-to-end dump wall time.
func (r DumpReport) Total() time.Duration {
	return r.OptimizationTime + r.CompressTime + r.IOTime
}

// String renders a compact single-line summary.
func (r DumpReport) String() string {
	return fmt.Sprintf("%s: op=%.3fs comp=%.3fs io=%.3fs total=%.3fs bytes=%d rate=%.3f psnr=%.2f",
		r.Snapshot, r.OptimizationTime.Seconds(), r.CompressTime.Seconds(), r.IOTime.Seconds(),
		r.Total().Seconds(), r.BytesWritten, r.BitRate, r.PSNR)
}

// Dump assembles a report from measured single-core times and output size:
// optCPU and compressCPU are total CPU seconds (parallelized across ranks);
// bytes go through the shared file system.
func (c Config) Dump(snapshot string, optCPU, compressCPU time.Duration, bytes int64, values int, psnr float64) DumpReport {
	bitRate := 0.0
	if values > 0 {
		bitRate = float64(bytes) * 8 / float64(values)
	}
	return DumpReport{
		Snapshot:         snapshot,
		OptimizationTime: c.ComputeTime(optCPU),
		CompressTime:     c.ComputeTime(compressCPU),
		IOTime:           c.IOTime(bytes),
		BytesWritten:     bytes,
		BitRate:          bitRate,
		PSNR:             psnr,
	}
}

// Summary aggregates a dump sequence: total and maximum dump times (the
// paper highlights the maximum as the stability-critical number).
type Summary struct {
	// Total is the sum of all dump wall times.
	Total time.Duration
	// Max is the slowest single dump.
	Max time.Duration
	// Bytes is the total data written.
	Bytes int64
}

// Summarize folds reports into a Summary.
func Summarize(reports []DumpReport) Summary {
	var s Summary
	for _, r := range reports {
		t := r.Total()
		s.Total += t
		if t > s.Max {
			s.Max = t
		}
		s.Bytes += r.BytesWritten
	}
	return s
}
