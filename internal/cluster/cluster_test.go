package cluster

import (
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	if err := DefaultBebop().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Ranks: 0, FSBandwidth: 1, PerRankBandwidth: 1}).Validate(); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if err := (Config{Ranks: 4, FSBandwidth: 0, PerRankBandwidth: 1}).Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestIOTimeLimits(t *testing.T) {
	// Few ranks: per-rank bandwidth limits; many ranks: shared FS limits.
	few := Config{Ranks: 2, FSBandwidth: 1e9, PerRankBandwidth: 100e6}
	many := Config{Ranks: 128, FSBandwidth: 1e9, PerRankBandwidth: 100e6}
	bytes := int64(2e8)
	tFew := few.IOTime(bytes)
	tMany := many.IOTime(bytes)
	if tFew <= tMany {
		t.Fatalf("few-rank write (%v) should be slower than many-rank (%v)", tFew, tMany)
	}
	// Many ranks saturate the FS: 2e8 bytes at 1e9 B/s = 0.2 s.
	if got := tMany.Seconds(); got < 0.19 || got > 0.21 {
		t.Fatalf("FS-bound time = %v", got)
	}
	if few.IOTime(0) != 0 {
		t.Fatal("zero bytes should cost zero time")
	}
}

func TestComputeTimeScales(t *testing.T) {
	c := Config{Ranks: 64, FSBandwidth: 1e9, PerRankBandwidth: 1e8}
	total := 64 * time.Second
	if got := c.ComputeTime(total); got != time.Second {
		t.Fatalf("ComputeTime = %v", got)
	}
}

func TestDumpReport(t *testing.T) {
	c := DefaultBebop()
	bytes := int64(c.FSBandwidth) // exactly one second of shared-FS writing
	r := c.Dump("snap1", 128*time.Second, 256*time.Second, bytes, 1000, 60)
	if r.OptimizationTime != time.Second {
		t.Fatalf("opt = %v", r.OptimizationTime)
	}
	if r.CompressTime != 2*time.Second {
		t.Fatalf("comp = %v", r.CompressTime)
	}
	if got := r.IOTime.Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("io = %v", got)
	}
	if r.Total() != r.OptimizationTime+r.CompressTime+r.IOTime {
		t.Fatal("Total mismatch")
	}
	if r.BitRate != float64(bytes)*8/1000 {
		t.Fatalf("bitrate = %v", r.BitRate)
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummarize(t *testing.T) {
	rs := []DumpReport{
		{CompressTime: time.Second, BytesWritten: 10},
		{CompressTime: 3 * time.Second, BytesWritten: 20},
		{CompressTime: 2 * time.Second, BytesWritten: 30},
	}
	s := Summarize(rs)
	if s.Total != 6*time.Second {
		t.Fatalf("total = %v", s.Total)
	}
	if s.Max != 3*time.Second {
		t.Fatalf("max = %v", s.Max)
	}
	if s.Bytes != 60 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
}
