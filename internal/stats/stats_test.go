package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMomentsBasic(t *testing.T) {
	var m Moments
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if !almostEq(m.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !almostEq(m.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v", m.Variance())
	}
	if !almostEq(m.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 || m.Range() != 7 {
		t.Fatalf("min/max/range = %v/%v/%v", m.Min(), m.Max(), m.Range())
	}
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 10, -7.5, 2, 2, 8}
	var all Moments
	all.AddSlice(xs)
	var a, b Moments
	a.AddSlice(xs[:4])
	b.AddSlice(xs[4:])
	a.Merge(b)
	if !almostEq(a.Mean(), all.Mean(), 1e-12) || !almostEq(a.Variance(), all.Variance(), 1e-12) {
		t.Fatalf("merge mean/var = %v/%v want %v/%v", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge extrema mismatch")
	}
}

func TestMergeEmptySides(t *testing.T) {
	var empty, m Moments
	m.AddSlice([]float64{1, 2, 3})
	cp := m
	m.Merge(empty)
	if m != cp {
		t.Fatal("merging empty changed accumulator")
	}
	empty.Merge(cp)
	if empty != cp {
		t.Fatal("merging into empty did not copy")
	}
}

func TestMeanVarTwoPass(t *testing.T) {
	mean, v := MeanVar([]float64{1, 2, 3, 4})
	if !almostEq(mean, 2.5, 1e-15) || !almostEq(v, 1.25, 1e-15) {
		t.Fatalf("MeanVar = %v, %v", mean, v)
	}
	mean, v = MeanVar(nil)
	if mean != 0 || v != 0 {
		t.Fatalf("MeanVar(nil) = %v, %v", mean, v)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("MinMax(nil) = %v, %v", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated input")
	}
}

func TestCodeHistogram(t *testing.T) {
	h := NewCodeHistogram()
	h.Add(0, 80)
	h.Add(1, 10)
	h.Add(-1, 10)
	if h.Total != 100 {
		t.Fatalf("Total = %d", h.Total)
	}
	if p := h.P(0); !almostEq(p, 0.8, 1e-15) {
		t.Fatalf("P(0) = %v", p)
	}
	p0, c := h.TopP()
	if !almostEq(p0, 0.8, 1e-15) || c != 0 {
		t.Fatalf("TopP = %v, %d", p0, c)
	}
	want := -(0.8*math.Log2(0.8) + 0.2*math.Log2(0.1))
	if e := h.Entropy(); !almostEq(e, want, 1e-12) {
		t.Fatalf("Entropy = %v want %v", e, want)
	}
	codes := h.Codes()
	if len(codes) != 3 || codes[0] != -1 || codes[2] != 1 {
		t.Fatalf("Codes = %v", codes)
	}
	cl := h.Clone()
	cl.Add(5, 1)
	if h.Total == cl.Total {
		t.Fatal("Clone not independent")
	}
}

func TestEntropyUniform(t *testing.T) {
	h := NewCodeHistogram()
	for c := int32(0); c < 16; c++ {
		h.Add(c, 7)
	}
	if e := h.Entropy(); !almostEq(e, 4, 1e-12) {
		t.Fatalf("uniform-16 entropy = %v, want 4", e)
	}
}

func TestSampleIndicesProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint16, rRaw uint8) bool {
		n := int(nRaw)%5000 + 1
		rate := float64(rRaw%100+1) / 100.0
		idx := SampleIndices(n, rate, seed)
		if len(idx) == 0 {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] || i <= prev {
				return false
			}
			seen[i] = true
			prev = i
		}
		want := int(math.Round(rate * float64(n)))
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		return len(idx) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIndicesDeterministic(t *testing.T) {
	a := SampleIndices(1000, 0.05, 42)
	b := SampleIndices(1000, 0.05, 42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic sample")
		}
	}
	c := SampleIndices(1000, 0.05, 43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical samples")
	}
}

func TestSampleIndicesFullRate(t *testing.T) {
	idx := SampleIndices(10, 1.0, 7)
	if len(idx) != 10 {
		t.Fatalf("full-rate sample len = %d", len(idx))
	}
	for i, v := range idx {
		if v != i {
			t.Fatalf("full-rate sample not identity at %d: %d", i, v)
		}
	}
}

func TestXorShiftRanges(t *testing.T) {
	rng := NewXorShift64(123)
	for i := 0; i < 1000; i++ {
		if f := rng.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if v := rng.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	rng := NewXorShift64(99)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(rng.NormFloat64())
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v", m.Mean())
	}
	if math.Abs(m.Variance()-1) > 0.03 {
		t.Fatalf("normal variance = %v", m.Variance())
	}
}
