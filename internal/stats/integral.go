package stats

import (
	"fmt"
	"math"
)

// Integral is a summed-area table (integral image) over a 1-D, 2-D, or 3-D
// field: two prefix-sum tables (values and squared values) padded with a zero
// border, so the sum, mean, and variance of any axis-aligned sub-box come
// from a constant number of table lookups via inclusion–exclusion. Building
// is O(N); every query after that is O(1), which is what makes recursive
// variance-guided partitioning affordable (each split decision touches a few
// table cells instead of rescanning the region).
//
// Boxes are half-open: lo[i] <= coordinate < hi[i] on every axis.
type Integral struct {
	dims    []int
	strides []int // strides of the padded (dims+1) tables
	sum     []float64
	sumsq   []float64
}

// NewIntegral builds the summed-area tables for data laid out row-major with
// the given shape. Rank must be 1, 2, or 3 and the shape must cover data
// exactly.
func NewIntegral(data []float64, dims ...int) (*Integral, error) {
	if len(dims) < 1 || len(dims) > 3 {
		return nil, fmt.Errorf("stats: integral rank %d outside 1..3", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("stats: non-positive dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("stats: shape %v declares %d values, data has %d", dims, n, len(data))
	}
	// Pad every axis by one so the zero border absorbs the lo-1 lookups.
	t := &Integral{dims: append([]int(nil), dims...)}
	padded := 1
	t.strides = make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		t.strides[i] = padded
		padded *= dims[i] + 1
	}
	t.sum = make([]float64, padded)
	t.sumsq = make([]float64, padded)

	// Promote to uniform 3-D [d0, d1, d2] with leading size-1 axes; the
	// rank-1/2 tables are the 3-D build with degenerate outer loops.
	d0, d1, d2 := 1, 1, 1
	switch len(dims) {
	case 1:
		d2 = dims[0]
	case 2:
		d1, d2 = dims[0], dims[1]
	case 3:
		d0, d1, d2 = dims[0], dims[1], dims[2]
	}
	var s0, s1, s2 int
	switch len(dims) {
	case 1:
		s0, s1, s2 = 0, 0, t.strides[0]
	case 2:
		s0, s1, s2 = 0, t.strides[0], t.strides[1]
	case 3:
		s0, s1, s2 = t.strides[0], t.strides[1], t.strides[2]
	}
	// Padded strides for the degenerate axes never advance (size-1 axes),
	// so use 0 there; the inclusion–exclusion below only touches live axes.
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := (i+1)*s0 + (j+1)*s1
			var rowSum, rowSq float64
			for k := 0; k < d2; k++ {
				v := data[(i*d1+j)*d2+k]
				rowSum += v
				rowSq += v * v
				idx := base + (k+1)*s2
				t.sum[idx] = rowSum
				t.sumsq[idx] = rowSq
				if s1 != 0 {
					t.sum[idx] += t.sum[idx-s1]
					t.sumsq[idx] += t.sumsq[idx-s1]
				}
				if s0 != 0 {
					t.sum[idx] += t.sum[idx-s0]
					t.sumsq[idx] += t.sumsq[idx-s0]
					if s1 != 0 {
						t.sum[idx] -= t.sum[idx-s0-s1]
						t.sumsq[idx] -= t.sumsq[idx-s0-s1]
					}
				}
			}
		}
	}
	return t, nil
}

// Dims returns the table's shape.
func (t *Integral) Dims() []int { return append([]int(nil), t.dims...) }

// checkBox validates a half-open box against the table's shape.
func (t *Integral) checkBox(lo, hi []int) error {
	if len(lo) != len(t.dims) || len(hi) != len(t.dims) {
		return fmt.Errorf("stats: box rank %d/%d does not match table rank %d", len(lo), len(hi), len(t.dims))
	}
	for i := range t.dims {
		if lo[i] < 0 || hi[i] > t.dims[i] || lo[i] >= hi[i] {
			return fmt.Errorf("stats: box [%v, %v) outside shape %v", lo, hi, t.dims)
		}
	}
	return nil
}

// boxQuery evaluates one prefix table over a half-open box by
// inclusion–exclusion: 2^rank corner lookups with alternating signs.
func (t *Integral) boxQuery(table []float64, lo, hi []int) float64 {
	rank := len(t.dims)
	var total float64
	for mask := 0; mask < 1<<rank; mask++ {
		idx, sign := 0, 1.0
		for axis := 0; axis < rank; axis++ {
			if mask&(1<<axis) != 0 {
				idx += lo[axis] * t.strides[axis] // lo-1 in padded coordinates
				sign = -sign
			} else {
				idx += hi[axis] * t.strides[axis]
			}
		}
		total += sign * table[idx]
	}
	return total
}

// Count returns the number of elements inside the box.
func (t *Integral) Count(lo, hi []int) int {
	n := 1
	for i := range lo {
		n *= hi[i] - lo[i]
	}
	return n
}

// Sum returns the sum of the values inside the half-open box [lo, hi).
func (t *Integral) Sum(lo, hi []int) (float64, error) {
	if err := t.checkBox(lo, hi); err != nil {
		return 0, err
	}
	return t.boxQuery(t.sum, lo, hi), nil
}

// Mean returns the mean of the values inside the half-open box [lo, hi).
func (t *Integral) Mean(lo, hi []int) (float64, error) {
	s, err := t.Sum(lo, hi)
	if err != nil {
		return 0, err
	}
	return s / float64(t.Count(lo, hi)), nil
}

// MeanVar returns the mean and population variance of the values inside the
// half-open box [lo, hi). Variance is clamped at zero: the sum-of-squares
// identity var = E[x²] − E[x]² can go slightly negative under float64
// cancellation on near-constant data.
func (t *Integral) MeanVar(lo, hi []int) (mean, variance float64, err error) {
	if err := t.checkBox(lo, hi); err != nil {
		return 0, 0, err
	}
	n := float64(t.Count(lo, hi))
	s := t.boxQuery(t.sum, lo, hi)
	sq := t.boxQuery(t.sumsq, lo, hi)
	mean = s / n
	variance = sq/n - mean*mean
	if variance < 0 || math.IsNaN(variance) {
		variance = 0
	}
	return mean, variance, nil
}

// Variance returns the population variance inside the half-open box [lo, hi).
func (t *Integral) Variance(lo, hi []int) (float64, error) {
	_, v, err := t.MeanVar(lo, hi)
	return v, err
}
