package stats

import (
	"math"
	"testing"
)

// directMeanVar is the reference: two-pass mean/variance over the box,
// walking the raw data.
func directMeanVar(data []float64, dims, lo, hi []int) (float64, float64) {
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	var vals []float64
	var walk func(axis, off int)
	walk = func(axis, off int) {
		if axis == len(dims) {
			vals = append(vals, data[off])
			return
		}
		for c := lo[axis]; c < hi[axis]; c++ {
			walk(axis+1, off+c*strides[axis])
		}
	}
	walk(0, 0)
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var m2 float64
	for _, v := range vals {
		d := v - mean
		m2 += d * d
	}
	return mean, m2 / float64(len(vals))
}

func TestIntegralBoxes(t *testing.T) {
	rng := NewXorShift64(99)
	ramp3 := make([]float64, 4*6*5)
	for i := range ramp3 {
		ramp3[i] = float64(i%17) - 3.5
	}
	noisy2 := make([]float64, 32*48)
	for i := range noisy2 {
		noisy2[i] = rng.Float64()*200 - 100
	}
	cases := []struct {
		name string
		data []float64
		dims []int
		lo   []int
		hi   []int
	}{
		{"1d-whole", []float64{1, 2, 3, 4, 5}, []int{5}, []int{0}, []int{5}},
		{"1d-single-element", []float64{1, 2, 3, 4, 5}, []int{5}, []int{2}, []int{3}},
		{"1d-interior", []float64{-4, 0, 4, 8, 12, -1}, []int{6}, []int{1}, []int{5}},
		{"1xN-row", noisy2[:7], []int{1, 7}, []int{0, 2}, []int{1, 6}},
		{"Nx1-col", noisy2[:7], []int{7, 1}, []int{3, 0}, []int{6, 1}},
		{"2d-corner", noisy2, []int{32, 48}, []int{0, 0}, []int{5, 5}},
		{"2d-interior", noisy2, []int{32, 48}, []int{7, 11}, []int{29, 40}},
		{"2d-single", noisy2, []int{32, 48}, []int{31, 47}, []int{32, 48}},
		{"2d-full-width-rows", noisy2, []int{32, 48}, []int{10, 0}, []int{20, 48}},
		{"3d-interior", ramp3, []int{4, 6, 5}, []int{1, 2, 1}, []int{3, 5, 4}},
		{"3d-single", ramp3, []int{4, 6, 5}, []int{2, 3, 2}, []int{3, 4, 3}},
		{"3d-slab", ramp3, []int{4, 6, 5}, []int{1, 0, 0}, []int{3, 6, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it, err := NewIntegral(tc.data, tc.dims...)
			if err != nil {
				t.Fatal(err)
			}
			wantMean, wantVar := directMeanVar(tc.data, tc.dims, tc.lo, tc.hi)
			mean, variance, err := it.MeanVar(tc.lo, tc.hi)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mean-wantMean) > 1e-9*(1+math.Abs(wantMean)) {
				t.Errorf("mean = %v, want %v", mean, wantMean)
			}
			if math.Abs(variance-wantVar) > 1e-6*(1+wantVar) {
				t.Errorf("variance = %v, want %v", variance, wantVar)
			}
			sum, err := it.Sum(tc.lo, tc.hi)
			if err != nil {
				t.Fatal(err)
			}
			wantSum := wantMean * float64(it.Count(tc.lo, tc.hi))
			if math.Abs(sum-wantSum) > 1e-9*(1+math.Abs(wantSum)) {
				t.Errorf("sum = %v, want %v", sum, wantSum)
			}
		})
	}
}

func TestIntegralConstantField(t *testing.T) {
	// Constant data is the worst case for the E[x²]−E[x]² identity: the
	// subtraction cancels almost completely and must clamp to exactly zero variance.
	data := make([]float64, 16*16)
	for i := range data {
		data[i] = 1e6 + 1.0/3.0
	}
	it, err := NewIntegral(data, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range [][2][]int{
		{{0, 0}, {16, 16}},
		{{5, 5}, {6, 6}},
		{{0, 3}, {16, 9}},
	} {
		mean, variance, err := it.MeanVar(box[0], box[1])
		if err != nil {
			t.Fatal(err)
		}
		if variance != 0 {
			t.Errorf("constant field box %v variance = %v, want 0", box, variance)
		}
		if math.Abs(mean-data[0]) > 1e-6 {
			t.Errorf("constant field mean = %v, want %v", mean, data[0])
		}
	}
}

func TestIntegralDriftVsDirect(t *testing.T) {
	// Large offset + small signal stresses float accumulation: the prefix
	// sums grow to ~1e9 while per-box variance stays O(1). The SAT answer
	// must stay within a loose relative tolerance of the two-pass answer.
	rng := NewXorShift64(7)
	dims := []int{24, 40, 12}
	data := make([]float64, 24*40*12)
	for i := range data {
		data[i] = 1e5 + rng.Float64()
	}
	it, err := NewIntegral(data, dims...)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for a := 0; a < 3; a++ {
			lo[a] = int(rng.Uint64() % uint64(dims[a]))
			span := int(rng.Uint64()%uint64(dims[a]-lo[a])) + 1
			hi[a] = lo[a] + span
		}
		wantMean, wantVar := directMeanVar(data, dims, lo, hi)
		mean, variance, err := it.MeanVar(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-wantMean) > 1e-6*(1+math.Abs(wantMean)) {
			t.Fatalf("box [%v,%v): mean drift %v vs %v", lo, hi, mean, wantMean)
		}
		// Absolute slack: with sums near 1e9, float64 cancellation leaves
		// ~1e-2 absolute noise in the variance; the signal variance is
		// ~1/12, so this still distinguishes smooth from turbulent.
		if math.Abs(variance-wantVar) > 0.05+0.01*wantVar {
			t.Fatalf("box [%v,%v): variance drift %v vs %v", lo, hi, variance, wantVar)
		}
	}
}

func TestIntegralErrors(t *testing.T) {
	if _, err := NewIntegral([]float64{1, 2}, 3); err == nil {
		t.Error("shape mismatch not rejected")
	}
	if _, err := NewIntegral([]float64{1}, 1, 1, 1, 1); err == nil {
		t.Error("rank 4 not rejected")
	}
	if _, err := NewIntegral(nil, 0); err == nil {
		t.Error("zero dimension not rejected")
	}
	it, err := NewIntegral([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, box := range [][2][]int{
		{{0}, {2}},        // rank mismatch
		{{0, 0}, {3, 2}},  // out of range
		{{1, 1}, {1, 2}},  // empty axis
		{{-1, 0}, {2, 2}}, // negative
		{{0, 2}, {2, 1}},  // inverted
	} {
		if _, err := it.Sum(box[0], box[1]); err == nil {
			t.Errorf("box [%v,%v) not rejected", box[0], box[1])
		}
	}
}
