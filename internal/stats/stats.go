// Package stats provides the statistical substrate used across the
// compressor and the ratio-quality model: streaming moments, value-range
// scans, histograms over integer quantization codes, and deterministic
// sampling utilities.
package stats

import (
	"math"
	"sort"
)

// Moments accumulates count, mean, and variance online (Welford).
// The zero value is an empty accumulator.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddSlice folds every element of xs into the accumulator.
func (m *Moments) AddSlice(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (0 when fewer than 2 samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// Range returns max-min (the "minmax" value range used by PSNR).
func (m *Moments) Range() float64 { return m.max - m.min }

// Merge combines another accumulator into m (parallel reduction).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	mean := m.mean + d*float64(o.n)/float64(n)
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean = mean
	m.n = n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}

// Summary computes moments of a slice in one pass.
func Summary(xs []float64) Moments {
	var m Moments
	m.AddSlice(xs)
	return m
}

// MeanVar returns mean and population variance of xs using a numerically
// stable two-pass algorithm (preferred for quality metrics).
func MeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	mean = s / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return mean, v / float64(len(xs))
}

// MinMax scans for the extrema of xs. Empty input returns (0, 0).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0<=q<=1) of xs by sorting a copy;
// linear interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(cp) {
		return cp[len(cp)-1]
	}
	return cp[i]*(1-frac) + cp[i+1]*frac
}

// CodeHistogram is a frequency table over signed quantization codes. Codes in
// prediction-based compression concentrate around zero, so it is stored as a
// map from code to count plus cached totals.
type CodeHistogram struct {
	Counts map[int32]int64
	Total  int64
}

// NewCodeHistogram returns an empty histogram.
func NewCodeHistogram() *CodeHistogram {
	return &CodeHistogram{Counts: make(map[int32]int64)}
}

// Add increments the count of code by n.
func (h *CodeHistogram) Add(code int32, n int64) {
	h.Counts[code] += n
	h.Total += n
}

// P returns the empirical probability of code.
func (h *CodeHistogram) P(code int32) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[code]) / float64(h.Total)
}

// TopP returns the probability of the most frequent code (the paper's p0)
// and that code.
func (h *CodeHistogram) TopP() (p float64, code int32) {
	if h.Total == 0 {
		return 0, 0
	}
	var best int64 = -1
	for c, n := range h.Counts {
		if n > best || (n == best && c < code) {
			best, code = n, c
		}
	}
	return float64(best) / float64(h.Total), code
}

// Entropy returns the Shannon entropy in bits per symbol.
func (h *CodeHistogram) Entropy() float64 {
	if h.Total == 0 {
		return 0
	}
	var e float64
	tot := float64(h.Total)
	for _, n := range h.Counts {
		if n == 0 {
			continue
		}
		p := float64(n) / tot
		e -= p * math.Log2(p)
	}
	return e
}

// Clone deep-copies the histogram.
func (h *CodeHistogram) Clone() *CodeHistogram {
	c := &CodeHistogram{Counts: make(map[int32]int64, len(h.Counts)), Total: h.Total}
	for k, v := range h.Counts {
		c.Counts[k] = v
	}
	return c
}

// Codes returns the codes present, sorted ascending.
func (h *CodeHistogram) Codes() []int32 {
	cs := make([]int32, 0, len(h.Counts))
	for c := range h.Counts {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// XorShift64 is a tiny deterministic PRNG for reproducible sampling without
// pulling in math/rand state everywhere. Never returns the same sequence for
// different seeds; seed 0 is remapped.
type XorShift64 struct{ s uint64 }

// NewXorShift64 seeds the generator. A zero seed is replaced by a constant.
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &XorShift64{s: seed}
}

// Uint64 advances the generator.
func (x *XorShift64) Uint64() uint64 {
	s := x.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.s = s
	return s
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (x *XorShift64) Intn(n int) int {
	return int(x.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (x *XorShift64) Float64() float64 {
	return float64(x.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Box–Muller, one value per
// pair; we discard the sibling for simplicity).
func (x *XorShift64) NormFloat64() float64 {
	for {
		u1 := x.Float64()
		if u1 <= 1e-300 {
			continue
		}
		u2 := x.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// SampleIndices returns ~rate*n distinct indices in [0,n), deterministically
// from seed, sorted ascending. rate is clamped to (0,1]; at least one index
// is returned for non-empty inputs.
func SampleIndices(n int, rate float64, seed uint64) []int {
	if n <= 0 {
		return nil
	}
	if rate <= 0 {
		rate = 1.0 / float64(n)
	}
	if rate > 1 {
		rate = 1
	}
	k := int(math.Round(rate * float64(n)))
	if k < 1 {
		k = 1
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Floyd's algorithm for distinct sampling.
	rng := NewXorShift64(seed)
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, k)
	for i := range chosen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
