package compressor

import (
	"bytes"
	"testing"

	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

var allEntropyKinds = []EntropyKind{EntropyHuffman, EntropyInterleaved, EntropyTANS}

func TestEntropyKindNames(t *testing.T) {
	for _, e := range allEntropyKinds {
		got, err := ParseEntropyKind(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEntropyKind(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEntropyKind("zstd"); err == nil {
		t.Fatal("unknown name parsed")
	}
}

// TestEntropyRoundTripMatrix round-trips every entropy stage against every
// predictor and lossless backend; reconstructions must be identical across
// stages because the entropy coder is lossless by construction.
func TestEntropyRoundTripMatrix(t *testing.T) {
	f := testField(t, "cesm/TS")
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	for _, kind := range []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.Regression} {
		for _, ll := range []LosslessKind{LosslessNone, LosslessRLE} {
			var ref *grid.Field
			for _, e := range allEntropyKinds {
				opts := Options{Predictor: kind, Mode: ABS, ErrorBound: eb, Lossless: ll, Entropy: e}
				res, dec := compressDecompress(t, f, opts)
				if res.Stats.Entropy != e {
					t.Fatalf("%s/%s/%s: stats report entropy %s", kind, ll, e, res.Stats.Entropy)
				}
				if ref == nil {
					ref = dec
					continue
				}
				for i := range dec.Data {
					if dec.Data[i] != ref.Data[i] {
						t.Fatalf("%s/%s/%s: reconstruction differs from serial Huffman at %d", kind, ll, e, i)
					}
				}
			}
		}
	}
}

// TestSerialHuffmanStaysVersion1 pins the compatibility contract: the default
// entropy stage must keep emitting the historical version 1 container
// byte-for-byte, and only the new stages may use version 2.
func TestSerialHuffmanStaysVersion1(t *testing.T) {
	f := testField(t, "hurricane/U")
	lo, hi := f.ValueRange()
	opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Bytes[4]; got != containerVersion {
		t.Fatalf("serial Huffman wrote container version %d, want %d", got, containerVersion)
	}
	for _, e := range []EntropyKind{EntropyInterleaved, EntropyTANS} {
		opts.Entropy = e
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Bytes[4]; got != containerVersionEntropy {
			t.Fatalf("%s wrote container version %d, want %d", e, got, containerVersionEntropy)
		}
		if got := EntropyKind(res.Bytes[8]); got != e {
			t.Fatalf("container entropy byte = %d, want %d", got, e)
		}
	}
}

// TestEntropyRatiosComparable: the interleaved stage pays only stream-length
// framing over serial Huffman, and tANS must not be dramatically worse (it is
// usually better on skewed histograms).
func TestEntropyRatiosComparable(t *testing.T) {
	f := testField(t, "miranda/vx")
	lo, hi := f.ValueRange()
	sizes := map[EntropyKind]int64{}
	for _, e := range allEntropyKinds {
		res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3, Entropy: e})
		if err != nil {
			t.Fatal(err)
		}
		sizes[e] = res.Stats.CompressedBytes
	}
	base := sizes[EntropyHuffman]
	if sizes[EntropyInterleaved] > base+base/50 {
		t.Fatalf("interleaved container %d is >2%% over serial %d", sizes[EntropyInterleaved], base)
	}
	if sizes[EntropyTANS] > base+base/10 {
		t.Fatalf("tANS container %d is >10%% over serial %d", sizes[EntropyTANS], base)
	}
}

// TestTANSFallsBackOnHugeAlphabet: a field whose quantization alphabet exceeds
// the largest ANS table must silently fall back to serial Huffman and still
// round-trip.
func TestTANSFallsBackOnHugeAlphabet(t *testing.T) {
	f := grid.MustNew("wild", grid.Float64, 1<<17)
	rng := stats.NewXorShift64(9)
	for i := range f.Data {
		f.Data[i] = 1e6 * rng.NormFloat64()
	}
	// A tiny bound over white noise makes nearly every code distinct.
	res, dec := compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 1e-4, Entropy: EntropyTANS})
	if res.Stats.Entropy == EntropyTANS {
		// The premise may not hold if the alphabet still fit; that is fine,
		// but then nothing was exercised — make the premise loud.
		distinct := len(res.Stats.CodeHist.Counts)
		t.Logf("alphabet fit the ANS table (%d distinct codes); fallback not exercised", distinct)
	} else if res.Stats.Entropy != EntropyHuffman {
		t.Fatalf("fallback produced entropy %s", res.Stats.Entropy)
	}
	_ = dec
}

// TestVersion2Corruption: truncations and bit flips in version 2 containers
// must error, never panic.
func TestVersion2Corruption(t *testing.T) {
	f := testField(t, "cesm/TS")
	lo, hi := f.ValueRange()
	for _, e := range []EntropyKind{EntropyInterleaved, EntropyTANS} {
		res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3, Entropy: e})
		if err != nil {
			t.Fatal(err)
		}
		data := res.Bytes
		for cut := 0; cut < len(data); cut += 101 {
			if _, err := Decompress(data[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d decoded", e, cut)
			}
		}
		for i := 0; i < len(data); i += 47 {
			bad := bytes.Clone(data)
			bad[i] ^= 0x55
			_, _ = Decompress(bad) // must not panic
		}
	}
}
