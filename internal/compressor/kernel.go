package compressor

import (
	"errors"
	"fmt"
	"math"

	"rqm/internal/predictor"
)

// Fused batch kernels: specialized prediction walks that predict, quantize,
// and emit symbols in one tight pass over the slice — no per-element closure
// call, no interface dispatch, no map updates in the loop. Each kernel
// mirrors its predictor walk in rqm/internal/predictor line for line and
// inlines the quantizer's exact float operations in the same order, so the
// fused path emits byte-identical containers to the generic Visit-callback
// walk (pinned by TestFusedKernelsMatchGenericWalk). The generic ND walk
// remains the fallback for every (predictor, rank) pair without a kernel:
// the regression predictor (block side channel) and 4-D Lorenzo.
//
// The compress and decompress loop bodies are intentionally duplicated per
// shape: routing both through one emitter interface or a generics dictionary
// would reintroduce an indirect call per element, which is the overhead this
// file exists to remove.

// errUnpredExhausted mirrors the generic decompress walk's error for a
// symbol stream claiming more exact values than the container stores.
var errUnpredExhausted = errors.New("compressor: unpredictable stream exhausted")

// encodeKernel is the fused compression state: quantizer parameters
// flattened to plain fields plus the output streams. emit replicates
// quantizer.Quantize bit for bit, then does the symbol/histogram/work
// bookkeeping the generic path runs in its Visit closure.
type encodeKernel struct {
	work    []float64 // in: original (possibly transformed) values; out: reconstruction
	syms    []uint32  // out: quantization symbols, one per value
	unpred  []float64 // out: exactly stored values, in visit order
	counts  []int64   // dense per-symbol frequencies (arena-owned, zero on entry)
	touched []uint32  // symbols with counts > 0, append order
	eb      float64
	twoEB   float64
	radF    float64
	radius  int32
	resSym  uint32
	pos     int
}

// emit quantizes work[idx] against pred: the hot in-range path updates the
// symbol stream, dense counts, and reconstruction in place; out-of-range and
// precision-loss cases take the unpredictable slow path.
func (k *encodeKernel) emit(idx int, pred float64) {
	v := k.work[idx]
	c := math.Round((v - pred) / k.twoEB)
	// NaN fails both comparisons, exactly like the IsNaN branch in
	// quantizer.Quantize.
	if !(c <= k.radF && c >= -k.radF) {
		k.emitUnpred(v)
		return
	}
	code := int32(c)
	recon := pred + float64(code)*k.twoEB
	if math.Abs(v-recon) > k.eb {
		k.emitUnpred(v)
		return
	}
	sym := uint32(code) + uint32(k.radius)
	k.syms[k.pos] = sym
	k.pos++
	if k.counts[sym] == 0 {
		k.touched = append(k.touched, sym)
	}
	k.counts[sym]++
	k.work[idx] = recon
}

// emitUnpred stores v exactly; work[idx] already holds it.
func (k *encodeKernel) emitUnpred(v float64) {
	k.syms[k.pos] = k.resSym
	k.pos++
	if k.counts[k.resSym] == 0 {
		k.touched = append(k.touched, k.resSym)
	}
	k.counts[k.resSym]++
	k.unpred = append(k.unpred, v)
}

// decodeKernel is the fused decompression state: symbols in, reconstructed
// values out, with the same sticky-error semantics as the generic walk.
type decodeKernel struct {
	syms   []uint32
	work   []float64
	unpred []float64
	twoEB  float64
	radius int32
	resSym uint32
	sp, up int
	err    error
}

// emit consumes the next symbol and reconstructs work[idx]. After the first
// error it does nothing, matching the generic walk's early-return closure.
func (k *decodeKernel) emit(idx int, pred float64) {
	if k.err != nil {
		return
	}
	s := k.syms[k.sp]
	k.sp++
	if s == k.resSym {
		if k.up >= len(k.unpred) {
			k.err = errUnpredExhausted
			return
		}
		k.work[idx] = k.unpred[k.up]
		k.up++
		return
	}
	code := int64(s) - int64(k.radius)
	if code < -int64(k.radius) || code > int64(k.radius) {
		k.err = fmt.Errorf("compressor: symbol %d out of range", s)
		return
	}
	k.work[idx] = pred + float64(int32(code))*k.twoEB
}

// fusedCompress runs the fused kernel for (kind, dims) when one exists,
// reporting false when the caller must fall back to the generic Visit walk.
func fusedCompress(kind predictor.Kind, dims []int, k *encodeKernel) bool {
	switch kind {
	case predictor.Lorenzo:
		switch len(dims) {
		case 1:
			k.lorenzo1D(dims[0])
		case 2:
			k.lorenzo2D(dims)
		case 3:
			k.lorenzo3D(dims)
		default:
			return false
		}
	case predictor.Lorenzo2:
		if len(dims) != 1 {
			return false
		}
		k.lorenzo2nd(dims[0])
	case predictor.Interpolation:
		k.interp(dims, false)
	case predictor.InterpolationCubic:
		k.interp(dims, true)
	default:
		return false
	}
	return true
}

// fusedDecompress is the decode-side twin of fusedCompress.
func fusedDecompress(kind predictor.Kind, dims []int, k *decodeKernel) bool {
	switch kind {
	case predictor.Lorenzo:
		switch len(dims) {
		case 1:
			k.lorenzo1D(dims[0])
		case 2:
			k.lorenzo2D(dims)
		case 3:
			k.lorenzo3D(dims)
		default:
			return false
		}
	case predictor.Lorenzo2:
		if len(dims) != 1 {
			return false
		}
		k.lorenzo2nd(dims[0])
	case predictor.Interpolation:
		k.interp(dims, false)
	case predictor.InterpolationCubic:
		k.interp(dims, true)
	default:
		return false
	}
	return true
}

// ---------------------------------------------------------------------------
// Lorenzo kernels (order-1 rank 1..3 and order-2 1-D), mirroring
// predictor.walkLorenzo{1D,2,2D,3D}.

func (k *encodeKernel) lorenzo1D(n int) {
	prev := 0.0
	for i := 0; i < n; i++ {
		k.emit(i, prev)
		prev = k.work[i]
	}
}

func (k *decodeKernel) lorenzo1D(n int) {
	prev := 0.0
	for i := 0; i < n; i++ {
		k.emit(i, prev)
		prev = k.work[i]
	}
}

func (k *encodeKernel) lorenzo2nd(n int) {
	for i := 0; i < n; i++ {
		var pred float64
		switch {
		case i >= 2:
			pred = 2*k.work[i-1] - k.work[i-2]
		case i == 1:
			pred = k.work[0]
		}
		k.emit(i, pred)
	}
}

func (k *decodeKernel) lorenzo2nd(n int) {
	for i := 0; i < n; i++ {
		var pred float64
		switch {
		case i >= 2:
			pred = 2*k.work[i-1] - k.work[i-2]
		case i == 1:
			pred = k.work[0]
		}
		k.emit(i, pred)
	}
}

func (k *encodeKernel) lorenzo2D(dims []int) {
	rows, cols := dims[0], dims[1]
	work := k.work
	for i := 0; i < rows; i++ {
		row := i * cols
		for j := 0; j < cols; j++ {
			var a, b, c float64 // west, north, northwest
			if j > 0 {
				a = work[row+j-1]
			}
			if i > 0 {
				b = work[row-cols+j]
				if j > 0 {
					c = work[row-cols+j-1]
				}
			}
			k.emit(row+j, a+b-c)
		}
	}
}

func (k *decodeKernel) lorenzo2D(dims []int) {
	rows, cols := dims[0], dims[1]
	work := k.work
	for i := 0; i < rows; i++ {
		row := i * cols
		for j := 0; j < cols; j++ {
			var a, b, c float64
			if j > 0 {
				a = work[row+j-1]
			}
			if i > 0 {
				b = work[row-cols+j]
				if j > 0 {
					c = work[row-cols+j-1]
				}
			}
			k.emit(row+j, a+b-c)
		}
	}
}

func (k *encodeKernel) lorenzo3D(dims []int) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	s0 := d1 * d2
	work := k.work
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := i*s0 + j*d2
			for kk := 0; kk < d2; kk++ {
				idx := base + kk
				var f100, f010, f001, f110, f101, f011, f111 float64
				if i > 0 {
					f100 = work[idx-s0]
				}
				if j > 0 {
					f010 = work[idx-d2]
				}
				if kk > 0 {
					f001 = work[idx-1]
				}
				if i > 0 && j > 0 {
					f110 = work[idx-s0-d2]
				}
				if i > 0 && kk > 0 {
					f101 = work[idx-s0-1]
				}
				if j > 0 && kk > 0 {
					f011 = work[idx-d2-1]
				}
				if i > 0 && j > 0 && kk > 0 {
					f111 = work[idx-s0-d2-1]
				}
				k.emit(idx, f100+f010+f001-f110-f101-f011+f111)
			}
		}
	}
}

func (k *decodeKernel) lorenzo3D(dims []int) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	s0 := d1 * d2
	work := k.work
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := i*s0 + j*d2
			for kk := 0; kk < d2; kk++ {
				idx := base + kk
				var f100, f010, f001, f110, f101, f011, f111 float64
				if i > 0 {
					f100 = work[idx-s0]
				}
				if j > 0 {
					f010 = work[idx-d2]
				}
				if kk > 0 {
					f001 = work[idx-1]
				}
				if i > 0 && j > 0 {
					f110 = work[idx-s0-d2]
				}
				if i > 0 && kk > 0 {
					f101 = work[idx-s0-1]
				}
				if j > 0 && kk > 0 {
					f011 = work[idx-d2-1]
				}
				if i > 0 && j > 0 && kk > 0 {
					f111 = work[idx-s0-d2-1]
				}
				k.emit(idx, f100+f010+f001-f110-f101-f011+f111)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Interpolation kernels, mirroring predictor's multilevel walk and sweep.

// kernelStrides is the row-major stride helper shared by the interp kernels
// (a copy of the predictor package's unexported strides).
func kernelStrides(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

// kernelMaxLevel is the predictor package's maxLevelFor: smallest L with
// 2^L >= max(dims), at least 1.
func kernelMaxLevel(dims []int) int {
	maxDim := 1
	for _, d := range dims {
		if d > maxDim {
			maxDim = d
		}
	}
	l := 0
	for (1 << l) < maxDim {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

func (k *encodeKernel) interp(dims []int, cubic bool) {
	k.emit(0, 0) // anchor point
	st := kernelStrides(dims)
	for level := kernelMaxLevel(dims); level >= 1; level-- {
		s := 1 << (level - 1)
		for d := range dims {
			k.interpSweep(dims, st, d, s, cubic)
		}
	}
}

func (k *decodeKernel) interp(dims []int, cubic bool) {
	k.emit(0, 0)
	st := kernelStrides(dims)
	for level := kernelMaxLevel(dims); level >= 1; level-- {
		s := 1 << (level - 1)
		for d := range dims {
			k.interpSweep(dims, st, d, s, cubic)
		}
	}
}

func (k *encodeKernel) interpSweep(dims, st []int, d, s int, cubic bool) {
	rank := len(dims)
	if s >= dims[d] {
		return
	}
	coord := make([]int, rank)
	steps := make([]int, rank)
	for j := 0; j < rank; j++ {
		if j < d {
			steps[j] = s
		} else {
			steps[j] = 2 * s
		}
	}
	stD := st[d]
	dimD := dims[d]
	work := k.work
	for {
		base := 0
		for j := 0; j < rank; j++ {
			if j != d {
				base += coord[j] * st[j]
			}
		}
		for c := s; c < dimD; c += 2 * s {
			idx := base + c*stD
			a := work[idx-s*stD]
			var pred float64
			hasB := c+s < dimD
			if cubic && c-3*s >= 0 && c+3*s < dimD {
				a3 := work[idx-3*s*stD]
				b1 := work[idx+s*stD]
				b3 := work[idx+3*s*stD]
				pred = (-a3 + 9*a + 9*b1 - b3) / 16
			} else if hasB {
				pred = (a + work[idx+s*stD]) / 2
			} else {
				pred = a
			}
			k.emit(idx, pred)
		}
		j := rank - 1
		for ; j >= 0; j-- {
			if j == d {
				continue
			}
			coord[j] += steps[j]
			if coord[j] < dims[j] {
				break
			}
			coord[j] = 0
		}
		if j < 0 {
			return
		}
	}
}

func (k *decodeKernel) interpSweep(dims, st []int, d, s int, cubic bool) {
	rank := len(dims)
	if s >= dims[d] {
		return
	}
	coord := make([]int, rank)
	steps := make([]int, rank)
	for j := 0; j < rank; j++ {
		if j < d {
			steps[j] = s
		} else {
			steps[j] = 2 * s
		}
	}
	stD := st[d]
	dimD := dims[d]
	work := k.work
	for {
		base := 0
		for j := 0; j < rank; j++ {
			if j != d {
				base += coord[j] * st[j]
			}
		}
		for c := s; c < dimD; c += 2 * s {
			idx := base + c*stD
			a := work[idx-s*stD]
			var pred float64
			hasB := c+s < dimD
			if cubic && c-3*s >= 0 && c+3*s < dimD {
				a3 := work[idx-3*s*stD]
				b1 := work[idx+s*stD]
				b3 := work[idx+3*s*stD]
				pred = (-a3 + 9*a + 9*b1 - b3) / 16
			} else if hasB {
				pred = (a + work[idx+s*stD]) / 2
			} else {
				pred = a
			}
			k.emit(idx, pred)
		}
		j := rank - 1
		for ; j >= 0; j-- {
			if j == d {
				continue
			}
			coord[j] += steps[j]
			if coord[j] < dims[j] {
				break
			}
			coord[j] = 0
		}
		if j < 0 {
			return
		}
	}
}
