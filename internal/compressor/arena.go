package compressor

import (
	"sync"

	"rqm/internal/bitio"
)

// arena is the pooled per-compression scratch set: every buffer the hot path
// needs — the reconstruction work slice, the symbol stream, the dense
// code-frequency counters, the Huffman encode LUT, the PWREL bitmaps, and
// the payload bit writer — lives here, so steady-state compression under
// serving load allocates only what escapes into the output container.
//
// Ownership rules (see DESIGN.md §12):
//   - Compress/Decompress acquire an arena on entry and release it before
//     returning; nothing reachable from a Result or a returned Field may
//     alias arena memory (work on the decompress side is allocated fresh
//     because it escapes as Field.Data).
//   - counts is kept all-zero between uses. Whoever increments an entry
//     appends its index to touched exactly once; release() zeroes only the
//     touched entries, so cleanup is O(distinct symbols), not O(radius).
//   - encLUT is never cleared: stale entries are harmless because the
//     encoder only reads entries for symbols present in the codebook it
//     just built (the huffman.EncodeLUT contract).
type arena struct {
	work    []float64
	syms    []uint32
	unpred  []float64
	counts  []int64
	touched []uint32
	encLUT  []uint64
	signs   []byte
	zeros   []byte
	bw      *bitio.Writer
	// Entropy-stage scratch beyond the serial writer: one bit writer per
	// interleaved stream, a dense ANS encode LUT, the ANS output buffer,
	// and the interleaved-blob assembly buffer.
	bws     []*bitio.Writer
	ansLUTb []uint32
	ansBuf  []byte
	blobBuf []byte
}

var arenaPool = sync.Pool{New: func() interface{} { return &arena{} }}

func getArena() *arena { return arenaPool.Get().(*arena) }

// release restores the arena invariants (zero counts, empty touched) and
// returns it to the pool.
func (a *arena) release() {
	for _, s := range a.touched {
		a.counts[s] = 0
	}
	a.touched = a.touched[:0]
	a.unpred = a.unpred[:0]
	if a.bw != nil {
		a.bw.Reset()
	}
	arenaPool.Put(a)
}

// f64 returns a length-n float64 scratch slice, reusing capacity.
func (a *arena) f64(n int) []float64 {
	if cap(a.work) < n {
		a.work = make([]float64, n)
	}
	a.work = a.work[:n]
	return a.work
}

// u32 returns a length-n uint32 scratch slice, reusing capacity.
func (a *arena) u32(n int) []uint32 {
	if cap(a.syms) < n {
		a.syms = make([]uint32, n)
	}
	a.syms = a.syms[:n]
	return a.syms
}

// freqTables returns the dense counter and encode-LUT slices sized for n
// symbol values. Fresh counter memory is zero by construction; reused
// counter memory is zero by the release() invariant.
func (a *arena) freqTables(n int) (counts []int64, encLUT []uint64) {
	if cap(a.counts) < n {
		a.counts = make([]int64, n)
	}
	a.counts = a.counts[:n]
	if cap(a.encLUT) < n {
		a.encLUT = make([]uint64, n)
	}
	a.encLUT = a.encLUT[:n]
	return a.counts, a.encLUT
}

// bitmaps returns the two length-n PWREL bitmap slices, zeroed.
func (a *arena) bitmaps(n int) (signs, zeros []byte) {
	if cap(a.signs) < n {
		a.signs = make([]byte, n)
		a.zeros = make([]byte, n)
	} else {
		a.signs = a.signs[:n]
		a.zeros = a.zeros[:n]
		for i := range a.signs {
			a.signs[i] = 0
			a.zeros[i] = 0
		}
	}
	return a.signs, a.zeros
}

// bitWriter returns the pooled payload writer, reset.
func (a *arena) bitWriter() *bitio.Writer {
	if a.bw == nil {
		a.bw = bitio.NewWriter(0)
	}
	a.bw.Reset()
	return a.bw
}

// bitWriters returns k pooled stream writers, reset.
func (a *arena) bitWriters(k int) []*bitio.Writer {
	for len(a.bws) < k {
		a.bws = append(a.bws, bitio.NewWriter(0))
	}
	for i := 0; i < k; i++ {
		a.bws[i].Reset()
	}
	return a.bws[:k]
}

// ansLUT returns the length-n dense ANS encode LUT scratch (ans.FillLUT
// overwrites every entry, so no clearing invariant is needed).
func (a *arena) ansLUT(n int) []uint32 {
	if cap(a.ansLUTb) < n {
		a.ansLUTb = make([]uint32, n)
	}
	a.ansLUTb = a.ansLUTb[:n]
	return a.ansLUTb
}

// blob returns a length-n byte scratch slice, reusing capacity.
func (a *arena) blob(n int) []byte {
	if cap(a.blobBuf) < n {
		a.blobBuf = make([]byte, n)
	}
	a.blobBuf = a.blobBuf[:n]
	return a.blobBuf
}
