package compressor

// SetFusedKernels flips the fused-kernel gate for equivalence tests and
// returns a restore function. Tests that compare the fused and generic
// paths must not run in parallel with each other.
func SetFusedKernels(on bool) (restore func()) {
	prev := useFusedKernels
	useFusedKernels = on
	return func() { useFusedKernels = prev }
}
