package compressor

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rqm/internal/ans"
	"rqm/internal/bitio"
	"rqm/internal/huffman"
)

// EntropyKind selects the entropy stage coding the quantization symbols.
// The kind is recorded in the container (version 2), so decoding is always
// self-describing; the serial Huffman default keeps emitting the version 1
// container byte-for-byte.
type EntropyKind int

const (
	// EntropyHuffman is the serial single-stream canonical Huffman coder
	// (the SZ default and this package's historical format).
	EntropyHuffman EntropyKind = iota
	// EntropyInterleaved splits the symbols round-robin across
	// huffman.DefaultStreams bitstreams sharing one codebook, so decode
	// runs that many independent bit-extraction chains in one loop.
	EntropyInterleaved
	// EntropyTANS codes the symbols with a table-based asymmetric numeral
	// system (2 interleaved states), reaching fractional bits/symbol on
	// skewed histograms where Huffman is pinned at 1 bit.
	EntropyTANS
)

// String names the entropy kind.
func (e EntropyKind) String() string {
	switch e {
	case EntropyHuffman:
		return "huffman"
	case EntropyInterleaved:
		return "huffman-ilv"
	case EntropyTANS:
		return "tans"
	}
	return fmt.Sprintf("EntropyKind(%d)", int(e))
}

// ParseEntropyKind resolves an entropy-stage name.
func ParseEntropyKind(s string) (EntropyKind, error) {
	for _, e := range []EntropyKind{EntropyHuffman, EntropyInterleaved, EntropyTANS} {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("compressor: unknown entropy stage %q", s)
}

// entropyEnc is one encoded entropy stage, ready for container assembly.
// kind may differ from the requested kind (tANS falls back to serial
// Huffman when the alphabet outgrows the largest table).
type entropyEnc struct {
	kind     EntropyKind
	codebook []byte // serialized Huffman codebook or ANS table
	raw      []byte // pre-lossless payload blob
	bits     uint64 // entropy-coded bits, excluding padding and framing
	param    uint8  // stream count (interleaved) / state count (tANS)
	states   [ans.NumStates]uint32
	bitLen   uint64
}

// encodeEntropy runs the selected entropy coder over the symbol stream.
// The returned raw blob aliases arena memory (the bit writers' buffers) for
// the Huffman kinds; callers must finish with it before the arena releases.
func encodeEntropy(a *arena, kind EntropyKind, syms []uint32, freqs map[uint32]int64, dense bool, encLUT []uint64) (*entropyEnc, error) {
	switch kind {
	case EntropyHuffman, EntropyInterleaved:
		cb, err := huffman.Build(freqs)
		if err != nil {
			return nil, err
		}
		enc := &entropyEnc{kind: kind, codebook: cb.Serialize()}
		var lut []uint64
		if dense {
			cb.FillLUT(encLUT)
			lut = encLUT
		}
		if kind == EntropyHuffman {
			bw := a.bitWriter()
			if lut != nil {
				err = cb.EncodeLUT(bw, syms, lut)
			} else {
				err = cb.Encode(bw, syms)
			}
			if err != nil {
				return nil, err
			}
			enc.bits = bw.Bits()
			enc.raw = bw.Bytes()
			return enc, nil
		}
		k := huffman.DefaultStreams
		ws := a.bitWriters(k)
		streams, err := cb.EncodeInterleaved(syms, k, lut, ws)
		if err != nil {
			return nil, err
		}
		enc.param = uint8(k)
		for _, w := range ws[:k] {
			enc.bits += w.Bits()
		}
		// Blob: K little-endian uint32 stream lengths, then the streams.
		total := 4 * k
		for _, s := range streams {
			total += len(s)
		}
		blob := a.blob(total)
		for i, s := range streams {
			binary.LittleEndian.PutUint32(blob[4*i:], uint32(len(s)))
		}
		off := 4 * k
		for _, s := range streams {
			off += copy(blob[off:], s)
		}
		enc.raw = blob
		return enc, nil

	case EntropyTANS:
		tab, err := ans.Build(freqs)
		if errors.Is(err, ans.ErrAlphabetTooLarge) {
			// The alphabet cannot be normalized into the largest table;
			// code this field serially instead. The container records what
			// was actually used, so decode needs no knowledge of the fall
			// back.
			return encodeEntropy(a, EntropyHuffman, syms, freqs, dense, encLUT)
		}
		if err != nil {
			return nil, err
		}
		defer tab.Release()
		enc := &entropyEnc{kind: EntropyTANS, codebook: tab.Serialize(), param: ans.NumStates}
		var lut []uint32
		if dense {
			lut = a.ansLUT(int(tab.MaxSymbol()) + 1)
			tab.FillLUT(lut)
		}
		stream, states, bits, err := tab.Encode(a.ansBuf[:0], syms, lut)
		if err != nil {
			return nil, err
		}
		a.ansBuf = stream // hand the (possibly grown) buffer back to the arena
		enc.raw = stream
		enc.bits = bits
		enc.bitLen = bits
		enc.states = states
		return enc, nil
	}
	return nil, fmt.Errorf("compressor: unknown entropy kind %d", int(kind))
}

// decodeEntropy reconstructs the symbol stream from a parsed container's
// entropy section. syms must be sized to the symbol count.
func decodeEntropy(enc *entropyEnc, rawPayload []byte, syms []uint32) error {
	switch enc.kind {
	case EntropyHuffman:
		cb, _, err := huffman.Parse(enc.codebook)
		if err != nil {
			return err
		}
		return cb.Decode(bitio.NewReader(rawPayload), syms)

	case EntropyInterleaved:
		cb, _, err := huffman.Parse(enc.codebook)
		if err != nil {
			return err
		}
		k := int(enc.param)
		if k < 1 || k > huffman.MaxStreams {
			return fmt.Errorf("compressor: interleaved container declares %d streams", k)
		}
		if len(rawPayload) < 4*k {
			return errTruncatedContainer
		}
		streams := make([][]byte, k)
		off := 4 * k
		for i := 0; i < k; i++ {
			l := int(binary.LittleEndian.Uint32(rawPayload[4*i:]))
			if l < 0 || off+l > len(rawPayload) {
				return fmt.Errorf("compressor: interleaved stream %d of %d bytes exceeds payload", i, l)
			}
			streams[i] = rawPayload[off : off+l : off+l]
			off += l
		}
		if off != len(rawPayload) {
			return fmt.Errorf("compressor: %d trailing bytes after interleaved streams", len(rawPayload)-off)
		}
		return cb.DecodeInterleaved(streams, syms)

	case EntropyTANS:
		if enc.param != ans.NumStates {
			return fmt.Errorf("compressor: tANS container declares %d states, this build decodes %d",
				enc.param, ans.NumStates)
		}
		tab, _, err := ans.Parse(enc.codebook)
		if err != nil {
			return err
		}
		defer tab.Release()
		return tab.Decode(rawPayload, enc.states, enc.bitLen, syms)
	}
	return fmt.Errorf("compressor: unknown entropy kind %d", int(enc.kind))
}
