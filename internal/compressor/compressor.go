// Package compressor assembles the full SZ3-style prediction-based
// error-bounded lossy compressor: predictor → linear-scaling quantizer →
// canonical Huffman coder → optional lossless backend (zero-RLE, LZ77, or
// DEFLATE). It supports absolute, value-range-relative, and pointwise-
// relative (log-transform) error bounds and guarantees the bound on every
// reconstructed value.
package compressor

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rqm/internal/bitio"
	"rqm/internal/grid"
	"rqm/internal/huffman"
	"rqm/internal/lz77"
	"rqm/internal/predictor"
	"rqm/internal/quantizer"
	"rqm/internal/rle"
	"rqm/internal/stats"
)

// ErrorMode selects how the user's error bound is interpreted.
type ErrorMode int

const (
	// ABS bounds |original − reconstructed| pointwise.
	ABS ErrorMode = iota
	// REL bounds the error relative to the field's value range
	// (absolute bound = eb × (max − min)).
	REL
	// PWREL bounds the error relative to each point's own magnitude,
	// implemented with the standard logarithmic transform.
	PWREL
)

// String names the mode.
func (m ErrorMode) String() string {
	switch m {
	case ABS:
		return "abs"
	case REL:
		return "rel"
	case PWREL:
		return "pwrel"
	}
	return fmt.Sprintf("ErrorMode(%d)", int(m))
}

// ParseErrorMode resolves a mode name.
func ParseErrorMode(s string) (ErrorMode, error) {
	for _, m := range []ErrorMode{ABS, REL, PWREL} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("compressor: unknown error mode %q", s)
}

// LosslessKind selects the optional lossless stage after Huffman coding.
type LosslessKind int

const (
	// LosslessNone keeps the raw Huffman payload.
	LosslessNone LosslessKind = iota
	// LosslessRLE applies zero-byte run-length encoding (the stage the
	// paper's model reasons about).
	LosslessRLE
	// LosslessLZ77 applies the built-in dictionary coder (Zstandard
	// stand-in).
	LosslessLZ77
	// LosslessFlate applies DEFLATE via compress/flate (Gzip stand-in).
	LosslessFlate
)

// String names the lossless backend.
func (l LosslessKind) String() string {
	switch l {
	case LosslessNone:
		return "none"
	case LosslessRLE:
		return "rle"
	case LosslessLZ77:
		return "lz77"
	case LosslessFlate:
		return "flate"
	}
	return fmt.Sprintf("LosslessKind(%d)", int(l))
}

// ParseLosslessKind resolves a lossless-backend name.
func ParseLosslessKind(s string) (LosslessKind, error) {
	for _, l := range []LosslessKind{LosslessNone, LosslessRLE, LosslessLZ77, LosslessFlate} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("compressor: unknown lossless backend %q", s)
}

// Options configures one compression run.
type Options struct {
	// Predictor selects the prediction scheme.
	Predictor predictor.Kind
	// Mode interprets ErrorBound.
	Mode ErrorMode
	// ErrorBound is the user bound in Mode semantics; must be positive.
	ErrorBound float64
	// Lossless selects the optional stage after Huffman.
	Lossless LosslessKind
	// Radius overrides the quantizer radius (0 = quantizer.DefaultRadius).
	Radius int32
}

// Stats reports what happened during compression; the experiment harness
// compares these against the model's estimates.
type Stats struct {
	// N is the number of values.
	N int
	// AbsEB is the effective absolute bound in the (possibly transformed)
	// compression domain.
	AbsEB float64
	// OriginalBytes is the field size at its original precision.
	OriginalBytes int64
	// CompressedBytes is the full container size.
	CompressedBytes int64
	// HuffmanBits is the Huffman payload size in bits (before lossless).
	HuffmanBits uint64
	// PayloadBytesFinal is the payload size after the lossless stage.
	PayloadBytesFinal int
	// CodebookBytes is the serialized codebook size.
	CodebookBytes int
	// AuxBytes is the predictor side-channel size (regression coefficients).
	AuxBytes int
	// Unpredictable counts values stored exactly.
	Unpredictable int
	// P0 is the frequency of the most common quantization code.
	P0 float64
	// ZeroFrac is the frequency of code 0 specifically.
	ZeroFrac float64
	// CodeHist is the quantization-code histogram (unpredictable excluded).
	CodeHist *stats.CodeHistogram
	// BitRate is total compressed bits per value.
	BitRate float64
	// BitRateHuffman is Huffman-payload bits per value (the quantity the
	// paper's Eq. 1 estimates).
	BitRateHuffman float64
	// Ratio is OriginalBytes over CompressedBytes.
	Ratio float64
	// PredictTime, EncodeTime, LosslessTime break down the run (the paper's
	// Fig. 9 cost accounting).
	PredictTime  time.Duration
	EncodeTime   time.Duration
	LosslessTime time.Duration
}

// Result is a compressed field plus its statistics.
type Result struct {
	// Bytes is the self-describing compressed container.
	Bytes []byte
	// Stats describes the run.
	Stats Stats
}

// ContainerMagic is the little-endian magic of the native prediction-codec
// container ("RQMC"); the codec router uses it to recognize legacy payloads.
const ContainerMagic uint32 = 0x52514d43

const (
	containerMagic   = ContainerMagic
	containerVersion = 1
)

// reservedSymbolOffset: symbol = code + radius; the value 2*radius+1 marks
// an unpredictable (exactly stored) sample.
func reservedSymbol(radius int32) uint32 { return uint32(2*radius) + 1 }

// Compress runs the full pipeline on f.
func Compress(f *grid.Field, opts Options) (*Result, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("compressor: empty field")
	}
	if !(opts.ErrorBound > 0) {
		return nil, fmt.Errorf("compressor: error bound must be positive, got %v", opts.ErrorBound)
	}
	pred, err := predictor.New(opts.Predictor)
	if err != nil {
		return nil, err
	}
	if !pred.Supports(f.Rank()) {
		return nil, fmt.Errorf("compressor: predictor %s does not support rank %d", opts.Predictor, f.Rank())
	}
	radius := opts.Radius
	if radius == 0 {
		radius = quantizer.DefaultRadius
	}

	// Resolve the absolute bound and transform the data if needed.
	work := make([]float64, f.Len())
	copy(work, f.Data)
	absEB := opts.ErrorBound
	var signs, zeros []byte // PWREL bitmaps (1 byte per value pre-RLE)
	switch opts.Mode {
	case ABS:
	case REL:
		lo, hi := f.ValueRange()
		absEB = opts.ErrorBound * (hi - lo)
		if absEB == 0 {
			absEB = opts.ErrorBound // constant field: any positive bound works
		}
	case PWREL:
		absEB = math.Log2(1 + opts.ErrorBound)
		signs = make([]byte, f.Len())
		zeros = make([]byte, f.Len())
		minLog := math.Inf(1)
		for _, v := range work {
			if v != 0 {
				if lg := math.Log2(math.Abs(v)); lg < minLog {
					minLog = lg
				}
			}
		}
		if math.IsInf(minLog, 1) {
			minLog = 0 // all zeros
		}
		for i, v := range work {
			switch {
			case v == 0:
				zeros[i] = 1
				work[i] = minLog
			case v < 0:
				signs[i] = 1
				work[i] = math.Log2(-v)
			default:
				work[i] = math.Log2(v)
			}
		}
	default:
		return nil, fmt.Errorf("compressor: unknown error mode %d", int(opts.Mode))
	}

	qz, err := quantizer.New(absEB, radius)
	if err != nil {
		return nil, err
	}

	tPredict := time.Now()
	syms := make([]uint32, 0, f.Len())
	var unpred []float64
	resSym := reservedSymbol(radius)
	hist := stats.NewCodeHistogram()
	aux, err := pred.CompressWalk(f.Dims, work, func(idx int, p float64) {
		code, recon, ok := qz.Quantize(work[idx], p)
		if !ok {
			syms = append(syms, resSym)
			unpred = append(unpred, work[idx])
			// work[idx] keeps the exact value.
			return
		}
		syms = append(syms, uint32(code)+uint32(radius))
		hist.Add(code, 1)
		work[idx] = recon
	})
	if err != nil {
		return nil, err
	}
	predictTime := time.Since(tPredict)

	tEncode := time.Now()
	freqs := huffman.FreqsOf(syms)
	cb, err := huffman.Build(freqs)
	if err != nil {
		return nil, err
	}
	codebook := cb.Serialize()
	bw := bitio.NewWriter(len(syms) / 2)
	if err := cb.Encode(bw, syms); err != nil {
		return nil, err
	}
	huffBits := bw.Bits()
	payload := bw.Bytes()
	encodeTime := time.Since(tEncode)

	tLossless := time.Now()
	finalPayload, err := applyLossless(opts.Lossless, payload)
	if err != nil {
		return nil, err
	}
	losslessTime := time.Since(tLossless)

	// Compress PWREL bitmaps with RLE (they are run-heavy).
	var signsEnc, zerosEnc []byte
	if opts.Mode == PWREL {
		signsEnc = rle.Encode(signs)
		zerosEnc = rle.Encode(zeros)
	}

	out := assembleContainer(f, opts, radius, absEB, aux, unpred, signsEnc, zerosEnc, codebook, finalPayload, len(payload))

	p0, _ := hist.TopP()
	if hist.Total == 0 {
		p0 = 0
	}
	st := Stats{
		N:                 f.Len(),
		AbsEB:             absEB,
		OriginalBytes:     f.OriginalBytes(),
		CompressedBytes:   int64(len(out)),
		HuffmanBits:       huffBits,
		PayloadBytesFinal: len(finalPayload),
		CodebookBytes:     len(codebook),
		AuxBytes:          len(aux),
		Unpredictable:     len(unpred),
		P0:                p0,
		ZeroFrac:          hist.P(0),
		CodeHist:          hist,
		BitRate:           float64(len(out)) * 8 / float64(f.Len()),
		BitRateHuffman:    float64(huffBits) / float64(f.Len()),
		Ratio:             float64(f.OriginalBytes()) / float64(len(out)),
		PredictTime:       predictTime,
		EncodeTime:        encodeTime,
		LosslessTime:      losslessTime,
	}
	return &Result{Bytes: out, Stats: st}, nil
}

func applyLossless(kind LosslessKind, payload []byte) ([]byte, error) {
	switch kind {
	case LosslessNone:
		return payload, nil
	case LosslessRLE:
		return rle.Encode(payload), nil
	case LosslessLZ77:
		return lz77.Encode(payload), nil
	case LosslessFlate:
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(payload); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("compressor: unknown lossless kind %d", int(kind))
}

func undoLossless(kind LosslessKind, data []byte, rawLen int) ([]byte, error) {
	switch kind {
	case LosslessNone:
		return data, nil
	case LosslessRLE:
		return rle.Decode(data, rawLen)
	case LosslessLZ77:
		return lz77.Decode(data, rawLen)
	case LosslessFlate:
		fr := flate.NewReader(bytes.NewReader(data))
		defer fr.Close()
		out := make([]byte, 0, rawLen)
		buf := make([]byte, 64*1024)
		for {
			n, err := fr.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("compressor: unknown lossless kind %d", int(kind))
}

// assembleContainer lays out the self-describing byte stream.
func assembleContainer(f *grid.Field, opts Options, radius int32, absEB float64,
	aux []byte, unpred []float64, signsEnc, zerosEnc, codebook, payload []byte, rawPayloadLen int) []byte {

	var buf bytes.Buffer
	w := func(v interface{}) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(containerMagic))
	w(uint8(containerVersion))
	w(uint8(opts.Predictor))
	w(uint8(opts.Mode))
	w(uint8(opts.Lossless))
	w(radius)
	w(opts.ErrorBound)
	w(absEB)
	w(uint8(f.Prec))
	w(uint8(f.Rank()))
	for _, d := range f.Dims {
		w(uint64(d))
	}
	name := []byte(f.Name)
	if len(name) > 65535 {
		name = name[:65535]
	}
	w(uint16(len(name)))
	buf.Write(name)
	w(uint32(len(unpred)))
	for _, v := range unpred {
		w(v)
	}
	w(uint32(len(aux)))
	buf.Write(aux)
	w(uint32(len(signsEnc)))
	buf.Write(signsEnc)
	w(uint32(len(zerosEnc)))
	buf.Write(zerosEnc)
	w(uint32(len(codebook)))
	buf.Write(codebook)
	w(uint32(rawPayloadLen))
	w(uint32(len(payload)))
	buf.Write(payload)
	return buf.Bytes()
}

// Decompress reconstructs a field from a container produced by Compress.
func Decompress(data []byte) (*grid.Field, error) {
	r := bytes.NewReader(data)
	rd := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	if err := rd(&magic); err != nil || magic != containerMagic {
		return nil, errors.New("compressor: bad magic")
	}
	var version, predKind, mode, lossless, prec, rank uint8
	var radius int32
	var userEB, absEB float64
	if err := firstErr(rd(&version), rd(&predKind), rd(&mode), rd(&lossless),
		rd(&radius), rd(&userEB), rd(&absEB), rd(&prec), rd(&rank)); err != nil {
		return nil, err
	}
	if version != containerVersion {
		return nil, fmt.Errorf("compressor: unsupported version %d", version)
	}
	if rank < 1 || rank > 4 {
		return nil, fmt.Errorf("compressor: bad rank %d", rank)
	}
	dims := make([]int, rank)
	n := 1
	for i := range dims {
		var d uint64
		if err := rd(&d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<32 {
			return nil, fmt.Errorf("compressor: bad dimension %d", d)
		}
		dims[i] = int(d)
		n *= dims[i]
	}
	var nameLen uint16
	if err := rd(&nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	var unpredCount uint32
	if err := rd(&unpredCount); err != nil {
		return nil, err
	}
	if int(unpredCount) > n {
		return nil, errors.New("compressor: unpredictable count exceeds field size")
	}
	unpred := make([]float64, unpredCount)
	for i := range unpred {
		if err := rd(&unpred[i]); err != nil {
			return nil, err
		}
	}
	aux, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	signsEnc, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	zerosEnc, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	codebookBytes, err := readBlob(r)
	if err != nil {
		return nil, err
	}
	var rawPayloadLen, payloadLen uint32
	if err := firstErr(rd(&rawPayloadLen), rd(&payloadLen)); err != nil {
		return nil, err
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}

	rawPayload, err := undoLossless(LosslessKind(lossless), payload, int(rawPayloadLen))
	if err != nil {
		return nil, err
	}
	cb, _, err := huffman.Parse(codebookBytes)
	if err != nil {
		return nil, err
	}
	syms := make([]uint32, n)
	if err := cb.Decode(bitio.NewReader(rawPayload), syms); err != nil {
		return nil, err
	}

	pred, err := predictor.New(predictor.Kind(predKind))
	if err != nil {
		return nil, err
	}
	qz, err := quantizer.New(absEB, radius)
	if err != nil {
		return nil, err
	}
	resSym := reservedSymbol(radius)
	work := make([]float64, n)
	symPos := 0
	unpredPos := 0
	var walkErr error
	err = pred.DecompressWalk(dims, work, aux, func(idx int, p float64) {
		if walkErr != nil {
			return
		}
		s := syms[symPos]
		symPos++
		if s == resSym {
			if unpredPos >= len(unpred) {
				walkErr = errors.New("compressor: unpredictable stream exhausted")
				return
			}
			work[idx] = unpred[unpredPos]
			unpredPos++
			return
		}
		code := int64(s) - int64(radius)
		if code < -int64(radius) || code > int64(radius) {
			walkErr = fmt.Errorf("compressor: symbol %d out of range", s)
			return
		}
		work[idx] = qz.Reconstruct(p, int32(code))
	})
	if err == nil {
		err = walkErr
	}
	if err != nil {
		return nil, err
	}

	if ErrorMode(mode) == PWREL {
		signs, err := rle.Decode(signsEnc, n)
		if err != nil {
			return nil, err
		}
		zeros, err := rle.Decode(zerosEnc, n)
		if err != nil {
			return nil, err
		}
		if len(signs) != n || len(zeros) != n {
			return nil, errors.New("compressor: bitmap length mismatch")
		}
		for i := range work {
			switch {
			case zeros[i] == 1:
				work[i] = 0
			case signs[i] == 1:
				work[i] = -math.Exp2(work[i])
			default:
				work[i] = math.Exp2(work[i])
			}
		}
	}

	out, err := grid.FromData(string(name), grid.Precision(prec), work, dims...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func readBlob(r *bytes.Reader) ([]byte, error) {
	var l uint32
	if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
		return nil, err
	}
	if int(l) > r.Len() {
		return nil, errors.New("compressor: blob length exceeds container")
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// VerifyErrorBound checks that recon satisfies the bound against orig.
// Returns nil if every sample is within the bound (with a 1e-12 relative
// slack for float round-off).
func VerifyErrorBound(orig, recon *grid.Field, mode ErrorMode, eb float64) error {
	if orig.Len() != recon.Len() {
		return errors.New("compressor: field sizes differ")
	}
	switch mode {
	case ABS:
		slack := eb * 1e-9
		for i := range orig.Data {
			if math.Abs(orig.Data[i]-recon.Data[i]) > eb+slack {
				return fmt.Errorf("compressor: ABS bound violated at %d: |%g - %g| > %g",
					i, orig.Data[i], recon.Data[i], eb)
			}
		}
	case REL:
		lo, hi := orig.ValueRange()
		abs := eb * (hi - lo)
		if abs == 0 {
			abs = eb
		}
		return VerifyErrorBound(orig, recon, ABS, abs)
	case PWREL:
		for i := range orig.Data {
			o := orig.Data[i]
			d := math.Abs(o - recon.Data[i])
			if o == 0 {
				if d != 0 {
					return fmt.Errorf("compressor: PWREL zero not exact at %d", i)
				}
				continue
			}
			if d > eb*math.Abs(o)*(1+1e-9) {
				return fmt.Errorf("compressor: PWREL bound violated at %d: %g vs %g", i, d, eb*math.Abs(o))
			}
		}
	}
	return nil
}
