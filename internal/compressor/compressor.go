// Package compressor assembles the full SZ3-style prediction-based
// error-bounded lossy compressor: predictor → linear-scaling quantizer →
// canonical Huffman coder → optional lossless backend (zero-RLE, LZ77, or
// DEFLATE). It supports absolute, value-range-relative, and pointwise-
// relative (log-transform) error bounds and guarantees the bound on every
// reconstructed value.
package compressor

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"rqm/internal/ans"
	"rqm/internal/grid"
	"rqm/internal/lz77"
	"rqm/internal/predictor"
	"rqm/internal/quantizer"
	"rqm/internal/rle"
	"rqm/internal/stats"
)

// ErrorMode selects how the user's error bound is interpreted.
type ErrorMode int

const (
	// ABS bounds |original − reconstructed| pointwise.
	ABS ErrorMode = iota
	// REL bounds the error relative to the field's value range
	// (absolute bound = eb × (max − min)).
	REL
	// PWREL bounds the error relative to each point's own magnitude,
	// implemented with the standard logarithmic transform.
	PWREL
)

// String names the mode.
func (m ErrorMode) String() string {
	switch m {
	case ABS:
		return "abs"
	case REL:
		return "rel"
	case PWREL:
		return "pwrel"
	}
	return fmt.Sprintf("ErrorMode(%d)", int(m))
}

// ParseErrorMode resolves a mode name.
func ParseErrorMode(s string) (ErrorMode, error) {
	for _, m := range []ErrorMode{ABS, REL, PWREL} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("compressor: unknown error mode %q", s)
}

// LosslessKind selects the optional lossless stage after Huffman coding.
type LosslessKind int

const (
	// LosslessNone keeps the raw Huffman payload.
	LosslessNone LosslessKind = iota
	// LosslessRLE applies zero-byte run-length encoding (the stage the
	// paper's model reasons about).
	LosslessRLE
	// LosslessLZ77 applies the built-in dictionary coder (Zstandard
	// stand-in).
	LosslessLZ77
	// LosslessFlate applies DEFLATE via compress/flate (Gzip stand-in).
	LosslessFlate
)

// String names the lossless backend.
func (l LosslessKind) String() string {
	switch l {
	case LosslessNone:
		return "none"
	case LosslessRLE:
		return "rle"
	case LosslessLZ77:
		return "lz77"
	case LosslessFlate:
		return "flate"
	}
	return fmt.Sprintf("LosslessKind(%d)", int(l))
}

// ParseLosslessKind resolves a lossless-backend name.
func ParseLosslessKind(s string) (LosslessKind, error) {
	for _, l := range []LosslessKind{LosslessNone, LosslessRLE, LosslessLZ77, LosslessFlate} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("compressor: unknown lossless backend %q", s)
}

// Options configures one compression run.
type Options struct {
	// Predictor selects the prediction scheme.
	Predictor predictor.Kind
	// Mode interprets ErrorBound.
	Mode ErrorMode
	// ErrorBound is the user bound in Mode semantics; must be positive.
	ErrorBound float64
	// Lossless selects the optional stage after Huffman.
	Lossless LosslessKind
	// Radius overrides the quantizer radius (0 = quantizer.DefaultRadius).
	Radius int32
	// Entropy selects the entropy stage (serial Huffman, interleaved
	// multi-stream Huffman, or tANS). The default EntropyHuffman emits the
	// historical version 1 container byte-for-byte.
	Entropy EntropyKind
}

// Stats reports what happened during compression; the experiment harness
// compares these against the model's estimates.
type Stats struct {
	// N is the number of values.
	N int
	// AbsEB is the effective absolute bound in the (possibly transformed)
	// compression domain.
	AbsEB float64
	// OriginalBytes is the field size at its original precision.
	OriginalBytes int64
	// CompressedBytes is the full container size.
	CompressedBytes int64
	// HuffmanBits is the entropy-coded payload size in bits (before
	// lossless), whichever entropy stage produced it.
	HuffmanBits uint64
	// Entropy is the entropy stage actually used (tANS falls back to
	// serial Huffman when the alphabet outgrows the largest table).
	Entropy EntropyKind
	// PayloadBytesFinal is the payload size after the lossless stage.
	PayloadBytesFinal int
	// CodebookBytes is the serialized codebook size.
	CodebookBytes int
	// AuxBytes is the predictor side-channel size (regression coefficients).
	AuxBytes int
	// Unpredictable counts values stored exactly.
	Unpredictable int
	// P0 is the frequency of the most common quantization code.
	P0 float64
	// ZeroFrac is the frequency of code 0 specifically.
	ZeroFrac float64
	// CodeHist is the quantization-code histogram (unpredictable excluded).
	CodeHist *stats.CodeHistogram
	// BitRate is total compressed bits per value.
	BitRate float64
	// BitRateHuffman is Huffman-payload bits per value (the quantity the
	// paper's Eq. 1 estimates).
	BitRateHuffman float64
	// Ratio is OriginalBytes over CompressedBytes.
	Ratio float64
	// PredictTime, EncodeTime, LosslessTime break down the run (the paper's
	// Fig. 9 cost accounting).
	PredictTime  time.Duration
	EncodeTime   time.Duration
	LosslessTime time.Duration
}

// Result is a compressed field plus its statistics.
type Result struct {
	// Bytes is the self-describing compressed container.
	Bytes []byte
	// Stats describes the run.
	Stats Stats
}

// ContainerMagic is the little-endian magic of the native prediction-codec
// container ("RQMC"); the codec router uses it to recognize legacy payloads.
const ContainerMagic uint32 = 0x52514d43

const (
	containerMagic   = ContainerMagic
	containerVersion = 1
	// containerVersionEntropy (version 2) inserts two bytes after the
	// lossless byte — entropy kind and entropy parameter — and, for tANS,
	// the final states + bit count before the payload lengths. It is
	// emitted only when the entropy stage is not serial Huffman, so every
	// container the serial default writes stays byte-identical to v1.
	containerVersionEntropy = 2
)

// reservedSymbolOffset: symbol = code + radius; the value 2*radius+1 marks
// an unpredictable (exactly stored) sample.
func reservedSymbol(radius int32) uint32 { return uint32(2*radius) + 1 }

// useFusedKernels gates the fused batch kernels; tests flip it to prove the
// fused and generic paths emit byte-identical containers.
var useFusedKernels = true

// denseCompressRadiusLimit bounds the dense counts/encode-LUT scratch
// (2*radius+2 entries each): radii beyond 2^20 take the sparse map-based
// path instead of allocating gigabytes of pooled arena per compression.
const denseCompressRadiusLimit = 1 << 20

// Compress runs the full pipeline on f.
func Compress(f *grid.Field, opts Options) (*Result, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("compressor: empty field")
	}
	if !(opts.ErrorBound > 0) {
		return nil, fmt.Errorf("compressor: error bound must be positive, got %v", opts.ErrorBound)
	}
	pred, err := predictor.New(opts.Predictor)
	if err != nil {
		return nil, err
	}
	if !pred.Supports(f.Rank()) {
		return nil, fmt.Errorf("compressor: predictor %s does not support rank %d", opts.Predictor, f.Rank())
	}
	radius := opts.Radius
	if radius == 0 {
		radius = quantizer.DefaultRadius
	}

	a := getArena()
	defer a.release()

	// Resolve the absolute bound and transform the data if needed.
	work := a.f64(f.Len())
	copy(work, f.Data)
	absEB := opts.ErrorBound
	var signs, zeros []byte // PWREL bitmaps (1 byte per value pre-RLE)
	switch opts.Mode {
	case ABS:
	case REL:
		lo, hi := f.ValueRange()
		absEB = opts.ErrorBound * (hi - lo)
		if absEB == 0 {
			absEB = opts.ErrorBound // constant field: any positive bound works
		}
	case PWREL:
		absEB = math.Log2(1 + opts.ErrorBound)
		signs, zeros = a.bitmaps(f.Len())
		minLog := math.Inf(1)
		for _, v := range work {
			if v != 0 {
				if lg := math.Log2(math.Abs(v)); lg < minLog {
					minLog = lg
				}
			}
		}
		if math.IsInf(minLog, 1) {
			minLog = 0 // all zeros
		}
		for i, v := range work {
			switch {
			case v == 0:
				zeros[i] = 1
				work[i] = minLog
			case v < 0:
				signs[i] = 1
				work[i] = math.Log2(-v)
			default:
				work[i] = math.Log2(v)
			}
		}
	default:
		return nil, fmt.Errorf("compressor: unknown error mode %d", int(opts.Mode))
	}

	// Resolve the quantizer early: it validates the bound/radius pair, and
	// the sparse (large-radius) path quantizes through it directly.
	qz, err := quantizer.New(absEB, radius)
	if err != nil {
		return nil, err
	}

	// The dense counts/LUT tables are sized 2*radius+2; past the guard an
	// absurd-but-valid radius would allocate gigabytes of scratch (and pin
	// it in the pool), so large radii take the sparse map-based path — the
	// pre-kernel algorithm, byte-identical output.
	dense := radius <= denseCompressRadiusLimit

	tPredict := time.Now()
	resSym := reservedSymbol(radius)
	var aux []byte
	var syms []uint32
	var unpred []float64
	var freqs map[uint32]int64
	var counts []int64
	var encLUT []uint64
	var k *encodeKernel
	if dense {
		counts, encLUT = a.freqTables(int(resSym) + 1)
		k = &encodeKernel{
			work:    work,
			syms:    a.u32(f.Len()),
			unpred:  a.unpred,
			counts:  counts,
			touched: a.touched,
			eb:      absEB,
			twoEB:   2 * absEB,
			radF:    float64(radius),
			radius:  radius,
			resSym:  resSym,
		}
		if useFusedKernels && fusedCompress(opts.Predictor, f.Dims, k) {
			// fused path: predict+quantize+emit ran in one pass, no aux.
		} else {
			aux, err = pred.CompressWalk(f.Dims, work, k.emit)
			if err != nil {
				return nil, err
			}
		}
		syms, unpred = k.syms, k.unpred
		a.unpred, a.touched = k.unpred, k.touched // hand grown slices back to the arena
		// The dense counts double as the Huffman frequency table; only the
		// touched entries exist, so the map handed to Build stays tiny.
		freqs = make(map[uint32]int64, len(k.touched))
		for _, s := range k.touched {
			freqs[s] = counts[s]
		}
	} else {
		freqs = make(map[uint32]int64)
		syms = a.u32(f.Len())[:0]
		aux, err = pred.CompressWalk(f.Dims, work, func(idx int, p float64) {
			code, recon, ok := qz.Quantize(work[idx], p)
			if !ok {
				syms = append(syms, resSym)
				freqs[resSym]++
				unpred = append(unpred, work[idx])
				// work[idx] keeps the exact value.
				return
			}
			s := uint32(code) + uint32(radius)
			syms = append(syms, s)
			freqs[s]++
			work[idx] = recon
		})
		if err != nil {
			return nil, err
		}
	}
	predictTime := time.Since(tPredict)

	tEncode := time.Now()
	enc, err := encodeEntropy(a, opts.Entropy, syms, freqs, dense, encLUT)
	if err != nil {
		return nil, err
	}
	huffBits := enc.bits
	encodeTime := time.Since(tEncode)

	tLossless := time.Now()
	finalPayload, err := applyLossless(opts.Lossless, enc.raw)
	if err != nil {
		return nil, err
	}
	losslessTime := time.Since(tLossless)

	// Compress PWREL bitmaps with RLE (they are run-heavy).
	var signsEnc, zerosEnc []byte
	if opts.Mode == PWREL {
		signsEnc = rle.Encode(signs)
		zerosEnc = rle.Encode(zeros)
	}

	out := assembleContainer(f, opts, radius, absEB, aux, unpred, signsEnc, zerosEnc, enc, finalPayload, len(enc.raw))

	// Rebuild the code histogram (unpredictable excluded) from the symbol
	// frequencies for the Stats consumers; it is small — one entry per
	// distinct code — and escapes with the Result.
	hist := stats.NewCodeHistogram()
	for s, n := range freqs {
		if s != resSym {
			hist.Add(int32(s)-radius, n)
		}
	}
	p0, _ := hist.TopP()
	if hist.Total == 0 {
		p0 = 0
	}
	st := Stats{
		N:                 f.Len(),
		AbsEB:             absEB,
		OriginalBytes:     f.OriginalBytes(),
		CompressedBytes:   int64(len(out)),
		HuffmanBits:       huffBits,
		Entropy:           enc.kind,
		PayloadBytesFinal: len(finalPayload),
		CodebookBytes:     len(enc.codebook),
		AuxBytes:          len(aux),
		Unpredictable:     len(unpred),
		P0:                p0,
		ZeroFrac:          hist.P(0),
		CodeHist:          hist,
		BitRate:           float64(len(out)) * 8 / float64(f.Len()),
		BitRateHuffman:    float64(huffBits) / float64(f.Len()),
		Ratio:             float64(f.OriginalBytes()) / float64(len(out)),
		PredictTime:       predictTime,
		EncodeTime:        encodeTime,
		LosslessTime:      losslessTime,
	}
	return &Result{Bytes: out, Stats: st}, nil
}

func applyLossless(kind LosslessKind, payload []byte) ([]byte, error) {
	switch kind {
	case LosslessNone:
		return payload, nil
	case LosslessRLE:
		return rle.Encode(payload), nil
	case LosslessLZ77:
		return lz77.Encode(payload), nil
	case LosslessFlate:
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(payload); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("compressor: unknown lossless kind %d", int(kind))
}

func undoLossless(kind LosslessKind, data []byte, rawLen int) ([]byte, error) {
	switch kind {
	case LosslessNone:
		return data, nil
	case LosslessRLE:
		return rle.Decode(data, rawLen)
	case LosslessLZ77:
		return lz77.Decode(data, rawLen)
	case LosslessFlate:
		fr := flate.NewReader(bytes.NewReader(data))
		defer fr.Close()
		out := make([]byte, 0, rawLen)
		buf := make([]byte, 64*1024)
		for {
			n, err := fr.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("compressor: unknown lossless kind %d", int(kind))
}

// assembleContainer lays out the self-describing byte stream in one
// exact-size allocation (the only large allocation a steady-state compress
// makes; everything else comes from the arena).
func assembleContainer(f *grid.Field, opts Options, radius int32, absEB float64,
	aux []byte, unpred []float64, signsEnc, zerosEnc []byte, enc *entropyEnc, payload []byte, rawPayloadLen int) []byte {

	codebook := enc.codebook
	version := uint8(containerVersion)
	extra := 0
	if enc.kind != EntropyHuffman {
		version = containerVersionEntropy
		extra = 2 // entropy kind + parameter bytes
		if enc.kind == EntropyTANS {
			extra += 4*ans.NumStates + 8 // final states + coded bit count
		}
	}
	name := []byte(f.Name)
	if len(name) > 65535 {
		name = name[:65535]
	}
	size := 4 + 1 + 1 + 1 + 1 + extra + 4 + 8 + 8 + 1 + 1 + // fixed header
		8*f.Rank() + 2 + len(name) +
		4 + 8*len(unpred) +
		4 + len(aux) + 4 + len(signsEnc) + 4 + len(zerosEnc) +
		4 + len(codebook) + 4 + 4 + len(payload)
	out := make([]byte, 0, size)
	le := binary.LittleEndian
	var s8 [8]byte
	p32 := func(v uint32) { le.PutUint32(s8[:4], v); out = append(out, s8[:4]...) }
	p64 := func(v uint64) { le.PutUint64(s8[:], v); out = append(out, s8[:]...) }

	p32(containerMagic)
	out = append(out, version, uint8(opts.Predictor), uint8(opts.Mode), uint8(opts.Lossless))
	if version >= containerVersionEntropy {
		out = append(out, uint8(enc.kind), enc.param)
	}
	p32(uint32(radius))
	p64(math.Float64bits(opts.ErrorBound))
	p64(math.Float64bits(absEB))
	out = append(out, uint8(f.Prec), uint8(f.Rank()))
	for _, d := range f.Dims {
		p64(uint64(d))
	}
	le.PutUint16(s8[:2], uint16(len(name)))
	out = append(out, s8[:2]...)
	out = append(out, name...)
	p32(uint32(len(unpred)))
	for _, v := range unpred {
		p64(math.Float64bits(v))
	}
	p32(uint32(len(aux)))
	out = append(out, aux...)
	p32(uint32(len(signsEnc)))
	out = append(out, signsEnc...)
	p32(uint32(len(zerosEnc)))
	out = append(out, zerosEnc...)
	p32(uint32(len(codebook)))
	out = append(out, codebook...)
	if enc.kind == EntropyTANS {
		for _, st := range enc.states {
			p32(st)
		}
		p64(enc.bitLen)
	}
	p32(uint32(rawPayloadLen))
	p32(uint32(len(payload)))
	out = append(out, payload...)
	return out
}

// cursor is a bounds-checked zero-copy reader over a container byte slice:
// blobs come back as subslices of the input, never copies.
type cursor struct {
	data []byte
	pos  int
}

var errTruncatedContainer = errors.New("compressor: truncated container")

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.data)-c.pos < n {
		return nil, errTruncatedContainer
	}
	b := c.data[c.pos : c.pos+n : c.pos+n]
	c.pos += n
	return b, nil
}

func (c *cursor) u8() (uint8, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// blob reads a uint32 length prefix and returns that many bytes, zero-copy.
func (c *cursor) blob() ([]byte, error) {
	l, err := c.u32()
	if err != nil {
		return nil, err
	}
	b, err := c.take(int(l))
	if err != nil {
		return nil, errors.New("compressor: blob length exceeds container")
	}
	return b, nil
}

// Decompress reconstructs a field from a container produced by Compress.
// The parse is zero-copy: aux, bitmaps, codebook, and payload are read as
// subslices of data, so the only large allocation is the returned field's
// value slice (the symbol scratch comes from the arena pool).
func Decompress(data []byte) (*grid.Field, error) {
	c := &cursor{data: data}
	magic, err := c.u32()
	if err != nil || magic != containerMagic {
		return nil, errors.New("compressor: bad magic")
	}
	version, err := c.u8()
	if err != nil {
		return nil, err
	}
	if version != containerVersion && version != containerVersionEntropy {
		return nil, fmt.Errorf("compressor: unsupported version %d", version)
	}
	predKind, err := c.u8()
	if err != nil {
		return nil, err
	}
	mode, err := c.u8()
	if err != nil {
		return nil, err
	}
	lossless, err := c.u8()
	if err != nil {
		return nil, err
	}
	enc := &entropyEnc{kind: EntropyHuffman}
	if version >= containerVersionEntropy {
		entropy, err := c.u8()
		if err != nil {
			return nil, err
		}
		if EntropyKind(entropy) > EntropyTANS {
			return nil, fmt.Errorf("compressor: unknown entropy stage %d", entropy)
		}
		enc.kind = EntropyKind(entropy)
		if enc.param, err = c.u8(); err != nil {
			return nil, err
		}
	}
	radiusU, err := c.u32()
	if err != nil {
		return nil, err
	}
	radius := int32(radiusU)
	if _, err := c.f64(); err != nil { // user error bound, unused on decode
		return nil, err
	}
	absEB, err := c.f64()
	if err != nil {
		return nil, err
	}
	prec, err := c.u8()
	if err != nil {
		return nil, err
	}
	rank, err := c.u8()
	if err != nil {
		return nil, err
	}
	if rank < 1 || rank > 4 {
		return nil, fmt.Errorf("compressor: bad rank %d", rank)
	}
	dims := make([]int, rank)
	n := 1
	for i := range dims {
		d, err := c.u64()
		if err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<32 {
			return nil, fmt.Errorf("compressor: bad dimension %d", d)
		}
		if uint64(n) > uint64(math.MaxInt/8)/d {
			return nil, errors.New("compressor: dimension product overflows")
		}
		dims[i] = int(d)
		n *= dims[i]
	}
	nameLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	name, err := c.take(int(nameLen))
	if err != nil {
		return nil, err
	}
	unpredCount, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int(unpredCount) > n {
		return nil, errors.New("compressor: unpredictable count exceeds field size")
	}
	unpredRaw, err := c.take(8 * int(unpredCount))
	if err != nil {
		return nil, err
	}
	unpred := make([]float64, unpredCount)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(unpredRaw[8*i:]))
	}
	aux, err := c.blob()
	if err != nil {
		return nil, err
	}
	signsEnc, err := c.blob()
	if err != nil {
		return nil, err
	}
	zerosEnc, err := c.blob()
	if err != nil {
		return nil, err
	}
	codebookBytes, err := c.blob()
	if err != nil {
		return nil, err
	}
	enc.codebook = codebookBytes
	if enc.kind == EntropyTANS {
		for i := range enc.states {
			if enc.states[i], err = c.u32(); err != nil {
				return nil, err
			}
		}
		if enc.bitLen, err = c.u64(); err != nil {
			return nil, err
		}
	}
	rawPayloadLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	payloadLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	payload, err := c.take(int(payloadLen))
	if err != nil {
		return nil, err
	}

	rawPayload, err := undoLossless(LosslessKind(lossless), payload, int(rawPayloadLen))
	if err != nil {
		return nil, err
	}
	a := getArena()
	defer a.release()
	syms := a.u32(n)
	if err := decodeEntropy(enc, rawPayload, syms); err != nil {
		return nil, err
	}

	pred, err := predictor.New(predictor.Kind(predKind))
	if err != nil {
		return nil, err
	}
	if _, err := quantizer.New(absEB, radius); err != nil {
		return nil, err
	}
	// work escapes as the returned field's data, so it is allocated fresh
	// rather than pooled.
	work := make([]float64, n)
	k := &decodeKernel{
		syms:   syms,
		work:   work,
		unpred: unpred,
		twoEB:  2 * absEB,
		radius: radius,
		resSym: reservedSymbol(radius),
	}
	if useFusedKernels && len(aux) == 0 && fusedDecompress(predictor.Kind(predKind), dims, k) {
		// fused path ran; sticky error checked below.
	} else {
		if !pred.Supports(int(rank)) {
			return nil, fmt.Errorf("compressor: predictor %s does not support rank %d",
				predictor.Kind(predKind), rank)
		}
		if err := pred.DecompressWalk(dims, work, aux, k.emit); err != nil {
			return nil, err
		}
	}
	if k.err != nil {
		return nil, k.err
	}

	if ErrorMode(mode) == PWREL {
		signs, err := rle.Decode(signsEnc, n)
		if err != nil {
			return nil, err
		}
		zeros, err := rle.Decode(zerosEnc, n)
		if err != nil {
			return nil, err
		}
		if len(signs) != n || len(zeros) != n {
			return nil, errors.New("compressor: bitmap length mismatch")
		}
		for i := range work {
			switch {
			case zeros[i] == 1:
				work[i] = 0
			case signs[i] == 1:
				work[i] = -math.Exp2(work[i])
			default:
				work[i] = math.Exp2(work[i])
			}
		}
	}

	out, err := grid.FromData(string(name), grid.Precision(prec), work, dims...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// VerifyErrorBound checks that recon satisfies the bound against orig.
// Returns nil if every sample is within the bound (with a 1e-12 relative
// slack for float round-off).
func VerifyErrorBound(orig, recon *grid.Field, mode ErrorMode, eb float64) error {
	if orig.Len() != recon.Len() {
		return errors.New("compressor: field sizes differ")
	}
	switch mode {
	case ABS:
		slack := eb * 1e-9
		for i := range orig.Data {
			if math.Abs(orig.Data[i]-recon.Data[i]) > eb+slack {
				return fmt.Errorf("compressor: ABS bound violated at %d: |%g - %g| > %g",
					i, orig.Data[i], recon.Data[i], eb)
			}
		}
	case REL:
		lo, hi := orig.ValueRange()
		abs := eb * (hi - lo)
		if abs == 0 {
			abs = eb
		}
		return VerifyErrorBound(orig, recon, ABS, abs)
	case PWREL:
		for i := range orig.Data {
			o := orig.Data[i]
			d := math.Abs(o - recon.Data[i])
			if o == 0 {
				if d != 0 {
					return fmt.Errorf("compressor: PWREL zero not exact at %d", i)
				}
				continue
			}
			if d > eb*math.Abs(o)*(1+1e-9) {
				return fmt.Errorf("compressor: PWREL bound violated at %d: %g vs %g", i, d, eb*math.Abs(o))
			}
		}
	}
	return nil
}
