package compressor

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

// kernelField synthesizes a deterministic field with smooth structure plus
// noise and a few extreme outliers (to exercise the unpredictable path).
func kernelField(t testing.TB, dims ...int) *grid.Field {
	t.Helper()
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, n)
	rng := stats.NewXorShift64(uint64(n)*2654435761 + uint64(len(dims)))
	for i := range data {
		data[i] = math.Sin(float64(i)*0.05) + 0.01*rng.Float64()
	}
	// Outliers every 97 samples blow past any radius and must be stored raw.
	for i := 96; i < n; i += 97 {
		data[i] = 1e18 * (1 + rng.Float64())
	}
	f, err := grid.FromData("kernel-test", grid.Float64, data, dims...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// compressBothPaths runs Compress with the fused kernels on and off.
func compressBothPaths(t *testing.T, f *grid.Field, opts Options) (fused, generic *Result) {
	t.Helper()
	restore := SetFusedKernels(true)
	defer restore()
	fused, err := Compress(f, opts)
	if err != nil {
		t.Fatalf("fused compress: %v", err)
	}
	SetFusedKernels(false)
	generic, err = Compress(f, opts)
	if err != nil {
		t.Fatalf("generic compress: %v", err)
	}
	return fused, generic
}

// TestFusedKernelsMatchGenericWalk is the golden equivalence property: for
// every fused (predictor, rank) pair, across bound modes and edge sizes
// (n=1, prime dims, single rows/columns), the fused path must emit a
// container byte-identical to the generic Visit walk, decode identically
// under both paths, and hold the error bound pointwise.
func TestFusedKernelsMatchGenericWalk(t *testing.T) {
	shapes := [][]int{
		{1}, {2}, {3}, {127}, {4096},
		{1, 1}, {1, 37}, {37, 1}, {31, 29}, {64, 64},
		{1, 1, 1}, {5, 1, 13}, {13, 11, 7}, {16, 16, 16},
	}
	preds := []predictor.Kind{
		predictor.Lorenzo, predictor.Lorenzo2,
		predictor.Interpolation, predictor.InterpolationCubic,
	}
	modes := []struct {
		mode ErrorMode
		eb   float64
	}{
		{ABS, 1e-3},
		{REL, 1e-3},
		{PWREL, 1e-2},
	}
	for _, dims := range shapes {
		f := kernelField(t, dims...)
		for _, pk := range preds {
			p, err := predictor.New(pk)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Supports(len(dims)) {
				continue
			}
			for _, m := range modes {
				name := fmt.Sprintf("%s/%v/%s", pk, dims, m.mode)
				t.Run(name, func(t *testing.T) {
					opts := Options{Predictor: pk, Mode: m.mode, ErrorBound: m.eb}
					fused, generic := compressBothPaths(t, f, opts)
					if !bytes.Equal(fused.Bytes, generic.Bytes) {
						t.Fatalf("fused and generic containers differ: %d vs %d bytes",
							len(fused.Bytes), len(generic.Bytes))
					}
					if fused.Stats.Unpredictable != generic.Stats.Unpredictable ||
						fused.Stats.HuffmanBits != generic.Stats.HuffmanBits ||
						fused.Stats.P0 != generic.Stats.P0 {
						t.Fatalf("fused and generic stats differ: %+v vs %+v",
							fused.Stats, generic.Stats)
					}

					restore := SetFusedKernels(true)
					fusedDec, err := Decompress(fused.Bytes)
					if err != nil {
						t.Fatalf("fused decompress: %v", err)
					}
					SetFusedKernels(false)
					genericDec, err := Decompress(fused.Bytes)
					restore()
					if err != nil {
						t.Fatalf("generic decompress: %v", err)
					}
					for i := range fusedDec.Data {
						if fusedDec.Data[i] != genericDec.Data[i] &&
							!(math.IsNaN(fusedDec.Data[i]) && math.IsNaN(genericDec.Data[i])) {
							t.Fatalf("decode paths differ at %d: %g vs %g",
								i, fusedDec.Data[i], genericDec.Data[i])
						}
					}
					if err := VerifyErrorBound(f, fusedDec, m.mode, m.eb); err != nil {
						t.Fatalf("error bound violated: %v", err)
					}
				})
			}
		}
	}
}

// TestEmptyFieldRejectedOnBothPaths covers the n=0 edge: an empty field
// must error identically whichever kernel gate is active (the check runs
// before either path is chosen).
func TestEmptyFieldRejectedOnBothPaths(t *testing.T) {
	opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 1e-3}
	for _, fused := range []bool{true, false} {
		restore := SetFusedKernels(fused)
		if _, err := Compress(nil, opts); err == nil {
			t.Errorf("fused=%v: nil field accepted", fused)
		}
		if _, err := Compress(&grid.Field{}, opts); err == nil {
			t.Errorf("fused=%v: empty field accepted", fused)
		}
		restore()
	}
}

// TestFusedKernelFallback pins the dispatch table: shapes and predictors
// without a fused kernel must report false so Compress takes the generic
// walk (regression, 4-D Lorenzo), and fused pairs must report true.
func TestFusedKernelFallback(t *testing.T) {
	k := func() *encodeKernel { return &encodeKernel{} }
	cases := []struct {
		kind predictor.Kind
		dims []int
		want bool
	}{
		{predictor.Lorenzo, []int{8}, true},
		{predictor.Lorenzo, []int{4, 4}, true},
		{predictor.Lorenzo, []int{4, 4, 4}, true},
		{predictor.Lorenzo, []int{2, 2, 2, 2}, false},
		{predictor.Lorenzo2, []int{8}, true},
		{predictor.Lorenzo2, []int{4, 4}, false},
		{predictor.Regression, []int{4, 4}, false},
	}
	for _, tc := range cases {
		kk := k()
		n := 1
		for _, d := range tc.dims {
			n *= d
		}
		kk.work = make([]float64, n)
		kk.syms = make([]uint32, n)
		kk.counts = make([]int64, 4)
		kk.twoEB = 2
		kk.eb = 1
		kk.radF = 1
		kk.radius = 1
		kk.resSym = 3
		if got := fusedCompress(tc.kind, tc.dims, kk); got != tc.want {
			t.Errorf("fusedCompress(%s, %v) = %v, want %v", tc.kind, tc.dims, got, tc.want)
		}
	}
}

// TestRegressionStillRoundTrips covers the fallback path end to end: the
// regression predictor (no fused kernel, aux side channel) must round-trip
// through the rewritten Compress/Decompress.
func TestRegressionStillRoundTrips(t *testing.T) {
	f := kernelField(t, 24, 24)
	opts := Options{Predictor: predictor.Regression, Mode: ABS, ErrorBound: 1e-3}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyErrorBound(f, back, ABS, opts.ErrorBound); err != nil {
		t.Fatal(err)
	}
}

// TestSparseRadiusPath covers the large-radius fallback: a radius past
// denseCompressRadiusLimit must not allocate the dense scratch tables and
// still round-trip with the bound held.
func TestSparseRadiusPath(t *testing.T) {
	f := kernelField(t, 31, 29)
	opts := Options{
		Predictor:  predictor.Lorenzo,
		Mode:       ABS,
		ErrorBound: 1e-3,
		Radius:     denseCompressRadiusLimit + 1,
	}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyErrorBound(f, back, ABS, opts.ErrorBound); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unpredictable == 0 {
		t.Fatal("outlier field compressed with no unpredictable values")
	}
}

// TestArenaReuseIsClean runs many mixed compressions back to back so pooled
// arenas are reused across different radii, modes, and sizes; any stale
// counts/touched/LUT state would corrupt a later container.
func TestArenaReuseIsClean(t *testing.T) {
	fields := []*grid.Field{
		kernelField(t, 31),
		kernelField(t, 13, 11, 7),
		kernelField(t, 64, 64),
	}
	radii := []int32{0, 255, 31}
	for round := 0; round < 3; round++ {
		for _, f := range fields {
			for _, r := range radii {
				opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 1e-3, Radius: r}
				res, err := Compress(f, opts)
				if err != nil {
					t.Fatal(err)
				}
				back, err := Decompress(res.Bytes)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyErrorBound(f, back, ABS, opts.ErrorBound); err != nil {
					t.Fatalf("radius %d round %d: %v", r, round, err)
				}
			}
		}
	}
}
