package compressor

import (
	"fmt"
	"math"
	"testing"

	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

// TestMatrixAllPredictorsModesBackends sweeps every supported combination
// of predictor, error mode, and lossless backend on representative fields
// and verifies the error bound end to end.
func TestMatrixAllPredictorsModesBackends(t *testing.T) {
	fields := map[string]*grid.Field{}
	for _, name := range []string{"cesm/TS", "brown/pressure", "nyx/dark_matter_density"} {
		f, err := datagen.GenerateField(name, 42, datagen.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		fields[name] = f
	}
	preds := []predictor.Kind{predictor.Lorenzo, predictor.Lorenzo2,
		predictor.Interpolation, predictor.InterpolationCubic, predictor.Regression}
	modes := []ErrorMode{ABS, REL, PWREL}
	backends := []LosslessKind{LosslessNone, LosslessRLE, LosslessLZ77, LosslessFlate}

	for name, f := range fields {
		lo, hi := f.ValueRange()
		for _, kind := range preds {
			p, err := predictor.New(kind)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Supports(f.Rank()) {
				continue
			}
			for _, mode := range modes {
				if mode == PWREL && lo <= 0 && name != "nyx/dark_matter_density" {
					// PWREL on sign-crossing data is covered separately;
					// keep the matrix on the positive field.
					continue
				}
				eb := 1e-3
				if mode == ABS {
					eb = (hi - lo) * 1e-3
				}
				for _, ll := range backends {
					label := fmt.Sprintf("%s/%s/%s/%s", name, kind, mode, ll)
					res, err := Compress(f, Options{
						Predictor: kind, Mode: mode, ErrorBound: eb, Lossless: ll,
					})
					if err != nil {
						t.Fatalf("%s: compress: %v", label, err)
					}
					dec, err := Decompress(res.Bytes)
					if err != nil {
						t.Fatalf("%s: decompress: %v", label, err)
					}
					if err := VerifyErrorBound(f, dec, mode, eb); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
			}
		}
	}
}

// TestDecompressedStatsSane confirms reconstruction preserves coarse
// statistics within bound-scale tolerances.
func TestDecompressedStatsSane(t *testing.T) {
	f, err := datagen.GenerateField("hurricane/TC", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	res, err := Compress(f, Options{Predictor: predictor.Interpolation, Mode: ABS, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	mo, md := stats.Summary(f.Data), stats.Summary(dec.Data)
	if math.Abs(mo.Mean()-md.Mean()) > eb {
		t.Fatalf("mean drifted: %v vs %v", mo.Mean(), md.Mean())
	}
	if math.Abs(mo.StdDev()-md.StdDev()) > 2*eb {
		t.Fatalf("std drifted: %v vs %v", mo.StdDev(), md.StdDev())
	}
}

// TestCompressIsDeterministic: same input and options produce identical
// bytes (required for reproducible archives).
func TestCompressIsDeterministic(t *testing.T) {
	f, err := datagen.GenerateField("scale/PRES", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3, Lossless: LosslessRLE}
	a, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Bytes) != len(b.Bytes) {
		t.Fatal("nondeterministic output size")
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			t.Fatalf("output differs at byte %d", i)
		}
	}
}

// TestIdempotentRecompression: compressing the decompressed data at the
// same bound must not lose further information catastrophically — the
// second-generation PSNR stays close to the first.
func TestIdempotentRecompression(t *testing.T) {
	f, err := datagen.GenerateField("miranda/vx", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: eb}
	r1, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Decompress(r1.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compress(g1, opts)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decompress(r2.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	// Generation error compounds at most to 2·eb vs the original.
	for i := range f.Data {
		if math.Abs(f.Data[i]-g2.Data[i]) > 2*eb*(1+1e-9) {
			t.Fatalf("second generation error at %d exceeds 2eb", i)
		}
	}
}

// TestConstantFieldCompressesTiny: a constant field must compress to a few
// hundred bytes regardless of size.
func TestConstantFieldCompressesTiny(t *testing.T) {
	f := grid.MustNew("const", grid.Float32, 64, 64, 16)
	for i := range f.Data {
		f.Data[i] = 42.5
	}
	res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 1e-6, Lossless: LosslessRLE})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CompressedBytes > 4096 {
		t.Fatalf("constant field took %d bytes", res.Stats.CompressedBytes)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec.Data {
		if math.Abs(dec.Data[i]-42.5) > 1e-6 {
			t.Fatal("constant reconstruction off")
		}
	}
}

// TestSingleValueField exercises the 1x1...x1 degenerate shapes.
func TestSingleValueField(t *testing.T) {
	for _, dims := range [][]int{{1}, {1, 1}, {1, 1, 1}} {
		f := grid.MustNew("one", grid.Float64, dims...)
		f.Data[0] = 3.14159
		res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 1e-3})
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		dec, err := Decompress(res.Bytes)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		if math.Abs(dec.Data[0]-3.14159) > 1e-3 {
			t.Fatalf("dims %v: value %v", dims, dec.Data[0])
		}
	}
}

// TestNegativeAndExtremeValues exercises sign handling and large exponents.
func TestNegativeAndExtremeValues(t *testing.T) {
	f := grid.MustNew("ext", grid.Float64, 256)
	rng := stats.NewXorShift64(11)
	for i := range f.Data {
		f.Data[i] = (rng.Float64() - 0.5) * 1e12
	}
	eb := 1e6
	res, err := Compress(f, Options{Predictor: predictor.Lorenzo2, Mode: ABS, ErrorBound: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyErrorBound(f, dec, ABS, eb); err != nil {
		t.Fatal(err)
	}
}
