package compressor

import (
	"math"
	"testing"
	"testing/quick"

	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

func compressDecompress(t *testing.T, f *grid.Field, opts Options) (*Result, *grid.Field) {
	t.Helper()
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatalf("compress %s %s eb=%g: %v", f.Name, opts.Predictor, opts.ErrorBound, err)
	}
	dec, err := Decompress(res.Bytes)
	if err != nil {
		t.Fatalf("decompress %s: %v", f.Name, err)
	}
	if err := VerifyErrorBound(f, dec, opts.Mode, opts.ErrorBound); err != nil {
		t.Fatalf("%s %s: %v", f.Name, opts.Predictor, err)
	}
	return res, dec
}

func testField(t *testing.T, name string) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField(name, 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRoundTripAllPredictorsABS(t *testing.T) {
	f := testField(t, "cesm/TS")
	lo, hi := f.ValueRange()
	eb := (hi - lo) * 1e-3
	for _, kind := range []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.InterpolationCubic, predictor.Regression} {
		res, dec := compressDecompress(t, f, Options{Predictor: kind, Mode: ABS, ErrorBound: eb})
		if res.Stats.Ratio <= 1 {
			t.Errorf("%s: ratio %.2f not > 1 on smooth field", kind, res.Stats.Ratio)
		}
		if dec.Rank() != f.Rank() || dec.Len() != f.Len() {
			t.Fatalf("%s: shape mismatch", kind)
		}
		if dec.Name != f.Name {
			t.Errorf("%s: name %q, want %q", kind, dec.Name, f.Name)
		}
		if dec.Prec != f.Prec {
			t.Errorf("%s: precision %v, want %v", kind, dec.Prec, f.Prec)
		}
	}
}

func TestRoundTrip1DLorenzo2(t *testing.T) {
	f := testField(t, "brown/pressure")
	lo, hi := f.ValueRange()
	for _, kind := range []predictor.Kind{predictor.Lorenzo, predictor.Lorenzo2} {
		compressDecompress(t, f, Options{Predictor: kind, Mode: ABS, ErrorBound: (hi - lo) * 1e-4})
	}
}

func TestRoundTrip4D(t *testing.T) {
	f := testField(t, "exafel/raw")
	lo, hi := f.ValueRange()
	compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3})
}

func TestRoundTripRELMode(t *testing.T) {
	f := testField(t, "hurricane/U")
	res, _ := compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: REL, ErrorBound: 1e-3})
	lo, hi := f.ValueRange()
	wantAbs := 1e-3 * (hi - lo)
	if math.Abs(res.Stats.AbsEB-wantAbs)/wantAbs > 1e-12 {
		t.Fatalf("AbsEB = %g, want %g", res.Stats.AbsEB, wantAbs)
	}
}

func TestRoundTripPWREL(t *testing.T) {
	f := testField(t, "nyx/dark_matter_density") // strictly positive, huge range
	compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: PWREL, ErrorBound: 1e-2})
}

func TestPWRELMixedSignsAndZeros(t *testing.T) {
	f := grid.MustNew("mixed", grid.Float64, 1000)
	rng := stats.NewXorShift64(5)
	for i := range f.Data {
		switch i % 5 {
		case 0:
			f.Data[i] = 0
		case 1:
			f.Data[i] = -math.Exp(4 * rng.NormFloat64())
		default:
			f.Data[i] = math.Exp(4 * rng.NormFloat64())
		}
	}
	res, dec := compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: PWREL, ErrorBound: 1e-2})
	_ = res
	for i, v := range f.Data {
		if v == 0 && dec.Data[i] != 0 {
			t.Fatalf("zero not preserved at %d", i)
		}
		if v < 0 && dec.Data[i] >= 0 {
			t.Fatalf("sign not preserved at %d", i)
		}
	}
}

func TestAllLosslessBackendsRoundTrip(t *testing.T) {
	// A large, nearly-affine field under a high bound makes the Huffman
	// payload zero-dominated (p0 → 1), which is exactly where the paper says
	// the lossless stage starts to matter. Every backend must shrink it.
	f := grid.MustNew("flat", grid.Float32, 128, 128)
	rng := stats.NewXorShift64(17)
	for i := range f.Data {
		f.Data[i] = 100 + 0.01*rng.NormFloat64()
	}
	var sizes []int64
	for _, ll := range []LosslessKind{LosslessNone, LosslessRLE, LosslessLZ77, LosslessFlate} {
		res, _ := compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: 0.5, Lossless: ll})
		if res.Stats.P0 < 0.9 {
			t.Fatalf("test premise broken: p0 = %v, want near 1", res.Stats.P0)
		}
		sizes = append(sizes, res.Stats.CompressedBytes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[0] {
			t.Errorf("lossless backend %d did not shrink the container: %d vs %d", i, sizes[i], sizes[0])
		}
	}
}

func TestHigherBoundSmallerOutput(t *testing.T) {
	f := testField(t, "miranda/vx")
	lo, hi := f.ValueRange()
	var prev int64 = math.MaxInt64
	for _, rel := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
		res, _ := compressDecompress(t, f, Options{Predictor: predictor.Interpolation, Mode: ABS, ErrorBound: rel * (hi - lo)})
		if res.Stats.CompressedBytes > prev {
			t.Fatalf("eb=%g produced larger output than a tighter bound", rel)
		}
		prev = res.Stats.CompressedBytes
	}
}

func TestUnpredictableValuesPath(t *testing.T) {
	// A tiny radius forces most codes out of range → unpredictable path.
	f := testField(t, "hurricane/U")
	lo, hi := f.ValueRange()
	res, dec := compressDecompress(t, f, Options{
		Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-7, Radius: 2,
	})
	if res.Stats.Unpredictable == 0 {
		t.Fatal("expected unpredictable values with radius 2")
	}
	// Unpredictable values must reconstruct exactly (they are stored raw).
	_ = dec
}

func TestStatsConsistency(t *testing.T) {
	f := testField(t, "cesm/TS")
	lo, hi := f.ValueRange()
	res, _ := compressDecompress(t, f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3})
	st := res.Stats
	if st.N != f.Len() {
		t.Fatalf("N = %d", st.N)
	}
	if st.CompressedBytes != int64(len(res.Bytes)) {
		t.Fatalf("CompressedBytes = %d, len = %d", st.CompressedBytes, len(res.Bytes))
	}
	if st.BitRate <= 0 || st.Ratio <= 0 {
		t.Fatalf("BitRate/Ratio = %v/%v", st.BitRate, st.Ratio)
	}
	wantBR := float64(st.CompressedBytes) * 8 / float64(st.N)
	if math.Abs(st.BitRate-wantBR) > 1e-9 {
		t.Fatalf("BitRate = %v, want %v", st.BitRate, wantBR)
	}
	if st.P0 <= 0 || st.P0 > 1 {
		t.Fatalf("P0 = %v", st.P0)
	}
	if st.CodeHist.Total+int64(st.Unpredictable) != int64(st.N) {
		t.Fatalf("histogram total %d + unpred %d != N %d", st.CodeHist.Total, st.Unpredictable, st.N)
	}
}

func TestInvalidInputs(t *testing.T) {
	f := testField(t, "cesm/TS")
	if _, err := Compress(nil, Options{ErrorBound: 1}); err == nil {
		t.Fatal("nil field accepted")
	}
	if _, err := Compress(f, Options{ErrorBound: 0}); err == nil {
		t.Fatal("zero error bound accepted")
	}
	if _, err := Compress(f, Options{ErrorBound: -1}); err == nil {
		t.Fatal("negative error bound accepted")
	}
	if _, err := Compress(f, Options{Predictor: predictor.Lorenzo2, ErrorBound: 1}); err == nil {
		t.Fatal("rank-2 field with 1D-only predictor accepted")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	f := testField(t, "cesm/TS")
	lo, hi := f.ValueRange()
	res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("nil container accepted")
	}
	if _, err := Decompress(res.Bytes[:10]); err == nil {
		t.Fatal("truncated container accepted")
	}
	bad := append([]byte(nil), res.Bytes...)
	bad[0] ^= 0xFF
	if _, err := Decompress(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, m := range []ErrorMode{ABS, REL, PWREL} {
		got, err := ParseErrorMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseErrorMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseErrorMode("nope"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// Property: error bound holds for random fields, bounds, and predictors.
func TestQuickErrorBoundHolds(t *testing.T) {
	kinds := []predictor.Kind{predictor.Lorenzo, predictor.Interpolation, predictor.Regression}
	f := func(seed uint64, ebExp uint8, kindIdx uint8) bool {
		rng := stats.NewXorShift64(seed)
		dims := []int{8 + rng.Intn(9), 8 + rng.Intn(9)}
		fld := grid.MustNew("q", grid.Float32, dims...)
		for i := range fld.Data {
			fld.Data[i] = 100 * rng.NormFloat64()
		}
		eb := math.Pow(10, -float64(ebExp%5)) // 1 .. 1e-4
		opts := Options{Predictor: kinds[int(kindIdx)%len(kinds)], Mode: ABS, ErrorBound: eb}
		res, err := Compress(fld, opts)
		if err != nil {
			return false
		}
		dec, err := Decompress(res.Bytes)
		if err != nil {
			return false
		}
		return VerifyErrorBound(fld, dec, ABS, eb) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressLorenzo3D(b *testing.B) {
	f, err := datagen.GenerateField("nyx/temperature", 1, datagen.Small)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.ValueRange()
	opts := Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3, Lossless: LosslessRLE}
	b.SetBytes(f.OriginalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressLorenzo3D(b *testing.B) {
	f, err := datagen.GenerateField("nyx/temperature", 1, datagen.Small)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := f.ValueRange()
	res, err := Compress(f, Options{Predictor: predictor.Lorenzo, Mode: ABS, ErrorBound: (hi - lo) * 1e-3})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(f.OriginalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(res.Bytes); err != nil {
			b.Fatal(err)
		}
	}
}
