package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// BaseErrorBound returns the error bound the profile uses as the Eq. 2
// extrapolation base: a tight bound (1e-7 of the value range, the same base
// SZ3's sampler uses), raised if necessary so that the 99.5th-percentile
// prediction error still maps to an in-range quantization code — Eq. 2's
// derivation assumes the histogram keeps (almost) all its mass.
func (p *Profile) BaseErrorBound() float64 {
	eb := p.Range * 1e-7
	if eb <= 0 {
		eb = 1e-12
	}
	if q := p.quantileAbs(0.995); q > 0 {
		if minEB := q / (1.8 * float64(p.opts.Radius)); eb < minEB {
			eb = minEB
		}
	}
	return eb
}

// ErrorBoundForBitRate solves the inverse ratio problem: the absolute error
// bound whose modeled *Huffman* bit-rate matches target (bits per value).
// It follows the paper: Eq. 2 (e* = 2^(B−B*)·e) from a profiled base pair in
// the high-rate regime, and interpolation over the p0-anchor points
// (0.5/0.8/0.95) in the low-rate regime where Eq. 3's approximation fails.
// Each closed-form result is verified against the model; if the Eq. 2/3
// approximations are off for this error distribution, the solver falls back
// to geometric bisection on the model itself (still O(sample) per probe).
func (p *Profile) ErrorBoundForBitRate(target float64) (float64, error) {
	if !(target > 0) {
		return 0, fmt.Errorf("core: target bit-rate must be positive, got %v", target)
	}
	const tol = 0.25 // bits
	// Fast path: Eq. 2 extrapolation from the profiled base pair.
	base := p.BaseErrorBound()
	baseB := p.EstimateAt(base).HuffmanBitRate
	e := math.Exp2(baseB-target) * base
	if est := p.EstimateAt(e); math.Abs(est.HuffmanBitRate-target) <= tol &&
		est.ZeroShare <= p.opts.AnchorP0[0] {
		return e, nil
	}
	// Low-rate regime: anchor interpolation between (B, log e) points
	// profiled at the configured central-bin shares.
	if eAnchor, ok := p.anchorInterpolate(target); ok {
		if math.Abs(p.EstimateAt(eAnchor).HuffmanBitRate-target) <= tol {
			return eAnchor, nil
		}
	}
	// Robust fallback: invert the model numerically.
	return p.solveMonotone(target, func(e Estimate) float64 { return e.HuffmanBitRate })
}

// anchorInterpolate implements the paper's low-bit-rate handling: profile
// the histogram at central-bin shares p0 ∈ AnchorP0 (by construction the
// error bound with share q is the q-quantile of |errors|), evaluate Eq. 1 at
// each, and interpolate log(eb) against bit-rate.
func (p *Profile) anchorInterpolate(target float64) (float64, bool) {
	type anchor struct{ b, loge float64 }
	var anchors []anchor
	for _, q := range p.opts.AnchorP0 {
		eb := p.quantileAbs(q)
		if eb <= 0 {
			continue
		}
		anchors = append(anchors, anchor{p.EstimateAt(eb).HuffmanBitRate, math.Log(eb)})
	}
	if len(anchors) == 0 {
		return 0, false
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].b > anchors[j].b })
	uniq := anchors[:1]
	for _, a := range anchors[1:] {
		if a.b < uniq[len(uniq)-1].b-1e-12 {
			uniq = append(uniq, a)
		}
	}
	anchors = uniq
	if target > anchors[0].b || len(anchors) == 1 {
		return 0, false
	}
	last := anchors[len(anchors)-1]
	if target <= last.b {
		prev := anchors[len(anchors)-2]
		slope := (last.loge - prev.loge) / (prev.b - last.b)
		return math.Exp(last.loge + slope*(last.b-target)), true
	}
	for i := 0; i+1 < len(anchors); i++ {
		hi, lo := anchors[i], anchors[i+1]
		if target <= hi.b && target >= lo.b {
			t := (hi.b - target) / (hi.b - lo.b)
			return math.Exp(hi.loge + t*(lo.loge-hi.loge)), true
		}
	}
	return 0, false
}

// ErrorBoundForRatio solves for a target overall compression ratio by
// inverting the total-bit-rate model with bisection (monotone in eb).
func (p *Profile) ErrorBoundForRatio(targetRatio float64) (float64, error) {
	if !(targetRatio > 1) {
		return 0, fmt.Errorf("core: target ratio must exceed 1, got %v", targetRatio)
	}
	targetBits := float64(p.OrigBits) / targetRatio
	return p.solveMonotone(targetBits, func(e Estimate) float64 { return e.TotalBitRate })
}

// ErrorBoundForPSNR solves for a target PSNR (dB) using the refined error
// distribution; the result is the loosest bound whose modeled PSNR still
// meets the target.
func (p *Profile) ErrorBoundForPSNR(target float64) (float64, error) {
	if math.IsNaN(target) {
		return 0, errors.New("core: target PSNR is NaN")
	}
	return p.solveMonotone(target, func(e Estimate) float64 { return e.PSNR })
}

// solveMonotone bisects the error bound so that metric(EstimateAt(eb)) hits
// target. The metric must be monotone decreasing in eb (bit-rates and PSNR
// are, within the full-mass regime enforced by the lower bracket).
func (p *Profile) solveMonotone(target float64, metric func(Estimate) float64) (float64, error) {
	lo := p.Range * 1e-12
	// Keep the bracket inside the regime where (nearly) no sample falls out
	// of the quantizer range; below it the Huffman histogram loses mass and
	// the bit-rate metric stops being monotone.
	if q := p.quantileAbs(1.0); q > 0 {
		if minEB := q / (1.8 * float64(p.opts.Radius)); lo < minEB {
			lo = minEB
		}
	}
	hi := p.Range
	if hi <= 0 {
		return 0, errors.New("core: degenerate value range")
	}
	if lo <= 0 {
		lo = 1e-300
	}
	if hi <= lo {
		hi = lo * 2
	}
	mLo := metric(p.EstimateAt(lo)) // largest metric value (tight bound)
	mHi := metric(p.EstimateAt(hi)) // smallest
	if target > mLo {
		return lo, nil // cannot do better than the tightest bound
	}
	if target < mHi {
		return hi, nil
	}
	for iter := 0; iter < 80; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: eb spans decades
		if metric(p.EstimateAt(mid)) >= target {
			lo = mid
		} else {
			hi = mid
		}
		if hi/lo < 1+1e-9 {
			break
		}
	}
	return lo, nil
}
