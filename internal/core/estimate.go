package core

import (
	"math"
	"sync"

	"rqm/internal/quantizer"
	"rqm/internal/stats"
)

// codeCounter is the pooled dense scratch histogramAt accumulates into: one
// counter per code in [-radius, radius], touched-list cleanup, so an
// EstimateAt sweep (the inverse solver calls it dozens of times per solve)
// never pays a map assignment per sampled error. counts is all-zero between
// uses; release zeroes only the touched entries.
type codeCounter struct {
	counts  []int64
	touched []int32
}

var counterPool = sync.Pool{New: func() interface{} { return &codeCounter{} }}

// denseRadiusLimit bounds the dense path: beyond it (radius > 2^20) the
// map-based histogram is used directly, so absurd radii cannot drive a huge
// scratch allocation.
const denseRadiusLimit = 1 << 20

func (cc *codeCounter) release() {
	for _, i := range cc.touched {
		cc.counts[i] = 0
	}
	cc.touched = cc.touched[:0]
	counterPool.Put(cc)
}

// Estimate is the model's prediction of compression ratio and post-hoc
// quality at one absolute error bound.
type Estimate struct {
	// AbsErrorBound is the absolute bound the estimate was computed for.
	AbsErrorBound float64
	// P0 is the share of the most frequent quantization code after the
	// correction layer (the paper's p0).
	P0 float64
	// ZeroShare is the central-bin (code 0) share.
	ZeroShare float64
	// UnpredShare is the estimated fraction of unpredictable values.
	UnpredShare float64
	// DistinctCodes counts distinct codes seen in the sampled histogram.
	DistinctCodes int
	// HuffmanBitRate is the entropy stage's modeled bits/value: Eq. 1 under
	// EntropyModelHuffman, plain Shannon entropy under EntropyModelANS. The
	// name is kept for the paper's Eq. 1 lineage and API compatibility.
	HuffmanBitRate float64
	// RLEGain is the Eq. 4 ratio of the modeled lossless stage (>= 1).
	RLEGain float64
	// PayloadBitRate is HuffmanBitRate divided by RLEGain when the lossless
	// stage is enabled.
	PayloadBitRate float64
	// OverheadBitRate covers codebook + header + side channels, bits/value.
	OverheadBitRate float64
	// TotalBitRate is the modeled total bits/value.
	TotalBitRate float64
	// Ratio is original bits per value over TotalBitRate.
	Ratio float64
	// ErrVarUniform is Eq. 10's uniform-distribution error variance.
	ErrVarUniform float64
	// ErrVar is Eq. 11's refined error variance.
	ErrVar float64
	// PSNRUniform / PSNR are Eq. 12 under the two error distributions.
	PSNRUniform float64
	PSNR        float64
	// SSIMUniform / SSIM are Eq. 15 under the two error distributions.
	SSIMUniform float64
	SSIM        float64
}

// histogramAt builds the estimated quantization-code histogram for eb from
// the sampled prediction errors, applying the Eq. 9 correction layer when
// the central share exceeds the threshold.
func (p *Profile) histogramAt(eb float64) (h *stats.CodeHistogram, unpredShare float64) {
	h = stats.NewCodeHistogram()
	radius := p.opts.Radius
	var unpred int64
	if radius <= denseRadiusLimit {
		cc := counterPool.Get().(*codeCounter)
		span := 2*int(radius) + 1
		if cap(cc.counts) < span {
			cc.counts = make([]int64, span)
		}
		cc.counts = cc.counts[:span]
		for _, e := range p.Errors {
			c := quantizer.CodeFor(e, eb)
			if c > radius || c < -radius {
				unpred++
				continue
			}
			i := c + radius
			if cc.counts[i] == 0 {
				cc.touched = append(cc.touched, i)
			}
			cc.counts[i]++
		}
		for _, i := range cc.touched {
			h.Add(i-radius, cc.counts[i])
		}
		cc.release()
	} else {
		for _, e := range p.Errors {
			c := quantizer.CodeFor(e, eb)
			if c > radius || c < -radius {
				unpred++
				continue
			}
			h.Add(c, 1)
		}
	}
	total := int64(len(p.Errors))
	if h.Total == 0 {
		return h, float64(unpred) / float64(total)
	}
	p0, _ := h.TopP()
	c2 := p.opts.c2For(p.Kind)
	if !p.opts.DisableCorrection && c2 > 0 && p0 >= p.opts.CorrectionThreshold {
		h = applyCorrection(h, c2, p0)
	}
	return h, float64(unpred) / float64(total)
}

// applyCorrection implements Eq. 9: each bin transfers
// Ntran = C2·(1−p0)·N(bin) codes evenly to its two neighbors, simulating the
// bin-crossing uncertainty of predicting from reconstructed (not original)
// values at high error bounds.
func applyCorrection(h *stats.CodeHistogram, c2, p0 float64) *stats.CodeHistogram {
	out := stats.NewCodeHistogram()
	frac := c2 * (1 - p0)
	for code, n := range h.Counts {
		tran := int64(math.Round(frac * float64(n)))
		if tran > n {
			tran = n
		}
		keep := n - tran
		left := tran / 2
		right := tran - left
		if keep > 0 {
			out.Add(code, keep)
		}
		if left > 0 {
			out.Add(code-1, left)
		}
		if right > 0 {
			out.Add(code+1, right)
		}
	}
	return out
}

// huffmanBitRate evaluates Eq. 1 on a code histogram: B = Σ p·L with
// L = −log2 p, except the most frequent code is clamped to at least 1 bit.
// Iteration is in sorted code order so the float summation (and therefore
// every model estimate) is bit-for-bit deterministic.
func huffmanBitRate(h *stats.CodeHistogram) float64 {
	if h.Total == 0 {
		return 0
	}
	_, top := h.TopP()
	var b float64
	tot := float64(h.Total)
	for _, code := range h.Codes() {
		n := h.Counts[code]
		if n == 0 {
			continue
		}
		pi := float64(n) / tot
		l := -math.Log2(pi)
		if code == top && l < 1 {
			l = 1
		}
		b += pi * l
	}
	if b < 1 {
		// A Huffman coder cannot emit fewer than 1 bit per symbol.
		b = 1
	}
	return b
}

// ansBitRate is the Eq. 1 analogue for the tANS stage: the plain Shannon
// entropy H = Σ p·(−log2 p), with no most-frequent-code clamp and no
// 1 bit/symbol floor, because an ANS coder emits fractional bits per symbol
// (down to its ~log2(table)/table framing floor, which is negligible at the
// table sizes used). Sorted-order iteration keeps the sum deterministic.
func ansBitRate(h *stats.CodeHistogram) float64 {
	if h.Total == 0 {
		return 0
	}
	var b float64
	tot := float64(h.Total)
	for _, code := range h.Codes() {
		n := h.Counts[code]
		if n == 0 {
			continue
		}
		pi := float64(n) / tot
		b += pi * -math.Log2(pi)
	}
	return b
}

// entropyBitRate dispatches Eq. 1 (or its ANS analogue) per the configured
// entropy model.
func (p *Profile) entropyBitRate(h *stats.CodeHistogram) float64 {
	if p.opts.Entropy == EntropyModelANS {
		return ansBitRate(h)
	}
	return huffmanBitRate(h)
}

// rleGain evaluates Eq. 4: Rrle = 1/(C1(1−p0)·P0 + (1−P0)), where P0 is the
// footprint share of the zero code inside the Huffman payload and p0 the
// share of zero codes by count. Gains below 1 are clamped (the stage is
// skipped by the model when it would expand).
func rleGain(p0, bitRate, c1 float64) float64 {
	if p0 <= 0 || bitRate <= 0 {
		return 1
	}
	l0 := -math.Log2(p0)
	if l0 < 1 {
		l0 = 1
	}
	footprint := p0 * l0 / bitRate
	if footprint > 1 {
		footprint = 1
	}
	den := c1*(1-p0)*footprint + (1 - footprint)
	if den <= 0 {
		return 1
	}
	g := 1 / den
	if g < 1 {
		return 1
	}
	return g
}

// EstimateAt produces the full ratio-quality estimate for an absolute error
// bound. Cost is O(len(samples)).
func (p *Profile) EstimateAt(absEB float64) Estimate {
	est := Estimate{AbsErrorBound: absEB}
	if !(absEB > 0) {
		return est
	}
	h, unpredShare := p.histogramAt(absEB)
	est.UnpredShare = unpredShare
	est.DistinctCodes = len(h.Counts)
	if h.Total > 0 {
		p0, _ := h.TopP()
		est.P0 = p0
		est.ZeroShare = h.P(0)
	}
	est.HuffmanBitRate = p.entropyBitRate(h)
	// Reconstruction feedback keeps a small fraction of imperfectly
	// predicted codes non-zero even when original-value sampling maps them
	// all to the central bin, which would otherwise drive Eq. 4 into its
	// p0→1 pole. Sparse regions predicted *exactly* (the paper's §III-C
	// sparsity) reconstruct exactly and are exempt from the discount.
	zeroForRLE := est.ZeroShare
	pz := p.exactZeroFrac
	if zcap := pz + 0.98*(1-pz); zeroForRLE > zcap {
		zeroForRLE = zcap
	}
	est.RLEGain = rleGain(zeroForRLE, est.HuffmanBitRate, p.opts.RLEC1Bits)
	est.PayloadBitRate = est.HuffmanBitRate
	if p.opts.UseLossless {
		est.PayloadBitRate = est.HuffmanBitRate / est.RLEGain
	}

	// Overheads: serialized codebook (≈2 bytes per distinct code), fixed
	// header, unpredictable raw values, predictor side channel.
	n := float64(p.N)
	codebookBits := float64(est.DistinctCodes) * 16
	headerBits := float64(p.opts.HeaderBytes) * 8
	est.OverheadBitRate = (codebookBits+headerBits)/n + est.UnpredShare*64 + p.AuxBitsPerValue
	est.TotalBitRate = est.PayloadBitRate*(1-est.UnpredShare) + est.OverheadBitRate
	if est.TotalBitRate > 0 {
		est.Ratio = float64(p.OrigBits) / est.TotalBitRate
	}

	// Error distribution: Eq. 10 (uniform) and Eq. 11 (refined).
	est.ErrVarUniform = absEB * absEB / 3
	share, centralVar := p.centralBinStats(absEB)
	est.ErrVar = (1-share)*est.ErrVarUniform + share*centralVar
	// Quality models.
	est.PSNRUniform = psnrFromVariance(p.Range, est.ErrVarUniform)
	est.PSNR = psnrFromVariance(p.Range, est.ErrVar)
	est.SSIMUniform = ssimFromVariance(p.Range, p.DataVar, est.ErrVarUniform)
	est.SSIM = ssimFromVariance(p.Range, p.DataVar, est.ErrVar)
	return est
}

// psnrFromVariance is Eq. 12.
func psnrFromVariance(valueRange, errVar float64) float64 {
	if errVar <= 0 {
		return math.Inf(1)
	}
	if valueRange <= 0 {
		return 0
	}
	return 20*math.Log10(valueRange) - 10*math.Log10(errVar)
}

// ssimFromVariance is Eq. 15 with the standard C3 = (0.03·L)² stabilizer.
func ssimFromVariance(valueRange, dataVar, errVar float64) float64 {
	c3 := (0.03 * valueRange) * (0.03 * valueRange)
	return (2*dataVar + c3) / (2*dataVar + c3 + errVar)
}

// Curve evaluates the model across a list of absolute error bounds.
func (p *Profile) Curve(absEBs []float64) []Estimate {
	out := make([]Estimate, len(absEBs))
	for i, eb := range absEBs {
		out[i] = p.EstimateAt(eb)
	}
	return out
}

// EstimateSpectrumRatio predicts the per-shell power-spectrum ratio
// P'(k)/P(k) of decompressed over original data, propagating a white
// compression-error distribution with variance errVar through the
// (unnormalized) DFT: each mode gains n·errVar expected power.
func EstimateSpectrumRatio(origSpectrum []float64, n int, errVar float64) []float64 {
	out := make([]float64, len(origSpectrum))
	add := float64(n) * errVar
	for i, pk := range origSpectrum {
		if pk <= 0 {
			out[i] = 1
			continue
		}
		out[i] = (pk + add) / pk
	}
	return out
}
