package core

import (
	"math"
	"testing"

	"rqm/internal/compressor"
	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/quality"
)

func field(t testing.TB, name string) *grid.Field {
	t.Helper()
	f, err := datagen.GenerateField(name, 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func profileOf(t testing.TB, f *grid.Field, kind predictor.Kind) *Profile {
	t.Helper()
	// Tiny fields need a higher sample rate for stable statistics.
	p, err := NewProfile(f, kind, Options{SampleRate: 0.2, Seed: 7, UseLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProfileValidation(t *testing.T) {
	if _, err := NewProfile(nil, predictor.Lorenzo, Options{}); err == nil {
		t.Fatal("nil field accepted")
	}
	f := field(t, "cesm/TS")
	if _, err := NewProfile(f, predictor.Lorenzo2, Options{}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := NewProfile(f, predictor.Kind(99), Options{}); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestProfileBasics(t *testing.T) {
	f := field(t, "cesm/TS")
	p := profileOf(t, f, predictor.Lorenzo)
	if p.N != f.Len() || p.Range <= 0 || p.DataVar <= 0 {
		t.Fatalf("profile fields: N=%d range=%v var=%v", p.N, p.Range, p.DataVar)
	}
	if len(p.Errors) == 0 || len(p.Errors) >= p.N {
		t.Fatalf("sample size = %d of %d", len(p.Errors), p.N)
	}
	if p.AuxBitsPerValue != 0 {
		t.Fatal("Lorenzo profile has aux bits")
	}
	pr := profileOf(t, f, predictor.Regression)
	if pr.AuxBitsPerValue <= 0 {
		t.Fatal("regression profile lacks aux bits")
	}
}

// The central accuracy claim: the modeled Huffman bit-rate tracks the
// measured one across error bounds (paper Table II reports ~95% accuracy;
// we accept a scattered error rate ≤ 20% on tiny synthetic fields).
func TestBitRateEstimateTracksMeasured(t *testing.T) {
	cases := []struct {
		fieldName string
		kind      predictor.Kind
	}{
		{"cesm/TS", predictor.Lorenzo},
		{"hurricane/U", predictor.Lorenzo},
		{"miranda/vx", predictor.Interpolation},
		{"scale/PRES", predictor.Regression},
	}
	for _, c := range cases {
		f := field(t, c.fieldName)
		p := profileOf(t, f, c.kind)
		var measured, estimated []float64
		for _, rel := range []float64{1e-5, 1e-4, 1e-3, 1e-2} {
			eb := rel * p.Range
			res, err := compressor.Compress(f, compressor.Options{
				Predictor: c.kind, Mode: compressor.ABS, ErrorBound: eb,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.fieldName, c.kind, err)
			}
			est := p.EstimateAt(eb)
			measured = append(measured, res.Stats.BitRateHuffman)
			estimated = append(estimated, est.HuffmanBitRate)
		}
		errRate := quality.AccuracyOfEstimate(measured, estimated)
		if errRate > 0.20 {
			t.Errorf("%s/%s: Huffman bit-rate error rate %.1f%% (measured %v, estimated %v)",
				c.fieldName, c.kind, errRate*100, measured, estimated)
		}
	}
}

func TestPSNREstimateTracksMeasured(t *testing.T) {
	f := field(t, "nyx/temperature")
	p := profileOf(t, f, predictor.Lorenzo)
	var measured, estimated []float64
	for _, rel := range []float64{1e-4, 1e-3, 1e-2, 5e-2} {
		eb := rel * p.Range
		res, err := compressor.Compress(f, compressor.Options{
			Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: eb,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := compressor.Decompress(res.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		psnr, err := quality.PSNR(f, dec)
		if err != nil {
			t.Fatal(err)
		}
		est := p.EstimateAt(eb)
		measured = append(measured, psnr)
		estimated = append(estimated, est.PSNR)
		// PSNR estimates should land within a few dB.
		if math.Abs(psnr-est.PSNR) > 6 {
			t.Errorf("eb=%g: PSNR measured %.2f dB vs estimated %.2f dB", eb, psnr, est.PSNR)
		}
	}
	if errRate := quality.AccuracyOfEstimate(measured, estimated); errRate > 0.10 {
		t.Errorf("PSNR error rate %.1f%%", errRate*100)
	}
}

func TestSSIMEstimateTracksMeasured(t *testing.T) {
	f := field(t, "cesm/TS")
	p := profileOf(t, f, predictor.Lorenzo)
	for _, rel := range []float64{1e-3, 1e-2} {
		eb := rel * p.Range
		res, err := compressor.Compress(f, compressor.Options{
			Predictor: predictor.Lorenzo, Mode: compressor.ABS, ErrorBound: eb,
		})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := compressor.Decompress(res.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		ssim, err := quality.GlobalSSIM(f, dec)
		if err != nil {
			t.Fatal(err)
		}
		est := p.EstimateAt(eb)
		if math.Abs(ssim-est.SSIM) > 0.05 {
			t.Errorf("eb=%g: SSIM measured %.4f vs estimated %.4f", eb, ssim, est.SSIM)
		}
	}
}

func TestRefinedErrVarBelowUniformAtHighEB(t *testing.T) {
	f := field(t, "cesm/TS")
	p := profileOf(t, f, predictor.Lorenzo)
	eb := p.Range * 0.1 // very high bound: most errors land in the central bin
	est := p.EstimateAt(eb)
	if est.ZeroShare < 0.5 {
		t.Skipf("premise not met: zero share %v", est.ZeroShare)
	}
	if est.ErrVar >= est.ErrVarUniform {
		t.Fatalf("refined variance %g not below uniform %g at high eb", est.ErrVar, est.ErrVarUniform)
	}
	if est.PSNR <= est.PSNRUniform {
		t.Fatalf("refined PSNR %g should exceed uniform %g at high eb", est.PSNR, est.PSNRUniform)
	}
}

func TestEstimateMonotonicity(t *testing.T) {
	f := field(t, "miranda/vx")
	p := profileOf(t, f, predictor.Interpolation)
	prevBits := math.Inf(1)
	prevPSNR := math.Inf(1)
	for _, rel := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		est := p.EstimateAt(rel * p.Range)
		if est.TotalBitRate > prevBits+1e-9 {
			t.Fatalf("bit-rate not monotone at rel=%g: %v > %v", rel, est.TotalBitRate, prevBits)
		}
		if est.PSNR > prevPSNR+1e-9 {
			t.Fatalf("PSNR not monotone at rel=%g", rel)
		}
		prevBits, prevPSNR = est.TotalBitRate, est.PSNR
	}
}

func TestCorrectionLayerOnlyAtHighP0(t *testing.T) {
	f := field(t, "cesm/TS")
	on := profileOf(t, f, predictor.Lorenzo)
	offOpts := on.Options()
	offOpts.DisableCorrection = true
	off, err := NewProfile(f, predictor.Lorenzo, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Low bound: correction must not trigger; estimates identical.
	lowEB := on.Range * 1e-6
	if a, b := on.EstimateAt(lowEB).HuffmanBitRate, off.EstimateAt(lowEB).HuffmanBitRate; a != b {
		t.Fatalf("correction changed low-eb estimate: %v vs %v", a, b)
	}
	// High bound: correction must increase the modeled bit-rate (it spreads
	// probability mass away from the dominant bin).
	highEB := on.quantileAbs(0.95)
	ba := on.EstimateAt(highEB).HuffmanBitRate
	bb := off.EstimateAt(highEB).HuffmanBitRate
	if ba < bb {
		t.Fatalf("correction decreased modeled bit-rate: %v < %v", ba, bb)
	}
}

func TestErrorBoundForBitRateInverts(t *testing.T) {
	f := field(t, "hurricane/U")
	p := profileOf(t, f, predictor.Lorenzo)
	for _, target := range []float64{2.0, 4.0, 8.0} {
		eb, err := p.ErrorBoundForBitRate(target)
		if err != nil {
			t.Fatal(err)
		}
		got := p.EstimateAt(eb).HuffmanBitRate
		if math.Abs(got-target) > 1.0 {
			t.Errorf("target %v bits: solved eb %g gives %v bits", target, eb, got)
		}
	}
	if _, err := p.ErrorBoundForBitRate(0); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestErrorBoundForBitRateLowRateRegime(t *testing.T) {
	f := field(t, "scale/PRES")
	p := profileOf(t, f, predictor.Lorenzo)
	// Target below 2 bits/value forces the anchor path.
	eb, err := p.ErrorBoundForBitRate(1.2)
	if err != nil {
		t.Fatal(err)
	}
	got := p.EstimateAt(eb).HuffmanBitRate
	if math.Abs(got-1.2) > 0.8 {
		t.Errorf("low-rate target 1.2: solved eb %g gives %v bits", eb, got)
	}
}

func TestErrorBoundForPSNR(t *testing.T) {
	f := field(t, "nyx/temperature")
	p := profileOf(t, f, predictor.Lorenzo)
	for _, target := range []float64{40, 60, 80} {
		eb, err := p.ErrorBoundForPSNR(target)
		if err != nil {
			t.Fatal(err)
		}
		got := p.EstimateAt(eb).PSNR
		if math.Abs(got-target) > 1.5 {
			t.Errorf("target %v dB: eb %g gives %v dB", target, eb, got)
		}
	}
}

func TestErrorBoundForRatio(t *testing.T) {
	f := field(t, "cesm/TS")
	p := profileOf(t, f, predictor.Lorenzo)
	for _, target := range []float64{4, 8, 16} {
		eb, err := p.ErrorBoundForRatio(target)
		if err != nil {
			t.Fatal(err)
		}
		got := p.EstimateAt(eb).Ratio
		if got < target*0.7 || got > target*1.5 {
			t.Errorf("target ratio %v: eb %g gives ratio %v", target, eb, got)
		}
	}
	if _, err := p.ErrorBoundForRatio(0.5); err == nil {
		t.Fatal("ratio < 1 accepted")
	}
}

func TestCurve(t *testing.T) {
	f := field(t, "cesm/TS")
	p := profileOf(t, f, predictor.Lorenzo)
	ebs := []float64{1e-5 * p.Range, 1e-3 * p.Range}
	curve := p.Curve(ebs)
	if len(curve) != 2 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0].AbsErrorBound != ebs[0] || curve[1].TotalBitRate >= curve[0].TotalBitRate {
		t.Fatal("curve not ordered by bound")
	}
}

func TestEstimateSpectrumRatio(t *testing.T) {
	pk := []float64{100, 50, 10, 0}
	r := EstimateSpectrumRatio(pk, 1000, 0.01)
	// add = 1000*0.01 = 10 per mode.
	want := []float64{1.1, 1.2, 2.0, 1.0}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-12 {
			t.Fatalf("ratio[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestRLEGainProperties(t *testing.T) {
	// No zeros: no gain.
	if g := rleGain(0, 4, 16); g != 1 {
		t.Fatalf("gain with p0=0: %v", g)
	}
	// Overwhelming zeros at 1 bit/value: big gain.
	if g := rleGain(0.999, 1.0, 16); g < 10 {
		t.Fatalf("gain with p0=0.999: %v", g)
	}
	// Gain must never fall below 1 (model skips a harmful stage).
	if g := rleGain(0.3, 6, 16); g < 1 {
		t.Fatalf("gain clamped: %v", g)
	}
}

func TestDegenerateConstantField(t *testing.T) {
	f := grid.MustNew("const", grid.Float32, 64, 64)
	for i := range f.Data {
		f.Data[i] = 3.5
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{SampleRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	est := p.EstimateAt(1e-3)
	if est.TotalBitRate <= 0 {
		t.Fatalf("degenerate bit-rate %v", est.TotalBitRate)
	}
	if est.ZeroShare < 0.99 {
		t.Fatalf("constant field zero share %v", est.ZeroShare)
	}
}

func BenchmarkEstimateAt(b *testing.B) {
	f, err := datagen.GenerateField("nyx/temperature", 1, datagen.Small)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{})
	if err != nil {
		b.Fatal(err)
	}
	eb := p.Range * 1e-4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EstimateAt(eb)
	}
}

func BenchmarkNewProfile(b *testing.B) {
	f, err := datagen.GenerateField("nyx/temperature", 1, datagen.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewProfile(f, predictor.Lorenzo, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
