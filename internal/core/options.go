// Package core implements the paper's contribution: the analytical
// ratio-quality model for prediction-based lossy compression. From a single
// cheap sampling pass (default 1% of the data) it estimates, for any error
// bound, the compression bit-rate/ratio (Huffman model Eq. 1–3, RLE model
// Eq. 4–8, plus per-stage overheads), the compression-error distribution
// (Eq. 10–11), and the post-hoc analysis quality (PSNR Eq. 12, SSIM Eq. 15,
// FFT spectra §III-D4). It also solves the inverse problems: the error
// bound for a target bit-rate (Eq. 2 with low-rate anchor interpolation)
// and for a target PSNR.
package core

import (
	"rqm/internal/predictor"
)

// EntropyModel selects the size model for the entropy stage.
type EntropyModel int

const (
	// EntropyModelHuffman models Eq. 1 Huffman codelengths: L = −log2 p with
	// the most frequent code clamped to at least 1 bit and a 1 bit/symbol
	// floor overall. This matches the serial and interleaved Huffman stages
	// (interleaving changes decode throughput, not coded size, beyond a few
	// framing bytes the header overhead already covers).
	EntropyModelHuffman EntropyModel = iota
	// EntropyModelANS models the Shannon entropy H = Σ p·(−log2 p) that a
	// tANS coder approaches: no per-symbol floor, so skewed histograms are
	// predicted below 1 bit/value — the regime where Huffman's clamp makes
	// Eq. 1 overshoot badly.
	EntropyModelANS
)

// Options tunes the model. The zero value selects the paper's defaults via
// normalize().
type Options struct {
	// SampleRate is the fraction of points sampled (paper default 0.01).
	SampleRate float64
	// Seed makes sampling deterministic.
	Seed uint64
	// Radius is the quantizer radius assumed by the model
	// (quantizer.DefaultRadius when 0).
	Radius int32
	// DisableCorrection turns off the Eq. 9 bin-transfer correction layer
	// (exposed for the ablation benches).
	DisableCorrection bool
	// C2Lorenzo and C2Interp are the Eq. 9 transfer fractions
	// (paper: 0.2 and 0.1).
	C2Lorenzo float64
	C2Interp  float64
	// CorrectionThreshold is θ2 in Eq. 9 (paper: 0.8).
	CorrectionThreshold float64
	// RLEC1Bits is C1 in Eq. 4–5: the fixed cost in bits of representing one
	// run of consecutive zero codes. The default 16 matches a marker byte
	// plus a one-byte varint in the byte-oriented RLE.
	RLEC1Bits float64
	// UseLossless includes the RLE-modeled lossless stage in the total
	// bit-rate (matches pipelines that enable a lossless backend).
	UseLossless bool
	// HeaderBytes is the fixed container overhead assumed by the model.
	HeaderBytes int
	// AnchorP0 are the central-bin shares used as anchor points for the
	// low-bit-rate regime (paper: 0.5, 0.8, 0.95).
	AnchorP0 []float64
	// Entropy selects the entropy-stage size model (zero value: Huffman,
	// the paper's Eq. 1). Codecs that code with tANS profile with
	// EntropyModelANS so estimates and inverse solves track the fractional
	// bits/symbol the coder actually achieves.
	Entropy EntropyModel
}

// normalize fills defaults in place and returns the value for chaining.
func (o Options) normalize() Options {
	if o.SampleRate <= 0 || o.SampleRate > 1 {
		o.SampleRate = 0.01
	}
	if o.Radius == 0 {
		o.Radius = 32768
	}
	if o.C2Lorenzo == 0 {
		o.C2Lorenzo = 0.2
	}
	if o.C2Interp == 0 {
		o.C2Interp = 0.1
	}
	if o.CorrectionThreshold == 0 {
		o.CorrectionThreshold = 0.8
	}
	if o.RLEC1Bits == 0 {
		o.RLEC1Bits = 16
	}
	if o.HeaderBytes == 0 {
		o.HeaderBytes = 120
	}
	if len(o.AnchorP0) == 0 {
		o.AnchorP0 = []float64{0.5, 0.8, 0.95}
	}
	return o
}

// c2For returns the Eq. 9 transfer fraction for a predictor kind (0 disables
// correction for kinds the paper does not correct).
func (o Options) c2For(kind predictor.Kind) float64 {
	switch kind {
	case predictor.Lorenzo, predictor.Lorenzo2:
		return o.C2Lorenzo
	case predictor.Interpolation, predictor.InterpolationCubic:
		return o.C2Interp
	}
	return 0
}
