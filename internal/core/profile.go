package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"rqm/internal/grid"
	"rqm/internal/predictor"
	"rqm/internal/stats"
)

// Profile is the one-time product of the sampling pass for one
// (field, predictor) pair. All estimates derive from it; building it is the
// only part of the model whose cost scales with the data size (one O(N)
// scan for range/variance plus the O(sample) prediction-error sampling).
type Profile struct {
	// Kind is the profiled predictor.
	Kind predictor.Kind
	// Dims is the field shape.
	Dims []int
	// N is the number of samples in the field.
	N int
	// OrigBits is the original storage width per value (32 or 64).
	OrigBits int
	// Range is the field's value range (max − min).
	Range float64
	// DataVar is the field's population variance (for the SSIM model).
	DataVar float64
	// Errors are the sampled prediction errors (predicted − original).
	Errors []float64
	// AuxBitsPerValue is the predictor side-channel overhead (regression
	// coefficients), in bits per value.
	AuxBitsPerValue float64
	// BuildTime is the wall time spent building the profile.
	BuildTime time.Duration

	opts Options
	// sortedAbs are |Errors| sorted ascending, with prefix sums of squares
	// for O(log n) central-bin variance queries.
	sortedAbs []float64
	prefixSq  []float64
	errStd    float64
	// exactZeroFrac is the share of samples with (numerically) zero
	// prediction error — the data sparsity the paper's §III-C detects.
	// These points reconstruct exactly and are immune to the feedback
	// effects that erode the central bin at high bounds.
	exactZeroFrac float64
}

// NewProfile samples f with the given predictor and returns the profile.
func NewProfile(f *grid.Field, kind predictor.Kind, opts Options) (*Profile, error) {
	if f == nil || f.Len() == 0 {
		return nil, errors.New("core: empty field")
	}
	opts = opts.normalize()
	pred, err := predictor.New(kind)
	if err != nil {
		return nil, err
	}
	if !pred.Supports(f.Rank()) {
		return nil, fmt.Errorf("core: predictor %s does not support rank %d", kind, f.Rank())
	}
	start := time.Now()
	errs := pred.SampleErrors(f, opts.SampleRate, opts.Seed)
	if len(errs) == 0 {
		return nil, errors.New("core: sampling produced no prediction errors")
	}
	lo, hi := f.ValueRange()
	_, dataVar := stats.MeanVar(f.Data)
	p := &Profile{
		Kind:     kind,
		Dims:     append([]int(nil), f.Dims...),
		N:        f.Len(),
		OrigBits: f.Prec.Bits(),
		Range:    hi - lo,
		DataVar:  dataVar,
		Errors:   errs,
		opts:     opts,
	}
	if kind == predictor.Regression {
		p.AuxBitsPerValue = predictor.AuxBitsPerValue(f.Dims)
	}
	p.index()
	p.BuildTime = time.Since(start)
	return p, nil
}

// NewProfileFromSamples builds a profile directly from pre-computed sample
// values (the quantity that becomes a quantization code at a given bound).
// This is the extension hook the paper's future work calls for: codecs
// outside the prediction family (e.g. transform-based) supply their
// coefficient samples and reuse the whole estimation machinery. kind is
// recorded for reporting only; the Eq. 9 correction layer is predictor-
// specific and stays off for kinds it does not know.
func NewProfileFromSamples(kind predictor.Kind, samples []float64, dims []int,
	n, origBits int, valueRange, dataVar float64, opts Options) (*Profile, error) {
	if len(samples) == 0 {
		return nil, errors.New("core: no samples")
	}
	if n <= 0 {
		return nil, errors.New("core: field size must be positive")
	}
	start := time.Now()
	p := &Profile{
		Kind:     kind,
		Dims:     append([]int(nil), dims...),
		N:        n,
		OrigBits: origBits,
		Range:    valueRange,
		DataVar:  dataVar,
		Errors:   samples,
		opts:     opts.normalize(),
	}
	p.index()
	p.BuildTime = time.Since(start)
	return p, nil
}

// index prepares the sorted-|error| structures.
func (p *Profile) index() {
	p.sortedAbs = make([]float64, len(p.Errors))
	for i, e := range p.Errors {
		p.sortedAbs[i] = math.Abs(e)
	}
	sort.Float64s(p.sortedAbs)
	p.prefixSq = make([]float64, len(p.sortedAbs)+1)
	for i, a := range p.sortedAbs {
		p.prefixSq[i+1] = p.prefixSq[i] + a*a
	}
	_, v := stats.MeanVar(p.Errors)
	p.errStd = math.Sqrt(v)
	zeroTol := p.Range * 1e-13
	nz := sort.SearchFloat64s(p.sortedAbs, math.Nextafter(zeroTol, math.Inf(1)))
	p.exactZeroFrac = float64(nz) / float64(len(p.sortedAbs))
}

// ExactZeroFrac reports the detected data sparsity (share of sampled points
// predicted exactly).
func (p *Profile) ExactZeroFrac() float64 { return p.exactZeroFrac }

// ErrStd is the standard deviation of the sampled prediction errors
// (the Fig. 4 sampling-accuracy metric compares this against the full scan).
func (p *Profile) ErrStd() float64 { return p.errStd }

// Options returns the (normalized) model options the profile was built with.
func (p *Profile) Options() Options { return p.opts }

// centralBinStats returns the share of samples with |err| <= eb and the
// second moment (about zero) of that subset — σ²(B[0]) in Eq. 11.
func (p *Profile) centralBinStats(eb float64) (share, variance float64) {
	n := len(p.sortedAbs)
	k := sort.SearchFloat64s(p.sortedAbs, math.Nextafter(eb, math.Inf(1)))
	if k == 0 {
		return 0, 0
	}
	return float64(k) / float64(n), p.prefixSq[k] / float64(k)
}

// quantileAbs returns the |error| value below which a fraction q of samples
// falls (used for the anchor error bounds: central-bin share p0 at eb means
// quantileAbs(p0) = eb).
func (p *Profile) quantileAbs(q float64) float64 {
	return stats.Quantile(p.sortedAbs, q)
}
