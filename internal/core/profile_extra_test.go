package core

import (
	"math"
	"testing"

	"rqm/internal/datagen"
	"rqm/internal/grid"
	"rqm/internal/predictor"
)

func TestNewProfileFromSamplesValidation(t *testing.T) {
	if _, err := NewProfileFromSamples(predictor.Lorenzo, nil, []int{4}, 4, 32, 1, 1, Options{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := NewProfileFromSamples(predictor.Lorenzo, []float64{0.1}, []int{4}, 0, 32, 1, 1, Options{}); err == nil {
		t.Fatal("zero N accepted")
	}
	p, err := NewProfileFromSamples(predictor.Lorenzo, []float64{0.1, -0.2, 0.05}, []int{8}, 8, 32, 2, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 8 || p.Range != 2 || p.DataVar != 0.5 {
		t.Fatalf("profile fields: %+v", p)
	}
	est := p.EstimateAt(0.1)
	if est.TotalBitRate <= 0 {
		t.Fatalf("estimate from samples: %+v", est)
	}
}

func TestExactZeroFracDetectsSparsity(t *testing.T) {
	// Half exact zeros, half spread errors.
	samples := make([]float64, 100)
	for i := 50; i < 100; i++ {
		samples[i] = 0.1 * float64(i-49)
	}
	p, err := NewProfileFromSamples(predictor.Lorenzo, samples, []int{100}, 100, 32, 10, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.ExactZeroFrac()-0.5) > 0.01 {
		t.Fatalf("exact-zero fraction = %v, want 0.5", p.ExactZeroFrac())
	}
}

func TestSparseFieldKeepsHighRLEGain(t *testing.T) {
	// A field that is 99.7% exactly constant: the sparsity exemption must
	// let the modeled RLE gain rise beyond the dense-field feedback cap
	// (zero share clamped at 0.98 → gain ≤ 1/(C1·0.02)).
	f := grid.MustNew("sparse", grid.Float32, 100, 100)
	for i := 9970; i < 10000; i++ {
		f.Data[i] = math.Sin(float64(i))
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{SampleRate: 0.5, UseLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.ExactZeroFrac() < 0.98 {
		t.Skipf("premise: exact zeros = %v", p.ExactZeroFrac())
	}
	est := p.EstimateAt(0.05)
	denseCap := 1 / (p.Options().RLEC1Bits * 0.02) // gain at the dense clamp
	if est.RLEGain < denseCap {
		t.Fatalf("sparse RLE gain %v below dense cap %v", est.RLEGain, denseCap)
	}
}

func TestUnpredShareMonotone(t *testing.T) {
	f, err := datagen.GenerateField("hurricane/U", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{SampleRate: 0.3, Radius: 64})
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, rel := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		est := p.EstimateAt(rel * p.Range)
		if est.UnpredShare > prev+1e-12 {
			t.Fatalf("unpredictable share not monotone at rel=%g", rel)
		}
		prev = est.UnpredShare
	}
}

func TestEstimateSSIMBounds(t *testing.T) {
	f, err := datagen.GenerateField("cesm/TS", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{SampleRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []float64{1e-6, 1e-3, 1e-1} {
		est := p.EstimateAt(rel * p.Range)
		if est.SSIM <= 0 || est.SSIM > 1 || est.SSIMUniform <= 0 || est.SSIMUniform > 1 {
			t.Fatalf("SSIM estimates out of range at rel=%g: %v / %v", rel, est.SSIM, est.SSIMUniform)
		}
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalize()
	if o.SampleRate != 0.01 || o.Radius != 32768 || o.C2Lorenzo != 0.2 ||
		o.C2Interp != 0.1 || o.CorrectionThreshold != 0.8 || o.RLEC1Bits != 16 {
		t.Fatalf("defaults: %+v", o)
	}
	if len(o.AnchorP0) != 3 || o.AnchorP0[0] != 0.5 {
		t.Fatalf("anchors: %v", o.AnchorP0)
	}
	if o.c2For(predictor.Regression) != 0 {
		t.Fatal("regression should have no correction factor")
	}
}

func TestEstimateAtNonPositiveBound(t *testing.T) {
	f, err := datagen.GenerateField("cesm/TS", 42, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfile(f, predictor.Lorenzo, Options{SampleRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	est := p.EstimateAt(0)
	if est.TotalBitRate != 0 || est.Ratio != 0 {
		t.Fatalf("zero bound should return zero estimate, got %+v", est)
	}
	est = p.EstimateAt(math.NaN())
	if est.TotalBitRate != 0 {
		t.Fatalf("NaN bound should return zero estimate")
	}
}
