package quantizer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Fatal("eb=0 accepted")
	}
	if _, err := New(-1, 0); err == nil {
		t.Fatal("eb<0 accepted")
	}
	if _, err := New(math.Inf(1), 0); err == nil {
		t.Fatal("eb=Inf accepted")
	}
	if _, err := New(1, -5); err == nil {
		t.Fatal("negative radius accepted")
	}
	q, err := New(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Radius() != DefaultRadius {
		t.Fatalf("default radius = %d", q.Radius())
	}
	if q.ErrorBound() != 0.5 {
		t.Fatalf("eb = %v", q.ErrorBound())
	}
}

func TestQuantizeExactness(t *testing.T) {
	q, _ := New(0.1, 0)
	cases := []struct{ value, pred float64 }{
		{1.0, 1.0}, {1.05, 1.0}, {1.1, 1.0}, {0.85, 1.0}, {3.14159, 2.5},
		{-7.7, -7.5}, {0, 0.05},
	}
	for _, c := range cases {
		code, recon, ok := q.Quantize(c.value, c.pred)
		if !ok {
			t.Fatalf("Quantize(%v, %v) not ok", c.value, c.pred)
		}
		if math.Abs(c.value-recon) > 0.1+1e-15 {
			t.Fatalf("bound violated: value %v recon %v code %d", c.value, recon, code)
		}
	}
}

func TestQuantizeZeroCodeForSmallErrors(t *testing.T) {
	q, _ := New(1.0, 0)
	code, recon, ok := q.Quantize(5.4, 5.0)
	if !ok || code != 0 || recon != 5.0 {
		t.Fatalf("code=%d recon=%v ok=%v", code, recon, ok)
	}
}

func TestQuantizeOutOfRange(t *testing.T) {
	q, _ := New(1e-6, 4)
	_, recon, ok := q.Quantize(100, 0)
	if ok {
		t.Fatal("out-of-range diff quantized")
	}
	if recon != 100 {
		t.Fatalf("unpredictable recon = %v, want the original value", recon)
	}
}

func TestQuantizeNaNPrediction(t *testing.T) {
	q, _ := New(0.1, 0)
	if _, _, ok := q.Quantize(1, math.NaN()); ok {
		t.Fatal("NaN prediction quantized")
	}
}

func TestReconstructInvertsQuantize(t *testing.T) {
	q, _ := New(0.25, 0)
	code, recon, ok := q.Quantize(10.3, 9.0)
	if !ok {
		t.Fatal("not ok")
	}
	if got := q.Reconstruct(9.0, code); got != recon {
		t.Fatalf("Reconstruct = %v, want %v", got, recon)
	}
}

// Property: for any finite value/pred within range, the reconstruction error
// is bounded by eb, and decoder reconstruction matches encoder reconstruction.
func TestQuickErrorBoundInvariant(t *testing.T) {
	q, _ := New(0.01, 0)
	f := func(v, p float64) bool {
		v = math.Mod(v, 1e6)
		p = math.Mod(p, 1e6)
		if math.IsNaN(v) || math.IsNaN(p) {
			return true
		}
		code, recon, ok := q.Quantize(v, p)
		if !ok {
			return recon == v // unpredictable path must hand back the original
		}
		if math.Abs(v-recon) > q.ErrorBound() {
			return false
		}
		return q.Reconstruct(p, code) == recon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeFor(t *testing.T) {
	if c := CodeFor(0.05, 0.1); c != 0 {
		t.Fatalf("CodeFor(0.05, 0.1) = %d", c)
	}
	if c := CodeFor(0.21, 0.1); c != 1 {
		t.Fatalf("CodeFor(0.21, 0.1) = %d", c)
	}
	if c := CodeFor(-0.51, 0.1); c != -3 {
		t.Fatalf("CodeFor(-0.51, 0.1) = %d", c)
	}
	if c := CodeFor(1e300, 1e-12); c != math.MaxInt32 {
		t.Fatalf("huge diff = %d", c)
	}
	if c := CodeFor(-1e300, 1e-12); c != math.MinInt32 {
		t.Fatalf("huge negative diff = %d", c)
	}
}
