// Package quantizer implements SZ-style linear-scaling quantization: the
// prediction error is mapped to an integer code on a uniform grid of width
// 2·eb, which guarantees |original − reconstructed| ≤ eb for in-range codes.
// Errors beyond the code radius are "unpredictable" and stored losslessly by
// the caller.
package quantizer

import (
	"fmt"
	"math"
)

// DefaultRadius matches SZ's default of 65536 quantization bins (codes in
// (−32768, 32768)).
const DefaultRadius = 32768

// Quantizer performs linear-scaling quantization for one error bound.
type Quantizer struct {
	eb     float64
	twoEB  float64
	radius int32
}

// New constructs a quantizer. eb must be positive; radius must be >= 1
// (DefaultRadius when 0).
func New(eb float64, radius int32) (*Quantizer, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("quantizer: error bound must be positive and finite, got %v", eb)
	}
	if radius == 0 {
		radius = DefaultRadius
	}
	if radius < 1 {
		return nil, fmt.Errorf("quantizer: radius must be >= 1, got %d", radius)
	}
	return &Quantizer{eb: eb, twoEB: 2 * eb, radius: radius}, nil
}

// ErrorBound returns the configured bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Radius returns the maximum |code| representable.
func (q *Quantizer) Radius() int32 { return q.radius }

// Quantize maps (value − pred) to the nearest code. ok is false when the
// code would fall outside ±radius or when the reconstruction would violate
// the error bound due to floating-point cancellation; in that case the
// caller must store the value exactly.
func (q *Quantizer) Quantize(value, pred float64) (code int32, recon float64, ok bool) {
	diff := value - pred
	c := math.Round(diff / q.twoEB)
	if c > float64(q.radius) || c < -float64(q.radius) || math.IsNaN(c) {
		return 0, value, false
	}
	code = int32(c)
	recon = pred + float64(code)*q.twoEB
	// Guard against precision loss on extreme magnitudes: re-check the bound.
	if math.Abs(value-recon) > q.eb {
		return 0, value, false
	}
	return code, recon, true
}

// Reconstruct inverts a code against a prediction.
func (q *Quantizer) Reconstruct(pred float64, code int32) float64 {
	return pred + float64(code)*q.twoEB
}

// CodeFor returns the code a prediction error `diff` maps to without range
// checking; used by the model when building estimated histograms.
func CodeFor(diff, eb float64) int32 {
	c := math.Round(diff / (2 * eb))
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	if c < math.MinInt32 {
		return math.MinInt32
	}
	return int32(c)
}
