// Residual-layer store support: staging and commit-time validation of the
// residual file, the exact (bit-lossless) range read path, and the builder
// that synthesizes a residual from an original against a staged container.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rqm/internal/codec"
	"rqm/internal/grid"
	"rqm/internal/residual"
)

// stageResidual writes the residual file into the staging directory, tees
// it through SHA-256, and validates the staged bytes against both the
// builder's declared record (a replica transfer must arrive intact) and the
// manifest's chunk geometry (blocks must align one-to-one with chunks) —
// the same refuse-to-commit discipline the container gets.
func (s *Store) stageResidual(stage, name, cpath string, m *Manifest, rb ResidualBuilder) (*ResidualRecord, error) {
	rpath := filepath.Join(stage, ResidualFile)
	rf, err := os.Create(rpath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	hasher := sha256.New()
	rec, err := rb(cpath, io.MultiWriter(rf, hasher))
	if err == nil {
		err = rf.Sync()
	}
	if cerr := rf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, errors.New("store: residual builder returned no record")
	}
	fi, err := os.Stat(rpath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := hex.EncodeToString(hasher.Sum(nil))
	if rec.Hash != "" && rec.Hash != sum {
		return nil, fmt.Errorf("%w: %q: staged residual hashes to %s, record declares %s",
			ErrCorruptDataset, name, sum, rec.Hash)
	}
	if rec.Bytes > 0 && rec.Bytes != fi.Size() {
		return nil, fmt.Errorf("%w: %q: staged residual is %d bytes, record declares %d",
			ErrCorruptDataset, name, fi.Size(), rec.Bytes)
	}
	out := &ResidualRecord{
		Backend:      rec.Backend,
		Bytes:        fi.Size(),
		Hash:         sum,
		OriginalHash: rec.OriginalHash,
	}

	// Structural check of what was just written: parseable, right backend,
	// and block-for-chunk aligned with the manifest.
	f, err := os.Open(rpath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	idx, err := residual.LoadIndex(f)
	if err != nil {
		return nil, corruptResidual(name, err)
	}
	if out.OriginalHash == "" {
		out.OriginalHash = hex.EncodeToString(idx.Header.OriginalHash[:])
	}
	if err := checkResidualIndex(name, m, out, idx); err != nil {
		return nil, err
	}
	return out, nil
}

// checkResidualIndex cross-checks a residual index against the manifest it
// is about to be (or is) committed with.
func checkResidualIndex(name string, m *Manifest, rec *ResidualRecord, idx *residual.Index) error {
	c, err := residual.ByName(rec.Backend)
	if err != nil {
		return corruptResidual(name, err)
	}
	if idx.Header.BackendID != c.ID() {
		return fmt.Errorf("%w: %q: residual coded with backend id %d, record names %q",
			ErrCorruptDataset, name, idx.Header.BackendID, rec.Backend)
	}
	if idx.Header.Width*8 != m.PrecBits {
		return fmt.Errorf("%w: %q: residual width %d bytes for %d-bit data",
			ErrCorruptDataset, name, idx.Header.Width, m.PrecBits)
	}
	if idx.Header.ElemCount != m.TotalValues {
		return fmt.Errorf("%w: %q: residual covers %d values, dataset holds %d",
			ErrCorruptDataset, name, idx.Header.ElemCount, m.TotalValues)
	}
	if hh := hex.EncodeToString(idx.Header.OriginalHash[:]); hh != rec.OriginalHash {
		return fmt.Errorf("%w: %q: residual header original hash %s, record declares %s",
			ErrCorruptDataset, name, hh, rec.OriginalHash)
	}
	if len(idx.Blocks) != len(m.Chunks) {
		return fmt.Errorf("%w: %q: residual holds %d blocks, container holds %d chunks",
			ErrCorruptDataset, name, len(idx.Blocks), len(m.Chunks))
	}
	for i, b := range idx.Blocks {
		if b.Values != m.Chunks[i].Values {
			return fmt.Errorf("%w: %q: residual block %d covers %d values, chunk covers %d",
				ErrCorruptDataset, name, i, b.Values, m.Chunks[i].Values)
		}
	}
	return nil
}

// BuildResidual synthesizes a residual layer: it decodes the (staged or
// committed) container at containerPath to obtain the exact lossy
// reconstruction, computes the XOR residual against orig, and writes the
// framed residual file to w, blocked to the container's chunk geometry.
// The returned record declares the backend and original hash; the store
// fills Bytes and Hash at staging. Shaped as a ResidualBuilder factory so
// callers pass BuildResidual(orig, prec, backend) straight to
// PutWithResidual / ReplaceWithResidual.
func BuildResidual(orig []float64, prec grid.Precision, backend string) ResidualBuilder {
	return func(containerPath string, w io.Writer) (*ResidualRecord, error) {
		c, err := residual.ByName(backend)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(containerPath)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		idx, err := codec.LoadIndex(f)
		if err != nil {
			return nil, fmt.Errorf("store: residual base: %w", err)
		}
		if idx.TotalValues != int64(len(orig)) {
			return nil, fmt.Errorf("store: residual base holds %d values, original holds %d",
				idx.TotalValues, len(orig))
		}
		recon := make([]float64, 0, idx.TotalValues)
		blocks := make([]int, len(idx.Entries))
		for i, e := range idx.Entries {
			ch, err := codec.ReadChunkAt(f, e)
			if err != nil {
				return nil, fmt.Errorf("store: residual base: %w", err)
			}
			vals, err := codec.DecodeChunk(ch)
			if err != nil {
				return nil, fmt.Errorf("store: residual base: %w", err)
			}
			blocks[i] = len(vals)
			recon = append(recon, vals...)
		}
		if _, err := residual.Encode(w, c, prec, orig, recon, blocks); err != nil {
			return nil, err
		}
		h, err := residual.OriginalHash(orig, prec)
		if err != nil {
			return nil, err
		}
		return &ResidualRecord{Backend: backend, OriginalHash: hex.EncodeToString(h[:])}, nil
	}
}

// CopyResidual is the replica-transfer ResidualBuilder: it streams exactly
// declared.Bytes from r into the staged residual file and re-declares the
// source's record, so the store's staging checks prove the copy arrived
// byte-identical (hash and size must reproduce).
func CopyResidual(r io.Reader, declared *ResidualRecord) ResidualBuilder {
	return func(_ string, w io.Writer) (*ResidualRecord, error) {
		if declared == nil {
			return nil, errors.New("store: CopyResidual needs the declared record")
		}
		if _, err := io.CopyN(w, r, declared.Bytes); err != nil {
			return nil, fmt.Errorf("store: copying residual: %w", err)
		}
		rec := *declared
		return &rec, nil
	}
}

// ReadRangeExact is ReadRangeWith at the lossless tier: it decodes the
// chunks covering [off, off+n), applies each chunk's residual block, and
// returns bit-exact original values. Only the covering chunks and blocks
// are read. ErrNoResidual when the dataset has no residual layer.
func (s *Store) ReadRangeExact(m *Manifest, off, n int64) ([]float64, error) {
	name := m.Name
	if m.Residual == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoResidual, name)
	}
	if off < 0 || n <= 0 || off > m.TotalValues || n > m.TotalValues-off {
		return nil, fmt.Errorf("%w: [%d, %d) of %d values", ErrBadRange, off, off+n, m.TotalValues)
	}
	f, err := s.fs.Open(filepath.Join(s.datasetDir(name), ContainerFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	rf, err := s.fs.Open(filepath.Join(s.datasetDir(name), ResidualFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q: manifest records a residual but the file is missing",
				ErrCorruptDataset, name)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	defer rf.Close()
	idx, err := residual.LoadIndex(rf)
	if err != nil {
		return nil, corruptResidual(name, err)
	}
	if len(idx.Blocks) != len(m.Chunks) || idx.Header.Width*8 != m.PrecBits {
		return nil, fmt.Errorf("%w: %q: residual layout does not match the container", ErrCorruptDataset, name)
	}

	out := make([]float64, 0, n)
	var start int64 // first element of the current chunk
	for i, e := range m.IndexEntries() {
		end := start + int64(e.Values)
		if end <= off {
			start = end
			continue
		}
		if start >= off+n {
			break
		}
		c, err := codec.ReadChunkAt(f, e)
		if err != nil {
			return nil, corruptRead(name, err)
		}
		vals, err := codec.DecodeChunk(c)
		if err != nil {
			return nil, corruptRead(name, err)
		}
		if idx.Blocks[i].Values != len(vals) {
			return nil, fmt.Errorf("%w: %q: residual block %d covers %d values, chunk decodes %d",
				ErrCorruptDataset, name, i, idx.Blocks[i].Values, len(vals))
		}
		raw, err := residual.ReadBlock(rf, idx.Header, idx.Blocks[i])
		if err != nil {
			return nil, corruptResidual(name, err)
		}
		if err := residual.Apply(vals, raw, m.Prec()); err != nil {
			return nil, corruptResidual(name, err)
		}
		s.chunkReads.Add(1)
		lo, hi := int64(0), int64(len(vals))
		if off > start {
			lo = off - start
		}
		if off+n < end {
			hi = off + n - start
		}
		out = append(out, vals[lo:hi]...)
		start = end
	}
	return out, nil
}

// corruptResidual wraps a residual read/parse failure in ErrCorruptDataset
// when the cause is an integrity failure (the residual-layer counterpart of
// corruptRead).
func corruptResidual(name string, err error) error {
	for _, sentinel := range []error{
		residual.ErrBadMagic, residual.ErrUnsupportedVersion, residual.ErrUnknownBackend,
		residual.ErrCorrupt, residual.ErrTruncated,
	} {
		if errors.Is(err, sentinel) {
			return fmt.Errorf("%w: %q: %w", ErrCorruptDataset, name, err)
		}
	}
	return fmt.Errorf("store: dataset %q: %w", name, err)
}
