package store_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rqm"
	"rqm/internal/store"
)

// validManifestJSON builds one fully valid manifest (with a real cached
// profile) as the fuzz corpus anchor.
func validManifestJSON(t testing.TB) []byte {
	t.Helper()
	f := testField(t, 512)
	p, err := rqm.NewProfile(f, rqm.Lorenzo, rqm.ModelOptions{SampleRate: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := &store.Manifest{
		Version:        store.ManifestVersion,
		Name:           "fuzz-seed",
		PrecBits:       64,
		Dims:           []int{512},
		Codec:          "prediction",
		Predictor:      "lorenzo",
		Mode:           "abs",
		ErrorBound:     1e-3,
		ContentHash:    strings.Repeat("cd", 32),
		TotalValues:    512,
		OriginalBytes:  4096,
		ContainerBytes: 1024,
		Ratio:          4,
		Chunks: []store.ChunkRecord{
			{Offset: 32, Values: 256, RecordBytes: 500, AbsBound: 1e-3},
			{Offset: 532, Values: 256, RecordBytes: 470, AbsBound: 1e-3},
		},
		Profile: store.NewProfileRecord(p),
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.ParseManifest(data); err != nil {
		t.Fatalf("seed manifest does not parse: %v", err)
	}
	return data
}

// FuzzManifest hammers ParseManifest with valid, truncated, and
// field-corrupted manifests: malformed input must yield a typed error
// (ErrManifestCorrupt / ErrManifestVersion), never a panic, and anything
// accepted must survive a marshal/parse round trip.
func FuzzManifest(f *testing.F) {
	valid := validManifestJSON(f)
	f.Add(valid)
	// Truncations at several depths.
	for _, frac := range []int{2, 3, 10} {
		f.Add(valid[:len(valid)/frac])
	}
	// Field corruptions: wrong version, negative counts, bad base64, rank
	// overflow, inconsistent chunk index, bad predictor, NaN-smuggling.
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":99,"name":"x"}`))
	f.Add([]byte(strings.Replace(string(valid), `"version":1`, `"version":2`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"total_values":512`, `"total_values":-1`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"dims":[512]`, `"dims":[1,1,1,1,1]`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"dims":[512]`, `"dims":[0]`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`, `"name":"../escape"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"predictor":"lorenzo"`, `"predictor":"warp-drive"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"errors_b64":"`, `"errors_b64":"!!!`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"prec_bits":64`, `"prec_bits":48`, 1)))
	// Container-hash variants: valid, non-hex, wrong length. The scrubber
	// trusts this field as its deep reference, so a parse must either accept
	// a well-formed digest or reject typed — never let junk through.
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed","container_hash":"`+strings.Repeat("ab", 32)+`"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed","container_hash":"`+strings.Repeat("zz", 32)+`"`, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed","container_hash":"abcd"`, 1)))
	// Residual-section variants: a valid record, an unknown backend, a
	// malformed hash, non-positive byte counts, and a truncated section. A
	// malformed record must reject typed — the exact-read path trusts these
	// fields as its integrity reference.
	resOK := `"residual":{"backend":"ans","bytes":2048,"hash":"` + strings.Repeat("ef", 32) +
		`","original_hash":"` + strings.Repeat("01", 32) + `"}`
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed",`+resOK, 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed",`+strings.Replace(resOK, `"ans"`, `"warp-drive"`, 1), 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed",`+strings.Replace(resOK, strings.Repeat("ef", 32), "zz", 1), 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed",`+strings.Replace(resOK, `"bytes":2048`, `"bytes":0`, 1), 1)))
	f.Add([]byte(strings.Replace(string(valid), `"name":"fuzz-seed"`,
		`"name":"fuzz-seed",`+resOK[:len(resOK)/2], 1)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := store.ParseManifest(data) // must never panic
		if err != nil {
			if !errors.Is(err, store.ErrManifestCorrupt) && !errors.Is(err, store.ErrManifestVersion) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		// Accepted manifests are stable: re-marshal, re-parse, same identity.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		m2, err := store.ParseManifest(out)
		if err != nil {
			t.Fatalf("re-marshaled manifest rejected: %v", err)
		}
		if m2.Name != m.Name || m2.TotalValues != m.TotalValues || len(m2.Chunks) != len(m.Chunks) ||
			m2.ContainerHash != m.ContainerHash {
			t.Fatalf("round trip changed identity: %+v vs %+v", m2, m)
		}
		if (m.Residual == nil) != (m2.Residual == nil) ||
			(m.Residual != nil && *m2.Residual != *m.Residual) {
			t.Fatalf("round trip changed residual record: %+v vs %+v", m2.Residual, m.Residual)
		}
		// A present profile must either rebuild or fail typed.
		if m.Profile != nil {
			if _, err := m.RQProfile(); err != nil && !errors.Is(err, store.ErrManifestCorrupt) {
				t.Fatalf("untyped profile rebuild error: %v", err)
			}
		}
	})
}
