package store_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"rqm"
	"rqm/internal/faultfs"
	"rqm/internal/grid"
	"rqm/internal/residual"
	"rqm/internal/store"
)

// putPromoted admits f with a residual layer built against the staged
// container — the store-level equivalent of `put -exact`.
func putPromoted(t testing.TB, s *store.Store, name string, f *rqm.Field, chunkValues int, absEB float64, backend string) *store.Manifest {
	t.Helper()
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(absEB))
	if err != nil {
		t.Fatal(err)
	}
	man := &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     "lorenzo",
		Mode:          "abs",
		ErrorBound:    absEB,
		ContentHash:   strings.Repeat("ab", 32),
		OriginalBytes: f.OriginalBytes(),
	}
	committed, err := s.PutWithResidual(name, func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(chunkValues))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		return man, sw.Close()
	}, store.BuildResidual(f.Data, f.Prec, backend))
	if err != nil {
		t.Fatal(err)
	}
	return committed
}

// storageExact returns v at the dataset's storage precision — the value an
// exact read must reproduce bit for bit.
func storageExact(v float64, prec grid.Precision) float64 {
	if prec.Bits() == 32 {
		return float64(float32(v))
	}
	return v
}

func TestPutWithResidualExactRead(t *testing.T) {
	for _, backend := range []string{"ans", "huffman", "lz77"} {
		s, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		f := testField(t, 4096)
		m := putPromoted(t, s, "exact", f, 512, 1e-3, backend)
		if m.Residual == nil {
			t.Fatalf("%s: committed manifest carries no residual record", backend)
		}
		if m.Residual.Backend != backend || m.Residual.Bytes <= 0 {
			t.Fatalf("%s: residual record %+v", backend, m.Residual)
		}
		// Lossy read differs from the original (it is lossy)…
		lossy, err := s.ReadRangeWith(m, 0, m.TotalValues)
		if err != nil {
			t.Fatal(err)
		}
		exactDiffers := false
		for i := range lossy {
			if lossy[i] != f.Data[i] {
				exactDiffers = true
				break
			}
		}
		if !exactDiffers {
			t.Fatalf("%s: lossy read is already exact — test field too easy", backend)
		}
		// …while the exact read is bit-identical to the original.
		got, err := s.ReadRangeExact(m, 0, m.TotalValues)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != storageExact(f.Data[i], f.Prec) {
				t.Fatalf("%s: exact read value %d: got %v, want %v", backend, i, got[i], f.Data[i])
			}
		}
		gh, err := residual.OriginalHash(got, f.Prec)
		if err != nil {
			t.Fatal(err)
		}
		wh, err := residual.OriginalHash(f.Data, f.Prec)
		if err != nil {
			t.Fatal(err)
		}
		if gh != wh {
			t.Fatalf("%s: exact payload hash differs from original", backend)
		}
		// The residual survives reopen, the gauge tracks it, and verify
		// passes at both depths.
		s2, err := store.Open(s.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if s2.ResidualBytes() != m.Residual.Bytes {
			t.Fatalf("%s: gauge %d after reopen, want %d", backend, s2.ResidualBytes(), m.Residual.Bytes)
		}
		if err := s2.VerifyDataset("exact", true); err != nil {
			t.Fatalf("%s: deep verify of promoted dataset: %v", backend, err)
		}
	}
}

// TestExactSliceGeometry pins exact slice reads across both chunk layouts:
// fixed slabs and variance-quadtree variable-size chunks. Every sampled
// [off, len) must equal the original slice at storage precision.
func TestExactSliceGeometry(t *testing.T) {
	f, err := rqm.GenerateField("mixed", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	layouts := map[string][]rqm.StreamOption{
		"fixed-slab": {rqm.WithChunkSize(2048)},
		"variance-quadtree": {
			rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
			rqm.WithPartitioner(rqm.VarianceQuadtree{SplitFactor: 1.1, MinRegionValues: 1024}),
		},
	}
	for name, opts := range layouts {
		s, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		man := &store.Manifest{
			CreatedAt:     time.Now().UTC(),
			PrecBits:      f.Prec.Bits(),
			Dims:          append([]int(nil), f.Dims...),
			Codec:         eng.Codec().Name(),
			Mode:          "abs",
			ErrorBound:    1e-3,
			OriginalBytes: f.OriginalBytes(),
		}
		m, err := s.PutWithResidual("geo", func(w io.Writer) (*store.Manifest, error) {
			sw, err := eng.NewFieldStreamWriter(w, f, opts...)
			if err != nil {
				return nil, err
			}
			if err := sw.WriteValues(f.Data); err != nil {
				return nil, err
			}
			return man, sw.Close()
		}, store.BuildResidual(f.Data, f.Prec, residual.DefaultBackend))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "variance-quadtree" {
			sizes := map[int]bool{}
			for _, c := range m.Chunks {
				sizes[c.Values] = true
			}
			if len(sizes) < 2 {
				t.Fatalf("quadtree produced uniform chunks %v — geometry not variable", sizes)
			}
		}
		total := m.TotalValues
		slices := [][2]int64{
			{0, total}, {0, 1}, {total - 1, 1}, {total / 3, total / 2},
			{1, 2*total/3 - 1}, {total/2 - 7, 15},
		}
		for _, sl := range slices {
			got, err := s.ReadRangeExact(m, sl[0], sl[1])
			if err != nil {
				t.Fatalf("%s: slice [%d,%d): %v", name, sl[0], sl[0]+sl[1], err)
			}
			for i := range got {
				want := storageExact(f.Data[sl[0]+int64(i)], f.Prec)
				if got[i] != want {
					t.Fatalf("%s: slice [%d,%d) value %d: got %v, want %v",
						name, sl[0], sl[0]+sl[1], i, got[i], want)
				}
			}
		}
	}
}

func TestExactReadWithoutResidual(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "lossy", testField(t, 1024), 256, 1e-3)
	if _, err := s.ReadRangeExact(m, 0, 256); !errors.Is(err, store.ErrNoResidual) {
		t.Fatalf("exact read of lossy dataset: %v, want ErrNoResidual", err)
	}
	if _, err := s.ResidualPath("lossy"); !errors.Is(err, store.ErrNoResidual) {
		t.Fatalf("ResidualPath: %v, want ErrNoResidual", err)
	}
}

// TestReplaceDropsResidual pins the demote-side store contract: a Replace
// without a residual builder commits a manifest without a residual record
// and removes the file from the published directory.
func TestReplaceDropsResidual(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 2048)
	m := putPromoted(t, s, "drop", f, 512, 1e-3, "ans")
	if s.ResidualBytes() == 0 {
		t.Fatal("gauge did not pick up the residual")
	}
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	nm := *m
	nm.Generation++
	nm.Chunks = nil
	got, err := s.Replace("drop", m, func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(512))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		return &nm, sw.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Residual != nil {
		t.Fatal("Replace without a builder kept the residual record")
	}
	if s.ResidualBytes() != 0 {
		t.Fatalf("gauge %d after residual drop, want 0", s.ResidualBytes())
	}
	if _, err := s.ReadRangeExact(got, 0, 64); !errors.Is(err, store.ErrNoResidual) {
		t.Fatalf("exact read after drop: %v, want ErrNoResidual", err)
	}
	if vals, err := s.ReadRangeWith(got, 0, got.TotalValues); err != nil || len(vals) != int(got.TotalValues) {
		t.Fatalf("lossy read after drop: %d values, %v", len(vals), err)
	}
}

// TestResidualCompressionWin gates the acceptance criterion: on a smooth
// generated field the residual file lands under 60% of the raw original.
func TestResidualCompressionWin(t *testing.T) {
	f, err := rqm.GenerateField("miranda", 7, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putPromoted(t, s, "win", f, 4096, 1e-6, residual.DefaultBackend)
	raw := f.OriginalBytes()
	if m.Residual.Bytes >= raw*60/100 {
		t.Fatalf("residual %d bytes, want < 60%% of raw %d", m.Residual.Bytes, raw)
	}
	t.Logf("residual %d bytes = %.1f%% of raw %d", m.Residual.Bytes,
		100*float64(m.Residual.Bytes)/float64(raw), raw)
}

// TestCorruptionMatrixResidual extends the corruption matrix to the
// residual file: a byte flip at every 101-byte stride must surface as typed
// ErrCorruptDataset — deep verify catches every flip via the commit-time
// residual hash — and exact reads must never serve wrong bytes untyped.
func TestCorruptionMatrixResidual(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 2048)
	m := putPromoted(t, s, "rmatrix", f, 256, 1e-4, "ans")
	path, err := s.ResidualPath("rmatrix")
	if err != nil {
		t.Fatal(err)
	}
	size := m.Residual.Bytes
	if size < 404 {
		t.Fatalf("residual only %d bytes — matrix needs several strides", size)
	}
	want := make([]float64, len(f.Data))
	for i, v := range f.Data {
		want[i] = storageExact(v, f.Prec)
	}

	for off := int64(0); off < size; off += 101 {
		if err := faultfs.CorruptFile(path, off); err != nil {
			t.Fatal(err)
		}
		// Lossy reads must be untouched by residual damage.
		if _, rerr := s.ReadRangeWith(m, 0, m.TotalValues); rerr != nil {
			t.Fatalf("offset %d: lossy read broke on a residual flip: %v", off, rerr)
		}
		// Exact reads either fail typed or still produce exact bytes (a flip
		// can land in slack an aligned read never touches — but never in
		// served data, which CRCs cover).
		got, rerr := s.ReadRangeExact(m, 0, m.TotalValues)
		if rerr != nil && !typedCorruption(rerr) {
			t.Fatalf("offset %d: untyped exact read error: %v", off, rerr)
		}
		if rerr == nil {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("offset %d: exact read served wrong bytes", off)
				}
			}
		}
		if verr := s.VerifyDataset("rmatrix", false); verr != nil && !typedCorruption(verr) {
			t.Fatalf("offset %d: untyped shallow verify error: %v", off, verr)
		}
		derr := s.VerifyDataset("rmatrix", true)
		if derr == nil {
			t.Fatalf("offset %d: deep verify missed a residual flip", off)
		}
		if !typedCorruption(derr) {
			t.Fatalf("offset %d: untyped deep verify error: %v", off, derr)
		}
		if err := faultfs.CorruptFile(path, off); err != nil {
			t.Fatal(err)
		}
		if verr := s.VerifyDataset("rmatrix", true); verr != nil {
			t.Fatalf("offset %d: dataset not restored after un-flip: %v", off, verr)
		}
	}
}

// TestScrubQuarantinesCorruptResidual pins that a residual flip found by a
// deep scrub moves the WHOLE dataset directory — container, manifest, and
// residual — to quarantine, after which the name answers ErrNotFound.
func TestScrubQuarantinesCorruptResidual(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putPromoted(t, s, "quarry", testField(t, 2048), 256, 1e-4, "ans")
	path, err := s.ResidualPath("quarry")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptFile(path, m.Residual.Bytes/2); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(store.ScrubOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetsQuarantined != 1 || len(rep.Issues) != 1 || !rep.Issues[0].Quarantined {
		t.Fatalf("scrub report: %+v", rep)
	}
	if !strings.Contains(rep.Issues[0].Reason, "residual") {
		t.Fatalf("issue reason does not name the residual: %q", rep.Issues[0].Reason)
	}
	if _, err := s.Manifest("quarry"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("quarantined dataset still answers: %v", err)
	}
	if s.ResidualBytes() != 0 {
		t.Fatalf("gauge %d after quarantine, want 0", s.ResidualBytes())
	}
}

// TestCopyResidualTransfer pins the replica-transfer path: a byte-identical
// copy commits, a damaged copy is refused typed at staging.
func TestCopyResidualTransfer(t *testing.T) {
	src, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 2048)
	m := putPromoted(t, src, "xfer", f, 256, 1e-4, "ans")
	rpath, err := src.ResidualPath("xfer")
	if err != nil {
		t.Fatal(err)
	}
	rbytes, err := os.ReadFile(rpath)
	if err != nil {
		t.Fatal(err)
	}
	cpath, err := src.ContainerPath("xfer")
	if err != nil {
		t.Fatal(err)
	}
	cbytes, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}

	copyBuild := func(w io.Writer) (*store.Manifest, error) {
		nm := *m
		_, err := w.Write(cbytes)
		return &nm, err
	}
	dst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.PutWithResidual("xfer", copyBuild,
		store.CopyResidual(bytes.NewReader(rbytes), m.Residual))
	if err != nil {
		t.Fatal(err)
	}
	if got.Residual == nil || got.Residual.Hash != m.Residual.Hash {
		t.Fatalf("transferred residual record %+v, want hash %s", got.Residual, m.Residual.Hash)
	}
	if err := dst.VerifyDataset("xfer", true); err != nil {
		t.Fatalf("deep verify of transferred dataset: %v", err)
	}

	// A flipped byte in transit must refuse the commit, typed.
	bad := append([]byte(nil), rbytes...)
	bad[len(bad)/2] ^= 0x10
	dst2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst2.PutWithResidual("xfer", copyBuild,
		store.CopyResidual(bytes.NewReader(bad), m.Residual)); !errors.Is(err, store.ErrCorruptDataset) {
		t.Fatalf("damaged transfer: %v, want ErrCorruptDataset", err)
	}
	if _, err := dst2.Manifest("xfer"); !errors.Is(err, store.ErrNotFound) {
		t.Fatal("damaged transfer left a committed dataset behind")
	}
}

// TestResidualFloat32 pins the 32-bit storage path end to end: residuals
// computed and applied at float32 width reproduce the float32 payload.
func TestResidualFloat32(t *testing.T) {
	vals := make([]float64, 2048)
	for i := range vals {
		x := float64(i)
		vals[i] = math.Sin(x/29) + 0.5*math.Cos(x/13)
	}
	f, err := rqm.FieldFromData("f32", rqm.Float32, vals, 2048)
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putPromoted(t, s, "f32", f, 256, 1e-3, "ans")
	got, err := s.ReadRangeExact(m, 0, m.TotalValues)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(float32(vals[i])) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], float64(float32(vals[i])))
		}
	}
}
