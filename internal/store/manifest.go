package store

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"rqm/internal/codec"
	"rqm/internal/core"
	"rqm/internal/grid"
	"rqm/internal/partition"
	"rqm/internal/predictor"
	"rqm/internal/residual"
)

// ManifestVersion is the current manifest schema version. Readers accept
// exactly this version; anything else is ErrManifestVersion, so a future
// schema change cannot be silently misread as today's.
const ManifestVersion = 1

// Typed manifest errors. ParseManifest failures wrap exactly one of these —
// never a bare json error and never a panic — so callers (and the service's
// error envelope) can match them.
var (
	// ErrManifestCorrupt marks a manifest that is not valid JSON or whose
	// fields are internally inconsistent.
	ErrManifestCorrupt = errors.New("store: corrupt manifest")
	// ErrManifestVersion marks a manifest with an unsupported schema version.
	ErrManifestVersion = errors.New("store: unsupported manifest version")
)

// ChunkRecord locates one chunk of the dataset's container, copied from the
// container's trailer index at commit time so range reads can plan chunk
// access without touching the container at all.
type ChunkRecord struct {
	// Offset is the chunk record's byte offset from the container start.
	Offset int64 `json:"offset"`
	// Values is the chunk's decoded sample count.
	Values int `json:"values"`
	// RecordBytes is the full record length including tag and payload.
	RecordBytes int `json:"record_bytes"`
	// AbsBound is the absolute error bound the chunk was compressed with.
	AbsBound float64 `json:"abs_bound"`
}

// ProfileRecord is the dataset's cached ratio-quality profile: the sampled
// prediction errors plus the metadata core.NewProfileFromSamples needs to
// rebuild a live Profile. Persisting it is the point of the store — every
// admission, retrieval, and recompaction decision is answered from this
// record in O(sample), with no re-sampling and no decompression.
type ProfileRecord struct {
	// Predictor names the profiled prediction scheme.
	Predictor string `json:"predictor"`
	// Dims is the profiled field shape.
	Dims []int `json:"dims"`
	// N is the profiled field's sample count.
	N int `json:"n"`
	// OrigBits is the original storage width per value (32 or 64).
	OrigBits int `json:"orig_bits"`
	// Range is the field's value range (max − min).
	Range float64 `json:"range"`
	// DataVar is the field's population variance (for the SSIM model).
	DataVar float64 `json:"data_var"`
	// AuxBitsPerValue is the predictor side-channel overhead in bits/value.
	AuxBitsPerValue float64 `json:"aux_bits_per_value,omitempty"`
	// SampleRate and Seed reproduce the sampling pass configuration.
	SampleRate float64 `json:"sample_rate"`
	Seed       uint64  `json:"seed,omitempty"`
	// Radius is the quantizer radius the model assumes.
	Radius int32 `json:"radius,omitempty"`
	// Errors is the sampled prediction-error vector, base64-encoded
	// little-endian float64s (compact and exact, unlike a JSON number array).
	Errors string `json:"errors_b64"`
}

// ResidualRecord describes a dataset's optional lossless residual layer:
// the entropy-coded XOR of the original against the lossy reconstruction,
// stored beside the container (see internal/residual). Its presence is what
// makes a dataset "promoted": exact reads are served by decoding the base
// and applying the residual, and recompaction can re-encode from the true
// original instead of the accumulated-error reconstruction.
type ResidualRecord struct {
	// Backend names the entropy backend the residual was coded with.
	Backend string `json:"backend"`
	// Bytes is the residual file's on-disk size.
	Bytes int64 `json:"bytes"`
	// Hash is the SHA-256 of the residual file's bytes, stamped by the
	// store at commit time — the deep-scrub reference for the residual.
	Hash string `json:"hash"`
	// OriginalHash is the SHA-256 of the exact original payload bytes
	// (little-endian floats at the storage width, no header). Every exact
	// read is verified against it before serving.
	OriginalHash string `json:"original_hash"`
}

// Manifest is one dataset's on-disk metadata: identity, shape, the applied
// compression setting, the container's chunk index, and the cached
// ratio-quality profile. It is written via temp-file + atomic rename after
// the container, so a parseable manifest implies a fully written dataset.
type Manifest struct {
	// Version is the manifest schema version (ManifestVersion).
	Version int `json:"version"`
	// Name is the dataset name (store-unique, path-safe).
	Name string `json:"name"`
	// CreatedAt is when the dataset was first admitted.
	CreatedAt time.Time `json:"created_at"`
	// Generation counts container rewrites (0 = original put; each
	// recompaction increments it).
	Generation int `json:"generation"`
	// PrecBits is the original storage width per value (32 or 64).
	PrecBits int `json:"prec_bits"`
	// Dims is the logical field shape.
	Dims []int `json:"dims"`
	// Codec names the backend that produced the container.
	Codec string `json:"codec"`
	// Predictor names the prediction scheme, when the codec has one.
	Predictor string `json:"predictor,omitempty"`
	// Mode and ErrorBound record the applied error-bound setting
	// ("abs"/"rel" semantics; recompacted datasets are always "abs").
	Mode       string  `json:"mode"`
	ErrorBound float64 `json:"error_bound"`
	// Lossless names the optional lossless stage ("" or "none" = off), so a
	// recompaction rewrites through the same pipeline configuration.
	Lossless string `json:"lossless,omitempty"`
	// ChunkValues is the container's nominal chunk size in values (copied
	// from the stream header at commit), so a recompaction rewrites with the
	// same read granularity the dataset was tuned for.
	ChunkValues int `json:"chunk_values,omitempty"`
	// Partitioner names the chunk-planning strategy the container was last
	// written with ("" = fixed slabs). Partitioners are deterministic, so a
	// recompaction resolves this name and reproduces the same variance-guided
	// geometry decisions over the rewritten data.
	Partitioner string `json:"partitioner,omitempty"`
	// ContentHash is the SHA-256 of the original (uncompressed) field bytes
	// — the content address the profile cache keys generalize into an index.
	// It identifies what the dataset IS; it cannot be recomputed from the
	// lossy container, so it is an identity, not an integrity check.
	ContentHash string `json:"content_hash"`
	// ContainerHash is the SHA-256 of the container file's bytes, stamped by
	// the store at commit time. It is the deep-scrub reference: a flipped
	// byte anywhere in the stored container — stream header, chunk payloads,
	// trailer, footer — changes it, including the spans per-chunk CRCs do
	// not cover. Empty on manifests committed before the field existed.
	ContainerHash string `json:"container_hash,omitempty"`
	// TotalValues is the dataset's sample count.
	TotalValues int64 `json:"total_values"`
	// OriginalBytes and ContainerBytes give the achieved Ratio.
	OriginalBytes  int64   `json:"original_bytes"`
	ContainerBytes int64   `json:"container_bytes"`
	Ratio          float64 `json:"ratio"`
	// EstPSNR is the model-estimated PSNR at the applied bound (0 when the
	// model has no finite estimate, e.g. constant fields).
	EstPSNR float64 `json:"est_psnr,omitempty"`
	// Chunks is the container's trailer index, copied at commit time.
	Chunks []ChunkRecord `json:"chunks"`
	// Profile is the cached ratio-quality profile (nil only for datasets
	// stored without one).
	Profile *ProfileRecord `json:"profile,omitempty"`
	// Residual describes the optional lossless residual layer (nil for
	// lossy-only datasets).
	Residual *ResidualRecord `json:"residual,omitempty"`
}

// isSHA256Hex reports whether s is a lowercase hex SHA-256 digest — the
// only form the store and service ever write, so anything else in a hash
// field is damage, not style.
func isSHA256Hex(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// corruptf builds an ErrManifestCorrupt with detail.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrManifestCorrupt}, args...)...)
}

// ParseManifest decodes and validates a manifest. Malformed input —
// truncated JSON, wrong version, inconsistent fields, undecodable profile —
// yields a typed error (ErrManifestCorrupt / ErrManifestVersion), never a
// panic.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, corruptf("%v", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrManifestVersion, m.Version, ManifestVersion)
	}
	if err := ValidateName(m.Name); err != nil {
		return nil, corruptf("name: %v", err)
	}
	if m.PrecBits != 32 && m.PrecBits != 64 {
		return nil, corruptf("precision %d bits, want 32 or 64", m.PrecBits)
	}
	if len(m.Dims) == 0 || len(m.Dims) > 4 {
		return nil, corruptf("rank %d outside 1..4", len(m.Dims))
	}
	shape := int64(1)
	for _, d := range m.Dims {
		if d <= 0 {
			return nil, corruptf("dimension %d", d)
		}
		shape *= int64(d)
	}
	if m.TotalValues <= 0 || m.TotalValues != shape {
		return nil, corruptf("total_values %d, shape %v implies %d", m.TotalValues, m.Dims, shape)
	}
	if m.Generation < 0 {
		return nil, corruptf("generation %d", m.Generation)
	}
	if m.ChunkValues < 0 {
		return nil, corruptf("chunk size %d values", m.ChunkValues)
	}
	if !partition.Known(m.Partitioner) {
		return nil, corruptf("unknown partitioner %q", m.Partitioner)
	}
	if m.ContainerBytes <= 0 || m.OriginalBytes <= 0 {
		return nil, corruptf("container %d / original %d bytes", m.ContainerBytes, m.OriginalBytes)
	}
	if m.ContentHash != "" && !isSHA256Hex(m.ContentHash) {
		return nil, corruptf("content_hash %q is not a SHA-256 hex digest", m.ContentHash)
	}
	if m.ContainerHash != "" && !isSHA256Hex(m.ContainerHash) {
		return nil, corruptf("container_hash %q is not a SHA-256 hex digest", m.ContainerHash)
	}
	if len(m.Chunks) == 0 {
		return nil, corruptf("no chunk index")
	}
	var indexed int64
	for i, c := range m.Chunks {
		if c.Values <= 0 || c.RecordBytes <= 0 || c.Offset < 0 || c.Offset >= m.ContainerBytes {
			return nil, corruptf("chunk %d: offset %d, %d values, %d bytes", i, c.Offset, c.Values, c.RecordBytes)
		}
		indexed += int64(c.Values)
	}
	if indexed != m.TotalValues {
		return nil, corruptf("chunk index covers %d values, dataset holds %d", indexed, m.TotalValues)
	}
	if m.Residual != nil {
		if !residual.Known(m.Residual.Backend) {
			return nil, corruptf("unknown residual backend %q", m.Residual.Backend)
		}
		if m.Residual.Bytes <= 0 {
			return nil, corruptf("residual of %d bytes", m.Residual.Bytes)
		}
		if !isSHA256Hex(m.Residual.Hash) {
			return nil, corruptf("residual hash %q is not a SHA-256 hex digest", m.Residual.Hash)
		}
		if !isSHA256Hex(m.Residual.OriginalHash) {
			return nil, corruptf("residual original_hash %q is not a SHA-256 hex digest", m.Residual.OriginalHash)
		}
	}
	if m.Profile != nil {
		if _, err := m.Profile.decodeErrors(); err != nil {
			return nil, err
		}
		if _, err := predictor.ParseKind(m.Profile.Predictor); err != nil {
			return nil, corruptf("profile predictor: %v", err)
		}
		if m.Profile.N <= 0 {
			return nil, corruptf("profile n %d", m.Profile.N)
		}
		if math.IsNaN(m.Profile.Range) || m.Profile.Range < 0 {
			return nil, corruptf("profile range %v", m.Profile.Range)
		}
	}
	return &m, nil
}

// decodeErrors unpacks the base64 little-endian float64 error vector.
func (pr *ProfileRecord) decodeErrors() ([]float64, error) {
	raw, err := base64.StdEncoding.DecodeString(pr.Errors)
	if err != nil {
		return nil, corruptf("profile errors: %v", err)
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		return nil, corruptf("profile errors: %d bytes is not a float64 vector", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		if math.IsNaN(out[i]) {
			return nil, corruptf("profile errors: NaN sample %d", i)
		}
	}
	return out, nil
}

// NewProfileRecord serializes a live profile for the manifest.
func NewProfileRecord(p *core.Profile) *ProfileRecord {
	raw := make([]byte, 8*len(p.Errors))
	for i, e := range p.Errors {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(e))
	}
	o := p.Options()
	return &ProfileRecord{
		Predictor:       p.Kind.String(),
		Dims:            append([]int(nil), p.Dims...),
		N:               p.N,
		OrigBits:        p.OrigBits,
		Range:           p.Range,
		DataVar:         p.DataVar,
		AuxBitsPerValue: p.AuxBitsPerValue,
		SampleRate:      o.SampleRate,
		Seed:            o.Seed,
		Radius:          o.Radius,
		Errors:          base64.StdEncoding.EncodeToString(raw),
	}
}

// RQProfile rebuilds the live ratio-quality profile from the cached record —
// the store's O(sample) answer machine, reconstructed without touching the
// container or the original data.
func (m *Manifest) RQProfile() (*core.Profile, error) {
	if m.Profile == nil {
		return nil, corruptf("dataset %q has no cached profile", m.Name)
	}
	kind, err := predictor.ParseKind(m.Profile.Predictor)
	if err != nil {
		return nil, corruptf("profile predictor: %v", err)
	}
	errs, err := m.Profile.decodeErrors()
	if err != nil {
		return nil, err
	}
	p, err := core.NewProfileFromSamples(kind, errs, m.Profile.Dims,
		m.Profile.N, m.Profile.OrigBits, m.Profile.Range, m.Profile.DataVar,
		core.Options{
			SampleRate: m.Profile.SampleRate,
			Seed:       m.Profile.Seed,
			Radius:     m.Profile.Radius,
		})
	if err != nil {
		return nil, corruptf("profile: %v", err)
	}
	p.AuxBitsPerValue = m.Profile.AuxBitsPerValue
	return p, nil
}

// Prec returns the manifest's precision as a grid constant.
func (m *Manifest) Prec() grid.Precision { return grid.Precision(m.PrecBits) }

// IndexEntries converts the manifest's chunk records to container index
// entries for codec.ReadChunkAt.
func (m *Manifest) IndexEntries() []codec.IndexEntry {
	out := make([]codec.IndexEntry, len(m.Chunks))
	for i, c := range m.Chunks {
		out[i] = codec.IndexEntry{
			Offset:      c.Offset,
			Values:      c.Values,
			RecordBytes: c.RecordBytes,
			AbsBound:    c.AbsBound,
		}
	}
	return out
}

// chunkRecords converts container index entries to manifest chunk records.
func chunkRecords(entries []codec.IndexEntry) []ChunkRecord {
	out := make([]ChunkRecord, len(entries))
	for i, e := range entries {
		out[i] = ChunkRecord{
			Offset:      e.Offset,
			Values:      e.Values,
			RecordBytes: e.RecordBytes,
			AbsBound:    e.AbsBound,
		}
	}
	return out
}
