package store_test

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rqm/internal/faultfs"
	"rqm/internal/store"
)

// payloadOffset returns a byte offset guaranteed to land inside the first
// chunk's CRC-covered payload (past the 22-byte record head), so a flip
// there is detectable by the shallow pass.
func payloadOffset(t *testing.T, m *store.Manifest) int64 {
	t.Helper()
	c := m.Chunks[0]
	if c.RecordBytes < 32 {
		t.Fatalf("chunk 0 is only %d bytes — too small to target its payload", c.RecordBytes)
	}
	return c.Offset + 22 + 5
}

func TestPutStampsContainerHash(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "hash-stamp", testField(t, 2048), 512, 1e-4)
	if len(m.ContainerHash) != 64 {
		t.Fatalf("ContainerHash = %q, want a SHA-256 hex digest", m.ContainerHash)
	}
	p, err := s.ContainerPath("hash-stamp")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != m.ContainerHash {
		t.Fatalf("container hashes to %s, manifest stamped %s", got, m.ContainerHash)
	}
	// The stamp survives the commit: a reloaded manifest carries it.
	m2, err := s.Manifest("hash-stamp")
	if err != nil || m2.ContainerHash != m.ContainerHash {
		t.Fatalf("reloaded ContainerHash = %q, %v", m2.ContainerHash, err)
	}
}

func TestScrubCleanArchive(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "clean-a", testField(t, 2048), 512, 1e-4)
	putField(t, s, "clean-b", testField(t, 1024), 256, 1e-3)

	for _, deep := range []bool{false, true} {
		rep, err := s.Scrub(store.ScrubOptions{Deep: deep})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Deep != deep || rep.Datasets != 2 || len(rep.Issues) != 0 {
			t.Fatalf("deep=%v report %+v", deep, rep)
		}
		if rep.ChunksVerified != 8 { // 4 + 4 chunks
			t.Fatalf("deep=%v verified %d chunks, want 8", deep, rep.ChunksVerified)
		}
		if rep.BytesScanned == 0 || rep.BytesVerified != rep.BytesScanned {
			t.Fatalf("deep=%v bytes scanned %d / verified %d", deep, rep.BytesScanned, rep.BytesVerified)
		}
		if rep.DatasetsQuarantined != 0 || rep.BytesQuarantined != 0 {
			t.Fatalf("deep=%v clean pass quarantined %d datasets", deep, rep.DatasetsQuarantined)
		}
		if rep.FinishedAt.Before(rep.StartedAt) {
			t.Fatalf("deep=%v report timestamps inverted", deep)
		}
	}
	runs, chunks, quarantined, qbytes := s.ScrubStats()
	if runs != 2 || chunks != 16 || quarantined != 0 || qbytes != 0 {
		t.Fatalf("ScrubStats = %d runs, %d chunks, %d/%d quarantined", runs, chunks, quarantined, qbytes)
	}
}

func TestScrubProgress(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pg-a", "pg-b", "pg-c"} {
		putField(t, s, name, testField(t, 512), 256, 1e-3)
	}
	var calls int
	var lastScanned, lastTotal int
	_, err = s.Scrub(store.ScrubOptions{Progress: func(scanned, total int, name string) {
		calls++
		lastScanned, lastTotal = scanned, total
		if name == "" {
			t.Error("progress callback with empty name")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || lastScanned != 3 || lastTotal != 3 {
		t.Fatalf("progress: %d calls, last %d/%d", calls, lastScanned, lastTotal)
	}
}

func TestScrubQuarantinesFlippedContainer(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "rot", testField(t, 2048), 512, 1e-4)
	putField(t, s, "fine", testField(t, 1024), 256, 1e-3)
	preTotal, preCount := s.Bytes()

	p, err := s.ContainerPath("rot")
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptFile(p, payloadOffset(t, m)); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(store.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Name != "rot" || !rep.Issues[0].Quarantined {
		t.Fatalf("report issues %+v", rep.Issues)
	}
	if !strings.Contains(rep.Issues[0].Reason, "corrupt") {
		t.Fatalf("issue reason %q does not name corruption", rep.Issues[0].Reason)
	}
	if rep.DatasetsQuarantined != 1 || rep.BytesQuarantined == 0 {
		t.Fatalf("report %+v", rep)
	}
	// The healthy dataset was verified, not collateral damage.
	if rep.Datasets != 2 || rep.BytesVerified == 0 {
		t.Fatalf("report %+v", rep)
	}

	// The corrupt dataset is invisible to every reader now.
	if _, err := s.Manifest("rot"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("quarantined manifest read: %v", err)
	}
	if _, err := s.ContainerPath("rot"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("quarantined container path: %v", err)
	}
	list, err := s.List()
	if err != nil || len(list) != 1 || list[0].Name != "fine" {
		t.Fatalf("list after quarantine: %v, %v", list, err)
	}
	// Accounting: the archive shrank by the quarantined footprint.
	postTotal, postCount := s.Bytes()
	if postCount != preCount-1 || postTotal >= preTotal {
		t.Fatalf("bytes %d→%d, datasets %d→%d", preTotal, postTotal, preCount, postCount)
	}

	// The evidence is preserved under quarantine/ — both files, verbatim.
	qdir := filepath.Join(s.Dir(), store.QuarantineDir, "rot")
	for _, f := range []string{store.ContainerFile, store.ManifestFile} {
		if _, err := os.Stat(filepath.Join(qdir, f)); err != nil {
			t.Fatalf("quarantine missing %s: %v", f, err)
		}
	}
	_, _, quarantined, qbytes := s.ScrubStats()
	if quarantined != 1 || qbytes != rep.BytesQuarantined {
		t.Fatalf("ScrubStats quarantined %d/%d", quarantined, qbytes)
	}

	// The name is free again: a fresh put under it works and scrubs clean.
	putField(t, s, "rot", testField(t, 1024), 256, 1e-3)
	rep2, err := s.Scrub(store.ScrubOptions{Deep: true})
	if err != nil || len(rep2.Issues) != 0 {
		t.Fatalf("post-requarantine scrub: %+v, %v", rep2, err)
	}
}

func TestScrubQuarantineKeepsEarlierEvidence(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := putField(t, s, "repeat", testField(t, 1024), 256, 1e-3)
		p, err := s.ContainerPath("repeat")
		if err != nil {
			t.Fatal(err)
		}
		if err := faultfs.CorruptFile(p, payloadOffset(t, m)); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Scrub(store.ScrubOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DatasetsQuarantined != 1 {
			t.Fatalf("round %d: %+v", i, rep)
		}
	}
	// Both quarantined generations exist: the second got a ".1" suffix.
	for _, dir := range []string{"repeat", "repeat.1"} {
		if _, err := os.Stat(filepath.Join(s.Dir(), store.QuarantineDir, dir)); err != nil {
			t.Fatalf("quarantine %s: %v", dir, err)
		}
	}
}

func TestScrubQuarantinesTornManifest(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "torn", testField(t, 1024), 256, 1e-3)
	mpath := filepath.Join(s.Dir(), "datasets", "torn", store.ManifestFile)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(store.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetsQuarantined != 1 || len(rep.Issues) != 1 || !rep.Issues[0].Quarantined {
		t.Fatalf("report %+v", rep)
	}
	if _, err := s.Manifest("torn"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("torn dataset still visible: %v", err)
	}
}

func TestScrubQuarantinesOrphanContainer(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "orphan", testField(t, 1024), 256, 1e-3)
	if err := os.Remove(filepath.Join(s.Dir(), "datasets", "orphan", store.ManifestFile)); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(store.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DatasetsQuarantined != 1 {
		t.Fatalf("orphan container not quarantined: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), store.QuarantineDir, "orphan", store.ContainerFile)); err != nil {
		t.Fatalf("orphan evidence: %v", err)
	}
}

func TestScrubIOErrorIsNotQuarantined(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "flaky", testField(t, 1024), 256, 1e-3)

	ffs := faultfs.New()
	fault := faultfs.NewFault()
	fault.Err = errors.New("transient I/O failure")
	ffs.Set("flaky/"+store.ContainerFile, fault)
	s.SetReadFS(ffs)

	rep, err := s.Scrub(store.ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 1 || rep.Issues[0].Quarantined || rep.DatasetsQuarantined != 0 {
		t.Fatalf("I/O failure handling: %+v", rep)
	}

	// The fault clears; the dataset was never moved and verifies clean.
	s.SetReadFS(nil)
	if err := s.VerifyDataset("flaky", true); err != nil {
		t.Fatalf("dataset damaged by a transient error: %v", err)
	}
}

func TestVerifyDatasetAndReadsAreTypedUnderInjectedCorruption(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "inj", testField(t, 2048), 512, 1e-4)

	ffs := faultfs.New()
	s.SetReadFS(ffs)

	// Flip a payload byte in the served view: chunk CRC catches it.
	fault := faultfs.NewFault()
	fault.FlipOffset = payloadOffset(t, m)
	ffs.Set("inj/"+store.ContainerFile, fault)
	if err := s.VerifyDataset("inj", false); !errors.Is(err, store.ErrCorruptDataset) {
		t.Fatalf("verify under flip: %v", err)
	}
	if _, err := s.ReadRange("inj", 0, 2048); !errors.Is(err, store.ErrCorruptDataset) {
		t.Fatalf("read under flip: %v", err)
	}

	// Truncate the served view: framing fails typed.
	short := faultfs.NewFault()
	short.TruncateTo = m.ContainerBytes / 2
	ffs.Set("inj/"+store.ContainerFile, short)
	if err := s.VerifyDataset("inj", false); !errors.Is(err, store.ErrCorruptDataset) {
		t.Fatalf("verify under truncation: %v", err)
	}

	// Tear the manifest's served view: the manifest's own typed error.
	ffs.Clear("inj/" + store.ContainerFile)
	torn := faultfs.NewFault()
	torn.Tear = true
	ffs.Set("inj/"+store.ManifestFile, torn)
	if _, err := s.Manifest("inj"); !errors.Is(err, store.ErrManifestCorrupt) {
		t.Fatalf("manifest under tear: %v", err)
	}

	// All faults off: the store is intact — the injections were views.
	ffs.Reset()
	if err := s.VerifyDataset("inj", true); err != nil {
		t.Fatalf("verify after reset: %v", err)
	}
}

func TestDeepScrubCatchesContainerHashMismatch(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "deep", testField(t, 1024), 256, 1e-3)

	// Rewrite the manifest with a different (still well-formed) container
	// hash: every shallow check still passes — only the deep whole-file
	// hash comparison can see the disagreement.
	mpath := filepath.Join(s.Dir(), "datasets", "deep", store.ManifestFile)
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	other := strings.Repeat("0123456789abcdef", 4)
	if other == m.ContainerHash {
		t.Fatal("colliding stand-in hash")
	}
	edited := strings.Replace(string(raw), m.ContainerHash, other, 1)
	if edited == string(raw) {
		t.Fatal("manifest does not embed the container hash")
	}
	if err := os.WriteFile(mpath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := s.VerifyDataset("deep", false); err != nil {
		t.Fatalf("shallow verify should pass: %v", err)
	}
	err = s.VerifyDataset("deep", true)
	if !errors.Is(err, store.ErrCorruptDataset) {
		t.Fatalf("deep verify: %v", err)
	}
	rep, err := s.Scrub(store.ScrubOptions{Deep: true})
	if err != nil || rep.DatasetsQuarantined != 1 {
		t.Fatalf("deep scrub: %+v, %v", rep, err)
	}
}
