// Package store is the persistent, RQ-indexed dataset archive: a
// content-addressed, crash-safe on-disk collection of chunked RQCE
// containers, each paired with a versioned JSON manifest carrying the
// container's chunk index and the dataset's cached ratio-quality profile.
//
// The profile is what makes this more than a blob store. The paper's model
// answers "what ratio/quality would bound e give" from one cheap sampling
// pass; persisting that pass next to the artifact means admission,
// retrieval, and background recompaction decisions are all O(sample) reads
// of the manifest — no re-sampling, no decompression, no compression runs.
// The chunk index (copied from the container trailer) makes element-range
// reads decompress only the chunks they cover.
//
// On-disk layout under the store root:
//
//	datasets/<name>/data.rqz       chunked container (envelope v2)
//	datasets/<name>/manifest.json  manifest, written last
//	tmp/                           staging area, wiped at Open
//	quarantine/<name>              corrupt datasets parked by Scrub
//
// Write protocol (Put): stage a complete dataset directory under tmp/ —
// container first, fsynced, then the manifest via its own temp file +
// rename — and finally publish the whole directory into datasets/ with an
// atomic rename. A replacement first parks the committed dataset at a
// dot-prefixed sibling (".old.<name>", invisible to readers) inside
// datasets/; Open recovery restores a parked dataset whose replacement
// never landed and removes one whose replacement did. A crash at any step
// therefore leaves the previous dataset or the new one — never half of
// either and never neither: tmp/ leftovers are invisible to readers and
// wiped on reopen, and a dataset directory without a parseable manifest is
// skipped.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rqm/internal/codec"
)

// Typed store errors.
var (
	// ErrNotFound marks a dataset name with no committed dataset.
	ErrNotFound = errors.New("store: dataset not found")
	// ErrBadName marks a dataset name outside the safe charset.
	ErrBadName = errors.New("store: invalid dataset name")
	// ErrBadRange marks a slice request outside the dataset's extent.
	ErrBadRange = errors.New("store: range outside dataset")
	// ErrConflict marks a Replace whose base version is no longer the
	// committed one (the dataset was re-put or deleted mid-flight).
	ErrConflict = errors.New("store: dataset changed concurrently")
	// ErrCorruptDataset marks stored bytes that fail integrity verification:
	// a chunk CRC trip on a read, a container that contradicts its manifest,
	// a hash that no longer matches. Distinct from ErrManifestCorrupt (the
	// manifest itself is unreadable) and from availability errors, so a
	// replicated reader can tell "this copy is rotten — fail over and repair
	// it" apart from "this shard is down".
	ErrCorruptDataset = errors.New("store: corrupt dataset")
	// ErrNoResidual marks an exact-read or residual access against a dataset
	// that has no residual layer (never promoted, or demoted since). The
	// lossy tier still serves; this is a tier miss, not corruption.
	ErrNoResidual = errors.New("store: dataset has no residual layer")
)

// ContainerFile, ManifestFile, and ResidualFile are the fixed file names
// inside a dataset directory (the residual file exists only on promoted
// datasets).
const (
	ContainerFile = "data.rqz"
	ManifestFile  = "manifest.json"
	ResidualFile  = "residual.rqr"
)

// oldPrefix marks a displaced dataset directory awaiting replacement
// cleanup. The leading dot keeps it outside ValidateName, so readers can
// never address it; Open's recovery pass resolves any leftovers.
const oldPrefix = ".old."

// ReadFS abstracts the store's read-side file access so tests can interpose
// fault injection (see internal/faultfs). Only the read path is hooked: the
// write/publish protocol's crash safety is about rename ordering and fsync,
// which faultfs exercises by corrupting committed files instead.
type ReadFS interface {
	Open(path string) (io.ReadSeekCloser, error)
	ReadFile(path string) ([]byte, error)
}

// osFS is the real filesystem — the default ReadFS.
type osFS struct{}

func (osFS) Open(path string) (io.ReadSeekCloser, error) { return os.Open(path) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }

// SetReadFS replaces the store's read-side filesystem hook; nil restores the
// real one. Fault-injection tests swap in an interposer before issuing
// reads; swapping is not synchronized against in-flight operations.
func (s *Store) SetReadFS(fs ReadFS) {
	if fs == nil {
		fs = osFS{}
	}
	s.fs = fs
}

// ValidateName checks a dataset name: 1..128 bytes of [A-Za-z0-9._-], not
// starting with a dot — path-safe on every platform, no traversal, no
// hidden files.
func ValidateName(name string) error {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	return nil
}

// Store is one on-disk dataset archive. Reads are lock-free (they see only
// atomically published state); writes serialize on an internal mutex, so a
// Store is safe for concurrent use by one process. Two processes must not
// share a store root.
type Store struct {
	root string
	mu   sync.Mutex // serializes Put/Delete/quarantine publishing
	fs   ReadFS     // read-side file access (SetReadFS interposes faults)

	writes     atomic.Int64 // container (re)writes committed
	chunkReads atomic.Int64 // chunks decompressed by ReadRange

	// bytesStored / datasetCount / residualBytes are gauges maintained
	// incrementally on Put/Delete (initialized by one scan at Open), so a
	// metrics scrape never re-reads manifests.
	bytesStored   atomic.Int64
	datasetCount  atomic.Int64
	residualBytes atomic.Int64

	// Integrity counters (see scrub.go): scrub passes completed, chunk CRC
	// verifications performed, datasets and bytes moved to quarantine/.
	scrubRuns        atomic.Int64
	chunksVerified   atomic.Int64
	quarantined      atomic.Int64
	quarantinedBytes atomic.Int64
}

// Open initializes the archive at root, creating the layout if needed,
// wiping the staging area (tmp/ holds only the debris of interrupted puts,
// which the protocol guarantees were never visible), and resolving any
// parked ".old.<name>" directory a crashed replacement left behind: if the
// replacement landed the parked copy is removed, otherwise it is restored —
// a durably committed dataset is never lost to a crash.
func Open(root string) (*Store, error) {
	if root == "" {
		return nil, errors.New("store: empty root directory")
	}
	for _, d := range []string{root, filepath.Join(root, "datasets"), filepath.Join(root, QuarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	tmp := filepath.Join(root, "tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return nil, fmt.Errorf("store: cleaning staging area: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: root, fs: osFS{}}
	if err := s.recoverParked(); err != nil {
		return nil, err
	}
	// Initialize the size gauges with the only full scan the store performs.
	ms, err := s.List()
	if err != nil {
		return nil, err
	}
	var total, resid int64
	for _, m := range ms {
		total += s.datasetSize(m.Name)
		resid += s.residualSize(m.Name)
	}
	s.bytesStored.Store(total)
	s.datasetCount.Store(int64(len(ms)))
	s.residualBytes.Store(resid)
	return s, nil
}

// recoverParked resolves datasets a crashed replacement displaced.
func (s *Store) recoverParked() error {
	base := filepath.Join(s.root, "datasets")
	entries, err := os.ReadDir(base)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), oldPrefix) {
			continue
		}
		name := strings.TrimPrefix(e.Name(), oldPrefix)
		parked := filepath.Join(base, e.Name())
		if _, err := os.Stat(filepath.Join(base, name, ManifestFile)); err == nil {
			// The replacement landed; the park was just pending cleanup.
			if err := os.RemoveAll(parked); err != nil {
				return fmt.Errorf("store: clearing parked dataset: %w", err)
			}
			continue
		}
		// The replacement never published: restore the committed original.
		if err := os.Rename(parked, filepath.Join(base, name)); err != nil {
			return fmt.Errorf("store: restoring parked dataset %q: %w", name, err)
		}
	}
	return nil
}

// datasetSize is the on-disk footprint of one committed dataset.
func (s *Store) datasetSize(name string) int64 {
	var total int64
	for _, f := range []string{ContainerFile, ManifestFile, ResidualFile} {
		if fi, err := os.Stat(filepath.Join(s.datasetDir(name), f)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// residualSize is the on-disk size of one dataset's residual file (0 when
// the dataset has none).
func (s *Store) residualSize(name string) int64 {
	if fi, err := os.Stat(filepath.Join(s.datasetDir(name), ResidualFile)); err == nil {
		return fi.Size()
	}
	return 0
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.root }

// Writes reports the number of container writes committed since Open —
// the counter the recompaction contract is asserted against: a recompact
// whose target the model says is already met must not move it.
func (s *Store) Writes() int64 { return s.writes.Load() }

// ChunkReads reports the number of chunks ReadRange has decompressed since
// Open (the "only the covered chunks" contract is asserted against it).
func (s *Store) ChunkReads() int64 { return s.chunkReads.Load() }

func (s *Store) datasetDir(name string) string {
	return filepath.Join(s.root, "datasets", name)
}

// ContainerPath returns the path of a committed dataset's container.
func (s *Store) ContainerPath(name string) (string, error) {
	if err := ValidateName(name); err != nil {
		return "", err
	}
	p := filepath.Join(s.datasetDir(name), ContainerFile)
	if _, err := os.Stat(filepath.Join(s.datasetDir(name), ManifestFile)); err != nil {
		return "", fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return p, nil
}

// Manifest loads and validates one dataset's manifest.
func (s *Store) Manifest(name string) (*Manifest, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	data, err := s.fs.ReadFile(filepath.Join(s.datasetDir(name), ManifestFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	return ParseManifest(data)
}

// List returns the manifests of every committed dataset, sorted by name.
// Directories without a parseable manifest — interrupted puts from a
// version that staged in place, manual damage — are skipped, not fatal:
// an archive is readable to the extent it is intact.
func (s *Store) List() ([]*Manifest, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "datasets"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*Manifest
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := s.Manifest(e.Name())
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Bytes reports the committed datasets' total container+manifest+residual
// footprint and count. The gauges are maintained incrementally on
// Put/Delete, so this is an O(1) read — safe for a metrics scraper to poll.
func (s *Store) Bytes() (total int64, datasets int) {
	return s.bytesStored.Load(), int(s.datasetCount.Load())
}

// ResidualBytes reports the total on-disk size of residual files across
// committed datasets — the cost of the archive's promoted tier.
func (s *Store) ResidualBytes() int64 { return s.residualBytes.Load() }

// ResidualPath returns the path of a committed dataset's residual file, or
// ErrNoResidual when the dataset exists but has no residual layer.
func (s *Store) ResidualPath(name string) (string, error) {
	m, err := s.Manifest(name)
	if err != nil {
		return "", err
	}
	if m.Residual == nil {
		return "", fmt.Errorf("%w: %q", ErrNoResidual, name)
	}
	return filepath.Join(s.datasetDir(name), ResidualFile), nil
}

// ResidualBuilder stages a dataset's residual file. It runs after the
// container is fully staged — containerPath is the staged container, so the
// builder can decode the exact reconstruction the residual must invert —
// and writes the residual file bytes to w. The returned record's Backend
// and OriginalHash are the builder's to declare; Bytes and Hash are filled
// by the store from the staged bytes (and verified against the record when
// the builder pre-declares them, e.g. a replica transfer).
type ResidualBuilder func(containerPath string, w io.Writer) (*ResidualRecord, error)

// Put admits (or replaces) one dataset. build receives the staged container
// file to write; the manifest it returns is completed by the store — chunk
// index copied from the container trailer, container size filled in — and
// committed after the container, so a visible manifest always describes a
// fully written container. The whole dataset publishes with one directory
// rename; a crash mid-put leaves the previous state.
func (s *Store) Put(name string, build func(w io.Writer) (*Manifest, error)) (*Manifest, error) {
	return s.put(name, nil, build, nil)
}

// PutWithResidual is Put plus a residual layer: rb stages the residual file
// after the container, and the committed manifest carries the residual
// record. The same single-rename publish covers both files, so a crash can
// never leave a container without its residual or vice versa.
func (s *Store) PutWithResidual(name string, build func(w io.Writer) (*Manifest, error), rb ResidualBuilder) (*Manifest, error) {
	return s.put(name, nil, build, rb)
}

// Replace is Put conditioned on the committed version: the commit aborts
// with ErrConflict if the dataset's (CreatedAt, Generation) no longer
// matches base — it was re-put or deleted while the caller was rebuilding
// it. Recompaction rides this compare-and-swap so a long rewrite can never
// silently clobber newer data or resurrect a deleted dataset. A Replace
// without a residual builder drops any residual the dataset had (the
// manifest's Residual section is cleared): a rewritten container invalidates
// the old residual by construction.
func (s *Store) Replace(name string, base *Manifest, build func(w io.Writer) (*Manifest, error)) (*Manifest, error) {
	if base == nil {
		return nil, errors.New("store: Replace needs the base manifest")
	}
	return s.put(name, base, build, nil)
}

// ReplaceWithResidual is Replace plus a residual layer (see PutWithResidual).
func (s *Store) ReplaceWithResidual(name string, base *Manifest, build func(w io.Writer) (*Manifest, error), rb ResidualBuilder) (*Manifest, error) {
	if base == nil {
		return nil, errors.New("store: Replace needs the base manifest")
	}
	return s.put(name, base, build, rb)
}

func (s *Store) put(name string, base *Manifest, build func(w io.Writer) (*Manifest, error), rb ResidualBuilder) (*Manifest, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	// Fast-fail an already-stale Replace before paying for the build; the
	// authoritative check repeats under the publish lock.
	if base != nil {
		if err := s.checkBase(name, base); err != nil {
			return nil, err
		}
	}
	stage, err := os.MkdirTemp(filepath.Join(s.root, "tmp"), name+".")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after a successful publish

	m, err := s.stageDataset(stage, name, build, rb)
	if err != nil {
		return nil, err
	}

	// Publish: one atomic rename into datasets/. Replacing an existing
	// dataset parks the old directory at a dot-prefixed sibling first
	// (rename over a non-empty directory fails) — inside datasets/, NOT
	// tmp/, so a crash between the two renames leaves the committed copy
	// where Open's recovery pass restores it instead of wiping it. The gap
	// is the only window in which the dataset is briefly absent — never
	// half-written, never lost.
	s.mu.Lock()
	defer s.mu.Unlock()
	if base != nil {
		if err := s.checkBase(name, base); err != nil {
			return nil, err
		}
	}
	dst := s.datasetDir(name)
	old := filepath.Join(s.root, "datasets", oldPrefix+name)
	var oldSize, oldRes int64
	replaced := false
	if _, err := os.Stat(dst); err == nil {
		replaced = true
		oldSize = s.datasetSize(name)
		oldRes = s.residualSize(name)
		_ = os.RemoveAll(old) // a same-name leftover would block the rename
		if err := os.Rename(dst, old); err != nil {
			return nil, fmt.Errorf("store: displacing old dataset: %w", err)
		}
	}
	if err := os.Rename(stage, dst); err != nil {
		if replaced {
			_ = os.Rename(old, dst) // best-effort restore
		}
		return nil, fmt.Errorf("store: publishing dataset: %w", err)
	}
	if replaced {
		_ = os.RemoveAll(old)
	}
	syncDir(filepath.Dir(dst))
	s.writes.Add(1)
	s.bytesStored.Add(s.datasetSize(name) - oldSize)
	s.residualBytes.Add(s.residualSize(name) - oldRes)
	if !replaced {
		s.datasetCount.Add(1)
	}
	return m, nil
}

// checkBase verifies the committed dataset is still the version base
// describes ((CreatedAt, Generation) identity).
func (s *Store) checkBase(name string, base *Manifest) error {
	cur, err := s.Manifest(name)
	if err != nil || !cur.CreatedAt.Equal(base.CreatedAt) || cur.Generation != base.Generation {
		return fmt.Errorf("%w: %q", ErrConflict, name)
	}
	return nil
}

// stageDataset writes container, optional residual, and manifest into the
// staging directory (in that order — the manifest is the commit record).
func (s *Store) stageDataset(stage, name string, build func(w io.Writer) (*Manifest, error), rb ResidualBuilder) (*Manifest, error) {
	cpath := filepath.Join(stage, ContainerFile)
	cf, err := os.Create(cpath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Tee the container bytes through SHA-256 as they are staged: the digest
	// becomes the manifest's ContainerHash (the deep-scrub reference), and
	// when the incoming manifest already carries one — a replica transfer —
	// the staged bytes must reproduce it, an end-to-end check that a copy
	// arrived intact.
	hasher := sha256.New()
	m, err := build(io.MultiWriter(cf, hasher))
	if err == nil {
		err = cf.Sync()
	}
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, errors.New("store: build returned no manifest")
	}

	// Complete the manifest from the container itself: the trailer index is
	// the ground truth for the chunk records, and loading it doubles as an
	// integrity check of what was just written.
	rf, err := os.Open(cpath)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	idx, err := codec.LoadIndex(rf)
	size, _ := rf.Seek(0, io.SeekEnd)
	rf.Close()
	if err != nil {
		return nil, fmt.Errorf("store: staged container: %w", err)
	}
	m.Version = ManifestVersion
	m.Name = name
	m.Chunks = chunkRecords(idx.Entries)
	m.TotalValues = idx.TotalValues
	m.ChunkValues = idx.Header.ChunkValues
	m.ContainerBytes = size
	sum := hex.EncodeToString(hasher.Sum(nil))
	if m.ContainerHash != "" && m.ContainerHash != sum {
		return nil, fmt.Errorf("%w: %q: staged container hashes to %s, manifest declares %s",
			ErrCorruptDataset, name, sum, m.ContainerHash)
	}
	m.ContainerHash = sum
	if m.OriginalBytes > 0 {
		m.Ratio = float64(m.OriginalBytes) / float64(size)
	}

	// Stage the residual layer, when the caller supplies one. Without a
	// builder the manifest must not claim a residual either: a build that
	// copies an old manifest forward cannot commit a record whose file was
	// never staged.
	m.Residual = nil
	if rb != nil {
		rec, err := s.stageResidual(stage, name, cpath, m, rb)
		if err != nil {
			return nil, err
		}
		m.Residual = rec
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encoding manifest: %w", err)
	}
	if _, err := ParseManifest(data); err != nil {
		return nil, fmt.Errorf("store: refusing to commit: %w", err)
	}
	if err := writeFileSync(filepath.Join(stage, ManifestFile), data); err != nil {
		return nil, err
	}
	syncDir(stage)
	return m, nil
}

// Delete removes a dataset. The manifest goes first — the commit record, so
// a crash mid-delete leaves an invisible directory, not a half dataset —
// then the directory.
func (s *Store) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.datasetDir(name)
	if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	size := s.datasetSize(name)
	res := s.residualSize(name)
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.bytesStored.Add(-size)
	s.residualBytes.Add(-res)
	s.datasetCount.Add(-1)
	return nil
}

// ReadRange decompresses elements [off, off+n) of a dataset — and only the
// chunks covering them.
func (s *Store) ReadRange(name string, off, n int64) ([]float64, error) {
	m, err := s.Manifest(name)
	if err != nil {
		return nil, err
	}
	return s.ReadRangeWith(m, off, n)
}

// ReadRangeWith is ReadRange against an already-loaded manifest, sparing
// the hot random-access path a second manifest parse. The manifest's chunk
// index maps the element range to chunk records; each needed chunk is read
// at its offset, CRC-verified, and decoded; everything else stays untouched
// on disk.
func (s *Store) ReadRangeWith(m *Manifest, off, n int64) ([]float64, error) {
	name := m.Name
	// The subtraction form cannot overflow (off < TotalValues is implied).
	if off < 0 || n <= 0 || off > m.TotalValues || n > m.TotalValues-off {
		return nil, fmt.Errorf("%w: [%d, %d) of %d values", ErrBadRange, off, off+n, m.TotalValues)
	}
	f, err := s.fs.Open(filepath.Join(s.datasetDir(name), ContainerFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	out := make([]float64, 0, n)
	var start int64 // first element of the current chunk
	for _, e := range m.IndexEntries() {
		end := start + int64(e.Values)
		if end <= off {
			start = end
			continue
		}
		if start >= off+n {
			break
		}
		c, err := codec.ReadChunkAt(f, e)
		if err != nil {
			return nil, corruptRead(name, err)
		}
		vals, err := codec.DecodeChunk(c)
		if err != nil {
			return nil, corruptRead(name, err)
		}
		s.chunkReads.Add(1)
		lo, hi := int64(0), int64(len(vals))
		if off > start {
			lo = off - start
		}
		if off+n < end {
			hi = off + n - start
		}
		out = append(out, vals[lo:hi]...)
		start = end
	}
	return out, nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory (best effort; not all platforms support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
