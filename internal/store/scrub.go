// Integrity scrubbing: the background pass that turns "a flipped byte is
// discovered lazily at read time" into "a flipped byte is found, typed, and
// quarantined before a reader trips on it".
//
// Verification has two depths. The shallow pass re-frames the container
// against its own trailer index, cross-checks that index against the
// manifest's chunk records (two independently stored copies of the chunk
// geometry must agree exactly), and CRC-verifies every chunk payload. The
// deep pass additionally decodes every chunk through the codec registry and
// re-hashes the whole container file against the manifest's ContainerHash —
// the only check that covers spans no CRC does (the stream header, the
// chunk record heads themselves). ContentHash is deliberately NOT part of
// either pass: it fingerprints the original uncompressed field, which a
// lossy container cannot reproduce — it is an identity, not a checksum.
//
// A dataset that fails verification is moved wholesale to quarantine/ under
// the publish lock (same single-rename discipline as Put), where it stays
// addressable for forensics but invisible to every reader — a quarantined
// name answers ErrNotFound, which is exactly what lets a replicated tier
// re-replicate a good copy over the slot.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rqm/internal/codec"
	"rqm/internal/residual"
)

// QuarantineDir is the directory under the store root where scrub parks
// corrupt datasets.
const QuarantineDir = "quarantine"

// ErrScrubCorrupt marks a dataset a scrub pass found corrupt and moved to
// quarantine/. It wraps ErrCorruptDataset, so errors.Is against either
// sentinel matches.
var ErrScrubCorrupt = fmt.Errorf("%w: failed scrub verification", ErrCorruptDataset)

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// Deep additionally decodes every chunk and re-hashes the container
	// against the manifest's ContainerHash. Roughly the cost of reading
	// every dataset end to end, vs the shallow pass's CRC-only sweep.
	Deep bool
	// Progress, when set, is called after each dataset is scrubbed.
	Progress func(scanned, total int, name string)
}

// ScrubIssue records one dataset a scrub pass could not verify.
type ScrubIssue struct {
	Name   string `json:"name"`
	Reason string `json:"reason"`
	// Bytes is the dataset's on-disk footprint when the issue was found.
	Bytes int64 `json:"bytes"`
	// Quarantined reports whether the dataset was moved to quarantine/.
	// False when the failure was an I/O error rather than proven corruption,
	// or when the dataset was replaced concurrently (the new version is not
	// the one that failed).
	Quarantined bool `json:"quarantined"`
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Deep                bool         `json:"deep"`
	Datasets            int          `json:"datasets"`
	ChunksVerified      int64        `json:"chunks_verified"`
	BytesScanned        int64        `json:"bytes_scanned"`
	BytesVerified       int64        `json:"bytes_verified"`
	DatasetsQuarantined int          `json:"datasets_quarantined"`
	BytesQuarantined    int64        `json:"bytes_quarantined"`
	Issues              []ScrubIssue `json:"issues,omitempty"`
	StartedAt           time.Time    `json:"started_at"`
	FinishedAt          time.Time    `json:"finished_at"`
}

// ScrubStats reports the store's cumulative integrity counters since Open:
// scrub passes completed, chunk CRC verifications performed, and datasets /
// bytes moved to quarantine.
func (s *Store) ScrubStats() (runs, chunksVerified, datasetsQuarantined, bytesQuarantined int64) {
	return s.scrubRuns.Load(), s.chunksVerified.Load(),
		s.quarantined.Load(), s.quarantinedBytes.Load()
}

// Scrub walks every dataset directory — including ones List would skip for
// an unparseable manifest, which is precisely a corruption scrub must catch
// — verifies each (see VerifyDataset), and quarantines the ones that fail.
// The walk itself never fails a pass: per-dataset problems are reported as
// Issues, and an error return means the archive could not be enumerated at
// all.
func (s *Store) Scrub(opts ScrubOptions) (*ScrubReport, error) {
	rep := &ScrubReport{Deep: opts.Deep, StartedAt: time.Now().UTC()}
	entries, err := os.ReadDir(filepath.Join(s.root, "datasets"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		// Dot-prefixed entries are the replacement protocol's parked copies,
		// not committed datasets.
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			names = append(names, e.Name())
		}
	}
	for i, name := range names {
		s.scrubDataset(name, opts.Deep, rep)
		if opts.Progress != nil {
			opts.Progress(i+1, len(names), name)
		}
	}
	rep.FinishedAt = time.Now().UTC()
	s.scrubRuns.Add(1)
	return rep, nil
}

// VerifyDataset re-verifies one committed dataset without touching
// quarantine: manifest parse + schema check, trailer index vs manifest
// chunk records, per-chunk CRC; deep adds a full decode of every chunk and
// the container SHA-256 against ContainerHash. Failures wrap
// ErrCorruptDataset (or the manifest's own typed errors).
func (s *Store) VerifyDataset(name string, deep bool) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	_, _, err := s.verifyDataset(name, deep)
	return err
}

// scrubDataset verifies one dataset and folds the outcome into the report,
// quarantining on proven corruption.
func (s *Store) scrubDataset(name string, deep bool, rep *ScrubReport) {
	size := s.datasetSize(name)
	rep.Datasets++
	rep.BytesScanned += size
	raw, chunks, err := s.verifyDataset(name, deep)
	rep.ChunksVerified += chunks
	switch {
	case err == nil:
		rep.BytesVerified += size
	case errors.Is(err, ErrNotFound):
		// Deleted while the pass was running — not this archive's problem.
		rep.Datasets--
		rep.BytesScanned -= size
	case errors.Is(err, ErrCorruptDataset),
		errors.Is(err, ErrManifestCorrupt),
		errors.Is(err, ErrManifestVersion):
		issue := ScrubIssue{
			Name:   name,
			Reason: fmt.Errorf("%w: %v", ErrScrubCorrupt, err).Error(),
			Bytes:  size,
		}
		if qerr := s.quarantine(name, raw); qerr == nil {
			issue.Quarantined = true
			rep.DatasetsQuarantined++
			rep.BytesQuarantined += size
		}
		rep.Issues = append(rep.Issues, issue)
	default:
		// An I/O failure is not proven corruption: report it, leave the
		// dataset in place for the next pass.
		rep.Issues = append(rep.Issues, ScrubIssue{Name: name, Reason: err.Error(), Bytes: size})
	}
}

// verifyDataset checks one dataset and returns the raw manifest bytes it
// verified against (the identity quarantine later re-checks) plus the number
// of chunks that passed CRC before any failure.
func (s *Store) verifyDataset(name string, deep bool) (raw []byte, chunks int64, err error) {
	dir := s.datasetDir(name)
	raw, err = s.fs.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// The manifest is the commit record. A directory holding a
			// container without one is interrupted-delete debris — corrupt as
			// a dataset, since nothing can ever read it again.
			if _, cerr := os.Stat(filepath.Join(dir, ContainerFile)); cerr == nil {
				return nil, 0, fmt.Errorf("%w: %q: container present but manifest missing", ErrCorruptDataset, name)
			}
			return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	m, err := ParseManifest(raw)
	if err != nil {
		return raw, 0, err // typed ErrManifestCorrupt / ErrManifestVersion
	}
	if m.Name != name {
		return raw, 0, fmt.Errorf("%w: %q: manifest names %q", ErrCorruptDataset, name, m.Name)
	}
	chunks, err = s.verifyContainer(name, m, deep)
	if err != nil {
		return raw, chunks, err
	}
	return raw, chunks, s.verifyResidual(name, m, deep)
}

// verifyResidual runs the residual-side checks for one dataset: presence
// and size against the manifest record, structural index parse, block
// alignment with the container's chunk geometry, and per-block CRCs; deep
// additionally decodes every block and re-hashes the file against the
// manifest's residual hash. Datasets without a residual layer pass
// trivially.
func (s *Store) verifyResidual(name string, m *Manifest, deep bool) error {
	if m.Residual == nil {
		return nil
	}
	f, err := s.fs.Open(filepath.Join(s.datasetDir(name), ResidualFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %q: manifest records a residual but the file is missing",
				ErrCorruptDataset, name)
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if size != m.Residual.Bytes {
		return fmt.Errorf("%w: %q: residual is %d bytes on disk, manifest records %d",
			ErrCorruptDataset, name, size, m.Residual.Bytes)
	}
	idx, err := residual.LoadIndex(f)
	if err != nil {
		return corruptResidual(name, err)
	}
	if err := checkResidualIndex(name, m, m.Residual, idx); err != nil {
		return err
	}
	for _, e := range idx.Blocks {
		if deep {
			_, err = residual.ReadBlock(f, idx.Header, e)
		} else {
			err = residual.VerifyBlock(f, e)
		}
		if err != nil {
			return corruptResidual(name, err)
		}
		s.chunksVerified.Add(1)
	}
	if deep {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if sum := hex.EncodeToString(h.Sum(nil)); sum != m.Residual.Hash {
			return fmt.Errorf("%w: %q: residual hashes to %s, manifest records %s",
				ErrCorruptDataset, name, sum, m.Residual.Hash)
		}
	}
	return nil
}

// verifyContainer runs the container-side checks for one dataset.
func (s *Store) verifyContainer(name string, m *Manifest, deep bool) (int64, error) {
	f, err := s.fs.Open(filepath.Join(s.datasetDir(name), ContainerFile))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, fmt.Errorf("%w: %q: manifest committed but container missing", ErrCorruptDataset, name)
		}
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if size != m.ContainerBytes {
		return 0, fmt.Errorf("%w: %q: container is %d bytes on disk, manifest records %d",
			ErrCorruptDataset, name, size, m.ContainerBytes)
	}

	// Structural pass: LoadIndex re-parses the stream header, footer, and
	// trailer (trailer payload is itself CRC-protected), then the trailer
	// index must agree with the manifest's chunk records entry for entry.
	idx, err := codec.LoadIndex(f)
	if err != nil {
		return 0, corruptRead(name, err)
	}
	if len(idx.Entries) != len(m.Chunks) {
		return 0, fmt.Errorf("%w: %q: trailer indexes %d chunks, manifest records %d",
			ErrCorruptDataset, name, len(idx.Entries), len(m.Chunks))
	}
	if idx.TotalValues != m.TotalValues {
		return 0, fmt.Errorf("%w: %q: trailer totals %d values, manifest records %d",
			ErrCorruptDataset, name, idx.TotalValues, m.TotalValues)
	}
	for i, e := range idx.Entries {
		c := m.Chunks[i]
		if e.Offset != c.Offset || int(e.Values) != c.Values ||
			int(e.RecordBytes) != c.RecordBytes || e.AbsBound != c.AbsBound {
			return 0, fmt.Errorf("%w: %q: chunk %d: trailer index and manifest record disagree",
				ErrCorruptDataset, name, i)
		}
	}

	// Payload pass: ReadChunkAt re-frames each record and verifies the CRC
	// its head declares (codec.VerifyChunk); deep additionally decodes.
	var verified int64
	for i, e := range idx.Entries {
		c, err := codec.ReadChunkAt(f, e)
		if err != nil {
			return verified, corruptRead(name, err)
		}
		if deep {
			vals, err := codec.DecodeChunk(c)
			if err != nil {
				return verified, corruptRead(name, err)
			}
			if len(vals) != int(e.Values) {
				return verified, fmt.Errorf("%w: %q: chunk %d decodes to %d values, index declares %d",
					ErrCorruptDataset, name, i, len(vals), e.Values)
			}
		}
		verified++
		s.chunksVerified.Add(1)
	}

	// Whole-file pass (deep only): the SHA-256 stamped at commit covers the
	// bytes no chunk CRC does. Manifests from before the field existed have
	// no reference hash and skip this check.
	if deep && m.ContainerHash != "" {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return verified, fmt.Errorf("store: %w", err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return verified, fmt.Errorf("store: %w", err)
		}
		if sum := hex.EncodeToString(h.Sum(nil)); sum != m.ContainerHash {
			return verified, fmt.Errorf("%w: %q: container hashes to %s, manifest records %s",
				ErrCorruptDataset, name, sum, m.ContainerHash)
		}
	}
	return verified, nil
}

// quarantine moves a corrupt dataset directory out of datasets/ into
// quarantine/ with one rename, under the publish lock. rawManifest is the
// manifest the failed verification read; if the committed manifest no
// longer matches it byte for byte, the dataset was replaced mid-scrub and
// the (new, unverified-but-not-failed) version is left alone with
// ErrConflict. A name already in quarantine gets a ".N" suffix rather than
// overwriting earlier evidence.
func (s *Store) quarantine(name string, rawManifest []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.datasetDir(name)
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	cur, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	switch {
	case rawManifest == nil && err == nil,
		rawManifest != nil && (err != nil || !bytes.Equal(cur, rawManifest)):
		return fmt.Errorf("%w: %q", ErrConflict, name)
	}
	size := s.datasetSize(name)
	res := s.residualSize(name)
	hadManifest := err == nil
	dst := filepath.Join(s.root, QuarantineDir, name)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.root, QuarantineDir, name+"."+strconv.Itoa(i))
	}
	if err := os.Rename(dir, dst); err != nil {
		return fmt.Errorf("store: quarantining %q: %w", name, err)
	}
	syncDir(filepath.Join(s.root, "datasets"))
	syncDir(filepath.Join(s.root, QuarantineDir))
	s.bytesStored.Add(-size)
	s.residualBytes.Add(-res)
	if hadManifest {
		s.datasetCount.Add(-1)
	}
	s.quarantined.Add(1)
	s.quarantinedBytes.Add(size)
	return nil
}

// corruptRead wraps a chunk read/decode failure in ErrCorruptDataset when
// the cause is a container-integrity failure — CRC mismatch, torn record,
// bad framing — so the serving layer can answer with a typed
// corrupt_dataset error and a replicated reader can fail over and repair
// this copy. Non-integrity failures keep their plain store wrapping.
func corruptRead(name string, err error) error {
	for _, sentinel := range []error{
		codec.ErrChecksum, codec.ErrCorrupt, codec.ErrTruncated,
		codec.ErrBadMagic, codec.ErrUnsupportedVersion, codec.ErrUnknownCodec,
	} {
		if errors.Is(err, sentinel) {
			return fmt.Errorf("%w: %q: %w", ErrCorruptDataset, name, err)
		}
	}
	return fmt.Errorf("store: dataset %q: %w", name, err)
}
