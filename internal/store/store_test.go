package store_test

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rqm"
	"rqm/internal/partition"
	"rqm/internal/store"
)

// testField synthesizes a deterministic smooth field of n values.
func testField(t testing.TB, n int) *rqm.Field {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		x := float64(i)
		vals[i] = math.Sin(x/37) + 0.25*math.Cos(x/11) + 1e-4*x
	}
	f, err := rqm.FieldFromData("test", rqm.Float64, vals, n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// putField admits f with a fixed ABS bound, chunkValues per chunk, and a
// cached profile — the same flow the service's put handler runs.
func putField(t testing.TB, s *store.Store, name string, f *rqm.Field, chunkValues int, absEB float64) *store.Manifest {
	t.Helper()
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(absEB))
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Profile(f)
	if err != nil {
		t.Fatal(err)
	}
	man := &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     "lorenzo",
		Mode:          "abs",
		ErrorBound:    absEB,
		ContentHash:   strings.Repeat("ab", 32),
		OriginalBytes: f.OriginalBytes(),
		Profile:       store.NewProfileRecord(p),
	}
	committed, err := s.Put(name, func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(chunkValues))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		return man, sw.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return committed
}

func TestValidateName(t *testing.T) {
	good := []string{"a", "nyx-temperature", "A.B_c-9", strings.Repeat("x", 128)}
	for _, n := range good {
		if err := store.ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{"", ".hidden", "a/b", "..", "a b", "ü", strings.Repeat("x", 129), "a\x00b"}
	for _, n := range bad {
		if err := store.ValidateName(n); !errors.Is(err, store.ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", n, err)
		}
	}
}

func TestPutGetListDelete(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 4096)
	m := putField(t, s, "alpha", f, 512, 1e-4)
	if m.TotalValues != 4096 || len(m.Chunks) != 8 {
		t.Fatalf("manifest: %d values in %d chunks, want 4096 in 8", m.TotalValues, len(m.Chunks))
	}
	if m.Ratio <= 1 {
		t.Fatalf("ratio %v, want > 1", m.Ratio)
	}
	if s.Writes() != 1 {
		t.Fatalf("writes %d, want 1", s.Writes())
	}

	// Reload from disk through a fresh handle: everything must persist.
	s2, err := store.Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Manifest("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got.ContentHash != m.ContentHash || got.TotalValues != m.TotalValues {
		t.Fatalf("reloaded manifest differs: %+v vs %+v", got, m)
	}
	p, err := got.RQProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.N != f.Len() {
		t.Fatalf("profile N %d, want %d", p.N, f.Len())
	}
	// The cached profile must answer like the live one.
	if est := p.EstimateAt(1e-4); !(est.Ratio > 1) {
		t.Fatalf("cached profile estimates ratio %v", est.Ratio)
	}

	// The stored container round-trips within the bound.
	blob, err := os.ReadFile(filepath.Join(s.Dir(), "datasets", "alpha", store.ContainerFile))
	if err != nil {
		t.Fatal(err)
	}
	back, err := rqm.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.ABS, 1e-4*(1+1e-12)); err != nil {
		t.Fatal(err)
	}

	ms, err := s2.List()
	if err != nil || len(ms) != 1 || ms[0].Name != "alpha" {
		t.Fatalf("List = %v, %v", ms, err)
	}
	total, n := s2.Bytes()
	if n != 1 || total <= 0 {
		t.Fatalf("Bytes = %d, %d", total, n)
	}

	if err := s2.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Manifest("alpha"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("after delete: %v, want ErrNotFound", err)
	}
	if err := s2.Delete("alpha"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

func TestPutReplaces(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "d", testField(t, 1024), 256, 1e-3)
	m2 := putField(t, s, "d", testField(t, 2048), 256, 1e-3)
	if m2.TotalValues != 2048 {
		t.Fatalf("replacement holds %d values, want 2048", m2.TotalValues)
	}
	got, err := s.Manifest("d")
	if err != nil || got.TotalValues != 2048 {
		t.Fatalf("Manifest after replace: %+v, %v", got, err)
	}
	if ms, _ := s.List(); len(ms) != 1 {
		t.Fatalf("List after replace has %d datasets", len(ms))
	}
}

// TestCrashSafetyHalfWrittenPut simulates a crash at every step of the put
// protocol and proves the half-written dataset is invisible after reopen —
// the acceptance contract of the temp-file + atomic-rename design.
func TestCrashSafetyHalfWrittenPut(t *testing.T) {
	root := t.TempDir()
	s, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 1024)
	putField(t, s, "survivor", f, 256, 1e-3)

	// Crash step 1: a staged dataset left in tmp/ (container written,
	// manifest written, publish rename never happened).
	stage := filepath.Join(root, "tmp", "victim.12345")
	if err := os.MkdirAll(stage, 0o755); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(root, "datasets", "survivor", store.ContainerFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, store.ContainerFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	manBytes, err := os.ReadFile(filepath.Join(root, "datasets", "survivor", store.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, store.ManifestFile), manBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// Crash step 2: a dataset directory with a container but no manifest
	// (the pre-atomic-protocol failure mode this design rules out; a reader
	// must treat it as absent).
	orphan := filepath.Join(root, "datasets", "orphan")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, store.ContainerFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// Crash step 3: a dataset directory with a truncated manifest.
	mangled := filepath.Join(root, "datasets", "mangled")
	if err := os.MkdirAll(mangled, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mangled, store.ContainerFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mangled, store.ManifestFile), manBytes[:len(manBytes)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: only the fully committed dataset is visible, and the staging
	// debris is gone.
	s2, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Name != "survivor" {
		names := make([]string, len(ms))
		for i, m := range ms {
			names[i] = m.Name
		}
		t.Fatalf("after reopen List = %v, want [survivor]", names)
	}
	if _, err := s2.Manifest("orphan"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("orphan visible: %v", err)
	}
	if _, err := s2.Manifest("mangled"); !errors.Is(err, store.ErrManifestCorrupt) {
		t.Fatalf("mangled manifest error %v, want ErrManifestCorrupt", err)
	}
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Fatalf("staging debris survived reopen: %v", err)
	}
	// The survivor still round-trips.
	vals, err := s2.ReadRange("survivor", 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1024 {
		t.Fatalf("ReadRange returned %d values", len(vals))
	}
}

// TestReadRangeDecompressesOnlyCoveredChunks pins the random-access
// contract: a slice read touches exactly the chunks overlapping the range
// and returns bytes identical to slicing a full decompress.
func TestReadRangeDecompressesOnlyCoveredChunks(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const total, chunk = 4096, 256 // 16 chunks
	f := testField(t, total)
	putField(t, s, "sliced", f, chunk, 1e-4)

	blob, err := os.ReadFile(filepath.Join(s.Dir(), "datasets", "sliced", store.ContainerFile))
	if err != nil {
		t.Fatal(err)
	}
	full, err := rqm.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		off, n     int64
		wantChunks int64
	}{
		{0, chunk, 1},               // exactly the first chunk
		{chunk / 2, chunk, 2},       // straddles one boundary
		{3*chunk + 7, 2 * chunk, 3}, // interior, misaligned
		{total - 5, 5, 1},           // tail
		{0, total, 16},              // everything
	}
	for _, tc := range cases {
		before := s.ChunkReads()
		vals, err := s.ReadRange("sliced", tc.off, tc.n)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", tc.off, tc.n, err)
		}
		if got := s.ChunkReads() - before; got != tc.wantChunks {
			t.Errorf("ReadRange(%d, %d) decompressed %d chunks, want %d", tc.off, tc.n, got, tc.wantChunks)
		}
		if int64(len(vals)) != tc.n {
			t.Fatalf("ReadRange(%d, %d) returned %d values", tc.off, tc.n, len(vals))
		}
		for i, v := range vals {
			if v != full.Data[tc.off+int64(i)] {
				t.Fatalf("ReadRange(%d, %d)[%d] = %v, full decompress has %v",
					tc.off, tc.n, i, v, full.Data[tc.off+int64(i)])
			}
		}
	}

	// Out-of-range requests are typed errors.
	for _, tc := range [][2]int64{{-1, 10}, {0, 0}, {0, total + 1}, {total, 1}} {
		if _, err := s.ReadRange("sliced", tc[0], tc[1]); !errors.Is(err, store.ErrBadRange) {
			t.Errorf("ReadRange(%d, %d) = %v, want ErrBadRange", tc[0], tc[1], err)
		}
	}
}

// TestCrashRecoveryRestoresParkedReplacement pins the replacement window:
// a crash between "park the old dataset" and "publish the new one" must
// restore the committed original at reopen, and a crash after publish (park
// cleanup pending) must keep the new one.
func TestCrashRecoveryRestoresParkedReplacement(t *testing.T) {
	root := t.TempDir()
	s, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 1024)
	m := putField(t, s, "repl", f, 256, 1e-3)

	// Crash between the two renames: the committed dataset sits parked at
	// .old.repl and datasets/repl does not exist.
	base := filepath.Join(root, "datasets")
	if err := os.Rename(filepath.Join(base, "repl"), filepath.Join(base, ".old.repl")); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Manifest("repl")
	if err != nil {
		t.Fatalf("parked dataset not restored: %v", err)
	}
	if got.ContentHash != m.ContentHash {
		t.Fatalf("restored manifest differs")
	}
	if _, err := os.Stat(filepath.Join(base, ".old.repl")); !os.IsNotExist(err) {
		t.Fatal("parked copy left behind after restore")
	}
	if _, n := s2.Bytes(); n != 1 {
		t.Fatalf("gauge counts %d datasets after restore, want 1", n)
	}

	// Crash after publish with the park cleanup pending: the new dataset
	// wins and the parked copy is cleared.
	m2 := putField(t, s2, "repl", testField(t, 2048), 256, 1e-3)
	parked := filepath.Join(base, ".old.repl")
	if err := os.MkdirAll(parked, 0o755); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(base, "repl", store.ContainerFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(parked, store.ContainerFile), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s3.Manifest("repl")
	if err != nil || got.TotalValues != m2.TotalValues {
		t.Fatalf("published dataset lost: %+v, %v", got, err)
	}
	if _, err := os.Stat(parked); !os.IsNotExist(err) {
		t.Fatal("stale parked copy survived reopen")
	}
}

// TestBytesGaugeTracksPutReplaceDelete pins the O(1) size gauges against
// the filesystem truth across put, replace, and delete.
func TestBytesGaugeTracksPutReplaceDelete(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := func() int64 {
		var total int64
		for _, m := range mustList(t, s) {
			for _, file := range []string{store.ContainerFile, store.ManifestFile} {
				fi, err := os.Stat(filepath.Join(s.Dir(), "datasets", m.Name, file))
				if err != nil {
					t.Fatal(err)
				}
				total += fi.Size()
			}
		}
		return total
	}
	putField(t, s, "a", testField(t, 1024), 256, 1e-3)
	putField(t, s, "b", testField(t, 2048), 256, 1e-3)
	if total, n := s.Bytes(); n != 2 || total != sum() {
		t.Fatalf("gauges (%d, %d) after puts, disk holds %d", total, n, sum())
	}
	putField(t, s, "a", testField(t, 4096), 256, 1e-3) // replace
	if total, n := s.Bytes(); n != 2 || total != sum() {
		t.Fatalf("gauges (%d, %d) after replace, disk holds %d", total, n, sum())
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if total, n := s.Bytes(); n != 1 || total != sum() {
		t.Fatalf("gauges (%d, %d) after delete, disk holds %d", total, n, sum())
	}
}

// TestReplaceConflicts pins the compare-and-swap: a Replace whose base
// version was re-put or deleted mid-flight aborts with ErrConflict and
// leaves the committed state untouched.
func TestReplaceConflicts(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t, 1024)
	base := putField(t, s, "cas", f, 256, 1e-3)

	// The dataset is re-put (new version) after the base was read.
	newer := putField(t, s, "cas", testField(t, 2048), 256, 1e-3)
	writes := s.Writes()
	_, err = s.Replace("cas", base, func(w io.Writer) (*store.Manifest, error) {
		t.Fatal("build ran despite a stale base")
		return nil, nil
	})
	if !errors.Is(err, store.ErrConflict) {
		t.Fatalf("stale Replace: %v, want ErrConflict", err)
	}
	if s.Writes() != writes {
		t.Fatal("stale Replace committed a write")
	}
	if got, _ := s.Manifest("cas"); got == nil || got.TotalValues != newer.TotalValues {
		t.Fatal("stale Replace disturbed the committed dataset")
	}

	// A matching base goes through.
	cur, err := s.Manifest("cas")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replace("cas", cur, func(w io.Writer) (*store.Manifest, error) {
		return mustStage(t, w, testField(t, 2048), 256, 1e-3), nil
	}); err != nil {
		t.Fatalf("fresh Replace: %v", err)
	}

	// A deleted dataset cannot be resurrected.
	if err := s.Delete("cas"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replace("cas", cur, func(w io.Writer) (*store.Manifest, error) {
		t.Fatal("build ran despite deletion")
		return nil, nil
	}); !errors.Is(err, store.ErrConflict) {
		t.Fatalf("Replace after delete: %v, want ErrConflict", err)
	}
}

// mustStage writes one compressed container into w and returns its
// manifest (the build-callback body shared by the Replace tests).
func mustStage(t testing.TB, w io.Writer, f *rqm.Field, chunkValues int, absEB float64) *store.Manifest {
	t.Helper()
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(absEB))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eng.NewFieldStreamWriter(w, f, rqm.WithChunkSize(chunkValues))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteValues(f.Data); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     "lorenzo",
		Mode:          "abs",
		ErrorBound:    absEB,
		ContentHash:   strings.Repeat("ab", 32),
		OriginalBytes: f.OriginalBytes(),
	}
}

func mustList(t testing.TB, s *store.Store) []*store.Manifest {
	t.Helper()
	ms, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestManifestProfileRoundTrip(t *testing.T) {
	f := testField(t, 2048)
	p, err := rqm.NewProfile(f, rqm.Lorenzo, rqm.ModelOptions{SampleRate: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rec := store.NewProfileRecord(p)
	m := &store.Manifest{Name: "x", Profile: rec}
	back, err := m.RQProfile()
	if err != nil {
		t.Fatal(err)
	}
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		a, b := p.EstimateAt(eb), back.EstimateAt(eb)
		if a.Ratio != b.Ratio || a.PSNR != b.PSNR || a.TotalBitRate != b.TotalBitRate {
			t.Fatalf("eb %g: cached profile answers (%v, %v) differ from live (%v, %v)",
				eb, b.Ratio, b.PSNR, a.Ratio, a.PSNR)
		}
	}
}

// TestReadRangeOverVariableChunks re-pins the random-access contract when the
// chunk grid is non-uniform: a spatially partitioned container's regions hold
// differing value counts, and slice reads must still touch exactly the
// covering chunks and return values identical to a full decompress.
func TestReadRangeOverVariableChunks(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.GenerateField("mixed", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rqm.NewEngine(rqm.WithMode(rqm.ABS), rqm.WithErrorBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Profile(f)
	if err != nil {
		t.Fatal(err)
	}
	man := &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     "lorenzo",
		Mode:          "abs",
		ContentHash:   strings.Repeat("cd", 32),
		OriginalBytes: f.OriginalBytes(),
		Partitioner:   partition.VarianceQuadtreeName,
		Profile:       store.NewProfileRecord(p),
	}
	m, err := s.Put("quad", func(w io.Writer) (*store.Manifest, error) {
		sw, err := eng.NewFieldStreamWriter(w, f,
			rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetPSNR: 60}),
			rqm.WithPartitioner(rqm.VarianceQuadtree{SplitFactor: 1.1, MinRegionValues: 1024}))
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			return nil, err
		}
		if err := sw.Close(); err != nil {
			return nil, err
		}
		man.ErrorBound = sw.Stats().MaxBound
		return man, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitioner != partition.VarianceQuadtreeName {
		t.Fatalf("committed manifest partitioner %q", m.Partitioner)
	}
	sizes := map[int]bool{}
	starts := make([]int64, len(m.Chunks)+1)
	for i, c := range m.Chunks {
		sizes[c.Values] = true
		starts[i+1] = starts[i] + int64(c.Values)
	}
	if len(m.Chunks) < 2 || len(sizes) < 2 {
		t.Fatalf("container has %d chunks with sizes %v, want non-uniform geometry", len(m.Chunks), sizes)
	}
	total := starts[len(m.Chunks)]
	if total != int64(f.Len()) {
		t.Fatalf("chunks cover %d values, field holds %d", total, f.Len())
	}

	blob, err := os.ReadFile(filepath.Join(s.Dir(), "datasets", "quad", store.ContainerFile))
	if err != nil {
		t.Fatal(err)
	}
	full, err := rqm.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}

	// coveringChunks counts, against the real variable grid, how many chunks a
	// range overlaps — the expected decompression work.
	coveringChunks := func(off, n int64) int64 {
		var c int64
		for i := range m.Chunks {
			if starts[i] < off+n && starts[i+1] > off {
				c++
			}
		}
		return c
	}
	cases := [][2]int64{
		{0, int64(m.Chunks[0].Values)}, // exactly the first (odd-sized) chunk
		{starts[1] - 100, 200},         // straddles the first region boundary
		{starts[len(m.Chunks)-1] - 1, 2},
		{total - 7, 7},
		{0, total},
	}
	for _, tc := range cases {
		off, n := tc[0], tc[1]
		before := s.ChunkReads()
		vals, err := s.ReadRange("quad", off, n)
		if err != nil {
			t.Fatalf("ReadRange(%d, %d): %v", off, n, err)
		}
		if got, want := s.ChunkReads()-before, coveringChunks(off, n); got != want {
			t.Errorf("ReadRange(%d, %d) decompressed %d chunks, want %d", off, n, got, want)
		}
		if int64(len(vals)) != n {
			t.Fatalf("ReadRange(%d, %d) returned %d values", off, n, len(vals))
		}
		for i, v := range vals {
			if math.Float64bits(v) != math.Float64bits(full.Data[off+int64(i)]) {
				t.Fatalf("ReadRange(%d, %d)[%d] = %v, full decompress has %v", off, n, i, v, full.Data[off+int64(i)])
			}
		}
	}
}
