package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rqm/internal/faultfs"
	"rqm/internal/store"
)

// The corruption matrix: flip a byte at every 101-byte stride of a committed
// dataset's container and manifest, and pin the failure contract at each
// offset. The stride is coprime with the container's structural periods
// (22-byte chunk heads, 24-byte trailer entries, 8-byte floats), so
// successive strides drift through every kind of span — header, chunk head,
// payload, trailer, footer, JSON keys, base64 profile bytes.
//
// The contract, per flipped byte:
//
//   - No read or verification path may panic.
//   - Any error surfaced must be typed: ErrCorruptDataset or the manifest's
//     own sentinels — never a bare wrapping a caller can't match.
//   - Deep verification must catch EVERY container flip: chunk payloads via
//     CRC, everything else via the commit-time ContainerHash. (A manifest
//     flip may instead parse cleanly when it lands in an unvalidated string
//     value — allowed, as long as nothing lies typed-less or panics.)

// typedCorruption reports whether err matches one of the integrity
// sentinels a caller is entitled to switch on.
func typedCorruption(err error) bool {
	return errors.Is(err, store.ErrCorruptDataset) ||
		errors.Is(err, store.ErrManifestCorrupt) ||
		errors.Is(err, store.ErrManifestVersion)
}

func TestCorruptionMatrixContainer(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "matrix", testField(t, 2048), 256, 1e-4)
	path, err := s.ContainerPath("matrix")
	if err != nil {
		t.Fatal(err)
	}
	size := m.ContainerBytes
	if size < 404 {
		t.Fatalf("container only %d bytes — matrix needs several strides", size)
	}

	caught := 0
	for off := int64(0); off < size; off += 101 {
		if err := faultfs.CorruptFile(path, off); err != nil {
			t.Fatal(err)
		}

		// Read paths: manifest load, range read. Must not panic; errors
		// must be typed.
		if _, merr := s.Manifest("matrix"); merr != nil {
			t.Fatalf("offset %d: manifest read broke on a container flip: %v", off, merr)
		}
		if _, rerr := s.ReadRange("matrix", 0, m.TotalValues); rerr != nil && !typedCorruption(rerr) {
			t.Fatalf("offset %d: untyped read error: %v", off, rerr)
		}

		// Shallow verification may miss spans no CRC covers, but when it
		// fires it must be typed.
		if verr := s.VerifyDataset("matrix", false); verr != nil && !typedCorruption(verr) {
			t.Fatalf("offset %d: untyped shallow verify error: %v", off, verr)
		}

		// Deep verification must catch every single flip.
		derr := s.VerifyDataset("matrix", true)
		if derr == nil {
			t.Fatalf("offset %d: deep verify missed a container flip", off)
		}
		if !typedCorruption(derr) {
			t.Fatalf("offset %d: untyped deep verify error: %v", off, derr)
		}
		caught++

		// Restore (XOR flip is an involution) and require full health back.
		if err := faultfs.CorruptFile(path, off); err != nil {
			t.Fatal(err)
		}
		if verr := s.VerifyDataset("matrix", true); verr != nil {
			t.Fatalf("offset %d: dataset not restored after un-flip: %v", off, verr)
		}
	}
	if caught < 4 {
		t.Fatalf("matrix exercised only %d offsets", caught)
	}
}

func TestCorruptionMatrixManifest(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	putField(t, s, "mmatrix", testField(t, 1024), 256, 1e-3)
	mpath := filepath.Join(s.Dir(), "datasets", "mmatrix", store.ManifestFile)
	fi, err := os.Stat(mpath)
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	typed, clean := 0, 0
	for off := int64(0); off < size; off += 101 {
		if err := faultfs.CorruptFile(mpath, off); err != nil {
			t.Fatal(err)
		}

		_, merr := s.Manifest("mmatrix")
		verr := s.VerifyDataset("mmatrix", true)
		switch {
		case merr == nil && verr == nil:
			// The flip landed in an unvalidated string value: a clean parse
			// is acceptable — the dataset still serves.
			clean++
		case merr != nil && !typedCorruption(merr):
			t.Fatalf("offset %d: untyped manifest error: %v", off, merr)
		case verr != nil && !typedCorruption(verr):
			t.Fatalf("offset %d: untyped verify error: %v", off, verr)
		default:
			typed++
		}

		if err := faultfs.CorruptFile(mpath, off); err != nil {
			t.Fatal(err)
		}
		if verr := s.VerifyDataset("mmatrix", true); verr != nil {
			t.Fatalf("offset %d: dataset not restored after un-flip: %v", off, verr)
		}
	}
	// The harness must actually bite: most manifest bytes are load-bearing.
	if typed == 0 {
		t.Fatal("no manifest flip produced a typed error")
	}
	t.Logf("manifest matrix: %d typed, %d clean parses over %d offsets", typed, clean, typed+clean)
}

// TestCorruptionMatrixScrubSweep runs one scrub per corrupted copy of the
// SAME archive state (fault injected as a read view, so nothing needs
// restoring) and pins that scrub itself never panics and always produces a
// coherent report.
func TestCorruptionMatrixScrubSweep(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := putField(t, s, "sweep", testField(t, 1024), 256, 1e-3)
	ffs := faultfs.New()
	s.SetReadFS(ffs)

	for off := int64(0); off < m.ContainerBytes; off += 101 {
		fault := faultfs.NewFault()
		fault.FlipOffset = off
		ffs.Set("sweep/"+store.ContainerFile, fault)
		err := s.VerifyDataset("sweep", true)
		if err == nil {
			t.Fatalf("offset %d: deep verify missed an injected flip", off)
		}
		if !typedCorruption(err) {
			t.Fatalf("offset %d: untyped: %v", off, err)
		}
	}
	ffs.Reset()
	if err := s.VerifyDataset("sweep", true); err != nil {
		t.Fatalf("store damaged by injected views: %v", err)
	}
	if _, _, quarantined, _ := s.ScrubStats(); quarantined != 0 {
		t.Fatalf("%d datasets quarantined — VerifyDataset must not quarantine", quarantined)
	}
}
