// Package rle implements the zero-run-length encoding that the paper uses
// to model (and approximate) the optional lossless stage after Huffman
// coding: after an effective predictor, the Huffman stream is dominated by
// the 1-bit code of the zero quantization symbol, so long runs of zero
// *bytes* appear in the packed stream; everything else is passed through.
//
// Format: a non-zero byte is emitted verbatim; a run of n >= 1 zero bytes is
// emitted as 0x00 followed by uvarint(n-1).
package rle

import (
	"encoding/binary"
	"errors"
)

// Encode compresses src with zero-byte run-length encoding.
func Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(src) {
		b := src[i]
		if b != 0 {
			out = append(out, b)
			i++
			continue
		}
		j := i
		for j < len(src) && src[j] == 0 {
			j++
		}
		run := j - i
		out = append(out, 0)
		k := binary.PutUvarint(tmp[:], uint64(run-1))
		out = append(out, tmp[:k]...)
		i = j
	}
	return out
}

// Decode reverses Encode. maxLen bounds the output size as a safety check
// against corrupted counts (0 means no bound).
func Decode(src []byte, maxLen int) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		b := src[i]
		if b != 0 {
			out = append(out, b)
			i++
			continue
		}
		i++
		n, k := binary.Uvarint(src[i:])
		if k <= 0 {
			return nil, errors.New("rle: truncated run length")
		}
		i += k
		run := int(n) + 1
		if run < 0 || (maxLen > 0 && len(out)+run > maxLen) {
			return nil, errors.New("rle: run overflows expected size")
		}
		for j := 0; j < run; j++ {
			out = append(out, 0)
		}
	}
	return out, nil
}

// Gain returns the compression ratio len(src)/len(Encode(src)) without
// materializing the output.
func Gain(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	var outLen int
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			outLen++
			i++
			continue
		}
		j := i
		for j < len(src) && src[j] == 0 {
			j++
		}
		outLen += 1 + binary.PutUvarint(tmp[:], uint64(j-i-1))
		i = j
	}
	return float64(len(src)) / float64(outLen)
}
