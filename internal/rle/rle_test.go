package rle

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0},
		{0, 0, 0, 0},
		{1, 0, 0, 2, 0, 3},
		bytes.Repeat([]byte{0}, 1000),
		append(bytes.Repeat([]byte{0}, 300), 0xFF),
	}
	for i, src := range cases {
		enc := Encode(src)
		dec, err := Decode(enc, len(src))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestLongRunCompresses(t *testing.T) {
	src := bytes.Repeat([]byte{0}, 100000)
	enc := Encode(src)
	if len(enc) > 8 {
		t.Fatalf("100k zeros encoded to %d bytes", len(enc))
	}
}

func TestIncompressibleWorstCase(t *testing.T) {
	// Alternating single zeros double: worst case is bounded at 2x.
	src := make([]byte, 1000)
	for i := range src {
		if i%2 == 0 {
			src[i] = 1
		}
	}
	enc := Encode(src)
	if len(enc) > 2*len(src) {
		t.Fatalf("expansion beyond 2x: %d", len(enc))
	}
	dec, err := Decode(enc, len(src))
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("worst case round trip failed")
	}
}

func TestDecodeCorrupted(t *testing.T) {
	if _, err := Decode([]byte{0}, 0); err == nil {
		t.Fatal("truncated run accepted")
	}
	// Run that exceeds maxLen must be rejected.
	enc := Encode(bytes.Repeat([]byte{0}, 100))
	if _, err := Decode(enc, 50); err == nil {
		t.Fatal("overlong run accepted")
	}
}

func TestGainMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		src := make([]byte, 2048)
		for i := range src {
			if rng.Float64() < 0.7 {
				src[i] = 0
			} else {
				src[i] = byte(rng.Intn(255) + 1)
			}
		}
		want := float64(len(src)) / float64(len(Encode(src)))
		if got := Gain(src); got != want {
			t.Fatalf("Gain = %v, want %v", got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		enc := Encode(src)
		dec, err := Decode(enc, len(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeZeroHeavy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<20)
	for i := range src {
		if rng.Float64() > 0.9 {
			src[i] = byte(rng.Intn(256))
		}
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(src)
	}
}
