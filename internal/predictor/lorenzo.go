package predictor

import (
	"math/bits"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

// lorenzoPredictor implements the order-1 Lorenzo predictor for rank 1–4
// (inclusion–exclusion over the 2^rank−1 backward neighbors, missing
// neighbors contribute 0, as in SZ) and the order-2 variant for 1D streams.
type lorenzoPredictor struct {
	order int // 1 or 2
}

func (l lorenzoPredictor) Kind() Kind {
	if l.order == 2 {
		return Lorenzo2
	}
	return Lorenzo
}

func (l lorenzoPredictor) Supports(rank int) bool {
	if l.order == 2 {
		return rank == 1
	}
	return rank >= 1 && rank <= 4
}

func (l lorenzoPredictor) CompressWalk(dims []int, work []float64, visit Visit) ([]byte, error) {
	if err := checkWalkArgs(l, dims, work); err != nil {
		return nil, err
	}
	l.walk(dims, work, visit)
	return nil, nil
}

func (l lorenzoPredictor) DecompressWalk(dims []int, work []float64, aux []byte, visit Visit) error {
	if err := checkWalkArgs(l, dims, work); err != nil {
		return err
	}
	l.walk(dims, work, visit)
	return nil
}

func (l lorenzoPredictor) walk(dims []int, work []float64, visit Visit) {
	switch {
	case l.order == 2:
		walkLorenzo2(dims[0], work, visit)
	case len(dims) == 1:
		walkLorenzo1D(dims[0], work, visit)
	case len(dims) == 2:
		walkLorenzo2D(dims, work, visit)
	case len(dims) == 3:
		walkLorenzo3D(dims, work, visit)
	default:
		walkLorenzoND(dims, work, visit)
	}
}

func walkLorenzo1D(n int, work []float64, visit Visit) {
	prev := 0.0
	for i := 0; i < n; i++ {
		visit(i, prev)
		prev = work[i]
	}
}

func walkLorenzo2(n int, work []float64, visit Visit) {
	for i := 0; i < n; i++ {
		var pred float64
		switch {
		case i >= 2:
			pred = 2*work[i-1] - work[i-2]
		case i == 1:
			pred = work[0]
		}
		visit(i, pred)
	}
}

func walkLorenzo2D(dims []int, work []float64, visit Visit) {
	rows, cols := dims[0], dims[1]
	for i := 0; i < rows; i++ {
		row := i * cols
		for j := 0; j < cols; j++ {
			var a, b, c float64 // west, north, northwest
			if j > 0 {
				a = work[row+j-1]
			}
			if i > 0 {
				b = work[row-cols+j]
				if j > 0 {
					c = work[row-cols+j-1]
				}
			}
			visit(row+j, a+b-c)
		}
	}
}

func walkLorenzo3D(dims []int, work []float64, visit Visit) {
	d0, d1, d2 := dims[0], dims[1], dims[2]
	s0 := d1 * d2
	for i := 0; i < d0; i++ {
		for j := 0; j < d1; j++ {
			base := i*s0 + j*d2
			for k := 0; k < d2; k++ {
				idx := base + k
				var f100, f010, f001, f110, f101, f011, f111 float64
				if i > 0 {
					f100 = work[idx-s0]
				}
				if j > 0 {
					f010 = work[idx-d2]
				}
				if k > 0 {
					f001 = work[idx-1]
				}
				if i > 0 && j > 0 {
					f110 = work[idx-s0-d2]
				}
				if i > 0 && k > 0 {
					f101 = work[idx-s0-1]
				}
				if j > 0 && k > 0 {
					f011 = work[idx-d2-1]
				}
				if i > 0 && j > 0 && k > 0 {
					f111 = work[idx-s0-d2-1]
				}
				visit(idx, f100+f010+f001-f110-f101-f011+f111)
			}
		}
	}
}

// walkLorenzoND is the generic inclusion–exclusion Lorenzo walk (used for 4D).
func walkLorenzoND(dims []int, work []float64, visit Visit) {
	rank := len(dims)
	st := strides(dims)
	n := totalLen(dims)
	coord := make([]int, rank)
	for idx := 0; idx < n; idx++ {
		pred := lorenzoPredictND(work, coord, st, rank, idx)
		visit(idx, pred)
		for d := rank - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
		}
	}
}

func lorenzoPredictND(work []float64, coord, st []int, rank, idx int) float64 {
	var pred float64
	for mask := 1; mask < 1<<rank; mask++ {
		off := idx
		ok := true
		for d := 0; d < rank; d++ {
			if mask&(1<<d) != 0 {
				if coord[d] == 0 {
					ok = false
					break
				}
				off -= st[d]
			}
		}
		if !ok {
			continue
		}
		if bits.OnesCount(uint(mask))%2 == 1 {
			pred += work[off]
		} else {
			pred -= work[off]
		}
	}
	return pred
}

// SampleErrors for Lorenzo: random point sampling; for each sampled point the
// Lorenzo prediction is computed from *original* neighbor values (paper
// §III-C1 and §III-C4). The very first point has no neighbors (prediction 0,
// a giant outlier the compressor effectively stores raw), so it is excluded
// from the error distribution.
func (l lorenzoPredictor) SampleErrors(f *grid.Field, rate float64, seed uint64) []float64 {
	n := f.Len()
	idxs := stats.SampleIndices(n, rate, seed)
	out := make([]float64, 0, len(idxs))
	dims := f.Dims
	rank := len(dims)
	st := strides(dims)
	coord := make([]int, rank)
	for _, idx := range idxs {
		if idx == 0 {
			continue
		}
		rem := idx
		for d := rank - 1; d >= 0; d-- {
			coord[d] = rem % dims[d]
			rem /= dims[d]
		}
		var pred float64
		if l.order == 2 {
			switch {
			case idx >= 2:
				pred = 2*f.Data[idx-1] - f.Data[idx-2]
			case idx == 1:
				pred = f.Data[0]
			}
		} else {
			pred = lorenzoPredictND(f.Data, coord, st, rank, idx)
		}
		out = append(out, pred-f.Data[idx])
	}
	return out
}
