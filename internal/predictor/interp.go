package predictor

import (
	"rqm/internal/grid"
	"rqm/internal/stats"
)

// interpPredictor implements SZ3-style multilevel interpolation: levels from
// coarse to fine, each level sweeping every dimension and predicting points
// at odd multiples of the level stride from already-known neighbors on the
// twice-coarser grid. With cubic enabled, a 4-point spline is used where all
// four neighbors exist.
type interpPredictor struct {
	cubic bool
}

func (p interpPredictor) Kind() Kind {
	if p.cubic {
		return InterpolationCubic
	}
	return Interpolation
}

func (p interpPredictor) Supports(rank int) bool { return rank >= 1 && rank <= 4 }

// maxLevelFor returns the number of interpolation levels: smallest L with
// 2^L >= max(dims).
func maxLevelFor(dims []int) int {
	maxDim := 1
	for _, d := range dims {
		if d > maxDim {
			maxDim = d
		}
	}
	l := 0
	for (1 << l) < maxDim {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

func (p interpPredictor) CompressWalk(dims []int, work []float64, visit Visit) ([]byte, error) {
	if err := checkWalkArgs(p, dims, work); err != nil {
		return nil, err
	}
	p.walk(dims, work, visit)
	return nil, nil
}

func (p interpPredictor) DecompressWalk(dims []int, work []float64, aux []byte, visit Visit) error {
	if err := checkWalkArgs(p, dims, work); err != nil {
		return err
	}
	p.walk(dims, work, visit)
	return nil
}

func (p interpPredictor) walk(dims []int, work []float64, visit Visit) {
	// Anchor point: predicted as 0.
	visit(0, 0)
	st := strides(dims)
	for level := maxLevelFor(dims); level >= 1; level-- {
		s := 1 << (level - 1)
		for d := range dims {
			p.sweep(dims, st, work, d, s, func(idx int, pred float64) {
				visit(idx, pred)
			})
		}
	}
}

// sweep predicts all points whose coordinate along dim d is an odd multiple
// of s, with coords along dims < d on the s-grid and dims > d on the 2s-grid.
// fn receives the flat index and the interpolated prediction (reading from
// work, which holds known values).
func (p interpPredictor) sweep(dims, st []int, work []float64, d, s int, fn func(idx int, pred float64)) {
	rank := len(dims)
	if s >= dims[d] {
		return // no odd multiple of s inside this dimension
	}
	// Odometer over the free dims.
	coord := make([]int, rank)
	steps := make([]int, rank)
	for j := 0; j < rank; j++ {
		if j < d {
			steps[j] = s
		} else {
			steps[j] = 2 * s
		}
	}
	stD := st[d]
	dimD := dims[d]
	for {
		// Base offset for this line (coord[d] == 0 here).
		base := 0
		for j := 0; j < rank; j++ {
			if j != d {
				base += coord[j] * st[j]
			}
		}
		for c := s; c < dimD; c += 2 * s {
			idx := base + c*stD
			a := work[idx-s*stD] // coord c-s always >= 0
			var pred float64
			hasB := c+s < dimD
			if p.cubic && c-3*s >= 0 && c+3*s < dimD {
				a3 := work[idx-3*s*stD]
				b1 := work[idx+s*stD]
				b3 := work[idx+3*s*stD]
				pred = (-a3 + 9*a + 9*b1 - b3) / 16
			} else if hasB {
				pred = (a + work[idx+s*stD]) / 2
			} else {
				pred = a
			}
			fn(idx, pred)
		}
		// Advance the odometer over free dims.
		j := rank - 1
		for ; j >= 0; j-- {
			if j == d {
				continue
			}
			coord[j] += steps[j]
			if coord[j] < dims[j] {
				break
			}
			coord[j] = 0
		}
		if j < 0 {
			return
		}
	}
}

// SampleErrors uses the paper's level-aware strategy: every sweep point is a
// candidate and is sampled with uniform probability, which makes the number
// of samples per level shrink by 2^-rank from fine to coarse exactly as the
// level populations do. Predictions use original values (§III-C4).
//
// The pass is O(sample): sweep positions are enumerated cheaply and the
// interpolation arithmetic runs only for the points the RNG actually picks.
// The RNG is consumed once per sweep point in sweep order — exactly as the
// previous compute-then-discard implementation did — so the sampled set
// (and therefore every model profile) is unchanged.
func (p interpPredictor) SampleErrors(f *grid.Field, rate float64, seed uint64) []float64 {
	dims := f.Dims
	st := strides(dims)
	rng := stats.NewXorShift64(seed)
	out := make([]float64, 0, sampleCap(f.Len(), rate))
	for level := maxLevelFor(dims); level >= 1; level-- {
		s := 1 << (level - 1)
		for d := range dims {
			out = p.sweepSampled(dims, st, f.Data, d, s, rng, rate, out)
		}
	}
	if len(out) == 0 && f.Len() > 1 {
		// Degenerate rate: fall back to one deterministic sample.
		p.sweep(dims, st, f.Data, 0, 1, func(idx int, pred float64) {
			if len(out) == 0 {
				out = append(out, pred-f.Data[idx])
			}
		})
	}
	return out
}

// sweepSampled walks the same positions as sweep but computes the
// interpolation only for sampled points, appending (pred − original) to out.
func (p interpPredictor) sweepSampled(dims, st []int, work []float64, d, s int,
	rng *stats.XorShift64, rate float64, out []float64) []float64 {
	rank := len(dims)
	if s >= dims[d] {
		return out
	}
	coord := make([]int, rank)
	steps := make([]int, rank)
	for j := 0; j < rank; j++ {
		if j < d {
			steps[j] = s
		} else {
			steps[j] = 2 * s
		}
	}
	stD := st[d]
	dimD := dims[d]
	for {
		base := 0
		for j := 0; j < rank; j++ {
			if j != d {
				base += coord[j] * st[j]
			}
		}
		for c := s; c < dimD; c += 2 * s {
			if rng.Float64() >= rate {
				continue
			}
			idx := base + c*stD
			a := work[idx-s*stD]
			var pred float64
			hasB := c+s < dimD
			if p.cubic && c-3*s >= 0 && c+3*s < dimD {
				a3 := work[idx-3*s*stD]
				b1 := work[idx+s*stD]
				b3 := work[idx+3*s*stD]
				pred = (-a3 + 9*a + 9*b1 - b3) / 16
			} else if hasB {
				pred = (a + work[idx+s*stD]) / 2
			} else {
				pred = a
			}
			out = append(out, pred-work[idx])
		}
		j := rank - 1
		for ; j >= 0; j-- {
			if j == d {
				continue
			}
			coord[j] += steps[j]
			if coord[j] < dims[j] {
				break
			}
			coord[j] = 0
		}
		if j < 0 {
			return out
		}
	}
}
