package predictor

import (
	"math"
	"testing"

	"rqm/internal/datagen"
)

// identityVisit writes the original value back (lossless walk), so a
// compress walk visits every index exactly once and predictions are finite.
func coverageCheck(t *testing.T, p Predictor, dims []int) {
	t.Helper()
	n := totalLen(dims)
	work := make([]float64, n)
	for i := range work {
		work[i] = float64(i%17) * 0.5
	}
	seen := make([]int, n)
	aux, err := p.CompressWalk(dims, work, func(idx int, pred float64) {
		if idx < 0 || idx >= n {
			t.Fatalf("%s: index %d out of range", p.Kind(), idx)
		}
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			t.Fatalf("%s: non-finite prediction at %d", p.Kind(), idx)
		}
		seen[idx]++
		// Keep the value: lossless visit.
	})
	if err != nil {
		t.Fatalf("%s dims %v: %v", p.Kind(), dims, err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%s dims %v: index %d visited %d times", p.Kind(), dims, i, c)
		}
	}
	// Decompress walk must replay the same order with the same predictions
	// when the visit reconstructs the exact values.
	work2 := make([]float64, n)
	var order1, order2 []int
	var preds1, preds2 []float64
	if _, err := p.CompressWalk(dims, append([]float64(nil), work...), func(idx int, pred float64) {
		order1 = append(order1, idx)
		preds1 = append(preds1, pred)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.DecompressWalk(dims, work2, aux, func(idx int, pred float64) {
		order2 = append(order2, idx)
		preds2 = append(preds2, pred)
		work2[idx] = work[idx] // exact reconstruction
	}); err != nil {
		t.Fatal(err)
	}
	if len(order1) != len(order2) {
		t.Fatalf("%s: walk lengths differ: %d vs %d", p.Kind(), len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("%s: walk order diverges at step %d: %d vs %d", p.Kind(), i, order1[i], order2[i])
		}
	}
}

func TestWalkCoverageAllKinds(t *testing.T) {
	shapes := [][]int{{1}, {7}, {64}, {5, 9}, {16, 16}, {4, 6, 5}, {8, 8, 8}, {3, 4, 5, 2}}
	for _, kind := range Kinds() {
		p, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		for _, dims := range shapes {
			if !p.Supports(len(dims)) {
				continue
			}
			coverageCheck(t, p, dims)
		}
	}
}

func TestUnsupportedRankRejected(t *testing.T) {
	p, _ := New(Lorenzo2)
	work := make([]float64, 6)
	if _, err := p.CompressWalk([]int{2, 3}, work, func(int, float64) {}); err == nil {
		t.Fatal("Lorenzo2 accepted rank 2")
	}
	if err := p.DecompressWalk([]int{2, 3}, work, nil, func(int, float64) {}); err == nil {
		t.Fatal("Lorenzo2 decompress accepted rank 2")
	}
}

func TestWorkLengthMismatch(t *testing.T) {
	p, _ := New(Lorenzo)
	if _, err := p.CompressWalk([]int{4, 4}, make([]float64, 7), func(int, float64) {}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLorenzo2DExactOnAffine(t *testing.T) {
	// Order-1 Lorenzo reproduces any affine field exactly away from borders.
	dims := []int{8, 8}
	work := make([]float64, 64)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			work[i*8+j] = 3 + 2*float64(i) - 1.5*float64(j)
		}
	}
	p, _ := New(Lorenzo)
	if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {
		i, j := idx/8, idx%8
		if i > 0 && j > 0 {
			if math.Abs(pred-work[idx]) > 1e-12 {
				t.Fatalf("interior affine prediction error at (%d,%d): pred %v want %v", i, j, pred, work[idx])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLorenzo3DExactOnTrilinearCorners(t *testing.T) {
	dims := []int{6, 6, 6}
	work := make([]float64, 216)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				work[(i*6+j)*6+k] = 1 + float64(i) + 2*float64(j) + 3*float64(k)
			}
		}
	}
	p, _ := New(Lorenzo)
	if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {
		k := idx % 6
		j := idx / 6 % 6
		i := idx / 36
		if i > 0 && j > 0 && k > 0 && math.Abs(pred-work[idx]) > 1e-12 {
			t.Fatalf("3D affine prediction error at (%d,%d,%d)", i, j, k)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLorenzo2ExactOnLinear(t *testing.T) {
	work := make([]float64, 32)
	for i := range work {
		work[i] = 5 - 0.75*float64(i)
	}
	p, _ := New(Lorenzo2)
	if _, err := p.CompressWalk([]int{32}, work, func(idx int, pred float64) {
		if idx >= 2 && math.Abs(pred-work[idx]) > 1e-12 {
			t.Fatalf("order-2 Lorenzo missed linear trend at %d", idx)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolationExactOnLinear1D(t *testing.T) {
	// Linear interpolation reproduces a linear ramp exactly at every
	// midpoint (boundary extrapolation copies are the exception).
	n := 17
	work := make([]float64, n)
	for i := range work {
		work[i] = 2 * float64(i)
	}
	p, _ := New(Interpolation)
	bad := 0
	if _, err := p.CompressWalk([]int{n}, work, func(idx int, pred float64) {
		if idx == 0 {
			return
		}
		if math.Abs(pred-work[idx]) > 1e-12 {
			bad++
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Only points predicted by one-sided copy (no right neighbor) may miss.
	if bad > 5 {
		t.Fatalf("linear field mispredicted at %d interior points", bad)
	}
}

func TestCubicBeatsLinearOnSmooth(t *testing.T) {
	// On an analytically smooth band-limited field, 4-point cubic
	// interpolation (O(h^4)) must beat linear midpoint interpolation
	// (O(h^2)). Random spectral fields are too rough for this to hold.
	const n = 65
	dims := []int{n, n}
	base := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			base[i*n+j] = math.Sin(2*math.Pi*float64(i)/n) * math.Cos(2*math.Pi*float64(j)/n)
		}
	}
	lin, _ := New(Interpolation)
	cub, _ := New(InterpolationCubic)
	sumAbs := func(p Predictor) float64 {
		var s float64
		work := append([]float64(nil), base...)
		if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {
			s += math.Abs(pred - work[idx])
		}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	el, ec := sumAbs(lin), sumAbs(cub)
	if ec >= el {
		t.Fatalf("cubic (%.4g) not better than linear (%.4g) on smooth field", ec, el)
	}
}

func TestRegressionExactOnAffineBlocks(t *testing.T) {
	dims := []int{12, 12}
	work := make([]float64, 144)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			work[i*12+j] = -4 + 0.5*float64(i) + 0.25*float64(j)
		}
	}
	p, _ := New(Regression)
	if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {
		if math.Abs(pred-work[idx]) > 1e-4 { // float32 coefficient rounding
			t.Fatalf("regression missed affine field at %d: pred %v want %v", idx, pred, work[idx])
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionAuxRoundTrip(t *testing.T) {
	dims := []int{13, 7}
	n := 91
	orig := make([]float64, n)
	for i := range orig {
		orig[i] = math.Sin(float64(i) * 0.3)
	}
	p, _ := New(Regression)
	var predsC []float64
	aux, err := p.CompressWalk(dims, append([]float64(nil), orig...), func(idx int, pred float64) {
		predsC = append(predsC, pred)
	})
	if err != nil {
		t.Fatal(err)
	}
	var predsD []float64
	work := make([]float64, n)
	if err := p.DecompressWalk(dims, work, aux, func(idx int, pred float64) {
		predsD = append(predsD, pred)
		work[idx] = orig[idx]
	}); err != nil {
		t.Fatal(err)
	}
	for i := range predsC {
		if predsC[i] != predsD[i] {
			t.Fatalf("prediction mismatch at step %d: %v vs %v", i, predsC[i], predsD[i])
		}
	}
}

func TestRegressionAuxLengthValidated(t *testing.T) {
	p, _ := New(Regression)
	if err := p.DecompressWalk([]int{12}, make([]float64, 12), []byte{1, 2, 3}, func(int, float64) {}); err == nil {
		t.Fatal("bad aux length accepted")
	}
}

func TestAuxBitsPerValue(t *testing.T) {
	// 12x12 → 4 blocks × 3 coefficients × 32 bits / 144 values.
	got := AuxBitsPerValue([]int{12, 12})
	want := float64(4*3*32) / 144
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AuxBitsPerValue = %v, want %v", got, want)
	}
}

func TestSampleErrorsMatchFullDistribution(t *testing.T) {
	f, err := datagen.GenerateField("cesm/TS", 7, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Lorenzo, Interpolation, Regression} {
		p, _ := New(kind)
		full := p.SampleErrors(f, 1.0, 1)
		sampled := p.SampleErrors(f, 0.05, 1)
		if len(sampled) == 0 {
			t.Fatalf("%s: empty sample", kind)
		}
		if len(sampled) >= len(full) {
			t.Fatalf("%s: sample (%d) not smaller than full (%d)", kind, len(sampled), len(full))
		}
		mf, ms := meanAbs(full), meanAbs(sampled)
		if mf == 0 {
			continue
		}
		if rel := math.Abs(ms-mf) / mf; rel > 0.5 {
			t.Fatalf("%s: sampled mean|err| %.4g deviates %.0f%% from full %.4g", kind, ms, rel*100, mf)
		}
	}
}

func TestSampleErrorsDeterministic(t *testing.T) {
	f, _ := datagen.GenerateField("cesm/TS", 7, datagen.Tiny)
	p, _ := New(Lorenzo)
	a := p.SampleErrors(f, 0.02, 42)
	b := p.SampleErrors(f, 0.02, 42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic sample size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic sample")
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestInterpolationSmallerErrorsThanLorenzoOnSmooth(t *testing.T) {
	// On a very smooth field the interpolation predictor should produce
	// prediction errors comparable to or smaller than Lorenzo's (this is the
	// regime where the paper's Fig. 10 shows interpolation winning).
	f, err := datagen.GenerateField("scale/PRES", 11, datagen.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	lor, _ := New(Lorenzo)
	itp, _ := New(InterpolationCubic)
	el := meanAbs(lor.SampleErrors(f, 1, 1))
	ei := meanAbs(itp.SampleErrors(f, 1, 1))
	if ei > el*20 {
		t.Fatalf("interpolation errors (%.4g) wildly above Lorenzo (%.4g)", ei, el)
	}
}

func BenchmarkLorenzoWalk3D(b *testing.B) {
	dims := []int{64, 64, 64}
	work := make([]float64, 64*64*64)
	for i := range work {
		work[i] = math.Sin(float64(i) * 1e-3)
	}
	p, _ := New(Lorenzo)
	b.SetBytes(int64(len(work) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpWalk3D(b *testing.B) {
	dims := []int{64, 64, 64}
	work := make([]float64, 64*64*64)
	for i := range work {
		work[i] = math.Sin(float64(i) * 1e-3)
	}
	p, _ := New(Interpolation)
	b.SetBytes(int64(len(work) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CompressWalk(dims, work, func(idx int, pred float64) {}); err != nil {
			b.Fatal(err)
		}
	}
}
