package predictor

import (
	"encoding/binary"
	"fmt"
	"math"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

// RegressionBlockEdge is the block edge used by the regression predictor,
// matching SZ's 6x6(x6) blocks.
const RegressionBlockEdge = 6

// regressionPredictor fits an affine model b0 + Σ b_d·t_d per block (t_d is
// the local coordinate). Coefficients are rounded to float32 and carried as
// a side channel; both compression and decompression predict from the
// rounded coefficients, so the error bound is preserved regardless of the
// coefficient precision.
type regressionPredictor struct{}

func (regressionPredictor) Kind() Kind             { return Regression }
func (regressionPredictor) Supports(rank int) bool { return rank >= 1 && rank <= 4 }

// block mirrors grid.Block but is local to dims-based walks.
type block struct {
	origin []int
	size   []int
}

func blocksOf(dims []int, edge int) []block {
	rank := len(dims)
	counts := make([]int, rank)
	total := 1
	for i, d := range dims {
		counts[i] = (d + edge - 1) / edge
		total *= counts[i]
	}
	out := make([]block, 0, total)
	coord := make([]int, rank)
	for {
		b := block{origin: make([]int, rank), size: make([]int, rank)}
		for i := range coord {
			b.origin[i] = coord[i] * edge
			sz := edge
			if b.origin[i]+sz > dims[i] {
				sz = dims[i] - b.origin[i]
			}
			b.size[i] = sz
		}
		out = append(out, b)
		i := rank - 1
		for ; i >= 0; i-- {
			coord[i]++
			if coord[i] < counts[i] {
				break
			}
			coord[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// forEachInBlock iterates the block in scan order, passing the flat index
// and local coordinates (valid until return).
func forEachInBlock(dims []int, st []int, b block, fn func(flat int, local []int)) {
	rank := len(dims)
	local := make([]int, rank)
	for {
		flat := 0
		for i := range local {
			flat += (b.origin[i] + local[i]) * st[i]
		}
		fn(flat, local)
		i := rank - 1
		for ; i >= 0; i-- {
			local[i]++
			if local[i] < b.size[i] {
				break
			}
			local[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// fitBlock computes least-squares affine coefficients for the block from
// `data`. On a full tensor grid the centered regressors are orthogonal, so
// each slope is cov(t_d, f)/var(t_d).
func fitBlock(dims, st []int, b block, data []float64) []float64 {
	rank := len(dims)
	n := 1
	for _, s := range b.size {
		n *= s
	}
	meanT := make([]float64, rank)
	varT := make([]float64, rank)
	for d := 0; d < rank; d++ {
		m := float64(b.size[d])
		meanT[d] = (m - 1) / 2
		varT[d] = (m*m - 1) / 12
	}
	var sumF float64
	covTF := make([]float64, rank)
	forEachInBlock(dims, st, b, func(flat int, local []int) {
		v := data[flat]
		sumF += v
		for d := 0; d < rank; d++ {
			covTF[d] += (float64(local[d]) - meanT[d]) * v
		}
	})
	meanF := sumF / float64(n)
	coef := make([]float64, rank+1)
	for d := 0; d < rank; d++ {
		if varT[d] > 0 {
			coef[d+1] = covTF[d] / (varT[d] * float64(n))
		}
	}
	c0 := meanF
	for d := 0; d < rank; d++ {
		c0 -= coef[d+1] * meanT[d]
	}
	coef[0] = c0
	return coef
}

// roundCoef rounds coefficients to float32 (the stored precision).
func roundCoef(coef []float64) []float64 {
	out := make([]float64, len(coef))
	for i, c := range coef {
		out[i] = float64(float32(c))
	}
	return out
}

func (p regressionPredictor) CompressWalk(dims []int, work []float64, visit Visit) ([]byte, error) {
	if err := checkWalkArgs(p, dims, work); err != nil {
		return nil, err
	}
	st := strides(dims)
	bls := blocksOf(dims, RegressionBlockEdge)
	aux := make([]byte, 0, len(bls)*(len(dims)+1)*4)
	var scratch [4]byte
	for _, b := range bls {
		coef := roundCoef(fitBlock(dims, st, b, work))
		for _, c := range coef {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(float32(c)))
			aux = append(aux, scratch[:]...)
		}
		forEachInBlock(dims, st, b, func(flat int, local []int) {
			pred := coef[0]
			for d := range local {
				pred += coef[d+1] * float64(local[d])
			}
			visit(flat, pred)
		})
	}
	return aux, nil
}

func (p regressionPredictor) DecompressWalk(dims []int, work []float64, aux []byte, visit Visit) error {
	if err := checkWalkArgs(p, dims, work); err != nil {
		return err
	}
	st := strides(dims)
	bls := blocksOf(dims, RegressionBlockEdge)
	rank := len(dims)
	need := len(bls) * (rank + 1) * 4
	if len(aux) != need {
		return fmt.Errorf("predictor: regression aux has %d bytes, want %d", len(aux), need)
	}
	off := 0
	coef := make([]float64, rank+1)
	for _, b := range bls {
		for i := range coef {
			coef[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(aux[off:])))
			off += 4
		}
		forEachInBlock(dims, st, b, func(flat int, local []int) {
			pred := coef[0]
			for d := range local {
				pred += coef[d+1] * float64(local[d])
			}
			visit(flat, pred)
		})
	}
	return nil
}

// AuxBitsPerValue reports the side-channel overhead of the regression
// predictor in bits per value for a field shape; the ratio-quality model
// adds it to the estimated bit-rate.
func AuxBitsPerValue(dims []int) float64 {
	bls := blocksOf(dims, RegressionBlockEdge)
	total := totalLen(dims)
	if total == 0 {
		return 0
	}
	return float64(len(bls)*(len(dims)+1)*32) / float64(total)
}

// SampleErrors samples whole blocks (paper §III-C3): a fraction `rate` of
// blocks is selected, each is fitted on original values, and all residuals
// in selected blocks are collected.
func (p regressionPredictor) SampleErrors(f *grid.Field, rate float64, seed uint64) []float64 {
	dims := f.Dims
	st := strides(dims)
	bls := blocksOf(dims, RegressionBlockEdge)
	picked := stats.SampleIndices(len(bls), rate, seed)
	out := make([]float64, 0, sampleCap(f.Len(), rate))
	for _, bi := range picked {
		b := bls[bi]
		coef := roundCoef(fitBlock(dims, st, b, f.Data))
		forEachInBlock(dims, st, b, func(flat int, local []int) {
			pred := coef[0]
			for d := range local {
				pred += coef[d+1] * float64(local[d])
			}
			out = append(out, pred-f.Data[flat])
		})
	}
	return out
}
