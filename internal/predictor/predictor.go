// Package predictor implements the three prediction schemes of the SZ
// family that the paper models: the Lorenzo predictor, the multilevel
// (spline) interpolation predictor, and the block-wise linear regression
// predictor. Each scheme provides two things:
//
//   - a deterministic walk over the field used by both compression and
//     decompression (prediction always reads previously *reconstructed*
//     values, so the decompressor can replay it bit-exactly), and
//   - the paper's sampling strategy (§III-C) that estimates the
//     prediction-error distribution from original values only, which is what
//     the ratio-quality model consumes.
package predictor

import (
	"fmt"
	"math"

	"rqm/internal/grid"
	"rqm/internal/stats"
)

// Kind enumerates the prediction schemes.
type Kind int

const (
	// Lorenzo is the order-1 Lorenzo predictor (rank 1–4).
	Lorenzo Kind = iota
	// Lorenzo2 is the order-2 Lorenzo predictor (1D only; used for particle
	// and time-series streams like HACC/Brown).
	Lorenzo2
	// Interpolation is SZ3-style multilevel linear interpolation.
	Interpolation
	// InterpolationCubic is the same walk with 4-point cubic interpolation
	// where enough neighbors exist (falls back to linear at boundaries).
	InterpolationCubic
	// Regression is the block-wise linear regression predictor (6^rank
	// blocks, coefficients stored as a side channel).
	Regression
)

// String returns the scheme name.
func (k Kind) String() string {
	switch k {
	case Lorenzo:
		return "lorenzo"
	case Lorenzo2:
		return "lorenzo2"
	case Interpolation:
		return "interpolation"
	case InterpolationCubic:
		return "interpolation-cubic"
	case Regression:
		return "regression"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a scheme name.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Lorenzo, Lorenzo2, Interpolation, InterpolationCubic, Regression} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("predictor: unknown kind %q", s)
}

// Visit is called once per sample in prediction order. It must write the
// reconstructed value into the walk's work buffer at idx (the Predictor
// reads it back for subsequent predictions).
type Visit func(idx int, pred float64)

// Predictor is one prediction scheme bound to no particular field; walks
// take dims and a work buffer explicitly.
type Predictor interface {
	// Kind returns the scheme identifier.
	Kind() Kind
	// Supports reports whether the scheme handles fields of the given rank.
	Supports(rank int) bool
	// CompressWalk visits every sample once. work holds original values on
	// entry; visit must store reconstructed values into work[idx]. The
	// returned aux bytes (possibly nil) must be given to DecompressWalk.
	CompressWalk(dims []int, work []float64, visit Visit) ([]byte, error)
	// DecompressWalk replays the identical order. work starts zeroed; visit
	// fills in reconstructed values.
	DecompressWalk(dims []int, work []float64, aux []byte, visit Visit) error
	// SampleErrors returns sampled prediction errors (predicted − original)
	// computed from original values only, using the scheme's sampling
	// strategy at the given rate, deterministically from seed.
	SampleErrors(f *grid.Field, rate float64, seed uint64) []float64
}

// New returns the predictor for a kind.
func New(kind Kind) (Predictor, error) {
	switch kind {
	case Lorenzo:
		return lorenzoPredictor{order: 1}, nil
	case Lorenzo2:
		return lorenzoPredictor{order: 2}, nil
	case Interpolation:
		return interpPredictor{cubic: false}, nil
	case InterpolationCubic:
		return interpPredictor{cubic: true}, nil
	case Regression:
		return regressionPredictor{}, nil
	}
	return nil, fmt.Errorf("predictor: unknown kind %d", int(kind))
}

// Kinds lists all implemented predictor kinds.
func Kinds() []Kind {
	return []Kind{Lorenzo, Lorenzo2, Interpolation, InterpolationCubic, Regression}
}

// strides returns row-major strides for dims.
func strides(dims []int) []int {
	s := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

func totalLen(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// sampleCap bounds sample slice pre-allocation.
func sampleCap(n int, rate float64) int {
	c := int(rate*float64(n)) + 16
	if c > n {
		c = n
	}
	return c
}

// checkWalkArgs validates the shared walk preconditions.
func checkWalkArgs(p Predictor, dims []int, work []float64) error {
	if !p.Supports(len(dims)) {
		return fmt.Errorf("predictor: %s does not support rank %d", p.Kind(), len(dims))
	}
	if totalLen(dims) != len(work) {
		return fmt.Errorf("predictor: work length %d does not match dims %v", len(work), dims)
	}
	return nil
}

// meanAbs is a small shared helper for tests and diagnostics.
func meanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

var _ = stats.MinMax // keep import stable while files are split
