// Package ans implements a table-based asymmetric numeral system (tANS)
// coder over uint32 symbols: the entropy stage that reaches fractional
// bits/symbol on the heavily skewed histograms SZ-style quantization
// produces, where a Huffman coder is pinned at 1 bit/symbol.
//
// # Construction
//
// Build normalizes the symbol histogram to sum exactly 2^tableLog
// (tableLog in [MinTableLog, MaxTableLog], grown to fit the alphabet;
// larger alphabets return ErrAlphabetTooLarge) by largest remainder with a
// deterministic adjustment order, then spreads symbols over the table with
// the coprime step size/2 + size/8 + 3. Every build from the same
// histogram yields the same table, so Serialize/Parse need only carry the
// normalized counts ([tableLog][uvarint n][uvarint symbol-delta, uvarint
// count]...), which Parse fully revalidates (sum, monotonicity, bounds)
// before reconstructing.
//
// # Bitstream invariants
//
// The coded stream is NOT a bitio stream; it has its own contract:
//
//   - Two interleaved states. Symbols alternate lanes by index parity
//     (lane = i % NumStates); each lane is an independent rANS-style state
//     x in [size, 2·size). Two lanes give the decoder two independent
//     dependency chains.
//
//   - Backward encode, forward decode (LIFO). Encode walks the symbols
//     from last to first, pushing nb-bit groups; Decode walks symbols
//     first to last, reading the bit groups in reverse stream order. The
//     final encoder states and the exact coded bit count are returned by
//     Encode and must be stored out of band (the compressor's container
//     records both); the stream itself is not self-terminating.
//
//   - Bit packing. Bit groups are packed LSB-first into a little-endian
//     accumulator and flushed byte-wise, so the decoder's backward read is
//     an unaligned little-endian load at (bitpos - nb). The final partial
//     byte is zero-padded toward the MSB; the stored bit count excludes
//     the padding.
//
//   - Validation. Decode checks both initial states against the table
//     size and every read against the declared bit count: corrupt states
//     return ErrCorrupt, an exhausted stream returns ErrTruncated, and no
//     input makes Decode panic or read out of bounds.
//
// Tables are pooled (Release) and the encode side optionally uses a dense
// LUT (FillLUT) so steady-state coding allocates nothing.
package ans
