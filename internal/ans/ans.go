package ans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
)

const (
	// DefaultTableLog is the table size exponent used when the alphabet
	// fits: 2^12 states balances ratio (quantization noise of the
	// normalized counts) against table build cost per chunk.
	DefaultTableLog = 12
	// MaxTableLog bounds the table size a Table will build or Parse will
	// accept: 2^16 states × ~16 bytes/entry keeps a pooled decode table
	// under 1 MiB and bit counts within a uint32 state.
	MaxTableLog = 16
	// MinTableLog keeps the state update sane for tiny alphabets.
	MinTableLog = 5
	// NumStates is the number of interleaved encoder/decoder states: even
	// symbol indices ride state 0, odd ride state 1, giving the decode loop
	// two independent dependency chains.
	NumStates = 2
)

// Typed errors; match with errors.Is.
var (
	// ErrAlphabetTooLarge marks a symbol set with more distinct symbols
	// than the largest permitted table; callers fall back to Huffman.
	ErrAlphabetTooLarge = errors.New("ans: alphabet larger than table")
	// ErrCorrupt marks a structurally invalid serialized table or stream.
	ErrCorrupt = errors.New("ans: corrupt table or stream")
	// ErrTruncated marks a bitstream that ran out before all symbols were
	// decoded.
	ErrTruncated = errors.New("ans: truncated stream")
)

// Table is a built tANS coding table: the normalized histogram plus the
// derived spread, decode entries, and per-symbol encode transitions. Encode
// and decode tables are always built together (they are cheap relative to a
// chunk) so one Table serves both directions.
type Table struct {
	tableLog uint
	size     uint32 // 1 << tableLog
	// Canonical (symbol-ascending) normalized histogram, counts sum to size.
	syms []uint32
	norm []uint32
	// Decode: state in [0,size) → symbol, bit count, next-state base.
	dsym  []uint32
	dbits []uint8
	dnew  []uint32
	// Encode: for canonical symbol index j, states[normBase[j] + (x -
	// norm[j])] is the next table position for sub-state x in
	// [norm[j], 2·norm[j]).
	normBase []uint32
	estate   []uint32
	// index maps symbol → canonical position (encode-side lookup).
	index map[uint32]int
	// scratch is the per-symbol next-sub-state counter assemble reuses.
	scratch []uint32
	// maxSym is the largest symbol value (dense-LUT sizing bound).
	maxSym uint32
}

// tablePool recycles Table shells and their slices: chunk-rate encode and
// decode must not allocate a fresh multi-KB table set per chunk (the PR 4
// arena discipline, extended to the ANS stage).
var tablePool = sync.Pool{New: func() interface{} { return &Table{} }}

// Release returns the table to the pool. The caller must not use it after.
func (t *Table) Release() {
	t.syms = t.syms[:0]
	t.norm = t.norm[:0]
	t.index = nil
	t.maxSym = 0
	tablePool.Put(t)
}

// TableLog returns the table size exponent.
func (t *Table) TableLog() uint { return t.tableLog }

// NumSymbols returns the alphabet size.
func (t *Table) NumSymbols() int { return len(t.syms) }

// MaxSymbol returns the largest symbol value in the table.
func (t *Table) MaxSymbol() uint32 { return t.maxSym }

// Build constructs a tANS table from symbol frequencies, choosing the
// smallest adequate table log in [DefaultTableLog, MaxTableLog]. Zero-count
// symbols are ignored; at least one positive count is required. Returns
// ErrAlphabetTooLarge when the distinct symbols cannot each hold one state
// slot at MaxTableLog.
func Build(freqs map[uint32]int64) (*Table, error) {
	type sf struct {
		sym  uint32
		freq int64
	}
	items := make([]sf, 0, len(freqs))
	for s, f := range freqs {
		if f > 0 {
			items = append(items, sf{s, f})
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: no symbols with positive frequency", ErrCorrupt)
	}
	slices.SortFunc(items, func(a, b sf) int {
		if a.sym < b.sym {
			return -1
		}
		return 1
	})
	tableLog := uint(DefaultTableLog)
	for 1<<tableLog < len(items) && tableLog < MaxTableLog {
		tableLog++
	}
	if len(items) > 1<<tableLog {
		return nil, fmt.Errorf("%w: %d distinct symbols, max %d", ErrAlphabetTooLarge, len(items), 1<<MaxTableLog)
	}

	// Normalize counts to sum exactly 2^tableLog with every count >= 1.
	// Largest-remainder style: floor-scale with a minimum of 1, then settle
	// the drift against the most frequent symbols (deterministically).
	size := int64(1) << tableLog
	var total int64
	for _, it := range items {
		total += it.freq
	}
	norm := make([]uint32, len(items))
	var used int64
	for i, it := range items {
		n := it.freq * size / total
		if n == 0 {
			n = 1
		}
		norm[i] = uint32(n)
		used += n
	}
	// ord: positions sorted by (freq desc, sym asc) — adjustment order.
	ord := make([]int, len(items))
	for i := range ord {
		ord[i] = i
	}
	slices.SortFunc(ord, func(a, b int) int {
		if items[a].freq != items[b].freq {
			if items[a].freq > items[b].freq {
				return -1
			}
			return 1
		}
		if items[a].sym < items[b].sym {
			return -1
		}
		return 1
	})
	for used < size {
		for _, i := range ord {
			if used == size {
				break
			}
			norm[i]++
			used++
		}
	}
	for used > size {
		shrunk := false
		for _, i := range ord {
			if used == size {
				break
			}
			if norm[i] > 1 {
				norm[i]--
				used--
				shrunk = true
			}
		}
		if used > size && !shrunk {
			return nil, fmt.Errorf("%w: cannot normalize %d symbols into %d states", ErrAlphabetTooLarge, len(items), size)
		}
	}

	syms := make([]uint32, len(items))
	for i, it := range items {
		syms[i] = it.sym
	}
	return assemble(tableLog, syms, norm)
}

// assemble builds the spread and the encode/decode tables from a normalized
// histogram (counts sum to 1<<tableLog, each >= 1, symbols ascending).
func assemble(tableLog uint, syms []uint32, norm []uint32) (*Table, error) {
	t := tablePool.Get().(*Table)
	t.tableLog = tableLog
	t.size = 1 << tableLog
	size := int(t.size)
	t.syms = append(t.syms[:0], syms...)
	t.norm = append(t.norm[:0], norm...)
	t.index = make(map[uint32]int, len(syms))
	t.maxSym = 0
	for i, s := range syms {
		t.index[s] = i
		if s > t.maxSym {
			t.maxSym = s
		}
	}

	if cap(t.dsym) < size {
		t.dsym = make([]uint32, size)
		t.dbits = make([]uint8, size)
		t.dnew = make([]uint32, size)
		t.estate = make([]uint32, size)
	}
	t.dsym = t.dsym[:size]
	t.dbits = t.dbits[:size]
	t.dnew = t.dnew[:size]
	t.estate = t.estate[:size]
	if cap(t.normBase) < len(syms) {
		t.normBase = make([]uint32, len(syms))
	}
	t.normBase = t.normBase[:len(syms)]

	// Spread symbols across the state table with the standard coprime step;
	// precise placement only needs to match between assemble calls (the
	// serialized form carries the histogram, not the spread).
	step := t.size>>1 + t.size>>3 + 3
	mask := t.size - 1
	pos := uint32(0)
	for j := range syms {
		for c := uint32(0); c < norm[j]; c++ {
			t.dsym[pos] = uint32(j) // canonical index; resolved to symbol below
			pos = (pos + step) & mask
		}
	}
	if pos != 0 {
		return nil, fmt.Errorf("%w: spread did not close", ErrCorrupt)
	}

	// Encode base offsets: estate segment per canonical symbol.
	var base uint32
	for j, n := range norm {
		t.normBase[j] = base
		base += n
	}

	// Decode entries + encode transitions in one pass over the table. The
	// k-th state slot of symbol j (sub-state x = norm[j]+k) is table
	// position p: decoding from p emits j and refills to x<<bits | read;
	// encoding j from sub-state x jumps to p.
	if cap(t.scratch) < len(syms) {
		t.scratch = make([]uint32, len(syms))
	}
	next := t.scratch[:len(syms)]
	copy(next, norm)
	for p := 0; p < size; p++ {
		j := t.dsym[p]
		x := next[j]
		next[j]++
		nb := tableLog - uint(bits.Len32(x)) + 1 // bits to refill x back into [size, 2·size)
		t.dbits[p] = uint8(nb)
		t.dnew[p] = x<<nb - t.size
		t.estate[t.normBase[j]+(x-norm[j])] = uint32(p)
		t.dsym[p] = t.syms[j]
	}
	return t, nil
}

// MeanBits computes the modeled average code length in bits/symbol under the
// table's own normalized histogram: Σ p·log2(size/norm) — the ANS analogue
// of huffman.MeanBits.
func (t *Table) MeanBits() float64 {
	var b float64
	size := float64(t.size)
	for _, n := range t.norm {
		p := float64(n) / size
		b += p * (float64(t.tableLog) - math.Log2(float64(n)))
	}
	return b
}

// Encode compresses syms with NumStates interleaved states into a backward
// bitstream. Returns the stream bytes, the final states (one per lane), and
// the total bit count. Symbols must all be present in the table. The
// returned buffer is appended to dst (pass nil to allocate).
func (t *Table) Encode(dst []byte, syms []uint32, lut []uint32) ([]byte, [NumStates]uint32, uint64, error) {
	var states [NumStates]uint32
	for i := range states {
		states[i] = t.size // normalized state range is [size, 2·size)
	}
	var acc uint64
	var accN uint
	var totalBits uint64
	buf := dst
	// Encoding walks the symbols backward so the decoder (which pops
	// last-pushed first) emits them forward; lane i%NumStates keeps
	// per-lane order consistent with the decoder's forward walk.
	for i := len(syms) - 1; i >= 0; i-- {
		s := syms[i]
		var j int
		if lut != nil && int64(s) < int64(len(lut)) && lut[s] != lutAbsent {
			j = int(lut[s])
		} else {
			var ok bool
			j, ok = t.index[s]
			if !ok {
				return nil, states, 0, fmt.Errorf("%w: symbol %d not in table", ErrCorrupt, s)
			}
		}
		n := t.norm[j]
		lane := i % NumStates
		x := states[lane]
		// Shift x down into the symbol's sub-state range [n, 2n); the
		// shifted-out low bits go to the stream (LSB-first, forward).
		nb := uint(0)
		for x>>nb >= n<<1 {
			nb++
		}
		if nb > 0 {
			acc |= uint64(x&(1<<nb-1)) << accN
			accN += nb
			totalBits += uint64(nb)
			for accN >= 8 {
				buf = append(buf, byte(acc))
				acc >>= 8
				accN -= 8
			}
		}
		states[lane] = t.estate[t.normBase[j]+(x>>nb-n)] + t.size
	}
	if accN > 0 {
		buf = append(buf, byte(acc))
	}
	for i := range states {
		states[i] -= t.size // store normalized to [0, size)
	}
	return buf, states, totalBits, nil
}

// lutAbsent marks an empty encode-LUT slot (no symbol maps to it).
const lutAbsent = ^uint32(0)

// FillLUT writes each table symbol's canonical index into lut[sym] and
// lutAbsent elsewhere; len(lut) must exceed MaxSymbol(). Unlike the Huffman
// LUT the absent marker is required, because Encode validates membership
// through it.
func (t *Table) FillLUT(lut []uint32) {
	for i := range lut {
		lut[i] = lutAbsent
	}
	for j, s := range t.syms {
		lut[s] = uint32(j)
	}
}

// Decode reconstructs len(out) symbols from a backward bitstream produced by
// Encode with the given final states and bit count. It never reads outside
// stream and returns typed errors on truncation or corruption.
func (t *Table) Decode(stream []byte, states [NumStates]uint32, totalBits uint64, out []uint32) error {
	if totalBits > uint64(len(stream))*8 {
		return fmt.Errorf("%w: %d bits declared, %d bytes present", ErrTruncated, totalBits, len(stream))
	}
	var st [NumStates]uint32
	for i, s := range states {
		if s >= t.size {
			return fmt.Errorf("%w: state %d outside table of %d", ErrCorrupt, s, t.size)
		}
		st[i] = s
	}
	bitpos := totalBits
	dsym, dbits, dnew := t.dsym, t.dbits, t.dnew
	for i := range out {
		lane := i % NumStates
		x := st[lane]
		out[i] = dsym[x]
		nb := uint(dbits[x])
		var refill uint32
		if nb > 0 {
			if uint64(nb) > bitpos {
				return fmt.Errorf("%w: at symbol %d", ErrTruncated, i)
			}
			bitpos -= uint64(nb)
			refill = readBitsAt(stream, bitpos, nb)
		}
		ns := dnew[x] + refill
		if ns >= t.size {
			return fmt.Errorf("%w: refilled state %d outside table at symbol %d", ErrCorrupt, ns, i)
		}
		st[lane] = ns
	}
	return nil
}

// readBitsAt extracts nb (< 25) bits starting at bit offset pos from an
// LSB-first bitstream. The fast path does one unaligned little-endian load;
// the tail falls back to a bounded byte loop.
func readBitsAt(stream []byte, pos uint64, nb uint) uint32 {
	idx := int(pos >> 3)
	shift := uint(pos & 7)
	if idx+8 <= len(stream) {
		w := binary.LittleEndian.Uint64(stream[idx:])
		return uint32(w>>shift) & (1<<nb - 1)
	}
	var w uint64
	for k := 0; idx+k < len(stream) && k < 8; k++ {
		w |= uint64(stream[idx+k]) << (8 * uint(k))
	}
	return uint32(w>>shift) & (1<<nb - 1)
}

// Serialize emits the table's normalized histogram: one byte tableLog, a
// uvarint symbol count, then per symbol (value-ascending) a uvarint symbol
// delta (+1 from previous, first absolute) and a uvarint normalized count.
// Parse reconstructs an identical table because the spread is a pure
// function of (tableLog, histogram).
func (t *Table) Serialize() []byte {
	buf := make([]byte, 0, len(t.syms)*3+8)
	buf = append(buf, byte(t.tableLog))
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], uint64(len(t.syms)))
	buf = append(buf, tmp[:k]...)
	prev := int64(-1)
	for j, s := range t.syms {
		k = binary.PutUvarint(tmp[:], uint64(int64(s)-prev))
		buf = append(buf, tmp[:k]...)
		k = binary.PutUvarint(tmp[:], uint64(t.norm[j]))
		buf = append(buf, tmp[:k]...)
		prev = int64(s)
	}
	return buf
}

// Parse reconstructs a table serialized by Serialize, returning the byte
// count consumed. All structural invariants are re-validated, so a corrupt
// or adversarial input yields a typed error, never a panic or an
// inconsistent table.
func Parse(data []byte) (*Table, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("%w: table shorter than 2 bytes", ErrCorrupt)
	}
	tableLog := uint(data[0])
	if tableLog < MinTableLog || tableLog > MaxTableLog {
		return nil, 0, fmt.Errorf("%w: table log %d outside %d..%d", ErrCorrupt, tableLog, MinTableLog, MaxTableLog)
	}
	pos := 1
	n64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad symbol count", ErrCorrupt)
	}
	pos += k
	if n64 == 0 || n64 > 1<<tableLog {
		return nil, 0, fmt.Errorf("%w: %d symbols for table log %d", ErrCorrupt, n64, tableLog)
	}
	n := int(n64)
	syms := make([]uint32, n)
	norm := make([]uint32, n)
	prev := int64(-1)
	var sum uint64
	for j := 0; j < n; j++ {
		d, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("%w: truncated symbol delta", ErrCorrupt)
		}
		pos += k
		if d == 0 {
			return nil, 0, fmt.Errorf("%w: zero symbol delta", ErrCorrupt)
		}
		sym := prev + int64(d)
		if sym < 0 || sym > int64(^uint32(0)) {
			return nil, 0, fmt.Errorf("%w: symbol out of range", ErrCorrupt)
		}
		c, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("%w: truncated count", ErrCorrupt)
		}
		pos += k
		if c == 0 || c > 1<<tableLog {
			return nil, 0, fmt.Errorf("%w: count %d for table log %d", ErrCorrupt, c, tableLog)
		}
		syms[j] = uint32(sym)
		norm[j] = uint32(c)
		sum += c
		prev = sym
	}
	if sum != 1<<tableLog {
		return nil, 0, fmt.Errorf("%w: counts sum %d, want %d", ErrCorrupt, sum, 1<<tableLog)
	}
	t, err := assemble(tableLog, syms, norm)
	if err != nil {
		return nil, 0, err
	}
	return t, pos, nil
}
