package ans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func freqsOf(syms []uint32) map[uint32]int64 {
	m := map[uint32]int64{}
	for _, s := range syms {
		m[s]++
	}
	return m
}

func roundTrip(t *testing.T, syms []uint32) {
	t.Helper()
	tab, err := Build(freqsOf(syms))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer tab.Release()
	stream, states, bits, err := tab.Encode(nil, syms, nil)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Re-parse the serialized table: decoding must work from the wire form.
	ser := tab.Serialize()
	tab2, n, err := Parse(ser)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	defer tab2.Release()
	if n != len(ser) {
		t.Fatalf("Parse consumed %d of %d bytes", n, len(ser))
	}
	out := make([]uint32, len(syms))
	if err := tab2.Decode(stream, states, bits, out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range out {
		if out[i] != syms[i] {
			t.Fatalf("symbol %d: decoded %d, want %d", i, out[i], syms[i])
		}
	}
}

func TestRoundTripShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]uint32{
		{7},
		{7, 7, 7},
		{1, 2},
		{1, 2, 3, 4, 5},
	}
	// Quantization-code-like: concentrated around 32768.
	big := make([]uint32, 100000)
	for i := range big {
		v := 32768
		for rng.Intn(2) == 0 && v < 32800 {
			v++
		}
		if rng.Intn(2) == 0 {
			v = 32768 - (v - 32768)
		}
		big[i] = uint32(v)
	}
	cases = append(cases, big)
	// Uniform over a wide alphabet.
	wide := make([]uint32, 50000)
	for i := range wide {
		wide[i] = uint32(rng.Intn(3000))
	}
	cases = append(cases, wide)
	// Skewed with rare outliers.
	skew := make([]uint32, 20000)
	for i := range skew {
		if rng.Intn(1000) == 0 {
			skew[i] = uint32(1 << 20)
		} else {
			skew[i] = uint32(rng.Intn(3))
		}
	}
	cases = append(cases, skew)
	for ci, syms := range cases {
		t.Logf("case %d: %d symbols", ci, len(syms))
		roundTrip(t, syms)
	}
}

func TestCompressionBeatsLog2Alphabet(t *testing.T) {
	// A heavily skewed stream must code well below 1 bit/symbol — the
	// capability Huffman lacks and the reason the codec exists.
	rng := rand.New(rand.NewSource(2))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		if rng.Intn(100) == 0 {
			syms[i] = uint32(1 + rng.Intn(4))
		}
	}
	tab, err := Build(freqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Release()
	stream, _, bits, err := tab.Encode(nil, syms, nil)
	if err != nil {
		t.Fatal(err)
	}
	bps := float64(bits) / float64(len(syms))
	if bps >= 0.5 {
		t.Fatalf("99%%-zero stream coded at %.3f bits/symbol; want < 0.5", bps)
	}
	if len(stream)*8 < int(bits) {
		t.Fatalf("stream of %d bytes cannot hold %d bits", len(stream), bits)
	}
	// The modeled mean must track the realized rate.
	if mb := tab.MeanBits(); math.Abs(mb-bps) > 0.15*bps+0.05 {
		t.Fatalf("MeanBits %.3f vs realized %.3f bits/symbol", mb, bps)
	}
}

func TestEncodeLUTMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint32, 10000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(50))
	}
	tab, err := Build(freqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Release()
	lut := make([]uint32, tab.MaxSymbol()+1)
	tab.FillLUT(lut)
	sa, stA, bitsA, err := tab.Encode(nil, syms, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, stB, bitsB, err := tab.Encode(nil, syms, lut)
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) || stA != stB || bitsA != bitsB {
		t.Fatal("LUT and map encodes differ")
	}
}

func TestUnknownSymbolErrors(t *testing.T) {
	tab, err := Build(map[uint32]int64{1: 5, 2: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Release()
	if _, _, _, err := tab.Encode(nil, []uint32{1, 99}, nil); err == nil {
		t.Fatal("want error encoding symbol outside table")
	}
}

func TestAlphabetTooLarge(t *testing.T) {
	freqs := map[uint32]int64{}
	for s := uint32(0); s < (1<<MaxTableLog)+1; s++ {
		freqs[s] = 1
	}
	if _, err := Build(freqs); !errors.Is(err, ErrAlphabetTooLarge) {
		t.Fatalf("got %v, want ErrAlphabetTooLarge", err)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	syms := []uint32{1, 1, 2, 3, 3, 3, 4}
	tab, err := Build(freqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Release()
	good := tab.Serialize()
	if _, _, err := Parse(nil); err == nil {
		t.Fatal("nil table parsed")
	}
	if _, _, err := Parse(good[:1]); err == nil {
		t.Fatal("1-byte table parsed")
	}
	for i := range good {
		for delta := byte(1); delta < 4; delta++ {
			bad := append([]byte(nil), good...)
			bad[i] += delta
			if _, n, err := Parse(bad); err == nil {
				// A mutation may still parse structurally (e.g. the symbol
				// delta changed); it must at least consume what it declared
				// and round-trip internally consistent.
				if n <= 0 || n > len(bad) {
					t.Fatalf("byte %d: accepted with bad length %d", i, n)
				}
			}
		}
	}
	// Truncations must never parse to success past the histogram sum check
	// and must never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, _, err := Parse(good[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed", cut)
		}
	}
}

func TestDecodeRejectsBadStatesAndTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(rng.Intn(16))
	}
	tab, err := Build(freqsOf(syms))
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Release()
	stream, states, bits, err := tab.Encode(nil, syms, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(syms))
	bad := states
	bad[0] = 1 << MaxTableLog
	if err := tab.Decode(stream, bad, bits, out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range state: got %v", err)
	}
	if err := tab.Decode(stream[:len(stream)/2], states, bits, out); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short stream: got %v", err)
	}
	if err := tab.Decode(stream, states, bits/2, out); !errors.Is(err, ErrTruncated) {
		// Fewer declared bits than the symbols need must surface as
		// truncation (never an out-of-bounds read).
		t.Fatalf("short bit count: got %v", err)
	}
}

func FuzzParse(f *testing.F) {
	syms := []uint32{1, 1, 2, 3, 3, 3, 4, 70000}
	tab, err := Build(freqsOf(syms))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tab.Serialize())
	tab.Release()
	f.Add([]byte{12, 1, 1, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, n, err := Parse(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// An accepted table must round-trip through Serialize/Parse.
		ser := tab.Serialize()
		tab2, _, err := Parse(ser)
		if err != nil {
			t.Fatalf("re-parse of accepted table: %v", err)
		}
		tab2.Release()
		tab.Release()
	})
}
