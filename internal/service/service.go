// Package service is the HTTP serving layer over the ratio-quality engine:
// one process exposing compression, decompression, and — the paper's core
// asset — O(sample)-time ratio/quality answers from a profile cache. A field
// is profiled once (one cheap sampling pass, POST /v1/profile); every
// subsequent estimate and inverse solve is served from the cached profile
// with no compression run and no re-sampling, the "predict before you
// compress" pattern at serving scale.
//
// Endpoints:
//
//	POST /v1/compress    .rqmf field body -> sealed container (query/header
//	                     scoped codec options; bodies above the stream
//	                     threshold flow through the chunked pipeline;
//	                     adaptive-space=1 with a model target switches chunk
//	                     planning to variance-guided spatial partitioning)
//	POST /v1/decompress  container body -> .rqmf field (chunked containers
//	                     stream; routing is self-describing)
//	POST /v1/profile     .rqmf field body -> profile ID + ratio-quality curve
//	                     (LRU-cached by content hash)
//	GET  /v1/estimate    ?profile=ID&eb=..&mode=abs|rel -> model estimate
//	GET  /v1/solve       ?profile=ID&target-ratio|target-psnr|target-bitrate
//	GET  /healthz        liveness
//	GET  /metrics        counters (requests, cache hits, inflight, store, ...)
//
// With a configured Store the service also hosts the persistent dataset
// archive under /v1/datasets (put/get/delete, random-access slice reads,
// model-guided recompaction) — see datasets.go and internal/store.
//
// Heavy endpoints (compress, decompress, profile) are admission-controlled
// by a permit semaphore: past MaxInflight concurrent requests the service
// answers 429 instead of queueing unboundedly. Estimate and solve are cheap
// and always admitted. Failures return a typed JSON error envelope; the
// container error taxonomy maps onto stable codes (see errors.go).
package service

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/store"
)

// DefaultStreamThreshold is the request-body size at which compress switches
// to the chunked streaming pipeline (64 MiB, matching the rqc CLI).
const DefaultStreamThreshold = 64 << 20

// maxBufferedBody caps bodies the non-streaming handlers materialize, so a
// single oversized upload cannot exhaust memory (1 GiB).
const maxBufferedBody = 1 << 30

// Config assembles a Service.
type Config struct {
	// Engine is the configured compression engine requests derive from
	// (nil = rqm.NewEngine defaults: prediction codec, REL 1e-3).
	Engine *rqm.Engine
	// Model tunes the ratio-quality model behind /v1/profile.
	Model rqm.ModelOptions
	// MaxInflight bounds concurrently admitted heavy requests
	// (0 = 4 x engine concurrency).
	MaxInflight int
	// ProfileCacheSize bounds the LRU profile cache entries (0 = 128).
	ProfileCacheSize int
	// StreamThreshold is the compress body size that triggers the chunked
	// streaming pipeline (0 = DefaultStreamThreshold, < 0 disables).
	StreamThreshold int64
	// Store is the persistent dataset archive behind the /v1/datasets
	// endpoints (nil = dataset endpoints answer 501 store_disabled).
	Store *store.Store
}

// Service is the HTTP handler set. Construct with New; a Service is safe for
// concurrent use.
type Service struct {
	eng       *rqm.Engine
	model     rqm.ModelOptions
	cache     *profileCache
	store     *store.Store
	sem       chan struct{}
	threshold int64
	mux       *http.ServeMux
	start     time.Time
	draining  atomic.Bool

	// snapMu separates counter increments (read-locked, concurrent) from
	// Snapshot's write-locked pass: a /metrics scrape always reads one
	// consistent cut of the counters, never a torn mix where e.g. an error
	// is counted but its request is not.
	snapMu sync.RWMutex

	reqTotal      atomic.Int64
	errTotal      atomic.Int64
	rejected      atomic.Int64
	profileBuilds atomic.Int64
	profileHits   atomic.Int64
	evictions     atomic.Int64
	estimates     atomic.Int64
	solves        atomic.Int64
	compresses    atomic.Int64
	decompresses  atomic.Int64

	datasetPuts    atomic.Int64
	datasetRawPuts atomic.Int64
	datasetGets    atomic.Int64
	datasetDeletes atomic.Int64
	sliceReads     atomic.Int64
	recompactions  atomic.Int64
	recompactSkips atomic.Int64

	// Residual-layer counters: bit-exact reads served (full gets and exact
	// slices), and promote/demote transitions between the quality tiers.
	exactReads atomic.Int64
	promotes   atomic.Int64
	demotes    atomic.Int64

	// Partition-layer counters: adaptive-space runs (compressions and
	// recompactions planned by a spatial partitioner) and the regions/splits
	// those plans produced.
	adaptiveSpaceRuns atomic.Int64
	partitionRegions  atomic.Int64
	partitionSplits   atomic.Int64

	// Scrub job state (see scrub.go): one background integrity pass at a
	// time, guarded by its own mutex — progress updates must not contend
	// with the counter fast path.
	scrubMu  sync.Mutex
	scrubJob *scrubJob
}

// New builds a Service from cfg.
func New(cfg Config) (*Service, error) {
	eng := cfg.Engine
	if eng == nil {
		var err error
		if eng, err = rqm.NewEngine(); err != nil {
			return nil, err
		}
	}
	inflight := cfg.MaxInflight
	if inflight == 0 {
		inflight = 4 * eng.Concurrency()
	}
	if inflight < 1 {
		inflight = 1
	}
	cacheSize := cfg.ProfileCacheSize
	if cacheSize == 0 {
		cacheSize = 128
	}
	threshold := cfg.StreamThreshold
	if threshold == 0 {
		threshold = DefaultStreamThreshold
	}
	s := &Service{
		eng:       eng,
		model:     cfg.Model,
		cache:     newProfileCache(cacheSize),
		store:     cfg.Store,
		sem:       make(chan struct{}, inflight),
		threshold: threshold,
		mux:       http.NewServeMux(),
		start:     time.Now(),
	}
	s.mux.Handle("/healthz", s.handle(http.MethodGet, false, s.handleHealthz))
	s.mux.Handle("/metrics", s.handle(http.MethodGet, false, s.handleMetrics))
	s.mux.Handle("/v1/compress", s.handle(http.MethodPost, true, s.handleCompress))
	s.mux.Handle("/v1/decompress", s.handle(http.MethodPost, true, s.handleDecompress))
	s.mux.Handle("/v1/profile", s.handle(http.MethodPost, true, s.handleProfile))
	s.mux.Handle("/v1/estimate", s.handle(http.MethodGet, false, s.handleEstimate))
	s.mux.Handle("/v1/solve", s.handle(http.MethodGet, false, s.handleSolve))
	// Dataset archive. Registered unconditionally — without a store they
	// answer a typed 501 — so clients get a stable error, not a bare 404.
	s.mux.Handle("/v1/datasets", s.handle(http.MethodGet, false, s.handleDatasetList))
	s.mux.Handle("/v1/datasets/{name}", s.dispatch(map[string]endpoint{
		http.MethodPost: {heavy: true, fn: s.handleDatasetPut},
		// GET admits itself: a ?manifest=1 stat is a metadata read that must
		// not burn (or be rejected for) a compress-class permit.
		http.MethodGet:    {heavy: false, fn: s.handleDatasetGet},
		http.MethodDelete: {heavy: false, fn: s.handleDatasetDelete},
	}))
	s.mux.Handle("/v1/datasets/{name}/slice", s.handle(http.MethodGet, true, s.handleDatasetSlice))
	// Integrity: POST starts one background scrub pass over the archive
	// (progress via GET /v1/scrub/status). Registered as light endpoints —
	// the pass itself runs outside the admission semaphore (see scrub.go).
	s.mux.Handle("/v1/scrub", s.handle(http.MethodPost, false, s.handleScrubStart))
	s.mux.Handle("/v1/scrub/status", s.handle(http.MethodGet, false, s.handleScrubStatus))
	s.mux.Handle("/v1/datasets/{name}/recompact", s.handle(http.MethodPost, true, s.handleDatasetRecompact))
	// Progressive quality: promote installs a residual layer over the lossy
	// base (body = the original field), demote drops it. See residual.go.
	s.mux.Handle("/v1/datasets/{name}/promote", s.handle(http.MethodPost, true, s.handleDatasetPromote))
	s.mux.Handle("/v1/datasets/{name}/demote", s.handle(http.MethodPost, true, s.handleDatasetDemote))
	// Replication plumbing: a raw put admits an already-compressed container
	// verbatim (manifest framed ahead of it), so replica repair and shard
	// rebalancing never decompress or recompress. See handleDatasetRawPut.
	s.mux.Handle("/v1/datasets/{name}/raw", s.handle(http.MethodPost, true, s.handleDatasetRawPut))
	return s, nil
}

// BeginDrain flips the service into graceful-shutdown drain: /healthz
// readiness turns 503 ("draining") while in-flight work finishes, so a
// router health probe stops sending new requests to this shard BEFORE its
// listener closes. Liveness (?live=1) stays 200 — the process is healthy,
// just leaving. Idempotent.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// ServeHTTP dispatches to the endpoint handlers.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// FlushProfiles empties the profile cache (operational hook; benchmarks use
// it to force the cold path).
func (s *Service) FlushProfiles() { s.cache.purge() }

// endpoint pairs one method's handler with its admission class.
type endpoint struct {
	heavy bool
	fn    func(http.ResponseWriter, *http.Request) error
}

// handle wraps one single-method endpoint (see dispatch).
func (s *Service) handle(method string, heavy bool, fn func(http.ResponseWriter, *http.Request) error) http.Handler {
	return s.dispatch(map[string]endpoint{method: {heavy: heavy, fn: fn}})
}

// dispatch wraps one route with per-method handlers: method gate, admission
// control for heavy endpoints, request accounting, and error-envelope
// rendering.
func (s *Service) dispatch(eps map[string]endpoint) http.Handler {
	methods := make([]string, 0, len(eps))
	for m := range eps {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	allow := strings.Join(methods, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.count(&s.reqTotal, 1)
		ep, ok := eps[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			s.count(&s.errTotal, 1)
			writeError(w, errf(http.StatusMethodNotAllowed, "method_not_allowed",
				"%s only accepts %s", r.URL.Path, allow))
			return
		}
		if ep.heavy {
			release, err := s.admit(w)
			if err != nil {
				s.count(&s.errTotal, 1)
				writeError(w, err)
				return
			}
			defer release()
		}
		if err := ep.fn(w, r); err != nil {
			s.count(&s.errTotal, 1)
			writeError(w, err)
		}
	})
}

// admit claims one heavy-request permit, returning its release function —
// or the typed 429 (Retry-After set) when the service is at its limit.
// Handlers whose cost depends on the request (e.g. a dataset GET that is a
// metadata stat or a full decompress) call it themselves after the cheap
// branch.
func (s *Service) admit(w http.ResponseWriter) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
		s.count(&s.rejected, 1)
		w.Header().Set("Retry-After", "1")
		return nil, errf(http.StatusTooManyRequests, "too_many_requests",
			"service at its %d-request concurrency limit", cap(s.sem))
	}
}

// ---------------------------------------------------------------------------
// Request-scoped options

// param reads a request-scoped option from the query string, falling back to
// the X-RQM-<name> header.
func param(q url.Values, h http.Header, name string) string {
	if v := q.Get(name); v != "" {
		return v
	}
	return h.Get("X-RQM-" + name)
}

// engineFor derives the engine serving one request: the base engine unless
// codec options appear in the query/headers, in which case a request-scoped
// engine is built from the base configuration plus the overrides.
func (s *Service) engineFor(q url.Values, h http.Header) (*rqm.Engine, error) {
	names := []string{"codec", "predictor", "mode", "eb", "lossless"}
	override := false
	for _, n := range names {
		if param(q, h, n) != "" {
			override = true
			break
		}
	}
	if !override {
		return s.eng, nil
	}
	base := s.eng.Options()
	opts := []rqm.EngineOption{
		rqm.WithCodec(s.eng.Codec()),
		rqm.WithMode(base.Mode),
		rqm.WithErrorBound(base.ErrorBound),
		rqm.WithPredictor(base.Predictor),
		rqm.WithLossless(base.Lossless),
		rqm.WithRadius(base.Radius),
		rqm.WithConcurrency(s.eng.Concurrency()),
		rqm.WithModelOptions(s.model),
	}
	if v := param(q, h, "codec"); v != "" {
		opts = append(opts, rqm.WithCodecName(v))
	}
	if v := param(q, h, "predictor"); v != "" {
		k, err := rqm.ParsePredictorKind(v)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_param", "predictor: %v", err)
		}
		opts = append(opts, rqm.WithPredictor(k))
	}
	if v := param(q, h, "mode"); v != "" {
		m, err := rqm.ParseErrorMode(v)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_param", "mode: %v", err)
		}
		opts = append(opts, rqm.WithMode(m))
	}
	if v := param(q, h, "eb"); v != "" {
		eb, err := strconv.ParseFloat(v, 64)
		if err != nil || !(eb > 0) {
			return nil, errf(http.StatusBadRequest, "bad_param", "eb: %q is not a positive number", v)
		}
		opts = append(opts, rqm.WithErrorBound(eb))
	}
	if v := param(q, h, "lossless"); v != "" {
		l, err := rqm.ParseLosslessKind(v)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_param", "lossless: %v", err)
		}
		opts = append(opts, rqm.WithLossless(l))
	}
	eng, err := rqm.NewEngine(opts...)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad_param", "%v", err)
	}
	return eng, nil
}

// floatParam parses an optional positive float parameter.
func floatParam(q url.Values, h http.Header, name string) (float64, bool, error) {
	v := param(q, h, name)
	if v == "" {
		return 0, false, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false, errf(http.StatusBadRequest, "bad_param", "%s: %q is not a number", name, v)
	}
	return f, true, nil
}

// ---------------------------------------------------------------------------
// Health and metrics

// HealthResponse is the /healthz body. Status is "ok" or "draining"; Store
// and Datasets report the shard's archive so a router can read capacity at
// probe time without a second request.
type HealthResponse struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Codec         string   `json:"codec"`
	Codecs        []string `json:"codecs"`
	Store         bool     `json:"store"`
	Datasets      int      `json:"datasets"`
}

// handleHealthz serves both health probes: readiness by default (503 with
// status "draining" once BeginDrain has been called, so a router stops
// routing to a dying shard before its listener closes), and pure liveness
// with ?live=1 (200 for as long as the process can answer at all).
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	hr := &HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Codec:         s.eng.Codec().Name(),
		Codecs:        rqm.CodecNames(),
		Store:         s.store != nil,
	}
	if s.store != nil {
		_, hr.Datasets = s.store.Bytes()
	}
	status := http.StatusOK
	if s.draining.Load() && param(r.URL.Query(), r.Header, "live") != "1" {
		hr.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	return writeJSON(w, status, hr)
}

// MetricsSnapshot is the /metrics body: monotonic counters plus gauges.
type MetricsSnapshot struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	Rejected       int64   `json:"rejected"`
	Inflight       int     `json:"inflight"`
	MaxInflight    int     `json:"max_inflight"`
	Compresses     int64   `json:"compresses"`
	Decompresses   int64   `json:"decompresses"`
	ProfileBuilds  int64   `json:"profile_builds"`
	ProfileHits    int64   `json:"profile_hits"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions int64   `json:"cache_evictions"`
	Estimates      int64   `json:"estimates"`
	Solves         int64   `json:"solves"`

	// Dataset-store counters and gauges (all zero without a store).
	StoreEnabled         bool  `json:"store_enabled"`
	DatasetPuts          int64 `json:"dataset_puts"`
	DatasetRawPuts       int64 `json:"dataset_raw_puts"`
	DatasetGets          int64 `json:"dataset_gets"`
	DatasetDeletes       int64 `json:"dataset_deletes"`
	SliceReads           int64 `json:"slice_reads"`
	Recompactions        int64 `json:"recompactions"`
	RecompactionsSkipped int64 `json:"recompactions_skipped"`
	Datasets             int   `json:"datasets"`
	StoreBytes           int64 `json:"store_bytes"`
	StoreWrites          int64 `json:"store_writes"`
	StoreChunkReads      int64 `json:"store_chunk_reads"`

	// Residual-layer counters and gauges: bytes of stored residual files
	// across the archive, bit-exact reads served, and tier transitions.
	ResidualBytes int64 `json:"residual_bytes"`
	ExactReads    int64 `json:"exact_reads"`
	Promotes      int64 `json:"promotes"`
	Demotes       int64 `json:"demotes"`

	// Partition-layer counters (zero until an adaptive-space run happens).
	AdaptiveSpaceRuns int64 `json:"adaptive_space_runs"`
	PartitionRegions  int64 `json:"partition_regions"`
	PartitionSplits   int64 `json:"partition_splits"`

	// Integrity counters (zero without a store): scrub passes completed,
	// chunk CRC verifications performed (scrub and verified reads), and
	// datasets / bytes moved to quarantine.
	ScrubRuns           int64 `json:"scrub_runs"`
	ChunksVerified      int64 `json:"chunks_verified"`
	DatasetsQuarantined int64 `json:"datasets_quarantined"`
	BytesQuarantined    int64 `json:"bytes_quarantined"`
}

// count bumps one service counter by delta under the snapshot read-lock:
// increments stay concurrent with each other, but are mutually exclusive
// with Snapshot's write-locked read pass.
func (s *Service) count(c *atomic.Int64, delta int64) {
	s.snapMu.RLock()
	c.Add(delta)
	s.snapMu.RUnlock()
}

// Snapshot captures the current metrics (also served at /metrics). The
// write lock excludes every count() increment for the duration of the read
// pass, so the snapshot is one monotonically consistent cut — a scraper can
// never observe e.g. errors > requests, or a failover counted on one line
// but not the other.
func (s *Service) Snapshot() MetricsSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap := MetricsSnapshot{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Requests:       s.reqTotal.Load(),
		Errors:         s.errTotal.Load(),
		Rejected:       s.rejected.Load(),
		Inflight:       len(s.sem),
		MaxInflight:    cap(s.sem),
		Compresses:     s.compresses.Load(),
		Decompresses:   s.decompresses.Load(),
		ProfileBuilds:  s.profileBuilds.Load(),
		ProfileHits:    s.profileHits.Load(),
		CacheEntries:   s.cache.len(),
		CacheEvictions: s.evictions.Load(),
		Estimates:      s.estimates.Load(),
		Solves:         s.solves.Load(),

		DatasetPuts:          s.datasetPuts.Load(),
		DatasetRawPuts:       s.datasetRawPuts.Load(),
		DatasetGets:          s.datasetGets.Load(),
		DatasetDeletes:       s.datasetDeletes.Load(),
		SliceReads:           s.sliceReads.Load(),
		Recompactions:        s.recompactions.Load(),
		RecompactionsSkipped: s.recompactSkips.Load(),
		ExactReads:           s.exactReads.Load(),
		Promotes:             s.promotes.Load(),
		Demotes:              s.demotes.Load(),

		AdaptiveSpaceRuns: s.adaptiveSpaceRuns.Load(),
		PartitionRegions:  s.partitionRegions.Load(),
		PartitionSplits:   s.partitionSplits.Load(),
	}
	if s.store != nil {
		snap.StoreEnabled = true
		snap.StoreBytes, snap.Datasets = s.store.Bytes()
		snap.StoreWrites = s.store.Writes()
		snap.StoreChunkReads = s.store.ChunkReads()
		snap.ResidualBytes = s.store.ResidualBytes()
		snap.ScrubRuns, snap.ChunksVerified,
			snap.DatasetsQuarantined, snap.BytesQuarantined = s.store.ScrubStats()
	}
	return snap
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	// Rendered by hand rather than via writeJSON so the scrape contract is
	// explicit: a typed Content-Type (scrapers dispatch on it) and no-store
	// (a cached snapshot is a lie about a moving system).
	data, err := json.Marshal(s.Snapshot())
	if err != nil {
		return errf(http.StatusInternalServerError, "internal", "encoding metrics: %v", err)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	_, err = w.Write(append(data, '\n'))
	return ignoreWriteErr(err)
}

// ---------------------------------------------------------------------------
// Compress / decompress

func (s *Service) handleCompress(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	eng, err := s.engineFor(q, r.Header)
	if err != nil {
		return err
	}
	s.count(&s.compresses, 1)

	targetRatio, _, err := floatParam(q, r.Header, "target-ratio")
	if err != nil {
		return err
	}
	targetPSNR, _, err := floatParam(q, r.Header, "target-psnr")
	if err != nil {
		return err
	}
	adaptive := targetRatio > 0 || targetPSNR > 0
	streaming := adaptive || param(q, r.Header, "stream") == "1" ||
		(s.threshold > 0 && r.ContentLength >= s.threshold)
	if streaming {
		return s.compressStream(w, r, eng, targetRatio, targetPSNR)
	}

	f, err := readFieldBody(r.Body)
	if err != nil {
		return err
	}
	res, err := eng.Compress(f)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "compress_failed", "%v", err)
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-RQM-Codec", res.Stats.Codec)
	h.Set("X-RQM-Ratio", strconv.FormatFloat(res.Stats.Ratio, 'g', 6, 64))
	h.Set("X-RQM-Bit-Rate", strconv.FormatFloat(res.Stats.BitRate, 'g', 6, 64))
	h.Set("Content-Length", strconv.Itoa(len(res.Bytes)))
	_, err = w.Write(res.Bytes)
	return ignoreWriteErr(err)
}

// compressStream pipes the request body through the chunked pipeline
// straight into the response. All validation happens before the first
// response byte; a failure after that aborts the connection, which a client
// observes as a truncated (typed-error) container.
func (s *Service) compressStream(w http.ResponseWriter, r *http.Request, eng *rqm.Engine, targetRatio, targetPSNR float64) error {
	q := r.URL.Query()
	br := bufio.NewReaderSize(r.Body, 1<<20)
	prec, dims, err := grid.ReadHeader(br)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "bad_field", "field header: %v", err)
	}
	opts := []rqm.StreamOption{
		rqm.WithStreamShape(prec, dims...),
		rqm.WithStreamFieldName(param(q, r.Header, "name")),
	}
	if v := param(q, r.Header, "chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return errf(http.StatusBadRequest, "bad_param", "chunk: %q is not a positive integer", v)
		}
		opts = append(opts, rqm.WithChunkSize(n))
	}
	adaptive := targetRatio > 0 || targetPSNR > 0
	adaptiveSpace := param(q, r.Header, "adaptive-space") == "1"
	if adaptiveSpace && !adaptive {
		return errf(http.StatusBadRequest, "bad_param",
			"adaptive-space needs a model target (target-ratio or target-psnr)")
	}
	if adaptive {
		model := s.model
		if v, ok, err := floatParam(q, r.Header, "sample"); err != nil {
			return err
		} else if ok {
			if v <= 0 || v > 1 {
				return errf(http.StatusBadRequest, "bad_param", "sample: %g is outside (0, 1]", v)
			}
			model.SampleRate = v
		}
		opts = append(opts,
			rqm.WithAdaptiveBound(rqm.AdaptiveBound{TargetRatio: targetRatio, TargetPSNR: targetPSNR}),
			rqm.WithStreamModel(model))
		if adaptiveSpace {
			opts = append(opts, rqm.WithPartitioner(rqm.VarianceQuadtree{}))
		}
	} else if eng.Options().Mode == rqm.REL {
		// Streamed REL needs the stream-global range: the server never sees
		// the whole field at once, so the client must declare it.
		lo, hi, err := parseRangeParam(q, r.Header)
		if err != nil {
			return err
		}
		opts = append(opts, rqm.WithStreamValueRange(lo, hi))
	}
	// Compressing is read-while-write: chunks stream out while the body
	// streams in, so the connection must be full-duplex (without it the
	// server closes the request body at the first response write).
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		return errf(http.StatusNotImplemented, "no_full_duplex",
			"connection cannot stream: %v", err)
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-RQM-Streamed", "1")
	sw, err := eng.NewStreamWriter(w, opts...) // writes the stream header: status commits here
	if err != nil {
		return err
	}
	if _, err := io.Copy(sw, br); err != nil {
		sw.Close() // stop the pipeline goroutines before abandoning w
		panic(http.ErrAbortHandler)
	}
	if err := sw.Close(); err != nil {
		panic(http.ErrAbortHandler)
	}
	if adaptiveSpace {
		st := sw.Stats()
		s.count(&s.adaptiveSpaceRuns, 1)
		s.count(&s.partitionRegions, int64(st.Chunks))
		s.count(&s.partitionSplits, int64(st.Splits))
	}
	return nil
}

// parseRangeParam reads value-range=lo,hi.
func parseRangeParam(q url.Values, h http.Header) (lo, hi float64, err error) {
	v := param(q, h, "value-range")
	if v == "" {
		return 0, 0, errf(http.StatusBadRequest, "rel_needs_value_range",
			"streamed REL compression needs value-range=lo,hi (or use mode=abs)")
	}
	parts := strings.SplitN(v, ",", 2)
	if len(parts) != 2 {
		return 0, 0, errf(http.StatusBadRequest, "bad_param", "value-range: want lo,hi, got %q", v)
	}
	if lo, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err == nil {
		hi, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	}
	if err != nil || hi < lo {
		return 0, 0, errf(http.StatusBadRequest, "bad_param", "value-range: %q is not a valid lo,hi pair", v)
	}
	return lo, hi, nil
}

func (s *Service) handleDecompress(w http.ResponseWriter, r *http.Request) error {
	s.count(&s.decompresses, 1)
	br := bufio.NewReaderSize(r.Body, 1<<20)
	head, err := br.Peek(5)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "truncated",
			"body holds %d bytes, not a container", len(head))
	}
	if rqm.IsChunkedContainer(head) {
		return s.decompressStream(w, br)
	}
	body, err := readBufferedBody(br)
	if err != nil {
		return err
	}
	f, err := rqm.Decompress(body)
	if err != nil {
		return err // typed container error -> 422 envelope
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-RQM-Field", f.Name)
	_, err = f.WriteTo(w)
	return ignoreWriteErr(err)
}

// decompressStream streams a chunked container back out as a .rqmf field
// without materializing it — when the stream header carries the shape.
func (s *Service) decompressStream(w http.ResponseWriter, br *bufio.Reader) error {
	sr, err := rqm.NewReader(br)
	if err != nil {
		return err
	}
	// The reader stops exactly at the container footer, which under a
	// chunked request body leaves the trailing encoding unread; with
	// full-duplex enabled the server will not clean that up safely, so
	// drain to EOF before returning. Close first — it blocks until the
	// reader's feeder goroutine has stopped touching br, so the drain (which
	// also runs during the abort-handler panic unwind) never races it.
	defer func() {
		_ = sr.Close()
		_, _ = io.Copy(io.Discard, br)
	}()
	// Decompressing streams read-while-write too: see compressStream.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		return errf(http.StatusNotImplemented, "no_full_duplex",
			"connection cannot stream: %v", err)
	}
	hdr := sr.Header()
	if len(hdr.Dims) == 0 {
		// Shape unknown: materialize and emit as 1-D.
		f, err := sr.ReadAll()
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-RQM-Field", f.Name)
		_, err = f.WriteTo(w)
		return ignoreWriteErr(err)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-RQM-Field", hdr.Name)
	w.Header().Set("X-RQM-Streamed", "1")
	if _, err := grid.WriteHeader(w, hdr.Prec, hdr.Dims); err != nil {
		return ignoreWriteErr(err)
	}
	if _, err := io.Copy(w, sr); err != nil {
		panic(http.ErrAbortHandler) // mid-stream failure: truncate, don't lie
	}
	if sr.Values() != hdr.TotalFromDims() {
		panic(http.ErrAbortHandler)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Profile / estimate / solve

// CurvePoint is one sampled point of a profile's ratio-quality curve.
type CurvePoint struct {
	RelEB   float64 `json:"rel_eb"`
	AbsEB   float64 `json:"abs_eb"`
	Ratio   Float   `json:"ratio"`
	BitRate float64 `json:"bit_rate"`
	PSNR    Float   `json:"psnr"`
	SSIM    Float   `json:"ssim"`
}

// ProfileResponse is the /v1/profile body.
type ProfileResponse struct {
	Profile   string       `json:"profile"`
	Cached    bool         `json:"cached"`
	Codec     string       `json:"codec"`
	Predictor string       `json:"predictor"`
	N         int          `json:"n"`
	Range     float64      `json:"range"`
	BuildMs   float64      `json:"build_ms"`
	Curve     []CurvePoint `json:"curve"`
}

// curvePoints samples the ratio-quality curve over relative bounds
// 1e-6..1e-1 (log-spaced), the span the paper's evaluation sweeps.
const curvePoints = 21

func profileCurve(p *rqm.Profile) []CurvePoint {
	if p.Range <= 0 {
		// A constant field has no relative-bound axis to sweep.
		return nil
	}
	out := make([]CurvePoint, 0, curvePoints)
	for i := 0; i < curvePoints; i++ {
		t := float64(i) / float64(curvePoints-1)
		rel := math.Pow(10, -6+5*t) // 1e-6 -> 1e-1
		est := p.EstimateAt(rel * p.Range)
		out = append(out, CurvePoint{
			RelEB:   rel,
			AbsEB:   est.AbsErrorBound,
			Ratio:   Float(est.Ratio),
			BitRate: est.TotalBitRate,
			PSNR:    Float(est.PSNR),
			SSIM:    Float(est.SSIM),
		})
	}
	return out
}

func (s *Service) handleProfile(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	eng, err := s.engineFor(q, r.Header)
	if err != nil {
		return err
	}
	body, err := readBufferedBody(r.Body)
	if err != nil {
		return err
	}
	sample, hasSample, err := floatParam(q, r.Header, "sample")
	if err != nil {
		return err
	}
	if hasSample && (sample <= 0 || sample > 1) {
		return errf(http.StatusBadRequest, "bad_param", "sample: %g is outside (0, 1]", sample)
	}
	var seed uint64
	if v := param(q, r.Header, "seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return errf(http.StatusBadRequest, "bad_param", "seed: %q is not an unsigned integer", v)
		}
	}
	id := profileKey(body, eng, sample, seed)
	if cp, ok := s.cache.get(id); ok {
		s.count(&s.profileHits, 1)
		return writeJSON(w, http.StatusOK, profileResponse(cp, true))
	}

	f, err := readFieldBody(bytes.NewReader(body))
	if err != nil {
		return err
	}
	mopts := s.model
	if sample > 0 {
		mopts.SampleRate = sample
	}
	if seed > 0 {
		mopts.Seed = seed
	}
	// Profiles always run on a request-scoped clone so the service's model
	// options (and any sample/seed overrides) actually reach the sampling
	// pass — the base engine carries its own, unrelated model options.
	peng, err := cloneEngine(eng, mopts)
	if err != nil {
		return errf(http.StatusBadRequest, "bad_param", "%v", err)
	}
	start := time.Now()
	p, err := peng.Profile(f)
	if err != nil {
		return errf(http.StatusUnprocessableEntity, "profile_failed", "%v", err)
	}
	s.count(&s.profileBuilds, 1)
	cp := &cachedProfile{
		ID:        id,
		Codec:     eng.Codec().Name(),
		Predictor: eng.Options().Predictor.String(),
		N:         p.N,
		Range:     p.Range,
		OrigBits:  p.OrigBits,
		Profile:   p,
		BuildTime: time.Since(start),
		CreatedAt: time.Now(),
	}
	s.count(&s.evictions, int64(s.cache.put(cp)))
	return writeJSON(w, http.StatusOK, profileResponse(cp, false))
}

func profileResponse(cp *cachedProfile, cached bool) *ProfileResponse {
	return &ProfileResponse{
		Profile:   cp.ID,
		Cached:    cached,
		Codec:     cp.Codec,
		Predictor: cp.Predictor,
		N:         cp.N,
		Range:     cp.Range,
		BuildMs:   float64(cp.BuildTime.Microseconds()) / 1e3,
		Curve:     profileCurve(cp.Profile),
	}
}

// profileKey content-addresses a profile: the field bytes plus every option
// that changes the sampling product or the modeled curve (predictor,
// lossless stage, quantizer radius, sampling rate, seed, codec). Identical
// uploads under identical options always map to the same ID; any option
// that changes the answer changes the ID.
func profileKey(body []byte, eng *rqm.Engine, sample float64, seed uint64) string {
	h := sha256.New()
	h.Write(body)
	o := eng.Options()
	var meta [40]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(o.Predictor))
	binary.LittleEndian.PutUint64(meta[8:], uint64(o.Lossless))
	binary.LittleEndian.PutUint64(meta[16:], uint64(uint32(o.Radius)))
	binary.LittleEndian.PutUint64(meta[24:], math.Float64bits(sample))
	binary.LittleEndian.PutUint64(meta[32:], seed)
	h.Write(meta[:])
	io.WriteString(h, eng.Codec().Name())
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// EstimateResponse is the /v1/estimate body: the model's answer at one
// bound, straight from the cached profile — no compression run.
type EstimateResponse struct {
	Profile string  `json:"profile"`
	AbsEB   float64 `json:"abs_eb"`
	RelEB   float64 `json:"rel_eb"`
	Ratio   Float   `json:"ratio"`
	BitRate float64 `json:"bit_rate"`
	PSNR    Float   `json:"psnr"`
	SSIM    Float   `json:"ssim"`
	P0      float64 `json:"p0"`
}

func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	cp, err := s.lookupProfile(q, r.Header)
	if err != nil {
		return err
	}
	eb, ok, err := floatParam(q, r.Header, "eb")
	if err != nil {
		return err
	}
	if !ok || !(eb > 0) {
		return errf(http.StatusBadRequest, "bad_param", "estimate needs a positive eb parameter")
	}
	abs := eb
	if mode := param(q, r.Header, "mode"); mode == "" || strings.EqualFold(mode, "rel") {
		if cp.Range <= 0 {
			return errf(http.StatusBadRequest, "bad_param",
				"profile %s has zero value range (constant field); use mode=abs", cp.ID)
		}
		abs = eb * cp.Range // REL is the default, matching the engine default
	} else if !strings.EqualFold(mode, "abs") {
		return errf(http.StatusBadRequest, "bad_param", "mode: want abs or rel, got %q", mode)
	}
	s.count(&s.estimates, 1)
	est := cp.Profile.EstimateAt(abs)
	return writeJSON(w, http.StatusOK, &EstimateResponse{
		Profile: cp.ID,
		AbsEB:   abs,
		RelEB:   relOf(abs, cp.Range),
		Ratio:   Float(est.Ratio),
		BitRate: est.TotalBitRate,
		PSNR:    Float(est.PSNR),
		SSIM:    Float(est.SSIM),
		P0:      est.P0,
	})
}

// SolveResponse is the /v1/solve body: the inverse problem's error bound and
// the modeled outcome at that bound.
type SolveResponse struct {
	Profile  string  `json:"profile"`
	Target   string  `json:"target"`
	TargetAt float64 `json:"target_value"`
	AbsEB    float64 `json:"abs_eb"`
	RelEB    float64 `json:"rel_eb"`
	Ratio    Float   `json:"ratio"`
	BitRate  float64 `json:"bit_rate"`
	PSNR     Float   `json:"psnr"`
	SSIM     Float   `json:"ssim"`
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	cp, err := s.lookupProfile(q, r.Header)
	if err != nil {
		return err
	}
	type target struct {
		name  string
		val   float64
		solve func(float64) (float64, error)
	}
	var targets []target
	for _, t := range []struct {
		name  string
		solve func(float64) (float64, error)
	}{
		{"target-ratio", cp.Profile.ErrorBoundForRatio},
		{"target-psnr", cp.Profile.ErrorBoundForPSNR},
		{"target-bitrate", cp.Profile.ErrorBoundForBitRate},
	} {
		v, ok, err := floatParam(q, r.Header, t.name)
		if err != nil {
			return err
		}
		if ok {
			targets = append(targets, target{t.name, v, t.solve})
		}
	}
	if len(targets) != 1 {
		return errf(http.StatusBadRequest, "bad_param",
			"solve needs exactly one of target-ratio, target-psnr, target-bitrate (got %d)", len(targets))
	}
	s.count(&s.solves, 1)
	tg := targets[0]
	abs, err := tg.solve(tg.val)
	if err != nil {
		return errf(http.StatusBadRequest, "unsolvable", "%v", err)
	}
	est := cp.Profile.EstimateAt(abs)
	return writeJSON(w, http.StatusOK, &SolveResponse{
		Profile:  cp.ID,
		Target:   strings.TrimPrefix(tg.name, "target-"),
		TargetAt: tg.val,
		AbsEB:    abs,
		RelEB:    relOf(abs, cp.Range),
		Ratio:    Float(est.Ratio),
		BitRate:  est.TotalBitRate,
		PSNR:     Float(est.PSNR),
		SSIM:     Float(est.SSIM),
	})
}

// lookupProfile resolves the profile query parameter against the cache.
func (s *Service) lookupProfile(q url.Values, h http.Header) (*cachedProfile, error) {
	id := param(q, h, "profile")
	if id == "" {
		return nil, errf(http.StatusBadRequest, "bad_param", "missing profile parameter")
	}
	cp, ok := s.cache.get(id)
	if !ok {
		return nil, errf(http.StatusNotFound, "profile_not_found",
			"profile %q is not cached (it may have been evicted): re-POST /v1/profile", id)
	}
	return cp, nil
}

// ---------------------------------------------------------------------------
// Helpers

// readBufferedBody materializes a request body up to maxBufferedBody,
// answering 413 — not a misleading truncation error — beyond the cap.
func readBufferedBody(r io.Reader) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r, maxBufferedBody+1))
	if err != nil {
		return nil, errf(http.StatusBadRequest, "read_failed", "%v", err)
	}
	if len(body) > maxBufferedBody {
		return nil, errf(http.StatusRequestEntityTooLarge, "payload_too_large",
			"body exceeds the %d-byte buffered limit; use the streaming path", maxBufferedBody)
	}
	return body, nil
}

// readFieldBody parses a .rqmf field from a request body.
func readFieldBody(r io.Reader) (*rqm.Field, error) {
	f, err := grid.ReadFrom(io.LimitReader(r, maxBufferedBody))
	if err != nil {
		return nil, errf(http.StatusUnprocessableEntity, "bad_field",
			"body is not a .rqmf field: %v", err)
	}
	return f, nil
}

// relOf is abs/range, guarded for constant fields.
func relOf(abs, rng float64) float64 {
	if rng <= 0 {
		return 0
	}
	return abs / rng
}

// Float is a JSON number that serializes non-finite values as null: JSON
// has no Inf/NaN, and a perfectly reconstructable field's modeled PSNR is
// legitimately +Inf. Decoding null leaves the field at zero.
type Float float64

// MarshalJSON emits null for non-finite values.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// writeJSON renders one success body. Encoding happens into a buffer first,
// so a marshalling failure surfaces as a typed 500 instead of a committed
// 200 with a broken body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return errf(http.StatusInternalServerError, "internal", "encoding response: %v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err = w.Write(append(data, '\n'))
	return ignoreWriteErr(err)
}

// ignoreWriteErr swallows errors that occur while writing a response body:
// the status is already committed, so the only observable effect is the
// client's own disconnect.
func ignoreWriteErr(error) error { return nil }
