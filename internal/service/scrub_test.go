package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"rqm/internal/faultfs"
	"rqm/internal/store"
)

// corruptStoredContainer flips one byte inside the first chunk's payload of
// a committed dataset — persistent, shallow-detectable damage.
func corruptStoredContainer(t *testing.T, st *store.Store, name string) {
	t.Helper()
	m, err := st.Manifest(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.ContainerPath(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptFile(p, m.Chunks[0].Offset+22+5); err != nil {
		t.Fatal(err)
	}
}

// waitScrubDone polls /v1/scrub/status until the pass leaves "running".
func waitScrubDone(t *testing.T, ts *httptest.Server) ScrubStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/scrub/status")
		if err != nil {
			t.Fatal(err)
		}
		var stt ScrubStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&stt); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stt.State != "running" {
			return stt
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrub still running: %+v", stt)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func startScrub(t *testing.T, ts *httptest.Server, query string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/scrub"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestScrubEndpointLifecycle(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "scrub-ok", "mode=abs&eb=0.01&chunk=512", body)

	// Before any pass: idle, no report.
	resp, err := http.Get(ts.URL + "/v1/scrub/status")
	if err != nil {
		t.Fatal(err)
	}
	var idle ScrubStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&idle); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if idle.State != "idle" || idle.Report != nil {
		t.Fatalf("pre-scrub status %+v", idle)
	}

	// Start a deep pass: 202 with the job's status snapshot.
	sresp := startScrub(t, ts, "?deep=1")
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("scrub start: status %d", sresp.StatusCode)
	}

	done := waitScrubDone(t, ts)
	if done.State != "done" || done.Report == nil {
		t.Fatalf("finished status %+v", done)
	}
	if !done.Deep || !done.Report.Deep {
		t.Fatal("deep=1 did not run a deep pass")
	}
	if done.Report.Datasets != 1 || len(done.Report.Issues) != 0 {
		t.Fatalf("clean archive report %+v", done.Report)
	}
	if done.Scanned != done.Total || done.Total != 1 {
		t.Fatalf("progress %d/%d", done.Scanned, done.Total)
	}

	// The pass is visible in /metrics under the consistent snapshot.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var ms MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if ms.ScrubRuns != 1 || ms.ChunksVerified == 0 || ms.DatasetsQuarantined != 0 {
		t.Fatalf("metrics %+v", ms)
	}
}

func TestScrubEndpointWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := startScrub(t, ts, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("scrub without store: status %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "store_disabled" {
		t.Fatalf("code %q", eb.Error.Code)
	}
}

func TestScrubEndpointQuarantinesAndReadsGo404(t *testing.T) {
	_, st, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "scrub-rot", "mode=abs&eb=0.01&chunk=512", body)
	corruptStoredContainer(t, st, "scrub-rot")

	resp := startScrub(t, ts, "")
	resp.Body.Close()
	done := waitScrubDone(t, ts)
	if done.State != "done" || done.Report == nil || done.Report.DatasetsQuarantined != 1 {
		t.Fatalf("scrub of rotten archive: %+v", done)
	}
	if len(done.Report.Issues) != 1 || !done.Report.Issues[0].Quarantined {
		t.Fatalf("issues %+v", done.Report.Issues)
	}

	// Quarantined: subsequent reads are a typed 404, not a 422.
	gresp, err := http.Get(ts.URL + "/v1/datasets/scrub-rot")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("read after quarantine: status %d", gresp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var ms MetricsSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	if ms.DatasetsQuarantined != 1 || ms.BytesQuarantined == 0 {
		t.Fatalf("metrics %+v", ms)
	}
}

// TestCorruptDatasetReadIs422 pins the verify-before-serve contract: a read
// that would stream garbage is refused with the typed corrupt_dataset error
// and a committed status code — never a mid-stream abort.
func TestCorruptDatasetReadIs422(t *testing.T) {
	_, st, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "read-rot", "mode=abs&eb=0.01&chunk=512", body)
	corruptStoredContainer(t, st, "read-rot")

	// Decompressing GET: typed 422.
	resp, err := http.Get(ts.URL + "/v1/datasets/read-rot")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt read: status %d, want 422", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "corrupt_dataset" {
		t.Fatalf("corrupt read: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// Raw GET stays verbatim (forensics must see the actual bytes) ...
	rresp, err := http.Get(ts.URL + "/v1/datasets/read-rot?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("raw read of corrupt container: status %d, want verbatim 200", rresp.StatusCode)
	}

	// ... unless the caller asks for source verification (what rebalance
	// and read-repair do, so corruption cannot propagate between shards).
	vresp, err := http.Get(ts.URL + "/v1/datasets/read-rot?raw=1&verify=1")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("verified raw read: status %d, want 422", vresp.StatusCode)
	}
	if eb := decodeErrorBody(t, vresp); eb.Error.Code != "corrupt_dataset" {
		t.Fatalf("verified raw read: code %q", eb.Error.Code)
	}
}

// fetchRawFrame fetches name's full manifest and container from ts and
// builds the raw-put body frame (via the replication helpers the cluster
// hook tests share).
func fetchRawFrame(t *testing.T, ts *httptest.Server, name string) []byte {
	t.Helper()
	man, container := fetchReplicaParts(t, ts, name)
	return rawFrame(man, container)
}

func rawPut(t *testing.T, ts *httptest.Server, name, query string, frame []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name+"/raw"+query, "application/octet-stream",
		bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRawPutRepairSemantics pins the ?repair=1 arbitration: a same-version
// put is an idempotent 200 skip on a healthy target, but replaces the bytes
// (201, X-RQM-Raw-Put: repaired) when the committed copy fails verification
// — and only repair puts re-verify at all.
func TestRawPutRepairSemantics(t *testing.T) {
	_, st, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "heal", "mode=abs&eb=0.01&chunk=512", body)
	frame := fetchRawFrame(t, ts, "heal")
	goodInfo, err := st.Manifest("heal")
	if err != nil {
		t.Fatal(err)
	}

	// Healthy target: both plain and repair same-version puts skip.
	for _, q := range []string{"", "?repair=1"} {
		resp := rawPut(t, ts, "heal", q, frame)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-RQM-Raw-Put") != "skipped" {
			t.Fatalf("same-version put %q: status %d, disposition %q",
				q, resp.StatusCode, resp.Header.Get("X-RQM-Raw-Put"))
		}
	}

	// Rot the committed container. A plain same-version put still skips —
	// it has no reason to distrust the target.
	corruptStoredContainer(t, st, "heal")
	resp := rawPut(t, ts, "heal", "", frame)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain put over rot: status %d", resp.StatusCode)
	}
	if err := st.VerifyDataset("heal", false); err == nil {
		t.Fatal("plain put unexpectedly healed the container")
	}

	// The repair put verifies, sees the rot, and replaces the bytes.
	resp = rawPut(t, ts, "heal", "?repair=1", frame)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || resp.Header.Get("X-RQM-Raw-Put") != "repaired" {
		t.Fatalf("repair put over rot: status %d, disposition %q",
			resp.StatusCode, resp.Header.Get("X-RQM-Raw-Put"))
	}
	if err := st.VerifyDataset("heal", true); err != nil {
		t.Fatalf("container not healed: %v", err)
	}
	healed, err := st.Manifest("heal")
	if err != nil {
		t.Fatal(err)
	}
	if !healed.CreatedAt.Equal(goodInfo.CreatedAt) || healed.Generation != goodInfo.Generation ||
		healed.ContentHash != goodInfo.ContentHash {
		t.Fatalf("repair changed the manifest version: %+v vs %+v", healed, goodInfo)
	}
}

// TestRawPutRepairOverTornManifest: a target whose manifest is torn has no
// trustworthy committed version; a repair put overwrites the wreck instead
// of erroring the way a read would.
func TestRawPutRepairOverTornManifest(t *testing.T) {
	_, st, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "torn-t", "mode=abs&eb=0.01&chunk=512", body)
	frame := fetchRawFrame(t, ts, "torn-t")

	// Tear the committed manifest in place.
	mpath := st.Dir() + "/datasets/torn-t/" + store.ManifestFile
	corruptManifest(t, mpath)

	// A plain put surfaces the target's corruption as the typed
	// manifest_corrupt error (500: this shard's stored state is broken —
	// the router treats the code as corrupt and fails over / repairs).
	resp := rawPut(t, ts, "torn-t", "", frame)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("plain put over torn manifest: status %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "manifest_corrupt" {
		t.Fatalf("plain put over torn manifest: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// The repair put bulldozes it.
	resp = rawPut(t, ts, "torn-t", "?repair=1", frame)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || resp.Header.Get("X-RQM-Raw-Put") != "repaired" {
		t.Fatalf("repair put over torn manifest: status %d, disposition %q",
			resp.StatusCode, resp.Header.Get("X-RQM-Raw-Put"))
	}
	if err := st.VerifyDataset("torn-t", true); err != nil {
		t.Fatalf("target not healed: %v", err)
	}
}

// TestRawPutRejectsInFlightCorruption: a frame whose container bytes do not
// hash to the manifest's ContainerHash is refused — a copy corrupted on the
// wire cannot be committed.
func TestRawPutRejectsInFlightCorruption(t *testing.T) {
	_, st, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "wire", "mode=abs&eb=0.01&chunk=512", body)
	frame := fetchRawFrame(t, ts, "wire")

	// Flip a container byte inside the frame (well past the manifest JSON),
	// and clear the slot so the put actually stages the stream.
	mangled := append([]byte(nil), frame...)
	mangled[len(mangled)-20] ^= 0xFF
	if err := st.Delete("wire"); err != nil {
		t.Fatal(err)
	}

	resp := rawPut(t, ts, "wire", "", mangled)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("raw put of mangled frame: status %d, want 422", resp.StatusCode)
	}
	// Nothing was committed.
	if _, err := st.Manifest("wire"); err == nil {
		t.Fatal("mangled frame was committed")
	}
	// The pristine frame goes through fine.
	resp2 := rawPut(t, ts, "wire", "", frame)
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("pristine frame after mangled attempt: status %d", resp2.StatusCode)
	}
	if err := st.VerifyDataset("wire", true); err != nil {
		t.Fatal(err)
	}
}

// corruptManifest truncates a manifest file mid-JSON.
func corruptManifest(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}
