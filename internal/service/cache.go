package service

import (
	"container/list"
	"sync"
	"time"

	"rqm"
)

// cachedProfile is one materialized sampling pass: the profile plus the
// request-independent metadata the profile endpoints serve from it. Once
// cached, every estimate and solve against it is answered in O(sample) with
// no compression run and no re-sampling — the paper's "predict before you
// compress" asset turned into a serving hot path.
type cachedProfile struct {
	// ID is the content-addressed cache key (hash of field bytes plus the
	// profile-relevant options), so identical uploads always hit.
	ID string
	// Codec and Predictor name the profiled configuration.
	Codec     string
	Predictor string
	// N, Range, and OrigBits describe the profiled field.
	N        int
	Range    float64
	OrigBits int
	// Profile is the sampling product all answers derive from.
	Profile *rqm.Profile
	// BuildTime is the sampling-pass cost the cache saves on every hit.
	BuildTime time.Duration
	// CreatedAt is when the profile was built.
	CreatedAt time.Time
}

// profileCache is a mutex-guarded LRU keyed by content hash. Entries are
// immutable after insert, so lookups can be served concurrently with only
// the recency bookkeeping under the lock.
type profileCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent
	byID  map[string]*list.Element // values are *cachedProfile
}

func newProfileCache(capacity int) *profileCache {
	if capacity < 1 {
		capacity = 1
	}
	return &profileCache{
		cap:   capacity,
		order: list.New(),
		byID:  map[string]*list.Element{},
	}
}

// get returns the cached profile for id, refreshing its recency.
func (c *profileCache) get(id string) (*cachedProfile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cachedProfile), true
}

// put inserts p, evicting the least recently used entry beyond capacity.
// It returns the number of evicted entries.
func (c *profileCache) put(p *cachedProfile) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[p.ID]; ok {
		c.order.MoveToFront(el)
		el.Value = p
		return 0
	}
	c.byID[p.ID] = c.order.PushFront(p)
	evicted := 0
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byID, last.Value.(*cachedProfile).ID)
		evicted++
	}
	return evicted
}

// len reports the live entry count.
func (c *profileCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// purge empties the cache (benchmarks use it to force the cold path).
func (c *profileCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byID = map[string]*list.Element{}
}
