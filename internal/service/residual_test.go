package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"rqm"
	"rqm/internal/grid"
)

// getBody GETs a path and returns status, body, and headers.
func getBody(t testing.TB, ts *httptest.Server, path string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// postJSON POSTs body and decodes a DatasetInfo on 2xx.
func postInfo(t testing.TB, ts *httptest.Server, path string, body []byte) (int, DatasetInfo, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info DatasetInfo
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, info, resp.Header
}

// TestExactLifecycle pins the end-to-end progressive-quality contract: a put
// with ?exact=1 stores a residual layer, GET ?exact=1 returns the original
// byte for byte (SHA-256 equal to the uploaded body), exact slices match the
// original values bitwise, and the residual metrics move.
func TestExactLifecycle(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	f, body := testField(t)

	info := putDataset(t, ts, "px", "mode=rel&eb=1e-3&chunk=1024&exact=1", body)
	if !info.Exact || info.ResidualBytes <= 0 || info.ResidualBackend == "" {
		t.Fatalf("exact put info %+v", info)
	}
	if st.ResidualBytes() != info.ResidualBytes {
		t.Fatalf("store residual gauge %d, info says %d", st.ResidualBytes(), info.ResidualBytes)
	}

	// The lossy tier serves an approximation, not the original.
	status, lossy, _ := getBody(t, ts, "/v1/datasets/px")
	if status != http.StatusOK {
		t.Fatalf("lossy get status %d", status)
	}
	if bytes.Equal(lossy, body) {
		t.Fatal("lossy get returned the original bit for bit; test field compresses too easily")
	}

	// The exact tier is the original, down to the hash of the wire bytes.
	status, exact, hdr := getBody(t, ts, "/v1/datasets/px?exact=1")
	if status != http.StatusOK {
		t.Fatalf("exact get status %d", status)
	}
	if hdr.Get("X-RQM-Exact") != "1" {
		t.Fatal("exact get missing X-RQM-Exact header")
	}
	if sha256.Sum256(exact) != sha256.Sum256(body) {
		t.Fatal("exact get is not byte-identical to the uploaded original")
	}

	// An exact slice matches the original bitwise over an arbitrary range.
	const off, n = 777, 1500
	status, sbody, shdr := getBody(t, ts, fmt.Sprintf("/v1/datasets/px/slice?off=%d&len=%d&exact=1", off, n))
	if status != http.StatusOK {
		t.Fatalf("exact slice status %d", status)
	}
	if shdr.Get("X-RQM-Exact") != "1" {
		t.Fatal("exact slice missing X-RQM-Exact header")
	}
	sf, err := grid.ReadFrom(bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	if sf.Len() != n {
		t.Fatalf("exact slice holds %d values, want %d", sf.Len(), n)
	}
	for i := 0; i < n; i++ {
		if math.Float64bits(sf.Data[i]) != math.Float64bits(f.Data[off+i]) {
			t.Fatalf("exact slice[%d] = %x, original %x", i,
				math.Float64bits(sf.Data[i]), math.Float64bits(f.Data[off+i]))
		}
	}

	snap := svc.Snapshot()
	if snap.ExactReads != 2 || snap.ResidualBytes != info.ResidualBytes {
		t.Fatalf("residual metrics %+v", snap)
	}
}

// TestDemoteDropsExactTier pins the demote contract: the residual goes, the
// lossy base stays, and exact reads turn into typed 409 no_residual.
func TestDemoteDropsExactTier(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	_, body := testField(t)
	info := putDataset(t, ts, "dm", "mode=abs&eb=1e-4&exact=1", body)

	status, dinfo, hdr := postInfo(t, ts, "/v1/datasets/dm/demote", nil)
	if status != http.StatusOK || hdr.Get("X-RQM-Demote") != "demoted" {
		t.Fatalf("demote: status %d, header %q", status, hdr.Get("X-RQM-Demote"))
	}
	if dinfo.Exact || dinfo.ResidualBytes != 0 || dinfo.Generation != info.Generation+1 {
		t.Fatalf("demoted info %+v", dinfo)
	}
	if st.ResidualBytes() != 0 {
		t.Fatalf("residual gauge %d after demote, want 0", st.ResidualBytes())
	}

	// Exact read: typed 409 no_residual. Lossy read: still serves.
	resp, err := http.Get(ts.URL + "/v1/datasets/dm?exact=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("exact get after demote: status %d, want 409", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "no_residual" {
		t.Fatalf("exact get after demote: code %q", eb.Error.Code)
	}
	resp.Body.Close()
	status, lossy, _ := getBody(t, ts, "/v1/datasets/dm")
	if status != http.StatusOK || len(lossy) == 0 {
		t.Fatalf("lossy get after demote: status %d, %d bytes", status, len(lossy))
	}
	status, _, _ = getBody(t, ts, "/v1/datasets/dm/slice?off=0&len=16&exact=1")
	if status != http.StatusConflict {
		t.Fatalf("exact slice after demote: status %d, want 409", status)
	}

	// Demoting a lossy dataset is an idempotent no-op.
	status, _, hdr = postInfo(t, ts, "/v1/datasets/dm/demote", nil)
	if status != http.StatusOK || hdr.Get("X-RQM-Demote") != "skipped" {
		t.Fatalf("second demote: status %d, header %q", status, hdr.Get("X-RQM-Demote"))
	}
	if snap := svc.Snapshot(); snap.Demotes != 1 {
		t.Fatalf("demotes metric %d, want 1", snap.Demotes)
	}
}

// TestPromoteLossyDataset pins the promote contract: the body must prove
// itself the original (ContentHash), the residual installs at generation+1,
// and exact reads come alive — byte-identical to the original.
func TestPromoteLossyDataset(t *testing.T) {
	svc, _, ts := newStoreServer(t)
	_, body := testField(t)
	info := putDataset(t, ts, "pm", "mode=abs&eb=1e-4", body)
	if info.Exact {
		t.Fatalf("plain put stored a residual: %+v", info)
	}

	// Bodyless promote of a lossy dataset cannot conjure the original.
	resp, err := http.Post(ts.URL+"/v1/datasets/pm/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("bodyless promote: status %d, want 409", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "no_residual" {
		t.Fatalf("bodyless promote: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// A body that is NOT the original is refused — the handler must never
	// install a residual that "restores" to the wrong data.
	wrong := append([]byte(nil), body...)
	wrong[len(wrong)-1] ^= 0x01
	status, _, _ := postInfo(t, ts, "/v1/datasets/pm/promote", wrong)
	if status != http.StatusConflict {
		t.Fatalf("wrong-body promote: status %d, want 409", status)
	}

	// The true original promotes; exact reads return it bit for bit.
	status, pinfo, hdr := postInfo(t, ts, "/v1/datasets/pm/promote", body)
	if status != http.StatusCreated || hdr.Get("X-RQM-Promote") != "promoted" {
		t.Fatalf("promote: status %d, header %q", status, hdr.Get("X-RQM-Promote"))
	}
	if !pinfo.Exact || pinfo.Generation != info.Generation+1 || pinfo.ContentHash != info.ContentHash {
		t.Fatalf("promoted info %+v", pinfo)
	}
	status, exact, _ := getBody(t, ts, "/v1/datasets/pm?exact=1")
	if status != http.StatusOK || sha256.Sum256(exact) != sha256.Sum256(body) {
		t.Fatalf("exact get after promote: status %d, identical=%v", status,
			sha256.Sum256(exact) == sha256.Sum256(body))
	}

	// Promoting an already-promoted dataset without a body is a no-op.
	status, _, hdr = postInfo(t, ts, "/v1/datasets/pm/promote", nil)
	if status != http.StatusOK || hdr.Get("X-RQM-Promote") != "skipped" {
		t.Fatalf("second promote: status %d, header %q", status, hdr.Get("X-RQM-Promote"))
	}
	if snap := svc.Snapshot(); snap.Promotes != 1 {
		t.Fatalf("promotes metric %d, want 1", snap.Promotes)
	}
}

// TestRecompactFromTrueOriginal pins the accumulation-killing contract: a
// recompaction of a residual-bearing dataset re-encodes from the recovered
// original, so (1) the recorded bound is the new bound alone while the
// lossy-rebase twin records old+new, (2) the achieved PSNR vs the TRUE
// original beats the lossy-rebase twin's, and (3) the residual is rebuilt —
// the dataset is still bit-exact at generation+1.
func TestRecompactFromTrueOriginal(t *testing.T) {
	_, _, ts := newStoreServer(t)
	f, body := testField(t)
	putDataset(t, ts, "ex", "mode=rel&eb=1e-5&chunk=1024&exact=1", body)
	putDataset(t, ts, "lo", "mode=rel&eb=1e-5&chunk=1024", body)

	const target = 60.0
	rrEx, status := postRecompact(t, ts, "ex", fmt.Sprintf("target-psnr=%g", target))
	if status != http.StatusOK || rrEx.Skipped {
		t.Fatalf("exact recompact: status %d, %+v", status, rrEx)
	}
	rrLo, status := postRecompact(t, ts, "lo", fmt.Sprintf("target-psnr=%g", target))
	if status != http.StatusOK || rrLo.Skipped {
		t.Fatalf("lossy recompact: status %d, %+v", status, rrLo)
	}

	// The exact rewrite's bound stands alone; the lossy rebase accumulates.
	if rrEx.NewBound >= rrLo.NewBound {
		t.Fatalf("exact rewrite bound %.6g not tighter than lossy-rebase bound %.6g",
			rrEx.NewBound, rrLo.NewBound)
	}
	if rrEx.Generation != 1 || rrLo.Generation != 1 {
		t.Fatalf("generations %d/%d, want 1/1", rrEx.Generation, rrLo.Generation)
	}

	// Measured PSNR vs the TRUE original: the exact-input rewrite wins.
	psnr := func(name string) float64 {
		status, b, _ := getBody(t, ts, "/v1/datasets/"+name)
		if status != http.StatusOK {
			t.Fatalf("get %s: status %d", name, status)
		}
		back, err := grid.ReadFrom(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		v, err := rqm.PSNR(f, back)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	psnrEx, psnrLo := psnr("ex"), psnr("lo")
	if psnrEx < psnrLo {
		t.Fatalf("recompact-from-original PSNR %.2f dB below lossy-rebase %.2f dB", psnrEx, psnrLo)
	}
	// And it lands on the quality target against the true original. The model
	// solves the bound to hit the target exactly, so the achieved value sits
	// within modeling tolerance of it — for a lossy rebase the same request
	// degrades by the accumulated input error instead.
	if psnrEx < target-0.5 {
		t.Fatalf("recompact-from-original achieved %.2f dB vs the original, target %g", psnrEx, target)
	}

	// The residual was rebuilt against the new container: still bit-exact.
	status, exact, _ := getBody(t, ts, "/v1/datasets/ex?exact=1")
	if status != http.StatusOK || sha256.Sum256(exact) != sha256.Sum256(body) {
		t.Fatalf("exact read after recompact: status %d, identical=%v", status,
			sha256.Sum256(exact) == sha256.Sum256(body))
	}
	// The lossy twin, of course, has no exact tier to keep.
	status, _, _ = getBody(t, ts, "/v1/datasets/lo?exact=1")
	if status != http.StatusConflict {
		t.Fatalf("exact read on lossy twin: status %d, want 409", status)
	}
}

// TestRecompactTightensPromotedDataset pins the inverted skip logic: asking
// for HIGHER quality than stored is unreachable for a lossy archive (typed
// skip) but legal for a promoted one — the original is recoverable, so the
// rewrite tightens the bound and the quality improves for real.
func TestRecompactTightensPromotedDataset(t *testing.T) {
	_, _, ts := newStoreServer(t)
	f, body := testField(t)
	putDataset(t, ts, "tx", "mode=rel&eb=1e-3&chunk=1024&exact=1", body)
	putDataset(t, ts, "tl", "mode=rel&eb=1e-3&chunk=1024", body)

	const target = 90.0 // well above what rel 1e-3 (~65 dB) delivers
	rrLo, status := postRecompact(t, ts, "tl", fmt.Sprintf("target-psnr=%g", target))
	if status != http.StatusOK || !rrLo.Skipped {
		t.Fatalf("lossy tighten: status %d, %+v (want typed skip)", status, rrLo)
	}
	rrEx, status := postRecompact(t, ts, "tx", fmt.Sprintf("target-psnr=%g", target))
	if status != http.StatusOK || rrEx.Skipped {
		t.Fatalf("promoted tighten: status %d, %+v (want rewrite)", status, rrEx)
	}
	if rrEx.NewBound >= rrEx.OldBound {
		t.Fatalf("tightening rewrite loosened the bound: %.6g -> %.6g", rrEx.OldBound, rrEx.NewBound)
	}
	status, b, _ := getBody(t, ts, "/v1/datasets/tx")
	if status != http.StatusOK {
		t.Fatalf("get after tighten: status %d", status)
	}
	back, err := grid.ReadFrom(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.ABS, rrEx.NewBound*(1+1e-12)); err != nil {
		t.Fatalf("tightened dataset misses its own bound: %v", err)
	}
}

// TestRawPutResidualFrame pins the replica-transfer frame: manifest JSON +
// container + residual round-trips a promoted dataset onto a second server
// byte-identically, and a frame whose residual bytes are corrupt is refused
// with nothing committed.
func TestRawPutResidualFrame(t *testing.T) {
	_, _, src := newStoreServer(t)
	_, dstStore, dst := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, src, "rf", "mode=abs&eb=1e-4&exact=1", body)

	_, manifest, _ := getBody(t, src, "/v1/datasets/rf?manifest=1&full=1")
	_, container, _ := getBody(t, src, "/v1/datasets/rf?raw=1")
	status, residualBytes, rhdr := getBody(t, src, "/v1/datasets/rf?raw=1&residual=1")
	if status != http.StatusOK || len(residualBytes) == 0 {
		t.Fatalf("raw residual get: status %d, %d bytes", status, len(residualBytes))
	}
	if rhdr.Get("X-RQM-Residual-Backend") == "" || rhdr.Get("X-RQM-Residual-Hash") == "" {
		t.Fatalf("raw residual get missing headers: %v", rhdr)
	}

	frame := func(res []byte) []byte {
		var buf bytes.Buffer
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(bytes.TrimSpace(manifest))))
		buf.Write(lenb[:])
		buf.Write(bytes.TrimSpace(manifest))
		buf.Write(container)
		buf.Write(res)
		return buf.Bytes()
	}

	// A corrupted residual frame is refused end-to-end: the staged bytes do
	// not reproduce the declared hash, so nothing commits.
	bad := append([]byte(nil), residualBytes...)
	bad[len(bad)/2] ^= 0x40
	status, _, _ = postInfo(t, dst, "/v1/datasets/rf/raw", frame(bad))
	if status == http.StatusCreated {
		t.Fatal("raw put committed a corrupted residual frame")
	}
	if _, err := dstStore.Manifest("rf"); err == nil {
		t.Fatal("corrupted raw put left a committed dataset behind")
	}

	// The intact frame transfers the full progressive dataset.
	status, info, _ := postInfo(t, dst, "/v1/datasets/rf/raw", frame(residualBytes))
	if status != http.StatusCreated || !info.Exact {
		t.Fatalf("raw put with residual: status %d, info %+v", status, info)
	}
	statusE, exact, _ := getBody(t, dst, "/v1/datasets/rf?exact=1")
	if statusE != http.StatusOK || sha256.Sum256(exact) != sha256.Sum256(body) {
		t.Fatalf("exact read on replica: status %d, identical=%v", statusE,
			sha256.Sum256(exact) == sha256.Sum256(body))
	}
	if err := dstStore.VerifyDataset("rf", true); err != nil {
		t.Fatalf("replica deep verify: %v", err)
	}
}
