package service

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"

	"rqm/internal/grid"
	"rqm/internal/residual"
	"rqm/internal/store"
)

// Progressive-quality endpoints: the lossless residual layer over the lossy
// base. A dataset put with ?exact=1 (or later promoted) carries a residual
// file alongside its container; exact reads XOR the residual onto the lossy
// reconstruction and return the original bit for bit, verified against the
// stored original hash before a single byte goes out.
//
//	GET  /v1/datasets/{name}?exact=1          bit-exact original .rqmf
//	GET  /v1/datasets/{name}?raw=1&residual=1 stored residual file verbatim
//	GET  /v1/datasets/{name}/slice?exact=1    bit-exact range
//	POST /v1/datasets/{name}/promote          .rqmf original body -> add a
//	                                          residual layer to a lossy dataset
//	POST /v1/datasets/{name}/demote           drop the residual layer, keep
//	                                          the lossy base

// residualBuilderFor resolves the ?exact=1 / ?residual-backend= pair of a put
// into a residual builder (nil when the put is plain lossy).
func residualBuilderFor(q url.Values, h http.Header, data []float64, prec grid.Precision) (store.ResidualBuilder, error) {
	if param(q, h, "exact") != "1" {
		return nil, nil
	}
	backend := param(q, h, "residual-backend")
	if backend == "" {
		backend = residual.DefaultBackend
	}
	if _, err := residual.ByName(backend); err != nil {
		return nil, errf(http.StatusBadRequest, "bad_param", "residual-backend: %v", err)
	}
	return store.BuildResidual(data, prec, backend), nil
}

// serveExact answers GET ?exact=1: the full dataset at the lossless tier.
// The reconstruction is verified against the residual layer's stored
// original hash BEFORE the status commits — an exact read that cannot prove
// it is exact fails typed instead of serving plausible bytes.
func (s *Service) serveExact(w http.ResponseWriter, st *store.Store, m *store.Manifest) error {
	vals, err := st.ReadRangeExact(m, 0, m.TotalValues)
	if err != nil {
		return err
	}
	sum, err := residual.OriginalHash(vals, m.Prec())
	if err != nil {
		return err
	}
	if got := hex.EncodeToString(sum[:]); got != m.Residual.OriginalHash {
		return fmt.Errorf("%w: %q: exact reconstruction hashes to %s, residual layer promises %s",
			store.ErrCorruptDataset, m.Name, got, m.Residual.OriginalHash)
	}
	s.count(&s.exactReads, 1)
	f, err := grid.FromData(m.Name, m.Prec(), vals, m.Dims...)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-RQM-Dataset", m.Name)
	w.Header().Set("X-RQM-Exact", "1")
	_, err = f.WriteTo(w)
	return ignoreWriteErr(err)
}

// serveResidualRaw answers GET ?raw=1&residual=1: the stored residual file
// verbatim, the replica-sync counterpart of the raw container path. End-to-end
// integrity rides the manifest's residual hash (and ?verify=1, handled by the
// caller, adds a shallow pre-check exactly like the container path).
func (s *Service) serveResidualRaw(w http.ResponseWriter, st *store.Store, m *store.Manifest) error {
	path, err := st.ResidualPath(m.Name)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", fmt.Sprintf("%d", m.Residual.Bytes))
	h.Set("X-RQM-Dataset", m.Name)
	h.Set("X-RQM-Residual-Backend", m.Residual.Backend)
	h.Set("X-RQM-Residual-Hash", m.Residual.Hash)
	_, err = io.Copy(w, f)
	return ignoreWriteErr(err)
}

// nextGeneration clones a manifest for a same-container rewrite (promote /
// demote): identity (CreatedAt, ContentHash, profile) carries over, the
// generation bumps, and the store refills the container-derived fields —
// keeping ContainerHash makes the staged copy prove itself byte-identical.
func nextGeneration(m *store.Manifest) *store.Manifest {
	nm := *m
	nm.Generation++
	nm.Chunks = nil
	nm.Residual = nil
	return &nm
}

// copyContainerBuild is the build function for promote/demote: the committed
// container streamed into the stage verbatim. Reading the committed file
// while its replacement stages is safe — publish is a whole-directory swap.
func copyContainerBuild(st *store.Store, name string, nm *store.Manifest) func(io.Writer) (*store.Manifest, error) {
	return func(cw io.Writer) (*store.Manifest, error) {
		path, err := st.ContainerPath(name)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if _, err := io.Copy(cw, f); err != nil {
			return nil, err
		}
		return nm, nil
	}
}

// handleDatasetPromote adds a residual layer to a committed dataset. The body
// is the original .rqmf field; the handler proves it IS the original (the
// bytes must reproduce the manifest's ContentHash) before building the
// residual against the stored container — a promotion can never quietly
// install a residual that "restores" to the wrong data. With a residual
// already present and no body, the promote is an idempotent no-op.
func (s *Service) handleDatasetPromote(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	m, err := st.Manifest(name)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	br := bufio.NewReaderSize(r.Body, 1<<20)
	if _, err := br.Peek(1); err != nil {
		// No body. Already promoted -> idempotent skip; otherwise the caller
		// must supply the original — the lossy base cannot conjure it.
		if m.Residual != nil {
			w.Header().Set("X-RQM-Promote", "skipped")
			return writeJSON(w, http.StatusOK, datasetInfo(m))
		}
		return fmt.Errorf("%w: %q: promotion needs the original field in the request body",
			store.ErrNoResidual, name)
	}
	hasher := sha256.New()
	f, err := readFieldBody(io.TeeReader(br, hasher))
	if err != nil {
		return err
	}
	if f.Prec.Bits() != m.PrecBits || !equalDims(f.Dims, m.Dims) {
		return errf(http.StatusConflict, "conflict",
			"promotion body is %d-bit %v, dataset %q is %d-bit %v",
			f.Prec.Bits(), f.Dims, name, m.PrecBits, m.Dims)
	}
	if sum := hex.EncodeToString(hasher.Sum(nil)); m.ContentHash != "" && sum != m.ContentHash {
		return errf(http.StatusConflict, "conflict",
			"promotion body hashes to %s, dataset %q was put from %s: not the original", sum, name, m.ContentHash)
	}
	backend := param(q, r.Header, "residual-backend")
	if backend == "" {
		backend = residual.DefaultBackend
	}
	if _, err := residual.ByName(backend); err != nil {
		return errf(http.StatusBadRequest, "bad_param", "residual-backend: %v", err)
	}
	nm := nextGeneration(m)
	committed, err := st.ReplaceWithResidual(name, m, copyContainerBuild(st, name, nm),
		store.BuildResidual(f.Data, f.Prec, backend))
	if err != nil {
		return putError(err)
	}
	s.count(&s.promotes, 1)
	w.Header().Set("X-RQM-Promote", "promoted")
	return writeJSON(w, http.StatusCreated, datasetInfo(committed))
}

// handleDatasetDemote drops a dataset's residual layer, keeping the lossy
// base: the container is re-committed verbatim at generation+1 without a
// residual builder, which clears the manifest's residual record and deletes
// the file in the same atomic publish. Demoting a lossy dataset is a no-op.
func (s *Service) handleDatasetDemote(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	m, err := st.Manifest(name)
	if err != nil {
		return err
	}
	if m.Residual == nil {
		w.Header().Set("X-RQM-Demote", "skipped")
		return writeJSON(w, http.StatusOK, datasetInfo(m))
	}
	nm := nextGeneration(m)
	committed, err := st.Replace(name, m, copyContainerBuild(st, name, nm))
	if err != nil {
		return putError(err)
	}
	s.count(&s.demotes, 1)
	w.Header().Set("X-RQM-Demote", "demoted")
	return writeJSON(w, http.StatusOK, datasetInfo(committed))
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
