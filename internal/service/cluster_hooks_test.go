package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The cluster tier (internal/router) rides four shard-side hooks: the
// liveness/readiness healthz split, the consistent metrics snapshot, the
// ?if-generation CAS put, and the raw replication endpoint. These tests pin
// each hook at the shard boundary, independent of any router.

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp
}

func TestHealthzReadinessAndLiveness(t *testing.T) {
	svc, ts := newTestServer(t, Config{})

	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if hr.Status != "ok" || hr.Store || hr.Datasets != 0 {
		t.Fatalf("healthz without store: %+v", hr)
	}

	// Draining flips readiness to 503 while ?live=1 stays 200: a router
	// stops routing here, but the process is still alive for its drain.
	svc.BeginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var dr HealthResponse
	if jerr := json.NewDecoder(resp.Body).Decode(&dr); jerr != nil {
		t.Fatal(jerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || dr.Status != "draining" {
		t.Fatalf("draining healthz: status %d body %+v", resp.StatusCode, dr)
	}
	var lr HealthResponse
	if lresp := getJSON(t, ts.URL+"/healthz?live=1", &lr); lresp.StatusCode != http.StatusOK {
		t.Fatalf("liveness while draining: status %d", lresp.StatusCode)
	}
}

func TestHealthzReportsStore(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "hz", "mode=abs&eb=0.01", body)

	var hr HealthResponse
	getJSON(t, ts.URL+"/healthz", &hr)
	if !hr.Store || hr.Datasets != 1 {
		t.Fatalf("healthz with store: %+v", hr)
	}
}

func TestMetricsContentTypeAndShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics Content-Type = %q, want application/json", ct)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if m.Requests < 1 {
		t.Fatalf("metrics requests = %d", m.Requests)
	}
}

func TestConditionalPutCAS(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)
	first := putDataset(t, ts, "cas", "mode=abs&eb=0.01", body)

	// Wrong generation: typed 409, nothing written.
	resp, err := http.Post(ts.URL+"/v1/datasets/cas?mode=abs&eb=0.01&if-generation=5",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale if-generation: status %d, want 409", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "conflict" {
		t.Fatalf("stale if-generation: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// Missing dataset: also a conflict, not a 404 — the caller asserted a
	// version that does not exist.
	resp2, err := http.Post(ts.URL+"/v1/datasets/nope?mode=abs&eb=0.01&if-generation=0",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("if-generation on absent dataset: status %d, want 409", resp2.StatusCode)
	}
	resp2.Body.Close()

	// Matching generation: the put lands, keeps the dataset's identity
	// (created_at) and bumps the generation — the same version math
	// recompaction uses.
	second := putDataset(t, ts, "cas", "mode=abs&eb=0.01&if-generation=0", body)
	if second.Generation != first.Generation+1 || !second.CreatedAt.Equal(first.CreatedAt) {
		t.Fatalf("CAS put version: %+v -> %+v", first, second)
	}
}

func TestPutCreatedAtPin(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)

	pin := time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC)
	info := putDataset(t, ts, "pin", "mode=abs&eb=0.01&created-at="+pin.Format(time.RFC3339Nano), body)
	if !info.CreatedAt.Equal(pin) {
		t.Fatalf("created-at pin: got %s, want %s", info.CreatedAt, pin)
	}

	resp, err := http.Post(ts.URL+"/v1/datasets/pin2?mode=abs&eb=0.01&created-at=yesterday",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad created-at: status %d, want 400", resp.StatusCode)
	}
}

// rawFrame builds the raw-put body: 4-byte big-endian manifest length,
// manifest JSON, container bytes.
func rawFrame(man, container []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(man)))
	return append(append(hdr[:], man...), container...)
}

// fetchReplicaParts pulls the full manifest and raw container for name —
// exactly what a replicating router streams between shards.
func fetchReplicaParts(t *testing.T, ts *httptest.Server, name string) (man, container []byte) {
	t.Helper()
	mresp, err := http.Get(ts.URL + "/v1/datasets/" + name + "?manifest=1&full=1")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if man, err = io.ReadAll(mresp.Body); err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("full manifest: status %d err %v", mresp.StatusCode, err)
	}
	rresp, err := http.Get(ts.URL + "/v1/datasets/" + name + "?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if container, err = io.ReadAll(rresp.Body); err != nil || rresp.StatusCode != http.StatusOK {
		t.Fatalf("raw container: status %d err %v", rresp.StatusCode, err)
	}
	return man, container
}

func TestDatasetRawPutReplication(t *testing.T) {
	_, _, src := newStoreServer(t)
	_, _, dst := newStoreServer(t)
	_, body := testField(t)
	orig := putDataset(t, src, "repl", "mode=rel&eb=1e-3&chunk=1024", body)
	man, container := fetchReplicaParts(t, src, "repl")

	// First raw put: stored verbatim, no compression on the target.
	resp, err := http.Post(dst.URL+"/v1/datasets/repl/raw", "application/octet-stream",
		bytes.NewReader(rawFrame(man, container)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || resp.Header.Get("X-RQM-Raw-Put") != "stored" {
		t.Fatalf("raw put: status %d %q: %s", resp.StatusCode, resp.Header.Get("X-RQM-Raw-Put"), raw)
	}
	var got DatasetInfo
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !got.CreatedAt.Equal(orig.CreatedAt) || got.Generation != orig.Generation ||
		got.ContentHash != orig.ContentHash || got.Ratio != orig.Ratio {
		t.Fatalf("replica manifest diverges: %+v vs %+v", got, orig)
	}
	_, dstContainer := fetchReplicaParts(t, dst, "repl")
	if !bytes.Equal(container, dstContainer) {
		t.Fatal("replica container bytes differ from source")
	}
	var m MetricsSnapshot
	getJSON(t, dst.URL+"/metrics", &m)
	if m.DatasetRawPuts != 1 {
		t.Fatalf("dataset_raw_puts = %d, want 1", m.DatasetRawPuts)
	}
	if m.Compresses != 0 {
		t.Fatalf("raw put ran %d compresses — replication must not recompress", m.Compresses)
	}

	// Same frame again: idempotent 200 skip, nothing rewritten.
	resp2, err := http.Post(dst.URL+"/v1/datasets/repl/raw", "application/octet-stream",
		bytes.NewReader(rawFrame(man, container)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-RQM-Raw-Put") != "skipped" {
		t.Fatalf("repeat raw put: status %d %q", resp2.StatusCode, resp2.Header.Get("X-RQM-Raw-Put"))
	}

	// The target re-puts (a strictly newer identity); replaying the old
	// frame must now lose the version arbitration with a typed 409.
	putDataset(t, dst, "repl", "mode=abs&eb=0.01", body)
	resp3, err := http.Post(dst.URL+"/v1/datasets/repl/raw", "application/octet-stream",
		bytes.NewReader(rawFrame(man, container)))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("stale raw put: status %d, want 409", resp3.StatusCode)
	}
	if eb := decodeErrorBody(t, resp3); eb.Error.Code != "conflict" {
		t.Fatalf("stale raw put: code %q", eb.Error.Code)
	}
	resp3.Body.Close()
}

func TestDatasetRawPutRejectsBadFrames(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, ts, "frame", "mode=abs&eb=0.01", body)
	man, container := fetchReplicaParts(t, ts, "frame")

	for name, frame := range map[string][]byte{
		"truncated-length":   {0x00, 0x01},
		"zero-manifest":      rawFrame(nil, container),
		"manifest-not-json":  rawFrame([]byte("{nope"), container),
		"truncated-manifest": {0x00, 0x00, 0xff, 0xff, 'x'},
	} {
		resp, err := http.Post(ts.URL+"/v1/datasets/frame/raw", "application/octet-stream",
			bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_manifest" {
			t.Fatalf("%s: code %q, want bad_manifest", name, eb.Error.Code)
		}
		resp.Body.Close()
	}

	// Manifest naming a different dataset than the path: rejected before
	// any bytes land.
	resp, err := http.Post(ts.URL+"/v1/datasets/other/raw", "application/octet-stream",
		bytes.NewReader(rawFrame(man, container)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("name mismatch: status %d, want 400", resp.StatusCode)
	}
}

// TestDatasetRawPutIntegrity: the target re-derives the chunk index from
// the container trailer, so a frame whose container bytes are corrupt is
// refused rather than committed.
func TestDatasetRawPutIntegrity(t *testing.T) {
	_, _, src := newStoreServer(t)
	_, _, dst := newStoreServer(t)
	_, body := testField(t)
	putDataset(t, src, "corrupt", "mode=abs&eb=0.01", body)
	man, container := fetchReplicaParts(t, src, "corrupt")

	bad := append([]byte(nil), container...)
	bad[len(bad)/2] ^= 0xff
	for i := len(bad) - 16; i < len(bad); i++ {
		bad[i] ^= 0xa5 // trash the trailer too
	}
	resp, err := http.Post(dst.URL+"/v1/datasets/corrupt/raw", "application/octet-stream",
		bytes.NewReader(rawFrame(man, bad)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatalf("corrupt container admitted: status %d", resp.StatusCode)
	}
	if _, err := http.Get(dst.URL + "/v1/datasets/corrupt?manifest=1"); err != nil {
		t.Fatal(err)
	}
	stat, err := http.Get(dst.URL + "/v1/datasets/corrupt?manifest=1")
	if err != nil {
		t.Fatal(err)
	}
	defer stat.Body.Close()
	if stat.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt dataset committed: stat %d", stat.StatusCode)
	}
}
