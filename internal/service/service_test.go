package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"rqm"
)

// testField synthesizes the shared request payload. The field is rewrapped
// at float64 precision so the .rqmf response serialization is exact and
// error-bound assertions are not polluted by float32 rounding.
func testField(t testing.TB) (*rqm.Field, []byte) {
	t.Helper()
	g, err := rqm.GenerateField("nyx/temperature", 7, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.FieldFromData("svc-test", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

// newTestServer builds a service and an httptest server around it.
func newTestServer(t testing.TB, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// decodeErrorBody parses the JSON error envelope.
func decodeErrorBody(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v", err)
	}
	if body.Error.Code == "" {
		t.Fatal("error envelope has an empty code")
	}
	return body
}

// TestCompressDecompressRoundTrip drives the whole-buffer HTTP path end to
// end: field in, container out, field back, bound verified.
func TestCompressDecompressRoundTrip(t *testing.T) {
	f, body := testField(t)
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eb=0.01", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-RQM-Codec") == "" || resp.Header.Get("X-RQM-Ratio") == "" {
		t.Fatalf("compress response misses stats headers: %v", resp.Header)
	}
	container, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The container is a normal sealed envelope, decodable offline too.
	if _, err := rqm.Decompress(container); err != nil {
		t.Fatalf("served container does not decode locally: %v", err)
	}

	resp, err = http.Post(ts.URL+"/v1/decompress", "application/octet-stream",
		bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress status %d", resp.StatusCode)
	}
	fieldBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readFieldBody(bytes.NewReader(fieldBytes))
	if err != nil {
		t.Fatalf("decompress response is not a field: %v", err)
	}
	if got.Len() != f.Len() {
		t.Fatalf("round trip returned %d values, want %d", got.Len(), f.Len())
	}
	if err := rqm.VerifyErrorBound(f, got, rqm.ABS, 0.01*(1+1e-9)); err != nil {
		t.Fatalf("round trip broke the request-scoped bound: %v", err)
	}
}

// TestCompressStreamingREL checks the streaming path end to end, including
// the REL contract: without a declared value range the server refuses, with
// one it enforces the stream-global bound.
func TestCompressStreamingREL(t *testing.T) {
	f, body := testField(t)
	_, ts := newTestServer(t, Config{})

	// REL + streaming without a range: explicit 400, not a guessed bound.
	resp, err := http.Post(ts.URL+"/v1/compress?stream=1", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("streamed REL without range: status %d, want 400", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "rel_needs_value_range" {
		t.Fatalf("error code %q, want rel_needs_value_range", eb.Error.Code)
	}
	resp.Body.Close()

	// With the range declared the stream compresses and decompresses.
	lo, hi := f.ValueRange()
	q := url.Values{}
	q.Set("stream", "1")
	q.Set("chunk", "2048")
	q.Set("value-range", fmt.Sprintf("%g,%g", lo, hi))
	resp, err = http.Post(ts.URL+"/v1/compress?"+q.Encode(), "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed compress status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-RQM-Streamed") != "1" {
		t.Fatal("streamed compress did not mark X-RQM-Streamed")
	}
	container, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !rqm.IsChunkedContainer(container) {
		t.Fatal("streamed compress did not produce a chunked container")
	}

	resp, err = http.Post(ts.URL+"/v1/decompress", "application/octet-stream",
		bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed decompress status %d", resp.StatusCode)
	}
	fieldBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readFieldBody(bytes.NewReader(fieldBytes))
	if err != nil {
		t.Fatalf("streamed decompress response is not a field: %v", err)
	}
	// The enforced bound is the stream-global REL resolution.
	wantAbs := 1e-3 * (hi - lo)
	if err := rqm.VerifyErrorBound(f, got, rqm.ABS, wantAbs*(1+1e-9)); err != nil {
		t.Fatalf("streamed REL bound: %v", err)
	}
}

// TestProfileEstimateCacheHit is the tentpole's acceptance path: one
// sampling pass, then unlimited estimates and solves from cache — including
// a repeated profile POST, which must not sample again.
func TestProfileEstimateCacheHit(t *testing.T) {
	_, body := testField(t)
	svc, ts := newTestServer(t, Config{})

	post := func() ProfileResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("profile status %d", resp.StatusCode)
		}
		var pr ProfileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	first := post()
	if first.Cached || first.Profile == "" || len(first.Curve) != curvePoints {
		t.Fatalf("first profile: %+v", first)
	}
	second := post()
	if !second.Cached || second.Profile != first.Profile {
		t.Fatalf("second profile: cached=%v id=%q, want hit on %q", second.Cached, second.Profile, first.Profile)
	}
	if builds := svc.Snapshot().ProfileBuilds; builds != 1 {
		t.Fatalf("%d sampling passes after a repeated POST, want exactly 1", builds)
	}

	// Estimates are served from the cache: no further sampling passes.
	resp, err := http.Get(ts.URL + "/v1/estimate?profile=" + first.Profile + "&eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	var est EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	if !(est.Ratio > 1) || !(est.PSNR > 0) {
		t.Fatalf("estimate %+v is not a plausible model answer", est)
	}

	// Solve the inverse problem from the same cached profile.
	resp, err = http.Get(ts.URL + "/v1/solve?profile=" + first.Profile + "&target-psnr=60")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	var sol SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatal(err)
	}
	if sol.Target != "psnr" || !(sol.AbsEB > 0) {
		t.Fatalf("solve %+v", sol)
	}
	if math.Abs(float64(sol.PSNR)-60) > 6 {
		t.Fatalf("solved bound models %.1f dB, target 60", sol.PSNR)
	}

	if snap := svc.Snapshot(); snap.ProfileBuilds != 1 || snap.ProfileHits != 1 ||
		snap.Estimates != 1 || snap.Solves != 1 {
		t.Fatalf("metrics %+v, want 1 build / 1 hit / 1 estimate / 1 solve", snap)
	}
}

// TestMalformedBodies checks every body-parsing endpoint returns the typed
// JSON envelope, with container errors mapped to their taxonomy codes.
func TestMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	garbage := strings.NewReader("this is not a field or container")

	cases := []struct {
		path   string
		body   io.Reader
		status int
		code   string
	}{
		{"/v1/compress", strings.NewReader("junk body"), http.StatusUnprocessableEntity, "bad_field"},
		{"/v1/profile", garbage, http.StatusUnprocessableEntity, "bad_field"},
		{"/v1/decompress", strings.NewReader("completely bogus container bytes"), http.StatusUnprocessableEntity, "bad_magic"},
		{"/v1/decompress", strings.NewReader("x"), http.StatusUnprocessableEntity, "truncated"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/octet-stream", tc.body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if eb := decodeErrorBody(t, resp); eb.Error.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.path, eb.Error.Code, tc.code)
		}
		resp.Body.Close()
	}

	// Bad query parameters are 400s.
	resp, err := http.Post(ts.URL+"/v1/compress?mode=sideways", "application/octet-stream",
		strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_param" {
		t.Fatalf("bad mode: code %q, want bad_param", eb.Error.Code)
	}
	resp.Body.Close()

	// Unknown profile IDs are 404s.
	resp, err = http.Get(ts.URL + "/v1/estimate?profile=feedfacedeadbeef&eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown profile: status %d, want 404", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "profile_not_found" {
		t.Fatalf("unknown profile: code %q, want profile_not_found", eb.Error.Code)
	}
	resp.Body.Close()

	// Wrong method on a POST endpoint.
	resp, err = http.Get(ts.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET compress: status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestConcurrencyLimit429 saturates the admission semaphore and checks the
// overflow request gets the typed 429 with Retry-After, while cheap
// endpoints stay admitted.
func TestConcurrencyLimit429(t *testing.T) {
	_, body := testField(t)
	svc, ts := newTestServer(t, Config{MaxInflight: 1})

	// Hold the only permit, as an in-flight heavy request would.
	svc.sem <- struct{}{}
	resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated service: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "too_many_requests" {
		t.Fatalf("429 code %q, want too_many_requests", eb.Error.Code)
	}
	resp.Body.Close()

	// Cheap endpoints bypass admission control.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-svc.sem

	// With the permit released the same request is admitted.
	resp, err = http.Post(ts.URL+"/v1/profile", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("released service: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if rej := svc.Snapshot().Rejected; rej != 1 {
		t.Fatalf("rejected counter %d, want 1", rej)
	}
}

// TestCacheEviction checks the LRU bound holds and evicted profiles 404.
func TestCacheEviction(t *testing.T) {
	svc, ts := newTestServer(t, Config{ProfileCacheSize: 1})

	var ids []string
	for seed := uint64(1); seed <= 2; seed++ {
		f, err := rqm.GenerateField("nyx/temperature", seed, rqm.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var pr ProfileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, pr.Profile)
	}
	if svc.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, capacity 1", svc.cache.len())
	}
	resp, err := http.Get(ts.URL + "/v1/estimate?profile=" + ids[0] + "&eb=1e-3")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted profile: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	if resp, err = http.Get(ts.URL + "/v1/estimate?profile=" + ids[1] + "&eb=1e-3"); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resident profile: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if ev := svc.Snapshot().CacheEvictions; ev != 1 {
		t.Fatalf("eviction counter %d, want 1", ev)
	}
}

// TestMetricsAndHealth sanity-checks the observability endpoints.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || len(h.Codecs) == 0 {
		t.Fatalf("health %+v", h)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Requests < 1 || m.MaxInflight < 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestAdaptiveCompressTarget drives the model-guided streaming path over
// HTTP: target-psnr switches to per-chunk adaptive bounds with no range
// needed, and the reconstruction lands near the target.
func TestAdaptiveCompressTarget(t *testing.T) {
	f, body := testField(t)
	_, ts := newTestServer(t, Config{Model: rqm.ModelOptions{SampleRate: 0.1, Seed: 3}})

	resp, err := http.Post(ts.URL+"/v1/compress?target-psnr=60&chunk=4096", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive compress status %d", resp.StatusCode)
	}
	container, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rqm.Decompress(container)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := rqm.PSNR(f, back)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 57 {
		t.Fatalf("adaptive PSNR %.2f dB misses the 60 dB target", psnr)
	}
}

// TestEstimateAbsModeAndFlush covers abs-mode estimates and the operational
// cache flush: flushed profiles answer 404 afterwards.
func TestEstimateAbsModeAndFlush(t *testing.T) {
	_, body := testField(t)
	svc, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/estimate?profile=" + pr.Profile + "&eb=0.5&mode=abs")
	if err != nil {
		t.Fatal(err)
	}
	var est EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if est.AbsEB != 0.5 {
		t.Fatalf("abs-mode estimate used bound %g, want 0.5", est.AbsEB)
	}

	svc.FlushProfiles()
	resp, err = http.Get(ts.URL + "/v1/estimate?profile=" + pr.Profile + "&eb=0.5&mode=abs")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flushed profile: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestProfileOptionsChangeIdentity pins the content-addressing contract:
// the same field under different profile-relevant options is a different
// cache entry, not a false hit.
func TestProfileOptionsChangeIdentity(t *testing.T) {
	_, body := testField(t)
	svc, ts := newTestServer(t, Config{})

	post := func(query string) ProfileResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/profile"+query, "application/octet-stream",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("profile%s status %d", query, resp.StatusCode)
		}
		var pr ProfileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	base := post("")
	interp := post("?predictor=interpolation&sample=0.05&seed=9")
	if interp.Profile == base.Profile {
		t.Fatal("different predictor/sampling produced the same profile ID")
	}
	if interp.Predictor != "interpolation" {
		t.Fatalf("profiled predictor %q, want interpolation", interp.Predictor)
	}
	if builds := svc.Snapshot().ProfileBuilds; builds != 2 {
		t.Fatalf("%d sampling passes, want 2", builds)
	}
}

// TestDecompressShapelessStream covers the ReadAll fallback: a chunked
// container with no recorded shape still decompresses (as 1-D).
func TestDecompressShapelessStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = float64(i % 97)
	}
	var container bytes.Buffer
	w, err := rqm.NewWriter(&container,
		rqm.WithChunkSize(1024),
		rqm.WithStreamCompression(rqm.CodecOptions{Mode: rqm.ABS, ErrorBound: 0.01}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/decompress", "application/octet-stream",
		bytes.NewReader(container.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shapeless decompress status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	f, err := readFieldBody(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != len(vals) || f.Rank() != 1 {
		t.Fatalf("shapeless stream decoded as %d values rank %d", f.Len(), f.Rank())
	}
}

// TestSolveVariants covers the remaining inverse problems and the
// exactly-one-target contract.
func TestSolveVariants(t *testing.T) {
	_, body := testField(t)
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, tc := range []struct{ query, target string }{
		{"target-ratio=8", "ratio"},
		{"target-bitrate=4", "bitrate"},
	} {
		resp, err := http.Get(ts.URL + "/v1/solve?profile=" + pr.Profile + "&" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: status %d", tc.query, resp.StatusCode)
		}
		var sol SolveResponse
		if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sol.Target != tc.target || !(sol.AbsEB > 0) {
			t.Fatalf("solve %s: %+v", tc.query, sol)
		}
	}
	// Zero targets and two targets are both bad requests.
	for _, query := range []string{"", "&target-ratio=8&target-psnr=60"} {
		resp, err := http.Get(ts.URL + "/v1/solve?profile=" + pr.Profile + query)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("solve with targets %q: status %d, want 400", query, resp.StatusCode)
		}
		if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_param" {
			t.Fatalf("solve with targets %q: code %q", query, eb.Error.Code)
		}
		resp.Body.Close()
	}
}

// TestCorruptContainerMapsChecksum checks a bit-flipped container surfaces
// the checksum taxonomy code through the HTTP envelope.
func TestCorruptContainerMapsChecksum(t *testing.T) {
	_, body := testField(t)
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eb=0.01&stream=1&chunk=2048",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	container, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	container[len(container)/2] ^= 0xFF // flip a payload byte

	resp, err = http.Post(ts.URL+"/v1/decompress", "application/octet-stream",
		bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The corruption may surface before the first response byte (422 with
	// the typed code) — anything else means the error envelope got lost.
	if resp.StatusCode == http.StatusUnprocessableEntity {
		if eb := decodeErrorBody(t, resp); eb.Error.Code != "checksum_mismatch" && eb.Error.Code != "corrupt" {
			t.Fatalf("corrupt container code %q", eb.Error.Code)
		}
	} else if resp.StatusCode == http.StatusOK {
		if _, err := io.ReadAll(resp.Body); err == nil {
			t.Fatal("corrupt container round-tripped cleanly")
		}
	} else {
		t.Fatalf("corrupt container status %d", resp.StatusCode)
	}
}

// TestBadValueRangeParams covers the lo,hi parser's rejection paths.
func TestBadValueRangeParams(t *testing.T) {
	_, body := testField(t)
	_, ts := newTestServer(t, Config{})
	for _, vr := range []string{"5", "a,b", "9,1"} {
		q := url.Values{}
		q.Set("stream", "1")
		q.Set("value-range", vr)
		resp, err := http.Post(ts.URL+"/v1/compress?"+q.Encode(), "application/octet-stream",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("value-range %q: status %d, want 400", vr, resp.StatusCode)
		}
		if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_param" {
			t.Fatalf("value-range %q: code %q", vr, eb.Error.Code)
		}
		resp.Body.Close()
	}
}

// TestRequestScopedLossless exercises the lossless/codec override parsing.
func TestRequestScopedLossless(t *testing.T) {
	_, body := testField(t)
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&eb=0.5&lossless=flate&codec=prediction",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lossless override status %d", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	// Unknown names map to bad_param, not 500.
	resp, err = http.Post(ts.URL+"/v1/compress?lossless=zpaq", "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown lossless: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestProfileNonFiniteCurveIsValidJSON pins the JSON contract on degenerate
// fields: a step field's sampled prediction errors are all exactly zero, so
// the modeled PSNR is +Inf — the response must still be decodable JSON
// (null for non-finite numbers), not a committed 200 with a broken body.
func TestProfileNonFiniteCurveIsValidJSON(t *testing.T) {
	vals := make([]float64, 4096)
	for i := range vals {
		if i >= len(vals)/2 {
			vals[i] = 1
		}
	}
	f, err := rqm.FieldFromData("step", rqm.Float64, vals, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := f.WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step-field profile status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("profile response has an empty body")
	}
	var pr ProfileResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("profile response is not valid JSON: %v\n%s", err, raw)
	}
	if pr.Profile == "" || len(pr.Curve) != curvePoints {
		t.Fatalf("degenerate profile %+v", pr)
	}
}

// TestProfileLosslessChangesIdentity pins the cache key against the
// lossless override, which changes the modeled curve: same field, different
// lossless stage, different profile ID — never a false hit.
func TestProfileLosslessChangesIdentity(t *testing.T) {
	_, body := testField(t)
	_, ts := newTestServer(t, Config{})
	post := func(query string) ProfileResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/profile"+query, "application/octet-stream",
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr ProfileResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	plain := post("")
	flate := post("?lossless=flate")
	if flate.Profile == plain.Profile {
		t.Fatal("lossless override collided with the default profile ID")
	}
	if flate.Cached {
		t.Fatal("lossless override reported a (false) cache hit")
	}
}

// TestConstantFieldProfile pins the degenerate-profile contract end to end:
// a constant field profiles (Range 0, no curve), rel-mode estimates are an
// explicit 400 instead of all-zero answers, abs-mode still works, and
// out-of-range sample parameters reject up front.
func TestConstantFieldProfile(t *testing.T) {
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = 1e6
	}
	f, err := rqm.FieldFromData("flat", rqm.Float64, vals, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := f.WriteTo(&body); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/profile", "application/octet-stream",
		bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var pr ProfileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Range != 0 || len(pr.Curve) != 0 {
		t.Fatalf("constant-field profile %+v, want zero range and no curve", pr)
	}

	// rel estimate: explicit 400, not ratio-0/PSNR-0 nonsense.
	resp, err = http.Get(ts.URL + "/v1/estimate?profile=" + pr.Profile + "&eb=1e-3&mode=rel")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rel estimate on constant profile: status %d, want 400", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_param" {
		t.Fatalf("rel estimate on constant profile: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// abs estimate still answers.
	resp, err = http.Get(ts.URL + "/v1/estimate?profile=" + pr.Profile + "&eb=0.5&mode=abs")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("abs estimate on constant profile: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// sample outside (0, 1] rejects before any sampling pass.
	resp, err = http.Post(ts.URL+"/v1/profile?sample=1.5", "application/octet-stream",
		bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sample=1.5: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	// seed must be an unsigned integer.
	resp, err = http.Post(ts.URL+"/v1/profile?seed=-3", "application/octet-stream",
		bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("seed=-3: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}
