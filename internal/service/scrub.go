package service

import (
	"net/http"
	"time"

	"rqm/internal/store"
)

// Scrub job plumbing: POST /v1/scrub kicks off one background integrity
// pass over the shard's archive (store.Scrub) and returns 202 immediately;
// GET /v1/scrub/status reports live progress and, once finished, the full
// report. One pass at a time — a second POST while one runs answers 409
// scrub_running, so an operator (or the chaos suite) can poll status
// without racing overlapping walks.
//
// The job deliberately runs OUTSIDE the admission semaphore: a scrub is
// maintenance, and it must neither starve the serving path of permits nor
// be starved by it. The store's own publish lock already serializes the
// only contended step (quarantine renames).

// scrubJob is the mutable state of the current (or last) scrub pass,
// guarded by Service.scrubMu.
type scrubJob struct {
	deep       bool
	startedAt  time.Time
	scanned    int
	total      int
	current    string
	done       bool
	finishedAt time.Time
	report     *store.ScrubReport
	err        error
}

// ScrubStatusResponse is the GET /v1/scrub/status body (also returned by
// the POST that starts a pass).
type ScrubStatusResponse struct {
	// State is "idle" (never run), "running", "done", or "failed".
	State string `json:"state"`
	Deep  bool   `json:"deep,omitempty"`
	// Scanned/Total/Current report live progress while running.
	Scanned int    `json:"scanned"`
	Total   int    `json:"total"`
	Current string `json:"current,omitempty"`
	// StartedAt/FinishedAt bracket the pass (FinishedAt zero while running).
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
	Error      string    `json:"error,omitempty"`
	// Report is the completed pass's full result (done/failed only).
	Report *store.ScrubReport `json:"report,omitempty"`
}

func (s *Service) handleScrubStart(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	deep := param(r.URL.Query(), r.Header, "deep") == "1"
	s.scrubMu.Lock()
	if s.scrubJob != nil && !s.scrubJob.done {
		s.scrubMu.Unlock()
		return errf(http.StatusConflict, "scrub_running", "a scrub pass is already running")
	}
	job := &scrubJob{deep: deep, startedAt: time.Now().UTC()}
	s.scrubJob = job
	s.scrubMu.Unlock()
	go s.runScrub(st, job)
	return writeJSON(w, http.StatusAccepted, s.scrubStatus())
}

func (s *Service) handleScrubStatus(w http.ResponseWriter, _ *http.Request) error {
	if _, err := s.requireStore(); err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, s.scrubStatus())
}

// runScrub is the background body of one scrub pass.
func (s *Service) runScrub(st *store.Store, job *scrubJob) {
	rep, err := st.Scrub(store.ScrubOptions{
		Deep: job.deep,
		Progress: func(scanned, total int, name string) {
			s.scrubMu.Lock()
			job.scanned, job.total, job.current = scanned, total, name
			s.scrubMu.Unlock()
		},
	})
	s.scrubMu.Lock()
	job.done = true
	job.finishedAt = time.Now().UTC()
	job.current = ""
	job.report = rep
	job.err = err
	s.scrubMu.Unlock()
}

// scrubStatus snapshots the current job state.
func (s *Service) scrubStatus() ScrubStatusResponse {
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	job := s.scrubJob
	if job == nil {
		return ScrubStatusResponse{State: "idle"}
	}
	resp := ScrubStatusResponse{
		State:     "running",
		Deep:      job.deep,
		Scanned:   job.scanned,
		Total:     job.total,
		Current:   job.current,
		StartedAt: job.startedAt,
	}
	if job.done {
		resp.State = "done"
		resp.FinishedAt = job.finishedAt
		resp.Report = job.report
		if job.err != nil {
			resp.State = "failed"
			resp.Error = job.err.Error()
		}
	}
	return resp
}
