package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/store"
)

// newStoreServer builds a service backed by a fresh on-disk store.
func newStoreServer(t testing.TB) (*Service, *store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Store: st})
	return svc, st, ts
}

// putDataset admits body under name with the given query string, asserting
// success, and returns the response info.
func putDataset(t testing.TB, ts *httptest.Server, name, query string, body []byte) DatasetInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name+"?"+query, "application/octet-stream",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("put %s: status %d: %s", name, resp.StatusCode, raw)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestDatasetLifecycle(t *testing.T) {
	_, st, ts := newStoreServer(t)
	f, body := testField(t)

	info := putDataset(t, ts, "nyx", "mode=rel&eb=1e-3&chunk=1024", body)
	if info.Name != "nyx" || info.TotalValues != int64(f.Len()) || info.Generation != 0 {
		t.Fatalf("put info %+v", info)
	}
	if info.Ratio <= 1 || !info.Profiled || info.ContentHash == "" {
		t.Fatalf("put info missing substance: %+v", info)
	}
	if st.Writes() != 1 {
		t.Fatalf("store writes %d after put, want 1", st.Writes())
	}

	// List and stat agree.
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var lr ListDatasetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Datasets) != 1 || lr.Datasets[0].Name != "nyx" {
		t.Fatalf("list %+v", lr)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets/nyx?manifest=1")
	if err != nil {
		t.Fatal(err)
	}
	var stat DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&stat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stat.ContentHash != info.ContentHash || stat.Chunks != info.Chunks {
		t.Fatalf("stat %+v differs from put %+v", stat, info)
	}

	// GET returns the decompressed field within the stored bound.
	resp, err = http.Get(ts.URL + "/v1/datasets/nyx")
	if err != nil {
		t.Fatal(err)
	}
	back, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, back, rqm.REL, 1e-3*(1+1e-12)); err != nil {
		t.Fatal(err)
	}

	// GET ?raw=1 returns the container verbatim, self-decodable.
	resp, err = http.Get(ts.URL + "/v1/datasets/nyx?raw=1")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != info.ContainerBytes {
		t.Fatalf("raw container %d bytes, manifest says %d", len(blob), info.ContainerBytes)
	}
	if _, err := rqm.Decompress(blob); err != nil {
		t.Fatalf("raw container does not decode: %v", err)
	}

	// DELETE removes it; a second GET is a typed 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/nyx", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets/nyx")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
	if body := decodeErrorBody(t, resp); body.Error.Code != "dataset_not_found" {
		t.Fatalf("get after delete: code %q", body.Error.Code)
	}
}

// TestDatasetSlice pins the acceptance contract: a slice read decompresses
// only the covered chunks and returns bytes identical to the same range of
// a full decompress.
func TestDatasetSlice(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	_, body := testField(t)
	info := putDataset(t, ts, "sl", "mode=abs&eb=1e-4&chunk=512", body)
	if info.Chunks < 4 {
		t.Fatalf("test needs several chunks, got %d", info.Chunks)
	}

	// Full decompress for ground truth.
	resp, err := http.Get(ts.URL + "/v1/datasets/sl")
	if err != nil {
		t.Fatal(err)
	}
	full, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	const off, n = 700, 500 // covers chunks 1 and 2 of 512 values each
	before := st.ChunkReads()
	resp, err = http.Get(fmt.Sprintf("%s/v1/datasets/sl/slice?off=%d&len=%d", ts.URL, off, n))
	if err != nil {
		t.Fatal(err)
	}
	slice, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ChunkReads() - before; got != 2 {
		t.Errorf("slice decompressed %d chunks, want 2 (of %d total)", got, info.Chunks)
	}
	if slice.Len() != n {
		t.Fatalf("slice holds %d values, want %d", slice.Len(), n)
	}
	for i := 0; i < n; i++ {
		if slice.Data[i] != full.Data[off+i] {
			t.Fatalf("slice[%d] = %v, full decompress has %v", i, slice.Data[i], full.Data[off+i])
		}
	}
	if svc.Snapshot().SliceReads != 1 {
		t.Errorf("slice_reads metric %d, want 1", svc.Snapshot().SliceReads)
	}

	// Out-of-range is a typed 400.
	resp, err = http.Get(ts.URL + "/v1/datasets/sl/slice?off=999999&len=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range slice: status %d", resp.StatusCode)
	}
	if body := decodeErrorBody(t, resp); body.Error.Code != "bad_range" {
		t.Fatalf("out-of-range slice: code %q", body.Error.Code)
	}
}

// postRecompact issues one recompaction request and decodes the report.
func postRecompact(t testing.TB, ts *httptest.Server, name, query string) (RecompactResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name+"/recompact?"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RecompactResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return rr, resp.StatusCode
}

// TestRecompactSkipsWhenModelSaysMet pins the zero-rewrite contract: a
// target the cached model says is already achieved must not touch the
// container.
func TestRecompactSkipsWhenModelSaysMet(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	_, body := testField(t)
	info := putDataset(t, ts, "d", "mode=rel&eb=1e-3", body)
	if info.Ratio <= 2 {
		t.Fatalf("test wants a ratio comfortably above 2, got %.2f", info.Ratio)
	}

	writesBefore := st.Writes()
	rr, status := postRecompact(t, ts, "d", fmt.Sprintf("target-ratio=%g", info.Ratio/2))
	if status != http.StatusOK || !rr.Skipped {
		t.Fatalf("recompact to met target: status %d, %+v", status, rr)
	}
	if got := st.Writes() - writesBefore; got != 0 {
		t.Fatalf("met-target recompact performed %d container writes, want 0", got)
	}
	if rr.NewBound != rr.OldBound || rr.Generation != 0 {
		t.Fatalf("skipped recompact changed state: %+v", rr)
	}
	if snap := svc.Snapshot(); snap.RecompactionsSkipped != 1 || snap.Recompactions != 0 {
		t.Fatalf("metrics %+v", snap)
	}
}

func TestRecompactRewritesToTargetRatio(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	f, body := testField(t)
	info := putDataset(t, ts, "d", "mode=abs&eb=1e-6", body)

	target := info.Ratio * 2
	writesBefore := st.Writes()
	rr, status := postRecompact(t, ts, "d", fmt.Sprintf("target-ratio=%g", target))
	if status != http.StatusOK {
		t.Fatalf("recompact status %d", status)
	}
	if rr.Skipped {
		t.Fatalf("recompact skipped: %+v", rr)
	}
	if got := st.Writes() - writesBefore; got != 1 {
		t.Fatalf("recompact performed %d container writes, want 1", got)
	}
	if rr.NewBound <= rr.OldBound || rr.NewRatio <= rr.OldRatio || rr.Generation != 1 {
		t.Fatalf("recompact report %+v", rr)
	}

	// The rewritten dataset still decodes, within the new (looser) bound.
	resp, err := http.Get(ts.URL + "/v1/datasets/d")
	if err != nil {
		t.Fatal(err)
	}
	back, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Recompaction decompresses the gen-0 reconstruction (bounded by the old
	// bound) and recompresses it at the new bound: the end-to-end error vs
	// the original is at most the sum of both bounds.
	if err := rqm.VerifyErrorBound(f, back, rqm.ABS, (rr.OldBound+rr.NewBound)*(1+1e-12)); err != nil {
		t.Fatal(err)
	}
	stat, err := st.Manifest("d")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Generation != 1 || stat.Mode != "abs" || stat.ErrorBound != rr.NewBound {
		t.Fatalf("rewritten manifest %+v", stat)
	}
	if stat.Profile == nil {
		t.Fatal("rewrite dropped the cached profile")
	}
	if snap := svc.Snapshot(); snap.Recompactions != 1 {
		t.Fatalf("recompactions metric %d, want 1", snap.Recompactions)
	}

	// A PSNR target the (now loose) archive cannot reach is a typed skip,
	// not a silent quality lie.
	writesBefore = st.Writes()
	rr2, status := postRecompact(t, ts, "d", "target-psnr=200")
	if status != http.StatusOK || !rr2.Skipped {
		t.Fatalf("impossible psnr recompact: status %d, %+v", status, rr2)
	}
	if st.Writes() != writesBefore {
		t.Fatal("impossible psnr recompact rewrote the container")
	}
}

func TestDatasetEndpointsWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := testField(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/datasets"},
		{http.MethodPost, "/v1/datasets/x"},
		{http.MethodGet, "/v1/datasets/x"},
		{http.MethodDelete, "/v1/datasets/x"},
		{http.MethodGet, "/v1/datasets/x/slice?off=0&len=1"},
		{http.MethodPost, "/v1/datasets/x/recompact?target-ratio=2"},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("%s %s without store: status %d, want 501", tc.method, tc.path, resp.StatusCode)
		}
		if body := decodeErrorBody(t, resp); body.Error.Code != "store_disabled" {
			t.Fatalf("%s %s without store: code %q", tc.method, tc.path, body.Error.Code)
		}
		resp.Body.Close()
	}
}

func TestDatasetPutRejections(t *testing.T) {
	_, _, ts := newStoreServer(t)
	_, body := testField(t)

	// PWREL has no single absolute bound per chunk to index.
	resp, err := http.Post(ts.URL+"/v1/datasets/x?mode=pwrel&eb=1e-3", "", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pwrel put: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// An invalid name is rejected before any work happens.
	resp, err = http.Post(ts.URL+"/v1/datasets/a%20b", "", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-name put: status %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_name" {
		t.Fatalf("bad-name put: code %q", eb.Error.Code)
	}
	resp.Body.Close()

	// A non-field body is a typed 422.
	resp, err = http.Post(ts.URL+"/v1/datasets/x", "", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("junk put: status %d", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_field" {
		t.Fatalf("junk put: code %q", eb.Error.Code)
	}
}
