package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"rqm"
	"rqm/internal/store"
)

// ErrorBody is the JSON error envelope every failed request returns; Code is
// stable and machine-matchable, Message is human-oriented detail.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// apiError carries an HTTP status and a stable error code alongside the
// message. Handlers return plain errors; writeError maps them here.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// errf builds an apiError in place.
func errf(status int, code, format string, args ...interface{}) error {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// containerErrorCodes maps the codec package's typed container errors to
// stable API codes. Every Decompress/Inspect parse failure wraps exactly one
// of these, so the mapping is total for container input.
var containerErrorCodes = []struct {
	is   error
	code string
}{
	{rqm.ErrBadMagic, "bad_magic"},
	{rqm.ErrTruncated, "truncated"},
	{rqm.ErrUnsupportedVersion, "unsupported_version"},
	{rqm.ErrUnknownCodec, "unknown_codec"},
	{rqm.ErrChecksum, "checksum_mismatch"},
	{rqm.ErrCorrupt, "corrupt"},
}

// mapError resolves any handler error to (status, code, message). Typed
// container errors become 422 Unprocessable Entity — the request was
// syntactically fine but the payload is not a decodable container/field;
// everything unrecognized is a 500.
func mapError(err error) (int, string, string) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status, ae.code, ae.msg
	}
	// Stored-data corruption gets its own code, checked before the generic
	// container mapping (a corrupt read wraps both sentinels): unlike a 422
	// on client-supplied bytes, this one means THIS COPY of the dataset is
	// rotten — a replicated reader should fail over and repair it; and
	// unlike a 503, retrying the same shard will not help.
	if errors.Is(err, store.ErrCorruptDataset) {
		return http.StatusUnprocessableEntity, "corrupt_dataset", err.Error()
	}
	for _, m := range containerErrorCodes {
		if errors.Is(err, m.is) {
			return http.StatusUnprocessableEntity, m.code, err.Error()
		}
	}
	if errors.Is(err, rqm.ErrStreamNeedsValueRange) {
		return http.StatusBadRequest, "rel_needs_value_range", err.Error()
	}
	// Store layer: typed dataset/manifest errors keep their shape over HTTP.
	switch {
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound, "dataset_not_found", err.Error()
	case errors.Is(err, store.ErrBadName):
		return http.StatusBadRequest, "bad_name", err.Error()
	case errors.Is(err, store.ErrBadRange):
		return http.StatusBadRequest, "bad_range", err.Error()
	case errors.Is(err, store.ErrConflict):
		return http.StatusConflict, "conflict", err.Error()
	case errors.Is(err, store.ErrNoResidual):
		// An exact read (or bodyless promote) against a lossy-only dataset:
		// the request is well-formed, the dataset simply has no lossless tier
		// — a 409 the client resolves by promoting with the original.
		return http.StatusConflict, "no_residual", err.Error()
	case errors.Is(err, store.ErrManifestCorrupt), errors.Is(err, store.ErrManifestVersion):
		return http.StatusInternalServerError, "manifest_corrupt", err.Error()
	}
	return http.StatusInternalServerError, "internal", err.Error()
}

// writeError emits the JSON error envelope for err.
func writeError(w http.ResponseWriter, err error) {
	status, code, msg := mapError(err)
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&body)
}
