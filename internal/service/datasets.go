package service

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/partition"
	"rqm/internal/store"
)

// Dataset endpoints: the persistent, RQ-indexed archive behind the
// stateless compressor. A put profiles the field once, compresses it
// through the chunked pipeline, and commits container + manifest (chunk
// index, content hash, cached ratio-quality profile) crash-safely; from
// then on slice reads decompress only the chunks covering the requested
// element range, and recompaction solves the cached model for a new bound —
// skipping the rewrite entirely when the model says the target is already
// met. The store closes the paper's loop: the model doesn't just pick the
// bound at compress time, it keeps answering for the artifact's lifetime.
//
//	POST   /v1/datasets/{name}            .rqmf body -> admit/replace dataset
//	                                      (?if-generation=G -> CAS replace)
//	GET    /v1/datasets                   list dataset summaries
//	GET    /v1/datasets/{name}            .rqmf field (?raw=1 container,
//	                                      ?manifest=1 summary JSON,
//	                                      ?manifest=1&full=1 full manifest)
//	DELETE /v1/datasets/{name}            remove dataset
//	GET    /v1/datasets/{name}/slice      ?off=&len= -> 1-D .rqmf of the range
//	POST   /v1/datasets/{name}/recompact  ?target-ratio=|target-psnr= ->
//	                                      model-guided rewrite (or skip;
//	                                      ?adaptive-space=1 replans chunk
//	                                      geometry spatially and records the
//	                                      partitioner in the manifest)
//	POST   /v1/datasets/{name}/raw        framed manifest + container bytes
//	                                      (+ residual bytes when the manifest
//	                                      declares a residual layer) ->
//	                                      verbatim replica admit (no re-compress)
//	POST   /v1/datasets/{name}/promote    .rqmf original body -> add residual
//	POST   /v1/datasets/{name}/demote     drop residual, keep lossy base

// DatasetInfo is the JSON summary of one stored dataset (put/stat/list
// responses; the manifest minus the profile blob).
type DatasetInfo struct {
	Name           string    `json:"name"`
	CreatedAt      time.Time `json:"created_at"`
	Generation     int       `json:"generation"`
	PrecBits       int       `json:"prec_bits"`
	Dims           []int     `json:"dims"`
	Codec          string    `json:"codec"`
	Predictor      string    `json:"predictor,omitempty"`
	Mode           string    `json:"mode"`
	ErrorBound     float64   `json:"error_bound"`
	Lossless       string    `json:"lossless,omitempty"`
	Partitioner    string    `json:"partitioner,omitempty"`
	ContentHash    string    `json:"content_hash"`
	TotalValues    int64     `json:"total_values"`
	OriginalBytes  int64     `json:"original_bytes"`
	ContainerBytes int64     `json:"container_bytes"`
	Ratio          float64   `json:"ratio"`
	EstPSNR        Float     `json:"est_psnr"`
	Chunks         int       `json:"chunks"`
	Profiled       bool      `json:"profiled"`
	// Exact reports a residual layer: the dataset can serve the original bit
	// for bit (?exact=1). ResidualBytes/ResidualBackend describe its cost.
	Exact           bool   `json:"exact"`
	ResidualBytes   int64  `json:"residual_bytes,omitempty"`
	ResidualBackend string `json:"residual_backend,omitempty"`
}

// ListDatasetsResponse is the GET /v1/datasets body.
type ListDatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// RecompactResponse is the POST /v1/datasets/{name}/recompact body.
type RecompactResponse struct {
	Name string `json:"name"`
	// Skipped reports a zero-rewrite decision: the cached model answered
	// that the target is already met (or unreachable from a lossy archive).
	Skipped bool   `json:"skipped"`
	Reason  string `json:"reason,omitempty"`
	// Target and TargetValue echo the request.
	Target      string  `json:"target"`
	TargetValue float64 `json:"target_value"`
	// OldBound/NewBound are the end-to-end absolute error guarantees vs the
	// original data before/after (new == old when skipped). A rewrite's
	// input is itself a reconstruction, so NewBound is the accumulated
	// old+solved bound, not the rewrite's own.
	OldBound float64 `json:"old_bound"`
	NewBound float64 `json:"new_bound"`
	// OldRatio/NewRatio are the achieved compression ratios before/after.
	OldRatio float64 `json:"old_ratio"`
	NewRatio float64 `json:"new_ratio"`
	// EstPSNR is the model's quality estimate at the (new) bound.
	EstPSNR Float `json:"est_psnr"`
	// Generation is the dataset's rewrite count after this request.
	Generation int `json:"generation"`
}

func datasetInfo(m *store.Manifest) DatasetInfo {
	di := DatasetInfo{
		Name:           m.Name,
		CreatedAt:      m.CreatedAt,
		Generation:     m.Generation,
		PrecBits:       m.PrecBits,
		Dims:           m.Dims,
		Codec:          m.Codec,
		Predictor:      m.Predictor,
		Mode:           m.Mode,
		ErrorBound:     m.ErrorBound,
		Lossless:       m.Lossless,
		Partitioner:    m.Partitioner,
		ContentHash:    m.ContentHash,
		TotalValues:    m.TotalValues,
		OriginalBytes:  m.OriginalBytes,
		ContainerBytes: m.ContainerBytes,
		Ratio:          m.Ratio,
		EstPSNR:        Float(m.EstPSNR),
		Chunks:         len(m.Chunks),
		Profiled:       m.Profile != nil,
	}
	if m.Residual != nil {
		di.Exact = true
		di.ResidualBytes = m.Residual.Bytes
		di.ResidualBackend = m.Residual.Backend
	}
	return di
}

// requireStore gates the dataset endpoints on a configured store.
func (s *Service) requireStore() (*store.Store, error) {
	if s.store == nil {
		return nil, errf(http.StatusNotImplemented, "store_disabled",
			"this server has no dataset store (start rqserved with -store-dir)")
	}
	return s.store, nil
}

// pathName validates the {name} path segment.
func pathName(r *http.Request) (string, error) {
	name := r.PathValue("name")
	if err := store.ValidateName(name); err != nil {
		return "", errf(http.StatusBadRequest, "bad_name", "%v", err)
	}
	return name, nil
}

func (s *Service) handleDatasetList(w http.ResponseWriter, _ *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	ms, err := st.List()
	if err != nil {
		return err
	}
	resp := ListDatasetsResponse{Datasets: make([]DatasetInfo, 0, len(ms))}
	for _, m := range ms {
		resp.Datasets = append(resp.Datasets, datasetInfo(m))
	}
	return writeJSON(w, http.StatusOK, &resp)
}

func (s *Service) handleDatasetPut(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	eng, err := s.engineFor(q, r.Header)
	if err != nil {
		return err
	}
	o := eng.Options()
	if o.Mode != rqm.ABS && o.Mode != rqm.REL {
		return errf(http.StatusBadRequest, "bad_param",
			"datasets store a single absolute bound per chunk: use mode=abs or mode=rel, not %s", o.Mode)
	}
	// Parse the field straight off the wire, hashing the bytes as they pass:
	// the raw body is never retained, so a put's peak memory is one parsed
	// field, not field + body.
	hasher := sha256.New()
	f, err := readFieldBody(io.TeeReader(r.Body, hasher))
	if err != nil {
		return err
	}
	f.Name = name

	// One sampling pass buys the dataset its lifetime of O(sample) answers:
	// the profile is cached in the manifest and drives every later
	// admission, estimate, and recompaction decision.
	p, err := s.profileField(eng, f, q, r.Header)
	if err != nil {
		return err
	}
	lo, hi := f.ValueRange()
	abs := o.ErrorBound
	if o.Mode == rqm.REL {
		abs = o.ErrorBound * (hi - lo)
	}
	est := p.EstimateAt(abs)

	var streamOpts []rqm.StreamOption
	if v := param(q, r.Header, "chunk"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return errf(http.StatusBadRequest, "bad_param", "chunk: %q is not a positive integer", v)
		}
		streamOpts = append(streamOpts, rqm.WithChunkSize(n))
	}

	man := &store.Manifest{
		CreatedAt:     time.Now().UTC(),
		PrecBits:      f.Prec.Bits(),
		Dims:          append([]int(nil), f.Dims...),
		Codec:         eng.Codec().Name(),
		Predictor:     o.Predictor.String(),
		Mode:          o.Mode.String(),
		ErrorBound:    o.ErrorBound,
		Lossless:      o.Lossless.String(),
		ContentHash:   hex.EncodeToString(hasher.Sum(nil)),
		OriginalBytes: f.OriginalBytes(),
		EstPSNR:       finiteOrZero(est.PSNR),
		Profile:       store.NewProfileRecord(p),
	}
	// ?created-at pins the manifest's identity timestamp instead of stamping
	// time.Now(). A replicating router sets one value across a fan-out so
	// every replica commits the identical (created_at, generation) version —
	// without it, R independently stamped replicas look divergent to the
	// version arbiter even though their bytes agree.
	if v := param(q, r.Header, "created-at"); v != "" {
		ts, perr := time.Parse(time.RFC3339Nano, v)
		if perr != nil {
			return errf(http.StatusBadRequest, "bad_param", "created-at: %q is not an RFC3339 timestamp", v)
		}
		man.CreatedAt = ts.UTC()
	}
	// ?if-generation=G turns the put into a compare-and-swap against the
	// committed version (store.Replace): a writer that read generation G can
	// demand its update lands on G or fails with a typed 409 — never silently
	// clobbering a concurrent re-put or recompaction. The CAS put keeps the
	// dataset's identity (CreatedAt) and bumps its generation.
	var base *store.Manifest
	if v := param(q, r.Header, "if-generation"); v != "" {
		gen, perr := strconv.Atoi(v)
		if perr != nil || gen < 0 {
			return errf(http.StatusBadRequest, "bad_param", "if-generation: %q is not a generation", v)
		}
		if base, err = st.Manifest(name); err != nil {
			if errors.Is(err, store.ErrNotFound) {
				return errf(http.StatusConflict, "conflict",
					"if-generation=%d but dataset %q does not exist", gen, name)
			}
			return err
		}
		if base.Generation != gen {
			return errf(http.StatusConflict, "conflict",
				"dataset %q is at generation %d, not %d", name, base.Generation, gen)
		}
		man.CreatedAt = base.CreatedAt
		man.Generation = base.Generation + 1
	}
	build := func(cw io.Writer) (*store.Manifest, error) {
		bw := bufio.NewWriterSize(cw, 1<<20)
		sw, err := eng.NewFieldStreamWriter(bw, f, streamOpts...)
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			sw.Close()
			return nil, err
		}
		if err := sw.Close(); err != nil {
			return nil, err
		}
		return man, bw.Flush()
	}
	// ?exact=1 stages a residual layer alongside the container: the put
	// becomes progressive-quality, able to serve the original bit for bit.
	rb, err := residualBuilderFor(q, r.Header, f.Data, f.Prec)
	if err != nil {
		return err
	}
	var committed *store.Manifest
	switch {
	case base != nil && rb != nil:
		committed, err = st.ReplaceWithResidual(name, base, build, rb)
	case base != nil:
		committed, err = st.Replace(name, base, build)
	case rb != nil:
		committed, err = st.PutWithResidual(name, build, rb)
	default:
		committed, err = st.Put(name, build)
	}
	if err != nil {
		return putError(err)
	}
	s.count(&s.datasetPuts, 1)
	return writeJSON(w, http.StatusCreated, datasetInfo(committed))
}

// profileField builds the request-scoped profile for a dataset put,
// honoring sample/seed overrides exactly like POST /v1/profile.
func (s *Service) profileField(eng *rqm.Engine, f *rqm.Field, q url.Values, h http.Header) (*rqm.Profile, error) {
	sample, hasSample, err := floatParam(q, h, "sample")
	if err != nil {
		return nil, err
	}
	if hasSample && (sample <= 0 || sample > 1) {
		return nil, errf(http.StatusBadRequest, "bad_param", "sample: %g is outside (0, 1]", sample)
	}
	var seed uint64
	if v := param(q, h, "seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, errf(http.StatusBadRequest, "bad_param", "seed: %q is not an unsigned integer", v)
		}
	}
	mopts := s.model
	if sample > 0 {
		mopts.SampleRate = sample
	}
	if seed > 0 {
		mopts.Seed = seed
	}
	peng, err := cloneEngine(eng, mopts)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad_param", "%v", err)
	}
	p, err := peng.Profile(f)
	if err != nil {
		return nil, errf(http.StatusUnprocessableEntity, "profile_failed", "%v", err)
	}
	return p, nil
}

// cloneEngine rebuilds an engine with substituted model options.
func cloneEngine(eng *rqm.Engine, mopts rqm.ModelOptions) (*rqm.Engine, error) {
	o := eng.Options()
	return rqm.NewEngine(
		rqm.WithCodec(eng.Codec()),
		rqm.WithMode(o.Mode),
		rqm.WithErrorBound(o.ErrorBound),
		rqm.WithPredictor(o.Predictor),
		rqm.WithLossless(o.Lossless),
		rqm.WithRadius(o.Radius),
		rqm.WithConcurrency(eng.Concurrency()),
		rqm.WithModelOptions(mopts),
	)
}

func (s *Service) handleDatasetGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	m, err := st.Manifest(name)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	if param(q, r.Header, "manifest") == "1" {
		if param(q, r.Header, "full") == "1" {
			// The complete manifest, chunk index and cached profile included:
			// together with ?raw=1 this is everything a replica repair needs
			// to clone the dataset without decompressing a single chunk.
			return writeJSON(w, http.StatusOK, m)
		}
		info := datasetInfo(m)
		return writeJSON(w, http.StatusOK, &info)
	}
	// Payload paths ship container-scale bytes: heavy from here on.
	release, err := s.admit(w)
	if err != nil {
		return err
	}
	defer release()
	path, err := st.ContainerPath(name)
	if err != nil {
		return err
	}
	raw := param(q, r.Header, "raw") == "1"
	// Verify before serve. Both payload paths commit a 200 and then stream;
	// corruption discovered mid-body could only truncate the response. A
	// shallow verification pass up front (container structure + every chunk
	// CRC — cheap next to the decompression that follows) turns stored rot
	// into a typed 422 corrupt_dataset before the status goes out, which is
	// what lets a replicated router fail over cleanly and repair this copy.
	// The raw path pays it only on request (?verify=1): replica sync asks
	// for it so corruption cannot propagate; plain clients keep a verbatim
	// sendfile-speed copy, protected end-to-end by the manifest's
	// ContainerHash instead.
	if !raw || param(q, r.Header, "verify") == "1" {
		if err := st.VerifyDataset(name, false); err != nil {
			return err
		}
	}
	// The residual tier's two read paths: ?exact=1 decodes losslessly (its
	// own end-to-end hash check replaces the streaming container path), and
	// ?raw=1&residual=1 ships the residual file verbatim for replica sync.
	if !raw && param(q, r.Header, "exact") == "1" {
		s.count(&s.datasetGets, 1)
		return s.serveExact(w, st, m)
	}
	if raw && param(q, r.Header, "residual") == "1" {
		s.count(&s.datasetGets, 1)
		return s.serveResidualRaw(w, st, m)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s.count(&s.datasetGets, 1)
	if raw {
		// The stored container, verbatim: clients can random-access it with
		// ReadStreamIndex/ReadStreamChunk without another server round trip.
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(m.ContainerBytes, 10))
		w.Header().Set("X-RQM-Dataset", m.Name)
		_, err := io.Copy(w, f)
		return ignoreWriteErr(err)
	}
	// Default: decompress back to a .rqmf field, streamed chunk by chunk.
	sr, err := rqm.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return err
	}
	defer sr.Close()
	hdr := sr.Header()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-RQM-Field", hdr.Name)
	w.Header().Set("X-RQM-Dataset", m.Name)
	if _, err := grid.WriteHeader(w, hdr.Prec, hdr.Dims); err != nil {
		return ignoreWriteErr(err)
	}
	if _, err := io.Copy(w, sr); err != nil {
		panic(http.ErrAbortHandler) // mid-stream failure: truncate, don't lie
	}
	if sr.Values() != hdr.TotalFromDims() {
		panic(http.ErrAbortHandler)
	}
	return nil
}

func (s *Service) handleDatasetDelete(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	if err := st.Delete(name); err != nil {
		return err
	}
	s.count(&s.datasetDeletes, 1)
	return writeJSON(w, http.StatusOK, map[string]interface{}{"deleted": name})
}

func (s *Service) handleDatasetSlice(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	off, err := intParam(q, r.Header, "off", 0)
	if err != nil {
		return err
	}
	n, err := intParam(q, r.Header, "len", -1)
	if err != nil {
		return err
	}
	if n <= 0 {
		return errf(http.StatusBadRequest, "bad_param", "slice needs a positive len parameter")
	}
	m, err := st.Manifest(name)
	if err != nil {
		return err
	}
	// ?exact=1 reads the range at the lossless tier: same covering-chunk
	// decode, plus each chunk's residual block — still O(covering chunks).
	exact := param(q, r.Header, "exact") == "1"
	var vals []float64
	if exact {
		vals, err = st.ReadRangeExact(m, off, n)
	} else {
		vals, err = st.ReadRangeWith(m, off, n)
	}
	if err != nil {
		return err
	}
	s.count(&s.sliceReads, 1)
	if exact {
		s.count(&s.exactReads, 1)
	}
	// The slice travels as a self-describing 1-D .rqmf field in the
	// dataset's original precision; the offset rides in a header.
	sf, err := grid.FromData(m.Name, m.Prec(), vals, len(vals))
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-RQM-Dataset", m.Name)
	w.Header().Set("X-RQM-Offset", strconv.FormatInt(off, 10))
	if exact {
		w.Header().Set("X-RQM-Exact", "1")
	}
	_, err = sf.WriteTo(w)
	return ignoreWriteErr(err)
}

func (s *Service) handleDatasetRecompact(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	q := r.URL.Query()
	targetRatio, hasRatio, err := floatParam(q, r.Header, "target-ratio")
	if err != nil {
		return err
	}
	targetPSNR, hasPSNR, err := floatParam(q, r.Header, "target-psnr")
	if err != nil {
		return err
	}
	if hasRatio == hasPSNR {
		return errf(http.StatusBadRequest, "bad_param",
			"recompact needs exactly one of target-ratio, target-psnr")
	}
	if (hasRatio && !(targetRatio > 0)) || (hasPSNR && !(targetPSNR > 0)) {
		return errf(http.StatusBadRequest, "bad_param", "recompaction target must be positive")
	}

	m, err := st.Manifest(name)
	if err != nil {
		return err
	}
	p, err := m.RQProfile()
	if err != nil {
		return err
	}
	curAbs := m.ErrorBound
	if m.Mode == "rel" {
		curAbs = m.ErrorBound * p.Range
	}

	resp := &RecompactResponse{
		Name:       name,
		OldBound:   curAbs,
		NewBound:   curAbs,
		OldRatio:   m.Ratio,
		NewRatio:   m.Ratio,
		EstPSNR:    Float(m.EstPSNR),
		Generation: m.Generation,
	}

	// The decision is answered entirely from the cached profile — O(sample),
	// no decompression: only a rewrite the model endorses touches the
	// container. A residual layer changes the calculus: the rewrite re-encodes
	// from the TRUE original (recovered bit-exactly), so the "a lossy archive
	// cannot improve" skips do not apply — any model-solved bound is reachable,
	// error does not accumulate, and tightening quality is legal.
	hasResidual := m.Residual != nil
	var newAbs float64
	switch {
	case hasRatio:
		resp.Target, resp.TargetValue = "ratio", targetRatio
		if m.Ratio >= targetRatio {
			resp.Skipped = true
			resp.Reason = fmt.Sprintf("achieved ratio %.2fx already meets the %.2fx target", m.Ratio, targetRatio)
			break
		}
		newAbs, err = p.ErrorBoundForRatio(targetRatio)
		if err != nil {
			return errf(http.StatusBadRequest, "unsolvable", "%v", err)
		}
		if newAbs <= curAbs && !hasResidual {
			resp.Skipped = true
			resp.Reason = fmt.Sprintf(
				"model bound %.6g for ratio %.2fx is not looser than the stored bound %.6g; rewriting cannot gain",
				newAbs, targetRatio, curAbs)
		}
	default:
		resp.Target, resp.TargetValue = "psnr", targetPSNR
		newAbs, err = p.ErrorBoundForPSNR(targetPSNR)
		if err != nil {
			return errf(http.StatusBadRequest, "unsolvable", "%v", err)
		}
		if newAbs <= curAbs*(1+1e-9) && !hasResidual {
			resp.Skipped = true
			resp.Reason = fmt.Sprintf(
				"stored bound %.6g is already at or beyond the bound %.6g the model solves for %.4g dB; "+
					"a lossy archive cannot be recompressed to higher quality", curAbs, newAbs, targetPSNR)
		}
	}
	if resp.Skipped {
		s.count(&s.recompactSkips, 1)
		return writeJSON(w, http.StatusOK, resp)
	}

	// The rewrite keeps the manifest-recorded partitioner by default, so a
	// dataset once rewritten with spatial partitioning stays spatially
	// partitioned; ?adaptive-space=1 opts a fixed-slab dataset in.
	partName := m.Partitioner
	if param(q, r.Header, "adaptive-space") == "1" {
		partName = partition.VarianceQuadtreeName
	}
	policy := rqm.AdaptiveBound{TargetRatio: targetRatio}
	if hasPSNR {
		policy = rqm.AdaptiveBound{TargetPSNR: targetPSNR}
	}

	// With a residual layer, recover the true original first: the rewrite's
	// input is then exact, and the new residual is rebuilt against the new
	// container — accumulated error dies here instead of compounding.
	var orig []float64
	if hasResidual {
		if orig, err = st.ReadRangeExact(m, 0, m.TotalValues); err != nil {
			return err
		}
	}
	nm, rwStats, err := s.rewriteDataset(st, m, curAbs, newAbs, p, partName, policy, orig)
	if err != nil {
		return err
	}
	s.count(&s.recompactions, 1)
	if partName != "" && partName != partition.FixedSlabName {
		s.count(&s.adaptiveSpaceRuns, 1)
		s.count(&s.partitionRegions, int64(rwStats.Chunks))
		s.count(&s.partitionSplits, int64(rwStats.Splits))
	}
	resp.NewBound = nm.ErrorBound
	resp.NewRatio = nm.Ratio
	resp.EstPSNR = Float(nm.EstPSNR)
	resp.Generation = nm.Generation
	return writeJSON(w, http.StatusOK, resp)
}

// rewriteDataset decompresses the stored container and recompresses it at
// the model-solved absolute bound through the stream pipeline, committing
// the replacement with the same crash-safe protocol as a put — conditioned
// on the dataset still being the version the decision was made against
// (store.Replace; a concurrent re-put or delete aborts with 409). The
// cached profile (a model of the *original* data) rides along unchanged —
// that is what keeps the next recompaction decision O(sample) too.
//
// The rewrite's input is the stored reconstruction, already up to curAbs
// away from the original, so the manifest records curAbs+newAbs — the
// honest end-to-end guarantee against the original data — not the rewrite's
// own bound. Each generation's recorded bound therefore stays a true bound
// as errors accumulate.
//
// With orig non-nil (the true original, recovered through the residual
// layer) the accumulation story inverts: the rewrite's input IS the original,
// the manifest records newAbs alone, and the residual is rebuilt against the
// new container so the dataset stays bit-exact at generation+1.
//
// With a non-fixed partName the rewrite replans chunk geometry spatially:
// the named partitioner splits the field where variance is non-uniform and
// the policy solves a bound per region, so the per-chunk bounds vary and the
// manifest records curAbs plus the loosest of them. Partitioners are
// deterministic, so recording partName makes the geometry reproducible by
// the next recompaction.
func (s *Service) rewriteDataset(st *store.Store, m *store.Manifest, curAbs, newAbs float64, p *rqm.Profile, partName string, policy rqm.AdaptiveBound, orig []float64) (*store.Manifest, rqm.StreamStats, error) {
	var stats rqm.StreamStats
	var f *rqm.Field
	baseErr := curAbs
	if orig != nil {
		// Exact input: no inherited error, the new bound stands alone.
		baseErr = 0
		ef, err := grid.FromData(m.Name, m.Prec(), orig, m.Dims...)
		if err != nil {
			return nil, stats, err
		}
		f = ef
	} else {
		path, err := st.ContainerPath(m.Name)
		if err != nil {
			return nil, stats, err
		}
		cf, err := os.Open(path)
		if err != nil {
			return nil, stats, err
		}
		sr, err := rqm.NewReader(bufio.NewReaderSize(cf, 1<<20))
		if err != nil {
			cf.Close()
			return nil, stats, err
		}
		f, err = sr.ReadAll()
		sr.Close()
		cf.Close()
		if err != nil {
			return nil, stats, err
		}
		f.Name = m.Name
		f.Prec = m.Prec()
	}

	kind, err := rqm.ParsePredictorKind(m.Predictor)
	if err != nil {
		kind = rqm.Lorenzo
	}
	lossless := rqm.LosslessNone
	if m.Lossless != "" {
		if ll, err := rqm.ParseLosslessKind(m.Lossless); err == nil {
			lossless = ll
		}
	}
	opts := []rqm.EngineOption{
		rqm.WithMode(rqm.ABS),
		rqm.WithErrorBound(newAbs),
		rqm.WithPredictor(kind),
		rqm.WithLossless(lossless),
	}
	if m.Codec != "" {
		opts = append(opts, rqm.WithCodecName(m.Codec))
	}
	eng, err := rqm.NewEngine(opts...)
	if err != nil {
		return nil, stats, err
	}
	effective := baseErr + newAbs
	est := p.EstimateAt(effective)
	nm := &store.Manifest{
		CreatedAt:     m.CreatedAt,
		Generation:    m.Generation + 1,
		PrecBits:      m.PrecBits,
		Dims:          m.Dims,
		Codec:         m.Codec,
		Predictor:     m.Predictor,
		Mode:          "abs",
		ErrorBound:    effective,
		Lossless:      m.Lossless,
		Partitioner:   partName,
		ContentHash:   m.ContentHash,
		OriginalBytes: m.OriginalBytes,
		EstPSNR:       finiteOrZero(est.PSNR),
		Profile:       m.Profile,
	}
	// The rewrite keeps the dataset's chunk size: slice-read granularity is
	// a property the owner tuned at put time, not a recompaction side
	// effect. A spatial partitioner treats it as the region-size cap.
	var streamOpts []rqm.StreamOption
	if m.ChunkValues > 0 {
		streamOpts = append(streamOpts, rqm.WithChunkSize(m.ChunkValues))
	}
	spatial := partName != "" && partName != partition.FixedSlabName
	if spatial {
		pt, err := rqm.PartitionerByName(partName)
		if err != nil {
			return nil, stats, err
		}
		// The partitioner solves a bound per region against the original
		// target, so the rewrite needs the adaptive policy, not the single
		// globally solved newAbs.
		streamOpts = append(streamOpts,
			rqm.WithPartitioner(pt),
			rqm.WithAdaptiveBound(policy))
	}
	build := func(cw io.Writer) (*store.Manifest, error) {
		bw := bufio.NewWriterSize(cw, 1<<20)
		sw, err := eng.NewFieldStreamWriter(bw, f, streamOpts...)
		if err != nil {
			return nil, err
		}
		if err := sw.WriteValues(f.Data); err != nil {
			sw.Close()
			return nil, err
		}
		if err := sw.Close(); err != nil {
			return nil, err
		}
		stats = sw.Stats()
		if spatial {
			// Per-region bounds vary; the honest end-to-end guarantee is the
			// accumulated input error plus the loosest region bound.
			nm.ErrorBound = baseErr + stats.MaxBound
			nm.EstPSNR = finiteOrZero(p.EstimateAt(nm.ErrorBound).PSNR)
		}
		return nm, bw.Flush()
	}
	var committed *store.Manifest
	var err2 error
	if orig != nil {
		committed, err2 = st.ReplaceWithResidual(m.Name, m, build,
			store.BuildResidual(orig, m.Prec(), m.Residual.Backend))
	} else {
		committed, err2 = st.Replace(m.Name, m, build)
	}
	if err2 != nil {
		return nil, stats, err2
	}
	return committed, stats, nil
}

// rawPutMaxManifest caps the framed manifest record of a raw put (16 MiB —
// generous: the dominant field is the base64 profile, ~1 MiB per 10M-value
// dataset at the default 1% sampling rate).
const rawPutMaxManifest = 16 << 20

// handleDatasetRawPut admits an already-compressed dataset verbatim: the
// body is a 4-byte big-endian manifest length, the full manifest JSON (as
// served by ?manifest=1&full=1), then the container bytes (as served by
// ?raw=1). This is the replication hook replica repair and rebalancing ride:
// the container streams straight to disk — never decompressed, never
// recompressed — and the manifest's identity (CreatedAt, Generation,
// ContentHash, cached profile) is preserved bit for bit.
//
// The committed (CreatedAt, Generation) version is the conflict arbiter:
//
//   - target has no committed copy        -> admit
//   - incoming is strictly newer          -> replace (CAS on the loaded base)
//   - versions identical, same content    -> skip, 200 (idempotent repair) —
//     unless ?repair=1 AND the committed copy fails shallow verification,
//     in which case the incoming bytes replace the rotten ones (201,
//     X-RQM-Raw-Put: repaired). A corrupt container keeps its manifest, so
//     without the re-check read-repair would be "skipped" into a no-op.
//   - incoming older, or same-version but
//     divergent content                   -> typed 409, nothing written
//
// The store additionally hashes the staged container against the incoming
// manifest's ContainerHash, so a copy corrupted in flight is rejected
// rather than committed.
func (s *Service) handleDatasetRawPut(w http.ResponseWriter, r *http.Request) error {
	st, err := s.requireStore()
	if err != nil {
		return err
	}
	name, err := pathName(r)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(r.Body, 1<<20)
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return errf(http.StatusBadRequest, "bad_manifest", "raw put: manifest length frame: %v", err)
	}
	mlen := binary.BigEndian.Uint32(lenBuf[:])
	if mlen == 0 || mlen > rawPutMaxManifest {
		return errf(http.StatusBadRequest, "bad_manifest", "raw put: manifest frame of %d bytes", mlen)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(br, mbuf); err != nil {
		return errf(http.StatusBadRequest, "bad_manifest", "raw put: manifest truncated: %v", err)
	}
	m, err := store.ParseManifest(mbuf)
	if err != nil {
		// The manifest is client input here, not stored state: a parse
		// failure is the caller's 400, not the store's 500.
		return errf(http.StatusBadRequest, "bad_manifest", "raw put: %v", err)
	}
	if m.Name != name {
		return errf(http.StatusBadRequest, "bad_manifest",
			"raw put: manifest names %q, path names %q", m.Name, name)
	}

	repaired := false
	cur, err := st.Manifest(name)
	switch {
	case errors.Is(err, store.ErrNotFound):
		cur = nil
	case (errors.Is(err, store.ErrManifestCorrupt) || errors.Is(err, store.ErrManifestVersion)) &&
		param(r.URL.Query(), r.Header, "repair") == "1":
		// A torn manifest leaves no trustworthy committed version to
		// arbitrate against: a repair put overwrites the wreck outright
		// instead of failing the way a plain read of it would.
		cur = nil
		repaired = true
	case err != nil:
		return err
	}
	if cur != nil {
		sameVersion := cur.CreatedAt.Equal(m.CreatedAt) && cur.Generation == m.Generation
		switch {
		case sameVersion && cur.ContentHash == m.ContentHash:
			// The replica already holds this exact version. Trust it only as
			// far as asked: with ?repair=1 the committed copy must pass
			// shallow verification to earn the idempotent skip.
			verr := error(nil)
			if param(r.URL.Query(), r.Header, "repair") == "1" {
				verr = st.VerifyDataset(name, false)
			}
			if verr == nil {
				w.Header().Set("X-RQM-Raw-Put", "skipped")
				return writeJSON(w, http.StatusOK, datasetInfo(cur))
			}
			repaired = true // fall through: same-version replace over the rot
		case !manifestNewer(m, cur):
			return errf(http.StatusConflict, "conflict",
				"raw put: committed %q is generation %d (created %s), incoming generation %d (created %s) does not supersede it",
				name, cur.Generation, cur.CreatedAt.Format(time.RFC3339Nano),
				m.Generation, m.CreatedAt.Format(time.RFC3339Nano))
		}
	}

	// When the incoming manifest declares a residual layer, the frame carries
	// the residual file right after the container: exactly ContainerBytes of
	// container, then exactly Residual.Bytes of residual. CopyResidual makes
	// the store's staging checks prove the copy arrived byte-identical.
	build := func(cw io.Writer) (*store.Manifest, error) {
		if m.Residual != nil {
			if _, err := io.CopyN(cw, br, m.ContainerBytes); err != nil {
				return nil, err
			}
			return m, nil
		}
		if _, err := io.Copy(cw, br); err != nil {
			return nil, err
		}
		return m, nil
	}
	var rb store.ResidualBuilder
	if m.Residual != nil {
		rb = store.CopyResidual(br, m.Residual)
	}
	var committed *store.Manifest
	switch {
	case cur != nil && rb != nil:
		committed, err = st.ReplaceWithResidual(name, cur, build, rb)
	case cur != nil:
		committed, err = st.Replace(name, cur, build)
	case rb != nil:
		committed, err = st.PutWithResidual(name, build, rb)
	default:
		committed, err = st.Put(name, build)
	}
	if err != nil {
		return putError(err)
	}
	s.count(&s.datasetRawPuts, 1)
	if repaired {
		w.Header().Set("X-RQM-Raw-Put", "repaired")
	} else {
		w.Header().Set("X-RQM-Raw-Put", "stored")
	}
	return writeJSON(w, http.StatusCreated, datasetInfo(committed))
}

// manifestNewer reports whether a describes a strictly newer version than b:
// a later CreatedAt wins (a re-put is a new dataset identity); at the same
// CreatedAt the higher Generation (recompaction count) wins.
func manifestNewer(a, b *store.Manifest) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.After(b.CreatedAt)
	}
	return a.Generation > b.Generation
}

// intParam parses an optional int64 parameter with a default.
func intParam(q url.Values, h http.Header, name string, def int64) (int64, error) {
	v := param(q, h, name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, errf(http.StatusBadRequest, "bad_param", "%s: %q is not an integer", name, v)
	}
	return n, nil
}

// putError maps store commit failures onto request-shaped errors. Typed
// store errors — notably ErrConflict from a CAS replace — keep their own
// HTTP mapping (409 via mapError); only untyped build/commit failures
// collapse into the 422 envelope.
func putError(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, store.ErrConflict) || errors.Is(err, store.ErrNotFound) ||
		errors.Is(err, store.ErrBadName) {
		return err
	}
	return errf(http.StatusUnprocessableEntity, "put_failed", "%v", err)
}

// finiteOrZero clamps non-finite model estimates for JSON-borne manifests.
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}
