package service

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"

	"rqm"
	"rqm/internal/grid"
	"rqm/internal/partition"
)

// mixedFieldBody synthesizes the smooth+turbulent composite field the
// spatial partitioner exists for, as a float64 .rqmf request payload.
func mixedFieldBody(t testing.TB) (*rqm.Field, []byte) {
	t.Helper()
	g, err := rqm.GenerateField("mixed", 42, rqm.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rqm.FieldFromData("svc-mixed", rqm.Float64, g.Data, g.Dims...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

// TestCompressAdaptiveSpace drives ?adaptive-space=1 through the HTTP
// compress path: the response must be a valid multi-region container and the
// partition counters must land in /metrics.
func TestCompressAdaptiveSpace(t *testing.T) {
	f, body := mixedFieldBody(t)
	svc, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/compress?target-psnr=60&adaptive-space=1",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive-space compress: status %d: %s", resp.StatusCode, blob)
	}
	if resp.Header.Get("X-RQM-Streamed") != "1" {
		t.Fatal("adaptive-space compress did not stream")
	}
	dec, err := rqm.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := rqm.PSNR(f, dec)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 59 {
		t.Fatalf("delivered %.2f dB, want ~60", psnr)
	}
	idx, err := rqm.ReadStreamIndex(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	if snap.AdaptiveSpaceRuns != 1 {
		t.Errorf("adaptive_space_runs = %d, want 1", snap.AdaptiveSpaceRuns)
	}
	if snap.PartitionRegions != int64(len(idx.Entries)) || snap.PartitionRegions < 2 {
		t.Errorf("partition_regions = %d, container has %d chunks (want >= 2)",
			snap.PartitionRegions, len(idx.Entries))
	}
	if snap.PartitionSplits < 1 {
		t.Errorf("partition_splits = %d, want >= 1", snap.PartitionSplits)
	}

	// Without a model target the parameter is a typed 400, not a silent no-op.
	resp, err = http.Post(ts.URL+"/v1/compress?stream=1&adaptive-space=1&mode=abs&eb=1e-3",
		"application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("adaptive-space without target: status %d", resp.StatusCode)
	}
	if body := decodeErrorBody(t, resp); body.Error.Code != "bad_param" {
		t.Fatalf("adaptive-space without target: code %q", body.Error.Code)
	}
}

// TestRecompactAdaptiveSpace pins the store-side contract: an
// ?adaptive-space=1 recompaction rewrites the container with spatial
// partitioning, records the partitioner in the manifest, keeps slice reads
// correct over the now variable-size chunks, and a later recompaction
// reproduces the recorded partitioner without being asked again.
func TestRecompactAdaptiveSpace(t *testing.T) {
	svc, st, ts := newStoreServer(t)
	f, body := mixedFieldBody(t)
	info := putDataset(t, ts, "mx", "mode=abs&eb=1e-4", body)
	if info.Partitioner != "" {
		t.Fatalf("fresh put records partitioner %q, want fixed slabs", info.Partitioner)
	}

	rr, status := postRecompact(t, ts, "mx", "target-psnr=60&adaptive-space=1")
	if status != http.StatusOK || rr.Skipped {
		t.Fatalf("adaptive-space recompact: status %d, %+v", status, rr)
	}
	m, err := st.Manifest("mx")
	if err != nil {
		t.Fatal(err)
	}
	if m.Partitioner != partition.VarianceQuadtreeName {
		t.Fatalf("manifest partitioner %q, want %q", m.Partitioner, partition.VarianceQuadtreeName)
	}
	if len(m.Chunks) < 2 {
		t.Fatalf("spatial rewrite produced %d chunks, want a real split", len(m.Chunks))
	}
	if !(m.ErrorBound > rr.OldBound) {
		t.Fatalf("recorded bound %g did not accumulate over the old %g", m.ErrorBound, rr.OldBound)
	}
	if snap := svc.Snapshot(); snap.AdaptiveSpaceRuns != 1 || snap.PartitionRegions != int64(len(m.Chunks)) {
		t.Errorf("metrics %+v do not reflect the spatial rewrite (%d chunks)",
			snap, len(m.Chunks))
	}

	// The decompressed dataset must honor the accumulated end-to-end bound.
	resp, err := http.Get(ts.URL + "/v1/datasets/mx")
	if err != nil {
		t.Fatal(err)
	}
	full, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := rqm.VerifyErrorBound(f, full, rqm.ABS, m.ErrorBound*(1+1e-12)); err != nil {
		t.Fatal(err)
	}

	// Slice reads across a region boundary of the variable-size chunk index
	// must match the full decompress exactly.
	boundary := int64(m.Chunks[0].Values)
	off, n := boundary-100, int64(200)
	resp, err = http.Get(fmt.Sprintf("%s/v1/datasets/mx/slice?off=%d&len=%d", ts.URL, off, n))
	if err != nil {
		t.Fatal(err)
	}
	slice, err := grid.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(slice.Len()) != n {
		t.Fatalf("slice holds %d values, want %d", slice.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if math.Float64bits(slice.Data[i]) != math.Float64bits(full.Data[off+i]) {
			t.Fatalf("slice[%d] = %v, full decompress has %v", i, slice.Data[i], full.Data[off+i])
		}
	}

	// A later plain recompaction must reproduce the recorded partitioner.
	rr2, status := postRecompact(t, ts, "mx", "target-psnr=50")
	if status != http.StatusOK || rr2.Skipped {
		t.Fatalf("follow-up recompact: status %d, %+v", status, rr2)
	}
	m2, err := st.Manifest("mx")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Partitioner != partition.VarianceQuadtreeName {
		t.Fatalf("follow-up rewrite dropped the partitioner: %q", m2.Partitioner)
	}
	if len(m2.Chunks) < 2 {
		t.Fatalf("follow-up rewrite produced %d chunks, want spatial geometry", len(m2.Chunks))
	}
	if snap := svc.Snapshot(); snap.AdaptiveSpaceRuns != 2 {
		t.Errorf("adaptive_space_runs = %d after two spatial rewrites", snap.AdaptiveSpaceRuns)
	}
}
